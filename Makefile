# Tier-1 verification targets. `make check` is what CI (and any PR) should
# run: build, vet, the full test suite, a race-detector pass over the
# packages with real concurrency (the parallel campaign pool and the pooled
# codec buffers), and a short campaign smoke test.

GO ?= go

.PHONY: check ci build vet test race race-all smoke docs-lint bench bench-full bench-codec bench-campaign

check: build vet test race smoke docs-lint

# Full CI gate (also run by .github/workflows/ci.yml): build, vet, the whole
# test suite under the race detector, and the docs lint.
ci: build vet race-all docs-lint

race-all:
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The campaign package exercises the worker engine and the snapshot cache's
# lock-free read path (TestCampaignParallelismIsDeterministic,
# TestRunnerConcurrentUse, TestSnapshotCacheConcurrentRunners,
# TestClearSnapshotCacheRacesActiveForks) and the codec package exercises the
# sharded intern table and per-worker arenas, so -race here covers every
# concurrency surface of the parallel engine. The apiserver package adds the
# encode-cache tests: cached wire bytes ride sealed objects across the same
# shared read paths, so they get the same -race coverage.
race:
	$(GO) test -race ./internal/campaign/... ./internal/codec/... ./internal/apiserver/...

# A fast, heavily-strided campaign through the real benchmark harness: one
# end-to-end sanity pass over golden runs, generation, injection, and
# aggregation on all cores — plus the HA control-plane smoke campaign (a
# three-replica control plane riding out an apiserver crash and a healed
# master partition while the workload completes on the survivors) and the
# admission smoke campaign (a three-hook governance chain riding out a
# webhook backend crash under both failure policies, measuring the
# fail-closed outage against the fail-open enforcement loss) and the
# 500-node scale smoke (a three-zone cloud-edge cluster bootstrapping inside
# a wall/alloc budget and riding out an edge-zone partition).
smoke:
	MUTINY_STRIDE=200 MUTINY_GOLDEN=5 $(GO) test -run xxx -bench 'BenchmarkCampaignParallel' -benchtime=1x .
	$(GO) test -run TestHAControlPlaneSmoke -count=1 .
	$(GO) test -run TestAdmissionSmoke -count=1 .
	$(GO) test -run TestScale500Smoke -count=1 .

# Docs lint: every Go file gofmt-clean, and every local link in README.md /
# ARCHITECTURE.md resolving to a file or directory that actually exists
# (anchors and external URLs are skipped).
docs-lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	@fail=0; \
	for f in README.md ARCHITECTURE.md; do \
		for link in $$(grep -oE '\]\([^)#]+\)?' $$f | sed -e 's/^](//' -e 's/)$$//' | grep -v '^http'); do \
			if [ ! -e "$$link" ]; then echo "$$f: broken link: $$link"; fail=1; fi; \
		done; \
	done; \
	[ $$fail -eq 0 ] && echo "docs-lint OK"

# Perf gate: the hot-path benchmarks (experiment throughput replay vs share,
# bootstrap-share ratio, parallel campaign workers-vs-sequential speedup)
# parsed into BENCH_PR$(PR).json via tools/benchjson. The artifact is
# committed per PR (the trajectory lives in-repo, not just as a CI upload);
# CI re-runs the gate on the 4-vCPU hosted runner on every push and uploads
# its own copy. The run is compared against the newest committed BENCH_PR*
# artifact from an earlier PR: a >10% ms/exp regression prints a
# non-blocking warning (see tools/benchjson). MUTINY_SHARE is irrelevant
# here: ExperimentThroughput measures both regimes itself.
# Each bench run writes to its own file first so a benchmark failure fails
# the target (piping straight into benchjson would report the parser's exit
# status and let a broken benchmark slip through the gate); benchjson itself
# also fails when it parses no benchmark lines.
PR ?= 10
BENCH_JSON ?= BENCH_PR$(PR).json
bench:
	@set -e; out=$$(mktemp -d); \
	prev=$$(ls BENCH_PR*.json 2>/dev/null | sed -n 's/^BENCH_PR\([0-9][0-9]*\)\.json$$/\1/p' | awk '$$1 < $(PR)' | sort -n | tail -1); \
	prev=$${prev:+BENCH_PR$$prev.json}; \
	$(GO) test -run xxx -bench 'BenchmarkExperimentThroughput|BenchmarkBootstrapShare' -benchmem -benchtime 30x . > $$out/hot.txt; \
	MUTINY_STRIDE=96 MUTINY_GOLDEN=5 $(GO) test -run xxx -bench 'BenchmarkCampaignParallel' -benchtime 3x . > $$out/campaign.txt; \
	$(GO) test -run xxx -bench 'BenchmarkScale10$$|BenchmarkScale500$$' -benchmem -benchtime 50x . > $$out/scale.txt; \
	cat $$out/hot.txt $$out/campaign.txt $$out/scale.txt | $(GO) run ./tools/benchjson -out $(BENCH_JSON) $${prev:+-prev $$prev}; \
	rm -rf $$out
	@echo "wrote $(BENCH_JSON)"

# Full paper-style benchmark run (minutes; see bench_test.go header).
bench-full:
	$(GO) test -bench=. -benchmem .

bench-codec:
	$(GO) test -run xxx -bench 'BenchmarkCodec' -benchmem ./internal/codec/

bench-campaign:
	$(GO) test -run xxx -bench 'BenchmarkCampaignParallel|BenchmarkExperimentThroughput' -benchmem .
