package mutiny_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	mutiny "github.com/mutiny-sim/mutiny"
)

// The admission smoke campaign `make check` runs: a three-hook governance
// chain (defaulter, image policy, limits policy) rides out a webhook backend
// crash under both failure-policy regimes, and the admission table renders
// the trade-off from the measured windows. Fail-closed buys enforcement
// integrity (no violating object is ever admitted) at the price of a
// write-availability outage spanning the fault window; fail-open keeps
// writes flowing but lets the round's canary pods through while the hook is
// down.
func TestAdmissionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("admission smoke campaign is slow")
	}
	runner := mutiny.NewRunner()
	runner.GoldenRuns = 5
	runner.ClusterConfig.AdmissionHooks = 3

	// Replica 2 targets the limits-policy hook — the one policy the canary
	// pods violate, so skipping exactly it is what admits them.
	agg := mutiny.NewAggregate()
	specs := []mutiny.Spec{
		{Workload: mutiny.WorkloadPolicy, Seed: 8_900_001, Injection: &mutiny.Injection{
			Type: mutiny.FaultWebhookDown, Replica: 2, Policy: "Fail",
			After: 3 * time.Second, Heal: 18 * time.Second,
		}},
		{Workload: mutiny.WorkloadPolicy, Seed: 8_900_002, Injection: &mutiny.Injection{
			Type: mutiny.FaultWebhookDown, Replica: 2, Policy: "Ignore",
			After: 3 * time.Second, Heal: 18 * time.Second,
		}},
	}
	for _, spec := range specs {
		res := runner.Run(spec)
		if !res.Report.Fired || !res.Report.Activated {
			t.Fatalf("policy=%s: fault did not fire/activate: %+v", spec.Injection.Policy, res.Report)
		}
		if !res.Report.Healed {
			t.Fatalf("policy=%s: fault did not heal: %+v", spec.Injection.Policy, res.Report)
		}
		switch spec.Injection.Policy {
		case "Fail":
			// Fail-closed: writes stall while the hook is unreachable, but
			// nothing violating ever lands in the store.
			if res.AdmissionOutageMillis == 0 {
				t.Fatalf("fail-closed webhook crash measured no write outage: %+v", res)
			}
			if res.PolicyViolations != 0 {
				t.Fatalf("fail-closed chain admitted %d violating objects", res.PolicyViolations)
			}
		case "Ignore":
			// Fail-open: no outage — the chain skips the dead hook — but the
			// canaries created during the fault window get through.
			if res.AdmissionOutageMillis != 0 {
				t.Fatalf("fail-open webhook crash measured a write outage: %+v", res)
			}
			if res.PolicyViolations == 0 {
				t.Fatalf("fail-open chain admitted no violating objects during the fault window")
			}
		}
		agg.Add(res)
	}

	var buf bytes.Buffer
	mutiny.RenderAdmissionTable(&buf, agg)
	for _, want := range []string{"webhook-down", "Fail", "Ignore"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("admission table missing %q:\n%s", want, buf.String())
		}
	}
}
