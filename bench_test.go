// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V), plus the §V-C1 ablations. Each benchmark regenerates the
// corresponding artifact and prints it to stdout, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's result set end to end.
//
// Scale: by default the campaign-backed benches subsample the generated
// campaign with stride MUTINY_STRIDE (default 12, ≈550 injection
// experiments) and 30 golden runs, keeping the default run minutes-long.
// Set MUTINY_STRIDE=1 MUTINY_GOLDEN=100 for the full paper-scale study
// (~6,500 experiments; the paper performed 8,782 on their field inventory).
//
// Parallelism: experiments fan out across MUTINY_PARALLEL worker goroutines
// (unset or 0 = all cores, 1 = the sequential path). Campaign outputs are
// bit-identical for every MUTINY_PARALLEL value — experiments are isolated
// simulations merged in generated order — so the knob only changes
// wall-clock time. BenchmarkCampaignParallel measures the speedup.
//
// Contention: MUTINY_MUTEXPROF=1 enables mutex and block profiling for the
// whole run and writes mutex.pprof/block.pprof artifacts (to
// MUTINY_PROF_DIR, default "."), so lock contention on the parallel
// campaign path can be inspected with `go tool pprof` after any bench run.
package mutiny

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/campaign"
	"github.com/mutiny-sim/mutiny/internal/classify"
	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/report"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

var (
	_campaignOnce sync.Once
	_campaignOut  *campaign.Output
)

// TestMain exists to support MUTINY_MUTEXPROF=1: with it set, mutex and
// block profiling cover the entire run (including the parallel campaign
// fan-out) and the profiles are written as pprof artifacts after the tests
// and benchmarks finish. Without it, TestMain is a plain m.Run().
func TestMain(m *testing.M) {
	prof := os.Getenv("MUTINY_MUTEXPROF") == "1"
	if prof {
		runtime.SetMutexProfileFraction(5)
		runtime.SetBlockProfileRate(100) // sample blocking events >= 100ns
	}
	code := m.Run()
	if prof {
		dir := os.Getenv("MUTINY_PROF_DIR")
		if dir == "" {
			dir = "."
		}
		for _, p := range []string{"mutex", "block"} {
			path := dir + "/" + p + ".pprof"
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mutexprof: create %s: %v\n", path, err)
				continue
			}
			if err := pprof.Lookup(p).WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "mutexprof: write %s: %v\n", path, err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "mutexprof: wrote %s\n", path)
		}
	}
	os.Exit(code)
}

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// sharedCampaign runs the injection campaign once per `go test` process; the
// per-table benchmarks render different views of it, like the paper's tables
// all describe the same 8,782-experiment campaign.
func sharedCampaign(b *testing.B) *campaign.Output {
	b.Helper()
	_campaignOnce.Do(func() {
		cfg := campaign.Config{
			GoldenRuns:     envInt("MUTINY_GOLDEN", 30),
			SampleStride:   envInt("MUTINY_STRIDE", 12),
			Parallelism:    envInt("MUTINY_PARALLEL", 0),
			ShareBootstrap: envInt("MUTINY_SHARE", 0) > 0,
		}
		fmt.Printf("[campaign] stride=%d golden=%d parallel=%d share-bootstrap=%v (set MUTINY_STRIDE=1 MUTINY_GOLDEN=100 for paper scale; MUTINY_PARALLEL=1 for the sequential path; MUTINY_SHARE=1 to fork bootstrap snapshots)\n",
			cfg.SampleStride, cfg.GoldenRuns, cfg.Parallelism, cfg.ShareBootstrap)
		_campaignOut = campaign.RunCampaign(cfg)
		fmt.Printf("[campaign] %d injection experiments, %d refinement, %d propagation cells\n",
			_campaignOut.Main.Total(), _campaignOut.Refinement.Total(), len(_campaignOut.Propagation))
	})
	return _campaignOut
}

// BenchmarkTable1FFDAChain regenerates Table I: the fault→error→failure
// chain of the 81 real-world incidents.
func BenchmarkTable1FFDAChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Table1(os.Stdout)
	}
}

// BenchmarkTable3OFtoCF regenerates Table III: the propagation matrix from
// orchestrator-level to client-level failures per workload.
func BenchmarkTable3OFtoCF(b *testing.B) {
	out := sharedCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Table3(os.Stdout, out.Main)
	}
}

// BenchmarkTable4OrchestratorFailures regenerates Table IV: OF statistics by
// workload and injection type.
func BenchmarkTable4OrchestratorFailures(b *testing.B) {
	out := sharedCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Table4(os.Stdout, out.Main)
	}
}

// BenchmarkTable5ClientFailures regenerates Table V: CF statistics by
// workload and injection type.
func BenchmarkTable5ClientFailures(b *testing.B) {
	out := sharedCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Table5(os.Stdout, out.Main)
	}
}

// BenchmarkTable6Propagation regenerates Table VI: the validation-layer
// propagation experiments on the component→apiserver channel.
func BenchmarkTable6Propagation(b *testing.B) {
	out := sharedCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Table6(os.Stdout, out.Propagation)
	}
}

// BenchmarkTable7Coverage regenerates Table VII: real-world vs
// Mutiny-replicable subcategories.
func BenchmarkTable7Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.Table7(os.Stdout)
	}
}

// BenchmarkFigure5TimeSeries regenerates Figure 5: a golden client latency
// series next to an injected one (a replica-count corruption that
// under-provisions the target service), with their z-scores.
func BenchmarkFigure5TimeSeries(b *testing.B) {
	runner := campaign.NewRunner()
	runner.GoldenRuns = envInt("MUTINY_GOLDEN", 30)
	baseline := runner.Baseline(workload.ScaleUp)
	goldenRes, goldenObs := runner.RunObserved(campaign.Spec{Workload: workload.ScaleUp, Seed: 4242})
	injRes, injObs := runner.RunObserved(campaign.Spec{
		Workload: workload.ScaleUp,
		Seed:     4243,
		Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindDeployment,
			FieldPath: "spec.replicas", Type: inject.SetValue, Value: int64(0),
			Occurrence: 2,
		},
	})
	_ = baseline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Figure5(os.Stdout, goldenObs.Series, injObs.Series, goldenRes.Z, injRes.Z)
	}
	if injRes.Z <= goldenRes.Z {
		b.Fatalf("injected z (%.1f) not above golden z (%.1f)", injRes.Z, goldenRes.Z)
	}
}

// BenchmarkFigure6ZScores regenerates Figure 6: client z-score distributions
// per OF category and workload.
func BenchmarkFigure6ZScores(b *testing.B) {
	out := sharedCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Figure6(os.Stdout, out.Main)
	}
}

// BenchmarkFigure7UserErrors regenerates Figure 7: experiments in which the
// cluster user received an error vs totals, by OF category (finding F4).
func BenchmarkFigure7UserErrors(b *testing.B) {
	out := sharedCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Figure7(os.Stdout, out.Main)
		report.Findings(os.Stdout, out.Main)
	}
}

// BenchmarkCriticalFields regenerates the §V-C2 critical-field analysis
// (finding F2: dependency-tracking fields dominate critical failures).
func BenchmarkCriticalFields(b *testing.B) {
	out := sharedCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.CriticalFields(os.Stdout, out.Main)
	}
}

// BenchmarkAblationReplicatedCP reproduces the §V-C1 ablation: repeating
// critical-field injections against a three-node (raft-replicated) control
// plane shows no significant difference, because values are injected before
// the consensus algorithm runs.
func BenchmarkAblationReplicatedCP(b *testing.B) {
	criticalInjections := []inject.Injection{
		{Channel: inject.ChannelStore, Kind: spec.KindReplicaSet,
			FieldPath: "spec.template.labels[app]", Type: inject.SetValue, Value: "mislabeled", Occurrence: 2},
		{Channel: inject.ChannelStore, Kind: spec.KindDeployment,
			FieldPath: "spec.replicas", Type: inject.BitFlip, Bit: 4, Occurrence: 1},
		{Channel: inject.ChannelStore, Kind: spec.KindPod,
			FieldPath: "metadata.labels[app]", Type: inject.SetValue, Value: "", Occurrence: 2},
		{Channel: inject.ChannelStore, Kind: spec.KindService,
			FieldPath: "spec.ports[0].targetPort", Type: inject.BitFlip, Bit: 4, Occurrence: 1},
		{Channel: inject.ChannelStore, Kind: spec.KindDeployment,
			Type: inject.DropMessage, Occurrence: 1},
	}
	run := func(replicas int) map[classify.OF]int {
		runner := campaign.NewRunner()
		runner.GoldenRuns = 20
		runner.ClusterConfig = cluster.Config{ControlPlaneReplicas: replicas}
		counts := make(map[classify.OF]int)
		for i, in := range criticalInjections {
			in := in
			res := runner.Run(campaign.Spec{Workload: workload.Deploy, Seed: int64(7000 + i), Injection: &in})
			counts[res.OF]++
		}
		return counts
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		single := run(1)
		triple := run(3)
		fmt.Printf("Ablation §V-C1 — replicated control plane (critical-field injections)\n")
		fmt.Printf("  1 control-plane node: %v\n", single)
		fmt.Printf("  3 control-plane nodes: %v\n", triple)
		same := true
		for of, n := range single {
			if triple[of] != n {
				same = false
			}
		}
		fmt.Printf("  identical outcome distribution: %v (paper: 'no significant difference')\n", same)
	}
}

// BenchmarkAblationAtRestCorruption reproduces the §V-C1 observation that
// corrupting data at rest propagates differently from in-flight corruption:
// the apiserver's watch cache masks it until a refresh (restart), and an
// intervening update overwrites it.
func BenchmarkAblationAtRestCorruption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl := cluster.New(cluster.Config{Seed: 51})
		cl.Start()
		cl.AwaitSettled(30_000_000_000)
		admin := cl.Client("ablation")
		driver := workload.NewDriver(cl, workload.ScaleUp)
		driver.Setup()

		key := spec.Key(spec.KindDeployment, spec.DefaultNamespace, workload.AppName(0))
		st := cl.Backend.(*store.Store)
		corrupt := func() bool {
			return st.CorruptAtRest(key, func(data []byte) []byte {
				obj := spec.New(spec.KindDeployment)
				if err := decode(data, obj); err != nil {
					return data
				}
				obj.(*spec.Deployment).Spec.Replicas = 0
				out, err := encode(obj)
				if err != nil {
					return data
				}
				return out
			})
		}

		// Phase 1: corrupt at rest, then let a client update flow — the
		// cached (correct) object wins and overwrites the corruption.
		corrupt()
		obj, _ := admin.Get(spec.KindDeployment, spec.DefaultNamespace, workload.AppName(0))
		maskedByCache := obj.(*spec.Deployment).Spec.Replicas == 2
		d := spec.CloneForWriteAs(obj.(*spec.Deployment))
		d.Metadata.Annotations = map[string]string{"touch": "1"}
		_ = admin.Update(d)
		cl.Loop.RunUntil(cl.Loop.Now() + 2_000_000_000)
		kv, _ := st.Get(key)
		repaired := spec.New(spec.KindDeployment)
		_ = decode(kv.Value, repaired)
		overwritten := repaired.(*spec.Deployment).Spec.Replicas == 2

		// Phase 2: corrupt at rest again and restart the apiserver — now
		// the corruption is picked up and acted on.
		corrupt()
		cl.Server.Restart()
		cl.Loop.RunUntil(cl.Loop.Now() + 10_000_000_000)
		obj, _ = admin.Get(spec.KindDeployment, spec.DefaultNamespace, workload.AppName(0))
		visibleAfterRestart := obj.(*spec.Deployment).Spec.Replicas == 0

		fmt.Printf("Ablation §V-C1 — corruption at rest vs in-flight\n")
		fmt.Printf("  masked by watch cache before restart: %v\n", maskedByCache)
		fmt.Printf("  overwritten by a cache-based update:  %v\n", overwritten)
		fmt.Printf("  visible after apiserver restart:      %v\n", visibleAfterRestart)
		if !maskedByCache || !overwritten || !visibleAfterRestart {
			b.Fatal("at-rest corruption semantics diverge from §V-C1")
		}
		cl.Stop()
	}
}

// BenchmarkExperimentThroughput measures the cost of one full injection
// experiment — the number that determines campaign wall-clock time — on
// both execution regimes: "replay" boots a fresh cluster per experiment
// (bootstrap + workload + classification), "share" forks the workload's
// settled bootstrap snapshot so only the injection window is simulated.
func BenchmarkExperimentThroughput(b *testing.B) {
	in := inject.Injection{
		Channel: inject.ChannelStore, Kind: spec.KindNode,
		FieldPath: "status.address", Type: inject.BitFlip, Occurrence: 2,
	}
	for _, mode := range []struct {
		name  string
		share bool
	}{{"replay", false}, {"share", true}} {
		b.Run(mode.name, func(b *testing.B) {
			runner := campaign.NewRunner()
			runner.GoldenRuns = 10
			runner.ShareBootstrap = mode.share
			runner.Baseline(workload.Deploy) // prebuild baseline (and snapshot) outside the timer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runner.Run(campaign.Spec{Workload: workload.Deploy, Seed: int64(9000 + i), Injection: &in})
			}
		})
	}
}

// BenchmarkBootstrapShare records the fork-vs-replay per-experiment ratio:
// how much of an experiment's cost the shared-bootstrap snapshot removes.
// Each iteration runs the same injection spec once per regime; the ratio is
// reported as an explicit metric (ns/op is the sum of both regimes).
func BenchmarkBootstrapShare(b *testing.B) {
	in := inject.Injection{
		Channel: inject.ChannelStore, Kind: spec.KindDeployment,
		FieldPath: "spec.replicas", Type: inject.BitFlip, Bit: 0, Occurrence: 1,
	}
	mk := func(share bool) *campaign.Runner {
		runner := campaign.NewRunner()
		runner.GoldenRuns = 5
		runner.ShareBootstrap = share
		runner.Baseline(workload.Deploy) // prebuild baseline (and snapshot) outside the timer
		return runner
	}
	replayRunner, forkRunner := mk(false), mk(true)
	measure := func(runner *campaign.Runner) time.Duration {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			runner.Run(campaign.Spec{Workload: workload.Deploy, Seed: int64(9300 + i), Injection: &in})
		}
		return time.Since(start)
	}
	b.ResetTimer()
	replay := measure(replayRunner)
	fork := measure(forkRunner)
	ratio := float64(replay) / float64(fork)
	fmt.Printf("Bootstrap share: replay %.2f ms/experiment, fork %.2f ms/experiment, speedup ×%.2f\n",
		float64(replay.Nanoseconds())/1e6/float64(b.N), float64(fork.Nanoseconds())/1e6/float64(b.N), ratio)
	b.ReportMetric(ratio, "replay/fork-×")
}

// benchScaleZoned runs one zone-partition experiment per iteration on a
// three-zone cloud-edge cluster of the given size, forked from a prebuilt
// snapshot. Everything but the node count is held fixed, so the
// Scale500/Scale10 time ratio isolates how per-experiment cost grows with
// cluster size.
func benchScaleZoned(b *testing.B, workers int) {
	in := inject.Injection{
		Type: inject.FaultZonePartition, Replica: 2,
		After: 3 * time.Second, Heal: 18 * time.Second,
	}
	runner := campaign.NewRunner()
	runner.GoldenRuns = 5
	runner.ShareBootstrap = true
	runner.ClusterConfig.Workers = workers
	runner.ClusterConfig.Zones = 3
	runner.Baseline(workload.Deploy) // prebuild the snapshot outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runner.Run(campaign.Spec{Workload: workload.Deploy, Seed: int64(9600 + i), Injection: &in})
		if !res.Report.Fired || !res.Report.Healed {
			b.Fatalf("zone partition did not fire+heal: %+v", res.Report)
		}
	}
}

// BenchmarkScale10 is the small-cluster denominator of the scale ratio: the
// identical zoned experiment on 10 workers.
func BenchmarkScale10(b *testing.B) { benchScaleZoned(b, 10) }

// BenchmarkScale500 measures the per-experiment cost of the share regime on
// a 500-node three-zone cloud-edge cluster. The per-zone scheduler and
// endpoints indexes, the per-kind watcher fan-out index, and the
// heartbeat-aware controllers are what keep this within a small multiple of
// BenchmarkScale10 despite 50× the nodes; benchjson derives the ratio
// (scale_500_vs_10_ratio) and warns when it drifts.
func BenchmarkScale500(b *testing.B) { benchScaleZoned(b, 500) }

// BenchmarkCampaignParallel measures campaign wall-clock versus worker
// count: the same miniature campaign on the sequential path and fanned out
// across all cores. The speedup ratio is the number that matters — outputs
// are bit-identical (see TestCampaignParallelismIsDeterministic), so the
// parallel engine is pure wall-clock win.
func BenchmarkCampaignParallel(b *testing.B) {
	base := campaign.Config{
		GoldenRuns:     envInt("MUTINY_GOLDEN", 10),
		SampleStride:   envInt("MUTINY_STRIDE", 48),
		ShareBootstrap: envInt("MUTINY_SHARE", 0) > 0,
	}
	// A fixed workers=4 case pins one cross-machine-comparable point on the
	// scaling curve next to the all-cores case; it is skipped on boxes with
	// fewer than four CPUs and dropped when all-cores IS four workers (the
	// two runs would duplicate a sub-benchmark name).
	cases := []int{1}
	if runtime.NumCPU() >= 4 && runtime.GOMAXPROCS(0) != 4 {
		cases = append(cases, 4)
	}
	cases = append(cases, 0)
	for _, workers := range cases {
		name := "sequential"
		if workers == 0 {
			name = fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0))
		} else if workers > 1 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			cfg := base
			cfg.Parallelism = workers
			for i := 0; i < b.N; i++ {
				out := campaign.RunCampaign(cfg)
				if out.Main.Total() == 0 {
					b.Fatal("campaign ran zero experiments")
				}
			}
		})
	}
}

// BenchmarkMitigationFieldGuard evaluates the §VI-B mitigation this library
// adds on top of the paper: journaling critical-field changes, monitoring
// cluster health during a probation window, and rolling back changes that
// degrade it. The same template-label corruption that spawns pods forever is
// run with and without the guard.
func BenchmarkMitigationFieldGuard(b *testing.B) {
	in := inject.Injection{
		Channel: inject.ChannelStore, Kind: spec.KindReplicaSet,
		FieldPath: "spec.template.labels[app]",
		Type:      inject.SetValue, Value: "mislabeled", Occurrence: 2,
	}
	run := func(guarded bool) *campaign.Result {
		runner := campaign.NewRunner()
		runner.GoldenRuns = 20
		runner.ClusterConfig = cluster.Config{EnableFieldGuard: guarded}
		inCopy := in
		return runner.Run(campaign.Spec{Workload: workload.Deploy, Seed: 8100, Injection: &inCopy})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unguarded := run(false)
		guarded := run(true)
		fmt.Printf("Mitigation — critical-field guard (§VI-B log+monitor+rollback)\n")
		fmt.Printf("  without guard: OF=%s CF=%s pods created=%d\n", unguarded.OF, unguarded.CF, unguarded.PodsCreated)
		fmt.Printf("  with guard:    OF=%s CF=%s pods created=%d\n", guarded.OF, guarded.CF, guarded.PodsCreated)
		if guarded.PodsCreated >= unguarded.PodsCreated {
			b.Fatalf("guard did not bound the spawn (%d vs %d)", guarded.PodsCreated, unguarded.PodsCreated)
		}
	}
}

// BenchmarkMitigationChecksums evaluates the §VI-B redundancy-code
// mitigation ("redundancy codes on critical fields can protect the cluster
// from hardware faults with a negligible overhead"): single-bit corruptions
// of critical fields are detected at read-back and the object rebuilt,
// instead of becoming agreed cluster state.
func BenchmarkMitigationChecksums(b *testing.B) {
	injections := []inject.Injection{
		{Channel: inject.ChannelStore, Kind: spec.KindReplicaSet,
			FieldPath: "spec.template.labels[app]", Type: inject.BitFlip, CharIndex: 0, Occurrence: 2},
		{Channel: inject.ChannelStore, Kind: spec.KindPod,
			FieldPath: "metadata.labels[app]", Type: inject.BitFlip, CharIndex: 1, Occurrence: 1},
		{Channel: inject.ChannelStore, Kind: spec.KindService,
			FieldPath: "spec.ports[0].targetPort", Type: inject.BitFlip, Bit: 4, Occurrence: 1},
		{Channel: inject.ChannelStore, Kind: spec.KindPod,
			FieldPath: "spec.nodeName", Type: inject.BitFlip, CharIndex: 0, Occurrence: 2},
	}
	run := func(protected bool) (critical int, detected int) {
		runner := campaign.NewRunner()
		runner.GoldenRuns = 20
		if protected {
			runner.ClusterConfig = cluster.Config{
				ServerOptions: &apiserver.Options{CriticalFieldChecksums: true},
			}
		}
		for i, in := range injections {
			inCopy := in
			res := runner.Run(campaign.Spec{Workload: workload.Deploy, Seed: int64(8200 + i), Injection: &inCopy})
			if res.OF >= classify.OFNet || res.CF == classify.CFSU {
				critical++
			}
			_ = res
		}
		return critical, detected
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		criticalPlain, _ := run(false)
		criticalProtected, _ := run(true)
		fmt.Printf("Mitigation — redundancy codes on critical fields (§VI-B)\n")
		fmt.Printf("  critical/networking failures without checksums: %d/%d injections\n", criticalPlain, len(injections))
		fmt.Printf("  critical/networking failures with checksums:    %d/%d injections\n", criticalProtected, len(injections))
		if criticalProtected > criticalPlain {
			b.Fatalf("checksums made things worse (%d vs %d)", criticalProtected, criticalPlain)
		}
	}
}
