// Command mutiny-campaign runs the paper's fault/error injection campaign
// (§IV-C) against the simulated cluster and prints Tables III, IV, V and VI
// plus Figures 6 and 7, the critical-field analysis, and the headline
// findings.
//
// Usage:
//
//	mutiny-campaign [flags]
//
// The full campaign (stride 1, 100 golden runs) reproduces the paper-scale
// ~9,000-experiment study; larger strides subsample it evenly for quick
// looks.
//
// Experiments fan out across -parallel worker goroutines (default: all
// cores). Campaign outputs are bit-identical for every -parallel value, so
// the knob only trades wall-clock for CPU.
//
// -shards splits the campaign across OS processes: the driver spawns N
// copies of itself (one per shard), each running the experiments whose
// generated index ≡ shard-index (mod N), then merges their JSON outputs in
// index order and runs the refinement round. The merged output is
// bit-identical to a single-process run — campaign generation is
// deterministic, so every process regenerates the same spec matrix and only
// results cross the process boundary. -shard-index runs a single shard
// directly (emitting JSON on stdout), which is how one campaign spreads
// across machines: run shard i on machine i, ship the JSON back, merge.
//
// -share-bootstrap forks every experiment from a settled per-workload
// bootstrap snapshot instead of replaying the ~20 s simulated bootstrap each
// time. Snapshots live in a process-wide cache keyed on the cluster
// configuration plus the workload kind, so repeated campaigns (and every
// Runner constructed in the process) bootstrap each workload exactly once;
// each campaign worker forks from its own copy-on-read view of the snapshot,
// so parallel forks share no memory.
//
// -admission-hooks installs a governance webhook chain (mutating defaulter,
// image policy, limits policy) in every experiment cluster and adds the
// admission fault axes — webhook backend down, webhook latency past timeout,
// wrong selector, missing failure policy — each run under both failure-policy
// regimes ("Fail" = fail-closed, "Ignore" = fail-open). The admission table
// then renders the headline trade-off per axis and policy: the write-
// availability outage window against the count of policy-violating objects
// admitted. -failure-policy sets the configured (pre-override) policy of the
// hooks. With -admission-hooks and no explicit -workloads the campaign runs
// the policy workload, whose canary creates make integrity loss measurable.
//
// Readiness tracking inside each experiment is watch-driven: the kbench
// driver, the application client, the controllers, and the scheduler consume
// informer-style views fed by the API server's watch fan-out (with a
// low-frequency resync re-list as the safety net) rather than polling
// re-lists, and the driver resumes on the exact event that completes an
// operation. The watch stream is itself an injectable channel
// (mutiny.ChannelWatch) alongside the apiserver→store and
// component→apiserver channels the paper's campaign targets.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"

	mutiny "github.com/mutiny-sim/mutiny"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mutiny-campaign:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mutiny-campaign", flag.ContinueOnError)
	var (
		stride     = fs.Int("stride", 1, "run every n-th generated experiment (1 = full campaign)")
		golden     = fs.Int("golden", 100, "golden runs per workload")
		parallel   = fs.Int("parallel", 0, "experiment worker goroutines (0 = all cores, 1 = sequential; output is bit-identical either way)")
		shards     = fs.Int("shards", 1, "split the campaign across this many OS processes (driver mode: spawns one child per shard, merges their outputs bit-identically to a single-process run)")
		shardIndex = fs.Int("shard-index", -1, "run only shard shard-index of -shards and emit its JSON ShardOutput on stdout (child/remote mode; -1 = not a shard)")
		share      = fs.Bool("share-bootstrap", false, "fork each experiment from a settled bootstrap snapshot instead of replaying bootstrap (snapshots are cached process-wide per cluster-config+workload and forked from per-worker views; preserves classification aggregates, not bit-level observations)")
		replicas   = fs.Int("control-plane-replicas", 1, "apiserver/store replicas per experiment cluster; >= 2 adds the HA fault axes (apiserver crash, master partition, store loss) and the failover/stale-read table")
		hooks      = fs.Int("admission-hooks", 0, "admission webhooks per experiment cluster (0-3: defaulter, image-policy, limits-policy); >= 1 adds the webhook fault axes (down, latency, wrong selector, missing policy) under both failure policies and the admission table, and defaults -workloads to the policy workload")
		policy     = fs.String("failure-policy", "", "configured failure policy of the admission hooks: Fail (fail-closed) or Ignore (fail-open; the default when empty) — the generated admission axes override it per experiment")
		nodes      = fs.Int("nodes", 0, "worker nodes per experiment cluster (0 = the cluster default); large clusters pair naturally with -share-bootstrap")
		zones      = fs.Int("zones", 0, "cloud-edge zones per experiment cluster (0/1 = flat network); >= 2 splits the workers over a cloud core, regional, and edge zones with per-link latency/loss/bandwidth classes, adds the topology fault axes (edge-link flap, zone partition, mass node-kill) per non-core zone, and renders the topology table")
		edgeNodes  = fs.Int("edge-nodes", 0, "worker nodes in the edge zone (0 with -zones >= 2 = an even split)")
		noRefine   = fs.Bool("no-refinement", false, "skip the critical-field refinement round")
		noProp     = fs.Bool("no-propagation", false, "skip the component-channel propagation experiments")
		quiet      = fs.Bool("quiet", false, "suppress progress output")
		workloads  = fs.String("workloads", "", "comma-separated workload subset (deploy,scale,failover,policy)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", *shards)
	}
	if *shardIndex >= *shards {
		return fmt.Errorf("-shard-index %d out of range for -shards %d", *shardIndex, *shards)
	}
	if *policy != "" && *policy != "Fail" && *policy != "Ignore" {
		return fmt.Errorf("-failure-policy must be Fail or Ignore, got %q", *policy)
	}

	cfg := mutiny.CampaignConfig{
		GoldenRuns:           *golden,
		SampleStride:         *stride,
		Parallelism:          *parallel,
		Shards:               *shards,
		ShareBootstrap:       *share,
		ControlPlaneReplicas: *replicas,
		AdmissionHooks:       *hooks,
		FailurePolicy:        *policy,
		Workers:              *nodes,
		Zones:                *zones,
		EdgeNodes:            *edgeNodes,
		SkipRefinement:       *noRefine,
		SkipPropagation:      *noProp,
	}
	if *workloads != "" {
		for _, w := range splitComma(*workloads) {
			cfg.Workloads = append(cfg.Workloads, mutiny.WorkloadKind(w))
		}
	}
	start := time.Now()
	if !*quiet {
		cfg.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rexperiments: %d/%d (%.0fs elapsed)", done, total, time.Since(start).Seconds())
			}
		}
	}

	// Child/remote mode: run one shard, emit JSON, done.
	if *shardIndex >= 0 {
		cfg.ShardIndex = *shardIndex
		out := mutiny.RunCampaignShard(cfg)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\nshard %d/%d finished in %s\n", *shardIndex, *shards, time.Since(start).Round(time.Second))
		}
		return json.NewEncoder(os.Stdout).Encode(out)
	}

	var out *mutiny.CampaignOutput
	if *shards > 1 {
		shardOuts, err := spawnShards(args, *shards, *quiet)
		if err != nil {
			return err
		}
		out = mutiny.MergeCampaignShards(cfg, shardOuts)
	} else {
		out = mutiny.RunCampaign(cfg)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "\ncampaign finished in %s\n\n", time.Since(start).Round(time.Second))
	}

	fmt.Printf("Campaign: %d injection experiments (+%d refinement, +%d propagation cells); recorded fields: %v\n\n",
		out.Main.Total(), out.Refinement.Total(), len(out.Propagation), out.FieldsRecorded)
	mutiny.RenderTable3(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderTable4(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderTable5(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderTable6(os.Stdout, out.Propagation)
	fmt.Println()
	if *replicas > 1 {
		mutiny.RenderHATable(os.Stdout, out.Main)
		fmt.Println()
	}
	if *hooks > 0 {
		mutiny.RenderAdmissionTable(os.Stdout, out.Main)
		fmt.Println()
	}
	if *zones > 1 {
		mutiny.RenderTopologyTable(os.Stdout, out.Main)
		fmt.Println()
	}
	mutiny.RenderFigure6(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderFigure7(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderCriticalFields(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderFindings(os.Stdout, out.Main)
	return nil
}

// spawnShards runs one child process per shard (this binary, same flags,
// plus -shard-index), collects their JSON outputs, and returns them in
// shard order. Children run concurrently — the merge is index-ordered, so
// completion order is irrelevant to the result.
//
// Failure propagation is all-or-nothing: a non-zero child exit (with its
// stderr attached), empty or undecodable child output, or output claiming a
// different shard identity each fail the whole driver run, and every shard's
// failure is reported — partial shard sets are never merged, since a merge
// with a hole panics deep in the campaign package with far less context.
func spawnShards(args []string, shards int, quiet bool) ([]*mutiny.ShardOutput, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own binary for shard spawn: %w", err)
	}
	outs := make([]*mutiny.ShardOutput, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			childArgs := append(append([]string{}, args...), fmt.Sprintf("-shard-index=%d", i))
			if !quiet {
				// Child progress lines would interleave; keep children quiet
				// and report shard completion from the driver instead.
				childArgs = append(childArgs, "-quiet")
			}
			cmd := exec.Command(self, childArgs...)
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				errs[i] = fmt.Errorf("shard %d: child failed: %w\nchild stderr:\n%s", i, err, indent(stderr.Bytes()))
				return
			}
			if len(bytes.TrimSpace(stdout.Bytes())) == 0 {
				errs[i] = fmt.Errorf("shard %d: child exited 0 but produced no output\nchild stderr:\n%s", i, indent(stderr.Bytes()))
				return
			}
			so := new(mutiny.ShardOutput)
			if err := json.Unmarshal(stdout.Bytes(), so); err != nil {
				errs[i] = fmt.Errorf("shard %d: decoding child output: %w\nchild stderr:\n%s", i, err, indent(stderr.Bytes()))
				return
			}
			if so.Shards != shards || so.ShardIndex != i {
				errs[i] = fmt.Errorf("shard %d: child output identifies as shard %d/%d — flag mismatch between driver and child",
					i, so.ShardIndex, so.Shards)
				return
			}
			outs[i] = so
			if !quiet {
				fmt.Fprintf(os.Stderr, "shard %d/%d done (%d main, %d propagation results)\n",
					i, shards, len(so.Main), len(so.Prop))
			}
		}(i)
	}
	wg.Wait()
	var failed []error
	for _, err := range errs {
		if err != nil {
			failed = append(failed, err)
		}
	}
	if len(failed) > 0 {
		return nil, errors.Join(failed...)
	}
	return outs, nil
}

// indent prefixes child stderr with two spaces per line so it reads as a
// quoted block inside the driver's error message.
func indent(b []byte) []byte {
	b = bytes.TrimRight(b, "\n")
	if len(b) == 0 {
		return []byte("  (empty)")
	}
	return append([]byte("  "), bytes.ReplaceAll(b, []byte("\n"), []byte("\n  "))...)
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
