// Command mutiny-campaign runs the paper's fault/error injection campaign
// (§IV-C) against the simulated cluster and prints Tables III, IV, V and VI
// plus Figures 6 and 7, the critical-field analysis, and the headline
// findings.
//
// Usage:
//
//	mutiny-campaign [flags]
//
// The full campaign (stride 1, 100 golden runs) reproduces the paper-scale
// ~9,000-experiment study; larger strides subsample it evenly for quick
// looks.
//
// Experiments fan out across -parallel worker goroutines (default: all
// cores). Campaign outputs are bit-identical for every -parallel value, so
// the knob only trades wall-clock for CPU.
//
// -share-bootstrap forks every experiment from a settled per-workload
// bootstrap snapshot instead of replaying the ~20 s simulated bootstrap each
// time. Snapshots live in a process-wide cache keyed on the cluster
// configuration plus the workload kind, so repeated campaigns (and every
// Runner constructed in the process) bootstrap each workload exactly once;
// forks share the snapshot's store bytes copy-on-write, so a fork costs
// ~0.5 ms regardless of cluster size.
//
// Readiness tracking inside each experiment is watch-driven: the kbench
// driver, the application client, the controllers, and the scheduler consume
// informer-style views fed by the API server's watch fan-out (with a
// low-frequency resync re-list as the safety net) rather than polling
// re-lists, and the driver resumes on the exact event that completes an
// operation. The watch stream is itself an injectable channel
// (mutiny.ChannelWatch) alongside the apiserver→store and
// component→apiserver channels the paper's campaign targets.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	mutiny "github.com/mutiny-sim/mutiny"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mutiny-campaign:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mutiny-campaign", flag.ContinueOnError)
	var (
		stride    = fs.Int("stride", 1, "run every n-th generated experiment (1 = full campaign)")
		golden    = fs.Int("golden", 100, "golden runs per workload")
		parallel  = fs.Int("parallel", 0, "experiment worker goroutines (0 = all cores, 1 = sequential; output is bit-identical either way)")
		share     = fs.Bool("share-bootstrap", false, "fork each experiment from a settled bootstrap snapshot instead of replaying bootstrap (snapshots are cached process-wide per cluster-config+workload and forked copy-on-write; preserves classification aggregates, not bit-level observations)")
		replicas  = fs.Int("control-plane-replicas", 1, "apiserver/store replicas per experiment cluster; >= 2 adds the HA fault axes (apiserver crash, master partition, store loss) and the failover/stale-read table")
		noRefine  = fs.Bool("no-refinement", false, "skip the critical-field refinement round")
		noProp    = fs.Bool("no-propagation", false, "skip the component-channel propagation experiments")
		quiet     = fs.Bool("quiet", false, "suppress progress output")
		workloads = fs.String("workloads", "", "comma-separated workload subset (deploy,scale,failover)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := mutiny.CampaignConfig{
		GoldenRuns:           *golden,
		SampleStride:         *stride,
		Parallelism:          *parallel,
		ShareBootstrap:       *share,
		ControlPlaneReplicas: *replicas,
		SkipRefinement:       *noRefine,
		SkipPropagation:      *noProp,
	}
	if *workloads != "" {
		for _, w := range splitComma(*workloads) {
			cfg.Workloads = append(cfg.Workloads, mutiny.WorkloadKind(w))
		}
	}
	start := time.Now()
	if !*quiet {
		cfg.Progress = func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rexperiments: %d/%d (%.0fs elapsed)", done, total, time.Since(start).Seconds())
			}
		}
	}

	out := mutiny.RunCampaign(cfg)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "\ncampaign finished in %s\n\n", time.Since(start).Round(time.Second))
	}

	fmt.Printf("Campaign: %d injection experiments (+%d refinement, +%d propagation cells); recorded fields: %v\n\n",
		out.Main.Total(), out.Refinement.Total(), len(out.Propagation), out.FieldsRecorded)
	mutiny.RenderTable3(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderTable4(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderTable5(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderTable6(os.Stdout, out.Propagation)
	fmt.Println()
	if *replicas > 1 {
		mutiny.RenderHATable(os.Stdout, out.Main)
		fmt.Println()
	}
	mutiny.RenderFigure6(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderFigure7(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderCriticalFields(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderFindings(os.Stdout, out.Main)
	return nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
