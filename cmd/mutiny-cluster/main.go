// Command mutiny-cluster boots the simulated orchestration system, runs a
// workload against it, and streams the cluster's watch events — a quick way
// to see the substrate working before pointing Mutiny at it.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	mutiny "github.com/mutiny-sim/mutiny"
	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mutiny-cluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mutiny-cluster", flag.ContinueOnError)
	var (
		wl      = fs.String("workload", "deploy", "workload to run: deploy, scale, or failover")
		seed    = fs.Int64("seed", 1, "simulation seed")
		horizon = fs.Duration("horizon", 60*time.Second, "simulated time to run after the workload")
		events  = fs.Bool("events", true, "stream watch events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cl := mutiny.NewCluster(mutiny.ClusterConfig{Seed: *seed})
	if *events {
		cl.Server.ClientFor("observer").Watch("", func(ev apiserver.WatchEvent) {
			meta := ev.Object.Meta()
			fmt.Printf("%8s  %-8s %-11s %s/%s\n",
				cl.Loop.Now().Truncate(time.Millisecond), ev.Type, ev.Kind, meta.Namespace, meta.Name)
		})
	}
	cl.Start()
	if !cl.AwaitSettled(30 * time.Second) {
		return fmt.Errorf("cluster did not settle")
	}
	fmt.Printf("--- cluster settled at %v; running %q workload ---\n", cl.Loop.Now(), *wl)

	driver := mutiny.NewDriver(cl, mutiny.WorkloadKind(*wl))
	driver.Setup()
	driver.Run()
	cl.Loop.RunUntil(cl.Loop.Now() + *horizon)

	fmt.Printf("--- final state at %v ---\n", cl.Loop.Now())
	admin := cl.Client("admin")
	for _, no := range admin.List(spec.KindNode, "") {
		node := no.(*spec.Node)
		fmt.Printf("node %-10s ready=%-5v taints=%v routes=%v\n",
			node.Metadata.Name, node.Status.Ready, node.Spec.Taints, cl.Net.RoutesUp(node.Metadata.Name))
	}
	for _, do := range admin.List(spec.KindDeployment, "") {
		d := do.(*spec.Deployment)
		fmt.Printf("deployment %s/%-12s replicas=%d ready=%d\n",
			d.Metadata.Namespace, d.Metadata.Name, d.Spec.Replicas, d.Status.ReadyReplicas)
	}
	fmt.Printf("control plane responsive: %v; DNS healthy: %v\n",
		cl.ControlPlaneResponsive(), cl.Net.DNSHealthy())
	return nil
}
