// Command mutiny-ffda prints the field failure data analysis of §III: the
// Table I fault→error→failure chain over the 81 reconstructed real-world
// incidents, the aggregate statistics behind findings F3/F4, and the
// Table VII comparison of what Mutiny can replicate.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	mutiny "github.com/mutiny-sim/mutiny"
	"github.com/mutiny-sim/mutiny/internal/ffda"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mutiny-ffda:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mutiny-ffda", flag.ContinueOnError)
	listIncidents := fs.Bool("incidents", false, "list every incident in the dataset")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mutiny.RenderTable1(os.Stdout)
	fmt.Println()

	fmt.Println("Aggregate statistics (§III-B):")
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "misconfiguration-caused failures\t%d\t(19 k8s / 3 plugin / 11 external)\n", len(ffda.Misconfigurations()))
	fmt.Fprintf(tw, "bug-involved incidents\t%d\t(5 k8s / 4 external / 1 plugin / 3 custom)\n", len(ffda.BugIncidents()))
	fmt.Fprintf(tw, "capacity-related failures\t%d\t(%d control-plane overloads)\n", len(ffda.CapacityIncidents()), len(ffda.ControlPlaneOverloads()))
	fmt.Fprintf(tw, "communication-error incidents\t%d\t\n", len(ffda.CommunicationIncidents()))
	fmt.Fprintf(tw, "misconfig→overload incidents (F3)\t%d\tof 81\n", len(ffda.MisconfigOverloads()))
	fmt.Fprintf(tw, "cluster outages\t%d\t\n", ffda.CountByFailure()[ffda.FailureOut])
	tw.Flush()
	fmt.Println()

	mutiny.RenderTable7(os.Stdout)

	if *listIncidents {
		fmt.Println()
		tw = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "ID\tFault\tError\tFailure\tTitle")
		for _, in := range ffda.Dataset() {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\n", in.ID, in.Fault, in.Error, in.Failure, in.Title)
		}
		tw.Flush()
	}
	return nil
}
