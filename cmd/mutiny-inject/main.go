// Command mutiny-inject runs a single fault/error injection experiment: one
// workload, one injection described by the (where, what, when) triple, and
// prints the two-level failure classification — the smallest useful unit of
// the paper's method.
//
// Examples:
//
//	mutiny-inject -workload deploy -kind ReplicaSet \
//	    -field 'spec.template.labels[app]' -fault set -value mislabeled -occurrence 2
//
//	mutiny-inject -workload scale -kind Deployment -field spec.replicas \
//	    -fault bitflip -bit 4
//
//	mutiny-inject -workload deploy -kind Deployment -fault drop
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	mutiny "github.com/mutiny-sim/mutiny"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mutiny-inject:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mutiny-inject", flag.ContinueOnError)
	var (
		wl      = fs.String("workload", "deploy", "workload: deploy, scale, or failover")
		kind    = fs.String("kind", "Pod", "resource kind to target")
		channel = fs.String("channel", "store", "channel: store (apiserver→etcd) or request (component→apiserver)")
		source  = fs.String("source", "", "component prefix filter for the request channel (kcm, scheduler, kubelet-)")
		field   = fs.String("field", "", "field path, e.g. spec.replicas or metadata.labels[app]")
		fault   = fs.String("fault", "bitflip", "fault model: bitflip, set, drop, or protobyte")
		bit     = fs.Int("bit", 0, "bit index for integer bit flips (paper uses 0 and 4)")
		char    = fs.Int("char", 0, "character index for string bit flips")
		value   = fs.String("value", "", "replacement value for -fault set")
		occ     = fs.Int("occurrence", 1, "occurrence index of the injected message (1-based)")
		seed    = fs.Int64("seed", 1, "simulation seed")
		golden  = fs.Int("golden", 30, "golden runs for the classification baseline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := mutiny.Injection{
		Kind:         mutiny.KindPod,
		Channel:      mutiny.ChannelStore,
		SourcePrefix: *source,
		FieldPath:    *field,
		Bit:          *bit,
		CharIndex:    *char,
		Occurrence:   *occ,
	}
	in.Kind = mutiny.ResourceKind(*kind)
	if *channel == "request" {
		in.Channel = mutiny.ChannelRequest
	}
	switch *fault {
	case "bitflip":
		in.Type = mutiny.BitFlip
	case "set":
		in.Type = mutiny.SetValue
		if n, err := strconv.ParseInt(*value, 10, 64); err == nil {
			in.Value = n
		} else if *value == "true" || *value == "false" {
			in.Value = *value == "true"
		} else {
			in.Value = *value
		}
	case "drop":
		in.Type = mutiny.DropMessage
	case "protobyte":
		in.Type = mutiny.FlipProtoByte
	default:
		return fmt.Errorf("unknown fault model %q", *fault)
	}

	runner := mutiny.NewRunner()
	runner.GoldenRuns = *golden
	fmt.Fprintf(os.Stderr, "building %d-run golden baseline for %q...\n", *golden, *wl)
	res := runner.Run(mutiny.Spec{Workload: mutiny.WorkloadKind(*wl), Seed: *seed, Injection: &in})

	fmt.Printf("injection: %s\n", in.Label())
	fmt.Printf("fired: %v", res.Report.Fired)
	if res.Report.Fired {
		fmt.Printf(" at %v on %s (activated: %v)", res.Report.FiredAt, res.Report.Instance, res.Report.Activated)
		if res.Report.OldValue != nil {
			fmt.Printf("; %v → %v", res.Report.OldValue, res.Report.NewValue)
		}
	}
	fmt.Println()
	fmt.Printf("orchestrator-level failure: %s\n", res.OF)
	fmt.Printf("client-level failure:       %s (z = %.2f)\n", res.CF, res.Z)
	fmt.Printf("pods created in window:     %d\n", res.PodsCreated)
	fmt.Printf("user-visible API errors:    %d\n", res.UserErrors)
	return nil
}
