// Campaign-mini: a scaled-down version of the paper's ~8,800-experiment
// fault/error injection campaign (§IV-C), producing the same tables.
//
// The generated campaign is subsampled with a stride of 40 (~170
// experiments) and uses 15 golden runs per workload, so it finishes in well
// under a minute; drop the stride to 1 and raise the golden runs to 100 for
// the paper-scale study (the cmd/mutiny-campaign tool does exactly that).
//
//	go run ./examples/campaign-mini
package main

import (
	"fmt"
	"os"
	"time"

	mutiny "github.com/mutiny-sim/mutiny"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaign-mini:", err)
		os.Exit(1)
	}
}

func run() error {
	start := time.Now()
	out := mutiny.RunCampaign(mutiny.CampaignConfig{
		GoldenRuns:   15,
		SampleStride: 40,
		Progress: func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d experiments", done, total)
			}
		},
	})
	fmt.Fprintf(os.Stderr, "\ndone in %s\n\n", time.Since(start).Round(time.Second))

	fmt.Printf("experiments: %d main, %d refinement; recorded fields: %v\n\n",
		out.Main.Total(), out.Refinement.Total(), out.FieldsRecorded)
	mutiny.RenderTable4(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderTable5(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderTable6(os.Stdout, out.Propagation)
	fmt.Println()
	mutiny.RenderCriticalFields(os.Stdout, out.Main)
	fmt.Println()
	mutiny.RenderFindings(os.Stdout, out.Main)
	return nil
}
