// Cluster-wide network outage: the Reddit Pi-Day pattern (§II-B).
//
// In the 2023 Reddit outage, a Kubernetes upgrade silently changed node
// labels, breaking the network manager's configuration and taking the
// cluster network down for 314 minutes. This example reproduces the
// pattern: a single corrupted value in the network manager's ConfigMap (the
// simulated flannel's overlay configuration) invalidates the routes of
// every node at once. Running services keep their pods — the resources are
// all "correct" — but nothing is reachable: a cluster Outage (Out).
//
//	go run ./examples/network-outage
package main

import (
	"fmt"
	"os"
	"time"

	mutiny "github.com/mutiny-sim/mutiny"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "network-outage:", err)
		os.Exit(1)
	}
}

func run() error {
	cl := mutiny.NewCluster(mutiny.ClusterConfig{Seed: 42})
	cl.Start()
	if !cl.AwaitSettled(30 * time.Second) {
		return fmt.Errorf("cluster did not settle")
	}

	// Deploy the service application and wait for it to serve.
	driver := mutiny.NewDriver(cl, mutiny.WorkloadDeploy)
	driver.Setup()
	driver.Run()
	ns, svcName := driver.TargetService()
	probeClient := cl.Client("probe")

	probe := func(label string) {
		obj, err := probeClient.Get(mutiny.KindService, ns, svcName)
		if err != nil {
			fmt.Printf("%-30s service lookup failed: %v\n", label, err)
			return
		}
		vip := obj.(*mutiny.Service).Spec.ClusterIP
		ok := 0
		for i := 0; i < 20; i++ {
			if !cl.Net.Request(cl.MonitoringNode(), vip, 80).Failed() {
				ok++
			}
			cl.Loop.RunUntil(cl.Loop.Now() + 50*time.Millisecond)
		}
		fmt.Printf("%-30s %2d/20 requests served (routes on monitoring node: %v, DNS healthy: %v)\n",
			label, ok, cl.Net.RoutesUp(cl.MonitoringNode()), cl.Net.DNSHealthy())
	}

	probe("before the upgrade:")

	// The "upgrade": one value in the network manager's configuration
	// changes meaning; every network daemon reloads into a broken state.
	admin := cl.Client("platform-upgrade")
	setNetConfig := func(value string) error {
		obj, err := admin.Get(mutiny.KindConfigMap, mutiny.SystemNamespace, mutiny.NetConfigMapName)
		if err != nil {
			return err
		}
		cm := mutiny.CloneForWrite(obj).(*mutiny.ConfigMap)
		cm.Data[mutiny.NetConfigKey] = value
		return admin.Update(cm)
	}
	if err := setNetConfig("ovurlay:10.244.0.0/16"); err != nil { // one corrupted character
		return err
	}
	cl.Loop.RunUntil(cl.Loop.Now() + 15*time.Second)

	probe("after the config corruption:")
	fmt.Println("\npods are still running — every resource exists and is 'ready' —")
	fmt.Printf("and the control plane is responsive (%v), yet nothing answers: an Outage (Out).\n",
		cl.ControlPlaneResponsive())

	// Roll back, as Reddit's engineers eventually did.
	if err := setNetConfig(mutiny.NetConfigValue); err != nil {
		return err
	}
	cl.Loop.RunUntil(cl.Loop.Now() + 15*time.Second)
	probe("after rollback:")
	return nil
}
