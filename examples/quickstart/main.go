// Quickstart: run one fault-injection experiment end to end.
//
// This builds the simulated cluster, establishes a golden-run baseline for
// the deploy workload, then flips a single bit — the 5th bit of a
// Deployment's replica count, turning 2 into 18 — in the transaction that
// carries it to the data store, and prints the two-level failure
// classification the paper's campaign would assign.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	mutiny "github.com/mutiny-sim/mutiny"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	runner := mutiny.NewRunner()
	runner.GoldenRuns = 20 // the paper uses 100; 20 keeps the demo quick

	fmt.Println("building golden baseline (20 fault-free runs of the scale-up workload)...")
	res := runner.Run(mutiny.Spec{
		Workload: mutiny.WorkloadScaleUp,
		Seed:     1,
		Injection: &mutiny.Injection{
			Channel:    mutiny.ChannelStore, // apiserver→etcd: bypasses validation
			Kind:       mutiny.KindDeployment,
			FieldPath:  "spec.replicas",
			Type:       mutiny.BitFlip,
			Bit:        4, // the paper flips the 1st and 5th bits of integers
			Occurrence: 1, // the first message touching a Deployment
		},
	})

	fmt.Printf("\ninjection fired: %v\n", res.Report.Fired)
	if res.Report.Fired {
		fmt.Printf("  instance:  %s\n", res.Report.Instance)
		fmt.Printf("  old value: %v → new value: %v\n", res.Report.OldValue, res.Report.NewValue)
		fmt.Printf("  activated: %v\n", res.Report.Activated)
	}
	fmt.Printf("\norchestrator-level failure: %s\n", res.OF)
	fmt.Printf("client-level failure:       %s (z-score %.2f)\n", res.CF, res.Z)
	fmt.Printf("pods created in window:     %d\n", res.PodsCreated)
	fmt.Printf("user-visible API errors:    %d\n", res.UserErrors)
	fmt.Println("\nA single flipped bit silently over-provisioned the service (MoR):")
	fmt.Println("the orchestrator obediently reconciled toward the corrupted desired state.")
	return nil
}
