// Uncontrolled replication: the paper's flagship failure example (§V-C1).
//
// A single corrupted value in the labels binding pods to their controller
// leaves the controller unable to identify the pods it owns. Every
// replacement it spawns carries the same corrupted template and is equally
// unidentifiable, so pods are created in an infinite loop: the cluster's
// computing resources fill up, and eventually the data store itself runs
// out of space and stalls — a Stall (Sta) escalating toward an Outage.
//
// The corruption is injected on the apiserver→store channel, where the
// validation layer (which would reject a selector/template mismatch coming
// from a client) cannot see it.
//
//	go run ./examples/uncontrolled-replication
package main

import (
	"fmt"
	"os"

	mutiny "github.com/mutiny-sim/mutiny"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uncontrolled-replication:", err)
		os.Exit(1)
	}
}

func run() error {
	runner := mutiny.NewRunner()
	runner.GoldenRuns = 20

	fmt.Println("building golden baseline for the deploy workload...")
	res := runner.Run(mutiny.Spec{
		Workload: mutiny.WorkloadDeploy,
		Seed:     777,
		Injection: &mutiny.Injection{
			Channel:   mutiny.ChannelStore,
			Kind:      mutiny.KindReplicaSet,
			FieldPath: "spec.template.labels[app]",
			Type:      mutiny.SetValue,
			Value:     "mislabeled",
			// Occurrence 2 is the controller's scale-up update: the stored
			// ReplicaSet then wants replicas > 0 with a template that can
			// never match its own selector.
			Occurrence: 2,
		},
	})

	fmt.Printf("\ninjected: ReplicaSet %s, template label %q → %q\n",
		res.Report.Instance, res.Report.OldValue, res.Report.NewValue)
	fmt.Printf("pods created during the 45s window: %d (golden runs create ~6)\n", res.PodsCreated)
	fmt.Printf("orchestrator-level failure: %s\n", res.OF)
	fmt.Printf("client-level failure:       %s (z-score %.1f)\n", res.CF, res.Z)
	fmt.Printf("user-visible API errors:    %d\n", res.UserErrors)
	fmt.Println(`
The reconciliation loop spawned pods until node capacity and then the data
store's quota were exhausted ("eventually, the disk of the control plane
Node can fill up, stalling Etcd"). The user who deployed the service never
received an error.`)
	return nil
}
