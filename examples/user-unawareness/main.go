// User unawareness: finding F4.
//
// Orchestrators acknowledge a request for a state change and postpone the
// reconciliation; the API answer only means "your wish was recorded". If
// the wish is then lost — here, the transaction carrying a Deployment to the
// data store is dropped — the user receives no error, ever. The desired and
// observed states silently diverge; without external monitoring alerts the
// failure goes unnoticed until customers complain.
//
//	go run ./examples/user-unawareness
package main

import (
	"fmt"
	"os"

	mutiny "github.com/mutiny-sim/mutiny"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "user-unawareness:", err)
		os.Exit(1)
	}
}

func run() error {
	runner := mutiny.NewRunner()
	runner.GoldenRuns = 20

	fmt.Println("building golden baseline for the deploy workload...")
	res := runner.Run(mutiny.Spec{
		Workload: mutiny.WorkloadDeploy,
		Seed:     778,
		Injection: &mutiny.Injection{
			Channel:    mutiny.ChannelStore,
			Kind:       mutiny.KindDeployment,
			Type:       mutiny.DropMessage,
			Occurrence: 1, // the create of the first Deployment
		},
	})

	fmt.Printf("\nthe transaction creating %q was dropped before reaching the store\n", res.Report.Instance)
	fmt.Printf("(the paper's model: 'the calling function returns without any error').\n\n")
	fmt.Printf("errors the user received from the API server: %d\n", res.UserErrors)
	fmt.Printf("orchestrator-level failure:                    %s (less resources than desired)\n", res.OF)
	fmt.Printf("client-level failure:                          %s (the service never came up)\n", res.CF)
	fmt.Println(`
The kbench user's 'kubectl create' call returned success. The deployment
never existed. More than 85% of the paper's failed experiments showed
exactly this pattern: no error ever surfaced to the user (Figure 7).`)
	return nil
}
