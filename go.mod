module github.com/mutiny-sim/mutiny

go 1.22
