package mutiny_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	mutiny "github.com/mutiny-sim/mutiny"
)

// The HA smoke campaign `make check` runs: a three-replica control plane
// rides out one apiserver crash and one healed master partition, the
// workload completes on the survivors, and the failover/stale-read table
// renders from the measured windows.
func TestHAControlPlaneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("HA smoke campaign is slow")
	}
	runner := mutiny.NewRunner()
	runner.GoldenRuns = 5
	runner.ClusterConfig.ControlPlaneReplicas = 3

	agg := mutiny.NewAggregate()
	specs := []mutiny.Spec{
		{Workload: mutiny.WorkloadDeploy, Seed: 7_900_001, Injection: &mutiny.Injection{
			Type: mutiny.FaultAPIServerCrash, Replica: 0,
			After: 3 * time.Second, Heal: 18 * time.Second,
		}},
		{Workload: mutiny.WorkloadDeploy, Seed: 7_900_002, Injection: &mutiny.Injection{
			Type: mutiny.FaultMasterPartition, Replica: 0,
			After: 3 * time.Second, Heal: 18 * time.Second,
		}},
	}
	for _, spec := range specs {
		res := runner.Run(spec)
		if !res.Report.Fired || !res.Report.Activated {
			t.Fatalf("%s: fault did not fire/activate: %+v", spec.Injection.Type, res.Report)
		}
		if !res.Report.Healed {
			t.Fatalf("%s: fault did not heal: %+v", spec.Injection.Type, res.Report)
		}
		// A crashed or partitioned replica must degrade, not destroy: the
		// survivors keep the cluster reacting, so the run never classifies
		// as a stall or outage.
		if res.OF == mutiny.OFSta || res.OF == mutiny.OFOut {
			t.Fatalf("%s: escalated to %s; HA must ride out a single-replica fault", spec.Injection.Type, res.OF)
		}
		agg.Add(res)
	}

	// The measured windows feed the HA table: the partition must expose a
	// stale-read window (the isolated apiserver keeps serving its frozen
	// cache while the majority moves on).
	if st := agg.StaleByFault[mutiny.FaultMasterPartition]; len(st) != 1 || st[0] == 0 {
		t.Fatalf("partition stale-read window not measured: %v", st)
	}

	var buf bytes.Buffer
	mutiny.RenderHATable(&buf, agg)
	for _, axis := range []string{"apiserver-crash", "master-partition"} {
		if !strings.Contains(buf.String(), axis) {
			t.Fatalf("HA table missing %s axis:\n%s", axis, buf.String())
		}
	}
}
