package mutiny

import (
	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

func decode(data []byte, obj spec.Object) error { return codec.Unmarshal(data, obj) }

func encode(obj spec.Object) ([]byte, error) { return codec.Marshal(obj) }
