package apiserver

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/mutiny-sim/mutiny/internal/spec"
)

// The admission chain is the fourth injectable surface (after the store,
// request, and watch channels): a mutating + validating webhook pipeline
// evaluated on every spec-carrying write before it persists. Each hook is
// backed by an endpoint hosted on a cluster node; the server reaches it
// through the virtual network (a reachability probe injected by the cluster,
// so the apiserver package never imports netsim), with a per-call timeout
// and bounded retry-with-backoff on transient failure.
//
// What happens when a webhook is unreachable is the hook's FailurePolicy —
// the fail-open vs fail-closed dilemma the campaign measures:
//
//   - Fail (fail-closed): the write is rejected with ErrAdmission. Policy
//     enforcement never lapses, but webhook downtime becomes a write-
//     availability outage for everything the hook selects.
//   - Ignore (fail-open): the hook is skipped and the write proceeds.
//     Availability is preserved, but objects that the hook would have denied
//     are silently admitted — an enforcement-integrity loss. The chain
//     shadow-evaluates the skipped predicate and counts those admissions in
//     ViolationsAdmitted (an observer-only tally; it never alters behavior).
//
// Hook calls are synchronous on the write path, so network latency and
// retry backoff are returned-value accounting (like netsim.Request), never
// clock advancement: a delayed webhook whose effective latency exceeds its
// timeout is a transient failure, not a stalled simulation.
//
// One chain is shared by every apiserver replica (like the shared Audit):
// admission configuration is cluster state, not per-replica state, and a
// fault must bite no matter which replica serves the write.

// ErrAdmission marks a write rejected by the admission chain — either denied
// by a validating webhook or refused because an unreachable hook's policy is
// fail-closed. It is deliberately distinct from ErrUnavailable: the chain is
// cluster-wide, so failover clients must NOT retry another replica.
var ErrAdmission = errors.New("apiserver: admission denied")

// FailurePolicy decides what an unreachable webhook does to the write.
type FailurePolicy string

// The two admission failure policies.
const (
	// FailClosed rejects the write when the webhook cannot be reached.
	FailClosed FailurePolicy = "Fail"
	// FailOpen skips the unreachable webhook and admits the write.
	FailOpen FailurePolicy = "Ignore"
)

// webhookLatency is the virtual-network round trip of one webhook call
// (mirrors netsim's proxy latency; accounting-only, see package comment).
const webhookLatency = 2 * time.Millisecond

// AdmissionSelector scopes a hook to a subset of writes: any of the listed
// kinds (empty = all), one namespace (empty = all), and a label subset.
// Real policy webhooks are scoped the same way (objectSelector +
// namespaceSelector), which is what keeps system namespaces writable while
// a fail-closed hook is down.
type AdmissionSelector struct {
	Kinds     []spec.Kind
	Namespace string
	Labels    map[string]string
}

func (s AdmissionSelector) matches(obj spec.Object) bool {
	if len(s.Kinds) > 0 {
		ok := false
		for _, k := range s.Kinds {
			if obj.Kind() == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	m := obj.Meta()
	if s.Namespace != "" && m.Namespace != s.Namespace {
		return false
	}
	for k, v := range s.Labels {
		if m.Labels[k] != v {
			return false
		}
	}
	return true
}

// AdmissionHook is one registered webhook. Mutating hooks run first (in
// registration order) and may rewrite the object; validating hooks run after
// every mutation and may deny the write. Backend names the cluster node
// hosting the webhook endpoint — crash that node (or cut its routes) and the
// hook becomes unreachable through the virtual network.
type AdmissionHook struct {
	Name     string
	Mutating bool
	Selector AdmissionSelector
	Policy   FailurePolicy
	// Timeout bounds one webhook call; an injected delay pushing the
	// effective latency past it counts as a transient failure.
	Timeout time.Duration
	// Retries and Backoff bound the retry loop on transient failure.
	Retries int
	Backoff time.Duration
	Backend string

	// Mutate rewrites the (request-private) object; nil for validating hooks.
	Mutate func(obj spec.Object)
	// Validate denies the write by returning an error; nil for mutating hooks.
	Validate func(obj spec.Object) error

	// Injected fault state (see the chain's fault methods).
	down           bool
	delay          time.Duration
	selectorBroken bool
	policyDropped  bool
}

// AdmissionChain evaluates registered hooks on every spec-carrying write.
type AdmissionChain struct {
	hooks []*AdmissionHook
	// reach probes the virtual network: can the control plane currently
	// route to the named node? Injected by the cluster at assembly.
	reach func(node string) bool
	// override, when set, replaces every hook's configured FailurePolicy for
	// the rest of the experiment — how one bootstrap snapshot serves both
	// policy regimes (the policy is behaviorally inert while hooks are
	// healthy, so it can be chosen at injector-arm time).
	override FailurePolicy

	evaluated           int64
	denied              int64
	rejectedUnavailable int64
	violationsAdmitted  int64
}

// NewAdmissionChain builds a chain over the given hooks (evaluation order:
// mutating hooks in slice order, then validating hooks in slice order).
func NewAdmissionChain(hooks ...*AdmissionHook) *AdmissionChain {
	return &AdmissionChain{hooks: hooks}
}

// SetReachability installs the virtual-network probe webhook calls consult.
func (c *AdmissionChain) SetReachability(f func(node string) bool) { c.reach = f }

// SetFailurePolicy overrides every hook's failure policy for the rest of the
// experiment. Empty restores the per-hook configuration.
func (c *AdmissionChain) SetFailurePolicy(p FailurePolicy) { c.override = p }

// HookCount returns the number of registered hooks.
func (c *AdmissionChain) HookCount() int { return len(c.hooks) }

// HookName returns the name of hook i (index normalized like fault replicas).
func (c *AdmissionChain) HookName(i int) string { return c.hooks[c.idx(i)].Name }

// Idx normalizes an arbitrary hook index into range, the way control-plane
// faults normalize replica indices (`replica % Replicas()`).
func (c *AdmissionChain) Idx(i int) int { return c.idx(i) }

func (c *AdmissionChain) idx(i int) int {
	if i < 0 {
		i = -i
	}
	return i % len(c.hooks)
}

// --- injected fault state -----------------------------------------------------

// CrashWebhook takes hook i's backend process down (FaultWebhookDown).
func (c *AdmissionChain) CrashWebhook(i int) { c.hooks[c.idx(i)].down = true }

// RestoreWebhook undoes CrashWebhook.
func (c *AdmissionChain) RestoreWebhook(i int) { c.hooks[c.idx(i)].down = false }

// DelayWebhook adds d to every call to hook i (FaultWebhookLatency). A delay
// pushing the effective latency past the hook's timeout makes every call a
// transient failure — the slow-webhook outage mode.
func (c *AdmissionChain) DelayWebhook(i int, d time.Duration) { c.hooks[c.idx(i)].delay = d }

// ClearWebhookDelay undoes DelayWebhook.
func (c *AdmissionChain) ClearWebhookDelay(i int) { c.hooks[c.idx(i)].delay = 0 }

// BreakSelector misconfigures hook i's selector so it matches nothing
// (FaultWebhookSelector, the wrong-selector configuration defect): the policy
// silently stops applying regardless of failure policy. The chain keeps
// shadow-matching the intended selector to count the violations admitted.
func (c *AdmissionChain) BreakSelector(i int) { c.hooks[c.idx(i)].selectorBroken = true }

// RestoreSelector undoes BreakSelector.
func (c *AdmissionChain) RestoreSelector(i int) { c.hooks[c.idx(i)].selectorBroken = false }

// DropPolicy misconfigures hook i as if its failurePolicy stanza were
// missing (FaultWebhookPolicy): the platform default — Ignore, fail-open —
// applies, AND the backend goes down, modeling the documented trap where an
// operator believes a hook is fail-closed but its unavailability silently
// drops enforcement instead.
func (c *AdmissionChain) DropPolicy(i int) {
	h := c.hooks[c.idx(i)]
	h.policyDropped = true
	h.down = true
}

// RestorePolicy undoes DropPolicy.
func (c *AdmissionChain) RestorePolicy(i int) {
	h := c.hooks[c.idx(i)]
	h.policyDropped = false
	h.down = false
}

func (c *AdmissionChain) effectivePolicy(h *AdmissionHook) FailurePolicy {
	if h.policyDropped {
		return FailOpen
	}
	if c.override != "" {
		return c.override
	}
	if h.Policy == "" {
		return FailOpen
	}
	return h.Policy
}

// unavailable reports whether a call to h would fail right now: backend
// process down, node unreachable through the virtual network, or effective
// latency past the hook timeout.
func (c *AdmissionChain) unavailable(h *AdmissionHook) bool {
	if h.down {
		return true
	}
	if c.reach != nil && h.Backend != "" && !c.reach(h.Backend) {
		return true
	}
	return h.Timeout > 0 && webhookLatency+h.delay > h.Timeout
}

// call performs one webhook call with bounded retry. The fault state is
// stable within a synchronous write, so the retry loop is accounting (each
// attempt charges latency+backoff by the returned-value model), but it keeps
// the configured bound meaningful for fault state that changes between
// writes.
func (c *AdmissionChain) call(h *AdmissionHook) error {
	for attempt := 0; ; attempt++ {
		if !c.unavailable(h) {
			return nil
		}
		if attempt >= h.Retries {
			return fmt.Errorf("webhook %q unavailable after %d attempt(s)", h.Name, attempt+1)
		}
	}
}

// Degraded reports whether some hook is currently turning webhook downtime
// into write rejections: effective policy fail-closed and backend
// unreachable. A broken-selector hook matches nothing and so rejects
// nothing. The collector charges scrape intervals with Degraded() true to
// the admission-outage window.
func (c *AdmissionChain) Degraded() bool {
	for _, h := range c.hooks {
		if h.selectorBroken {
			continue
		}
		if c.effectivePolicy(h) == FailClosed && c.unavailable(h) {
			return true
		}
	}
	return false
}

// Admit evaluates the chain on one write: mutating hooks first (registration
// order), then validating hooks. It returns nil to admit (possibly after
// mutation) or an ErrAdmission-wrapped error to reject. Counters:
// denied/rejectedUnavailable on the reject paths, ViolationsAdmitted once
// per admitted write that a skipped validating hook would have denied.
func (c *AdmissionChain) Admit(verb Verb, obj spec.Object) error {
	c.evaluated++
	violated := false
	for _, mutating := range [2]bool{true, false} {
		for _, h := range c.hooks {
			if h.Mutating != mutating {
				continue
			}
			if h.selectorBroken {
				// Wrong selector: the hook silently stops applying. Shadow-
				// evaluate the intended configuration so the integrity loss
				// is measurable.
				if violatesSkipped(h, verb, obj) && h.Selector.matches(obj) {
					violated = true
				}
				continue
			}
			if !h.Selector.matches(obj) {
				continue
			}
			if err := c.call(h); err != nil {
				if c.effectivePolicy(h) == FailClosed {
					c.rejectedUnavailable++
					return fmt.Errorf("%w: %v (failurePolicy=Fail)", ErrAdmission, err)
				}
				// Fail-open: skip the hook, note what slipped through.
				if violatesSkipped(h, verb, obj) {
					violated = true
				}
				continue
			}
			if h.Mutating {
				if h.Mutate != nil {
					h.Mutate(obj)
				}
				continue
			}
			if h.Validate != nil {
				if err := h.Validate(obj); err != nil {
					c.denied++
					return fmt.Errorf("%w: webhook %q: %v", ErrAdmission, h.Name, err)
				}
			}
		}
	}
	if violated {
		c.violationsAdmitted++
	}
	return nil
}

// violatesSkipped reports whether skipping h admits a policy violation.
// Only creates count: one admitted violating object is one integrity loss,
// however many times it is subsequently updated.
func violatesSkipped(h *AdmissionHook, verb Verb, obj spec.Object) bool {
	return !h.Mutating && verb == VerbCreate && h.Validate != nil && h.Validate(obj) != nil
}

// Evaluated returns the number of writes the chain evaluated.
func (c *AdmissionChain) Evaluated() int64 { return c.evaluated }

// Denied returns the number of writes denied by a healthy validating hook.
func (c *AdmissionChain) Denied() int64 { return c.denied }

// RejectedUnavailable returns the number of writes rejected because an
// unreachable hook's effective policy was fail-closed.
func (c *AdmissionChain) RejectedUnavailable() int64 { return c.rejectedUnavailable }

// ViolationsAdmitted returns the number of admitted writes that a skipped
// validating hook would have denied — the enforcement-integrity loss.
func (c *AdmissionChain) ViolationsAdmitted() int64 { return c.violationsAdmitted }

// --- snapshot / fork safety ---------------------------------------------------

// AdmissionSnapshot carries the chain's counters across a cluster fork.
// Fault state is deliberately NOT captured: snapshots are taken of settled,
// fault-free clusters, and each fork arms its own injector. Restore is a
// full overwrite, so restoring once per apiserver replica (the chain is
// shared) is idempotent — exactly the audit trail's contract.
type AdmissionSnapshot struct {
	Present             bool
	Evaluated           int64
	Denied              int64
	RejectedUnavailable int64
	ViolationsAdmitted  int64
}

func (c *AdmissionChain) snapshot() AdmissionSnapshot {
	return AdmissionSnapshot{
		Present:             true,
		Evaluated:           c.evaluated,
		Denied:              c.denied,
		RejectedUnavailable: c.rejectedUnavailable,
		ViolationsAdmitted:  c.violationsAdmitted,
	}
}

func (c *AdmissionChain) restore(snap AdmissionSnapshot) {
	c.evaluated = snap.Evaluated
	c.denied = snap.Denied
	c.rejectedUnavailable = snap.RejectedUnavailable
	c.violationsAdmitted = snap.ViolationsAdmitted
}

// --- the standard governance chain --------------------------------------------

// AdmissionDefaultedLabel is stamped by the standard mutating defaulter hook
// onto every object it admits.
const AdmissionDefaultedLabel = "policy.mutiny.io/defaulted"

// StandardAdmissionHooks builds the first n of the standard governance-
// operator chain, every hook configured with the given failure policy and
// its backend on one of the given nodes (round-robin):
//
//  1. "defaulter" (mutating): stamps AdmissionDefaultedLabel.
//  2. "image-policy" (validating): images must come from registry.local and
//     must not float on :latest.
//  3. "limits-policy" (validating): every container must set CPU and memory
//     limits.
//
// All three select application-namespace workload objects only — scoping
// that keeps kube-system (and the control plane's own writes) out of the
// blast radius of a fail-closed outage, as real governance webhooks do.
func StandardAdmissionHooks(n int, policy FailurePolicy, backends []string) []*AdmissionHook {
	selector := func() AdmissionSelector {
		return AdmissionSelector{
			Kinds: []spec.Kind{
				spec.KindPod, spec.KindReplicaSet, spec.KindDeployment, spec.KindDaemonSet,
			},
			Namespace: spec.DefaultNamespace,
		}
	}
	backend := func(i int) string {
		if len(backends) == 0 {
			return ""
		}
		return backends[i%len(backends)]
	}
	all := []*AdmissionHook{
		{
			Name:     "defaulter",
			Mutating: true,
			Mutate: func(obj spec.Object) {
				m := obj.Meta()
				if m.Labels == nil {
					m.Labels = map[string]string{}
				}
				m.Labels[AdmissionDefaultedLabel] = "true"
			},
		},
		{
			Name:     "image-policy",
			Validate: func(obj spec.Object) error { return validateImages(obj) },
		},
		{
			Name:     "limits-policy",
			Validate: func(obj spec.Object) error { return validateLimits(obj) },
		},
	}
	if n > len(all) {
		n = len(all)
	}
	hooks := all[:n]
	for i, h := range hooks {
		h.Selector = selector()
		h.Policy = policy
		h.Timeout = time.Second
		h.Retries = 2
		h.Backoff = 100 * time.Millisecond
		h.Backend = backend(i)
	}
	return hooks
}

// workloadContainers extracts the container list a policy hook inspects.
func workloadContainers(obj spec.Object) []spec.Container {
	switch o := obj.(type) {
	case *spec.Pod:
		return o.Spec.Containers
	case *spec.ReplicaSet:
		return o.Spec.Template.Spec.Containers
	case *spec.Deployment:
		return o.Spec.Template.Spec.Containers
	case *spec.DaemonSet:
		return o.Spec.Template.Spec.Containers
	}
	return nil
}

func validateImages(obj spec.Object) error {
	for _, ct := range workloadContainers(obj) {
		if !strings.HasPrefix(ct.Image, "registry.local/") {
			return fmt.Errorf("container %q: image %q not from registry.local", ct.Name, ct.Image)
		}
		if strings.HasSuffix(ct.Image, ":latest") {
			return fmt.Errorf("container %q: floating tag :latest forbidden", ct.Name)
		}
	}
	return nil
}

func validateLimits(obj spec.Object) error {
	for _, ct := range workloadContainers(obj) {
		if ct.LimitsMilliCPU <= 0 || ct.LimitsMemMB <= 0 {
			return fmt.Errorf("container %q: CPU and memory limits are required", ct.Name)
		}
	}
	return nil
}
