package apiserver

import (
	"time"

	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Audit records every error the API server returned and per-identity request
// counters. It feeds the user-unawareness analysis (Figure 7: in most
// experiments that end in failure, the cluster user never receives an error
// from the API server) and the propagation experiments of Table VI.
type Audit struct {
	loop *sim.Loop

	Entries []AuditEntry

	okByIdentity  map[string]int
	errByIdentity map[string]int

	undecodable      int
	droppedWrites    int
	tamperedOK       int
	tamperedErrored  int
	checksumFailures int
}

// AuditEntry is one failed request.
type AuditEntry struct {
	At       time.Duration
	Source   string
	Verb     Verb
	Kind     spec.Kind
	Name     string
	Err      string
	Tampered bool
}

// NewAudit returns an empty audit trail.
func NewAudit(loop *sim.Loop) *Audit {
	return &Audit{
		loop:          loop,
		okByIdentity:  make(map[string]int),
		errByIdentity: make(map[string]int),
	}
}

func (a *Audit) record(identity string, verb Verb, kind spec.Kind, name string, err error, tampered bool) error {
	a.errByIdentity[identity]++
	if tampered {
		a.tamperedErrored++
	}
	a.Entries = append(a.Entries, AuditEntry{
		At: a.loop.Now(), Source: identity, Verb: verb, Kind: kind, Name: name,
		Err: err.Error(), Tampered: tampered,
	})
	return err
}

func (a *Audit) countOK(identity string, _ Verb) {
	a.okByIdentity[identity]++
}

func (a *Audit) countDrop()            { a.droppedWrites++ }
func (a *Audit) countUndecodable()     { a.undecodable++ }
func (a *Audit) countTamperedOK()      { a.tamperedOK++ }
func (a *Audit) countChecksumFailure() { a.checksumFailures++ }

// ChecksumFailures returns how many stored objects failed critical-field
// checksum verification (the §VI-B redundancy-code mitigation).
func (a *Audit) ChecksumFailures() int { return a.checksumFailures }

// ErrorsBy returns the number of failed requests issued by identity.
func (a *Audit) ErrorsBy(identity string) int { return a.errByIdentity[identity] }

// OKBy returns the number of successful requests issued by identity.
func (a *Audit) OKBy(identity string) int { return a.okByIdentity[identity] }

// Undecodable returns how many store values failed to decode.
func (a *Audit) Undecodable() int { return a.undecodable }

// DroppedWrites returns how many store writes were dropped by injection.
func (a *Audit) DroppedWrites() int { return a.droppedWrites }

// TamperedPersisted returns how many tampered requests were persisted
// (the "Prop" column of Table VI).
func (a *Audit) TamperedPersisted() int { return a.tamperedOK }

// TamperedErrored returns how many tampered requests drew an error
// (the "Err" column of Table VI).
func (a *Audit) TamperedErrored() int { return a.tamperedErrored }

// ErrorEntriesBy returns the audit entries recorded for identity.
func (a *Audit) ErrorEntriesBy(identity string) []AuditEntry {
	var out []AuditEntry
	for _, e := range a.Entries {
		if e.Source == identity {
			out = append(out, e)
		}
	}
	return out
}
