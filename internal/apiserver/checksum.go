package apiserver

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// ChecksumAnnotation carries the redundancy code over an object's critical
// fields (§VI-B mitigation). The server stamps it as the last step before a
// transaction leaves for the store, so any later single-bit corruption of a
// dependency, identity, or networking field — in flight or at rest — makes
// the stored object fail verification and be deleted like an undecodable
// one, letting the level-triggered controllers rebuild it from its owner.
const ChecksumAnnotation = "mutiny.io/critical-checksum"

// stampChecksum computes and attaches the critical-field checksum. The
// annotations map is replaced, not mutated in place: status clones alias
// their sealed source's (possibly interned, shared) map, and scribbling on
// that would corrupt every object sharing it.
func stampChecksum(obj spec.Object) {
	sum := criticalChecksum(obj)
	meta := obj.Meta()
	ann := make(map[string]string, len(meta.Annotations)+1)
	for k, v := range meta.Annotations {
		ann[k] = v
	}
	ann[ChecksumAnnotation] = sum
	meta.Annotations = ann
}

// verifyChecksum reports whether the object's critical fields still match
// its stamped checksum. Objects without a stamp (created before the option
// was enabled, or built by tests) pass.
func verifyChecksum(obj spec.Object) bool {
	stamped, ok := obj.Meta().Annotations[ChecksumAnnotation]
	if !ok {
		return true
	}
	return stamped == criticalChecksum(obj)
}

// criticalChecksum hashes the (path, value) pairs of every critical field in
// deterministic order. The checksum annotation itself is excluded by
// construction: annotation paths are not critical fields.
func criticalChecksum(obj spec.Object) string {
	type entry struct{ path, value string }
	var entries []entry
	for _, f := range codec.Fields(obj) {
		if !spec.CriticalFieldPath(f.Path) {
			continue
		}
		if strings.Contains(f.Path, ChecksumAnnotation) {
			continue
		}
		val, err := codec.Get(obj, f.Path)
		if err != nil {
			continue
		}
		entries = append(entries, entry{path: f.Path, value: fmt.Sprint(val)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].path < entries[j].path })
	h := fnv.New64a()
	for _, e := range entries {
		_, _ = h.Write([]byte(e.path))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(e.value))
		_, _ = h.Write([]byte{1})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
