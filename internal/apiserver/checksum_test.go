package apiserver

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

func newChecksumServer(t *testing.T) (*sim.Loop, *store.Store, *Server) {
	t.Helper()
	loop := sim.NewLoop(1)
	st := store.New(loop, nil)
	srv := New(loop, st, &Options{CriticalFieldChecksums: true})
	return loop, st, srv
}

func TestChecksumStampedOnWrite(t *testing.T) {
	loop, st, srv := newChecksumServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	kv, ok := st.Get(spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1"))
	if !ok {
		t.Fatal("pod not stored")
	}
	stored := spec.New(spec.KindPod)
	if err := codec.Unmarshal(kv.Value, stored); err != nil {
		t.Fatal(err)
	}
	if stored.Meta().Annotations[ChecksumAnnotation] == "" {
		t.Fatal("write not stamped with a critical-field checksum")
	}
}

// The §VI-B redundancy code at work: a bit flip in a critical field between
// the server and the store is detected at read-back and the object removed
// (so its owner can rebuild it) instead of silently becoming cluster state.
func TestChecksumDetectsCriticalFieldCorruption(t *testing.T) {
	loop, st, srv := newChecksumServer(t)
	// Tamper in flight, after the checksum stamp: flip one label character.
	srv.SetStoreWriteHook(func(m *Message) Action {
		if m.Kind != spec.KindPod {
			return Pass
		}
		obj := spec.New(m.Kind)
		if err := codec.Unmarshal(m.Data, obj); err != nil {
			return Pass
		}
		obj.Meta().Labels["app"] = "veb" // 'w' with its LSB flipped
		data, err := codec.Marshal(obj)
		if err != nil {
			return Pass
		}
		m.Data = data
		return Pass
	})
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(2 * time.Second)
	// The corrupted object must have been detected and deleted.
	if _, ok := st.Get(spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")); ok {
		t.Fatal("corrupted object survived checksum verification")
	}
	if srv.Audit().ChecksumFailures() == 0 {
		t.Fatal("checksum failure not counted")
	}
}

// Corruption of a NON-critical field is not covered by the redundancy code
// (the paper's point: the critical fields are <10% of the total, so the
// protection is cheap — and partial).
func TestChecksumIgnoresNonCriticalCorruption(t *testing.T) {
	loop, st, srv := newChecksumServer(t)
	srv.SetStoreWriteHook(func(m *Message) Action {
		if m.Kind != spec.KindPod {
			return Pass
		}
		obj := spec.New(m.Kind)
		if err := codec.Unmarshal(m.Data, obj); err != nil {
			return Pass
		}
		obj.(*spec.Pod).Status.Reason = "corrupted-but-benign"
		data, err := codec.Marshal(obj)
		if err != nil {
			return Pass
		}
		m.Data = data
		return Pass
	})
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(2 * time.Second)
	if _, ok := st.Get(spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")); !ok {
		t.Fatal("object with non-critical corruption was deleted")
	}
	if srv.Audit().ChecksumFailures() != 0 {
		t.Fatal("non-critical corruption flagged by the checksum")
	}
}

func TestChecksumSurvivesLegitimateUpdates(t *testing.T) {
	loop, _, srv := newChecksumServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	pod := spec.CloneForWriteAs(obj.(*spec.Pod))
	pod.Metadata.Labels["extra"] = "fine"
	if err := c.Update(pod); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(2 * time.Second)
	obj, err = c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatalf("object unreadable after legitimate update: %v", err)
	}
	if obj.Meta().Labels["extra"] != "fine" {
		t.Fatal("legitimate update lost")
	}
	if srv.Audit().ChecksumFailures() != 0 {
		t.Fatal("legitimate update tripped the checksum")
	}
}

func TestChecksumAtRestCorruptionDetected(t *testing.T) {
	loop, st, srv := newChecksumServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	st.CorruptAtRest(key, func(b []byte) []byte {
		obj := spec.New(spec.KindPod)
		if err := codec.Unmarshal(b, obj); err != nil {
			return b
		}
		obj.Meta().Labels["app"] = "veb"
		out, err := codec.Marshal(obj)
		if err != nil {
			return b
		}
		return out
	})
	// An apiserver restart re-reads the store: the hardware-fault-style
	// corruption is caught by the redundancy code.
	srv.Restart()
	loop.RunUntil(loop.Now() + 2*time.Second)
	if _, ok := st.Get(key); ok {
		t.Fatal("at-rest corruption of a critical field survived restart verification")
	}
	if srv.Audit().ChecksumFailures() == 0 {
		t.Fatal("at-rest corruption not counted")
	}
}
