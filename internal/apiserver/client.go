package apiserver

import (
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Client is a component's handle on the API server, carrying the component's
// identity so that the audit trail and the propagation experiments can
// attribute every request.
type Client struct {
	srv      *Server
	identity string
}

// Identity returns the component identity bound to this client.
func (c *Client) Identity() string { return c.identity }

// Create persists a new object.
func (c *Client) Create(obj spec.Object) error {
	return c.srv.handle(c.identity, VerbCreate, obj.Clone())
}

// Update replaces an existing object (spec + metadata); its resourceVersion
// must match the current one.
func (c *Client) Update(obj spec.Object) error {
	return c.srv.handle(c.identity, VerbUpdate, obj.Clone())
}

// UpdateStatus updates only the status subresource of an existing object.
func (c *Client) UpdateStatus(obj spec.Object) error {
	return c.srv.handle(c.identity, VerbUpdateStatus, obj.Clone())
}

// Delete removes an object.
func (c *Client) Delete(kind spec.Kind, namespace, name string) error {
	obj := spec.New(kind)
	obj.Meta().Namespace = namespace
	obj.Meta().Name = name
	return c.srv.handle(c.identity, VerbDelete, obj)
}

// Get fetches one object (served from the watch cache, like a real
// apiserver read).
func (c *Client) Get(kind spec.Kind, namespace, name string) (spec.Object, error) {
	return c.srv.get(kind, namespace, name)
}

// List returns all objects of a kind, optionally restricted to a namespace
// (empty namespace means all).
func (c *Client) List(kind spec.Kind, namespace string) []spec.Object {
	return c.srv.list(kind, namespace)
}

// GetView is Get without the defensive copy. The returned object is shared
// with the watch cache and MUST NOT be mutated — use it on read-only hot
// paths (polling a status, resolving a service VIP). To modify an object,
// Get it.
func (c *Client) GetView(kind spec.Kind, namespace, name string) (spec.Object, error) {
	return c.srv.getView(kind, namespace, name)
}

// ListView is List without the per-object defensive copies, under the same
// read-only contract as GetView.
func (c *Client) ListView(kind spec.Kind, namespace string) []spec.Object {
	return c.srv.listView(kind, namespace)
}

// ListSelected returns the objects of a kind in a namespace whose labels
// match the selector.
func (c *Client) ListSelected(kind spec.Kind, namespace string, sel spec.LabelSelector) []spec.Object {
	all := c.srv.list(kind, namespace)
	var out []spec.Object
	for _, obj := range all {
		if sel.Matches(obj.Meta().Labels) {
			out = append(out, obj)
		}
	}
	return out
}

// Watch subscribes to change events for a kind ("" for all kinds). The
// cancel function detaches the watcher.
func (c *Client) Watch(kind spec.Kind, fn func(WatchEvent)) (cancel func()) {
	return c.srv.watch(kind, fn)
}
