package apiserver

import (
	"time"

	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Client is a component's handle on the API server, carrying the component's
// identity so that the audit trail and the propagation experiments can
// attribute every request.
//
// Reads follow the sealed-read contract: Get and List return the server's
// sealed cache instances with zero copies. Callers may read and retain them
// freely — sealed objects never change — but must obtain a private copy via
// spec.CloneForWrite before mutating. Writes serialize the argument without
// copying it first (the server decodes its own private instance from the
// wire bytes), so the caller keeps ownership of what it passed in.
// An HA client (built via Endpoints.ClientFor) additionally knows every
// apiserver replica and fails over between them; see endpoints.go. A client
// built from a single Server (eps nil) takes none of those paths — the
// single-apiserver hot path is unchanged.
type Client struct {
	srv      *Server
	identity string

	// Failover state; nil/empty for single-server clients. cur is the
	// endpoint the client is homed on, deadline/fails the per-endpoint
	// backoff state, watches the subscriptions that migrate on failover.
	eps      *Endpoints
	cur      int
	deadline []time.Duration
	fails    []int
	watches  []*clientWatch
}

// Identity returns the component identity bound to this client.
func (c *Client) Identity() string { return c.identity }

// Create persists a new object. The argument is only serialized, never
// retained or mutated by the server.
func (c *Client) Create(obj spec.Object) error {
	if c.eps == nil {
		return c.srv.handle(c.identity, VerbCreate, obj)
	}
	return c.do(func(srv *Server) error { return srv.handle(c.identity, VerbCreate, obj) })
}

// Update replaces an existing object (spec + metadata); its resourceVersion
// must match the current one.
func (c *Client) Update(obj spec.Object) error {
	if c.eps == nil {
		return c.srv.handle(c.identity, VerbUpdate, obj)
	}
	return c.do(func(srv *Server) error { return srv.handle(c.identity, VerbUpdate, obj) })
}

// UpdateStatus updates only the status subresource of an existing object.
func (c *Client) UpdateStatus(obj spec.Object) error {
	if c.eps == nil {
		return c.srv.handle(c.identity, VerbUpdateStatus, obj)
	}
	return c.do(func(srv *Server) error { return srv.handle(c.identity, VerbUpdateStatus, obj) })
}

// Delete removes an object.
func (c *Client) Delete(kind spec.Kind, namespace, name string) error {
	obj := spec.New(kind)
	obj.Meta().Namespace = namespace
	obj.Meta().Name = name
	if c.eps == nil {
		return c.srv.handle(c.identity, VerbDelete, obj)
	}
	return c.do(func(srv *Server) error { return srv.handle(c.identity, VerbDelete, obj) })
}

// Get fetches one object (served from the watch cache, like a real apiserver
// read) as a sealed reference: shared, immutable, free to retain. To modify
// the result, pass it through spec.CloneForWrite first.
func (c *Client) Get(kind spec.Kind, namespace, name string) (spec.Object, error) {
	if c.eps == nil {
		return c.srv.get(kind, namespace, name)
	}
	var obj spec.Object
	err := c.do(func(srv *Server) error {
		var err error
		obj, err = srv.get(kind, namespace, name)
		return err
	})
	return obj, err
}

// List returns all objects of a kind, optionally restricted to a namespace
// (empty namespace means all), as sealed references under the same contract
// as Get.
func (c *Client) List(kind spec.Kind, namespace string) []spec.Object {
	if c.eps == nil {
		return c.srv.list(kind, namespace)
	}
	var out []spec.Object
	_ = c.do(func(srv *Server) error {
		out = srv.list(kind, namespace)
		return nil
	})
	return out
}

// ListSelected returns the objects of a kind in a namespace whose labels
// match the selector, as sealed references.
func (c *Client) ListSelected(kind spec.Kind, namespace string, sel spec.LabelSelector) []spec.Object {
	all := c.List(kind, namespace)
	var out []spec.Object
	for _, obj := range all {
		if sel.Matches(obj.Meta().Labels) {
			out = append(out, obj)
		}
	}
	return out
}

// Watch subscribes to change events for a kind ("" for all kinds). Event
// objects are sealed references shared across all watchers. The cancel
// function detaches the watcher.
func (c *Client) Watch(kind spec.Kind, fn func(WatchEvent)) (cancel func()) {
	if c.eps == nil {
		return c.srv.watch(kind, fn)
	}
	return c.watchFailover(kind, fn)
}

// NoteAccess records a read of the given store key with the server's access
// hook, exactly as a successful Get of that key would. Components that serve
// reads from a watch-maintained local view (see Reflector) call it so the
// injection framework's activation accounting — "the injected resource
// instance is requested after the injection" — keeps the same per-request
// granularity it had when every read hit the server.
func (c *Client) NoteAccess(key string) {
	c.srv.noteAccess(key)
}
