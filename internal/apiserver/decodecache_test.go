package apiserver

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// The revision-tagged decoded-object cache elides backend-byte decodes on
// the write path (conflict checks), watch ingest, and cache rebuilds. These
// tests pin down the contract: revision-tagged hits, real decodes after any
// byte-level fault (tampered store writes, at-rest corruption), and sealed
// (immutable) entries. The campaign-level seal guard
// (TestSealedObjectsAreNeverMutated) covers the same entries end to end:
// every object entering the cache passes through spec.Seal, so the guard's
// seal hook checksums it and proves nothing mutates it afterwards.

// settle drains the store watch latency so writes reach the watch cache.
func settle(loop *sim.Loop) {
	loop.RunUntil(loop.Now() + 50*time.Millisecond)
}

func TestDecodeCacheHitsOnWritePath(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	hits0, misses0, _ := srv.DecodeCacheStats()
	if misses0 != 0 {
		t.Fatalf("untampered create performed %d real decodes, want 0 (write path should prime the cache)", misses0)
	}
	if hits0 == 0 {
		t.Fatal("watch ingest of the create did not hit the decode cache")
	}

	// An update's conflict check reads the current object from the backend;
	// with the cache primed it must not decode.
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	upd := spec.CloneForWriteAs(obj.(*spec.Pod))
	upd.Metadata.Annotations = map[string]string{"touch": "1"}
	if err := c.Update(upd); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	hits1, misses1, _ := srv.DecodeCacheStats()
	if misses1 != misses0 {
		t.Fatalf("update performed %d real decodes, want 0", misses1-misses0)
	}
	if hits1 <= hits0 {
		t.Fatal("update's conflict check did not hit the decode cache")
	}
}

func TestDecodeCacheEntriesAreSealedAndRevisionTagged(t *testing.T) {
	loop, st, srv := newTestServer(t)
	c := srv.ClientFor("test")
	for _, name := range []string{"web-1", "web-2", "web-3"} {
		if err := c.Create(testPod(name)); err != nil {
			t.Fatal(err)
		}
	}
	settle(loop)
	if len(srv.decoded) == 0 {
		t.Fatal("decode cache is empty after writes")
	}
	for key, obj := range srv.decoded {
		if !obj.Meta().Sealed() {
			t.Errorf("decode-cache entry %s is not sealed", key)
		}
		kv, ok := st.Get(key)
		if !ok {
			t.Errorf("decode-cache entry %s has no backing store key", key)
			continue
		}
		if obj.Meta().ResourceVersion != kv.Revision {
			t.Errorf("entry %s tagged rv %d, store mod revision %d",
				key, obj.Meta().ResourceVersion, kv.Revision)
		}
	}
}

func TestDecodeCacheInvalidatedByCorruptAtRest(t *testing.T) {
	loop, st, srv := newTestServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")

	// Silent at-rest corruption: same revision, different bytes. The
	// revision tag alone cannot see this; the store's rewrite hook must
	// drop the entry.
	ok := st.CorruptAtRest(key, func(b []byte) []byte {
		obj := spec.New(spec.KindPod)
		if err := codecUnmarshal(b, obj); err != nil {
			t.Fatal(err)
		}
		obj.(*spec.Pod).Spec.NodeName = "corrupted-node"
		return mustMarshal(obj)
	})
	if !ok {
		t.Fatal("CorruptAtRest = false")
	}
	if _, _, inv := srv.DecodeCacheStats(); inv != 1 {
		t.Fatalf("invalidations = %d after CorruptAtRest, want 1", inv)
	}
	if _, cached := srv.decoded[key]; cached {
		t.Fatal("decode cache still holds the pre-corruption object")
	}

	// The write path reads the backend: it must now decode the corrupted
	// bytes for real, exactly like before the cache existed.
	obj, _ := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	upd := spec.CloneForWriteAs(obj.(*spec.Pod))
	upd.Metadata.Annotations = map[string]string{"touch": "1"}
	if err := c.Update(upd); err == nil {
		// The corrupted NodeName makes the pod immutable-field-invalid only
		// if it was bound; an unbound pod update succeeds — either way the
		// decode happened.
		_ = err
	}
	if _, misses, _ := srv.DecodeCacheStats(); misses == 0 {
		t.Fatal("no real decode after invalidation")
	}
	_ = loop
}

// TestDecodeCacheNeverServesStaleAcrossCorruptAtRestAndRestart is the
// stale-object acceptance test: at-rest corruption followed by an apiserver
// restart must surface the corrupted bytes (§V-C1), never the cached
// pre-corruption decode.
func TestDecodeCacheNeverServesStaleAcrossCorruptAtRestAndRestart(t *testing.T) {
	loop, st, srv := newTestServer(t)
	c := srv.ClientFor("test")
	pod := testPod("web-1")
	pod.Spec.NodeName = "node-1"
	if err := c.Create(pod); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")

	st.CorruptAtRest(key, func(b []byte) []byte {
		obj := spec.New(spec.KindPod)
		if err := codecUnmarshal(b, obj); err != nil {
			t.Fatal(err)
		}
		obj.(*spec.Pod).Spec.NodeName = "flipped-node"
		return mustMarshal(obj)
	})

	// Masked until a cache refresh: the watch cache still serves the old
	// object (the §V-C1 semantics the cache must not break).
	got, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.(*spec.Pod).Spec.NodeName != "node-1" {
		t.Fatalf("corruption visible before restart: NodeName = %q", got.(*spec.Pod).Spec.NodeName)
	}

	srv.Restart()
	settle(loop)
	got, err = c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.(*spec.Pod).Spec.NodeName != "flipped-node" {
		t.Fatalf("restart served a stale decode: NodeName = %q, want \"flipped-node\"", got.(*spec.Pod).Spec.NodeName)
	}
}

// Regression: a watch event in flight across a CorruptAtRest carries the
// *pre-corruption* bytes under the current revision. Its ingest must not
// re-prime the decode cache (which would resurrect the clean object and
// mask the corruption past every future restart) — the key is tainted
// until the next revision-advancing write.
func TestDecodeCacheNotRepoisonedByInFlightWatchEvent(t *testing.T) {
	loop, st, srv := newTestServer(t)
	c := srv.ClientFor("test")
	pod := testPod("web-1")
	pod.Spec.NodeName = "node-1"
	if err := c.Create(pod); err != nil {
		t.Fatal(err)
	}
	// Do NOT settle: the create's watch event (clean bytes) is still in
	// flight when the corruption lands.
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	st.CorruptAtRest(key, func(b []byte) []byte {
		obj := spec.New(spec.KindPod)
		if err := codecUnmarshal(b, obj); err != nil {
			t.Fatal(err)
		}
		obj.(*spec.Pod).Spec.NodeName = "flipped-node"
		return mustMarshal(obj)
	})
	settle(loop) // the stale clean-bytes event now delivers

	// The watch cache legitimately masks the corruption (the event predates
	// it)...
	got, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.(*spec.Pod).Spec.NodeName != "node-1" {
		t.Fatalf("pre-restart read = %q, want the event's clean \"node-1\"", got.(*spec.Pod).Spec.NodeName)
	}
	// ...but a restart must reveal it: the stale event must not have
	// re-primed the decode cache under the corrupted revision.
	srv.Restart()
	settle(loop)
	got, err = c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.(*spec.Pod).Spec.NodeName != "flipped-node" {
		t.Fatalf("restart served a stale decode: NodeName = %q, want \"flipped-node\"", got.(*spec.Pod).Spec.NodeName)
	}

	// The taint lifts on the next real write: the write path re-primes and
	// watch ingest hits again.
	upd := spec.CloneForWriteAs(got.(*spec.Pod))
	upd.Metadata.Annotations = map[string]string{"repaired": "1"}
	if err := c.Update(upd); err != nil {
		t.Fatal(err)
	}
	_, missesBefore, _ := srv.DecodeCacheStats()
	settle(loop)
	if _, misses, _ := srv.DecodeCacheStats(); misses != missesBefore {
		t.Fatalf("post-repair watch ingest decoded for real (%d new misses), want a cache hit", misses-missesBefore)
	}
}

// Tampered store-channel writes must not prime the cache with the
// pre-tamper object: the next decode has to see the bytes that actually
// reached the store.
func TestDecodeCacheSkipsTamperedStoreWrites(t *testing.T) {
	loop, _, srv := newTestServer(t)
	srv.SetStoreWriteHook(func(m *Message) Action {
		if m.Verb != VerbCreate {
			return Pass
		}
		obj := spec.New(m.Kind)
		if err := codecUnmarshal(m.Data, obj); err != nil {
			return Pass
		}
		obj.(*spec.Pod).Spec.NodeName = "tampered-node"
		m.Data = mustMarshal(obj)
		m.Tampered = true
		return Pass
	})
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	settle(loop)

	_, misses, _ := srv.DecodeCacheStats()
	if misses == 0 {
		t.Fatal("tampered write was served from the decode cache (no real decode happened)")
	}
	got, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.(*spec.Pod).Spec.NodeName != "tampered-node" {
		t.Fatalf("watch cache holds NodeName %q, want the tampered bytes' \"tampered-node\"", got.(*spec.Pod).Spec.NodeName)
	}
}

// A restored server (the fork path) inherits the snapshot's decoded objects
// and rebuilds its watch cache without re-decoding the whole store.
func TestDecodeCacheSharedThroughSnapshotRestore(t *testing.T) {
	loop, st, srv := newTestServer(t)
	c := srv.ClientFor("test")
	for _, name := range []string{"web-1", "web-2", "web-3"} {
		if err := c.Create(testPod(name)); err != nil {
			t.Fatal(err)
		}
	}
	settle(loop)
	serverSnap := srv.Snapshot()
	storeSnap := store.CaptureSnapshot(st)

	loop2 := sim.NewLoop(2)
	st2 := store.New(loop2, nil)
	store.RestoreSnapshot(st2, storeSnap)
	srv2 := New(loop2, st2, nil)
	srv2.RestoreSnapshot(serverSnap)

	hits, misses, _ := srv2.DecodeCacheStats()
	if misses != 0 {
		t.Fatalf("fork rebuild performed %d real decodes, want 0 (snapshot carries the decoded objects)", misses)
	}
	if hits == 0 {
		t.Fatal("fork rebuild did not consult the decode cache")
	}
	if srv2.CacheLen() != srv.CacheLen() {
		t.Fatalf("fork watch cache has %d objects, source has %d", srv2.CacheLen(), srv.CacheLen())
	}
	// The shared entries serve reads in the fork.
	got, err := srv2.ClientFor("fork").Get(spec.KindPod, spec.DefaultNamespace, "web-2")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Meta().Sealed() {
		t.Fatal("fork serves an unsealed object")
	}
}

// Round-trip soundness of the write-path priming: the cached object must be
// field-for-field what a real decode would produce — decode the stored
// bytes, stamp the mod revision (as every decode path does), and the two
// objects must re-encode identically.
func TestDecodeCachePrimedObjectMatchesRealDecode(t *testing.T) {
	loop, st, srv := newTestServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	cached, ok := srv.decoded[key]
	if !ok {
		t.Fatal("write did not prime the decode cache")
	}
	kv, _ := st.Get(key)
	reenc, err := codec.Marshal(cached)
	if err != nil {
		t.Fatal(err)
	}
	fresh := spec.New(spec.KindPod)
	if err := codec.Unmarshal(kv.Value, fresh); err != nil {
		t.Fatal(err)
	}
	fresh.Meta().ResourceVersion = kv.Revision
	refresh, err := codec.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if string(refresh) != string(reenc) {
		t.Fatal("a real decode would produce a different object than the cached one")
	}
}
