package apiserver

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// The write-path encode cache: sealed objects primed into the decode cache
// also carry their canonical wire bytes, so a status-only update re-encodes
// just the status section and splices it onto the cached metadata+spec
// prefix. These tests pin down the mirror image of the decode-cache
// contract: the cached bytes are always exactly what a fresh Marshal of the
// sealed object produces, any byte-level fault (at-rest corruption, tampered
// store writes, armed injection channels) suppresses or invalidates them,
// and the spliced encoding is byte-identical to a full re-encode per kind.

// wireOf returns the cached wire bytes for key, or nil.
func wireOf(srv *Server, key string) ([]byte, int) {
	obj, ok := srv.decoded[key]
	if !ok {
		return nil, 0
	}
	return obj.Meta().WireBytes()
}

func TestEncodeCachePrimedBytesMatchFreshMarshal(t *testing.T) {
	loop, st, srv := newTestServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	w, off := wireOf(srv, key)
	if w == nil {
		t.Fatal("create did not prime the encode cache")
	}
	cached := srv.decoded[key]
	if fresh := mustMarshal(cached); string(w) != string(fresh) {
		t.Fatal("cached wire bytes differ from a fresh Marshal of the sealed object")
	}
	if gotOff, ok := codec.StatusOffset(w); !ok || gotOff != off {
		t.Fatalf("cached status offset %d, StatusOffset says %d (ok=%v)", off, gotOff, ok)
	}

	// A status update must splice onto the prefix and leave the new cached
	// entry equally exact.
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	upd := spec.CloneForStatusAs(obj.(*spec.Pod))
	upd.Status.Phase = spec.PodRunning
	upd.Status.Ready = true
	upd.Status.PodIP = "10.244.0.7"
	if err := c.UpdateStatus(upd); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	w2, _ := wireOf(srv, key)
	if w2 == nil {
		t.Fatal("status update did not re-prime the encode cache")
	}
	if string(w2) == string(w) {
		t.Fatal("status update left the old wire bytes in place")
	}
	if fresh := mustMarshal(srv.decoded[key]); string(w2) != string(fresh) {
		t.Fatal("cached wire bytes after a spliced status update differ from a fresh Marshal")
	}
	// The stored bytes decode to the merged object (splice exactness against
	// the backend, not just the cache).
	kv, _ := st.Get(key)
	stored := spec.New(spec.KindPod)
	if err := codecUnmarshal(kv.Value, stored); err != nil {
		t.Fatalf("spliced stored bytes do not decode: %v", err)
	}
	if p := stored.(*spec.Pod); p.Status.PodIP != "10.244.0.7" || !p.Status.Ready {
		t.Fatal("spliced stored bytes lost the status update")
	}
	if p := stored.(*spec.Pod); p.Metadata.Labels["app"] != "web" {
		t.Fatal("spliced stored bytes lost the metadata prefix")
	}
}

// Per-kind splice exactness: for every kind carrying a status section, the
// bytes persisted by UpdateStatus must round-trip exactly — decoding them
// and re-encoding at the committed revision reproduces both the stored
// bytes' canonical form and the cached object, so a splice is
// indistinguishable from a full Marshal.
func TestEncodeCacheSpliceRoundTripsPerKind(t *testing.T) {
	newRS := func(name string) *spec.ReplicaSet {
		return &spec.ReplicaSet{
			Metadata: spec.ObjectMeta{
				Name: name, Namespace: spec.DefaultNamespace,
				Labels: map[string]string{"app": name},
			},
			Spec: spec.ReplicaSetSpec{
				Replicas: 2,
				Selector: spec.LabelSelector{MatchLabels: map[string]string{"app": name}},
				Template: spec.PodTemplate{
					Labels: map[string]string{"app": name},
					Spec:   testPod("x").Spec,
				},
			},
		}
	}
	cases := []struct {
		kind   spec.Kind
		ns     string
		create spec.Object
		mutate func(spec.Object)
	}{
		{spec.KindPod, spec.DefaultNamespace, testPod("pod-1"), func(o spec.Object) {
			p := o.(*spec.Pod)
			p.Status.Phase = spec.PodRunning
			p.Status.Ready = true
			p.Status.PodIP = "10.244.1.9"
			p.Status.RestartCount = 3
		}},
		{spec.KindReplicaSet, spec.DefaultNamespace, newRS("rs-1"), func(o spec.Object) {
			rs := o.(*spec.ReplicaSet)
			rs.Status.Replicas = 2
			rs.Status.ReadyReplicas = 1
		}},
		{spec.KindDeployment, spec.DefaultNamespace, &spec.Deployment{
			Metadata: spec.ObjectMeta{
				Name: "dep-1", Namespace: spec.DefaultNamespace,
				Labels: map[string]string{"app": "dep-1"},
			},
			Spec: spec.DeploymentSpec{
				Replicas: 1,
				Selector: spec.LabelSelector{MatchLabels: map[string]string{"app": "dep-1"}},
				Template: spec.PodTemplate{
					Labels: map[string]string{"app": "dep-1"},
					Spec:   testPod("x").Spec,
				},
			},
		}, func(o spec.Object) {
			d := o.(*spec.Deployment)
			d.Status.Replicas = 1
			d.Status.UpdatedReplicas = 1
		}},
		{spec.KindDaemonSet, spec.DefaultNamespace, &spec.DaemonSet{
			Metadata: spec.ObjectMeta{
				Name: "ds-1", Namespace: spec.DefaultNamespace,
				Labels: map[string]string{"app": "ds-1"},
			},
			Spec: spec.DaemonSetSpec{
				Selector: spec.LabelSelector{MatchLabels: map[string]string{"app": "ds-1"}},
				Template: spec.PodTemplate{
					Labels: map[string]string{"app": "ds-1"},
					Spec:   testPod("x").Spec,
				},
			},
		}, func(o spec.Object) {
			ds := o.(*spec.DaemonSet)
			ds.Status.DesiredNumber = 3
			ds.Status.NumberReady = 2
		}},
		{spec.KindNode, "", &spec.Node{
			Metadata: spec.ObjectMeta{Name: "node-1"},
			Spec:     spec.NodeSpec{PodCIDR: "10.244.0.0/24"},
		}, func(o spec.Object) {
			n := o.(*spec.Node)
			n.Status.Ready = true
			n.Status.LastHeartbeatMillis = 12345
			n.Status.Address = "192.168.0.7"
		}},
	}
	for _, tc := range cases {
		t.Run(string(tc.kind), func(t *testing.T) {
			loop, st, srv := newTestServer(t)
			c := srv.ClientFor("test")
			if err := c.Create(tc.create); err != nil {
				t.Fatal(err)
			}
			settle(loop)
			obj, err := c.Get(tc.kind, tc.ns, tc.create.Meta().Name)
			if err != nil {
				t.Fatal(err)
			}
			upd := spec.CloneForStatus(obj)
			tc.mutate(upd)
			if err := c.UpdateStatus(upd); err != nil {
				t.Fatal(err)
			}
			settle(loop)

			key := spec.Key(tc.kind, tc.ns, tc.create.Meta().Name)
			kv, ok := st.Get(key)
			if !ok {
				t.Fatal("object missing after status update")
			}
			// The stored (spliced) bytes must be the canonical encoding of
			// the object they decode to.
			stored := spec.New(tc.kind)
			if err := codecUnmarshal(kv.Value, stored); err != nil {
				t.Fatalf("spliced bytes do not decode: %v", err)
			}
			if reenc := mustMarshal(stored); string(reenc) != string(kv.Value) {
				t.Fatal("spliced stored bytes are not the canonical encoding of the decoded object")
			}
			// The cached sealed object at the committed revision must
			// re-encode to its own cached wire, and match a real decode.
			cached, ok := srv.decoded[key]
			if !ok {
				t.Fatal("status update did not prime the decode cache")
			}
			w, _ := cached.Meta().WireBytes()
			if w == nil {
				t.Fatal("status update did not prime the encode cache")
			}
			if fresh := mustMarshal(cached); string(w) != string(fresh) {
				t.Fatal("cached wire differs from a fresh Marshal of the cached object")
			}
			stored.Meta().ResourceVersion = kv.Revision
			if refresh := mustMarshal(stored); string(refresh) != string(w) {
				t.Fatal("a real decode at the committed revision differs from the cached wire")
			}
		})
	}
}

// At-rest corruption invalidates the encode cache with the decode cache: the
// next status update must be built from the corrupted current state, never
// from the stale cached prefix.
func TestEncodeCacheNeverServesStaleBytes(t *testing.T) {
	loop, st, srv := newTestServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	if w, _ := wireOf(srv, key); w == nil {
		t.Fatal("create did not prime the encode cache")
	}

	// Rewrite a label at rest: the stale cached prefix still carries
	// app=web, the store now says app=rotten.
	st.CorruptAtRest(key, func(b []byte) []byte {
		obj := spec.New(spec.KindPod)
		if err := codecUnmarshal(b, obj); err != nil {
			return b
		}
		obj.Meta().Labels = map[string]string{"app": "rotten"}
		return mustMarshal(obj)
	})

	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	upd := spec.CloneForStatusAs(obj.(*spec.Pod))
	upd.Status.Ready = true
	if err := c.UpdateStatus(upd); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	kv, _ := st.Get(key)
	stored := spec.New(spec.KindPod)
	if err := codecUnmarshal(kv.Value, stored); err != nil {
		t.Fatal(err)
	}
	if got := stored.Meta().Labels["app"]; got != "rotten" {
		t.Fatalf("status update persisted label app=%q — the stale pre-corruption prefix was served", got)
	}
}

// An apiserver restart rebuilds its caches from the store; post-restart
// status updates must re-encode from (and re-prime) fresh state.
func TestEncodeCacheSurvivesRestart(t *testing.T) {
	loop, st, srv := newTestServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	srv.Restart()
	loop.RunUntil(loop.Now() + time.Second)

	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	upd := spec.CloneForStatusAs(obj.(*spec.Pod))
	upd.Status.Phase = spec.PodRunning
	if err := c.UpdateStatus(upd); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	w, _ := wireOf(srv, key)
	if w == nil {
		t.Fatal("post-restart status update did not prime the encode cache")
	}
	kv, _ := st.Get(key)
	stored := spec.New(spec.KindPod)
	if err := codecUnmarshal(kv.Value, stored); err != nil {
		t.Fatal(err)
	}
	stored.Meta().ResourceVersion = kv.Revision
	if string(mustMarshal(stored)) != string(w) {
		t.Fatal("post-restart cached wire differs from a real decode of the stored bytes")
	}
}

// Spliced writes fan out through replication like any other write: bytes
// queued for a down replica are delivered verbatim on heal, and the group
// converges on the spliced encoding.
func TestEncodeCacheSplicedWritesConvergeAcrossReplicas(t *testing.T) {
	loop := sim.NewLoop(31)
	rep := store.NewReplicated(loop, 3, nil)
	srv := NewAt(loop, rep, 0, nil)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + time.Second)

	rep.DropReplica(2)
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	upd := spec.CloneForStatusAs(obj.(*spec.Pod))
	upd.Status.Phase = spec.PodRunning
	upd.Status.Ready = true
	if err := c.UpdateStatus(upd); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + time.Second)

	rep.RestoreReplica(2)
	rep.Heal()
	loop.RunUntil(loop.Now() + time.Second)

	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	if !rep.Converged(key) {
		t.Fatal("replicas did not converge on the spliced write after heal")
	}
	kv, ok := rep.Replica(2).Get(key)
	if !ok {
		t.Fatal("healed replica missing the spliced write")
	}
	got := spec.New(spec.KindPod)
	if err := codecUnmarshal(kv.Value, got); err != nil {
		t.Fatalf("healed replica holds undecodable bytes: %v", err)
	}
	if p := got.(*spec.Pod); p.Status.Phase != spec.PodRunning || !p.Status.Ready {
		t.Fatal("healed replica lost the status update")
	}
}

// An armed request channel must keep byte-fault semantics: no write primes
// the encode cache while the hook is live, and disarming via the wire gate
// restores caching.
func TestEncodeCacheSuppressedWhileRequestChannelArmed(t *testing.T) {
	loop, _, srv := newTestServer(t)
	armed := true
	srv.SetRequestHook(func(m *Message) Action { return Pass })
	srv.SetRequestWireGate(func() bool { return armed })
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	if w, _ := wireOf(srv, key); w != nil {
		t.Fatal("encode cache primed while the request channel was armed")
	}

	armed = false
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	upd := spec.CloneForStatusAs(obj.(*spec.Pod))
	upd.Status.Ready = true
	if err := c.UpdateStatus(upd); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	w, _ := wireOf(srv, key)
	if w == nil {
		t.Fatal("disarmed request channel did not restore encode-cache priming")
	}
	if fresh := mustMarshal(srv.decoded[key]); string(w) != string(fresh) {
		t.Fatal("cached wire after re-arming cycle differs from a fresh Marshal")
	}
}

// A tampering store-write hook taints the key; the tainted write must not
// prime the encode cache with bytes that never reached the store.
func TestEncodeCacheNotPrimedByTamperedWrite(t *testing.T) {
	loop, _, srv := newTestServer(t)
	srv.SetStoreWriteHook(func(m *Message) Action {
		if m.Kind != spec.KindPod {
			return Pass
		}
		obj := spec.New(m.Kind)
		if err := codecUnmarshal(m.Data, obj); err != nil {
			return Pass
		}
		obj.(*spec.Pod).Status.Reason = "tampered-in-flight"
		m.Data = mustMarshal(obj)
		m.Tampered = true
		return Pass
	})
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	if w, _ := wireOf(srv, key); w != nil {
		t.Fatal("tampered write primed the encode cache")
	}
}

// The watch channel serves freshly encoded bytes, never the cached wire: a
// hook that scribbles over the event payload must not damage the encode
// cache, and later spliced writes stay exact.
func TestEncodeCacheUnharmedByWatchHookMutation(t *testing.T) {
	loop, st, srv := newTestServer(t)
	srv.SetWatchHook(func(m *Message) Action {
		for i := range m.Data {
			m.Data[i] ^= 0xff // scribble in place over the served bytes
		}
		return Drop // and lose the notification entirely
	})
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	w, _ := wireOf(srv, key)
	if w == nil {
		t.Fatal("create did not prime the encode cache")
	}
	if fresh := mustMarshal(srv.decoded[key]); string(w) != string(fresh) {
		t.Fatal("watch-hook scribbling reached the cached wire bytes")
	}
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	upd := spec.CloneForStatusAs(obj.(*spec.Pod))
	upd.Status.Ready = true
	if err := c.UpdateStatus(upd); err != nil {
		t.Fatal(err)
	}
	settle(loop)
	kv, _ := st.Get(key)
	stored := spec.New(spec.KindPod)
	if err := codecUnmarshal(kv.Value, stored); err != nil {
		t.Fatalf("spliced bytes after watch tampering do not decode: %v", err)
	}
	if reenc := mustMarshal(stored); string(reenc) != string(kv.Value) {
		t.Fatal("spliced bytes after watch tampering are not canonical")
	}
}
