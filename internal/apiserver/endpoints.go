package apiserver

import (
	"errors"
	"time"

	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// This file implements the failover-aware client layer of the HA control
// plane: a Client built from an Endpoints set knows every apiserver replica,
// sticks to one, and on endpoint failure retries the request against the
// others in deterministic index order with exponential backoff (jitter drawn
// from the simulation RNG, so bit-reproducibility holds). Its watches migrate
// with it: reconnecting to a new endpoint replays that server's current state
// as Added events — client-go's ListAndWatch on reconnect — and the Reflector
// resync absorbs anything missed in between.

// Failover tuning. Base doubles per consecutive failure of one endpoint up
// to the cap; a quarter of the resulting wait is added as seeded jitter.
const (
	failoverBackoffBase = 250 * time.Millisecond
	failoverBackoffCap  = 8 * time.Second
)

// ClientSource hands out identity-bound clients. Both a single *Server and an
// HA *Endpoints satisfy it; components take this so their wiring is agnostic
// to the control-plane replica count.
type ClientSource interface {
	ClientFor(identity string) *Client
}

var (
	_ ClientSource = (*Server)(nil)
	_ ClientSource = (*Endpoints)(nil)
)

// Endpoints is the client-side view of an HA apiserver set.
type Endpoints struct {
	loop    *sim.Loop
	servers []*Server
	// clients lists every handed-out client in creation order, for the eager
	// migration sweep when a server crashes (a broken connection tells the
	// client immediately; it does not wait for its next request to fail).
	clients []*Client
}

// NewEndpoints builds the failover client factory over the given servers.
func NewEndpoints(loop *sim.Loop, servers ...*Server) *Endpoints {
	return &Endpoints{loop: loop, servers: servers}
}

// Servers returns the endpoint list in index order.
func (e *Endpoints) Servers() []*Server { return e.servers }

// ClientFor returns a failover-aware client bound to a component identity,
// initially homed on endpoint 0 (every replica healthy, every client on the
// first endpoint — byte-for-byte the single-server request stream).
func (e *Endpoints) ClientFor(identity string) *Client {
	c := &Client{
		srv:      e.servers[0],
		identity: identity,
		eps:      e,
		deadline: make([]time.Duration, len(e.servers)),
		fails:    make([]int, len(e.servers)),
	}
	e.clients = append(e.clients, c)
	return c
}

// NoteServerDown migrates every client homed on server i to the next healthy
// endpoint — the eager half of failover, modelling the broken connection a
// crashed apiserver gives its clients. Lazy (per-request) failover covers
// everything else.
func (e *Endpoints) NoteServerDown(i int) {
	for _, c := range e.clients {
		if c.cur == i {
			c.evacuate()
		}
	}
}

// --- failover-aware request path ---------------------------------------------

// isEndpointFailure reports whether err marks the *endpoint* as unusable
// (crashed server, lost store replica, minority partition side) rather than
// the request as invalid. Only these trigger failover.
func isEndpointFailure(err error) bool {
	return errors.Is(err, ErrTimeout) ||
		errors.Is(err, store.ErrReplicaDown) ||
		errors.Is(err, store.ErrNoQuorum)
}

// do runs req against the current endpoint, failing over through the others
// in index order. Endpoints in backoff are skipped; a success pins the client
// (and its watches) to the serving endpoint.
func (c *Client) do(req func(*Server) error) error {
	n := len(c.eps.servers)
	var lastErr error = ErrTimeout
	for attempt := 0; attempt < n; attempt++ {
		idx := (c.cur + attempt) % n
		if c.inBackoff(idx) {
			continue
		}
		srv := c.eps.servers[idx]
		if srv.Down() {
			c.noteFailure(idx)
			continue
		}
		err := req(srv)
		if isEndpointFailure(err) {
			c.noteFailure(idx)
			lastErr = err
			continue
		}
		c.noteSuccess(idx)
		return err
	}
	return lastErr
}

func (c *Client) inBackoff(idx int) bool {
	return c.eps.loop.Now() < c.deadline[idx]
}

// noteFailure backs the endpoint off exponentially with seeded jitter. The
// RNG is only consumed on failure, so fault-free runs draw exactly the same
// random sequence as a single-server cluster.
func (c *Client) noteFailure(idx int) {
	c.fails[idx]++
	back := failoverBackoffBase << (c.fails[idx] - 1)
	if back > failoverBackoffCap || back <= 0 {
		back = failoverBackoffCap
	}
	back += time.Duration(c.eps.loop.Rand().Int63n(int64(back / 4)))
	c.deadline[idx] = c.eps.loop.Now() + back
}

func (c *Client) noteSuccess(idx int) {
	c.fails[idx] = 0
	c.deadline[idx] = 0
	if idx != c.cur {
		c.failTo(idx)
	}
}

// evacuate moves the client off a crashed endpoint to the next one not known
// down, without waiting for a request to fail.
func (c *Client) evacuate() {
	n := len(c.eps.servers)
	for attempt := 1; attempt < n; attempt++ {
		idx := (c.cur + attempt) % n
		if !c.eps.servers[idx].Down() {
			c.failTo(idx)
			return
		}
	}
}

// failTo re-homes the client on endpoint idx and migrates its watches: each
// is cancelled on the old server, re-registered on the new one, and then fed
// the new server's current state as Added events — the re-list half of
// ListAndWatch. Consumers are built for replayed Addeds (idempotent handlers,
// resync-repairing reflectors), exactly as across a server restart.
func (c *Client) failTo(idx int) {
	c.cur = idx
	srv := c.eps.servers[idx]
	c.srv = srv
	if len(c.watches) == 0 {
		return
	}
	for _, w := range c.watches {
		w.cancel()
		w.cancel = srv.watch(w.kind, w.fn)
	}
	for _, w := range c.watches {
		w.replay(srv)
	}
}

// clientWatch is one logical watch subscription that survives failover.
type clientWatch struct {
	kind   spec.Kind
	fn     func(WatchEvent)
	cancel func()
}

// replay feeds the server's current state for the watched kind(s) to the
// subscriber as synthetic Added events, in store-key order.
func (w *clientWatch) replay(srv *Server) {
	kinds := []spec.Kind{w.kind}
	if w.kind == "" {
		kinds = spec.Kinds()
	}
	for _, kind := range kinds {
		for _, obj := range srv.list(kind, "") {
			w.fn(WatchEvent{Type: Added, Kind: kind, Object: obj})
		}
	}
}

// watchFailover registers a migrating watch subscription.
func (c *Client) watchFailover(kind spec.Kind, fn func(WatchEvent)) (cancel func()) {
	w := &clientWatch{kind: kind, fn: fn}
	w.cancel = c.eps.servers[c.cur].watch(kind, fn)
	c.watches = append(c.watches, w)
	return func() {
		w.cancel()
		for i, cw := range c.watches {
			if cw == w {
				c.watches = append(c.watches[:i], c.watches[i+1:]...)
				break
			}
		}
	}
}
