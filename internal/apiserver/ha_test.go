package apiserver

import (
	"sort"
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// A reflector must ride out a server restart: the restart's re-list Addeds
// replay every object exactly once in store-key order, the view converges,
// and the next resync finds nothing to repair — no duplicate or reordered
// synthetic events.
func TestReflectorConvergesAcrossServerRestart(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("reflector-test")
	for _, name := range []string{"web-3", "web-1", "web-2"} {
		if err := c.Create(testPod(name)); err != nil {
			t.Fatal(err)
		}
	}
	loop.RunUntil(loop.Now() + time.Second)

	var seen []WatchEvent
	r := NewReflector(loop, c, 0, func(ev WatchEvent) { seen = append(seen, ev) }, spec.KindPod)
	r.Start()
	if r.Len(spec.KindPod) != 3 {
		t.Fatalf("primed view holds %d pods, want 3", r.Len(spec.KindPod))
	}

	srv.Restart()
	loop.RunUntil(loop.Now() + time.Second)

	// The restart re-announced each pod exactly once, in key order.
	if len(seen) != 3 {
		t.Fatalf("restart replayed %d events, want 3 (one per pod): %+v", len(seen), seen)
	}
	var names []string
	for _, ev := range seen {
		if ev.Type != Added {
			t.Fatalf("restart replay emitted %v, want only Added", ev.Type)
		}
		names = append(names, ev.Object.Meta().Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("restart replay out of order: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			t.Fatalf("restart replay duplicated %q", names[i])
		}
	}

	// The view converged; a resync finds nothing to repair and emits no
	// synthetic events.
	seen = seen[:0]
	before := r.ResyncRepairs()
	r.Resync()
	if r.ResyncRepairs() != before {
		t.Fatalf("resync repaired %d entries after restart, want 0", r.ResyncRepairs()-before)
	}
	if len(seen) != 0 {
		t.Fatalf("resync after restart emitted %d synthetic events, want 0: %+v", len(seen), seen)
	}
	if r.Len(spec.KindPod) != 3 {
		t.Fatalf("view holds %d pods after restart+resync, want 3", r.Len(spec.KindPod))
	}
}

// A write that lands between the restart's re-list and the reflector's next
// resync must not be lost or double-applied.
func TestReflectorRestartThenWrite(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("reflector-test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + time.Second)
	r := NewReflector(loop, c, 0, nil, spec.KindPod)
	r.Start()

	srv.Restart()
	if err := c.Create(testPod("web-2")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + time.Second)
	r.Resync()
	if r.Len(spec.KindPod) != 2 {
		t.Fatalf("view holds %d pods, want 2", r.Len(spec.KindPod))
	}
	if _, ok := r.Get(spec.KindPod, spec.DefaultNamespace, "web-2"); !ok {
		t.Fatal("view missed the pod created right after the restart")
	}
}

// The HA read path: an apiserver restarting over a replicated backend
// re-lists through quorum reads, so at-rest corruption of its own replica is
// outvoted by the surviving majority instead of being served (§V-C1).
func TestRestartQuorumVerifiesAgainstCorruptReplica(t *testing.T) {
	loop := sim.NewLoop(11)
	rep := store.NewReplicated(loop, 3, nil)
	srv := NewAt(loop, rep, 0, nil)
	c := srv.ClientFor("ha-test")
	if err := c.Create(testPod("quorum-pod")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + time.Second)

	// Corrupt the pod's bytes at rest on the server's own replica.
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "quorum-pod")
	if !rep.Replica(0).CorruptAtRest(key, func(b []byte) []byte {
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)-1] ^= 0xff
		return flipped
	}) {
		t.Fatal("CorruptAtRest failed")
	}
	srv.Restart()
	loop.RunUntil(loop.Now() + time.Second)

	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "quorum-pod")
	if err != nil {
		t.Fatalf("get after restart: %v", err)
	}
	if obj.Meta().Name != "quorum-pod" || len(obj.(*spec.Pod).Spec.Containers) != 1 {
		t.Fatal("restart served the corrupted minority value instead of the quorum value")
	}
}

// Client failover: a crashed endpoint's clients retry against the survivors
// and migrate their watches, which replay the server state as Added events.
func TestClientFailsOverOnServerDown(t *testing.T) {
	loop := sim.NewLoop(12)
	rep := store.NewReplicated(loop, 3, nil)
	var servers []*Server
	for i := 0; i < 3; i++ {
		s := NewAt(loop, rep, i, nil)
		s.SetAdmissionStride(i, 3)
		servers = append(servers, s)
	}
	eps := NewEndpoints(loop, servers...)
	c := eps.ClientFor("failover-test")

	if err := c.Create(testPod("pre-crash")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + time.Second)

	var events []WatchEvent
	c.Watch(spec.KindPod, func(ev WatchEvent) { events = append(events, ev) })

	servers[0].SetDown(true)
	eps.NoteServerDown(0)
	// The eager migration replayed the surviving server's state.
	if len(events) != 1 || events[0].Type != Added || events[0].Object.Meta().Name != "pre-crash" {
		t.Fatalf("watch migration replay = %+v, want one Added for pre-crash", events)
	}

	// Requests keep working through the survivors.
	if err := c.Create(testPod("post-crash")); err != nil {
		t.Fatalf("create after crash: %v", err)
	}
	loop.RunUntil(loop.Now() + time.Second)
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "post-crash")
	if err != nil || obj.Meta().Name != "post-crash" {
		t.Fatalf("get after failover: %v", err)
	}
	// The watch is live on the new endpoint.
	foundLive := false
	for _, ev := range events[1:] {
		if ev.Object.Meta().Name == "post-crash" {
			foundLive = true
		}
	}
	if !foundLive {
		t.Fatal("migrated watch missed the post-crash create")
	}
}

// UID striding: creates admitted by different replicas draw from disjoint
// residue classes, so a failover can never mint a duplicate UID.
func TestAdmissionStrideKeepsUIDsDisjoint(t *testing.T) {
	loop := sim.NewLoop(13)
	rep := store.NewReplicated(loop, 3, nil)
	var servers []*Server
	for i := 0; i < 3; i++ {
		s := NewAt(loop, rep, i, nil)
		s.SetAdmissionStride(i, 3)
		servers = append(servers, s)
	}
	uids := make(map[string]int)
	for i, srv := range servers {
		c := srv.ClientFor("stride-test")
		for j := 0; j < 5; j++ {
			pod := testPod("stride-" + string(rune('a'+i)) + string(rune('0'+j)))
			if err := c.Create(pod); err != nil {
				t.Fatal(err)
			}
			loop.RunUntil(loop.Now() + 10*time.Millisecond)
		}
	}
	loop.RunUntil(loop.Now() + time.Second)
	admin := servers[0].ClientFor("observer")
	for _, obj := range admin.List(spec.KindPod, spec.DefaultNamespace) {
		uid := obj.Meta().UID
		if prev, dup := uids[uid]; dup {
			t.Fatalf("duplicate UID %q (first seen for pod %d)", uid, prev)
		}
		uids[uid] = 1
	}
	if len(uids) != 15 {
		t.Fatalf("%d distinct UIDs, want 15", len(uids))
	}
}
