package apiserver

import (
	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

func codecUnmarshal(data []byte, obj spec.Object) error {
	return codec.Unmarshal(data, obj)
}

func mustMarshal(obj spec.Object) []byte {
	b, err := codec.Marshal(obj)
	if err != nil {
		panic(err)
	}
	return b
}
