package apiserver

import (
	"sort"
	"time"

	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Reflector maintains an informer-style local view of one or more kinds: a
// sorted, watch-updated mirror of the API server's objects, primed by one
// list and kept current by the sealed watch fan-out, with a low-frequency
// resync re-list as the safety net against lost watch notifications.
//
// This is the readiness pipeline the workload driver, the controllers, and
// the scheduler consume instead of re-listing the cluster on every poll: a
// view read is a local lookup over sealed references (zero copies, zero
// server traffic), and the only periodic list traffic left is the resync.
// The watch channel feeding the view is injectable (inject.ChannelWatch):
// a dropped or tampered event leaves the view stale until the next resync
// reconciles it against the server — exactly the informer-staleness failure
// mode the paper's architecture implies.
//
// A Reflector is loop-bound like every component: all methods must be called
// from the simulation loop's goroutine. View reads return sealed references
// under the same contract as Client.Get/List — read and retain freely,
// CloneForWrite before mutating.
type Reflector struct {
	loop   *sim.Loop
	client *Client
	kinds  []spec.Kind
	views  map[spec.Kind]*viewBucket

	// onEvent, when set, observes every event applied to the view — live
	// watch deliveries and the synthetic events a resync emits when it
	// repairs a stale entry. It runs after the view reflects the event, so
	// handlers always read post-event state.
	onEvent func(WatchEvent)

	resyncEvery time.Duration
	resyncTimer sim.Timer
	cancels     []func()
	started     bool

	// resyncRepairs counts entries a resync had to fix — nonzero only when
	// watch events were lost (or arrived out of band), making watch-channel
	// staleness observable to tests and diagnostics.
	resyncRepairs int64
}

// viewBucket holds one kind's objects in namespace/name order. keys and objs
// move in lockstep, mirroring the server's per-kind list index so view
// iteration order matches server list order.
type viewBucket struct {
	keys []string
	objs []spec.Object
}

func (b *viewBucket) set(key string, obj spec.Object) {
	i := sort.SearchStrings(b.keys, key)
	if i < len(b.keys) && b.keys[i] == key {
		b.objs[i] = obj
		return
	}
	b.keys = append(b.keys, "")
	copy(b.keys[i+1:], b.keys[i:])
	b.keys[i] = key
	b.objs = append(b.objs, nil)
	copy(b.objs[i+1:], b.objs[i:])
	b.objs[i] = obj
}

func (b *viewBucket) delete(key string) {
	i := sort.SearchStrings(b.keys, key)
	if i >= len(b.keys) || b.keys[i] != key {
		return
	}
	b.keys = append(b.keys[:i], b.keys[i+1:]...)
	copy(b.objs[i:], b.objs[i+1:])
	b.objs[len(b.objs)-1] = nil
	b.objs = b.objs[:len(b.objs)-1]
}

func (b *viewBucket) get(key string) (spec.Object, bool) {
	i := sort.SearchStrings(b.keys, key)
	if i < len(b.keys) && b.keys[i] == key {
		return b.objs[i], true
	}
	return nil, false
}

// nsRange returns the [i, j) index range of keys in namespace ns ("" = all).
func (b *viewBucket) nsRange(ns string) (int, int) {
	if ns == "" {
		return 0, len(b.keys)
	}
	prefix := ns + "/"
	i := sort.SearchStrings(b.keys, prefix)
	j := i
	for j < len(b.keys) && len(b.keys[j]) >= len(prefix) && b.keys[j][:len(prefix)] == prefix {
		j++
	}
	return i, j
}

// NewReflector builds a reflector over the given kinds (none = every kind).
// resyncEvery is the safety-net re-list period; zero disables periodic
// resyncs (Resync can still be called explicitly). onEvent may be nil.
// Call Start to prime the view and begin watching.
func NewReflector(loop *sim.Loop, client *Client, resyncEvery time.Duration, onEvent func(WatchEvent), kinds ...spec.Kind) *Reflector {
	return &Reflector{
		loop:        loop,
		client:      client,
		kinds:       kinds,
		views:       make(map[spec.Kind]*viewBucket, len(kinds)),
		onEvent:     onEvent,
		resyncEvery: resyncEvery,
	}
}

// Start primes the view with one list per kind and subscribes to the watch
// fan-out. Starting an already-started reflector is a no-op. In a forked
// cluster the prime list walks the restored store's state — the same re-list
// a component performs after a real restart.
func (r *Reflector) Start() {
	if r.started {
		return
	}
	r.started = true
	// Restarting a stopped reflector must not trust the detached view:
	// objects deleted while it was stopped would otherwise linger as
	// phantoms (prime only adds). Rebuild from scratch, like the re-list of
	// a restarted component.
	clear(r.views)
	if len(r.kinds) == 0 {
		// All-kinds mode: one wildcard watch, primed and resynced over the
		// full kind vocabulary so kinds that never produce an event are
		// still visible in the view.
		r.kinds = spec.Kinds()
		r.cancels = append(r.cancels, r.client.Watch("", r.apply))
	} else {
		for _, kind := range r.kinds {
			r.cancels = append(r.cancels, r.client.Watch(kind, r.apply))
		}
	}
	r.prime()
	if r.resyncEvery > 0 {
		r.resyncTimer = r.loop.Every(r.resyncEvery, r.Resync)
	}
}

// Stop cancels the watch subscriptions and the resync timer. The view keeps
// its last state and stops updating.
func (r *Reflector) Stop() {
	if !r.started {
		return
	}
	r.started = false
	r.resyncTimer.Stop()
	for _, cancel := range r.cancels {
		cancel()
	}
	r.cancels = nil
}

// prime loads the current server state into the view without emitting events
// (consumers that want the initial state iterate the view after Start).
func (r *Reflector) prime() {
	for _, kind := range r.kinds {
		b := r.bucket(kind)
		for _, obj := range r.client.List(kind, "") {
			b.set(obj.Meta().NamespacedName(), obj)
		}
	}
}

func (r *Reflector) bucket(kind spec.Kind) *viewBucket {
	b := r.views[kind]
	if b == nil {
		b = &viewBucket{}
		r.views[kind] = b
	}
	return b
}

// apply is the watch callback: it folds one event into the view and forwards
// it to the consumer.
func (r *Reflector) apply(ev WatchEvent) {
	b := r.bucket(ev.Kind)
	key := ev.Object.Meta().NamespacedName()
	if ev.Type == Deleted {
		b.delete(key)
	} else {
		b.set(key, ev.Object)
	}
	if r.onEvent != nil {
		r.onEvent(ev)
	}
}

// Get returns the view's object of the given identity, or (nil, false).
func (r *Reflector) Get(kind spec.Kind, namespace, name string) (spec.Object, bool) {
	b := r.views[kind]
	if b == nil {
		return nil, false
	}
	return b.get(namespace + "/" + name)
}

// GetByKey is Get keyed by an existing "namespace/name" string, avoiding the
// re-concatenation on hot paths that already hold the key.
func (r *Reflector) GetByKey(kind spec.Kind, key string) (spec.Object, bool) {
	b := r.views[kind]
	if b == nil {
		return nil, false
	}
	return b.get(key)
}

// ForEach calls fn for every object of kind in namespace ns ("" = all) in
// namespace/name order, stopping early when fn returns false. It allocates
// nothing; the objects are sealed shared references.
//
// fn must not mutate the view (i.e. must not synchronously force watch
// deliveries — impossible on the loop — nor call Resync).
func (r *Reflector) ForEach(kind spec.Kind, ns string, fn func(spec.Object) bool) {
	b := r.views[kind]
	if b == nil {
		return
	}
	i, j := b.nsRange(ns)
	for ; i < j; i++ {
		if !fn(b.objs[i]) {
			return
		}
	}
}

// List returns the view's objects of kind in namespace ns ("" = all) as a
// fresh slice in namespace/name order. Prefer ForEach on hot paths.
func (r *Reflector) List(kind spec.Kind, ns string) []spec.Object {
	b := r.views[kind]
	if b == nil {
		return nil
	}
	i, j := b.nsRange(ns)
	if i == j {
		return nil
	}
	out := make([]spec.Object, j-i)
	copy(out, b.objs[i:j])
	return out
}

// Len reports the number of objects of kind in the view.
func (r *Reflector) Len(kind spec.Kind) int {
	b := r.views[kind]
	if b == nil {
		return 0
	}
	return len(b.keys)
}

// Tracks reports whether the reflector mirrors the given kind. Consumers
// with occasional reads outside the mirrored set (e.g. the garbage
// collector resolving an arbitrary owner kind) fall back to a server read.
func (r *Reflector) Tracks(kind spec.Kind) bool {
	if len(r.kinds) == 0 {
		return true
	}
	for _, k := range r.kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// ResyncRepairs reports how many view entries resyncs had to repair — the
// observable trace of lost watch events.
func (r *Reflector) ResyncRepairs() int64 { return r.resyncRepairs }

// Resync reconciles the view against a fresh server list, kind by kind: the
// low-frequency safety net that turns a lost watch notification (crash,
// injected drop, tampered-undecodable event) from permanent staleness into
// bounded staleness. Entries that differ are repaired and re-announced to the
// consumer as synthetic events — Added for objects the view missed, Modified
// for revision drift, Deleted for objects the view should have dropped —
// in deterministic key order.
func (r *Reflector) Resync() {
	for _, kind := range r.kinds {
		r.resyncKind(kind)
	}
}

func (r *Reflector) resyncKind(kind spec.Kind) {
	fresh := r.client.List(kind, "")
	b := r.bucket(kind)
	// Walk the sorted server list against the sorted view in lockstep.
	i := 0 // index into b.keys (stale view)
	var repaired []WatchEvent
	for _, obj := range fresh {
		key := obj.Meta().NamespacedName()
		for i < len(b.keys) && b.keys[i] < key {
			repaired = append(repaired, WatchEvent{Type: Deleted, Kind: kind, Object: b.objs[i]})
			i++
		}
		if i < len(b.keys) && b.keys[i] == key {
			if b.objs[i] != obj {
				repaired = append(repaired, WatchEvent{Type: Modified, Kind: kind, Object: obj})
			}
			i++
			continue
		}
		repaired = append(repaired, WatchEvent{Type: Added, Kind: kind, Object: obj})
	}
	for ; i < len(b.keys); i++ {
		repaired = append(repaired, WatchEvent{Type: Deleted, Kind: kind, Object: b.objs[i]})
	}
	r.resyncRepairs += int64(len(repaired))
	// Apply after the walk: apply mutates the bucket the walk indexes.
	for _, ev := range repaired {
		r.apply(ev)
	}
}
