package apiserver

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/spec"
)

func newPodReflector(t *testing.T) (*Reflector, *Client, func(deadline time.Duration), *[]WatchEvent) {
	t.Helper()
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("reflector-test")
	var seen []WatchEvent
	r := NewReflector(loop, c, 0, func(ev WatchEvent) { seen = append(seen, ev) }, spec.KindPod)
	r.Start()
	return r, c, func(d time.Duration) { loop.RunUntil(loop.Now() + d) }, &seen
}

func TestReflectorMirrorsWatch(t *testing.T) {
	r, c, run, seen := newPodReflector(t)
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	run(time.Second)
	obj, ok := r.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if !ok {
		t.Fatal("view missing created pod")
	}
	if !obj.Meta().Sealed() {
		t.Fatal("view must hold the sealed cache instance")
	}
	if len(*seen) != 1 || (*seen)[0].Type != Added {
		t.Fatalf("events = %+v, want one Added", *seen)
	}
	if err := c.Delete(spec.KindPod, spec.DefaultNamespace, "web-1"); err != nil {
		t.Fatal(err)
	}
	run(time.Second)
	if _, ok := r.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); ok {
		t.Fatal("view kept a deleted pod")
	}
	if r.Len(spec.KindPod) != 0 {
		t.Fatalf("Len = %d after delete", r.Len(spec.KindPod))
	}
}

// A resync that runs while a watch event is still in flight (committed,
// server cache updated, fan-out pending) must repair the view from the
// server's state, and the late event must apply idempotently afterwards.
func TestReflectorResyncOverlapsInFlightEvent(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("reflector-test")
	var seen []WatchEvent
	r := NewReflector(loop, c, 0, func(ev WatchEvent) { seen = append(seen, ev) }, spec.KindPod)
	r.Start()

	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + time.Second)
	before := r.ResyncRepairs()

	// Commit an update, then advance the loop one event at a time until the
	// server cache holds the new revision while the reflector still holds
	// the old one — i.e. the fan-out delivery is still pending.
	obj, _ := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	upd := spec.CloneForWriteAs(obj.(*spec.Pod))
	upd.Spec.NodeName = "worker-0"
	if err := c.Update(upd); err != nil {
		t.Fatal(err)
	}
	inFlight := false
	for i := 0; i < 100; i++ {
		srvObj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
		viewObj, _ := r.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
		if err == nil && srvObj.(*spec.Pod).Spec.NodeName == "worker-0" &&
			viewObj.(*spec.Pod).Spec.NodeName == "" {
			inFlight = true
			break
		}
		if !loop.Step() {
			break
		}
	}
	if !inFlight {
		t.Fatal("could not catch the window with the fan-out pending")
	}

	// Resync in that window: the view must be repaired from the server even
	// though the live event has not arrived yet.
	r.Resync()
	if got := r.ResyncRepairs() - before; got != 1 {
		t.Fatalf("resync repaired %d entries, want 1", got)
	}
	viewObj, _ := r.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if viewObj.(*spec.Pod).Spec.NodeName != "worker-0" {
		t.Fatal("resync did not repair the stale entry")
	}

	// The in-flight event now arrives; applying it is idempotent.
	loop.RunUntil(loop.Now() + time.Second)
	viewObj, _ = r.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if viewObj.(*spec.Pod).Spec.NodeName != "worker-0" {
		t.Fatal("late watch event corrupted the repaired view")
	}
	// Both the synthetic repair and the live delivery are announced.
	mods := 0
	for _, ev := range seen {
		if ev.Type == Modified {
			mods++
		}
	}
	if mods != 2 {
		t.Fatalf("observed %d Modified events, want 2 (repair + live)", mods)
	}
}

// A notification lost on the watch channel leaves the view stale; the next
// resync re-list must repair it — the informer-staleness recovery path the
// watch-channel fault surface relies on.
func TestReflectorRecoversFromDroppedWatchEvent(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("reflector-test")
	drops := 0
	armed := true
	srv.SetWatchHook(func(m *Message) Action {
		if armed && m.Kind == spec.KindPod {
			armed = false
			drops++
			return Drop
		}
		return Pass
	})
	r := NewReflector(loop, c, 2*time.Second, nil, spec.KindPod)
	r.Start()

	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + time.Second)
	if drops != 1 {
		t.Fatalf("watch hook dropped %d events, want 1", drops)
	}
	if _, ok := r.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); ok {
		t.Fatal("view saw the pod although the notification was dropped")
	}
	// The server itself is not stale — only the subscribers are.
	if _, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); err != nil {
		t.Fatalf("server lost the object: %v", err)
	}

	// The periodic resync re-list repairs the view.
	loop.RunUntil(loop.Now() + 3*time.Second)
	if _, ok := r.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); !ok {
		t.Fatal("resync did not recover the dropped notification")
	}
	if r.ResyncRepairs() == 0 {
		t.Fatal("recovery not accounted as a resync repair")
	}
}

// A tampered watch payload reaches subscribers as a private corrupted
// instance while the server cache keeps the truth; the resync then repairs
// the subscribers — watch-channel corruption is transient by architecture.
func TestWatchTamperIsInvisibleToServerAndRepairedByResync(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("reflector-test")
	tampered := false
	srv.SetWatchHook(func(m *Message) Action {
		if !tampered && m.Kind == spec.KindPod && len(m.Data) > 0 {
			tampered = true
			obj := spec.New(m.Kind)
			if err := codecUnmarshal(m.Data, obj); err != nil {
				t.Fatalf("decode watch payload: %v", err)
			}
			obj.(*spec.Pod).Spec.NodeName = "ghost-node"
			m.Data = mustMarshal(obj)
			m.Tampered = true
		}
		return Pass
	})
	r := NewReflector(loop, c, 2*time.Second, nil, spec.KindPod)
	r.Start()

	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + time.Second)
	viewObj, ok := r.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if !ok {
		t.Fatal("view missing pod")
	}
	if viewObj.(*spec.Pod).Spec.NodeName != "ghost-node" {
		t.Fatal("subscriber did not observe the tampered payload")
	}
	if !viewObj.Meta().Sealed() {
		t.Fatal("tampered instance must be sealed before delivery")
	}
	srvObj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil || srvObj.(*spec.Pod).Spec.NodeName != "" {
		t.Fatal("tampering leaked into the server cache")
	}
	// Resync restores the subscribers' truth.
	loop.RunUntil(loop.Now() + 3*time.Second)
	viewObj, _ = r.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if viewObj.(*spec.Pod).Spec.NodeName != "ghost-node" && r.ResyncRepairs() == 0 {
		t.Fatal("repair happened but was not accounted")
	}
	if viewObj.(*spec.Pod).Spec.NodeName == "ghost-node" {
		t.Fatal("resync did not repair the corrupted view entry")
	}
}

// Stop detaches the view: later events must not mutate it.
func TestReflectorStopDetaches(t *testing.T) {
	r, c, run, _ := newPodReflector(t)
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	run(time.Second)
	r.Stop()
	if err := c.Create(testPod("web-2")); err != nil {
		t.Fatal(err)
	}
	run(time.Second)
	if r.Len(spec.KindPod) != 1 {
		t.Fatalf("stopped view tracked new events: Len = %d", r.Len(spec.KindPod))
	}
}
