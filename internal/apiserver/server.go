// Package apiserver implements the API server: the single component that
// talks to the data store, validates and admits requests from every other
// component, maintains the watch cache, and fans out change notifications.
// It also provides Reflector, the informer-style client-side view that the
// controllers, the scheduler, and the workload driver consume instead of
// polling re-lists.
//
// It hosts the three communication channels Mutiny injects into:
//
//   - the apiserver→store channel (§IV-A), where a tampered transaction
//     lands in the store unvalidated (emulating faults that originate in
//     the apiserver or propagate undetected),
//   - the component→apiserver channel (§IV-A), where tampered requests face
//     the validation layer, used by the propagation experiments of §V-C4,
//     and
//   - the apiserver→component watch channel, where dropped or corrupted
//     notifications starve or mislead the informer views without touching
//     the agreed cluster state — the watch-staleness fault family the
//     informer architecture implies.
package apiserver

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// API error values, matched by components to decide on retries and by the
// audit trail feeding the user-error analysis (Figure 7).
var (
	ErrNotFound      = errors.New("apiserver: not found")
	ErrAlreadyExists = errors.New("apiserver: already exists")
	ErrConflict      = errors.New("apiserver: resource version conflict")
	ErrInvalid       = errors.New("apiserver: validation failed")
	ErrUnavailable   = errors.New("apiserver: store unavailable")
	ErrTimeout       = errors.New("apiserver: request timed out")
	ErrBadRequest    = errors.New("apiserver: malformed request")
)

// Verb identifies the operation carried by a channel message.
type Verb int

// Request verbs.
const (
	VerbCreate Verb = iota + 1
	VerbUpdate
	VerbUpdateStatus
	VerbDelete
)

func (v Verb) String() string {
	switch v {
	case VerbCreate:
		return "create"
	case VerbUpdate:
		return "update"
	case VerbUpdateStatus:
		return "update-status"
	case VerbDelete:
		return "delete"
	default:
		return fmt.Sprintf("Verb(%d)", int(v))
	}
}

// Message is one serialized write crossing a channel. Hooks may mutate Data
// in place; identity fields describe the request context (the "URL"), which
// is fixed before any tampering occurs.
type Message struct {
	Verb      Verb
	Kind      spec.Kind
	Namespace string
	Name      string
	Source    string // component identity that issued the request
	Data      []byte // encoded object; nil for deletes
	// Tampered is set by an injection hook when it mutates the message; it
	// lets the audit trail attribute outcomes for the propagation
	// experiments (Table VI).
	Tampered bool
}

// Action is a hook's verdict on a message.
type Action int

// Hook verdicts.
const (
	// Pass lets the (possibly mutated) message continue.
	Pass Action = iota
	// Drop discards the message; the caller observes success (the paper's
	// message-drop model: "the calling function returns without any error
	// before sending the message").
	Drop
)

// Hook intercepts messages on a channel.
type Hook func(*Message) Action

// WatchEventType distinguishes watch notifications.
type WatchEventType int

// Watch event types.
const (
	Added WatchEventType = iota + 1
	Modified
	Deleted
)

func (t WatchEventType) String() string {
	switch t {
	case Added:
		return "ADDED"
	case Modified:
		return "MODIFIED"
	case Deleted:
		return "DELETED"
	default:
		return fmt.Sprintf("WatchEventType(%d)", int(t))
	}
}

// WatchEvent is delivered to component watchers. Object is the *sealed*
// cache instance shared by every watcher and every read of that revision —
// zero copies are made per dispatch. Watchers may read and retain it freely;
// to mutate, they must go through spec.CloneForWrite (the seal-contract
// guard test enforces this).
type WatchEvent struct {
	Type   WatchEventType
	Kind   spec.Kind
	Object spec.Object
}

// Options configure a Server.
type Options struct {
	// DisableValidation turns the validation layer off (ablation).
	DisableValidation bool
	// DisableUndecodableDeletion keeps undecodable resources in the store
	// instead of deleting them (ablation of the §II-D strategy).
	DisableUndecodableDeletion bool
	// CriticalFieldChecksums enables the §VI-B redundancy-code mitigation:
	// the server stamps every write with a checksum over its critical
	// fields (computed before the transaction leaves the server) and
	// deletes objects whose stored critical fields no longer match — so
	// single-bit corruption of a dependency, identity, or networking field
	// is detected at first read-back instead of silently propagating. The
	// paper: "simple data redundancy mechanisms, like redundancy codes on
	// critical fields, can protect the cluster from hardware faults with a
	// negligible overhead (the critical fields are < 10% of total)".
	CriticalFieldChecksums bool
}

// Server is the API server.
type Server struct {
	loop    *sim.Loop
	backend store.Backend
	opts    Options

	// origin is the store replica this server binds to: its reads, writes
	// and watch feed all go through replica `origin` when the backend is
	// replicated (routed non-nil). Replica 0 with a plain Store backend is
	// the historical single-apiserver shape.
	origin int
	routed *store.Replicated
	// down marks a crashed apiserver replica (FaultAPIServerCrash): requests
	// fail like timeouts, the store watch is detached, and no events fan out
	// until restart.
	down bool

	// uidStride spaces server-assigned UIDs and service IPs so N replicas
	// mint disjoint sequences (server i assigns origin+k·N). 1 for a single
	// server — the historical sequence.
	uidStride int64

	cache map[string]spec.Object // decoded watch cache, by store key
	// kindIndex mirrors cache as per-kind slices sorted by store key, so
	// list — the hottest read (every controller scan, scheduler pass, and
	// collector scrape) — is a binary search plus one contiguous copy
	// instead of a full map iteration and sort per call.
	kindIndex map[spec.Kind]*kindBucket
	// watchers is kept in registration order: dispatch delivers in iteration
	// order, and map iteration would randomize the delivery order of
	// same-tick events across runs, breaking bit-reproducibility. The slice
	// is append-only while deliveries are pending (cancelled watchers are
	// flagged and swept lazily), so the watcher-count snapshot taken at
	// dispatch time keeps indexing the same registrations.
	watchers          []*watcher
	cancelledWatchers int
	// watcherIdx holds each kind's watcher positions (plus the all-kinds ""
	// list), ascending. Fan-out walks the event kind's list merged with the
	// wildcard list instead of scanning every registration: with 500 kubelet
	// pod-watchers, the per-node-event scan was O(watchers) of pure kind
	// mismatches. Rebuilt by sweepWatchers when cancellations compact the
	// registration list.
	watcherIdx      map[spec.Kind][]int
	watcherIdxDirty bool

	// Batched fan-out: each dispatch appends one pendingDispatch and
	// schedules fanoutFn (built once — no per-dispatch closure) on the loop.
	// The scheduled events fire in dispatch order, and each delivers the
	// queue's front event to every matching watcher in one callback — the
	// exact delivery order of the former one-loop-event-per-watcher
	// scheduling, at a thirteenth of the event-heap traffic. head indexes
	// the front; the backing array is reused once the queue drains.
	pending     []pendingDispatch
	pendingHead int
	fanningOut  int // depth of in-flight fanout calls; blocks the sweep
	fanoutFn    func()

	// decoded is the revision-tagged decoded-object cache: the sealed decoded
	// form of each store key's *current* bytes. The invariant is that an
	// entry's Meta().ResourceVersion equals the backend mod revision of the
	// bytes it was decoded from (or round-trip-encoded to, on the write
	// path), so a lookup is valid exactly when that tag matches the
	// backend's current revision for the key. It elides the backend-byte
	// codec.Unmarshal on the write path's conflict check (current), on watch
	// ingest (onStoreEvent), and on cache rebuilds (restart re-list, fork
	// restore — forks inherit the snapshot's entries and skip almost the
	// whole re-decode).
	//
	// Byte-level fault semantics stay intact: tampered store writes are
	// never cached (the next read decodes the corrupted bytes for real), and
	// silent same-revision rewrites (CorruptAtRest) invalidate the entry via
	// the store's OnRewrite hook.
	decoded            map[string]spec.Object
	decodeHits         int64
	decodeMisses       int64
	decodeInvalidation int64
	// tainted marks keys whose stored bytes were silently rewritten
	// (CorruptAtRest) and not yet overwritten by a revision-advancing
	// write. Watch events carry a byte snapshot taken at commit time, so
	// for a tainted key an in-flight event may hold *pre-rewrite* bytes
	// under the current revision — caching (or serving) a decode for it
	// would resurrect the clean object and mask the corruption forever.
	// Event ingest therefore bypasses the cache entirely for tainted keys;
	// backend reads (current, rebuildCache) are live and stay cached.
	tainted map[string]struct{}

	uidCounter int64
	ipCounter  int64

	storeWriteHook Hook
	requestHook    Hook
	// watchHook intercepts the apiserver→component watch channel: every
	// committed change is offered to it once, before the batched fan-out
	// delivers the event to the registered watchers. Drop loses the
	// notification (the cache and store keep the change — only the
	// subscribers go stale until their next resync re-list); a tampered
	// payload is decoded into a private corrupted instance that only the
	// watchers see. watchGate mirrors requestWireGate: while it reports
	// false, the hook (and the per-event encode it requires) is skipped
	// entirely, keeping the fan-out free for campaigns armed elsewhere.
	watchHook Hook
	watchGate func() bool
	// requestWireGate, when set alongside a request hook, reports whether the
	// hook currently needs the serialized request bytes. While it returns
	// false the server elides the component→apiserver wire round-trip
	// (encode + decode) and applies a deep copy of the request object
	// directly — semantically identical for an uninterested hook, and the
	// dominant write-path saving of the copy-on-write pipeline.
	requestWireGate func() bool
	accessHook      func(key string)

	audit *Audit

	// admission is the webhook chain evaluated on every spec-carrying write
	// before persist (nil = no admission configured, zero write-path cost).
	// Like the audit, one chain is shared by every replica of an HA control
	// plane: admission configuration is cluster state.
	admission *AdmissionChain

	// arena is the server's private encode workspace. A simulated cluster
	// runs single-threaded on one campaign worker goroutine, so server-local
	// is worker-local: every encode on the request, persist, and watch-hook
	// paths uses this arena instead of the process-wide buffer/encoder
	// pools, which parallel workers would otherwise contend on.
	arena *codec.Arena

	cancelStoreWatch func()
}

type watcher struct {
	kind      spec.Kind
	fn        func(WatchEvent)
	cancelled bool
}

// kindBucket holds one kind's cached objects in store-key order. keys and
// objs move in lockstep; namespace prefixes select a contiguous range.
type kindBucket struct {
	keys []string
	objs []spec.Object
}

// insert adds or replaces the object at key, keeping key order.
func (b *kindBucket) insert(key string, obj spec.Object) {
	i := sort.SearchStrings(b.keys, key)
	if i < len(b.keys) && b.keys[i] == key {
		b.objs[i] = obj
		return
	}
	b.keys = append(b.keys, "")
	copy(b.keys[i+1:], b.keys[i:])
	b.keys[i] = key
	b.objs = append(b.objs, nil)
	copy(b.objs[i+1:], b.objs[i:])
	b.objs[i] = obj
}

// remove deletes key if present.
func (b *kindBucket) remove(key string) {
	i := sort.SearchStrings(b.keys, key)
	if i >= len(b.keys) || b.keys[i] != key {
		return
	}
	b.keys = append(b.keys[:i], b.keys[i+1:]...)
	copy(b.objs[i:], b.objs[i+1:])
	b.objs[len(b.objs)-1] = nil
	b.objs = b.objs[:len(b.objs)-1]
}

// pendingDispatch is one watch event queued for batched fan-out: the event
// plus the length of the watcher list at dispatch time, so watchers
// registered between dispatch and delivery do not receive it (exactly as
// under the old per-watcher scheduling, where missing the dispatch meant
// missing the event).
type pendingDispatch struct {
	ev WatchEvent
	n  int
}

// New creates a Server over the given backend and starts its store watch.
// With a replicated backend it binds to replica 0.
func New(loop *sim.Loop, backend store.Backend, opts *Options) *Server {
	return NewAt(loop, backend, 0, opts)
}

// NewAt creates a Server bound to store replica origin — one member of an HA
// control plane. Every origin serves reads and its watch feed from its own
// replica and writes through it, so a partitioned or lost replica degrades
// exactly the apiservers bound to it while the survivors keep serving.
func NewAt(loop *sim.Loop, backend store.Backend, origin int, opts *Options) *Server {
	s := &Server{
		loop:      loop,
		backend:   backend,
		origin:    origin,
		uidStride: 1,
		cache:     make(map[string]spec.Object),
		kindIndex: make(map[spec.Kind]*kindBucket),
		decoded:   make(map[string]spec.Object),
		audit:     NewAudit(loop),
		arena:     codec.NewArena(),
	}
	if rep, ok := backend.(*store.Replicated); ok {
		s.routed = rep
	}
	s.fanoutFn = s.fanout
	if opts != nil {
		s.opts = *opts
	}
	if s.routed != nil {
		s.routed.OnRewriteAt(origin, s.invalidateDecoded)
	} else if rn, ok := backend.(rewriteNotifier); ok {
		rn.OnRewrite(s.invalidateDecoded)
	}
	s.cancelStoreWatch = s.subscribeStore()
	return s
}

// subscribeStore attaches the server's watch to its own store replica.
func (s *Server) subscribeStore() func() {
	if s.routed != nil {
		return s.routed.WatchReplica(s.origin, "/registry/", s.onStoreEvent)
	}
	return s.backend.Watch("/registry/", s.onStoreEvent)
}

// Origin returns the index of the store replica this server binds to.
func (s *Server) Origin() int { return s.origin }

// SetAdmissionStride configures UID and service-IP assignment so this server
// mints the residue class offset mod stride — HA replicas never collide even
// when clients fail over between them mid-workload.
func (s *Server) SetAdmissionStride(offset, stride int) {
	s.uidCounter = int64(offset)
	s.ipCounter = int64(offset)
	s.uidStride = int64(stride)
}

// SetAudit replaces the server's audit trail. The HA control plane shares one
// trail across all replicas so per-identity error accounting is cluster-wide,
// like scraping every apiserver's audit log into one place. Call before any
// request is served.
func (s *Server) SetAudit(a *Audit) { s.audit = a }

// SetAdmissionChain installs the (cluster-shared) admission webhook chain.
// Call on every replica of an HA control plane with the same chain.
func (s *Server) SetAdmissionChain(c *AdmissionChain) { s.admission = c }

// AdmissionChain returns the installed admission chain, or nil.
func (s *Server) AdmissionChain() *AdmissionChain { return s.admission }

// SetDown crashes or revives this apiserver replica. While down, requests
// fail like timeouts, reads error, the store watch is detached and no events
// fan out — a dead process. Reviving restarts the server: the watch cache
// rebuilds from its replica and surviving watchers get a re-list.
func (s *Server) SetDown(down bool) {
	if s.down == down {
		return
	}
	s.down = down
	if down {
		if s.cancelStoreWatch != nil {
			s.cancelStoreWatch()
			s.cancelStoreWatch = nil
		}
		return
	}
	s.cancelStoreWatch = s.subscribeStore()
	s.rebuildCache(true)
}

// Down reports whether this apiserver replica is crashed.
func (s *Server) Down() bool { return s.down }

// --- origin-aware backend access ---------------------------------------------

func (s *Server) backendGet(key string) (store.KV, bool, error) {
	if s.routed != nil {
		return s.routed.GetFrom(s.origin, key)
	}
	kv, ok := s.backend.Get(key)
	return kv, ok, nil
}

func (s *Server) backendList(prefix string) ([]store.KV, error) {
	if s.routed != nil {
		return s.routed.ListFrom(s.origin, prefix)
	}
	return s.backend.List(prefix), nil
}

func (s *Server) backendPut(key string, kind spec.Kind, value []byte) (int64, error) {
	if s.routed != nil {
		return s.routed.PutVia(s.origin, key, kind, value)
	}
	return s.backend.Put(key, kind, value)
}

func (s *Server) backendDelete(key string) (bool, error) {
	if s.routed != nil {
		return s.routed.DeleteVia(s.origin, key)
	}
	return s.backend.Delete(key), nil
}

// rewriteNotifier is the optional backend capability the decode cache needs:
// notification of silent same-revision byte rewrites (at-rest corruption).
type rewriteNotifier interface {
	OnRewrite(fn func(key string))
}

// invalidateDecoded drops the decoded form of key and taints it. Called for
// every silent byte rewrite on the backend; a revision tag cannot detect
// those, and any watch event already in flight for the key still carries
// the pre-rewrite bytes under the same revision.
func (s *Server) invalidateDecoded(key string) {
	if _, ok := s.decoded[key]; ok {
		delete(s.decoded, key)
		s.decodeInvalidation++
	}
	if s.tainted == nil {
		s.tainted = make(map[string]struct{})
	}
	s.tainted[key] = struct{}{}
}

// DecodeCacheStats reports decode-cache hits, misses, and rewrite
// invalidations (diagnostics and tests).
func (s *Server) DecodeCacheStats() (hits, misses, invalidations int64) {
	return s.decodeHits, s.decodeMisses, s.decodeInvalidation
}

// decodeCached returns the sealed decoded form of (key, data) at the backend
// mod revision rev, reusing the cached decode when its revision tag matches
// and performing (and caching) a real decode otherwise. Decode errors are
// never cached: undecodable bytes are re-examined on every access, exactly
// like before.
func (s *Server) decodeCached(kind spec.Kind, key string, data []byte, rev int64) (spec.Object, error) {
	if obj, ok := s.decoded[key]; ok && obj.Meta().ResourceVersion == rev {
		s.decodeHits++
		return obj, nil
	}
	obj, err := s.decode(kind, data)
	if err != nil {
		return nil, err
	}
	s.decodeMisses++
	// The resource version every reader sees is the store revision of the
	// write, exactly like etcd's mod revision.
	obj.Meta().ResourceVersion = rev
	spec.Seal(obj) // entering the shared read path: immutable from here on
	s.decoded[key] = obj
	return obj, nil
}

// Audit returns the server's audit trail.
func (s *Server) Audit() *Audit { return s.audit }

// SetStoreWriteHook installs the apiserver→store channel hook.
func (s *Server) SetStoreWriteHook(h Hook) { s.storeWriteHook = h }

// SetRequestHook installs the component→apiserver channel hook.
func (s *Server) SetRequestHook(h Hook) { s.requestHook = h }

// SetRequestWireGate installs the request-wire interest gate (see the field
// docs). Without a gate, any installed request hook always receives the
// serialized message, preserving the legacy contract.
func (s *Server) SetRequestWireGate(g func() bool) { s.requestWireGate = g }

// SetWatchHook installs the apiserver→component watch-channel hook (see the
// field docs): the third injectable channel, covering the notifications the
// informer-style readiness pipeline depends on.
func (s *Server) SetWatchHook(h Hook) { s.watchHook = h }

// SetWatchGate installs the watch-channel interest gate. Without a gate, an
// installed watch hook sees every event.
func (s *Server) SetWatchGate(g func() bool) { s.watchGate = g }

// SetAccessHook installs a callback invoked with the store key of every
// object served by a read or watch dispatch; the injection framework uses it
// to measure activation ("an injection is activated when the injected
// resource instance is requested after the injection").
func (s *Server) SetAccessHook(h func(key string)) { s.accessHook = h }

// noteAccess feeds one view-served read into the access hook (see
// Client.NoteAccess).
func (s *Server) noteAccess(key string) {
	if s.accessHook != nil {
		s.accessHook(key)
	}
}

// ClientFor returns a client bound to a component identity.
func (s *Server) ClientFor(identity string) *Client {
	return &Client{srv: s, identity: identity}
}

// CacheLen reports the number of cached objects (diagnostics).
func (s *Server) CacheLen() int { return len(s.cache) }

// Restart simulates an apiserver restart: the watch cache is dropped and
// rebuilt from the store, which is when at-rest corruption becomes visible
// (§V-C1). Component watches survive (clients reconnect transparently) but
// receive a fresh Added event per object, like a watch re-list.
func (s *Server) Restart() {
	s.rebuildCache(true)
}

// rebuildCache reloads the watch cache from the backend. With dispatch set,
// every object is re-announced to current watchers (a restart's re-list);
// without it, the cache is rebuilt silently (a fork's restore — components
// prime their own views when they start).
func (s *Server) rebuildCache(dispatch bool) {
	kvs, err := s.backendList("/registry/")
	if err != nil {
		// The local replica is lost: keep serving the frozen cache (stale
		// reads are this fault's signature) until the replica is restored.
		return
	}
	s.cache = make(map[string]spec.Object)
	s.kindIndex = make(map[spec.Kind]*kindBucket)
	for _, kv := range kvs {
		if s.routed != nil {
			// A replicated backend re-lists through quorum reads: a restart
			// serves the value the majority agrees on, so single-replica
			// at-rest corruption is masked instead of resurrected — "quorum
			// reads mitigate corrupted values" (§V-C1).
			kv = s.quorumVerify(kv)
		}
		// decodeCached stamps the store's mod revision and seals, exactly
		// like the watch path: the serialized bytes carry the resource
		// version the *writer* saw, and serving that stale version would
		// make every post-restart update fail its optimistic-concurrency
		// check. Unmodified keys hit the decode cache (a restart re-list or
		// fork restore decodes almost nothing); keys whose bytes were
		// rewritten at rest were invalidated and decode for real, which is
		// when the corruption becomes visible (§V-C1).
		obj, err := s.decodeCached(kv.Kind, kv.Key, kv.Value, kv.Revision)
		if err != nil {
			s.handleUndecodable(kv.Key, kv.Kind)
			continue
		}
		s.cacheSet(kv.Key, kv.Kind, obj)
		if dispatch {
			s.dispatch(kv.Key, WatchEvent{Type: Added, Kind: kv.Kind, Object: obj})
		}
	}
}

// quorumVerify checks one re-listed KV against a quorum read. When the local
// bytes lose the vote (corrupted or lost-update replica), the quorum value is
// served under the local revision so per-replica RV semantics hold.
func (s *Server) quorumVerify(kv store.KV) store.KV {
	qkv, ok := s.routed.QuorumGet(kv.Key)
	if !ok || bytes.Equal(qkv.Value, kv.Value) {
		return kv
	}
	kv.Value = qkv.Value
	return kv
}

// cacheSet installs obj in the watch cache and the per-kind list index.
func (s *Server) cacheSet(key string, kind spec.Kind, obj spec.Object) {
	s.cache[key] = obj
	b := s.kindIndex[kind]
	if b == nil {
		b = &kindBucket{}
		s.kindIndex[kind] = b
	}
	b.insert(key, obj)
}

// cacheDelete removes key from the watch cache and the per-kind list index.
func (s *Server) cacheDelete(key string, kind spec.Kind) {
	delete(s.cache, key)
	if b := s.kindIndex[kind]; b != nil {
		b.remove(key)
	}
}

// --- request path (component → apiserver → store) ---------------------------

func (s *Server) handle(identity string, verb Verb, obj spec.Object) error {
	if s.down {
		// A crashed apiserver never answers: the caller observes a timeout.
		// Nothing is audited — a dead process writes no log.
		return ErrTimeout
	}
	kind := obj.Kind()
	meta := obj.Meta()
	msg := &Message{
		Verb:      verb,
		Kind:      kind,
		Namespace: meta.Namespace,
		Name:      meta.Name,
		Source:    identity,
		Data:      nil,
	}
	// Fast path: no request hook, or the installed hook declares (via the
	// wire gate) that it does not currently need the serialized bytes —
	// e.g. an injector armed on the store channel. The component→apiserver
	// round-trip (encode + decode) is then observationally dead weight; a
	// deep copy of the request object is bit-equivalent to decoding its own
	// encoding, and roughly 5× cheaper. Status updates and deletes skip
	// even that copy: the server never retains or mutates the request
	// object on those verbs (the status is grafted onto the server's own
	// clone of the current object; a delete only reads identity), so the
	// caller's instance can be read in place.
	if !s.requestWireArmed() {
		if verb == VerbUpdateStatus || verb == VerbDelete {
			return s.apply(identity, verb, msg, obj)
		}
		return s.apply(identity, verb, msg, obj.Clone())
	}
	// The request wire bytes live only for the duration of this (synchronous)
	// handle call — the store copies on Put — so they are encoded into an
	// arena buffer instead of a per-request allocation.
	buf := s.arena.NewBuffer()
	defer buf.Free()
	data, err := s.arena.AppendMarshal(buf.B[:0], obj)
	if err != nil {
		return s.audit.record(identity, verb, kind, meta.Name, fmt.Errorf("%w: %v", ErrBadRequest, err), false)
	}
	buf.B = data
	msg.Data = data

	// Channel 1: component → apiserver. Tampering here faces validation.
	if s.requestHook != nil {
		switch s.requestHook(msg) {
		case Drop:
			// The request never reaches the server; the component times out.
			return s.audit.record(identity, verb, kind, msg.Name, ErrTimeout, msg.Tampered)
		}
	}

	recv := spec.New(kind)
	if err := codec.Unmarshal(msg.Data, recv); err != nil {
		return s.audit.record(identity, verb, kind, msg.Name, fmt.Errorf("%w: %v", ErrBadRequest, err), msg.Tampered)
	}

	return s.apply(identity, verb, msg, recv)
}

// apply validates, admits and persists a decoded request object. Existence
// and resource-version checks read the backend, not the watch cache: writes
// are transactional against the store (like etcd txns), while reads are
// served from the cache.
func (s *Server) apply(identity string, verb Verb, msg *Message, obj spec.Object) error {
	kind := msg.Kind
	key := spec.Key(kind, msg.Namespace, msg.Name)
	var spliceFrom, donor spec.Object
	cur, exists, curErr := s.current(kind, key)
	if errors.Is(curErr, store.ErrReplicaDown) {
		// This server's store replica is lost: every verb fails, and the
		// wrapped cause lets failover clients tell "endpoint unusable" from
		// an application error.
		return s.audit.record(identity, verb, kind, msg.Name, fmt.Errorf("%w: %w", ErrUnavailable, curErr), msg.Tampered)
	}
	if curErr != nil && verb != VerbDelete {
		// The current object is undecodable: mutating requests fail until
		// the undecodable-deletion sweep removes it.
		return s.audit.record(identity, verb, kind, msg.Name, fmt.Errorf("%w: %v", ErrUnavailable, curErr), msg.Tampered)
	}

	switch verb {
	case VerbCreate:
		if exists {
			return s.audit.record(identity, verb, kind, msg.Name, ErrAlreadyExists, msg.Tampered)
		}
		if !s.opts.DisableValidation {
			if err := s.validate(verb, msg, obj, nil); err != nil {
				return s.audit.record(identity, verb, kind, msg.Name, err, msg.Tampered)
			}
		}
		s.admitCreate(obj)
	case VerbUpdate:
		if !exists {
			return s.audit.record(identity, verb, kind, msg.Name, ErrNotFound, msg.Tampered)
		}
		if obj.Meta().ResourceVersion != cur.Meta().ResourceVersion {
			return s.audit.record(identity, verb, kind, msg.Name, ErrConflict, msg.Tampered)
		}
		if !s.opts.DisableValidation {
			if err := s.validate(verb, msg, obj, cur); err != nil {
				return s.audit.record(identity, verb, kind, msg.Name, err, msg.Tampered)
			}
		}
		// Updates preserve identity and creation metadata.
		obj.Meta().UID = cur.Meta().UID
		obj.Meta().CreatedMillis = cur.Meta().CreatedMillis
		obj.Meta().Generation = cur.Meta().Generation + 1
	case VerbUpdateStatus:
		if !exists {
			return s.audit.record(identity, verb, kind, msg.Name, ErrNotFound, msg.Tampered)
		}
		if obj.Meta().ResourceVersion != cur.Meta().ResourceVersion {
			return s.audit.record(identity, verb, kind, msg.Name, ErrConflict, msg.Tampered)
		}
		// Status updates cannot change spec or metadata: graft the incoming
		// status onto the current object (subresource semantics). cur is the
		// shared decode-cache instance, so take a private copy to mutate —
		// a shallow status clone, since only the Status struct is written
		// before the object is re-sealed. The sealed original rides along as
		// the splice source: its cached wire bytes are the canonical encoding
		// of exactly the metadata+spec prefix the merged object shares.
		spliceFrom = cur
		cur = spec.CloneForStatus(cur)
		if err := mergeStatus(cur, obj); err != nil {
			return s.audit.record(identity, verb, kind, msg.Name, err, msg.Tampered)
		}
		donor = obj
		obj = cur
	case VerbDelete:
		if !exists {
			return s.audit.record(identity, verb, kind, msg.Name, ErrNotFound, msg.Tampered)
		}
		return s.persistDelete(identity, msg, key)
	}

	// Admission runs after validation and metadata handling, immediately
	// before persist: mutating hooks rewrite the (request-private) object,
	// validating hooks may deny it, and an unreachable fail-closed hook
	// rejects it. Status updates bypass the chain like the status
	// subresource exemption real webhook configurations carry — the spec
	// was admitted when it was written.
	if s.admission != nil && (verb == VerbCreate || verb == VerbUpdate) {
		if err := s.admission.Admit(verb, obj); err != nil {
			return s.audit.record(identity, verb, kind, msg.Name, err, msg.Tampered)
		}
	}

	err := s.persistWrite(identity, verb, msg, obj, key, spliceFrom)
	if err == nil && donor != nil && !donor.Meta().Sealed() {
		// Report the committed revision back on the status donor — the
		// response body a real apiserver returns as the updated object. A
		// status writer on a fixed cadence (the kubelet heartbeat) can then
		// reuse its own donor as the base of the next write instead of
		// re-reading the object every period. On the tampered or
		// hook-replaced paths persistWrite leaves obj at the old revision,
		// so the donor keeps it too and the next reuse surfaces as a
		// conflict — exactly the fresh-read fallback those semantics need.
		donor.Meta().ResourceVersion = obj.Meta().ResourceVersion
	}
	return err
}

// persistWrite encodes obj and commits it. When spliceFrom is non-nil (a
// status update's sealed current object) and carries cached wire bytes, the
// encode re-uses its metadata+spec prefix and re-encodes only the status
// section — byte-identical to a full Marshal, because the merged object
// shares metadata and spec with spliceFrom and the encoder is deterministic.
// The splice is off whenever a request-channel injection is armed (cached
// bytes must never stand in for real ones under byte-fault semantics) and
// under critical-field checksums (the fresh stamp changes the metadata
// section the cached prefix covers).
func (s *Server) persistWrite(identity string, verb Verb, msg *Message, obj spec.Object, key string, spliceFrom spec.Object) error {
	if s.opts.CriticalFieldChecksums {
		stampChecksum(obj)
		spliceFrom = nil
	}
	// Same arena-buffer discipline as handle: the store copies the value,
	// and injection hooks that replace out.Data swap in their own slice.
	buf := s.arena.NewBuffer()
	defer buf.Free()
	var data []byte
	var err error
	if spliceFrom != nil && !s.requestWireArmed() {
		data, err = s.spliceStatus(buf.B[:0], spliceFrom, obj)
		if err != nil {
			data = nil // malformed splice source: fall back to a full encode
		}
	}
	if data == nil {
		data, err = s.arena.AppendMarshal(buf.B[:0], obj)
		if err != nil {
			return s.audit.record(identity, verb, msg.Kind, msg.Name, fmt.Errorf("%w: %v", ErrBadRequest, err), msg.Tampered)
		}
	}
	buf.B = data
	out := &Message{
		Verb: verb, Kind: msg.Kind, Namespace: msg.Namespace, Name: msg.Name,
		Source: "apiserver", Data: data, Tampered: msg.Tampered,
	}
	// Channel 2: apiserver → store. Tampering here bypasses validation: the
	// corrupted transaction becomes the agreed cluster state.
	if s.storeWriteHook != nil {
		switch s.storeWriteHook(out) {
		case Drop:
			s.audit.countDrop()
			return nil // the caller believes the write happened
		}
	}
	rev, err := s.backendPut(key, msg.Kind, out.Data)
	if err != nil {
		// %w on the cause too: failover clients match store.ErrReplicaDown /
		// store.ErrNoQuorum to retry against another apiserver.
		return s.audit.record(identity, verb, msg.Kind, msg.Name, fmt.Errorf("%w: %w", ErrUnavailable, err), msg.Tampered)
	}
	// Prime the decode cache with the object just persisted: decoding the
	// stored bytes would reproduce obj field for field (the codec round-trips
	// exactly), so the conflict check of the next write to this key — and the
	// watch ingest of this very write — skip the backend-byte Unmarshal. Only
	// if the bytes that reached the store are verbatim the encoding of obj,
	// though: a store-channel hook that replaced or tampered the payload
	// keeps byte-level fault semantics by forcing a real decode later.
	// A revision-advancing write supersedes any silent rewrite: events for
	// the new revision carry the new bytes, so the key's taint is lifted.
	delete(s.tainted, key)
	if !out.Tampered && len(out.Data) == len(data) && (len(data) == 0 || &out.Data[0] == &data[0]) {
		obj.Meta().ResourceVersion = rev
		// Cache the object's canonical encoding alongside the decoded form:
		// data is verbatim the encoding of obj at the writer's RV, so
		// patching in the committed revision yields exactly what a fresh
		// Marshal of the sealed object would produce — the next status
		// update to this key splices onto it instead of re-encoding
		// metadata and spec. Only kinds with a status section benefit, and
		// an armed request channel suppresses the cache entirely (byte
		// faults must always act on freshly produced bytes).
		if hasStatusSection(msg.Kind) && !s.requestWireArmed() {
			if w := codec.RewriteObjectRV(data, rev); w != nil {
				if off, ok := codec.StatusOffset(w); ok {
					obj.Meta().SetWireBytes(w, off)
				}
			}
		}
		spec.Seal(obj) // entering the shared read path via the decode cache
		s.decoded[key] = obj
	}
	s.audit.countOK(identity, verb)
	if msg.Tampered {
		s.audit.countTamperedOK()
	}
	return nil
}

func (s *Server) persistDelete(identity string, msg *Message, key string) error {
	out := &Message{
		Verb: VerbDelete, Kind: msg.Kind, Namespace: msg.Namespace, Name: msg.Name,
		Source: "apiserver",
	}
	if s.storeWriteHook != nil {
		switch s.storeWriteHook(out) {
		case Drop:
			s.audit.countDrop()
			return nil
		}
	}
	ok, err := s.backendDelete(key)
	if err != nil {
		return s.audit.record(identity, VerbDelete, msg.Kind, msg.Name, fmt.Errorf("%w: %w", ErrUnavailable, err), msg.Tampered)
	}
	if !ok {
		return s.audit.record(identity, VerbDelete, msg.Kind, msg.Name, ErrNotFound, msg.Tampered)
	}
	s.audit.countOK(identity, VerbDelete)
	return nil
}

// admitCreate fills server-assigned defaults on object creation.
func (s *Server) admitCreate(obj spec.Object) {
	m := obj.Meta()
	if m.UID == "" {
		s.uidCounter += s.uidStride
		m.UID = spec.FormatUID(s.uidCounter)
	}
	if m.CreatedMillis == 0 {
		m.CreatedMillis = s.loop.Time().UnixMilli()
	}
	m.Generation = 1
	if svc, ok := obj.(*spec.Service); ok {
		if svc.Spec.ClusterIP == "" {
			s.ipCounter += s.uidStride
			svc.Spec.ClusterIP = fmt.Sprintf("10.96.0.%d", s.ipCounter%250+1)
		}
		for i := range svc.Spec.Ports {
			if svc.Spec.Ports[i].Protocol == "" {
				svc.Spec.Ports[i].Protocol = "TCP"
			}
		}
	}
}

// --- store event path (store → apiserver → watchers) -------------------------

func (s *Server) onStoreEvent(ev store.Event) {
	switch ev.Type {
	case store.EventPut:
		// The untampered write path already cached the decoded form at this
		// revision (persistWrite); ingesting the event is then free of any
		// codec.Unmarshal. Tampered or externally-written bytes miss and
		// decode for real. Tainted keys bypass the cache entirely: ev.Value
		// is a commit-time snapshot, and after an at-rest rewrite it may be
		// the *pre-corruption* bytes under the current revision — neither a
		// hit (would serve the corrupted decode for clean bytes) nor a
		// cache fill (would resurrect the clean object and mask the
		// corruption past every future rebuild) is sound.
		var obj spec.Object
		var err error
		if _, bad := s.tainted[ev.Key]; bad {
			obj, err = s.decode(ev.Kind, ev.Value)
			if err == nil {
				obj.Meta().ResourceVersion = ev.Revision
				spec.Seal(obj)
			}
		} else {
			obj, err = s.decodeCached(ev.Kind, ev.Key, ev.Value, ev.Revision)
		}
		if err != nil {
			s.handleUndecodable(ev.Key, ev.Kind)
			return
		}
		_, existed := s.cache[ev.Key]
		s.cacheSet(ev.Key, ev.Kind, obj)
		typ := Added
		if existed {
			typ = Modified
		}
		s.dispatch(ev.Key, WatchEvent{Type: typ, Kind: ev.Kind, Object: obj})
	case store.EventDelete:
		delete(s.decoded, ev.Key)
		delete(s.tainted, ev.Key)
		obj, existed := s.cache[ev.Key]
		if !existed {
			return
		}
		s.cacheDelete(ev.Key, ev.Kind)
		s.dispatch(ev.Key, WatchEvent{Type: Deleted, Kind: ev.Kind, Object: obj})
	}
}

// handleUndecodable implements the §II-D strategy: resources that cannot be
// deserialized are deleted to prevent failures when retrieving resource
// lists that contain them.
func (s *Server) handleUndecodable(key string, kind spec.Kind) {
	s.audit.countUndecodable()
	if s.opts.DisableUndecodableDeletion {
		return
	}
	s.loop.After(time.Millisecond, func() {
		_, _ = s.backendDelete(key)
	})
}

// current reads the authoritative state of key from the backend. The result
// is the *sealed* decode-cache instance — shared, read-only; the one write
// path that mutates it (status merge) goes through spec.CloneForWrite.
func (s *Server) current(kind spec.Kind, key string) (spec.Object, bool, error) {
	kv, ok, err := s.backendGet(key)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	obj, err := s.decodeCached(kind, key, kv.Value, kv.Revision)
	if err != nil {
		s.handleUndecodable(key, kind)
		return nil, true, err
	}
	return obj, true, nil
}

func (s *Server) decode(kind spec.Kind, data []byte) (spec.Object, error) {
	obj := spec.New(kind)
	if obj == nil {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, kind)
	}
	if err := codec.Unmarshal(data, obj); err != nil {
		return nil, err
	}
	if s.opts.CriticalFieldChecksums && !verifyChecksum(obj) {
		s.audit.countChecksumFailure()
		return nil, fmt.Errorf("%w: critical-field checksum mismatch", codec.ErrCorrupt)
	}
	return obj, nil
}

// dispatch queues ev for batched fan-out. key is the store key of the event's
// object — callers always have it at hand, which saves re-deriving (and
// allocating) it here for the access hook.
func (s *Server) dispatch(key string, ev WatchEvent) {
	if s.accessHook != nil {
		s.accessHook(key)
	}
	// Zero copies per dispatch: the event object is sealed, so all ~13
	// watchers share the cache instance itself. Watchers that need to mutate
	// go through spec.CloneForWrite; at campaign scale the per-event deep
	// copy this replaces was the single largest allocation source.
	//
	// Deliveries are batched per watcher: the event is appended to the
	// watcher's queue, and one flush per watcher per virtual tick drains it.
	// A burst of same-tick events (a reconcile loop's writes landing after
	// the store's fixed watch latency, a restart re-list) schedules ~13 loop
	// events total instead of ~13 per object.
	// No watchers yet (e.g. a restart re-list before any component
	// watches): pd.n would be zero and the fanout would deliver to nobody,
	// so skip the queue and loop-event traffic outright.
	if len(s.watchers) == 0 {
		return
	}
	s.pending = append(s.pending, pendingDispatch{ev: ev, n: len(s.watchers)})
	s.loop.After(0, s.fanoutFn)
}

// fanout delivers the front pending event to every watcher that was
// registered at dispatch time and matches its kind, in registration order —
// one loop event per watch event instead of one per (event, watcher) pair.
// When a watch-channel injection is armed (the gate reports interest), the
// event passes through the watch hook exactly once before delivery.
func (s *Server) fanout() {
	pd := s.pending[s.pendingHead]
	s.pending[s.pendingHead] = pendingDispatch{} // release the object ref
	s.pendingHead++
	if s.pendingHead == len(s.pending) {
		s.pending = s.pending[:0]
		s.pendingHead = 0
	}
	ev, deliver := s.interceptWatch(pd.ev)
	if s.down {
		// Crashed between dispatch and delivery: the notification dies with
		// the process.
		deliver = false
	}
	if deliver {
		s.fanningOut++
		if s.watcherIdxDirty {
			s.rebuildWatcherIdx()
		}
		// Merge the event kind's watcher positions with the wildcard list in
		// ascending registration order — identical delivery order to the old
		// full scan, without touching the mismatched-kind registrations.
		idx, wild := s.watcherIdx[ev.Kind], s.watcherIdx[""]
		i, j := 0, 0
		for i < len(idx) || j < len(wild) {
			var n int
			if j >= len(wild) || (i < len(idx) && idx[i] < wild[j]) {
				n, i = idx[i], i+1
			} else {
				n, j = wild[j], j+1
			}
			if n >= pd.n {
				break // merged sequence is ascending: nothing below pd.n remains
			}
			if w := s.watchers[n]; !w.cancelled {
				w.fn(ev)
			}
		}
		s.fanningOut--
	}
	// Sweep only after delivering: pd.n indexes the pre-sweep list, so the
	// list must not be compacted while any fanout is iterating it (a watcher
	// callback may cancel watches mid-delivery).
	s.sweepWatchers()
}

// interceptWatch offers ev to the watch-channel hook. It reports the event to
// deliver (possibly carrying a tampered private instance) and whether to
// deliver it at all. The store and the server's own cache are untouched
// either way — this channel models the notifications, not the state.
func (s *Server) interceptWatch(ev WatchEvent) (WatchEvent, bool) {
	if s.watchHook == nil || (s.watchGate != nil && !s.watchGate()) {
		return ev, true
	}
	meta := ev.Object.Meta()
	msg := &Message{
		Verb:      watchVerb(ev.Type),
		Kind:      ev.Kind,
		Namespace: meta.Namespace,
		Name:      meta.Name,
		Source:    "apiserver",
	}
	// Deletion notifications carry no payload worth tampering; field and
	// byte faults need the serialized event object on the wire. Same pooled-
	// buffer discipline as handle/persistWrite: the bytes live only until
	// the in-function decode below, and a hook that swaps in its own slice
	// leaves the pooled one free regardless.
	if ev.Type != Deleted {
		buf := s.arena.NewBuffer()
		defer buf.Free()
		data, err := s.arena.AppendMarshal(buf.B[:0], ev.Object)
		if err == nil {
			buf.B = data
			msg.Data = data
		}
	}
	if s.watchHook(msg) == Drop {
		// The notification is lost in flight; subscribers stay stale until
		// their next resync re-list reconciles them.
		return ev, false
	}
	if !msg.Tampered {
		return ev, true
	}
	recv := spec.New(ev.Kind)
	if err := codec.Unmarshal(msg.Data, recv); err != nil {
		// The tampered event no longer decodes on the client side: the
		// notification is effectively lost, like a dropped message.
		return ev, false
	}
	// Watchers see the corrupted instance under the committed revision; the
	// server's cache, decode cache, and store keep the clean object, so the
	// next list or resync observes the truth — watch-channel corruption is
	// transient by architecture.
	recv.Meta().ResourceVersion = meta.ResourceVersion
	spec.Seal(recv)
	ev.Object = recv
	return ev, true
}

// watchVerb maps a watch event type onto the verb vocabulary hooks share
// with the other two channels.
func watchVerb(t WatchEventType) Verb {
	switch t {
	case Added:
		return VerbCreate
	case Deleted:
		return VerbDelete
	default:
		return VerbUpdate
	}
}

// --- reads -------------------------------------------------------------------

// get serves a read as a sealed reference to the cache instance — the uniform
// sealed-read contract (no per-read defensive copy; writers CloneForWrite).
// This subsumes the former get/getView split: every read is now "view"-cheap,
// and immutability rather than copying provides the isolation.
func (s *Server) get(kind spec.Kind, namespace, name string) (spec.Object, error) {
	if s.down {
		return nil, ErrTimeout
	}
	key := spec.Key(kind, namespace, name)
	obj, ok := s.cache[key]
	if !ok {
		return nil, ErrNotFound
	}
	if s.accessHook != nil {
		s.accessHook(key)
	}
	return obj, nil
}

// list returns sealed references in key order, under the same contract as
// get. The per-kind index makes this a binary search plus one contiguous
// copy: no map iteration, no per-call sort, no per-item clone.
func (s *Server) list(kind spec.Kind, namespace string) []spec.Object {
	if s.down {
		return nil
	}
	b := s.kindIndex[kind]
	if b == nil || len(b.keys) == 0 {
		return nil
	}
	i, j := 0, len(b.keys)
	if namespace != "" {
		prefix := "/registry/" + string(kind) + "/" + namespace + "/"
		i = sort.SearchStrings(b.keys, prefix)
		j = i
		for j < len(b.keys) && strings.HasPrefix(b.keys[j], prefix) {
			j++
		}
	}
	if i == j {
		return nil
	}
	if s.accessHook != nil {
		for _, key := range b.keys[i:j] {
			s.accessHook(key)
		}
	}
	out := make([]spec.Object, j-i)
	copy(out, b.objs[i:j])
	return out
}

func (s *Server) watch(kind spec.Kind, fn func(WatchEvent)) (cancel func()) {
	w := &watcher{kind: kind, fn: fn}
	s.watchers = append(s.watchers, w)
	if s.watcherIdx == nil {
		s.watcherIdx = make(map[spec.Kind][]int)
	}
	s.watcherIdx[kind] = append(s.watcherIdx[kind], len(s.watchers)-1)
	return func() {
		if w.cancelled {
			return
		}
		w.cancelled = true
		s.cancelledWatchers++
		s.sweepWatchers()
	}
}

// sweepWatchers splices cancelled watchers out of the registration list —
// but only while no dispatches are pending, because pending deliveries index
// the list by its dispatch-time length.
func (s *Server) sweepWatchers() {
	if s.cancelledWatchers == 0 || len(s.pending) != 0 || s.fanningOut != 0 {
		return
	}
	live := s.watchers[:0]
	for _, w := range s.watchers {
		if !w.cancelled {
			live = append(live, w)
		}
	}
	for i := len(live); i < len(s.watchers); i++ {
		s.watchers[i] = nil
	}
	s.watchers = live
	s.cancelledWatchers = 0
	// Compaction shifted positions; rebuild lazily at the next fan-out. A
	// shutdown cancels hundreds of kubelet watches back to back, and an eager
	// rebuild per cancel would be quadratic in watcher count.
	s.watcherIdxDirty = true
}

// rebuildWatcherIdx re-derives the per-kind position lists after compaction.
func (s *Server) rebuildWatcherIdx() {
	for k, idx := range s.watcherIdx {
		s.watcherIdx[k] = idx[:0]
	}
	for i, w := range s.watchers {
		s.watcherIdx[w.kind] = append(s.watcherIdx[w.kind], i)
	}
	s.watcherIdxDirty = false
}

func mergeStatus(dst, src spec.Object) error {
	switch d := dst.(type) {
	case *spec.Pod:
		d.Status = src.(*spec.Pod).Status
	case *spec.ReplicaSet:
		d.Status = src.(*spec.ReplicaSet).Status
	case *spec.Deployment:
		d.Status = src.(*spec.Deployment).Status
	case *spec.DaemonSet:
		d.Status = src.(*spec.DaemonSet).Status
	case *spec.Node:
		d.Status = src.(*spec.Node).Status
	default:
		return fmt.Errorf("%w: kind %s has no status subresource", ErrBadRequest, dst.Kind())
	}
	return nil
}

// hasStatusSection reports whether kind carries a status subresource — a
// top-level field-3 record on the wire, and the only write class that can
// splice onto cached encodings.
func hasStatusSection(kind spec.Kind) bool {
	switch kind {
	case spec.KindPod, spec.KindReplicaSet, spec.KindDeployment, spec.KindDaemonSet, spec.KindNode:
		return true
	}
	return false
}

// requestWireArmed reports whether a request-channel hook currently wants
// serialized bytes. While armed, the write path neither serves nor populates
// cached encodings: byte-fault semantics require every wire byte a hook can
// observe or tamper to be freshly produced.
func (s *Server) requestWireArmed() bool {
	return s.requestHook != nil && (s.requestWireGate == nil || s.requestWireGate())
}

// spliceStatus builds the canonical encoding of obj (a status clone of src)
// by appending obj's re-encoded status section to src's cached metadata+spec
// prefix. Returns nil bytes when src carries no cached encoding or obj's
// kind has no status section — the caller falls back to a full encode.
func (s *Server) spliceStatus(b []byte, src, obj spec.Object) ([]byte, error) {
	w, off := src.Meta().WireBytes()
	if w == nil {
		return nil, nil
	}
	var status any
	switch t := obj.(type) {
	case *spec.Pod:
		status = &t.Status
	case *spec.ReplicaSet:
		status = &t.Status
	case *spec.Deployment:
		status = &t.Status
	case *spec.DaemonSet:
		status = &t.Status
	case *spec.Node:
		status = &t.Status
	default:
		return nil, nil
	}
	return s.arena.AppendStructField(append(b, w[:off]...), codec.ObjectStatusField, status)
}
