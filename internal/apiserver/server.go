// Package apiserver implements the API server: the single component that
// talks to the data store, validates and admits requests from every other
// component, maintains the watch cache, and fans out change notifications.
//
// It hosts the two communication channels Mutiny injects into (§IV-A):
//
//   - the apiserver→store channel, where a tampered transaction lands in the
//     store unvalidated (emulating faults that originate in the apiserver or
//     propagate undetected), and
//   - the component→apiserver channel, where tampered requests face the
//     validation layer, used by the propagation experiments of §V-C4.
package apiserver

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// API error values, matched by components to decide on retries and by the
// audit trail feeding the user-error analysis (Figure 7).
var (
	ErrNotFound      = errors.New("apiserver: not found")
	ErrAlreadyExists = errors.New("apiserver: already exists")
	ErrConflict      = errors.New("apiserver: resource version conflict")
	ErrInvalid       = errors.New("apiserver: validation failed")
	ErrUnavailable   = errors.New("apiserver: store unavailable")
	ErrTimeout       = errors.New("apiserver: request timed out")
	ErrBadRequest    = errors.New("apiserver: malformed request")
)

// Verb identifies the operation carried by a channel message.
type Verb int

// Request verbs.
const (
	VerbCreate Verb = iota + 1
	VerbUpdate
	VerbUpdateStatus
	VerbDelete
)

func (v Verb) String() string {
	switch v {
	case VerbCreate:
		return "create"
	case VerbUpdate:
		return "update"
	case VerbUpdateStatus:
		return "update-status"
	case VerbDelete:
		return "delete"
	default:
		return fmt.Sprintf("Verb(%d)", int(v))
	}
}

// Message is one serialized write crossing a channel. Hooks may mutate Data
// in place; identity fields describe the request context (the "URL"), which
// is fixed before any tampering occurs.
type Message struct {
	Verb      Verb
	Kind      spec.Kind
	Namespace string
	Name      string
	Source    string // component identity that issued the request
	Data      []byte // encoded object; nil for deletes
	// Tampered is set by an injection hook when it mutates the message; it
	// lets the audit trail attribute outcomes for the propagation
	// experiments (Table VI).
	Tampered bool
}

// Action is a hook's verdict on a message.
type Action int

// Hook verdicts.
const (
	// Pass lets the (possibly mutated) message continue.
	Pass Action = iota
	// Drop discards the message; the caller observes success (the paper's
	// message-drop model: "the calling function returns without any error
	// before sending the message").
	Drop
)

// Hook intercepts messages on a channel.
type Hook func(*Message) Action

// WatchEventType distinguishes watch notifications.
type WatchEventType int

// Watch event types.
const (
	Added WatchEventType = iota + 1
	Modified
	Deleted
)

func (t WatchEventType) String() string {
	switch t {
	case Added:
		return "ADDED"
	case Modified:
		return "MODIFIED"
	case Deleted:
		return "DELETED"
	default:
		return fmt.Sprintf("WatchEventType(%d)", int(t))
	}
}

// WatchEvent is delivered to component watchers. Object is the *sealed*
// cache instance shared by every watcher and every read of that revision —
// zero copies are made per dispatch. Watchers may read and retain it freely;
// to mutate, they must go through spec.CloneForWrite (the seal-contract
// guard test enforces this).
type WatchEvent struct {
	Type   WatchEventType
	Kind   spec.Kind
	Object spec.Object
}

// Options configure a Server.
type Options struct {
	// DisableValidation turns the validation layer off (ablation).
	DisableValidation bool
	// DisableUndecodableDeletion keeps undecodable resources in the store
	// instead of deleting them (ablation of the §II-D strategy).
	DisableUndecodableDeletion bool
	// CriticalFieldChecksums enables the §VI-B redundancy-code mitigation:
	// the server stamps every write with a checksum over its critical
	// fields (computed before the transaction leaves the server) and
	// deletes objects whose stored critical fields no longer match — so
	// single-bit corruption of a dependency, identity, or networking field
	// is detected at first read-back instead of silently propagating. The
	// paper: "simple data redundancy mechanisms, like redundancy codes on
	// critical fields, can protect the cluster from hardware faults with a
	// negligible overhead (the critical fields are < 10% of total)".
	CriticalFieldChecksums bool
}

// Server is the API server.
type Server struct {
	loop    *sim.Loop
	backend store.Backend
	opts    Options

	cache map[string]spec.Object // decoded watch cache, by store key
	// watchers is kept in registration order: dispatch schedules callbacks
	// in iteration order, and map iteration would randomize the delivery
	// order of same-tick events across runs, breaking bit-reproducibility.
	watchers []*watcher

	uidCounter int64
	ipCounter  int64

	storeWriteHook Hook
	requestHook    Hook
	// requestWireGate, when set alongside a request hook, reports whether the
	// hook currently needs the serialized request bytes. While it returns
	// false the server elides the component→apiserver wire round-trip
	// (encode + decode) and applies a deep copy of the request object
	// directly — semantically identical for an uninterested hook, and the
	// dominant write-path saving of the copy-on-write pipeline.
	requestWireGate func() bool
	accessHook      func(key string)

	audit *Audit

	cancelStoreWatch func()
}

type watcher struct {
	kind      spec.Kind
	fn        func(WatchEvent)
	cancelled bool
}

// New creates a Server over the given backend and starts its store watch.
func New(loop *sim.Loop, backend store.Backend, opts *Options) *Server {
	s := &Server{
		loop:    loop,
		backend: backend,
		cache:   make(map[string]spec.Object),
		audit:   NewAudit(loop),
	}
	if opts != nil {
		s.opts = *opts
	}
	s.cancelStoreWatch = backend.Watch("/registry/", s.onStoreEvent)
	return s
}

// Audit returns the server's audit trail.
func (s *Server) Audit() *Audit { return s.audit }

// SetStoreWriteHook installs the apiserver→store channel hook.
func (s *Server) SetStoreWriteHook(h Hook) { s.storeWriteHook = h }

// SetRequestHook installs the component→apiserver channel hook.
func (s *Server) SetRequestHook(h Hook) { s.requestHook = h }

// SetRequestWireGate installs the request-wire interest gate (see the field
// docs). Without a gate, any installed request hook always receives the
// serialized message, preserving the legacy contract.
func (s *Server) SetRequestWireGate(g func() bool) { s.requestWireGate = g }

// SetAccessHook installs a callback invoked with the store key of every
// object served by a read or watch dispatch; the injection framework uses it
// to measure activation ("an injection is activated when the injected
// resource instance is requested after the injection").
func (s *Server) SetAccessHook(h func(key string)) { s.accessHook = h }

// ClientFor returns a client bound to a component identity.
func (s *Server) ClientFor(identity string) *Client {
	return &Client{srv: s, identity: identity}
}

// CacheLen reports the number of cached objects (diagnostics).
func (s *Server) CacheLen() int { return len(s.cache) }

// Restart simulates an apiserver restart: the watch cache is dropped and
// rebuilt from the store, which is when at-rest corruption becomes visible
// (§V-C1). Component watches survive (clients reconnect transparently) but
// receive a fresh Added event per object, like a watch re-list.
func (s *Server) Restart() {
	s.rebuildCache(true)
}

// rebuildCache reloads the watch cache from the backend. With dispatch set,
// every object is re-announced to current watchers (a restart's re-list);
// without it, the cache is rebuilt silently (a fork's restore — components
// prime their own views when they start).
func (s *Server) rebuildCache(dispatch bool) {
	s.cache = make(map[string]spec.Object)
	for _, kv := range s.backend.List("/registry/") {
		obj, err := s.decode(kv.Kind, kv.Value)
		if err != nil {
			s.handleUndecodable(kv.Key, kv.Kind)
			continue
		}
		// Stamp the store's mod revision, exactly like the watch path does:
		// the serialized bytes carry the resource version the *writer* saw,
		// and serving that stale version would make every post-restart
		// update fail its optimistic-concurrency check.
		obj.Meta().ResourceVersion = kv.Revision
		spec.Seal(obj) // entering the shared read path: immutable from here on
		s.cache[kv.Key] = obj
		if dispatch {
			s.dispatch(WatchEvent{Type: Added, Kind: kv.Kind, Object: obj})
		}
	}
}

// --- request path (component → apiserver → store) ---------------------------

func (s *Server) handle(identity string, verb Verb, obj spec.Object) error {
	kind := obj.Kind()
	meta := obj.Meta()
	msg := &Message{
		Verb:      verb,
		Kind:      kind,
		Namespace: meta.Namespace,
		Name:      meta.Name,
		Source:    identity,
		Data:      nil,
	}
	// Fast path: no request hook, or the installed hook declares (via the
	// wire gate) that it does not currently need the serialized bytes —
	// e.g. an injector armed on the store channel. The component→apiserver
	// round-trip (encode + decode) is then observationally dead weight; a
	// deep copy of the request object is bit-equivalent to decoding its own
	// encoding, and roughly 5× cheaper.
	if s.requestHook == nil || (s.requestWireGate != nil && !s.requestWireGate()) {
		return s.apply(identity, verb, msg, obj.Clone())
	}
	// The request wire bytes live only for the duration of this (synchronous)
	// handle call — the store copies on Put — so they are encoded into a
	// pooled buffer instead of a per-request allocation.
	buf := codec.NewBuffer()
	defer buf.Free()
	data, err := codec.AppendMarshal(buf.B[:0], obj)
	if err != nil {
		return s.audit.record(identity, verb, kind, meta.Name, fmt.Errorf("%w: %v", ErrBadRequest, err), false)
	}
	buf.B = data
	msg.Data = data

	// Channel 1: component → apiserver. Tampering here faces validation.
	if s.requestHook != nil {
		switch s.requestHook(msg) {
		case Drop:
			// The request never reaches the server; the component times out.
			return s.audit.record(identity, verb, kind, msg.Name, ErrTimeout, msg.Tampered)
		}
	}

	recv := spec.New(kind)
	if err := codec.Unmarshal(msg.Data, recv); err != nil {
		return s.audit.record(identity, verb, kind, msg.Name, fmt.Errorf("%w: %v", ErrBadRequest, err), msg.Tampered)
	}

	return s.apply(identity, verb, msg, recv)
}

// apply validates, admits and persists a decoded request object. Existence
// and resource-version checks read the backend, not the watch cache: writes
// are transactional against the store (like etcd txns), while reads are
// served from the cache.
func (s *Server) apply(identity string, verb Verb, msg *Message, obj spec.Object) error {
	kind := msg.Kind
	key := spec.Key(kind, msg.Namespace, msg.Name)
	cur, exists, curErr := s.current(kind, key)
	if curErr != nil && verb != VerbDelete {
		// The current object is undecodable: mutating requests fail until
		// the undecodable-deletion sweep removes it.
		return s.audit.record(identity, verb, kind, msg.Name, fmt.Errorf("%w: %v", ErrUnavailable, curErr), msg.Tampered)
	}

	switch verb {
	case VerbCreate:
		if exists {
			return s.audit.record(identity, verb, kind, msg.Name, ErrAlreadyExists, msg.Tampered)
		}
		if !s.opts.DisableValidation {
			if err := s.validate(verb, msg, obj, nil); err != nil {
				return s.audit.record(identity, verb, kind, msg.Name, err, msg.Tampered)
			}
		}
		s.admitCreate(obj)
	case VerbUpdate:
		if !exists {
			return s.audit.record(identity, verb, kind, msg.Name, ErrNotFound, msg.Tampered)
		}
		if obj.Meta().ResourceVersion != cur.Meta().ResourceVersion {
			return s.audit.record(identity, verb, kind, msg.Name, ErrConflict, msg.Tampered)
		}
		if !s.opts.DisableValidation {
			if err := s.validate(verb, msg, obj, cur); err != nil {
				return s.audit.record(identity, verb, kind, msg.Name, err, msg.Tampered)
			}
		}
		// Updates preserve identity and creation metadata.
		obj.Meta().UID = cur.Meta().UID
		obj.Meta().CreatedMillis = cur.Meta().CreatedMillis
		obj.Meta().Generation = cur.Meta().Generation + 1
	case VerbUpdateStatus:
		if !exists {
			return s.audit.record(identity, verb, kind, msg.Name, ErrNotFound, msg.Tampered)
		}
		if obj.Meta().ResourceVersion != cur.Meta().ResourceVersion {
			return s.audit.record(identity, verb, kind, msg.Name, ErrConflict, msg.Tampered)
		}
		// Status updates cannot change spec or metadata: graft the incoming
		// status onto the current object (subresource semantics). cur is a
		// private decode off the backend — never shared, so no copy needed.
		if err := mergeStatus(cur, obj); err != nil {
			return s.audit.record(identity, verb, kind, msg.Name, err, msg.Tampered)
		}
		obj = cur
	case VerbDelete:
		if !exists {
			return s.audit.record(identity, verb, kind, msg.Name, ErrNotFound, msg.Tampered)
		}
		return s.persistDelete(identity, msg, key)
	}

	return s.persistWrite(identity, verb, msg, obj, key)
}

func (s *Server) persistWrite(identity string, verb Verb, msg *Message, obj spec.Object, key string) error {
	if s.opts.CriticalFieldChecksums {
		stampChecksum(obj)
	}
	// Same pooled-buffer discipline as handle: the store copies the value,
	// and injection hooks that replace out.Data swap in their own slice.
	buf := codec.NewBuffer()
	defer buf.Free()
	data, err := codec.AppendMarshal(buf.B[:0], obj)
	if err != nil {
		return s.audit.record(identity, verb, msg.Kind, msg.Name, fmt.Errorf("%w: %v", ErrBadRequest, err), msg.Tampered)
	}
	buf.B = data
	out := &Message{
		Verb: verb, Kind: msg.Kind, Namespace: msg.Namespace, Name: msg.Name,
		Source: "apiserver", Data: data, Tampered: msg.Tampered,
	}
	// Channel 2: apiserver → store. Tampering here bypasses validation: the
	// corrupted transaction becomes the agreed cluster state.
	if s.storeWriteHook != nil {
		switch s.storeWriteHook(out) {
		case Drop:
			s.audit.countDrop()
			return nil // the caller believes the write happened
		}
	}
	rev, err := s.backend.Put(key, msg.Kind, out.Data)
	if err != nil {
		return s.audit.record(identity, verb, msg.Kind, msg.Name, fmt.Errorf("%w: %v", ErrUnavailable, err), msg.Tampered)
	}
	_ = rev
	s.audit.countOK(identity, verb)
	if msg.Tampered {
		s.audit.countTamperedOK()
	}
	return nil
}

func (s *Server) persistDelete(identity string, msg *Message, key string) error {
	out := &Message{
		Verb: VerbDelete, Kind: msg.Kind, Namespace: msg.Namespace, Name: msg.Name,
		Source: "apiserver",
	}
	if s.storeWriteHook != nil {
		switch s.storeWriteHook(out) {
		case Drop:
			s.audit.countDrop()
			return nil
		}
	}
	if !s.backend.Delete(key) {
		return s.audit.record(identity, VerbDelete, msg.Kind, msg.Name, ErrNotFound, msg.Tampered)
	}
	s.audit.countOK(identity, VerbDelete)
	return nil
}

// admitCreate fills server-assigned defaults on object creation.
func (s *Server) admitCreate(obj spec.Object) {
	m := obj.Meta()
	if m.UID == "" {
		s.uidCounter++
		m.UID = spec.FormatUID(s.uidCounter)
	}
	if m.CreatedMillis == 0 {
		m.CreatedMillis = s.loop.Time().UnixMilli()
	}
	m.Generation = 1
	if svc, ok := obj.(*spec.Service); ok {
		if svc.Spec.ClusterIP == "" {
			s.ipCounter++
			svc.Spec.ClusterIP = fmt.Sprintf("10.96.0.%d", s.ipCounter%250+1)
		}
		for i := range svc.Spec.Ports {
			if svc.Spec.Ports[i].Protocol == "" {
				svc.Spec.Ports[i].Protocol = "TCP"
			}
		}
	}
}

// --- store event path (store → apiserver → watchers) -------------------------

func (s *Server) onStoreEvent(ev store.Event) {
	switch ev.Type {
	case store.EventPut:
		obj, err := s.decode(ev.Kind, ev.Value)
		if err != nil {
			s.handleUndecodable(ev.Key, ev.Kind)
			return
		}
		// The resource version every reader sees is the store revision of
		// the write, exactly like etcd's mod revision.
		obj.Meta().ResourceVersion = ev.Revision
		spec.Seal(obj) // entering the shared read path: immutable from here on
		_, existed := s.cache[ev.Key]
		s.cache[ev.Key] = obj
		typ := Added
		if existed {
			typ = Modified
		}
		s.dispatch(WatchEvent{Type: typ, Kind: ev.Kind, Object: obj})
	case store.EventDelete:
		obj, existed := s.cache[ev.Key]
		if !existed {
			return
		}
		delete(s.cache, ev.Key)
		s.dispatch(WatchEvent{Type: Deleted, Kind: ev.Kind, Object: obj})
	}
}

// handleUndecodable implements the §II-D strategy: resources that cannot be
// deserialized are deleted to prevent failures when retrieving resource
// lists that contain them.
func (s *Server) handleUndecodable(key string, kind spec.Kind) {
	s.audit.countUndecodable()
	if s.opts.DisableUndecodableDeletion {
		return
	}
	s.loop.After(time.Millisecond, func() {
		s.backend.Delete(key)
	})
}

// current reads the authoritative state of key from the backend.
func (s *Server) current(kind spec.Kind, key string) (spec.Object, bool, error) {
	kv, ok := s.backend.Get(key)
	if !ok {
		return nil, false, nil
	}
	obj, err := s.decode(kind, kv.Value)
	if err != nil {
		s.handleUndecodable(key, kind)
		return nil, true, err
	}
	obj.Meta().ResourceVersion = kv.Revision
	return obj, true, nil
}

func (s *Server) decode(kind spec.Kind, data []byte) (spec.Object, error) {
	obj := spec.New(kind)
	if obj == nil {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, kind)
	}
	if err := codec.Unmarshal(data, obj); err != nil {
		return nil, err
	}
	if s.opts.CriticalFieldChecksums && !verifyChecksum(obj) {
		s.audit.countChecksumFailure()
		return nil, fmt.Errorf("%w: critical-field checksum mismatch", codec.ErrCorrupt)
	}
	return obj, nil
}

func (s *Server) dispatch(ev WatchEvent) {
	if s.accessHook != nil {
		s.accessHook(spec.KeyOf(ev.Object))
	}
	// Zero copies per dispatch: the event object is sealed, so all ~13
	// watchers share the cache instance itself. Watchers that need to mutate
	// go through spec.CloneForWrite; at campaign scale the per-event deep
	// copy this replaces was the single largest allocation source.
	for _, w := range s.watchers {
		if w.cancelled || (w.kind != "" && w.kind != ev.Kind) {
			continue
		}
		w := w
		s.loop.After(0, func() {
			if !w.cancelled {
				w.fn(ev)
			}
		})
	}
}

// --- reads -------------------------------------------------------------------

// get serves a read as a sealed reference to the cache instance — the uniform
// sealed-read contract (no per-read defensive copy; writers CloneForWrite).
// This subsumes the former get/getView split: every read is now "view"-cheap,
// and immutability rather than copying provides the isolation.
func (s *Server) get(kind spec.Kind, namespace, name string) (spec.Object, error) {
	key := spec.Key(kind, namespace, name)
	obj, ok := s.cache[key]
	if !ok {
		return nil, ErrNotFound
	}
	if s.accessHook != nil {
		s.accessHook(key)
	}
	return obj, nil
}

// list returns sealed references in key order, under the same contract as
// get. The former per-item clone (one deep copy per cached object per list,
// on every controller scan and collector scrape) is gone.
func (s *Server) list(kind spec.Kind, namespace string) []spec.Object {
	prefix := "/registry/" + string(kind) + "/"
	if namespace != "" {
		prefix += namespace + "/"
	}
	var keys []string
	for key := range s.cache {
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	out := make([]spec.Object, 0, len(keys))
	for _, key := range keys {
		if s.accessHook != nil {
			s.accessHook(key)
		}
		out = append(out, s.cache[key])
	}
	return out
}

func (s *Server) watch(kind spec.Kind, fn func(WatchEvent)) (cancel func()) {
	w := &watcher{kind: kind, fn: fn}
	s.watchers = append(s.watchers, w)
	return func() {
		w.cancelled = true
		for i, cur := range s.watchers {
			if cur == w {
				s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
				break
			}
		}
	}
}

func mergeStatus(dst, src spec.Object) error {
	switch d := dst.(type) {
	case *spec.Pod:
		d.Status = src.(*spec.Pod).Status
	case *spec.ReplicaSet:
		d.Status = src.(*spec.ReplicaSet).Status
	case *spec.Deployment:
		d.Status = src.(*spec.Deployment).Status
	case *spec.DaemonSet:
		d.Status = src.(*spec.DaemonSet).Status
	case *spec.Node:
		d.Status = src.(*spec.Node).Status
	default:
		return fmt.Errorf("%w: kind %s has no status subresource", ErrBadRequest, dst.Kind())
	}
	return nil
}
