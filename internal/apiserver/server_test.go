package apiserver

import (
	"errors"
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

func newTestServer(t *testing.T) (*sim.Loop, *store.Store, *Server) {
	t.Helper()
	loop := sim.NewLoop(1)
	st := store.New(loop, nil)
	srv := New(loop, st, nil)
	return loop, st, srv
}

func testPod(name string) *spec.Pod {
	return &spec.Pod{
		Metadata: spec.ObjectMeta{
			Name: name, Namespace: spec.DefaultNamespace,
			Labels: map[string]string{"app": "web"},
		},
		Spec: spec.PodSpec{
			Containers: []spec.Container{{
				Name: "web", Image: "registry.local/web:1.0",
				RequestsMilliCPU: 100, RequestsMemMB: 64,
				LimitsMilliCPU: 200, LimitsMemMB: 128, Port: 8080,
			}},
		},
	}
}

func TestCreateGetRoundTrip(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatalf("Create: %v", err)
	}
	loop.RunUntil(time.Second)
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	pod := obj.(*spec.Pod)
	if pod.Metadata.UID == "" {
		t.Fatal("create did not assign a UID")
	}
	if pod.Metadata.CreatedMillis == 0 {
		t.Fatal("create did not stamp creation time")
	}
	if pod.Metadata.ResourceVersion == 0 {
		t.Fatal("cached object has no resource version")
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	if err := c.Create(testPod("web-1")); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("duplicate create err = %v, want ErrAlreadyExists", err)
	}
}

func TestUpdateRequiresMatchingResourceVersion(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	pod := spec.CloneForWriteAs(obj.(*spec.Pod))
	stale := pod.Clone().(*spec.Pod)

	pod.Metadata.Labels["extra"] = "x"
	if err := c.Update(pod); err != nil {
		t.Fatalf("Update: %v", err)
	}
	loop.RunUntil(2 * time.Second)

	stale.Metadata.Labels["conflict"] = "y"
	if err := c.Update(stale); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale update err = %v, want ErrConflict", err)
	}
}

func TestUpdateStatusCannotChangeSpec(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("kubelet")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	obj, _ := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	pod := spec.CloneForWriteAs(obj.(*spec.Pod))
	pod.Status.Phase = spec.PodRunning
	pod.Status.PodIP = "10.244.1.5"
	pod.Spec.NodeName = "sneaky-node" // must be discarded by the subresource
	if err := c.UpdateStatus(pod); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(2 * time.Second)
	obj, _ = c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	got := obj.(*spec.Pod)
	if got.Status.Phase != spec.PodRunning || got.Status.PodIP != "10.244.1.5" {
		t.Fatalf("status not updated: %+v", got.Status)
	}
	if got.Spec.NodeName != "" {
		t.Fatal("UpdateStatus leaked a spec change")
	}
}

func TestDeleteAndWatchEvents(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("test")
	var events []WatchEvent
	c.Watch(spec.KindPod, func(ev WatchEvent) { events = append(events, ev) })
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	if err := c.Delete(spec.KindPod, spec.DefaultNamespace, "web-1"); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(2 * time.Second)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Type != Added || events[1].Type != Deleted {
		t.Fatalf("event types = %v, %v", events[0].Type, events[1].Type)
	}
	if _, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete err = %v", err)
	}
}

func TestListSelected(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("test")
	p1 := testPod("web-1")
	p2 := testPod("web-2")
	p2.Metadata.Labels = map[string]string{"app": "db"}
	if err := c.Create(p1); err != nil {
		t.Fatal(err)
	}
	if err := c.Create(p2); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	sel := spec.LabelSelector{MatchLabels: map[string]string{"app": "web"}}
	got := c.ListSelected(spec.KindPod, spec.DefaultNamespace, sel)
	if len(got) != 1 || got[0].Meta().Name != "web-1" {
		t.Fatalf("ListSelected = %d objects", len(got))
	}
}

func TestValidationRejectsBadObjects(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("kbench")
	loop.RunUntil(time.Millisecond)

	noName := testPod("")
	if err := c.Create(noName); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty name err = %v, want ErrInvalid", err)
	}
	badName := testPod("Web_1") // uppercase + underscore
	if err := c.Create(badName); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad name err = %v, want ErrInvalid", err)
	}
	noContainers := testPod("web-1")
	noContainers.Spec.Containers = nil
	if err := c.Create(noContainers); !errors.Is(err, ErrInvalid) {
		t.Errorf("no containers err = %v, want ErrInvalid", err)
	}
	badImage := testPod("web-2")
	badImage.Spec.Containers[0].Image = ""
	if err := c.Create(badImage); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad image err = %v, want ErrInvalid", err)
	}
	negPriority := testPod("web-3")
	negPriority.Spec.Priority = -1
	if err := c.Create(negPriority); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative priority err = %v, want ErrInvalid", err)
	}
	reqOverLimit := testPod("web-4")
	reqOverLimit.Spec.Containers[0].RequestsMilliCPU = 500
	reqOverLimit.Spec.Containers[0].LimitsMilliCPU = 100
	if err := c.Create(reqOverLimit); !errors.Is(err, ErrInvalid) {
		t.Errorf("request>limit err = %v, want ErrInvalid", err)
	}
}

func TestValidationSelectorTemplateMismatch(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("kbench")
	loop.RunUntil(time.Millisecond)
	rs := &spec.ReplicaSet{
		Metadata: spec.ObjectMeta{Name: "web-rs", Namespace: spec.DefaultNamespace},
		Spec: spec.ReplicaSetSpec{
			Replicas: 2,
			Selector: spec.LabelSelector{MatchLabels: map[string]string{"app": "web"}},
			Template: spec.PodTemplate{
				Labels: map[string]string{"app": "OTHER"},
				Spec:   testPod("x").Spec,
			},
		},
	}
	if err := c.Create(rs); !errors.Is(err, ErrInvalid) {
		t.Fatalf("selector/template mismatch err = %v, want ErrInvalid", err)
	}
}

func TestValidationNamespaceMatchesRequest(t *testing.T) {
	// A corrupted namespace in the body is detected because it no longer
	// matches the request URL — but only on the component→apiserver channel.
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("kcm")
	loop.RunUntil(time.Millisecond)
	srv.SetRequestHook(func(m *Message) Action {
		if m.Kind == spec.KindPod {
			obj := spec.New(m.Kind)
			if err := codecUnmarshal(m.Data, obj); err != nil {
				return Pass
			}
			obj.Meta().Namespace = "other-ns"
			m.Data = mustMarshal(obj)
			m.Tampered = true
		}
		return Pass
	})
	err := c.Create(testPod("web-1"))
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("tampered namespace err = %v, want ErrInvalid", err)
	}
	if srv.Audit().TamperedErrored() != 1 {
		t.Fatal("tampered error not audited")
	}
}

func TestStoreWriteHookBypassesValidation(t *testing.T) {
	// The same corruption on the apiserver→store channel is NOT detected:
	// the corrupted object becomes the cluster state.
	loop, st, srv := newTestServer(t)
	c := srv.ClientFor("kcm")
	srv.SetStoreWriteHook(func(m *Message) Action {
		if m.Kind == spec.KindPod && m.Verb == VerbCreate {
			obj := spec.New(m.Kind)
			if err := codecUnmarshal(m.Data, obj); err != nil {
				return Pass
			}
			obj.Meta().Labels["app"] = "corrupted"
			m.Data = mustMarshal(obj)
			m.Tampered = true
		}
		return Pass
	})
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatalf("Create with store-channel tampering err = %v, want nil", err)
	}
	loop.RunUntil(time.Second)
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Meta().Labels["app"] != "corrupted" {
		t.Fatal("corrupted value did not reach the cluster state")
	}
	kv, ok := st.Get(spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1"))
	if !ok || len(kv.Value) == 0 {
		t.Fatal("store missing the object")
	}
}

func TestDroppedStoreWriteReportsSuccess(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("kcm")
	srv.SetStoreWriteHook(func(m *Message) Action { return Drop })
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatalf("dropped create returned %v, want nil (silent drop)", err)
	}
	loop.RunUntil(time.Second)
	if _, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("dropped write still materialized")
	}
	if srv.Audit().DroppedWrites() != 1 {
		t.Fatal("drop not counted")
	}
}

func TestUndecodableResourceIsDeleted(t *testing.T) {
	loop, st, srv := newTestServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	// Corrupt the stored bytes so they no longer decode, then write them
	// back through the store so the watch path sees them.
	kv, _ := st.Get(key)
	if _, err := st.Put(key, spec.KindPod, []byte{0x80}); err != nil {
		t.Fatal(err)
	}
	_ = kv
	loop.RunUntil(2 * time.Second)
	if _, ok := st.Get(key); ok {
		t.Fatal("undecodable resource was not deleted (§II-D strategy)")
	}
	if srv.Audit().Undecodable() == 0 {
		t.Fatal("undecodable event not counted")
	}
}

func TestRestartRebuildsCacheFromStore(t *testing.T) {
	loop, st, srv := newTestServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	// At-rest corruption: cache still serves the old value.
	st.CorruptAtRest(key, func(b []byte) []byte {
		obj := spec.New(spec.KindPod)
		if err := codecUnmarshal(b, obj); err != nil {
			return b
		}
		obj.Meta().Labels["app"] = "at-rest"
		return mustMarshal(obj)
	})
	obj, _ := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if obj.Meta().Labels["app"] != "web" {
		t.Fatal("at-rest corruption visible before restart (cache should mask it)")
	}
	srv.Restart()
	loop.RunUntil(2 * time.Second)
	obj, _ = c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if obj.Meta().Labels["app"] != "at-rest" {
		t.Fatal("restart did not pick up at-rest corruption")
	}
}

func TestAuditCountsUserErrors(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("kbench")
	loop.RunUntil(time.Millisecond)
	if err := c.Create(testPod("")); err == nil {
		t.Fatal("expected validation error")
	}
	if got := srv.Audit().ErrorsBy("kbench"); got != 1 {
		t.Fatalf("ErrorsBy(kbench) = %d, want 1", got)
	}
	if err := c.Create(testPod("ok-pod")); err != nil {
		t.Fatal(err)
	}
	if got := srv.Audit().OKBy("kbench"); got != 1 {
		t.Fatalf("OKBy(kbench) = %d, want 1", got)
	}
	entries := srv.Audit().ErrorEntriesBy("kbench")
	if len(entries) != 1 || entries[0].Kind != spec.KindPod {
		t.Fatalf("ErrorEntriesBy = %+v", entries)
	}
}

func TestAccessHookSeesReads(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("test")
	if err := c.Create(testPod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	accessed := make(map[string]int)
	srv.SetAccessHook(func(key string) { accessed[key]++ })
	if _, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); err != nil {
		t.Fatal(err)
	}
	c.List(spec.KindPod, spec.DefaultNamespace)
	key := spec.Key(spec.KindPod, spec.DefaultNamespace, "web-1")
	if accessed[key] != 2 {
		t.Fatalf("access hook fired %d times, want 2", accessed[key])
	}
}

func TestClusterScopedRejectsNamespace(t *testing.T) {
	loop, _, srv := newTestServer(t)
	c := srv.ClientFor("test")
	loop.RunUntil(time.Millisecond)
	n := &spec.Node{Metadata: spec.ObjectMeta{Name: "node-1", Namespace: "default"}}
	if err := c.Create(n); !errors.Is(err, ErrInvalid) {
		t.Fatalf("namespaced node err = %v, want ErrInvalid", err)
	}
}

func TestValidNameCharsHelper(t *testing.T) {
	if !validNameChars("web-1") {
		t.Fatal("web-1 should be valid")
	}
	if validNameChars("web_1") {
		t.Fatal("web_1 should be invalid")
	}
}
