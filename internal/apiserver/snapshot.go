package apiserver

import "github.com/mutiny-sim/mutiny/internal/spec"

// This file implements server snapshot/restore for the bootstrapped-cluster
// fork path. The server's durable state outside the store is tiny: the
// admission counters (UIDs and service cluster IPs must keep advancing in a
// fork, or new objects would collide with bootstrap-era ones) and the audit
// trail (a fork must account bootstrap-time requests exactly like a full
// replay would). The watch cache is not copied — it is rebuilt from the
// restored backend, the same re-list a real apiserver performs on restart.

// Snapshot captures the server state that must survive a fork.
type Snapshot struct {
	UIDCounter int64
	IPCounter  int64
	Audit      AuditSnapshot
	// Admission carries the (cluster-shared) admission chain's counters;
	// Present is false when no chain is installed. Restoring it is a full
	// overwrite, so N replicas restoring the same shared chain is idempotent
	// — the audit trail's contract.
	Admission AdmissionSnapshot
	// Decoded carries the revision-tagged decoded-object cache. Its entries
	// are sealed (immutable) objects whose ResourceVersion equals the mod
	// revision of the store bytes they decode to, so sharing them across
	// every fork is exactly as safe as sharing the store's byte arrays —
	// and it lets a fork's watch-cache rebuild skip nearly every
	// codec.Unmarshal. The map itself is copied per restore; the objects
	// are shared.
	Decoded map[string]spec.Object
}

// AuditSnapshot is a deep copy of the audit trail's counters and entries.
type AuditSnapshot struct {
	Entries          []AuditEntry
	OKByIdentity     map[string]int
	ErrByIdentity    map[string]int
	Undecodable      int
	DroppedWrites    int
	TamperedOK       int
	TamperedErrored  int
	ChecksumFailures int
}

// Snapshot captures the server's fork-relevant state. The result is
// immutable data, safe to restore into many forks concurrently.
func (s *Server) Snapshot() Snapshot {
	decoded := make(map[string]spec.Object, len(s.decoded))
	for k, v := range s.decoded {
		decoded[k] = v
	}
	snap := Snapshot{
		UIDCounter: s.uidCounter,
		IPCounter:  s.ipCounter,
		Audit:      s.audit.snapshot(),
		Decoded:    decoded,
	}
	if s.admission != nil {
		snap.Admission = s.admission.snapshot()
	}
	return snap
}

// Clone returns a snapshot with private map and slice structure (the decoded
// cache map, the audit entries and counters). The decoded *objects* stay
// shared: they are sealed, immutable, and pointer-shaped, so sharing them
// across workers costs no coherence traffic — only the map that indexes them
// is worker-local after a clone.
func (s Snapshot) Clone() Snapshot {
	decoded := make(map[string]spec.Object, len(s.Decoded))
	for k, v := range s.Decoded {
		decoded[k] = v
	}
	return Snapshot{
		UIDCounter: s.UIDCounter,
		IPCounter:  s.IPCounter,
		Audit:      s.Audit.clone(),
		Admission:  s.Admission, // plain values — a copy is private already
		Decoded:    decoded,
	}
}

func (a AuditSnapshot) clone() AuditSnapshot {
	a.Entries = append([]AuditEntry(nil), a.Entries...)
	a.OKByIdentity = copyCounts(a.OKByIdentity)
	a.ErrByIdentity = copyCounts(a.ErrByIdentity)
	return a
}

// RestoreSnapshot installs snapshot state into a freshly built server whose
// backend has already been restored, then silently rebuilds the watch cache
// from it. No events are dispatched: components prime their own views when
// they start, exactly as they do against a live control plane they
// reconnect to (netsim's Prime, the scheduler's run-time listing, the
// controllers' resync).
func (s *Server) RestoreSnapshot(snap Snapshot) {
	s.uidCounter = snap.UIDCounter
	s.ipCounter = snap.IPCounter
	s.audit.restore(snap.Audit)
	if s.admission != nil && snap.Admission.Present {
		s.admission.restore(snap.Admission)
	}
	s.decoded = make(map[string]spec.Object, len(snap.Decoded))
	for k, v := range snap.Decoded {
		s.decoded[k] = v
	}
	s.rebuildCache(false)
}

// SkewUIDCounter advances the UID counter by n. Forked clusters apply a
// seed-derived skew so objects created after the fork get fork-specific
// UIDs, mirroring the run-to-run UID variability of full replays (bootstrap
// length differs slightly per seed, so replayed windows never start from
// the same counter; everything keyed on UIDs — pod service-time offsets,
// eviction order — would otherwise be identical across all forks).
func (s *Server) SkewUIDCounter(n int64) {
	if n > 0 {
		s.uidCounter += n
	}
}

func (a *Audit) snapshot() AuditSnapshot {
	return AuditSnapshot{
		Entries:          append([]AuditEntry(nil), a.Entries...),
		OKByIdentity:     copyCounts(a.okByIdentity),
		ErrByIdentity:    copyCounts(a.errByIdentity),
		Undecodable:      a.undecodable,
		DroppedWrites:    a.droppedWrites,
		TamperedOK:       a.tamperedOK,
		TamperedErrored:  a.tamperedErrored,
		ChecksumFailures: a.checksumFailures,
	}
}

func (a *Audit) restore(snap AuditSnapshot) {
	a.Entries = append([]AuditEntry(nil), snap.Entries...)
	a.okByIdentity = copyCounts(snap.OKByIdentity)
	a.errByIdentity = copyCounts(snap.ErrByIdentity)
	a.undecodable = snap.Undecodable
	a.droppedWrites = snap.DroppedWrites
	a.tamperedOK = snap.TamperedOK
	a.tamperedErrored = snap.TamperedErrored
	a.checksumFailures = snap.ChecksumFailures
}

func copyCounts(in map[string]int) map[string]int {
	out := make(map[string]int, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
