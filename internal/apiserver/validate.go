package apiserver

import (
	"fmt"
	"net"
	"strings"

	"github.com/mutiny-sim/mutiny/internal/spec"
)

// The validation layer mirrors the checks the paper found the real API
// server performing (§V-C4): "general validations, e.g., regex matching or
// border-case testing", detection of a namespace that does not match the
// request URL, and detection of label selectors that do not match the
// template labels of the same resource instance (the condition that triggers
// the infinite Pod spawn). Valid-but-wrong values pass, which is exactly the
// weakness the propagation experiments measure.
//
// The three character-class matchers below are hand-rolled equivalents of
// the regexes they replace (validation runs on every write, and the
// backtracking matcher was measurable at campaign scale):
//
//	dns1123:  ^[a-z0-9]([-a-z0-9.]*[a-z0-9])?$
//	label:    ^(([A-Za-z0-9][-A-Za-z0-9_./]*)?[A-Za-z0-9])?$
//	image:    ^[a-z0-9]([-a-z0-9._/:]*[a-zA-Z0-9])?$
//
// TestValidationMatchersMatchRegexes pins the equivalence over the full
// single-byte neighborhood the bit-flip campaign explores.

func lowerAlnum(c byte) bool { return c >= 'a' && c <= 'z' || c >= '0' && c <= '9' }

func alnum(c byte) bool { return lowerAlnum(c) || c >= 'A' && c <= 'Z' }

// matchClass reports whether s matches: first(s[0]) then inner* then
// last(s[n-1]), with the single-character case requiring first AND last.
func matchClass(s string, first, inner, last func(byte) bool) bool {
	n := len(s)
	if n == 0 {
		return false
	}
	if !first(s[0]) || !last(s[n-1]) {
		return false
	}
	for i := 1; i < n-1; i++ {
		if !inner(s[i]) {
			return false
		}
	}
	return true
}

func matchDNS1123(s string) bool {
	return matchClass(s, lowerAlnum, func(c byte) bool {
		return lowerAlnum(c) || c == '-' || c == '.'
	}, lowerAlnum)
}

func matchLabelValue(s string) bool {
	if s == "" {
		return true
	}
	return matchClass(s, alnum, func(c byte) bool {
		return alnum(c) || c == '-' || c == '_' || c == '.' || c == '/'
	}, alnum)
}

func matchImageRef(s string) bool {
	return matchClass(s, lowerAlnum, func(c byte) bool {
		return lowerAlnum(c) || c == '-' || c == '.' || c == '_' || c == '/' || c == ':'
	}, alnum)
}

func (s *Server) validate(verb Verb, msg *Message, obj spec.Object, cur spec.Object) error {
	m := obj.Meta()
	// Identity must match the request URL: a corrupted name or namespace in
	// the body is detectable here and only here.
	if m.Name != msg.Name {
		return fmt.Errorf("%w: body name %q does not match request name %q", ErrInvalid, m.Name, msg.Name)
	}
	if m.Namespace != msg.Namespace {
		return fmt.Errorf("%w: body namespace %q does not match request namespace %q", ErrInvalid, m.Namespace, msg.Namespace)
	}
	if err := validateName(m.Name); err != nil {
		return err
	}
	if clusterScoped(obj.Kind()) {
		if m.Namespace != "" {
			return fmt.Errorf("%w: %s is cluster-scoped", ErrInvalid, obj.Kind())
		}
	} else {
		if err := validateName(m.Namespace); err != nil {
			return err
		}
	}
	for k, v := range m.Labels {
		if !matchLabelValue(v) || k == "" {
			return fmt.Errorf("%w: invalid label %q=%q", ErrInvalid, k, v)
		}
	}
	if cur != nil && m.UID != "" && m.UID != cur.Meta().UID {
		return fmt.Errorf("%w: uid is immutable", ErrInvalid)
	}

	switch o := obj.(type) {
	case *spec.Pod:
		return s.validatePod(o, cur)
	case *spec.ReplicaSet:
		return validateWorkload(o.Spec.Replicas, o.Spec.Selector, o.Spec.Template, cur)
	case *spec.Deployment:
		if o.Spec.MaxUnavailable < 0 || o.Spec.MaxSurge < 0 {
			return fmt.Errorf("%w: negative rolling-update bounds", ErrInvalid)
		}
		return validateWorkload(o.Spec.Replicas, o.Spec.Selector, o.Spec.Template, cur)
	case *spec.DaemonSet:
		return validateWorkload(0, o.Spec.Selector, o.Spec.Template, cur)
	case *spec.Service:
		return validateService(o)
	case *spec.Node:
		return validateNode(o)
	case *spec.Endpoints:
		return validateEndpoints(o)
	}
	return nil
}

func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrInvalid)
	}
	if len(name) > 253 || !matchDNS1123(name) {
		return fmt.Errorf("%w: invalid DNS-1123 name %q", ErrInvalid, name)
	}
	return nil
}

func clusterScoped(kind spec.Kind) bool {
	return kind == spec.KindNode || kind == spec.KindNamespace
}

func (s *Server) validatePod(p *spec.Pod, cur spec.Object) error {
	if len(p.Spec.Containers) == 0 {
		return fmt.Errorf("%w: pod has no containers", ErrInvalid)
	}
	for i := range p.Spec.Containers {
		c := &p.Spec.Containers[i]
		if c.Name == "" {
			return fmt.Errorf("%w: container %d has no name", ErrInvalid, i)
		}
		if !matchImageRef(c.Image) {
			return fmt.Errorf("%w: invalid image reference %q", ErrInvalid, c.Image)
		}
		if err := validateResources(c); err != nil {
			return err
		}
		if c.Port != 0 && (c.Port < spec.MinPort || c.Port > spec.MaxPort) {
			return fmt.Errorf("%w: container port %d out of range", ErrInvalid, c.Port)
		}
	}
	if p.Spec.Priority < 0 {
		return fmt.Errorf("%w: negative priority", ErrInvalid)
	}
	if cur != nil {
		curPod, ok := cur.(*spec.Pod)
		if ok && curPod.Spec.NodeName != "" && p.Spec.NodeName != curPod.Spec.NodeName {
			return fmt.Errorf("%w: nodeName is immutable once bound", ErrInvalid)
		}
	}
	return nil
}

func validateResources(c *spec.Container) error {
	if c.RequestsMilliCPU < 0 || c.RequestsMemMB < 0 || c.LimitsMilliCPU < 0 || c.LimitsMemMB < 0 {
		return fmt.Errorf("%w: negative resource quantity", ErrInvalid)
	}
	if c.LimitsMilliCPU > 0 && c.RequestsMilliCPU > c.LimitsMilliCPU {
		return fmt.Errorf("%w: cpu request exceeds limit", ErrInvalid)
	}
	if c.LimitsMemMB > 0 && c.RequestsMemMB > c.LimitsMemMB {
		return fmt.Errorf("%w: memory request exceeds limit", ErrInvalid)
	}
	return nil
}

func validateWorkload(replicas int64, sel spec.LabelSelector, tpl spec.PodTemplate, cur spec.Object) error {
	if replicas < 0 {
		return fmt.Errorf("%w: negative replicas", ErrInvalid)
	}
	if sel.Empty() {
		return fmt.Errorf("%w: empty selector", ErrInvalid)
	}
	// The selector must select the pods the template produces; otherwise the
	// controller would spawn pods it can never count (infinite Pod spawn).
	if !sel.Matches(tpl.Labels) {
		return fmt.Errorf("%w: selector does not match template labels", ErrInvalid)
	}
	// Selectors are immutable after creation (apps/v1 semantics).
	if cur != nil {
		if !selectorsEqual(sel, currentSelector(cur)) {
			return fmt.Errorf("%w: selector is immutable", ErrInvalid)
		}
	}
	if len(tpl.Spec.Containers) == 0 {
		return fmt.Errorf("%w: template has no containers", ErrInvalid)
	}
	for i := range tpl.Spec.Containers {
		c := &tpl.Spec.Containers[i]
		if !matchImageRef(c.Image) {
			return fmt.Errorf("%w: invalid image reference %q", ErrInvalid, c.Image)
		}
		if err := validateResources(c); err != nil {
			return err
		}
	}
	return nil
}

func currentSelector(cur spec.Object) spec.LabelSelector {
	switch o := cur.(type) {
	case *spec.ReplicaSet:
		return o.Spec.Selector
	case *spec.Deployment:
		return o.Spec.Selector
	case *spec.DaemonSet:
		return o.Spec.Selector
	default:
		return spec.LabelSelector{}
	}
}

func selectorsEqual(a, b spec.LabelSelector) bool {
	if len(a.MatchLabels) != len(b.MatchLabels) {
		return false
	}
	for k, v := range a.MatchLabels {
		if b.MatchLabels[k] != v {
			return false
		}
	}
	return true
}

func validateService(svc *spec.Service) error {
	if len(svc.Spec.Ports) == 0 {
		return fmt.Errorf("%w: service has no ports", ErrInvalid)
	}
	for _, p := range svc.Spec.Ports {
		if p.Port < spec.MinPort || p.Port > spec.MaxPort {
			return fmt.Errorf("%w: service port %d out of range", ErrInvalid, p.Port)
		}
		if p.TargetPort < spec.MinPort || p.TargetPort > spec.MaxPort {
			return fmt.Errorf("%w: target port %d out of range", ErrInvalid, p.TargetPort)
		}
		switch p.Protocol {
		case "", "TCP", "UDP":
		default:
			return fmt.Errorf("%w: unsupported protocol %q", ErrInvalid, p.Protocol)
		}
	}
	if svc.Spec.ClusterIP != "" && net.ParseIP(svc.Spec.ClusterIP) == nil {
		return fmt.Errorf("%w: invalid clusterIP %q", ErrInvalid, svc.Spec.ClusterIP)
	}
	return nil
}

func validateNode(n *spec.Node) error {
	for _, t := range n.Spec.Taints {
		switch t.Effect {
		case spec.TaintNoSchedule, spec.TaintNoExecute:
		default:
			return fmt.Errorf("%w: unsupported taint effect %q", ErrInvalid, t.Effect)
		}
	}
	if n.Spec.PodCIDR != "" {
		if _, _, err := net.ParseCIDR(n.Spec.PodCIDR); err != nil {
			return fmt.Errorf("%w: invalid podCIDR %q", ErrInvalid, n.Spec.PodCIDR)
		}
	}
	if n.Status.CapacityMilliCPU < 0 || n.Status.CapacityMemMB < 0 {
		return fmt.Errorf("%w: negative node capacity", ErrInvalid)
	}
	return nil
}

func validateEndpoints(e *spec.Endpoints) error {
	for _, sub := range e.Subsets {
		for _, a := range sub.Addresses {
			if a.IP != "" && net.ParseIP(a.IP) == nil {
				return fmt.Errorf("%w: invalid endpoint IP %q", ErrInvalid, a.IP)
			}
		}
		for _, p := range sub.Ports {
			if p < spec.MinPort || p > spec.MaxPort {
				return fmt.Errorf("%w: endpoint port %d out of range", ErrInvalid, p)
			}
		}
	}
	return nil
}

// validNameChars reports whether every byte of s could appear in a DNS-1123
// name (used by tests exploring the bit-flip space).
func validNameChars(s string) bool {
	return matchDNS1123(strings.ToLower(s))
}
