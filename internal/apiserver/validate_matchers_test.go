package apiserver

import (
	"regexp"
	"testing"
)

// The hand-rolled character-class matchers replaced backtracking regexes on
// the write hot path. This test pins exact observational equivalence over
// the inputs the bit-flip campaign explores: well-formed identifiers, their
// single-byte mutations, and assorted border cases.
func TestValidationMatchersMatchRegexes(t *testing.T) {
	dns1123Re := regexp.MustCompile(`^[a-z0-9]([-a-z0-9.]*[a-z0-9])?$`)
	labelRe := regexp.MustCompile(`^(([A-Za-z0-9][-A-Za-z0-9_./]*)?[A-Za-z0-9])?$`)
	imageRe := regexp.MustCompile(`^[a-z0-9]([-a-z0-9._/:]*[a-zA-Z0-9])?$`)

	seeds := []string{
		"", "a", "A", "-", ".", "/", ":", "_", "0",
		"webapp-0", "webapp-0-5f6b7c8d", "kube-system", "default",
		"registry.local/webapp:1.0", "node-role.kubernetes.io/control-plane",
		"a-b.c", "a..b", "-a", "a-", ".a", "a.", "aB", "Ba", "a_b", "a/b",
		"uid-42", "10.96.0.1", "worker-3",
	}
	var cases []string
	cases = append(cases, seeds...)
	// Every single-byte substitution and bit flip of each seed — the
	// neighborhood the BitFlip fault model produces.
	for _, s := range seeds {
		for i := 0; i < len(s); i++ {
			for _, c := range []byte{'-', '.', '/', ':', '_', 'a', 'Z', '9', 0x00, 0x7f, ' '} {
				b := []byte(s)
				b[i] = c
				cases = append(cases, string(b))
			}
			b := []byte(s)
			b[i] ^= 1
			cases = append(cases, string(b))
		}
	}
	for _, s := range cases {
		if got, want := matchDNS1123(s), dns1123Re.MatchString(s); got != want {
			t.Errorf("matchDNS1123(%q) = %v, regex says %v", s, got, want)
		}
		if got, want := matchLabelValue(s), labelRe.MatchString(s); got != want {
			t.Errorf("matchLabelValue(%q) = %v, regex says %v", s, got, want)
		}
		if got, want := matchImageRef(s), imageRe.MatchString(s); got != want {
			t.Errorf("matchImageRef(%q) = %v, regex says %v", s, got, want)
		}
	}
}
