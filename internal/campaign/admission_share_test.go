package campaign

import (
	"testing"

	"github.com/mutiny-sim/mutiny/internal/workload"
)

// admissionOutageTolerance bounds how far one experiment's measured
// write-availability outage may drift between the replay and shared-bootstrap
// regimes: the collector samples degradation every 3 s, so one-and-a-half
// sample periods absorbs any alignment skew between the regimes' windows
// without hiding a genuinely different outage.
const admissionOutageTolerance = 4500.0

// The admission table must be regime-independent: parallel forked workers
// with an armed webhook fault produce the same per-(fault axis, failure
// policy) statistics as sequential replay. The fault timers, the canary
// cadence, and the degradation sampling are all fixed offsets from the
// measurement window, so enforcement-integrity counts (violations admitted)
// must match exactly, spec by spec, and outage windows must agree to within
// sampling tolerance.
func TestAdmissionShareBootstrapEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the admission fault matrix under two regimes")
	}
	specs := GenerateAdmission(workload.Policy, 3)
	if len(specs) == 0 {
		t.Fatal("GenerateAdmission produced no specs; the test is vacuous")
	}

	newRunner := func(share bool) *Runner {
		r := NewRunner()
		r.GoldenRuns = 5
		r.ShareBootstrap = share
		r.ClusterConfig.AdmissionHooks = 3
		return r
	}

	// Sequential replay: every experiment replays bootstrap on one goroutine.
	replayRunner := newRunner(false)
	replay := make([]*Result, len(specs))
	for i, s := range specs {
		replay[i] = replayRunner.Run(s)
	}

	// Shared bootstrap across 8 forked workers: each worker forks its
	// experiment cluster from the cached per-workload snapshot.
	shared := runAll(specs, 8, newRunner(true), (*Worker).Run, nil)

	aggReplay, aggShared := NewAggregate(), NewAggregate()
	for i := range specs {
		ra, rb := replay[i], shared[i]
		desc := specs[i].Injection.Label()
		for _, res := range []*Result{ra, rb} {
			if !res.Report.Fired || !res.Report.Healed {
				t.Fatalf("spec %d (%s): fault did not fire+heal: %+v", i, desc, res.Report)
			}
		}
		if ra.PolicyViolations != rb.PolicyViolations {
			t.Errorf("spec %d (%s): violations diverged: replay=%d shared=%d",
				i, desc, ra.PolicyViolations, rb.PolicyViolations)
		}
		if d := ra.AdmissionOutageMillis - rb.AdmissionOutageMillis; d > admissionOutageTolerance || d < -admissionOutageTolerance {
			t.Errorf("spec %d (%s): outage diverged: replay=%.0fms shared=%.0fms",
				i, desc, ra.AdmissionOutageMillis, rb.AdmissionOutageMillis)
		}
		aggReplay.Add(ra)
		aggShared.Add(rb)
	}

	// Table granularity: both regimes populate the same (fault, policy) cells
	// with the same experiment counts.
	for _, fault := range AdmissionFaults() {
		for _, policy := range AdmissionPolicies {
			k := AdmissionKey{Fault: fault, Policy: policy}
			if na, nb := len(aggReplay.OutageByAdmission[k]), len(aggShared.OutageByAdmission[k]); na != nb || na == 0 {
				t.Errorf("cell %s/%s: experiment counts diverged or empty: replay=%d shared=%d",
					fault, policy, na, nb)
			}
		}
	}
}
