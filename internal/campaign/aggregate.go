package campaign

import (
	"sort"

	"github.com/mutiny-sim/mutiny/internal/classify"
	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// InjGroup is the injection-type grouping used by Tables IV and V: field and
// serialization bit flips together, data-type sets, and message drops.
type InjGroup string

// Injection groups.
const (
	GroupBitFlip      InjGroup = "Bit-flip"
	GroupSet          InjGroup = "Value set"
	GroupDrop         InjGroup = "Drop"
	GroupControlPlane InjGroup = "Control plane"
	GroupAdmission    InjGroup = "Admission"
	GroupTopology     InjGroup = "Topology"
)

// InjGroups lists the groups in table order.
func InjGroups() []InjGroup {
	return []InjGroup{GroupBitFlip, GroupSet, GroupDrop, GroupControlPlane, GroupAdmission, GroupTopology}
}

// GroupOf buckets a fault type.
func GroupOf(t inject.FaultType) InjGroup {
	switch {
	case t.IsControlPlane():
		return GroupControlPlane
	case t.IsAdmission():
		return GroupAdmission
	case t.IsTopology():
		return GroupTopology
	case t == inject.SetValue:
		return GroupSet
	case t == inject.DropMessage:
		return GroupDrop
	default: // BitFlip and FlipProtoByte are both single-bit corruptions
		return GroupBitFlip
	}
}

// ControlPlaneFaults lists the HA fault axes in table order.
func ControlPlaneFaults() []inject.FaultType {
	return []inject.FaultType{
		inject.FaultAPIServerCrash, inject.FaultMasterPartition, inject.FaultStoreLoss,
	}
}

// AdmissionFaults lists the admission fault axes in table order.
func AdmissionFaults() []inject.FaultType {
	return []inject.FaultType{
		inject.FaultWebhookDown, inject.FaultWebhookLatency,
		inject.FaultWebhookSelector, inject.FaultWebhookPolicy,
	}
}

// AdmissionKey addresses one admission-table row: a webhook fault axis under
// one failure-policy regime.
type AdmissionKey struct {
	Fault  inject.FaultType
	Policy string
}

// TopologyFaults lists the topology fault axes in table order.
func TopologyFaults() []inject.FaultType {
	return []inject.FaultType{
		inject.FaultEdgeLinkFlap, inject.FaultZonePartition, inject.FaultNodeKill,
	}
}

// TopologyKey addresses one topology-table row: a fault axis against one
// zone. Zone comes from Injection.Value (stamped by GenerateTopology), so
// shard merging reconstructs the rows without a cluster handle.
type TopologyKey struct {
	Fault inject.FaultType
	Zone  string
}

// Aggregate accumulates experiment results into the paper's tables.
type Aggregate struct {
	Results []*Result

	// Perf / OF counts by workload and injection group (Table IV).
	OFCounts map[workload.Kind]map[InjGroup]map[classify.OF]int
	// CF counts by workload and injection group (Table V).
	CFCounts map[workload.Kind]map[InjGroup]map[classify.CF]int
	// OF → CF propagation by workload (Table III).
	OFToCF map[workload.Kind]map[classify.OF]map[classify.CF]int
	// Client z-scores grouped by OF and workload (Figure 6).
	ZByOF map[workload.Kind]map[classify.OF][]float64
	// User-error counts by OF and workload (Figure 7).
	UserErrByOF map[workload.Kind]map[classify.OF]int
	// Activation statistics (F1 discussion).
	Fired, Activated int
	// FailoverByFault / StaleByFault collect the HA windows (simulated ms
	// per experiment) for each control-plane fault axis: how long the
	// control plane was unresponsive, and how long some live store replica
	// served a stale revision.
	FailoverByFault map[inject.FaultType][]float64
	StaleByFault    map[inject.FaultType][]float64
	// OutageByAdmission / ViolationsByAdmission collect the admission trade-
	// off per (fault axis, failure policy): the write-availability outage
	// window of each experiment (simulated ms) and its count of policy-
	// violating objects admitted.
	OutageByAdmission     map[AdmissionKey][]float64
	ViolationsByAdmission map[AdmissionKey][]int
	// DisruptionByTopology / RecoveryByTopology collect the topology-campaign
	// windows per (fault axis, zone): milliseconds of cut links per
	// experiment, and milliseconds of post-heal reconvergence tail.
	DisruptionByTopology map[TopologyKey][]float64
	RecoveryByTopology   map[TopologyKey][]float64
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		OFCounts:        make(map[workload.Kind]map[InjGroup]map[classify.OF]int),
		CFCounts:        make(map[workload.Kind]map[InjGroup]map[classify.CF]int),
		OFToCF:          make(map[workload.Kind]map[classify.OF]map[classify.CF]int),
		ZByOF:           make(map[workload.Kind]map[classify.OF][]float64),
		UserErrByOF:     make(map[workload.Kind]map[classify.OF]int),
		FailoverByFault: make(map[inject.FaultType][]float64),
		StaleByFault:    make(map[inject.FaultType][]float64),

		OutageByAdmission:     make(map[AdmissionKey][]float64),
		ViolationsByAdmission: make(map[AdmissionKey][]int),

		DisruptionByTopology: make(map[TopologyKey][]float64),
		RecoveryByTopology:   make(map[TopologyKey][]float64),
	}
}

// Add folds one result in.
func (a *Aggregate) Add(res *Result) {
	a.Results = append(a.Results, res)
	wl := res.Spec.Workload
	group := GroupBitFlip
	if res.Spec.Injection != nil {
		group = GroupOf(res.Spec.Injection.Type)
	}
	if a.OFCounts[wl] == nil {
		a.OFCounts[wl] = make(map[InjGroup]map[classify.OF]int)
		a.CFCounts[wl] = make(map[InjGroup]map[classify.CF]int)
		a.OFToCF[wl] = make(map[classify.OF]map[classify.CF]int)
		a.ZByOF[wl] = make(map[classify.OF][]float64)
		a.UserErrByOF[wl] = make(map[classify.OF]int)
	}
	if a.OFCounts[wl][group] == nil {
		a.OFCounts[wl][group] = make(map[classify.OF]int)
		a.CFCounts[wl][group] = make(map[classify.CF]int)
	}
	a.OFCounts[wl][group][res.OF]++
	a.CFCounts[wl][group][res.CF]++
	if a.OFToCF[wl][res.OF] == nil {
		a.OFToCF[wl][res.OF] = make(map[classify.CF]int)
	}
	a.OFToCF[wl][res.OF][res.CF]++
	a.ZByOF[wl][res.OF] = append(a.ZByOF[wl][res.OF], res.Z)
	if res.UserErrors > 0 {
		a.UserErrByOF[wl][res.OF]++
	}
	if res.Report.Fired {
		a.Fired++
		if res.Report.Activated {
			a.Activated++
		}
	}
	if res.Spec.Injection != nil && res.Spec.Injection.Type.IsControlPlane() {
		t := res.Spec.Injection.Type
		a.FailoverByFault[t] = append(a.FailoverByFault[t], res.FailoverMillis)
		a.StaleByFault[t] = append(a.StaleByFault[t], res.StaleReadMillis)
	}
	if res.Spec.Injection != nil && res.Spec.Injection.Type.IsAdmission() {
		k := AdmissionKey{Fault: res.Spec.Injection.Type, Policy: res.Spec.Injection.Policy}
		a.OutageByAdmission[k] = append(a.OutageByAdmission[k], res.AdmissionOutageMillis)
		a.ViolationsByAdmission[k] = append(a.ViolationsByAdmission[k], res.PolicyViolations)
	}
	if res.Spec.Injection != nil && res.Spec.Injection.Type.IsTopology() {
		zone, _ := res.Spec.Injection.Value.(string)
		k := TopologyKey{Fault: res.Spec.Injection.Type, Zone: zone}
		a.DisruptionByTopology[k] = append(a.DisruptionByTopology[k], res.TopologyDisruptionMillis)
		a.RecoveryByTopology[k] = append(a.RecoveryByTopology[k], res.TopologyRecoveryMillis)
	}
}

// Total returns the number of aggregated experiments.
func (a *Aggregate) Total() int { return len(a.Results) }

// TotalOF counts results in an OF category across workloads and groups.
func (a *Aggregate) TotalOF(of classify.OF) int {
	n := 0
	for _, res := range a.Results {
		if res.OF == of {
			n++
		}
	}
	return n
}

// TotalCF counts results in a CF category.
func (a *Aggregate) TotalCF(cf classify.CF) int {
	n := 0
	for _, res := range a.Results {
		if res.CF == cf {
			n++
		}
	}
	return n
}

// ActivationRate returns the fraction of fired injections whose instance
// was later requested (the paper reports 82%).
func (a *Aggregate) ActivationRate() float64 {
	if a.Fired == 0 {
		return 0
	}
	return float64(a.Activated) / float64(a.Fired)
}

// CriticalFieldShare computes the F2 statistic: among experiments that
// ended in a critical failure (Sta, Out, or client SU), the share whose
// injected field belongs to each category.
func (a *Aggregate) CriticalFieldShare() (byCategory map[FieldCategory]int, total int) {
	byCategory = make(map[FieldCategory]int)
	for _, res := range a.Results {
		if res.Spec.Injection == nil || res.Spec.Injection.FieldPath == "" {
			continue
		}
		critical := res.OF == classify.OFSta || res.OF == classify.OFOut || res.CF == classify.CFSU
		if !critical {
			continue
		}
		byCategory[Categorize(res.Spec.Injection.FieldPath)]++
		total++
	}
	return byCategory, total
}

// CriticalFields returns the distinct fields whose injections caused
// critical failures (input to the §V-C2 refinement round).
func (a *Aggregate) CriticalFields() []inject.RecordedField {
	seen := make(map[string]inject.RecordedField)
	for _, res := range a.Results {
		in := res.Spec.Injection
		if in == nil || in.FieldPath == "" {
			continue
		}
		critical := res.OF == classify.OFSta || res.OF == classify.OFOut || res.CF == classify.CFSU
		if !critical {
			continue
		}
		key := string(in.Kind) + "\x00" + in.FieldPath
		if _, ok := seen[key]; !ok {
			seen[key] = inject.RecordedField{Kind: in.Kind, Path: in.FieldPath, FieldKind: fieldKindOf(res)}
		}
	}
	out := make([]inject.RecordedField, 0, len(seen))
	for _, f := range seen {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// fieldKindOf infers the field's type from the observed old value of the
// fired injection (set-value faults know their type; bit flips report what
// they read).
func fieldKindOf(res *Result) codec.FieldKind {
	val := res.Report.OldValue
	if val == nil {
		val = res.Spec.Injection.Value
	}
	switch val.(type) {
	case int64, int:
		return codec.FieldInt
	case bool:
		return codec.FieldBool
	default:
		return codec.FieldString
	}
}
