// Package campaign implements the fault/error injection campaign manager of
// §IV-C: golden runs, wire-format field recording, campaign generation (bit
// flips, data-type sets, message drops, serialization-byte corruptions,
// occurrence triggers), experiment execution, and result aggregation into
// the paper's tables and figures.
package campaign

import (
	"sync"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/classify"
	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// Experiment timeline constants.
const (
	bootstrapDeadline = 30 * time.Second
	// eventBudget bounds one experiment's total simulation events. Nominal
	// experiments use well under 100k; only runaway feedback loops
	// (uncontrolled replication churning against evictions and quota)
	// approach it, and they are Sta/Out-class by then. The cap plays the
	// role of the paper's fixed experiment duration on a real testbed.
	eventBudget = 500_000
	// windowLength spans the client's 30 s plus steady-state margin.
	windowLength = 45 * time.Second
	// opStartDelay is the gap between client start and workload operations.
	opStartDelay = time.Second
)

// Spec describes one experiment: a workload plus (optionally) one injection.
type Spec struct {
	Workload  workload.Kind
	Injection *inject.Injection // nil for golden runs
	Seed      int64
}

// Result is the outcome of one experiment.
type Result struct {
	Spec        Spec
	OF          classify.OF
	CF          classify.CF
	Z           float64
	Report      inject.Report
	UserErrors  int
	PodsCreated int
	// FailoverMillis / StaleReadMillis carry the HA control-plane windows
	// measured by the collector (milliseconds of simulated time the control
	// plane was unresponsive, and some live store replica served stale
	// reads). Zero on single-apiserver clusters.
	FailoverMillis  float64
	StaleReadMillis float64
	// AdmissionOutageMillis / PolicyViolations carry the admission-campaign
	// trade-off measured by the collector: milliseconds of the window a
	// fail-closed hook was unreachable (write-availability outage), and
	// policy-violating objects admitted past a skipped hook (enforcement-
	// integrity loss). Zero without a webhook chain.
	AdmissionOutageMillis float64
	PolicyViolations      int
	// TopologyDisruptionMillis / TopologyRecoveryMillis carry the topology-
	// campaign windows measured by the collector: milliseconds of the window
	// some zone or node link was cut, and milliseconds after the links were
	// restored before the cluster re-converged. Zero on flat clusters.
	TopologyDisruptionMillis float64
	TopologyRecoveryMillis   float64
	// PropPersisted / PropErrored serve the Table VI propagation analysis.
	PropPersisted bool
	PropErrored   bool
}

// Runner executes experiments and caches per-workload baselines. A Runner is
// safe for concurrent use: experiments are isolated simulations, and the
// baseline cache is built exactly once per workload behind a per-kind guard
// (concurrent callers block until the build finishes).
type Runner struct {
	// GoldenRuns per workload (the paper uses 100).
	GoldenRuns int
	// ClusterConfig template; it is cloned (deep, including the pointer-typed
	// option structs) and stamped with the per-experiment seed for every run,
	// so concurrent workers never share mutable option state.
	ClusterConfig cluster.Config
	// Parallelism bounds the worker goroutines used to build golden
	// baselines (0 or 1 = sequential). RunCampaign sets it from
	// Config.Parallelism; the baseline itself is bit-identical either way,
	// because observations are collected in golden-seed order.
	Parallelism int
	// ShareBootstrap enables the bootstrapped-cluster fast path: one settled
	// bootstrap (plus scenario setup) per workload kind is captured as a
	// cluster.Snapshot and forked per experiment, so only the injection
	// window is simulated. The bootstrap runs under a canonical per-workload
	// seed; the forked window runs under the per-experiment seed. Off (the
	// default) keeps the legacy full-replay path, bit-identical to previous
	// releases; on preserves classification output per the equivalence
	// contract documented in the cluster package, but not bit-level equality
	// of individual observations.
	ShareBootstrap bool

	mu        sync.Mutex
	baselines map[workload.Kind]*baselineEntry
	snapshots map[workload.Kind]*snapshotEntry

	// workerMu guards idle, the stack of released Workers. Experiment
	// execution acquires a Worker (reusing an idle one or building a new
	// one), runs any number of experiments on it, and releases it — one
	// lock round-trip per acquire/release, never per experiment.
	workerMu sync.Mutex
	idle     []*Worker
}

// A Worker is one campaign execution lane. It owns every piece of mutable
// per-experiment scratch state — the classify.BufferPool recycling series
// buffers, and the per-worker bootstrap-snapshot views forks read from — so
// two workers running experiments concurrently share only immutable data
// (golden baselines, the sealed decoded objects) and the Runner's guard
// cells. A Worker must not run two experiments at once; the Runner hands
// each one to exactly one goroutine at a time (see forEachWorker).
type Worker struct {
	r *Runner
	// pool recycles per-experiment series buffers. Run releases an
	// observation's buffers after classification; golden observations are
	// retained by baselines and therefore never released.
	pool *classify.BufferPool
	// views caches this worker's private copy of each workload's shared
	// bootstrap snapshot (cluster.Snapshot.WorkerView): identical content,
	// worker-local byte arrays, so parallel forks never read the same
	// memory.
	views map[workload.Kind]*cluster.Snapshot
}

// baselineEntry guards one workload's golden-run build.
type baselineEntry struct {
	once     sync.Once
	baseline *classify.Baseline
	golden   []*classify.Observation
}

// snapshotEntry guards one workload's shared-bootstrap capture.
type snapshotEntry struct {
	once sync.Once
	snap *cluster.Snapshot
}

// NewRunner returns a Runner with paper-default settings.
func NewRunner() *Runner {
	return &Runner{
		GoldenRuns: 100,
		baselines:  make(map[workload.Kind]*baselineEntry),
		snapshots:  make(map[workload.Kind]*snapshotEntry),
	}
}

// acquireWorker pops an idle Worker or builds a fresh one. Pair with
// releaseWorker so the worker's pool and snapshot views are reused.
func (r *Runner) acquireWorker() *Worker {
	r.workerMu.Lock()
	defer r.workerMu.Unlock()
	if n := len(r.idle); n > 0 {
		w := r.idle[n-1]
		r.idle = r.idle[:n-1]
		return w
	}
	return &Worker{
		r:     r,
		pool:  classify.NewBufferPool(),
		views: make(map[workload.Kind]*cluster.Snapshot),
	}
}

// releaseWorker returns a Worker to the idle stack.
func (r *Runner) releaseWorker(w *Worker) {
	r.workerMu.Lock()
	r.idle = append(r.idle, w)
	r.workerMu.Unlock()
}

// guardCell returns (creating if needed) the per-workload guard cell in m,
// under the runner's lock. Shared by the baseline and snapshot caches.
func guardCell[E any](mu *sync.Mutex, m *map[workload.Kind]*E, kind workload.Kind) *E {
	mu.Lock()
	defer mu.Unlock()
	if *m == nil {
		*m = make(map[workload.Kind]*E)
	}
	e, ok := (*m)[kind]
	if !ok {
		e = new(E)
		(*m)[kind] = e
	}
	return e
}

// entry returns (creating if needed) the baseline guard cell for a workload.
func (r *Runner) entry(kind workload.Kind) *baselineEntry {
	return guardCell(&r.mu, &r.baselines, kind)
}

// snapshotEntryFor returns (creating if needed) the snapshot cell for a
// workload.
func (r *Runner) snapshotEntryFor(kind workload.Kind) *snapshotEntry {
	return guardCell(&r.mu, &r.snapshots, kind)
}

// snapshotFor returns (capturing if needed) the shared bootstrap snapshot
// for a workload: cluster bootstrap, settling, and scenario setup under the
// workload's canonical seed, captured at the settled instant. Snapshots are
// shared process-wide (see snapcache.go): the per-Runner cell only resolves
// the cache key once, and the capture itself runs at most once per
// (config, workload) in the whole process, no matter how many Runners ask.
func (r *Runner) snapshotFor(kind workload.Kind) *cluster.Snapshot {
	e := r.snapshotEntryFor(kind)
	e.once.Do(func() {
		cfg := r.ClusterConfig.Clone()
		cfg.Seed = bootstrapSeed(kind)
		shared := sharedSnapshotEntry(snapshotCacheKey(cfg, kind))
		shared.once.Do(func() {
			cl := cluster.New(cfg)
			cl.Loop.SetEventBudget(eventBudget)
			cl.Start()
			cl.AwaitSettled(bootstrapDeadline)
			driver := workload.NewDriver(cl, kind)
			driver.Setup()
			shared.snap = cl.Snapshot()
		})
		e.snap = shared.snap
	})
	return e.snap
}

// snapshotView returns this worker's private view of the workload's shared
// bootstrap snapshot, building it on first use. The shared capture happens
// once per process (snapshotFor); the view copy happens once per (worker,
// workload) and every subsequent fork on this worker reads only
// worker-local arrays.
func (w *Worker) snapshotView(kind workload.Kind) *cluster.Snapshot {
	if v, ok := w.views[kind]; ok {
		return v
	}
	v := w.r.snapshotFor(kind)
	if resolveParallelism(w.r.Parallelism) > 1 {
		// Only concurrent workers need private copies of the shared arrays;
		// a single worker forks from the shared snapshot directly, so a
		// sequential campaign pays no view-copy cost.
		v = v.WorkerView()
	}
	w.views[kind] = v
	return v
}

// Baseline returns (building if needed) the golden baseline for a workload.
// The build runs at most once even under concurrent callers; golden runs are
// themselves fanned out across Parallelism workers, with observations slotted
// by golden-seed index so the resulting baseline is deterministic.
func (r *Runner) Baseline(kind workload.Kind) *classify.Baseline {
	e := r.entry(kind)
	e.once.Do(func() {
		n := r.GoldenRuns
		if n <= 0 {
			n = 100
		}
		obs := make([]*classify.Observation, n)
		forEachWorker(n, r.Parallelism, r, func(w *Worker, i int) {
			obs[i], _, _ = w.runExperiment(Spec{Workload: kind, Seed: goldenSeed(kind, i)}, true)
		})
		e.golden = obs
		e.baseline = classify.BuildBaseline(obs)
	})
	return e.baseline
}

// GoldenObservations returns the cached golden observations (building the
// baseline first if needed).
func (r *Runner) GoldenObservations(kind workload.Kind) []*classify.Observation {
	r.Baseline(kind)
	return r.entry(kind).golden
}

// Run executes one experiment on a borrowed worker and classifies it. The
// campaign engine's fan-out path holds a Worker per goroutine and calls
// Worker.Run directly; this convenience wrapper serves external callers.
func (r *Runner) Run(spec Spec) *Result {
	w := r.acquireWorker()
	defer r.releaseWorker(w)
	return w.Run(spec)
}

// RunObserved executes one experiment on a borrowed worker and returns both
// the classified result and the raw observation.
func (r *Runner) RunObserved(spec Spec) (*Result, *classify.Observation) {
	w := r.acquireWorker()
	defer r.releaseWorker(w)
	return w.RunObserved(spec)
}

// Run executes one experiment and classifies it. The observation backing the
// classification is recycled into the worker's buffer pool — callers that
// need the raw observation use RunObserved, whose result is never pooled.
func (w *Worker) Run(spec Spec) *Result {
	res, obs := w.RunObserved(spec)
	w.pool.Release(obs)
	return res
}

// RunObserved executes one experiment and returns both the classified result
// and the raw observation (e.g. for rendering Figure 5's time series).
func (w *Worker) RunObserved(spec Spec) (*Result, *classify.Observation) {
	baseline := w.r.Baseline(spec.Workload)
	obs, rep, _ := w.runExperiment(spec, true)
	res := &Result{
		Spec:                  spec,
		OF:                    classify.ClassifyOF(obs, baseline),
		CF:                    classify.ClassifyCF(obs, baseline),
		Z:                     classify.ClientZ(obs, baseline),
		UserErrors:            obs.UserErrors,
		PodsCreated:           obs.PodsCreated,
		FailoverMillis:        obs.FailoverMillis,
		StaleReadMillis:       obs.StaleReadMillis,
		AdmissionOutageMillis: obs.AdmissionOutageMillis,
		PolicyViolations:      obs.PolicyViolations,

		TopologyDisruptionMillis: obs.TopologyDisruptedMillis,
		TopologyRecoveryMillis:   obs.TopologyRecoveryMillis,
	}
	if spec.Injection != nil {
		res.Report = rep
	}
	return res, obs
}

// RunPropagation executes a component→apiserver channel experiment and
// reports the Table VI outcome columns.
//
// Unlike the observation path, this path runs without the application
// client and collector (collect=false): Table VI audits the control-plane
// request stream, and the client's VIP traffic never touches the API
// server. The consequence — intentional, and kept for bit-compatibility
// with prior campaigns — is that Result.UserErrors here counts only the
// kbench driver's API requests over a window without client-induced
// dynamics, while the main path's Observation.UserErrors is measured with
// the client (and the collector's periodic reads) running.
func (r *Runner) RunPropagation(spec Spec) *Result {
	w := r.acquireWorker()
	defer r.releaseWorker(w)
	return w.RunPropagation(spec)
}

// RunPropagation is Runner.RunPropagation on this worker's state.
func (w *Worker) RunPropagation(spec Spec) *Result {
	_, rep, audit := w.runExperiment(spec, false)
	return &Result{
		Spec:          spec,
		Report:        rep,
		UserErrors:    audit.ErrorsBy(workload.UserIdentity),
		PropPersisted: audit.TamperedPersisted() > 0,
		PropErrored:   audit.TamperedErrored() > 0,
	}
}

// bootCluster brings up the cluster for one experiment: forked from this
// worker's private view of the workload's bootstrap snapshot when
// ShareBootstrap is on, or the legacy full replay (bootstrap, settle,
// scenario setup — all under the per-experiment seed). Either way the
// returned cluster is settled, has the scenario set up, and carries an
// attached (not yet armed) injector.
func (w *Worker) bootCluster(spec Spec) (*cluster.Cluster, *inject.Injector, *workload.Driver) {
	r := w.r
	if r.ShareBootstrap {
		cl := w.snapshotView(spec.Workload).Fork(spec.Seed)
		cl.Loop.SetEventBudget(eventBudget)
		injector := inject.New(cl.Loop)
		cl.AttachInjector(injector)
		return cl, injector, workload.NewDriver(cl, spec.Workload)
	}
	cfg := r.ClusterConfig.Clone()
	cfg.Seed = spec.Seed
	cl := cluster.New(cfg)
	cl.Loop.SetEventBudget(eventBudget)
	injector := inject.New(cl.Loop)
	cl.AttachInjector(injector)
	cl.Start()
	cl.AwaitSettled(bootstrapDeadline)
	driver := workload.NewDriver(cl, spec.Workload)
	driver.Setup()
	return cl, injector, driver
}

// runExperiment executes the experiment lifecycle of Figure 4 — cluster
// (re)start, scenario set-up, client start, injector programming, workload
// execution, and data collection — shared by the observation path (collect
// = true: application client plus collector attached) and the propagation
// path (collect = false: audit-only, see RunPropagation). The returned
// audit trail belongs to the experiment's (stopped) cluster.
func (w *Worker) runExperiment(spec Spec, collect bool) (*classify.Observation, inject.Report, *apiserver.Audit) {
	cl, injector, driver := w.bootCluster(spec)

	var client *workload.Client
	var collector *classify.Collector
	if collect {
		ns, svc := driver.TargetService()
		client = workload.NewClient(cl, ns, svc)
		collector = classify.NewCollector(cl)
		collector.UsePool(w.pool)
		collector.Start()
		client.Start()
	}
	if spec.Injection != nil {
		injector.Arm(*spec.Injection)
	}
	windowStart := cl.Loop.Now()
	cl.Loop.RunUntil(windowStart + opStartDelay)
	driver.Run()
	cl.Loop.RunUntil(windowStart + windowLength)

	var obs *classify.Observation
	if collect {
		obs = collector.Finish(client)
	}
	rep := injector.Report()
	audit := cl.Server.Audit()
	cl.Stop()
	return obs, rep, audit
}

// Record performs a nominal run of a workload with the wire recorder
// attached from cluster bootstrap (so node registrations, leases, and
// system workloads are inventoried too) and returns the recorded fields.
func (r *Runner) Record(kind workload.Kind) *inject.Recorder {
	cfg := r.ClusterConfig.Clone()
	cfg.Seed = goldenSeed(kind, 999)
	cl := cluster.New(cfg)
	rec := inject.NewRecorder()
	cl.Server.SetStoreWriteHook(rec.Hook())
	cl.Start()
	cl.AwaitSettled(bootstrapDeadline)
	driver := workload.NewDriver(cl, kind)
	driver.Setup()
	start := cl.Loop.Now()
	cl.Loop.RunUntil(start + opStartDelay)
	driver.Run()
	cl.Loop.RunUntil(start + windowLength)
	cl.Stop()
	return rec
}

func goldenSeed(kind workload.Kind, i int) int64 {
	var base int64
	switch kind {
	case workload.Deploy:
		base = 10_000
	case workload.ScaleUp:
		base = 20_000
	case workload.Failover:
		base = 30_000
	case workload.Policy:
		base = 40_000
	default:
		base = 90_000
	}
	return base + int64(i)
}

// bootstrapSeed is the canonical per-workload seed the shared bootstrap runs
// under (the seed-split's bootstrap half). It is disjoint from every golden
// seed (base+0..GoldenRuns) and from Record's base+999.
func bootstrapSeed(kind workload.Kind) int64 { return goldenSeed(kind, 555_555) }
