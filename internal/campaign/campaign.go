// Package campaign implements the fault/error injection campaign manager of
// §IV-C: golden runs, wire-format field recording, campaign generation (bit
// flips, data-type sets, message drops, serialization-byte corruptions,
// occurrence triggers), experiment execution, and result aggregation into
// the paper's tables and figures.
package campaign

import (
	"sync"
	"time"

	"github.com/mutiny-sim/mutiny/internal/classify"
	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// Experiment timeline constants.
const (
	bootstrapDeadline = 30 * time.Second
	// eventBudget bounds one experiment's total simulation events. Nominal
	// experiments use well under 100k; only runaway feedback loops
	// (uncontrolled replication churning against evictions and quota)
	// approach it, and they are Sta/Out-class by then. The cap plays the
	// role of the paper's fixed experiment duration on a real testbed.
	eventBudget = 500_000
	// windowLength spans the client's 30 s plus steady-state margin.
	windowLength = 45 * time.Second
	// opStartDelay is the gap between client start and workload operations.
	opStartDelay = time.Second
)

// Spec describes one experiment: a workload plus (optionally) one injection.
type Spec struct {
	Workload  workload.Kind
	Injection *inject.Injection // nil for golden runs
	Seed      int64
}

// Result is the outcome of one experiment.
type Result struct {
	Spec        Spec
	OF          classify.OF
	CF          classify.CF
	Z           float64
	Report      inject.Report
	UserErrors  int
	PodsCreated int
	// PropPersisted / PropErrored serve the Table VI propagation analysis.
	PropPersisted bool
	PropErrored   bool
}

// Runner executes experiments and caches per-workload baselines. A Runner is
// safe for concurrent use: experiments are isolated simulations, and the
// baseline cache is built exactly once per workload behind a per-kind guard
// (concurrent callers block until the build finishes).
type Runner struct {
	// GoldenRuns per workload (the paper uses 100).
	GoldenRuns int
	// ClusterConfig template; Seed is overridden per experiment.
	ClusterConfig cluster.Config
	// Parallelism bounds the worker goroutines used to build golden
	// baselines (0 or 1 = sequential). RunCampaign sets it from
	// Config.Parallelism; the baseline itself is bit-identical either way,
	// because observations are collected in golden-seed order.
	Parallelism int

	mu        sync.Mutex
	baselines map[workload.Kind]*baselineEntry
}

// baselineEntry guards one workload's golden-run build.
type baselineEntry struct {
	once     sync.Once
	baseline *classify.Baseline
	golden   []*classify.Observation
}

// NewRunner returns a Runner with paper-default settings.
func NewRunner() *Runner {
	return &Runner{
		GoldenRuns: 100,
		baselines:  make(map[workload.Kind]*baselineEntry),
	}
}

// entry returns (creating if needed) the guard cell for a workload.
func (r *Runner) entry(kind workload.Kind) *baselineEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.baselines == nil {
		r.baselines = make(map[workload.Kind]*baselineEntry)
	}
	e, ok := r.baselines[kind]
	if !ok {
		e = &baselineEntry{}
		r.baselines[kind] = e
	}
	return e
}

// Baseline returns (building if needed) the golden baseline for a workload.
// The build runs at most once even under concurrent callers; golden runs are
// themselves fanned out across Parallelism workers, with observations slotted
// by golden-seed index so the resulting baseline is deterministic.
func (r *Runner) Baseline(kind workload.Kind) *classify.Baseline {
	e := r.entry(kind)
	e.once.Do(func() {
		n := r.GoldenRuns
		if n <= 0 {
			n = 100
		}
		obs := make([]*classify.Observation, n)
		forEach(n, r.Parallelism, func(i int) {
			obs[i], _ = r.observe(Spec{Workload: kind, Seed: goldenSeed(kind, i)}, nil)
		})
		e.golden = obs
		e.baseline = classify.BuildBaseline(obs)
	})
	return e.baseline
}

// GoldenObservations returns the cached golden observations (building the
// baseline first if needed).
func (r *Runner) GoldenObservations(kind workload.Kind) []*classify.Observation {
	r.Baseline(kind)
	return r.entry(kind).golden
}

// Run executes one experiment and classifies it.
func (r *Runner) Run(spec Spec) *Result {
	res, _ := r.RunObserved(spec)
	return res
}

// RunObserved executes one experiment and returns both the classified result
// and the raw observation (e.g. for rendering Figure 5's time series).
func (r *Runner) RunObserved(spec Spec) (*Result, *classify.Observation) {
	baseline := r.Baseline(spec.Workload)
	obs, rep := r.observe(spec, baseline)
	res := &Result{
		Spec:        spec,
		OF:          classify.ClassifyOF(obs, baseline),
		CF:          classify.ClassifyCF(obs, baseline),
		Z:           classify.ClientZ(obs, baseline),
		UserErrors:  obs.UserErrors,
		PodsCreated: obs.PodsCreated,
	}
	if rep != nil {
		res.Report = *rep
	}
	return res, obs
}

// observe executes the experiment lifecycle of Figure 4: cluster restart,
// scenario set-up, client start, injector programming, workload execution,
// and data collection.
func (r *Runner) observe(spec Spec, _ *classify.Baseline) (*classify.Observation, *inject.Report) {
	cfg := r.ClusterConfig
	cfg.Seed = spec.Seed
	cl := cluster.New(cfg)
	cl.Loop.SetEventBudget(eventBudget)

	injector := inject.New(cl.Loop)
	cl.AttachInjector(injector)

	cl.Start()
	cl.AwaitSettled(bootstrapDeadline)

	driver := workload.NewDriver(cl, spec.Workload)
	driver.Setup()

	ns, svc := driver.TargetService()
	client := workload.NewClient(cl, ns, svc)
	collector := classify.NewCollector(cl)

	collector.Start()
	client.Start()
	if spec.Injection != nil {
		injector.Arm(*spec.Injection)
	}
	windowStart := cl.Loop.Now()
	cl.Loop.RunUntil(windowStart + opStartDelay)
	driver.Run()
	cl.Loop.RunUntil(windowStart + windowLength)

	obs := collector.Finish(client)
	rep := injector.Report()
	cl.Stop()
	if spec.Injection != nil {
		return obs, &rep
	}
	return obs, nil
}

// RunPropagation executes a component→apiserver channel experiment and
// reports the Table VI outcome columns.
func (r *Runner) RunPropagation(spec Spec) *Result {
	res := r.runWithAudit(spec)
	return res
}

func (r *Runner) runWithAudit(spec Spec) *Result {
	cfg := r.ClusterConfig
	cfg.Seed = spec.Seed
	cl := cluster.New(cfg)
	cl.Loop.SetEventBudget(eventBudget)
	injector := inject.New(cl.Loop)
	cl.AttachInjector(injector)
	cl.Start()
	cl.AwaitSettled(bootstrapDeadline)

	driver := workload.NewDriver(cl, spec.Workload)
	driver.Setup()
	if spec.Injection != nil {
		injector.Arm(*spec.Injection)
	}
	start := cl.Loop.Now()
	cl.Loop.RunUntil(start + opStartDelay)
	driver.Run()
	cl.Loop.RunUntil(start + windowLength)

	audit := cl.Server.Audit()
	res := &Result{
		Spec:          spec,
		Report:        injector.Report(),
		UserErrors:    audit.ErrorsBy(workload.UserIdentity),
		PropPersisted: audit.TamperedPersisted() > 0,
		PropErrored:   audit.TamperedErrored() > 0,
	}
	cl.Stop()
	return res
}

// Record performs a nominal run of a workload with the wire recorder
// attached from cluster bootstrap (so node registrations, leases, and
// system workloads are inventoried too) and returns the recorded fields.
func (r *Runner) Record(kind workload.Kind) *inject.Recorder {
	cfg := r.ClusterConfig
	cfg.Seed = goldenSeed(kind, 999)
	cl := cluster.New(cfg)
	rec := inject.NewRecorder()
	cl.Server.SetStoreWriteHook(rec.Hook())
	cl.Start()
	cl.AwaitSettled(bootstrapDeadline)
	driver := workload.NewDriver(cl, kind)
	driver.Setup()
	start := cl.Loop.Now()
	cl.Loop.RunUntil(start + opStartDelay)
	driver.Run()
	cl.Loop.RunUntil(start + windowLength)
	cl.Stop()
	return rec
}

func goldenSeed(kind workload.Kind, i int) int64 {
	var base int64
	switch kind {
	case workload.Deploy:
		base = 10_000
	case workload.ScaleUp:
		base = 20_000
	case workload.Failover:
		base = 30_000
	default:
		base = 90_000
	}
	return base + int64(i)
}
