// Package campaign implements the fault/error injection campaign manager of
// §IV-C: golden runs, wire-format field recording, campaign generation (bit
// flips, data-type sets, message drops, serialization-byte corruptions,
// occurrence triggers), experiment execution, and result aggregation into
// the paper's tables and figures.
package campaign

import (
	"sync"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/classify"
	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// Experiment timeline constants.
const (
	bootstrapDeadline = 30 * time.Second
	// eventBudget bounds one experiment's total simulation events. Nominal
	// experiments use well under 100k; only runaway feedback loops
	// (uncontrolled replication churning against evictions and quota)
	// approach it, and they are Sta/Out-class by then. The cap plays the
	// role of the paper's fixed experiment duration on a real testbed.
	eventBudget = 500_000
	// windowLength spans the client's 30 s plus steady-state margin.
	windowLength = 45 * time.Second
	// opStartDelay is the gap between client start and workload operations.
	opStartDelay = time.Second
)

// Spec describes one experiment: a workload plus (optionally) one injection.
type Spec struct {
	Workload  workload.Kind
	Injection *inject.Injection // nil for golden runs
	Seed      int64
}

// Result is the outcome of one experiment.
type Result struct {
	Spec        Spec
	OF          classify.OF
	CF          classify.CF
	Z           float64
	Report      inject.Report
	UserErrors  int
	PodsCreated int
	// FailoverMillis / StaleReadMillis carry the HA control-plane windows
	// measured by the collector (milliseconds of simulated time the control
	// plane was unresponsive, and some live store replica served stale
	// reads). Zero on single-apiserver clusters.
	FailoverMillis  float64
	StaleReadMillis float64
	// PropPersisted / PropErrored serve the Table VI propagation analysis.
	PropPersisted bool
	PropErrored   bool
}

// Runner executes experiments and caches per-workload baselines. A Runner is
// safe for concurrent use: experiments are isolated simulations, and the
// baseline cache is built exactly once per workload behind a per-kind guard
// (concurrent callers block until the build finishes).
type Runner struct {
	// GoldenRuns per workload (the paper uses 100).
	GoldenRuns int
	// ClusterConfig template; it is cloned (deep, including the pointer-typed
	// option structs) and stamped with the per-experiment seed for every run,
	// so concurrent workers never share mutable option state.
	ClusterConfig cluster.Config
	// Parallelism bounds the worker goroutines used to build golden
	// baselines (0 or 1 = sequential). RunCampaign sets it from
	// Config.Parallelism; the baseline itself is bit-identical either way,
	// because observations are collected in golden-seed order.
	Parallelism int
	// ShareBootstrap enables the bootstrapped-cluster fast path: one settled
	// bootstrap (plus scenario setup) per workload kind is captured as a
	// cluster.Snapshot and forked per experiment, so only the injection
	// window is simulated. The bootstrap runs under a canonical per-workload
	// seed; the forked window runs under the per-experiment seed. Off (the
	// default) keeps the legacy full-replay path, bit-identical to previous
	// releases; on preserves classification output per the equivalence
	// contract documented in the cluster package, but not bit-level equality
	// of individual observations.
	ShareBootstrap bool

	mu        sync.Mutex
	baselines map[workload.Kind]*baselineEntry
	snapshots map[workload.Kind]*snapshotEntry

	// pool recycles per-experiment series buffers (classify.BufferPool).
	// Run releases an observation's buffers after classification; golden
	// observations are retained by baselines and therefore never released.
	pool *classify.BufferPool
}

// baselineEntry guards one workload's golden-run build.
type baselineEntry struct {
	once     sync.Once
	baseline *classify.Baseline
	golden   []*classify.Observation
}

// snapshotEntry guards one workload's shared-bootstrap capture.
type snapshotEntry struct {
	once sync.Once
	snap *cluster.Snapshot
}

// NewRunner returns a Runner with paper-default settings.
func NewRunner() *Runner {
	return &Runner{
		GoldenRuns: 100,
		baselines:  make(map[workload.Kind]*baselineEntry),
		snapshots:  make(map[workload.Kind]*snapshotEntry),
		pool:       classify.NewBufferPool(),
	}
}

// guardCell returns (creating if needed) the per-workload guard cell in m,
// under the runner's lock. Shared by the baseline and snapshot caches.
func guardCell[E any](mu *sync.Mutex, m *map[workload.Kind]*E, kind workload.Kind) *E {
	mu.Lock()
	defer mu.Unlock()
	if *m == nil {
		*m = make(map[workload.Kind]*E)
	}
	e, ok := (*m)[kind]
	if !ok {
		e = new(E)
		(*m)[kind] = e
	}
	return e
}

// entry returns (creating if needed) the baseline guard cell for a workload.
func (r *Runner) entry(kind workload.Kind) *baselineEntry {
	return guardCell(&r.mu, &r.baselines, kind)
}

// snapshotEntryFor returns (creating if needed) the snapshot cell for a
// workload.
func (r *Runner) snapshotEntryFor(kind workload.Kind) *snapshotEntry {
	return guardCell(&r.mu, &r.snapshots, kind)
}

// snapshotFor returns (capturing if needed) the shared bootstrap snapshot
// for a workload: cluster bootstrap, settling, and scenario setup under the
// workload's canonical seed, captured at the settled instant. Snapshots are
// shared process-wide (see snapcache.go): the per-Runner cell only resolves
// the cache key once, and the capture itself runs at most once per
// (config, workload) in the whole process, no matter how many Runners ask.
func (r *Runner) snapshotFor(kind workload.Kind) *cluster.Snapshot {
	e := r.snapshotEntryFor(kind)
	e.once.Do(func() {
		cfg := r.ClusterConfig.Clone()
		cfg.Seed = bootstrapSeed(kind)
		shared := sharedSnapshotEntry(snapshotCacheKey(cfg, kind))
		shared.once.Do(func() {
			cl := cluster.New(cfg)
			cl.Loop.SetEventBudget(eventBudget)
			cl.Start()
			cl.AwaitSettled(bootstrapDeadline)
			driver := workload.NewDriver(cl, kind)
			driver.Setup()
			shared.snap = cl.Snapshot()
		})
		e.snap = shared.snap
	})
	return e.snap
}

// Baseline returns (building if needed) the golden baseline for a workload.
// The build runs at most once even under concurrent callers; golden runs are
// themselves fanned out across Parallelism workers, with observations slotted
// by golden-seed index so the resulting baseline is deterministic.
func (r *Runner) Baseline(kind workload.Kind) *classify.Baseline {
	e := r.entry(kind)
	e.once.Do(func() {
		n := r.GoldenRuns
		if n <= 0 {
			n = 100
		}
		obs := make([]*classify.Observation, n)
		forEach(n, r.Parallelism, func(i int) {
			obs[i], _, _ = r.runExperiment(Spec{Workload: kind, Seed: goldenSeed(kind, i)}, true)
		})
		e.golden = obs
		e.baseline = classify.BuildBaseline(obs)
	})
	return e.baseline
}

// GoldenObservations returns the cached golden observations (building the
// baseline first if needed).
func (r *Runner) GoldenObservations(kind workload.Kind) []*classify.Observation {
	r.Baseline(kind)
	return r.entry(kind).golden
}

// Run executes one experiment and classifies it. The observation backing the
// classification is recycled into the Runner's buffer pool — callers that
// need the raw observation use RunObserved, whose result is never pooled.
func (r *Runner) Run(spec Spec) *Result {
	res, obs := r.RunObserved(spec)
	r.pool.Release(obs)
	return res
}

// RunObserved executes one experiment and returns both the classified result
// and the raw observation (e.g. for rendering Figure 5's time series).
func (r *Runner) RunObserved(spec Spec) (*Result, *classify.Observation) {
	baseline := r.Baseline(spec.Workload)
	obs, rep, _ := r.runExperiment(spec, true)
	res := &Result{
		Spec:            spec,
		OF:              classify.ClassifyOF(obs, baseline),
		CF:              classify.ClassifyCF(obs, baseline),
		Z:               classify.ClientZ(obs, baseline),
		UserErrors:      obs.UserErrors,
		PodsCreated:     obs.PodsCreated,
		FailoverMillis:  obs.FailoverMillis,
		StaleReadMillis: obs.StaleReadMillis,
	}
	if spec.Injection != nil {
		res.Report = rep
	}
	return res, obs
}

// RunPropagation executes a component→apiserver channel experiment and
// reports the Table VI outcome columns.
//
// Unlike the observation path, this path runs without the application
// client and collector (collect=false): Table VI audits the control-plane
// request stream, and the client's VIP traffic never touches the API
// server. The consequence — intentional, and kept for bit-compatibility
// with prior campaigns — is that Result.UserErrors here counts only the
// kbench driver's API requests over a window without client-induced
// dynamics, while the main path's Observation.UserErrors is measured with
// the client (and the collector's periodic reads) running.
func (r *Runner) RunPropagation(spec Spec) *Result {
	_, rep, audit := r.runExperiment(spec, false)
	return &Result{
		Spec:          spec,
		Report:        rep,
		UserErrors:    audit.ErrorsBy(workload.UserIdentity),
		PropPersisted: audit.TamperedPersisted() > 0,
		PropErrored:   audit.TamperedErrored() > 0,
	}
}

// bootCluster brings up the cluster for one experiment: forked from the
// workload's shared bootstrap snapshot when ShareBootstrap is on, or the
// legacy full replay (bootstrap, settle, scenario setup — all under the
// per-experiment seed). Either way the returned cluster is settled, has the
// scenario set up, and carries an attached (not yet armed) injector.
func (r *Runner) bootCluster(spec Spec) (*cluster.Cluster, *inject.Injector, *workload.Driver) {
	if r.ShareBootstrap {
		cl := r.snapshotFor(spec.Workload).Fork(spec.Seed)
		cl.Loop.SetEventBudget(eventBudget)
		injector := inject.New(cl.Loop)
		cl.AttachInjector(injector)
		return cl, injector, workload.NewDriver(cl, spec.Workload)
	}
	cfg := r.ClusterConfig.Clone()
	cfg.Seed = spec.Seed
	cl := cluster.New(cfg)
	cl.Loop.SetEventBudget(eventBudget)
	injector := inject.New(cl.Loop)
	cl.AttachInjector(injector)
	cl.Start()
	cl.AwaitSettled(bootstrapDeadline)
	driver := workload.NewDriver(cl, spec.Workload)
	driver.Setup()
	return cl, injector, driver
}

// runExperiment executes the experiment lifecycle of Figure 4 — cluster
// (re)start, scenario set-up, client start, injector programming, workload
// execution, and data collection — shared by the observation path (collect
// = true: application client plus collector attached) and the propagation
// path (collect = false: audit-only, see RunPropagation). The returned
// audit trail belongs to the experiment's (stopped) cluster.
func (r *Runner) runExperiment(spec Spec, collect bool) (*classify.Observation, inject.Report, *apiserver.Audit) {
	cl, injector, driver := r.bootCluster(spec)

	var client *workload.Client
	var collector *classify.Collector
	if collect {
		ns, svc := driver.TargetService()
		client = workload.NewClient(cl, ns, svc)
		collector = classify.NewCollector(cl)
		collector.UsePool(r.pool)
		collector.Start()
		client.Start()
	}
	if spec.Injection != nil {
		injector.Arm(*spec.Injection)
	}
	windowStart := cl.Loop.Now()
	cl.Loop.RunUntil(windowStart + opStartDelay)
	driver.Run()
	cl.Loop.RunUntil(windowStart + windowLength)

	var obs *classify.Observation
	if collect {
		obs = collector.Finish(client)
	}
	rep := injector.Report()
	audit := cl.Server.Audit()
	cl.Stop()
	return obs, rep, audit
}

// Record performs a nominal run of a workload with the wire recorder
// attached from cluster bootstrap (so node registrations, leases, and
// system workloads are inventoried too) and returns the recorded fields.
func (r *Runner) Record(kind workload.Kind) *inject.Recorder {
	cfg := r.ClusterConfig.Clone()
	cfg.Seed = goldenSeed(kind, 999)
	cl := cluster.New(cfg)
	rec := inject.NewRecorder()
	cl.Server.SetStoreWriteHook(rec.Hook())
	cl.Start()
	cl.AwaitSettled(bootstrapDeadline)
	driver := workload.NewDriver(cl, kind)
	driver.Setup()
	start := cl.Loop.Now()
	cl.Loop.RunUntil(start + opStartDelay)
	driver.Run()
	cl.Loop.RunUntil(start + windowLength)
	cl.Stop()
	return rec
}

func goldenSeed(kind workload.Kind, i int) int64 {
	var base int64
	switch kind {
	case workload.Deploy:
		base = 10_000
	case workload.ScaleUp:
		base = 20_000
	case workload.Failover:
		base = 30_000
	default:
		base = 90_000
	}
	return base + int64(i)
}

// bootstrapSeed is the canonical per-workload seed the shared bootstrap runs
// under (the seed-split's bootstrap half). It is disjoint from every golden
// seed (base+0..GoldenRuns) and from Record's base+999.
func bootstrapSeed(kind workload.Kind) int64 { return goldenSeed(kind, 555_555) }
