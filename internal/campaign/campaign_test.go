package campaign

import (
	"testing"

	"github.com/mutiny-sim/mutiny/internal/classify"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// testRunner returns a runner with a reduced golden-run count to keep unit
// tests fast; the statistics only need a non-degenerate distribution.
func testRunner() *Runner {
	r := NewRunner()
	r.GoldenRuns = 12
	return r
}

func TestGoldenRunsClassifyAsNoFailure(t *testing.T) {
	r := testRunner()
	for _, wl := range workload.Kinds() {
		b := r.Baseline(wl)
		if b.FinalReadyMin <= 0 {
			t.Fatalf("%s: golden baseline has no ready replicas", wl)
		}
		// A fresh golden run must classify as No/NSI.
		res := r.Run(Spec{Workload: wl, Seed: goldenSeed(wl, 400)})
		if res.OF != classify.OFNone {
			t.Fatalf("%s: golden run classified as %s, want No", wl, res.OF)
		}
		if res.CF != classify.CFNSI {
			t.Fatalf("%s: golden run client verdict %s, want NSI", wl, res.CF)
		}
	}
}

// The paper's flagship example (§V-C1): corrupting the labels that bind
// pods to their controller makes the controller unable to identify its own
// pods — every replacement it spawns is unidentifiable too, and pods are
// created in an infinite loop. The injection lands on the ReplicaSet created
// by the deploy workload, on the apiserver→store channel where the
// selector-vs-template validation cannot see it.
func TestUncontrolledReplicationFromTemplateLabelCorruption(t *testing.T) {
	r := testRunner()
	res := r.Run(Spec{
		Workload: workload.Deploy,
		Seed:     777,
		Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindReplicaSet,
			FieldPath: "spec.template.labels[app]",
			Type:      inject.SetValue, Value: "mislabeled",
			// Occurrence 2 is the deployment controller's scale-up update:
			// the stored ReplicaSet then has replicas > 0 with a template
			// that can never match its selector. (At occurrence 1 — the
			// create, with replicas still 0 — the corruption instead blocks
			// the scale-up at the validation layer and yields LeR.)
			Occurrence: 2,
		},
	})
	if !res.Report.Fired {
		t.Fatal("injection did not fire")
	}
	if res.OF != classify.OFSta && res.OF != classify.OFOut {
		t.Fatalf("OF = %s (pods created: %d), want Sta or Out", res.OF, res.PodsCreated)
	}
	if res.PodsCreated < 30 {
		t.Fatalf("pods created = %d, expected uncontrolled replication", res.PodsCreated)
	}
}

// Dropping the transaction that creates a Deployment leaves the user
// believing it exists: fewer resources at steady state and an unreachable
// service, with no error ever surfaced (findings F1/F4).
func TestDroppedDeploymentCreate(t *testing.T) {
	r := testRunner()
	res := r.Run(Spec{
		Workload: workload.Deploy,
		Seed:     778,
		Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindDeployment,
			Type: inject.DropMessage, Occurrence: 1,
		},
	})
	if res.OF != classify.OFLeR {
		t.Fatalf("OF = %s, want LeR", res.OF)
	}
	if res.CF != classify.CFSU {
		t.Fatalf("CF = %s, want SU (client's target service never materialized)", res.CF)
	}
	if res.UserErrors != 0 {
		t.Fatalf("user saw %d errors; drop must be silent", res.UserErrors)
	}
}

// A high-order bit flip in a replica count massively over-provisions the
// service (MoR).
func TestReplicasBitFlipOverprovisions(t *testing.T) {
	r := testRunner()
	res := r.Run(Spec{
		Workload: workload.ScaleUp,
		Seed:     779,
		Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindDeployment,
			FieldPath: "spec.replicas",
			Type:      inject.BitFlip, Bit: 4, // 2 → 18
			Occurrence: 1,
		},
	})
	if res.OF != classify.OFMoR {
		t.Fatalf("OF = %s, want MoR", res.OF)
	}
}

// Corrupting a bound pod's nodeName makes the scheduler distrust its cache
// and restart — the §V-C timing-failure example.
func TestNodeNameCorruptionRestartsScheduler(t *testing.T) {
	r := testRunner()
	res := r.Run(Spec{
		Workload: workload.Failover,
		Seed:     780,
		Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindPod,
			FieldPath: "spec.nodeName",
			Type:      inject.SetValue, Value: "ghost-node",
			// Late occurrence: hit a bound pod's status-update write.
			Occurrence: 3,
		},
	})
	if !res.Report.Fired {
		t.Skip("injection did not fire at this occurrence; covered by the campaign")
	}
	if res.OF == classify.OFNone {
		t.Fatalf("OF = %s, want a visible failure after nodeName corruption", res.OF)
	}
}

// A node-address flip is harmless at the orchestrator level (the ~70% No
// bucket). The client verdict may still read HRT occasionally — the paper
// attributes its non-empty No→HRT cell to "the natural nondeterministic
// timing behavior of the orchestrator" — so only exclude real failures.
func TestHarmlessInjection(t *testing.T) {
	r := testRunner()
	res := r.Run(Spec{
		Workload: workload.Deploy,
		Seed:     781,
		Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindNode,
			FieldPath: "status.address",
			Type:      inject.BitFlip, CharIndex: 0,
			Occurrence: 2,
		},
	})
	if res.OF != classify.OFNone {
		t.Fatalf("OF = %s, want No", res.OF)
	}
	if res.CF == classify.CFSU || res.CF == classify.CFIA {
		t.Fatalf("CF = %s, want NSI (or noise-induced HRT at worst)", res.CF)
	}
}

func TestGenerateCampaignShape(t *testing.T) {
	r := testRunner()
	rec := r.Record(workload.Deploy)
	specs := Generate(workload.Deploy, rec)
	if len(specs) < 500 {
		t.Fatalf("campaign has only %d experiments; the field inventory looks too small", len(specs))
	}
	byGroup := make(map[InjGroup]int)
	byType := make(map[inject.FaultType]int)
	for _, s := range specs {
		if s.Injection == nil {
			t.Fatal("generated spec without injection")
		}
		byGroup[GroupOf(s.Injection.Type)]++
		byType[s.Injection.Type]++
	}
	if byGroup[GroupBitFlip] == 0 || byGroup[GroupSet] == 0 || byGroup[GroupDrop] == 0 {
		t.Fatalf("missing injection group: %v", byGroup)
	}
	kinds := rec.Kinds()
	if len(kinds) < 8 {
		t.Fatalf("only %d kinds observed on the wire: %v", len(kinds), kinds)
	}
	if byType[inject.DropMessage] != len(kinds)*dropOccurrences {
		t.Fatalf("drop experiments = %d, want %d", byType[inject.DropMessage], len(kinds)*dropOccurrences)
	}
	// Bit-flip experiments must outnumber value sets (two flips per scalar
	// field vs one set), as in Table IV.
	if byType[inject.BitFlip] <= byType[inject.SetValue] {
		t.Fatalf("bit-flips (%d) should outnumber value-sets (%d)", byType[inject.BitFlip], byType[inject.SetValue])
	}
}

func TestFieldCategorization(t *testing.T) {
	tests := []struct {
		path string
		want FieldCategory
	}{
		{"metadata.labels[app]", CategoryDependency},
		{"spec.selector.matchLabels[app]", CategoryDependency},
		{"metadata.ownerReferences[0].uid", CategoryDependency},
		{"subsets[0].addresses[0].targetRef.name", CategoryDependency},
		{"metadata.managedBy", CategoryDependency},
		{"metadata.name", CategoryIdentity},
		{"metadata.namespace", CategoryIdentity},
		{"metadata.uid", CategoryIdentity},
		{"spec.nodeName", CategoryIdentity},
		{"spec.ports[0].port", CategoryNetworking},
		{"spec.clusterIP", CategoryNetworking},
		{"spec.podCIDR", CategoryNetworking},
		{"status.podIP", CategoryNetworking},
		{"spec.replicas", CategoryReplicas},
		{"spec.containers[0].image", CategoryImageCommand},
		{"spec.template.spec.containers[0].command[0]", CategoryImageCommand},
		{"metadata.creationTimestamp", CategoryOther},
		{"status.phase", CategoryOther},
	}
	for _, tt := range tests {
		if got := Categorize(tt.path); got != tt.want {
			t.Errorf("Categorize(%q) = %s, want %s", tt.path, got, tt.want)
		}
	}
}

func TestSemanticValues(t *testing.T) {
	if vals := SemanticValues("spec.replicas", 2); len(vals) == 0 {
		t.Fatal("no semantic values for int field")
	}
	vals := SemanticValues("spec.nodeName", 1)
	if len(vals) != 1 || vals[0].(string) != "ghost-node" {
		t.Fatalf("nodeName semantic values = %v", vals)
	}
	if vals := SemanticValues("status.ready", 3); vals != nil {
		t.Fatalf("bool fields need no semantic values, got %v", vals)
	}
}
