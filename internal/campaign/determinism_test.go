package campaign

import (
	"testing"

	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// Bit-for-bit reproducibility is the property that makes a ~9,000-experiment
// campaign debuggable: the same spec must always produce the same verdict,
// the same z-score, and the same injection report.
func TestExperimentsAreDeterministic(t *testing.T) {
	specs := []Spec{
		{Workload: workload.Deploy, Seed: 4711, Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindDeployment,
			FieldPath: "spec.replicas", Type: inject.BitFlip, Bit: 0, Occurrence: 1,
		}},
		{Workload: workload.ScaleUp, Seed: 4712, Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindService,
			FieldPath: "spec.ports[0].targetPort", Type: inject.BitFlip, Bit: 4, Occurrence: 1,
		}},
		{Workload: workload.Failover, Seed: 4713, Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindPod,
			Type: inject.DropMessage, Occurrence: 4,
		}},
	}
	run := func() []Result {
		r := NewRunner()
		r.GoldenRuns = 5
		out := make([]Result, 0, len(specs))
		for _, s := range specs {
			out = append(out, *r.Run(s))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i].OF != b[i].OF || a[i].CF != b[i].CF || a[i].Z != b[i].Z ||
			a[i].PodsCreated != b[i].PodsCreated ||
			a[i].Report.Fired != b[i].Report.Fired ||
			a[i].Report.FiredAt != b[i].Report.FiredAt ||
			a[i].Report.Instance != b[i].Report.Instance {
			t.Fatalf("spec %d diverged between identical runs:\n  a=%+v\n  b=%+v", i, a[i], b[i])
		}
	}
}

// Campaign generation must be deterministic too: the same recorder yields
// the same experiment list.
func TestGenerationIsDeterministic(t *testing.T) {
	r := NewRunner()
	r.GoldenRuns = 3
	rec := r.Record(workload.Deploy)
	a := Generate(workload.Deploy, rec)
	b := Generate(workload.Deploy, rec)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i].Injection != *b[i].Injection || a[i].Seed != b[i].Seed {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a[i].Injection, b[i].Injection)
		}
	}
}
