package campaign

import (
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// Bit-for-bit reproducibility is the property that makes a ~9,000-experiment
// campaign debuggable: the same spec must always produce the same verdict,
// the same z-score, and the same injection report.
func TestExperimentsAreDeterministic(t *testing.T) {
	specs := []Spec{
		{Workload: workload.Deploy, Seed: 4711, Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindDeployment,
			FieldPath: "spec.replicas", Type: inject.BitFlip, Bit: 0, Occurrence: 1,
		}},
		{Workload: workload.ScaleUp, Seed: 4712, Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindService,
			FieldPath: "spec.ports[0].targetPort", Type: inject.BitFlip, Bit: 4, Occurrence: 1,
		}},
		{Workload: workload.Failover, Seed: 4713, Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindPod,
			Type: inject.DropMessage, Occurrence: 4,
		}},
	}
	run := func() []Result {
		r := NewRunner()
		r.GoldenRuns = 5
		out := make([]Result, 0, len(specs))
		for _, s := range specs {
			out = append(out, *r.Run(s))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i].OF != b[i].OF || a[i].CF != b[i].CF || a[i].Z != b[i].Z ||
			a[i].PodsCreated != b[i].PodsCreated ||
			a[i].Report.Fired != b[i].Report.Fired ||
			a[i].Report.FiredAt != b[i].Report.FiredAt ||
			a[i].Report.Instance != b[i].Report.Instance {
			t.Fatalf("spec %d diverged between identical runs:\n  a=%+v\n  b=%+v", i, a[i], b[i])
		}
	}
}

// The parallel execution engine must not change a single bit of any output
// aggregate: a campaign run on one worker and the same campaign fanned out
// across eight workers must produce identical Tables III–VI inputs,
// refinement aggregates, propagation cells, and per-experiment results.
func TestCampaignParallelismIsDeterministic(t *testing.T) {
	base := Config{
		Workloads:    []workload.Kind{workload.Deploy, workload.ScaleUp},
		GoldenRuns:   3,
		SampleStride: 101,
	}
	seq := base
	seq.Parallelism = 1
	par := base
	par.Parallelism = 8
	var parTicks atomic.Int64
	par.Progress = func(done, total int) { parTicks.Add(1) }

	a := RunCampaign(seq)
	b := RunCampaign(par)

	if !reflect.DeepEqual(a.FieldsRecorded, b.FieldsRecorded) {
		t.Errorf("FieldsRecorded diverged: %v vs %v", a.FieldsRecorded, b.FieldsRecorded)
	}
	if !reflect.DeepEqual(a.Main, b.Main) {
		t.Errorf("Main aggregate diverged (%d vs %d results)", a.Main.Total(), b.Main.Total())
	}
	if !reflect.DeepEqual(a.Refinement, b.Refinement) {
		t.Errorf("Refinement aggregate diverged (%d vs %d results)", a.Refinement.Total(), b.Refinement.Total())
	}
	if !reflect.DeepEqual(a.Propagation, b.Propagation) {
		t.Errorf("Propagation cells diverged:\n  seq=%+v\n  par=%+v", a.Propagation, b.Propagation)
	}
	if a.Main.Total() == 0 {
		t.Fatal("campaign ran zero main experiments; the test is vacuous")
	}
	want := int64(a.Main.Total() + a.Refinement.Total())
	for _, cell := range a.Propagation {
		want += int64(cell.Injected)
	}
	if got := parTicks.Load(); got != want {
		t.Errorf("parallel Progress ticked %d times, want %d", got, want)
	}
}

// A shared Runner must be safe (and deterministic) when hammered from many
// goroutines at once, including the first Baseline build — the seed
// implementation had an unsynchronized map that would race here.
func TestRunnerConcurrentUse(t *testing.T) {
	r := NewRunner()
	r.GoldenRuns = 3
	r.Parallelism = 4
	specs := []Spec{
		{Workload: workload.Deploy, Seed: 6001, Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindDeployment,
			FieldPath: "spec.replicas", Type: inject.BitFlip, Bit: 1, Occurrence: 1,
		}},
		{Workload: workload.Deploy, Seed: 6002},
		{Workload: workload.ScaleUp, Seed: 6003, Injection: &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindService,
			FieldPath: "spec.ports[0].port", Type: inject.BitFlip, Bit: 2, Occurrence: 1,
		}},
		{Workload: workload.ScaleUp, Seed: 6004},
	}
	const rounds = 3
	got := make([]*Result, rounds*len(specs))
	forEach(len(got), 8, func(i int) {
		got[i] = r.Run(specs[i%len(specs)])
	})
	for i := len(specs); i < len(got); i++ {
		prev := got[i-len(specs)]
		cur := got[i]
		if cur.OF != prev.OF || cur.CF != prev.CF || cur.Z != prev.Z {
			t.Fatalf("concurrent runs of spec %d diverged: %+v vs %+v", i%len(specs), prev, cur)
		}
	}
}

// Campaign generation must be deterministic too: the same recorder yields
// the same experiment list.
func TestGenerationIsDeterministic(t *testing.T) {
	r := NewRunner()
	r.GoldenRuns = 3
	rec := r.Record(workload.Deploy)
	a := Generate(workload.Deploy, rec)
	b := Generate(workload.Deploy, rec)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i].Injection != *b[i].Injection || a[i].Seed != b[i].Seed {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a[i].Injection, b[i].Injection)
		}
	}
}
