package campaign

import "strings"

// FieldCategory buckets a field path for the §V-C2 critical-field analysis:
// finding F2 shows that fields managing dependency relationships among
// resource instances cause about half of the critical failures.
type FieldCategory string

// Field categories.
const (
	// CategoryDependency: labels, selectors, ownerReferences, targetRef,
	// managedBy — the owner and label relationship machinery.
	CategoryDependency FieldCategory = "dependency"
	// CategoryIdentity: name, namespace, uid — the fields in a resource URL.
	CategoryIdentity FieldCategory = "identity"
	// CategoryNetworking: addresses, ports, protocols, CIDRs.
	CategoryNetworking FieldCategory = "networking"
	// CategoryReplicas: replica counts.
	CategoryReplicas FieldCategory = "replicas"
	// CategoryImageCommand: image references and commands that gate pod
	// startup.
	CategoryImageCommand FieldCategory = "image/command"
	// CategoryOther: everything else.
	CategoryOther FieldCategory = "other"
)

// Categories lists the buckets in report order.
func Categories() []FieldCategory {
	return []FieldCategory{
		CategoryDependency, CategoryIdentity, CategoryNetworking,
		CategoryReplicas, CategoryImageCommand, CategoryOther,
	}
}

// Categorize buckets one field path.
func Categorize(path string) FieldCategory {
	lower := strings.ToLower(path)
	switch {
	case strings.Contains(lower, "label") ||
		strings.Contains(lower, "selector") ||
		strings.Contains(lower, "ownerreferences") ||
		strings.Contains(lower, "targetref") ||
		strings.Contains(lower, "managedby"):
		return CategoryDependency
	case strings.HasSuffix(lower, ".name") || strings.HasSuffix(lower, ".namespace") ||
		strings.HasSuffix(lower, ".uid") || strings.Contains(lower, "nodename") ||
		strings.Contains(lower, "holderidentity"):
		return CategoryIdentity
	case strings.Contains(lower, "port") || strings.Contains(lower, "protocol") ||
		strings.Contains(lower, "ip") || strings.Contains(lower, "cidr") ||
		strings.Contains(lower, "address"):
		return CategoryNetworking
	case strings.Contains(lower, "replicas"):
		return CategoryReplicas
	case strings.Contains(lower, "image") || strings.Contains(lower, "command"):
		return CategoryImageCommand
	default:
		return CategoryOther
	}
}
