package campaign

import (
	"strings"
	"time"

	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/netsim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// Generation rules from §IV-C:
//   - each integer field: flip a low- and a high-order bit (1st and 5th),
//     and set the 0 value;
//   - each string field: flip the least-significant bit of the first two
//     characters, and set the empty string;
//   - each boolean field: invert;
//   - each field experiment runs at occurrence indexes 1, 2, and 3;
//   - each resource kind: message drops at occurrence indexes 1..10 and a
//     set of random serialization-byte corruptions.
const (
	occurrences     = 3
	dropOccurrences = 10
	protoPerKind    = 2 // byte-corruption variants per kind per occurrence
	lowBit, highBit = 0, 4
	firstChar       = 0
	secondChar      = 1
)

// Generate derives the injection campaign for one workload from its
// recorded field inventory.
func Generate(kind workload.Kind, rec *inject.Recorder) []Spec {
	var specs []Spec
	seed := campaignSeedBase(kind)
	add := func(in inject.Injection) {
		specs = append(specs, Spec{Workload: kind, Injection: &in, Seed: seed})
		seed++
	}

	for _, f := range rec.Fields() {
		for occ := 1; occ <= occurrences; occ++ {
			base := inject.Injection{
				Channel: inject.ChannelStore, Kind: f.Kind,
				FieldPath: f.Path, Occurrence: occ,
			}
			switch f.FieldKind {
			case codec.FieldInt:
				for _, bit := range []int{lowBit, highBit} {
					in := base
					in.Type = inject.BitFlip
					in.Bit = bit
					add(in)
				}
				in := base
				in.Type = inject.SetValue
				in.Value = int64(0)
				add(in)
			case codec.FieldString:
				for _, ch := range []int{firstChar, secondChar} {
					in := base
					in.Type = inject.BitFlip
					in.CharIndex = ch
					add(in)
				}
				in := base
				in.Type = inject.SetValue
				in.Value = ""
				add(in)
			case codec.FieldBool:
				in := base
				in.Type = inject.BitFlip
				add(in)
			}
		}
	}

	for _, k := range rec.Kinds() {
		for occ := 1; occ <= dropOccurrences; occ++ {
			add(inject.Injection{
				Channel: inject.ChannelStore, Kind: k,
				Type: inject.DropMessage, Occurrence: occ,
			})
		}
		for v := 0; v < protoPerKind; v++ {
			for occ := 1; occ <= occurrences; occ++ {
				add(inject.Injection{
					Channel: inject.ChannelStore, Kind: k,
					Type: inject.FlipProtoByte, Occurrence: occ,
				})
			}
		}
	}
	return specs
}

// GenerateCriticalRefinement builds the §V-C2 refinement round: for fields
// that caused critical failures, additional data-set values specific to
// each field's semantics.
func GenerateCriticalRefinement(kind workload.Kind, fields []inject.RecordedField) []Spec {
	var specs []Spec
	seed := campaignSeedBase(kind) + 500_000
	for _, f := range fields {
		for _, val := range SemanticValues(f.Path, f.FieldKind) {
			for occ := 1; occ <= occurrences; occ++ {
				in := inject.Injection{
					Channel: inject.ChannelStore, Kind: f.Kind,
					FieldPath: f.Path, Type: inject.SetValue,
					Value: val, Occurrence: occ,
				}
				specs = append(specs, Spec{Workload: kind, Injection: &in, Seed: seed})
				seed++
			}
		}
	}
	return specs
}

// SemanticValues proposes wrong-but-plausible values for a field, driven by
// its path semantics (the "data-set values specific to the semantics of
// each critical field").
func SemanticValues(path string, kind codec.FieldKind) []any {
	switch kind {
	case codec.FieldInt:
		return []any{int64(-1), int64(1 << 20)}
	case codec.FieldBool:
		return nil // inversion already covers both values
	}
	lower := strings.ToLower(path)
	switch {
	case strings.Contains(lower, "nodename"):
		return []any{"ghost-node"}
	case strings.Contains(lower, "namespace"):
		return []any{"phantom-ns"}
	case strings.Contains(lower, "uid"):
		return []any{"uid-999999"}
	case strings.Contains(lower, "image"):
		return []any{"registry.local/doesnotexist:9.9"}
	case strings.Contains(lower, "command"):
		return []any{"segfault"}
	case strings.Contains(lower, "clusterip") || strings.HasSuffix(lower, ".ip") || strings.Contains(lower, "address"):
		return []any{"10.99.99.99"}
	case strings.Contains(lower, "cidr"):
		return []any{"not-a-cidr"}
	case strings.Contains(lower, "protocol"):
		return []any{"SCTP"}
	case strings.Contains(lower, "label") || strings.Contains(lower, "selector"):
		return []any{"mislabeled"}
	case strings.Contains(lower, "name"):
		return []any{"wrong-name"}
	default:
		return []any{"wrong-value"}
	}
}

// Control-plane fault-axis timeline: the fault strikes shortly after the
// workload starts so the failover window overlaps the measurement window,
// and heals with margin before the window closes so reconvergence is
// observable too.
const (
	cpFaultAfter = 3 * time.Second
	cpFaultHeal  = 18 * time.Second
)

// GenerateControlPlane derives the HA fault-axis campaign: per control-plane
// replica, an apiserver crash (with restart), a master partition (healed),
// and a store-replica loss (restored). Empty when the cluster is not
// replicated — the axes need survivors to fail over to.
func GenerateControlPlane(kind workload.Kind, replicas int) []Spec {
	if replicas < 2 {
		return nil
	}
	var specs []Spec
	seed := campaignSeedBase(kind) + 900_000
	for r := 0; r < replicas; r++ {
		for _, t := range []inject.FaultType{
			inject.FaultAPIServerCrash, inject.FaultMasterPartition, inject.FaultStoreLoss,
		} {
			in := inject.Injection{Type: t, Replica: r, After: cpFaultAfter, Heal: cpFaultHeal}
			specs = append(specs, Spec{Workload: kind, Injection: &in, Seed: seed})
			seed++
		}
	}
	return specs
}

// AdmissionPolicies lists the two failure-policy regimes every admission
// fault axis is run under — the fail-closed vs fail-open contrast the
// admission table renders.
var AdmissionPolicies = []string{"Fail", "Ignore"}

// GenerateAdmission derives the admission fault-axis campaign: for every
// registered webhook hook, each webhook fault (backend down, latency past
// timeout, wrong selector, missing failure policy) under both failure-policy
// regimes. The policy rides on the injection spec, so one bootstrap snapshot
// per workload serves both regimes (the policy is behaviorally inert while
// every hook is healthy). Empty when no hooks are configured.
func GenerateAdmission(kind workload.Kind, hooks int) []Spec {
	if hooks <= 0 {
		return nil
	}
	var specs []Spec
	seed := campaignSeedBase(kind) + 800_000
	for h := 0; h < hooks; h++ {
		for _, t := range []inject.FaultType{
			inject.FaultWebhookDown, inject.FaultWebhookLatency,
			inject.FaultWebhookSelector, inject.FaultWebhookPolicy,
		} {
			for _, policy := range AdmissionPolicies {
				in := inject.Injection{
					Type: t, Replica: h, Policy: policy,
					After: cpFaultAfter, Heal: cpFaultHeal,
				}
				specs = append(specs, Spec{Workload: kind, Injection: &in, Seed: seed})
				seed++
			}
		}
	}
	return specs
}

// GenerateTopology derives the cloud-edge topology fault-axis campaign: for
// every non-core zone, an edge-link flap, a zone partition, and a mass
// node-kill — all healed within the window so reconvergence is observable.
// Injection.Value carries the zone name, so aggregation and sharding key the
// per-zone rows without a cluster handle. Empty on flat clusters.
func GenerateTopology(kind workload.Kind, zones int) []Spec {
	if zones < 2 {
		return nil
	}
	var specs []Spec
	seed := campaignSeedBase(kind) + 600_000
	for z := 1; z < zones; z++ {
		for _, t := range []inject.FaultType{
			inject.FaultEdgeLinkFlap, inject.FaultZonePartition, inject.FaultNodeKill,
		} {
			in := inject.Injection{
				Type: t, Replica: z, Value: netsim.ZoneName(z, zones),
				After: cpFaultAfter, Heal: cpFaultHeal,
			}
			specs = append(specs, Spec{Workload: kind, Injection: &in, Seed: seed})
			seed++
		}
	}
	return specs
}

// ComponentKinds maps the injected component (Table VI) to the resource
// kinds it writes; the propagation campaign injects into the fields of
// those kinds on the component→apiserver channel.
var ComponentKinds = map[string][]spec.Kind{
	"kcm": {spec.KindPod, spec.KindReplicaSet, spec.KindDeployment,
		spec.KindDaemonSet, spec.KindEndpoints, spec.KindNode},
	"scheduler": {spec.KindPod},
	"kubelet-":  {spec.KindPod, spec.KindNode},
}

// PropagationComponents lists the injected components in paper order.
func PropagationComponents() []string { return []string{"kcm", "scheduler", "kubelet-"} }

// GeneratePropagation builds the Table VI campaign: one bit-flip per
// recorded field of the kinds each component writes, on the request channel.
func GeneratePropagation(kind workload.Kind, rec *inject.Recorder, component string) []Spec {
	kinds := make(map[spec.Kind]bool)
	for _, k := range ComponentKinds[component] {
		kinds[k] = true
	}
	var specs []Spec
	seed := campaignSeedBase(kind) + 700_000
	for _, f := range rec.Fields() {
		if !kinds[f.Kind] {
			continue
		}
		in := inject.Injection{
			Channel: inject.ChannelRequest, Kind: f.Kind,
			SourcePrefix: component, FieldPath: f.Path,
			Occurrence: 1,
		}
		switch f.FieldKind {
		case codec.FieldInt:
			in.Type = inject.BitFlip
			in.Bit = lowBit
		case codec.FieldString:
			in.Type = inject.BitFlip
			in.CharIndex = firstChar
		case codec.FieldBool:
			in.Type = inject.BitFlip
		}
		specs = append(specs, Spec{Workload: kind, Injection: &in, Seed: seed})
		seed++
	}
	return specs
}

func campaignSeedBase(kind workload.Kind) int64 {
	switch kind {
	case workload.Deploy:
		return 1_000_000
	case workload.ScaleUp:
		return 2_000_000
	case workload.Failover:
		return 3_000_000
	case workload.Policy:
		return 4_000_000
	default:
		return 9_000_000
	}
}
