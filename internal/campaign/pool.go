package campaign

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the parallel campaign execution engine. Every
// experiment is an isolated, deterministic simulation (its own cluster, loop,
// and seeded RNG), so a campaign is embarrassingly parallel — the only shared
// state is the Runner's golden baselines (built once per workload behind a
// per-kind guard, see campaign.go) and the Progress callback (serialized by
// progressTicker). Results are written to index-addressed slots and merged in
// generated-spec order, which keeps every Output aggregate bit-identical to
// the sequential path no matter how the workers interleave.

// resolveParallelism maps the Parallelism knob to a worker count:
// 0 (or negative) = runtime.GOMAXPROCS(0), 1 = sequential, n = n workers.
func resolveParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// forEach runs fn(i) for every i in [0, n) across at most `workers`
// goroutines. Workers claim indices from a shared counter, so fn must write
// its result into an index-addressed slot; iteration order across workers is
// unspecified, but every index runs exactly once. workers <= 1 degenerates to
// a plain loop with zero goroutine or synchronization overhead.
func forEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// forEachWorker is forEach with a campaign Worker bound to each goroutine:
// every goroutine borrows one Worker from the Runner for its whole index
// stream, so per-experiment scratch state (buffer pool, snapshot views)
// never crosses a goroutine boundary and is reused across every experiment
// the goroutine claims. Workers are released back to the Runner's idle
// stack when the fan-out drains, so a campaign builds at most
// max(parallelism over all phases) workers total.
func forEachWorker(n, workers int, r *Runner, fn func(w *Worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		w := r.acquireWorker()
		defer r.releaseWorker(w)
		for i := 0; i < n; i++ {
			fn(w, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			w := r.acquireWorker()
			defer r.releaseWorker(w)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}()
	}
	wg.Wait()
}

// runAll executes every spec with run, fanning out across `workers`
// goroutines (each bound to one campaign Worker), and returns the results
// in spec order.
func runAll(specs []Spec, workers int, r *Runner, run func(*Worker, Spec) *Result, tick func()) []*Result {
	results := make([]*Result, len(specs))
	forEachWorker(len(specs), workers, r, func(w *Worker, i int) {
		results[i] = run(w, specs[i])
		if tick != nil {
			tick()
		}
	})
	return results
}

// progressTicker makes a Config.Progress callback concurrency-safe: workers
// finishing simultaneously tick it from multiple goroutines, so the count
// update and the user callback both run under one mutex (the callback is
// almost always writing a progress line to a terminal — serializing it is the
// behavior callers expect).
type progressTicker struct {
	mu       sync.Mutex
	done     int
	total    int
	progress func(done, total int)
}

func newProgressTicker(total int, progress func(done, total int)) *progressTicker {
	return &progressTicker{total: total, progress: progress}
}

// addTotal grows the expected-experiment count (the refinement round's size
// is only known after the main campaign finishes).
func (t *progressTicker) addTotal(n int) {
	t.mu.Lock()
	t.total += n
	t.mu.Unlock()
}

// tick records one finished experiment and reports progress.
func (t *progressTicker) tick() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	if t.progress != nil {
		t.progress(t.done, t.total)
	}
}
