package campaign

import (
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// Config parameterizes a full campaign run (§IV-C's workflow).
type Config struct {
	// Workloads to exercise; nil means all three.
	Workloads []workload.Kind
	// GoldenRuns per workload; zero means the paper's 100.
	GoldenRuns int
	// SampleStride runs every n-th generated experiment (1 = the full
	// campaign). The generated campaign is deterministic, so a stride
	// subsamples it evenly across kinds, fields and fault models.
	SampleStride int
	// ControlPlaneReplicas sets the number of apiserver/store replicas in
	// every experiment cluster (0 or 1 = the classic single control plane).
	// With 2+ replicas the campaign additionally generates the HA fault
	// axes — apiserver crash, master partition, store-replica loss — and the
	// aggregate gains per-axis failover and stale-read-window statistics.
	ControlPlaneReplicas int
	// AdmissionHooks installs the standard governance webhook chain (first N
	// hooks) in every experiment cluster and additionally generates the
	// admission fault axes — webhook down, webhook latency, wrong selector,
	// missing failure policy — each under both failure-policy regimes. Zero
	// (the default) means no chain: the write path, the generated matrix, and
	// every historical output are untouched.
	AdmissionHooks int
	// FailurePolicy is the configured failure policy of the installed hooks
	// ("Fail" or "Ignore"; empty = the platform default, Ignore). The
	// generated admission axes override it per experiment — this knob matters
	// for golden runs and for non-admission faults running with a chain.
	FailurePolicy string
	// Workers sets the number of worker nodes in every experiment cluster
	// (0 = the cluster default). Large zoned clusters pair it with
	// ShareBootstrap — the bootstrap is paid once, not per experiment.
	Workers int
	// Zones splits the worker nodes over a cloud-edge topology (zone 0 the
	// cloud core, the last zone the edge, any between regional) and
	// additionally generates the topology fault axes — edge-link flap, zone
	// partition, mass node-kill — per non-core zone, with per-axis-per-zone
	// disruption and recovery statistics in the aggregate. 0 or 1 (the
	// default) keeps the flat network and generates nothing extra.
	Zones int
	// EdgeNodes is the number of workers in the edge zone (0 with Zones >= 2
	// = an even split).
	EdgeNodes int
	// SkipRefinement disables the §V-C2 critical-field value-set round.
	SkipRefinement bool
	// SkipPropagation disables the §V-C4 component-channel experiments.
	SkipPropagation bool
	// Progress, if set, receives (done, total) after every experiment. It is
	// always invoked serially (under a mutex), even when experiments run on
	// multiple workers.
	Progress func(done, total int)
	// Parallelism is the number of worker goroutines executing experiments:
	// 0 = runtime.GOMAXPROCS(0), 1 = the sequential path, n = n workers.
	// Campaign outputs are bit-identical for every setting — experiments are
	// isolated simulations and results are merged in generated-spec order —
	// so this knob trades only wall-clock for cores.
	Parallelism int
	// Shards and ShardIndex partition the generated spec matrix across
	// cooperating processes: experiment i (in generated order) runs in
	// shard i % Shards, and RunShard executes exactly that slice. Shards
	// <= 1 means unsharded. Generation is deterministic, so every shard
	// process regenerates the identical matrix from the same Config and the
	// index-ordered merge of all shard outputs (MergeShardOutputs) is
	// bit-identical to a single-process run. Only RunShard reads these;
	// RunCampaign ignores them (it always runs the full matrix).
	Shards     int
	ShardIndex int
	// ShareBootstrap runs every experiment as a fork of one settled
	// bootstrap snapshot per workload instead of replaying bootstrap and
	// scenario setup per experiment, cutting per-experiment cost by the
	// bootstrap share. Golden baselines are forked the same way, so
	// classification is preserved relative to the full-replay path (see the
	// cluster package docs for the exact equivalence contract); individual
	// observations are not bit-identical to it. Off keeps the legacy
	// full-replay behavior. Either way, campaign outputs remain bit-
	// reproducible run-to-run and across Parallelism settings.
	ShareBootstrap bool
}

func (c Config) withDefaults() Config {
	if len(c.Workloads) == 0 {
		// An admission campaign defaults to the governance workload — the one
		// whose canary creates make enforcement-integrity loss measurable.
		if c.AdmissionHooks > 0 {
			c.Workloads = []workload.Kind{workload.Policy}
		} else {
			c.Workloads = workload.Kinds()
		}
	}
	if c.GoldenRuns == 0 {
		c.GoldenRuns = 100
	}
	if c.SampleStride <= 0 {
		c.SampleStride = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.ShardIndex < 0 || c.ShardIndex >= c.Shards {
		panic("campaign: ShardIndex out of range")
	}
	return c
}

// PropagationCell aggregates the Table VI columns for one component under
// one workload.
type PropagationCell struct {
	Workload   workload.Kind
	Component  string
	Injected   int
	Propagated int
	Errored    int
}

// Output bundles everything a full campaign produces.
type Output struct {
	// Main is the aggregate over the §IV-C field/drop/serialization
	// campaign (Tables III, IV, V; Figures 6, 7).
	Main *Aggregate
	// Refinement aggregates the critical-field value-set round (§V-C2).
	Refinement *Aggregate
	// Propagation holds the Table VI cells.
	Propagation []PropagationCell
	// FieldsRecorded counts the wire-recorded fields per workload.
	FieldsRecorded map[workload.Kind]int
	// Runner retains the golden baselines for further experiments.
	Runner *Runner
}

// RunCampaign executes the complete experimental method: golden runs, field
// recording, campaign generation, the injection experiments, the
// critical-field refinement round, and the propagation experiments.
//
// Experiments are fanned out across Config.Parallelism workers (see pool.go);
// the Output is bit-identical to a sequential run because results are merged
// in generated-spec order and the golden baselines are built once per
// workload before the fan-out.
//
// RunCampaign is exactly the one-shard case of the sharded pipeline: it runs
// the full matrix as a single shard and merges it (see shard.go), so the
// sharded and unsharded paths share every line of execution and merge code.
func RunCampaign(cfg Config) *Output {
	cfg = cfg.withDefaults()
	cfg.Shards, cfg.ShardIndex = 1, 0
	return MergeShardOutputs(cfg, []*ShardOutput{RunShard(cfg)})
}

// refinementSpecs derives the §V-C2 critical-field value-set round from the
// main aggregate. The round honors Config.SampleStride like every other
// generated spec list: a strided smoke campaign must subsample the
// refinement experiments too, not run the full set.
func refinementSpecs(cfg Config, main *Aggregate) []Spec {
	var specs []Spec
	for _, wl := range cfg.Workloads {
		specs = append(specs, sample(GenerateCriticalRefinement(wl, criticalFieldsFor(main, wl)), cfg.SampleStride)...)
	}
	return specs
}

// criticalFieldsFor narrows the critical fields to one workload.
func criticalFieldsFor(agg *Aggregate, wl workload.Kind) []inject.RecordedField {
	scoped := NewAggregate()
	for _, res := range agg.Results {
		if res.Spec.Workload == wl {
			scoped.Add(res)
		}
	}
	return scoped.CriticalFields()
}

func sample(specs []Spec, stride int) []Spec {
	if stride <= 1 {
		return specs
	}
	out := make([]Spec, 0, len(specs)/stride+1)
	for i := 0; i < len(specs); i += stride {
		out = append(out, specs[i])
	}
	return out
}
