package campaign

import (
	"bytes"
	"sync"
	"testing"

	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// TestSealedObjectsAreNeverMutated is the seal-contract guard: it registers
// a post-seal mutation detector (a wire checksum captured at seal time) on
// every object that enters the shared read path — watch cache, watch
// dispatch to ~13 watchers, controller and scheduler list scans, snapshot
// forks — runs full experiments on both execution regimes with parallel
// golden runs, and then proves every sealed object still serializes to the
// exact bytes it had when sealed. Any consumer that mutates a sealed object
// in place (instead of going through spec.CloneForWrite) fails this test;
// running it under -race (make ci does) additionally catches cross-goroutine
// access to the shared instances.
func TestSealedObjectsAreNeverMutated(t *testing.T) {
	ClearSnapshotCache()
	defer ClearSnapshotCache()

	type sealed struct {
		obj spec.Object
		sum []byte
	}
	const maxTracked = 200_000 // safety bound; one run seals a few thousand
	var (
		mu      sync.Mutex
		tracked []sealed
		dropped int
	)
	spec.RegisterSealHook(func(o spec.Object) {
		b, err := codec.Marshal(o)
		if err != nil {
			return // undecodable-corruption shapes may not re-encode; skip
		}
		mu.Lock()
		if len(tracked) < maxTracked {
			tracked = append(tracked, sealed{obj: o, sum: b})
		} else {
			dropped++
		}
		mu.Unlock()
	})
	defer spec.RegisterSealHook(nil)

	// The template-label corruption drives uncontrolled replication: the
	// heaviest dispatch/list traffic the campaign produces, on top of the
	// golden runs' nominal traffic.
	in := inject.Injection{
		Channel: inject.ChannelStore, Kind: spec.KindReplicaSet,
		FieldPath: "spec.template.labels[app]",
		Type:      inject.SetValue, Value: "mislabeled", Occurrence: 2,
	}
	for _, share := range []bool{false, true} {
		runner := NewRunner()
		runner.GoldenRuns = 3
		runner.Parallelism = 4
		runner.ShareBootstrap = share
		inCopy := in
		if res := runner.Run(Spec{Workload: workload.Deploy, Seed: 7100, Injection: &inCopy}); res == nil {
			t.Fatalf("share=%v: experiment produced no result", share)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(tracked) == 0 {
		t.Fatal("seal hook observed no objects — the sealed read path is not active")
	}
	if dropped > 0 {
		t.Logf("note: %d seals beyond the tracking bound were not verified", dropped)
	}
	violations := 0
	for _, s := range tracked {
		b, err := codec.Marshal(s.obj)
		if err != nil || !bytes.Equal(b, s.sum) {
			violations++
			if violations <= 5 {
				m := s.obj.Meta()
				t.Errorf("sealed %s %s/%s (rv %d) mutated in place after sealing",
					s.obj.Kind(), m.Namespace, m.Name, m.ResourceVersion)
			}
		}
	}
	if violations > 0 {
		t.Fatalf("%d of %d sealed objects were mutated in place", violations, len(tracked))
	}
	t.Logf("verified %d sealed objects unchanged", len(tracked))
}
