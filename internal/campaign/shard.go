package campaign

import (
	"fmt"
	"time"

	"github.com/mutiny-sim/mutiny/internal/classify"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// Campaign sharding: partition the generated spec matrix across cooperating
// processes and merge their outputs bit-identically to a single-process run.
//
// The whole design leans on one property: campaign generation is
// deterministic. Field recording, spec generation, golden seeds, and the
// refinement derivation depend only on Config, so every shard process — and
// the merging parent — regenerates the identical spec matrix locally and
// communicates only *results*, keyed by global spec index. The wire format
// (ShardOutput) therefore never has to serialize a Spec, an Injection, or
// anything `any`-typed except the injection report's observed values, which
// travel as explicitly tagged WireValues (an int64 that round-tripped
// through a JSON float64 would corrupt the refinement round's field-kind
// inference and break bit-identity).
//
// Spec i runs in shard i%Shards. The modulus (not a contiguous split)
// interleaves workloads and fault models evenly, so shard wall-clock stays
// balanced even though spec cost varies by kind.
//
// The refinement round (§V-C2) derives its specs from the *merged* main
// aggregate, so it cannot run inside any single shard: MergeShardOutputs
// runs it after reassembly, on the merging process's own workers. A
// single-process RunCampaign is literally RunShard(Shards=1) + merge, so
// the sharded and unsharded paths cannot drift apart.

// prepared is the deterministic front half of a campaign: the configured
// Runner, the recorded fields, and the fully generated main and propagation
// spec lists. Two prepares of the same Config produce identical spec lists
// in identical order — the property sharding rests on.
type prepared struct {
	runner         *Runner
	mainSpecs      []Spec
	propSpecs      []Spec
	fieldsRecorded map[workload.Kind]int
}

// prepare records fields and generates the full (unsharded) spec matrix.
func prepare(cfg Config) *prepared {
	workers := resolveParallelism(cfg.Parallelism)
	runner := NewRunner()
	runner.GoldenRuns = cfg.GoldenRuns
	runner.Parallelism = workers
	runner.ShareBootstrap = cfg.ShareBootstrap
	runner.ClusterConfig.ControlPlaneReplicas = cfg.ControlPlaneReplicas
	runner.ClusterConfig.AdmissionHooks = cfg.AdmissionHooks
	runner.ClusterConfig.FailurePolicy = cfg.FailurePolicy
	if cfg.Workers > 0 {
		runner.ClusterConfig.Workers = cfg.Workers
	}
	runner.ClusterConfig.Zones = cfg.Zones
	runner.ClusterConfig.EdgeNodes = cfg.EdgeNodes

	p := &prepared{runner: runner, fieldsRecorded: make(map[workload.Kind]int)}
	for _, wl := range cfg.Workloads {
		rec := runner.Record(wl)
		p.fieldsRecorded[wl] = len(rec.Fields())
		p.mainSpecs = append(p.mainSpecs, sample(Generate(wl, rec), cfg.SampleStride)...)
		p.mainSpecs = append(p.mainSpecs, sample(GenerateControlPlane(wl, cfg.ControlPlaneReplicas), cfg.SampleStride)...)
		p.mainSpecs = append(p.mainSpecs, sample(GenerateAdmission(wl, cfg.AdmissionHooks), cfg.SampleStride)...)
		// The topology set is exempt from the stride: it is a fixed-size
		// targeted matrix (faults × zones, six specs per workload), and any
		// stride > 1 would collapse it to the first fault axis — the stride
		// knob exists to tame the thousands-of-specs field matrix above.
		p.mainSpecs = append(p.mainSpecs, GenerateTopology(wl, cfg.Zones)...)
		if !cfg.SkipPropagation {
			for _, component := range PropagationComponents() {
				p.propSpecs = append(p.propSpecs, sample(GeneratePropagation(wl, rec, component), cfg.SampleStride)...)
			}
		}
	}
	return p
}

// WireValue is an explicitly type-tagged scalar for the shard wire format.
// Kind is "int", "str", or "bool"; absent (nil pointer) means the value was
// nil. The tag preserves the Go dynamic type across JSON, which float64
// round-tripping would destroy.
type WireValue struct {
	Kind string `json:"kind"`
	Int  int64  `json:"int,omitempty"`
	Str  string `json:"str,omitempty"`
	Bool bool   `json:"bool,omitempty"`
}

func toWireValue(v any) *WireValue {
	switch x := v.(type) {
	case nil:
		return nil
	case int64:
		return &WireValue{Kind: "int", Int: x}
	case int:
		return &WireValue{Kind: "int", Int: int64(x)}
	case bool:
		return &WireValue{Kind: "bool", Bool: x}
	case string:
		return &WireValue{Kind: "str", Str: x}
	default:
		return &WireValue{Kind: "str", Str: fmt.Sprint(x)}
	}
}

func (w *WireValue) value() any {
	if w == nil {
		return nil
	}
	switch w.Kind {
	case "int":
		return w.Int
	case "bool":
		return w.Bool
	default:
		return w.Str
	}
}

// WireReport mirrors inject.Report with tagged values.
type WireReport struct {
	Fired     bool          `json:"fired,omitempty"`
	FiredAt   time.Duration `json:"firedAt,omitempty"`
	Instance  string        `json:"instance,omitempty"`
	StoreKey  string        `json:"storeKey,omitempty"`
	Activated bool          `json:"activated,omitempty"`
	OldValue  *WireValue    `json:"oldValue,omitempty"`
	NewValue  *WireValue    `json:"newValue,omitempty"`
	Healed    bool          `json:"healed,omitempty"`
	HealedAt  time.Duration `json:"healedAt,omitempty"`
}

func toWireReport(r inject.Report) WireReport {
	return WireReport{
		Fired:     r.Fired,
		FiredAt:   r.FiredAt,
		Instance:  r.Instance,
		StoreKey:  r.StoreKey,
		Activated: r.Activated,
		OldValue:  toWireValue(r.OldValue),
		NewValue:  toWireValue(r.NewValue),
		Healed:    r.Healed,
		HealedAt:  r.HealedAt,
	}
}

func (w WireReport) report() inject.Report {
	return inject.Report{
		Fired:     w.Fired,
		FiredAt:   w.FiredAt,
		Instance:  w.Instance,
		StoreKey:  w.StoreKey,
		Activated: w.Activated,
		OldValue:  w.OldValue.value(),
		NewValue:  w.NewValue.value(),
		Healed:    w.Healed,
		HealedAt:  w.HealedAt,
	}
}

// ShardResult is one experiment's outcome on the shard wire: everything a
// Result carries except its Spec, which the merger regenerates from Config
// and grafts back on by Index (the spec's position in the full generated
// list).
type ShardResult struct {
	Index           int        `json:"index"`
	OF              int        `json:"of,omitempty"`
	CF              int        `json:"cf,omitempty"`
	Z               float64    `json:"z,omitempty"`
	Report          WireReport `json:"report"`
	UserErrors      int        `json:"userErrors,omitempty"`
	PodsCreated     int        `json:"podsCreated,omitempty"`
	FailoverMillis  float64    `json:"failoverMillis,omitempty"`
	StaleReadMillis float64    `json:"staleReadMillis,omitempty"`

	AdmissionOutageMillis float64 `json:"admissionOutageMillis,omitempty"`
	PolicyViolations      int     `json:"policyViolations,omitempty"`

	TopologyDisruptionMillis float64 `json:"topologyDisruptionMillis,omitempty"`
	TopologyRecoveryMillis   float64 `json:"topologyRecoveryMillis,omitempty"`

	PropPersisted bool `json:"propPersisted,omitempty"`
	PropErrored   bool `json:"propErrored,omitempty"`
}

func toShardResult(index int, res *Result) ShardResult {
	return ShardResult{
		Index:           index,
		OF:              int(res.OF),
		CF:              int(res.CF),
		Z:               res.Z,
		Report:          toWireReport(res.Report),
		UserErrors:      res.UserErrors,
		PodsCreated:     res.PodsCreated,
		FailoverMillis:  res.FailoverMillis,
		StaleReadMillis: res.StaleReadMillis,

		AdmissionOutageMillis: res.AdmissionOutageMillis,
		PolicyViolations:      res.PolicyViolations,

		TopologyDisruptionMillis: res.TopologyDisruptionMillis,
		TopologyRecoveryMillis:   res.TopologyRecoveryMillis,

		PropPersisted: res.PropPersisted,
		PropErrored:   res.PropErrored,
	}
}

// result reassembles the full Result around the regenerated spec. Both the
// in-process and the cross-process merge paths go through here, so they
// cannot diverge: what survives the wire is exactly what merge consumes.
func (sr ShardResult) result(spec Spec) *Result {
	return &Result{
		Spec:            spec,
		OF:              classify.OF(sr.OF),
		CF:              classify.CF(sr.CF),
		Z:               sr.Z,
		Report:          sr.Report.report(),
		UserErrors:      sr.UserErrors,
		PodsCreated:     sr.PodsCreated,
		FailoverMillis:  sr.FailoverMillis,
		StaleReadMillis: sr.StaleReadMillis,

		AdmissionOutageMillis: sr.AdmissionOutageMillis,
		PolicyViolations:      sr.PolicyViolations,

		TopologyDisruptionMillis: sr.TopologyDisruptionMillis,
		TopologyRecoveryMillis:   sr.TopologyRecoveryMillis,

		PropPersisted: sr.PropPersisted,
		PropErrored:   sr.PropErrored,
	}
}

// ShardOutput is one shard's share of a campaign: main and propagation
// results for every global spec index i with i % Shards == ShardIndex. It
// is the unit the multi-process driver serializes (JSON) between child and
// parent.
type ShardOutput struct {
	Shards         int                   `json:"shards"`
	ShardIndex     int                   `json:"shardIndex"`
	MainTotal      int                   `json:"mainTotal"` // full matrix size, for validation
	PropTotal      int                   `json:"propTotal"`
	Main           []ShardResult         `json:"main"`
	Prop           []ShardResult         `json:"prop"`
	FieldsRecorded map[workload.Kind]int `json:"fieldsRecorded"`

	// prep is carried only within a process: RunCampaign hands its shard's
	// runner (with built baselines and recorded fields) straight to the
	// merge so nothing is recomputed. A deserialized ShardOutput has
	// prep == nil and the merge prepares its own.
	prep *prepared
}

// shardIndices enumerates this shard's global indices: index, index+shards,
// index+2·shards, …
func shardIndices(n, shards, index int) []int {
	var out []int
	for i := index; i < n; i += shards {
		out = append(out, i)
	}
	return out
}

// RunShard executes one shard of the campaign: field recording, golden
// baselines, and this shard's slice of the main and propagation experiments.
// Shards/ShardIndex come from Config; Shards <= 1 runs the whole matrix.
// The refinement round is NOT run here — it depends on the merged main
// aggregate and belongs to MergeShardOutputs.
func RunShard(cfg Config) *ShardOutput {
	cfg = cfg.withDefaults()
	workers := resolveParallelism(cfg.Parallelism)
	p := prepare(cfg)

	out := &ShardOutput{
		Shards:         cfg.Shards,
		ShardIndex:     cfg.ShardIndex,
		MainTotal:      len(p.mainSpecs),
		PropTotal:      len(p.propSpecs),
		FieldsRecorded: p.fieldsRecorded,
		prep:           p,
	}

	mainIdx := shardIndices(len(p.mainSpecs), cfg.Shards, cfg.ShardIndex)
	propIdx := shardIndices(len(p.propSpecs), cfg.Shards, cfg.ShardIndex)

	// Golden baselines are built up front (each internally parallel) so the
	// experiment workers never contend on a baseline build.
	for _, wl := range cfg.Workloads {
		p.runner.Baseline(wl)
	}

	progress := newProgressTicker(len(mainIdx)+len(propIdx), cfg.Progress)

	out.Main = make([]ShardResult, len(mainIdx))
	forEachWorker(len(mainIdx), workers, p.runner, func(w *Worker, k int) {
		i := mainIdx[k]
		out.Main[k] = toShardResult(i, w.Run(p.mainSpecs[i]))
		progress.tick()
	})

	out.Prop = make([]ShardResult, len(propIdx))
	forEachWorker(len(propIdx), workers, p.runner, func(w *Worker, k int) {
		i := propIdx[k]
		out.Prop[k] = toShardResult(i, w.RunPropagation(p.propSpecs[i]))
		progress.tick()
	})
	return out
}

// MergeShardOutputs reassembles shard outputs into the full campaign Output:
// results slot into generated-spec order by global index (so the merged
// aggregates are bit-identical to a single-process run regardless of shard
// count or completion order), then the refinement round runs here, against
// the merged main aggregate. Shards must jointly cover every index exactly
// once — a missing or duplicated index is a programming error and panics.
//
// When the outputs came over the wire (no in-process runner), the merge
// re-prepares locally: recording and generation are deterministic, so the
// regenerated specs are the ones the shards ran.
func MergeShardOutputs(cfg Config, shards []*ShardOutput) *Output {
	cfg = cfg.withDefaults()

	var p *prepared
	for _, s := range shards {
		if s.prep != nil {
			p = s.prep
			break
		}
	}
	if p == nil {
		p = prepare(cfg)
	}

	out := &Output{
		Main:           NewAggregate(),
		Refinement:     NewAggregate(),
		FieldsRecorded: p.fieldsRecorded,
		Runner:         p.runner,
	}

	mainRes := make([]*Result, len(p.mainSpecs))
	propRes := make([]*Result, len(p.propSpecs))
	for _, s := range shards {
		if s.MainTotal != len(p.mainSpecs) || s.PropTotal != len(p.propSpecs) {
			panic(fmt.Sprintf("campaign: shard %d/%d generated %d/%d specs, merge generated %d/%d — configs differ",
				s.ShardIndex, s.Shards, s.MainTotal, s.PropTotal, len(p.mainSpecs), len(p.propSpecs)))
		}
		for _, sr := range s.Main {
			if sr.Index < 0 || sr.Index >= len(mainRes) || mainRes[sr.Index] != nil {
				panic(fmt.Sprintf("campaign: bad or duplicate main index %d from shard %d", sr.Index, s.ShardIndex))
			}
			mainRes[sr.Index] = sr.result(p.mainSpecs[sr.Index])
		}
		for _, sr := range s.Prop {
			if sr.Index < 0 || sr.Index >= len(propRes) || propRes[sr.Index] != nil {
				panic(fmt.Sprintf("campaign: bad or duplicate prop index %d from shard %d", sr.Index, s.ShardIndex))
			}
			propRes[sr.Index] = sr.result(p.propSpecs[sr.Index])
		}
	}
	for i, res := range mainRes {
		if res == nil {
			panic(fmt.Sprintf("campaign: main index %d not covered by any shard", i))
		}
		out.Main.Add(res)
	}

	workers := resolveParallelism(cfg.Parallelism)
	if !cfg.SkipRefinement {
		refineSpecs := refinementSpecs(cfg, out.Main)
		progress := newProgressTicker(len(refineSpecs), cfg.Progress)
		for _, res := range runAll(refineSpecs, workers, p.runner, (*Worker).Run, progress.tick) {
			out.Refinement.Add(res)
		}
	}

	if !cfg.SkipPropagation {
		cells := make(map[string]*PropagationCell)
		for i, spec := range p.propSpecs {
			res := propRes[i]
			if res == nil {
				panic(fmt.Sprintf("campaign: prop index %d not covered by any shard", i))
			}
			key := string(spec.Workload) + "/" + spec.Injection.SourcePrefix
			cell, ok := cells[key]
			if !ok {
				cell = &PropagationCell{Workload: spec.Workload, Component: spec.Injection.SourcePrefix}
				cells[key] = cell
			}
			cell.Injected++
			if res.PropPersisted {
				cell.Propagated++
			}
			if res.PropErrored {
				cell.Errored++
			}
		}
		for _, wl := range cfg.Workloads {
			for _, component := range PropagationComponents() {
				if cell, ok := cells[string(wl)+"/"+component]; ok {
					out.Propagation = append(out.Propagation, *cell)
				}
			}
		}
	}
	return out
}
