package campaign_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/mutiny-sim/mutiny/internal/campaign"
	"github.com/mutiny-sim/mutiny/internal/report"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// renderAll renders every golden table an Output feeds, so byte-comparing
// the result checks OF/CF classifications, refinement, propagation, and the
// HA windows at once.
func renderAll(t *testing.T, out *campaign.Output) []byte {
	t.Helper()
	var buf bytes.Buffer
	report.Table3(&buf, out.Main)
	report.Table4(&buf, out.Main)
	report.Table5(&buf, out.Main)
	report.Table4(&buf, out.Refinement)
	report.Table6(&buf, out.Propagation)
	report.HATable(&buf, out.Main)
	return buf.Bytes()
}

// TestShardingIsBitIdentical: the index-ordered merge of shards ∈ {1, 2, 4}
// must be bit-identical to the sequential single-process run — same golden
// tables, same OF/CF classifications, same propagation cells. Each shard
// output takes a JSON round trip before merging, exactly as it would
// crossing the process boundary in the multi-process driver (so the tagged
// wire values are exercised, and the merge is forced to regenerate specs).
func TestShardingIsBitIdentical(t *testing.T) {
	base := campaign.Config{
		Workloads:      []workload.Kind{workload.Deploy, workload.ScaleUp},
		GoldenRuns:     3,
		SampleStride:   101,
		ShareBootstrap: true,
	}

	seq := base
	seq.Parallelism = 1
	ref := campaign.RunCampaign(seq)
	refTables := renderAll(t, ref)
	if ref.Main.Total() == 0 {
		t.Fatal("reference campaign ran zero main experiments; the test is vacuous")
	}

	for _, shards := range []int{1, 2, 4} {
		outs := make([]*campaign.ShardOutput, shards)
		for i := 0; i < shards; i++ {
			cfg := base
			cfg.Parallelism = 2
			cfg.Shards, cfg.ShardIndex = shards, i
			so := campaign.RunShard(cfg)

			// Simulate the process boundary: serialize, then decode into a
			// fresh ShardOutput with no in-process state attached.
			blob, err := json.Marshal(so)
			if err != nil {
				t.Fatalf("shards=%d: marshal shard %d: %v", shards, i, err)
			}
			decoded := new(campaign.ShardOutput)
			if err := json.Unmarshal(blob, decoded); err != nil {
				t.Fatalf("shards=%d: unmarshal shard %d: %v", shards, i, err)
			}
			outs[i] = decoded
		}
		cfg := base
		cfg.Parallelism = 2
		cfg.Shards = shards
		merged := campaign.MergeShardOutputs(cfg, outs)

		if !reflect.DeepEqual(ref.Main, merged.Main) {
			t.Errorf("shards=%d: Main aggregate diverged (%d vs %d results)", shards, ref.Main.Total(), merged.Main.Total())
		}
		if !reflect.DeepEqual(ref.Refinement, merged.Refinement) {
			t.Errorf("shards=%d: Refinement aggregate diverged (%d vs %d results)", shards, ref.Refinement.Total(), merged.Refinement.Total())
		}
		if !reflect.DeepEqual(ref.Propagation, merged.Propagation) {
			t.Errorf("shards=%d: Propagation cells diverged:\n  ref=%+v\n  got=%+v", shards, ref.Propagation, merged.Propagation)
		}
		if !reflect.DeepEqual(ref.FieldsRecorded, merged.FieldsRecorded) {
			t.Errorf("shards=%d: FieldsRecorded diverged: %v vs %v", shards, ref.FieldsRecorded, merged.FieldsRecorded)
		}
		if got := renderAll(t, merged); !bytes.Equal(refTables, got) {
			t.Errorf("shards=%d: rendered golden tables diverged from the sequential run", shards)
		}
	}
}

// TestShardIndicesPartition: every index lands in exactly one shard.
func TestShardIndicesPartition(t *testing.T) {
	base := campaign.Config{
		Workloads:      []workload.Kind{workload.Deploy},
		GoldenRuns:     3,
		SampleStride:   251,
		SkipRefinement: true,
		ShareBootstrap: true,
		Parallelism:    1,
	}
	const shards = 3
	seen := make(map[int]int)
	var mainTotal int
	for i := 0; i < shards; i++ {
		cfg := base
		cfg.Shards, cfg.ShardIndex = shards, i
		so := campaign.RunShard(cfg)
		mainTotal = so.MainTotal
		for _, sr := range so.Main {
			seen[sr.Index]++
			if sr.Index%shards != i {
				t.Errorf("index %d ran in shard %d, want shard %d", sr.Index, i, sr.Index%shards)
			}
		}
	}
	if len(seen) != mainTotal {
		t.Fatalf("shards covered %d of %d main indices", len(seen), mainTotal)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("index %d ran %d times", idx, n)
		}
	}
}
