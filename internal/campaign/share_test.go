package campaign

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/mutiny-sim/mutiny/internal/classify"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// The shared-bootstrap fast path must preserve the campaign's scientific
// output. The equivalence contract, spec by spec (both regimes generate the
// identical campaign, so results align by index):
//
//   - OF classifications are identical for every deterministic fault
//     (BitFlip / SetValue / DropMessage tamper a chosen field or message —
//     the fault is the same in both regimes).
//   - CF classifications are identical except flips involving HRT, the one
//     category defined purely by thresholding a continuous statistic (the
//     client z-score against the regime's own golden distribution): an
//     experiment whose client impact rides the threshold can land on either
//     side, exactly as it can between two different seeds. Such flips must
//     be rare (bounded below) and must stay invisible at table granularity
//     (per-cell counts within a small tolerance).
//   - FlipProtoByte faults corrupt a byte chosen from the experiment's RNG
//     stream; the regimes run different streams by design (that is the seed
//     split), so they execute literally different corruptions — per-spec
//     equality is no better defined than between two different seeds. They
//     are covered by the table-level comparison only.
//   - Propagation cells (Table VI) are identical.
func TestShareBootstrapEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two multi-experiment campaigns")
	}
	base := Config{
		GoldenRuns:   8,
		SampleStride: 60,
		Parallelism:  1,
	}
	replay := base
	shared := base
	shared.ShareBootstrap = true

	a := RunCampaign(replay)
	b := RunCampaign(shared)

	if a.Main.Total() == 0 {
		t.Fatal("campaign ran zero experiments; the test is vacuous")
	}
	compareResults(t, "main", a.Main, b.Main)
	compareResults(t, "refinement", a.Refinement, b.Refinement)
	if !reflect.DeepEqual(a.Propagation, b.Propagation) {
		t.Errorf("propagation cells diverged:\n  replay=%+v\n  shared=%+v", a.Propagation, b.Propagation)
	}
}

// maxTieShare bounds the tolerated HRT-involved CF flips as a fraction of
// compared specs; beyond it the regimes genuinely disagree.
const maxTieShare = 0.05

// cellTolerance bounds how far any per-(workload, group, classification)
// table cell may drift between regimes: the HRT ties and randomized faults
// must stay invisible at table granularity.
const cellTolerance = 2

func compareResults(t *testing.T, label string, wa, wb *Aggregate) {
	t.Helper()
	if len(wa.Results) != len(wb.Results) {
		t.Fatalf("%s: experiment counts diverged: %d vs %d", label, len(wa.Results), len(wb.Results))
	}
	ties := 0
	for i := range wa.Results {
		ra, rb := wa.Results[i], wb.Results[i]
		if ra.Spec.Workload != rb.Spec.Workload || ra.Spec.Seed != rb.Spec.Seed ||
			!reflect.DeepEqual(ra.Spec.Injection, rb.Spec.Injection) {
			t.Fatalf("%s: spec %d differs between campaigns: %+v vs %+v", label, i, ra.Spec, rb.Spec)
		}
		if ra.Spec.Injection != nil && ra.Spec.Injection.Type == inject.FlipProtoByte {
			continue // randomized fault: different corruption per regime by design
		}
		desc := fmt.Sprintf("%s spec %d (%s %s)", label, i, ra.Spec.Workload, injLabel(ra.Spec))
		if ra.OF != rb.OF {
			t.Errorf("%s: OF diverged: replay=%s shared=%s", desc, ra.OF, rb.OF)
		}
		if ra.CF != rb.CF {
			if ra.CF != classify.CFHRT && rb.CF != classify.CFHRT {
				t.Errorf("%s: CF diverged: replay=%s (z=%.2f) shared=%s (z=%.2f)", desc, ra.CF, ra.Z, rb.CF, rb.Z)
				continue
			}
			ties++
		}
	}
	if max := int(maxTieShare * float64(len(wa.Results))); ties > max {
		t.Errorf("%s: %d HRT-threshold CF flips out of %d specs (max tolerated %d)", label, ties, len(wa.Results), max)
	}
	compareCells(t, label+" Table IV (OF)", ofCells(wa), ofCells(wb))
	compareCells(t, label+" Table V (CF)", cfCells(wa), cfCells(wb))
}

// ofCells and cfCells flatten the aggregate's table maps into comparable
// cell counts.
func ofCells(a *Aggregate) map[string]int {
	out := make(map[string]int)
	for wl, groups := range a.OFCounts {
		for group, counts := range groups {
			for of, n := range counts {
				out[fmt.Sprintf("%s|%s|%s", wl, group, of)] = n
			}
		}
	}
	return out
}

func cfCells(a *Aggregate) map[string]int {
	out := make(map[string]int)
	for wl, groups := range a.CFCounts {
		for group, counts := range groups {
			for cf, n := range counts {
				out[fmt.Sprintf("%s|%s|%s", wl, group, cf)] = n
			}
		}
	}
	return out
}

func compareCells(t *testing.T, label string, want, got map[string]int) {
	t.Helper()
	keys := make(map[string]bool)
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	for k := range keys {
		if d := got[k] - want[k]; d > cellTolerance || d < -cellTolerance {
			t.Errorf("%s cell %s drifted: replay=%d shared=%d", label, k, want[k], got[k])
		}
	}
}

func injLabel(s Spec) string {
	if s.Injection == nil {
		return "golden"
	}
	return s.Injection.Label()
}

// Forked experiments must be as deterministic as replayed ones: the same
// spec through the same Runner twice — and through a second Runner with its
// own snapshot — yields the same verdict.
func TestShareBootstrapDeterministic(t *testing.T) {
	spec := Spec{Workload: workload.Deploy, Seed: 5151, Injection: &inject.Injection{
		Channel: inject.ChannelStore, Kind: spec.KindDeployment,
		FieldPath: "spec.replicas", Type: inject.BitFlip, Bit: 0, Occurrence: 1,
	}}
	newRunner := func() *Runner {
		r := NewRunner()
		r.GoldenRuns = 5
		r.ShareBootstrap = true
		return r
	}
	r1 := newRunner()
	a := r1.Run(spec)
	b := r1.Run(spec)
	c := newRunner().Run(spec)
	for i, other := range []*Result{b, c} {
		if a.OF != other.OF || a.CF != other.CF || a.Z != other.Z ||
			a.PodsCreated != other.PodsCreated || a.Report != other.Report {
			t.Fatalf("forked run %d diverged:\n  a=%+v\n  other=%+v", i, a, other)
		}
	}
}

// The shared-bootstrap path must stay bit-identical across worker counts,
// like the replay path: forks are isolated deterministic simulations, the
// snapshot is built once behind a per-kind guard, and results merge in
// generated order.
func TestShareBootstrapParallelDeterministic(t *testing.T) {
	base := Config{
		Workloads:      []workload.Kind{workload.Deploy, workload.ScaleUp},
		GoldenRuns:     3,
		SampleStride:   101,
		ShareBootstrap: true,
	}
	seq := base
	seq.Parallelism = 1
	par := base
	par.Parallelism = 8

	a := RunCampaign(seq)
	b := RunCampaign(par)
	if a.Main.Total() == 0 {
		t.Fatal("campaign ran zero experiments")
	}
	if !reflect.DeepEqual(a.Main, b.Main) {
		t.Errorf("Main aggregate diverged across worker counts")
	}
	if !reflect.DeepEqual(a.Refinement, b.Refinement) {
		t.Errorf("Refinement aggregate diverged across worker counts")
	}
	if !reflect.DeepEqual(a.Propagation, b.Propagation) {
		t.Errorf("Propagation cells diverged across worker counts")
	}
}

// The §V-C2 refinement round must honor Config.SampleStride: a strided
// smoke campaign subsamples the value-set round like every other generated
// spec list instead of running it in full.
func TestRefinementRespectsSampleStride(t *testing.T) {
	agg := NewAggregate()
	for i := 0; i < 3; i++ {
		in := &inject.Injection{
			Channel: inject.ChannelStore, Kind: spec.KindPod,
			FieldPath: fmt.Sprintf("spec.nodeName%d", i),
			Type:      inject.SetValue, Value: "ghost", Occurrence: 1,
		}
		agg.Add(&Result{Spec: Spec{Workload: workload.Deploy, Injection: in}, OF: classify.OFSta})
	}
	cfg := Config{Workloads: []workload.Kind{workload.Deploy}, SampleStride: 1}
	full := refinementSpecs(cfg, agg)
	if len(full) < 4 {
		t.Fatalf("synthetic aggregate generated too few refinement specs (%d) to exercise striding", len(full))
	}
	cfg.SampleStride = 3
	strided := refinementSpecs(cfg, agg)
	want := (len(full) + 2) / 3
	if len(strided) != want {
		t.Fatalf("stride 3 kept %d of %d refinement specs, want %d", len(strided), len(full), want)
	}
	for i, s := range strided {
		if !reflect.DeepEqual(s, full[i*3]) {
			t.Fatalf("strided spec %d is not the %d-th generated spec", i, i*3)
		}
	}
}
