package campaign

import (
	"sync"
	"sync/atomic"

	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// Process-wide bootstrap-snapshot cache.
//
// A settled bootstrap snapshot depends only on (cluster.Config, workload
// kind): the capture always runs under the workload's canonical bootstrap
// seed, so two Runners with equal configs would build byte-identical
// snapshots — and before this cache, each Runner (and every benchmark that
// constructs a fresh Runner) re-simulated the same ~20 s bootstrap to get
// one. The cache keys on cluster.Config.Fingerprint() plus the workload kind
// and shares the resulting immutable Snapshot across all Runners in the
// process. Snapshots are cheap to retain (their store values alias the
// copy-on-write arrays) and safe to share (Fork is concurrent-safe and never
// mutates the snapshot), so entries live for the process lifetime;
// ClearSnapshotCache exists for tests and long-lived embedders.
//
// The cache is read-mostly in the extreme — a handful of inserts at campaign
// start, then lookups forever — so the map is published through an atomic
// pointer as an immutable value: a lookup is one atomic load plus one map
// read, and workers racing on lookups never touch a lock or each other's
// cache lines. Inserts copy the map under a slow-path mutex and republish
// (copy-on-write); the entry's once still guards the actual capture, so
// concurrent Runners racing on the same key build it exactly once.

var (
	snapCache atomic.Pointer[map[string]*snapshotEntry]
	// snapCacheMu serializes the copy-and-republish writers (insert, clear).
	// Readers never take it.
	snapCacheMu sync.Mutex
)

func init() {
	m := make(map[string]*snapshotEntry)
	snapCache.Store(&m)
}

// sharedSnapshotEntry returns (creating if needed) the process-wide cache
// cell for a key. The fast path is lock-free; the insert path copies the
// published map, adds the cell, and republishes.
func sharedSnapshotEntry(key string) *snapshotEntry {
	if e, ok := (*snapCache.Load())[key]; ok {
		return e
	}
	snapCacheMu.Lock()
	defer snapCacheMu.Unlock()
	// Re-check under the lock: a concurrent insert may have published the
	// cell while we were waiting.
	cur := *snapCache.Load()
	if e, ok := cur[key]; ok {
		return e
	}
	next := make(map[string]*snapshotEntry, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	e := new(snapshotEntry)
	next[key] = e
	snapCache.Store(&next)
	return e
}

// snapshotCacheKey derives the cache key for a per-workload bootstrap
// capture. cfg must already carry the canonical bootstrap seed for kind (the
// seed participates in the fingerprint, which keeps distinct golden-seed
// bases from colliding should they ever diverge per kind).
func snapshotCacheKey(cfg cluster.Config, kind workload.Kind) string {
	return string(kind) + "\x00" + cfg.Fingerprint()
}

// SnapshotCacheSize reports the number of cached bootstrap snapshots
// (diagnostics and tests).
func SnapshotCacheSize() int {
	return len(*snapCache.Load())
}

// ClearSnapshotCache drops every cached bootstrap snapshot. Subsequent
// snapshot requests re-capture from scratch; captures already handed out
// remain valid (snapshots are immutable), so clearing can race active forks
// without invalidating them.
func ClearSnapshotCache() {
	snapCacheMu.Lock()
	defer snapCacheMu.Unlock()
	m := make(map[string]*snapshotEntry)
	snapCache.Store(&m)
}
