package campaign

import (
	"sync"

	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// Process-wide bootstrap-snapshot cache.
//
// A settled bootstrap snapshot depends only on (cluster.Config, workload
// kind): the capture always runs under the workload's canonical bootstrap
// seed, so two Runners with equal configs would build byte-identical
// snapshots — and before this cache, each Runner (and every benchmark that
// constructs a fresh Runner) re-simulated the same ~20 s bootstrap to get
// one. The cache keys on cluster.Config.Fingerprint() plus the workload kind
// and shares the resulting immutable Snapshot across all Runners in the
// process. Snapshots are cheap to retain (their store values alias the
// copy-on-write arrays) and safe to share (Fork is concurrent-safe and never
// mutates the snapshot), so entries live for the process lifetime;
// ClearSnapshotCache exists for tests and long-lived embedders.

var (
	snapCacheMu sync.Mutex
	snapCache   = make(map[string]*snapshotEntry)
)

// sharedSnapshotEntry returns (creating if needed) the process-wide cache
// cell for a key. The cell's once guards the actual capture, so concurrent
// Runners racing on the same key build it exactly once.
func sharedSnapshotEntry(key string) *snapshotEntry {
	snapCacheMu.Lock()
	defer snapCacheMu.Unlock()
	e, ok := snapCache[key]
	if !ok {
		e = new(snapshotEntry)
		snapCache[key] = e
	}
	return e
}

// snapshotCacheKey derives the cache key for a per-workload bootstrap
// capture. cfg must already carry the canonical bootstrap seed for kind (the
// seed participates in the fingerprint, which keeps distinct golden-seed
// bases from colliding should they ever diverge per kind).
func snapshotCacheKey(cfg cluster.Config, kind workload.Kind) string {
	return string(kind) + "\x00" + cfg.Fingerprint()
}

// SnapshotCacheSize reports the number of cached bootstrap snapshots
// (diagnostics and tests).
func SnapshotCacheSize() int {
	snapCacheMu.Lock()
	defer snapCacheMu.Unlock()
	return len(snapCache)
}

// ClearSnapshotCache drops every cached bootstrap snapshot. Subsequent
// snapshot requests re-capture from scratch; captures already handed out
// remain valid (snapshots are immutable).
func ClearSnapshotCache() {
	snapCacheMu.Lock()
	defer snapCacheMu.Unlock()
	snapCache = make(map[string]*snapshotEntry)
}
