package campaign

import (
	"bytes"
	"sync"
	"testing"

	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/store"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// storesEqual compares two captured backends item by item.
func storesEqual(t *testing.T, a, b *store.Snapshot) bool {
	t.Helper()
	if len(a.Replicas) != len(b.Replicas) {
		return false
	}
	for r := range a.Replicas {
		ra, rb := a.Replicas[r], b.Replicas[r]
		if ra.Rev != rb.Rev || ra.Size != rb.Size || len(ra.Items) != len(rb.Items) {
			return false
		}
		for i := range ra.Items {
			ia, ib := ra.Items[i], rb.Items[i]
			if ia.Key != ib.Key || ia.Kind != ib.Kind || ia.ModRev != ib.ModRev ||
				ia.CreateRev != ib.CreateRev || !bytes.Equal(ia.Value, ib.Value) {
				return false
			}
		}
	}
	return true
}

// TestSnapshotCacheSharesAcrossRunners: two Runners with identical configs
// must resolve to the same process-wide snapshot (one bootstrap simulated,
// not two), and a Runner with a differing config must not.
func TestSnapshotCacheSharesAcrossRunners(t *testing.T) {
	ClearSnapshotCache()
	defer ClearSnapshotCache()

	r1, r2 := NewRunner(), NewRunner()
	s1 := r1.snapshotFor(workload.Deploy)
	before := SnapshotCacheSize()
	s2 := r2.snapshotFor(workload.Deploy)
	if s1 != s2 {
		t.Fatal("identical configs resolved to different snapshots")
	}
	if SnapshotCacheSize() != before {
		t.Fatal("second Runner grew the cache instead of hitting it")
	}

	r3 := NewRunner()
	r3.ClusterConfig = cluster.Config{ControlPlaneReplicas: 3}
	if s3 := r3.snapshotFor(workload.Deploy); s3 == s1 {
		t.Fatal("differing config shared a cached snapshot")
	}
}

// TestSnapshotCacheForkEquivalence: forks of a cached snapshot must be
// byte-identical for equal seeds (across Runners sharing the cache entry)
// and must diverge for differing seeds.
func TestSnapshotCacheForkEquivalence(t *testing.T) {
	ClearSnapshotCache()
	defer ClearSnapshotCache()

	snapA := NewRunner().snapshotFor(workload.ScaleUp)
	snapB := NewRunner().snapshotFor(workload.ScaleUp)

	f1 := snapA.Fork(4242)
	f2 := snapB.Fork(4242)
	if f1.Loop.Now() != f2.Loop.Now() {
		t.Fatalf("same-seed forks resumed at different clocks: %v vs %v", f1.Loop.Now(), f2.Loop.Now())
	}
	if !storesEqual(t, store.CaptureSnapshot(f1.Backend), store.CaptureSnapshot(f2.Backend)) {
		t.Fatal("same-seed forks have diverging store contents")
	}
	// Drive both forks briefly: identical seeds must stay in lockstep.
	f1.Loop.RunUntil(f1.Loop.Now() + 2_000_000_000)
	f2.Loop.RunUntil(f2.Loop.Now() + 2_000_000_000)
	if !storesEqual(t, store.CaptureSnapshot(f1.Backend), store.CaptureSnapshot(f2.Backend)) {
		t.Fatal("same-seed forks diverged while running")
	}
	f1.Stop()
	f2.Stop()

	// Distinct seeds: the seed-random phase dither must separate the clocks
	// (that dither is exactly what keeps fork-mode golden variance honest).
	g1 := snapA.Fork(1)
	g2 := snapA.Fork(2)
	if g1.Loop.Now() == g2.Loop.Now() {
		t.Fatal("distinct-seed forks resumed at identical dithered clocks")
	}
	g1.Stop()
	g2.Stop()
}

// TestWorkerViewForkEquivalence: a fork of a worker's private snapshot view
// must be byte-identical to a fork of the shared snapshot for the same seed
// — the view changes memory ownership, never content.
func TestWorkerViewForkEquivalence(t *testing.T) {
	ClearSnapshotCache()
	defer ClearSnapshotCache()

	snap := NewRunner().snapshotFor(workload.ScaleUp)
	view := snap.WorkerView()

	f1 := snap.Fork(777)
	f2 := view.Fork(777)
	if f1.Loop.Now() != f2.Loop.Now() {
		t.Fatalf("view fork resumed at a different clock: %v vs %v", f1.Loop.Now(), f2.Loop.Now())
	}
	if !storesEqual(t, store.CaptureSnapshot(f1.Backend), store.CaptureSnapshot(f2.Backend)) {
		t.Fatal("view fork has diverging store contents")
	}
	f1.Loop.RunUntil(f1.Loop.Now() + 2_000_000_000)
	f2.Loop.RunUntil(f2.Loop.Now() + 2_000_000_000)
	if !storesEqual(t, store.CaptureSnapshot(f1.Backend), store.CaptureSnapshot(f2.Backend)) {
		t.Fatal("view fork diverged from snapshot fork while running")
	}
	f1.Stop()
	f2.Stop()
}

// TestSnapshotCacheConcurrentRunners: Runners racing on a cold cache must
// resolve to one shared capture (the bootstrap simulates exactly once) with
// no data race on the published map.
func TestSnapshotCacheConcurrentRunners(t *testing.T) {
	ClearSnapshotCache()
	defer ClearSnapshotCache()

	const n = 4
	snaps := make([]*cluster.Snapshot, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snaps[i] = NewRunner().snapshotFor(workload.Deploy)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("runner %d captured a private snapshot despite the shared cache", i)
		}
	}
	if SnapshotCacheSize() != 1 {
		t.Fatalf("cache size = %d after concurrent capture, want 1", SnapshotCacheSize())
	}
}

// TestClearSnapshotCacheRacesActiveForks: clearing the cache must never
// invalidate snapshots already handed out — workers keep forking (and their
// forks keep running) while another goroutine clears and repopulates the
// published map.
func TestClearSnapshotCacheRacesActiveForks(t *testing.T) {
	ClearSnapshotCache()
	defer ClearSnapshotCache()

	snap := NewRunner().snapshotFor(workload.Deploy)

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() { // churn the published map: clear + insert, repeatedly
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ClearSnapshotCache()
			sharedSnapshotEntry("probe")
			if SnapshotCacheSize() == 0 {
				t.Error("probe entry missing right after insert")
				return
			}
		}
	}()

	const workers, forksEach = 3, 3
	var forkers sync.WaitGroup
	for g := 0; g < workers; g++ {
		forkers.Add(1)
		go func(g int) {
			defer forkers.Done()
			for i := 0; i < forksEach; i++ {
				f := snap.Fork(int64(1000*g + i))
				f.Loop.RunUntil(f.Loop.Now() + 500_000_000)
				f.Stop()
			}
		}(g)
	}
	forkers.Wait()
	close(stop)
	churn.Wait()
}
