package campaign

import (
	"bytes"
	"testing"

	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/store"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// storesEqual compares two captured backends item by item.
func storesEqual(t *testing.T, a, b *store.Snapshot) bool {
	t.Helper()
	if len(a.Replicas) != len(b.Replicas) {
		return false
	}
	for r := range a.Replicas {
		ra, rb := a.Replicas[r], b.Replicas[r]
		if ra.Rev != rb.Rev || ra.Size != rb.Size || len(ra.Items) != len(rb.Items) {
			return false
		}
		for i := range ra.Items {
			ia, ib := ra.Items[i], rb.Items[i]
			if ia.Key != ib.Key || ia.Kind != ib.Kind || ia.ModRev != ib.ModRev ||
				ia.CreateRev != ib.CreateRev || !bytes.Equal(ia.Value, ib.Value) {
				return false
			}
		}
	}
	return true
}

// TestSnapshotCacheSharesAcrossRunners: two Runners with identical configs
// must resolve to the same process-wide snapshot (one bootstrap simulated,
// not two), and a Runner with a differing config must not.
func TestSnapshotCacheSharesAcrossRunners(t *testing.T) {
	ClearSnapshotCache()
	defer ClearSnapshotCache()

	r1, r2 := NewRunner(), NewRunner()
	s1 := r1.snapshotFor(workload.Deploy)
	before := SnapshotCacheSize()
	s2 := r2.snapshotFor(workload.Deploy)
	if s1 != s2 {
		t.Fatal("identical configs resolved to different snapshots")
	}
	if SnapshotCacheSize() != before {
		t.Fatal("second Runner grew the cache instead of hitting it")
	}

	r3 := NewRunner()
	r3.ClusterConfig = cluster.Config{ControlPlaneReplicas: 3}
	if s3 := r3.snapshotFor(workload.Deploy); s3 == s1 {
		t.Fatal("differing config shared a cached snapshot")
	}
}

// TestSnapshotCacheForkEquivalence: forks of a cached snapshot must be
// byte-identical for equal seeds (across Runners sharing the cache entry)
// and must diverge for differing seeds.
func TestSnapshotCacheForkEquivalence(t *testing.T) {
	ClearSnapshotCache()
	defer ClearSnapshotCache()

	snapA := NewRunner().snapshotFor(workload.ScaleUp)
	snapB := NewRunner().snapshotFor(workload.ScaleUp)

	f1 := snapA.Fork(4242)
	f2 := snapB.Fork(4242)
	if f1.Loop.Now() != f2.Loop.Now() {
		t.Fatalf("same-seed forks resumed at different clocks: %v vs %v", f1.Loop.Now(), f2.Loop.Now())
	}
	if !storesEqual(t, store.CaptureSnapshot(f1.Backend), store.CaptureSnapshot(f2.Backend)) {
		t.Fatal("same-seed forks have diverging store contents")
	}
	// Drive both forks briefly: identical seeds must stay in lockstep.
	f1.Loop.RunUntil(f1.Loop.Now() + 2_000_000_000)
	f2.Loop.RunUntil(f2.Loop.Now() + 2_000_000_000)
	if !storesEqual(t, store.CaptureSnapshot(f1.Backend), store.CaptureSnapshot(f2.Backend)) {
		t.Fatal("same-seed forks diverged while running")
	}
	f1.Stop()
	f2.Stop()

	// Distinct seeds: the seed-random phase dither must separate the clocks
	// (that dither is exactly what keeps fork-mode golden variance honest).
	g1 := snapA.Fork(1)
	g2 := snapA.Fork(2)
	if g1.Loop.Now() == g2.Loop.Now() {
		t.Fatal("distinct-seed forks resumed at identical dithered clocks")
	}
	g1.Stop()
	g2.Stop()
}
