package campaign

import (
	"testing"

	"github.com/mutiny-sim/mutiny/internal/netsim"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// topologyWindowTolerance bounds how far one experiment's measured disruption
// or recovery window may drift between the replay and shared-bootstrap
// regimes: the collector samples topology state every 3 s, so one-and-a-half
// sample periods absorbs alignment skew without hiding a genuinely different
// window.
const topologyWindowTolerance = 4500.0

// The topology table must be regime-independent: parallel forked workers on a
// zoned cluster produce the same per-(fault axis, zone) statistics as
// sequential replay. Zone membership is ordinary cluster state (node labels),
// so a forked snapshot re-learns it through the normal Prime re-list, and the
// fault timers are fixed offsets from the measurement window — disruption and
// recovery windows must agree to within sampling tolerance, spec by spec.
func TestTopologyShareBootstrapEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the topology fault matrix under two regimes")
	}
	const zones = 3
	specs := GenerateTopology(workload.Failover, zones)
	if len(specs) == 0 {
		t.Fatal("GenerateTopology produced no specs; the test is vacuous")
	}

	newRunner := func(share bool) *Runner {
		r := NewRunner()
		r.GoldenRuns = 5
		r.ShareBootstrap = share
		r.ClusterConfig.Zones = zones
		return r
	}

	// Sequential replay: every experiment replays bootstrap on one goroutine.
	replayRunner := newRunner(false)
	replay := make([]*Result, len(specs))
	for i, s := range specs {
		replay[i] = replayRunner.Run(s)
	}

	// Shared bootstrap across 8 forked workers: each worker forks its
	// experiment cluster from the cached per-workload snapshot.
	shared := runAll(specs, 8, newRunner(true), (*Worker).Run, nil)

	aggReplay, aggShared := NewAggregate(), NewAggregate()
	for i := range specs {
		ra, rb := replay[i], shared[i]
		desc := specs[i].Injection.Label()
		for _, res := range []*Result{ra, rb} {
			if !res.Report.Fired || !res.Report.Healed {
				t.Fatalf("spec %d (%s): fault did not fire+heal: %+v", i, desc, res.Report)
			}
		}
		if d := ra.TopologyDisruptionMillis - rb.TopologyDisruptionMillis; d > topologyWindowTolerance || d < -topologyWindowTolerance {
			t.Errorf("spec %d (%s): disruption diverged: replay=%.0fms shared=%.0fms",
				i, desc, ra.TopologyDisruptionMillis, rb.TopologyDisruptionMillis)
		}
		if d := ra.TopologyRecoveryMillis - rb.TopologyRecoveryMillis; d > topologyWindowTolerance || d < -topologyWindowTolerance {
			t.Errorf("spec %d (%s): recovery diverged: replay=%.0fms shared=%.0fms",
				i, desc, ra.TopologyRecoveryMillis, rb.TopologyRecoveryMillis)
		}
		aggReplay.Add(ra)
		aggShared.Add(rb)
	}

	// Table granularity: both regimes populate the same (fault, zone) cells
	// with the same experiment counts.
	for _, fault := range TopologyFaults() {
		for z := 1; z < zones; z++ {
			k := TopologyKey{Fault: fault, Zone: netsim.ZoneName(z, zones)}
			if na, nb := len(aggReplay.DisruptionByTopology[k]), len(aggShared.DisruptionByTopology[k]); na != nb || na == 0 {
				t.Errorf("cell %s/%s: experiment counts diverged or empty: replay=%d shared=%d",
					fault, k.Zone, na, nb)
			}
		}
	}
}
