package campaign

import (
	"bytes"
	"sync"
	"testing"

	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// TestSealedWireBytesAlwaysMatchEncoding extends the seal-contract guard to
// the encode cache: every sealed object that carries cached wire bytes must
// carry EXACTLY the bytes a fresh codec.Marshal of that object produces, with
// a status offset that agrees with a real scan of those bytes. The hook
// checksums at seal time and the test re-verifies after full experiments on
// both execution regimes — so a stale splice prefix, a missed invalidation,
// or a consumer scribbling on the cached array would all surface as a
// wire-vs-encoding divergence somewhere in the campaign's traffic.
func TestSealedWireBytesAlwaysMatchEncoding(t *testing.T) {
	ClearSnapshotCache()
	defer ClearSnapshotCache()

	type cached struct {
		obj  spec.Object
		wire []byte
	}
	const maxTracked = 200_000
	var (
		mu       sync.Mutex
		tracked  []cached
		withWire int
		dropped  int
	)
	spec.RegisterSealHook(func(o spec.Object) {
		w, off := o.Meta().WireBytes()
		if w == nil {
			return
		}
		mu.Lock()
		withWire++
		ok := len(tracked) < maxTracked
		if ok {
			tracked = append(tracked, cached{obj: o, wire: w})
		} else {
			dropped++
		}
		mu.Unlock()
		if !ok {
			return
		}
		// The offset must delimit the real metadata+spec prefix, checked
		// here while the seal is fresh.
		if got, okScan := codec.StatusOffset(w); !okScan || got != off {
			m := o.Meta()
			t.Errorf("sealed %s %s/%s (rv %d): cached status offset %d, real scan says %d (ok=%v)",
				o.Kind(), m.Namespace, m.Name, m.ResourceVersion, off, got, okScan)
		}
	})
	defer spec.RegisterSealHook(nil)

	// Heavy status-write traffic: the template-label corruption drives
	// uncontrolled replication on top of the golden runs' nominal churn.
	in := inject.Injection{
		Channel: inject.ChannelStore, Kind: spec.KindReplicaSet,
		FieldPath: "spec.template.labels[app]",
		Type:      inject.SetValue, Value: "mislabeled", Occurrence: 2,
	}
	for _, share := range []bool{false, true} {
		runner := NewRunner()
		runner.GoldenRuns = 3
		runner.Parallelism = 4
		runner.ShareBootstrap = share
		inCopy := in
		if res := runner.Run(Spec{Workload: workload.Deploy, Seed: 7200, Injection: &inCopy}); res == nil {
			t.Fatalf("share=%v: experiment produced no result", share)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if withWire == 0 {
		t.Fatal("no sealed object carried wire bytes — the encode cache is not active")
	}
	if dropped > 0 {
		t.Logf("note: %d wire-carrying seals beyond the tracking bound were not verified", dropped)
	}
	violations := 0
	for _, c := range tracked {
		b, err := codec.Marshal(c.obj)
		if err != nil || !bytes.Equal(b, c.wire) {
			violations++
			if violations <= 5 {
				m := c.obj.Meta()
				t.Errorf("sealed %s %s/%s (rv %d): cached wire differs from a fresh Marshal",
					c.obj.Kind(), m.Namespace, m.Name, m.ResourceVersion)
			}
		}
	}
	if violations > 0 {
		t.Fatalf("%d of %d cached wire encodings diverged from their objects", violations, len(tracked))
	}
	t.Logf("verified %d cached wire encodings exact", len(tracked))
}
