package classify

// Baseline summarizes a set of golden-run observations for one workload:
// the reference the classifiers compare every injected run against.
type Baseline struct {
	// Steady-state envelopes across golden runs.
	FinalReadyMin, FinalReadyMax         int64
	FinalEndpointsMin, FinalEndpointsMax int
	MaxReadyMax                          int64
	MaxEndpointsMax                      int
	CreatedMin, CreatedMax               int

	// Startup-time distribution (kbench stats).
	WorstStartupMean, WorstStartupStd float64
	LastCreationMean, LastCreationStd float64

	// Client latency baseline.
	MeanSeries      []float64
	MAEMean, MAEStd float64
	TrailingFailMax int
	LeadingFailMax  int
	ScatteredMax    int
}

// BuildBaseline aggregates golden observations ("for each workload, we
// collected data from 100 golden runs without any faults/errors injected").
func BuildBaseline(golden []*Observation) *Baseline {
	b := &Baseline{}
	if len(golden) == 0 {
		return b
	}
	var worst, last []float64
	var series [][]float64
	b.FinalReadyMin = golden[0].FinalReady()
	b.FinalEndpointsMin = golden[0].FinalEndpoints()
	b.CreatedMin = golden[0].PodsCreated
	for _, o := range golden {
		fr, fe := o.FinalReady(), o.FinalEndpoints()
		if fr < b.FinalReadyMin {
			b.FinalReadyMin = fr
		}
		if fr > b.FinalReadyMax {
			b.FinalReadyMax = fr
		}
		if fe < b.FinalEndpointsMin {
			b.FinalEndpointsMin = fe
		}
		if fe > b.FinalEndpointsMax {
			b.FinalEndpointsMax = fe
		}
		if mr := o.MaxReady(); mr > b.MaxReadyMax {
			b.MaxReadyMax = mr
		}
		if me := o.MaxEndpoints(); me > b.MaxEndpointsMax {
			b.MaxEndpointsMax = me
		}
		if o.PodsCreated < b.CreatedMin {
			b.CreatedMin = o.PodsCreated
		}
		if o.PodsCreated > b.CreatedMax {
			b.CreatedMax = o.PodsCreated
		}
		if o.TrailingFailures > b.TrailingFailMax {
			b.TrailingFailMax = o.TrailingFailures
		}
		if o.LeadingFailures > b.LeadingFailMax {
			b.LeadingFailMax = o.LeadingFailures
		}
		if o.ScatteredErrors > b.ScatteredMax {
			b.ScatteredMax = o.ScatteredErrors
		}
		worst = append(worst, o.WorstStartupMS)
		last = append(last, o.LastCreationMS)
		series = append(series, o.Series)
	}
	b.WorstStartupMean, b.WorstStartupStd = Mean(worst), Std(worst)
	b.LastCreationMean, b.LastCreationStd = Mean(last), Std(last)
	b.MeanSeries = MeanSeries(series)
	var maes []float64
	for _, s := range series {
		maes = append(maes, MAE(s, b.MeanSeries))
	}
	b.MAEMean, b.MAEStd = Mean(maes), Std(maes)

	// Floor the deviations at a sampling tolerance: a finite golden set can
	// under-estimate the true spread (in the extreme, identical runs give a
	// zero deviation and every z-score diverges).
	b.WorstStartupStd = floorStd(b.WorstStartupStd, b.WorstStartupMean, 100)
	b.LastCreationStd = floorStd(b.LastCreationStd, b.LastCreationMean, 100)
	b.MAEStd = floorStd(b.MAEStd, b.MAEMean, 0.05)
	return b
}

// floorStd bounds a standard deviation below by 15% of the mean and an
// absolute minimum. Failure-induced shifts are an order of magnitude larger
// than this tolerance, so sensitivity is unaffected.
func floorStd(std, mean, min float64) float64 {
	if f := 0.15 * mean; std < f {
		std = f
	}
	if std < min {
		std = min
	}
	return std
}

// Thresholds for the classification rules.
const (
	startupZThreshold = 3.0
	clientZThreshold  = 2.0
	// uncontrolledSpawnSlack: pod creations beyond this over the golden
	// maximum count as uncontrolled replication.
	uncontrolledSpawnSlack = 15
	// suTrailingSlack: this many trailing failed requests (2 s at 20 req/s)
	// beyond the golden maximum mean the service died.
	suTrailingSlack = 40
	// iaScatterSlack: scattered non-timeout errors beyond golden.
	iaScatterSlack = 2
)

// ClassifyOF derives the orchestrator-level failure per §V-B, choosing the
// most severe matching category.
func ClassifyOF(o *Observation, b *Baseline) OF {
	appDead := o.TrailingFailures >= b.TrailingFailMax+suTrailingSlack

	// Out: all ReplicaSets unreachable (including Prometheus), DNS pods
	// failed, or networking pods failed and disrupted the service app.
	if (!o.PrometheusReachable && appDead) ||
		!o.DNSHealthy ||
		(o.NetworkPodsFailing && appDead) {
		return OFOut
	}

	// Sta: uncontrolled pod spawn, stuck control plane, or failed
	// networking pods (running services may still be fine).
	uncontrolled := o.PodsCreated > b.CreatedMax+uncontrolledSpawnSlack
	if uncontrolled || !o.ControlPlaneResponsive || o.StoreQuotaExceeded || o.NetworkPodsFailing {
		return OFSta
	}

	// Net: replicas and pods correct, but unreachable or unbalanced.
	readyOK := o.FinalReady() >= b.FinalReadyMin && o.FinalReady() <= b.FinalReadyMax
	if readyOK {
		endpointsLow := o.FinalEndpoints() < b.FinalEndpointsMin
		clientErrors := o.ScatteredErrors > b.ScatteredMax+iaScatterSlack ||
			o.TrailingFailures > b.TrailingFailMax+suTrailingSlack ||
			o.LeadingFailures > b.LeadingFailMax+suTrailingSlack
		if endpointsLow || clientErrors {
			return OFNet
		}
	}

	// MoR: more replicas, endpoints, or created pods than the baseline —
	// permanently or transiently.
	if o.FinalReady() > b.FinalReadyMax || o.MaxReady() > b.MaxReadyMax ||
		o.MaxEndpoints() > b.MaxEndpointsMax || o.PodsCreated > b.CreatedMax {
		return OFMoR
	}

	// LeR: stable and lower than the baseline.
	if o.Stable() && (o.FinalReady() < b.FinalReadyMin || o.FinalEndpoints() < b.FinalEndpointsMin) {
		return OFLeR
	}

	// Tim: a service pod restarted, or startup/creation z-scores above 3.
	if o.AppPodRestart ||
		ZScore(o.WorstStartupMS, b.WorstStartupMean, b.WorstStartupStd) > startupZThreshold ||
		ZScore(o.LastCreationMS, b.LastCreationMean, b.LastCreationStd) > startupZThreshold ||
		o.SchedulerRestart > 0 {
		return OFTim
	}
	// A non-stable tail that is low but still converging also reads as a
	// timing failure rather than LeR.
	if !o.Stable() && o.FinalReady() < b.FinalReadyMin {
		return OFTim
	}
	return OFNone
}

// ClientZ computes the client-impact z-score (Figure 5/6).
func ClientZ(o *Observation, b *Baseline) float64 {
	return ZScore(MAE(o.Series, b.MeanSeries), b.MAEMean, b.MAEStd)
}

// ClassifyCF derives the client-level failure (Table II), choosing the most
// severe matching category.
func ClassifyCF(o *Observation, b *Baseline) CF {
	if o.TrailingFailures >= b.TrailingFailMax+suTrailingSlack {
		return CFSU
	}
	if o.ScatteredErrors > b.ScatteredMax+iaScatterSlack {
		return CFIA
	}
	if ClientZ(o, b) > clientZThreshold {
		return CFHRT
	}
	return CFNSI
}
