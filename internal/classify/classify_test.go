package classify

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func goldenObs(ready int64, endpoints, created int, series []float64) *Observation {
	return &Observation{
		Samples: []Sample{
			{At: 0, ReadyReplicas: ready, Endpoints: endpoints},
			{At: 3 * time.Second, ReadyReplicas: ready, Endpoints: endpoints},
			{At: 6 * time.Second, ReadyReplicas: ready, Endpoints: endpoints},
		},
		PodsCreated:            created,
		WorstStartupMS:         2000,
		LastCreationMS:         1000,
		ControlPlaneResponsive: true,
		DNSHealthy:             true,
		PrometheusReachable:    true,
		Series:                 series,
	}
}

func flatSeries(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func testBaseline() *Baseline {
	var golden []*Observation
	for i := 0; i < 10; i++ {
		o := goldenObs(6, 6, 6, flatSeries(50+float64(i), 600))
		o.WorstStartupMS = 2000 + float64(i*50)
		o.LastCreationMS = 1000 + float64(i*10)
		golden = append(golden, o)
	}
	return BuildBaseline(golden)
}

func TestClassifyGoldenIsNone(t *testing.T) {
	b := testBaseline()
	o := goldenObs(6, 6, 6, flatSeries(54, 600))
	if got := ClassifyOF(o, b); got != OFNone {
		t.Fatalf("OF = %s, want No", got)
	}
	if got := ClassifyCF(o, b); got != CFNSI {
		t.Fatalf("CF = %s, want NSI", got)
	}
}

func TestClassifyLeR(t *testing.T) {
	b := testBaseline()
	o := goldenObs(4, 4, 6, flatSeries(54, 600))
	if got := ClassifyOF(o, b); got != OFLeR {
		t.Fatalf("OF = %s, want LeR", got)
	}
}

func TestClassifyMoR(t *testing.T) {
	b := testBaseline()
	o := goldenObs(9, 9, 9, flatSeries(54, 600))
	if got := ClassifyOF(o, b); got != OFMoR {
		t.Fatalf("OF = %s, want MoR", got)
	}
	// Transient over-provisioning (extra created pods, correct steady state).
	o2 := goldenObs(6, 6, 8, flatSeries(54, 600))
	if got := ClassifyOF(o2, b); got != OFMoR {
		t.Fatalf("transient OF = %s, want MoR", got)
	}
}

func TestClassifyNet(t *testing.T) {
	b := testBaseline()
	// Replicas correct but endpoints missing.
	o := goldenObs(6, 2, 6, flatSeries(54, 600))
	if got := ClassifyOF(o, b); got != OFNet {
		t.Fatalf("OF = %s, want Net", got)
	}
	// Replicas correct, endpoints correct, but scattered client errors.
	o2 := goldenObs(6, 6, 6, flatSeries(54, 600))
	o2.ScatteredErrors = 10
	if got := ClassifyOF(o2, b); got != OFNet {
		t.Fatalf("OF = %s, want Net (intermittent errors)", got)
	}
}

func TestClassifySta(t *testing.T) {
	b := testBaseline()
	// Uncontrolled pod spawn.
	o := goldenObs(6, 6, 600, flatSeries(54, 600))
	if got := ClassifyOF(o, b); got != OFSta {
		t.Fatalf("OF = %s, want Sta (uncontrolled spawn)", got)
	}
	// Stuck control plane.
	o2 := goldenObs(6, 6, 6, flatSeries(54, 600))
	o2.ControlPlaneResponsive = false
	if got := ClassifyOF(o2, b); got != OFSta {
		t.Fatalf("OF = %s, want Sta (control plane stuck)", got)
	}
	// Failed networking pods with the app still serving.
	o3 := goldenObs(6, 6, 6, flatSeries(54, 600))
	o3.NetworkPodsFailing = true
	if got := ClassifyOF(o3, b); got != OFSta {
		t.Fatalf("OF = %s, want Sta (network pods failing)", got)
	}
}

func TestClassifyOut(t *testing.T) {
	b := testBaseline()
	// DNS pods failed.
	o := goldenObs(6, 6, 6, flatSeries(54, 600))
	o.DNSHealthy = false
	if got := ClassifyOF(o, b); got != OFOut {
		t.Fatalf("OF = %s, want Out (DNS down)", got)
	}
	// Everything unreachable, including Prometheus.
	o2 := goldenObs(6, 6, 6, flatSeries(0, 600))
	o2.PrometheusReachable = false
	o2.TrailingFailures = 600
	if got := ClassifyOF(o2, b); got != OFOut {
		t.Fatalf("OF = %s, want Out (all unreachable)", got)
	}
	// Networking pods failing AND the app dead.
	o3 := goldenObs(6, 6, 6, flatSeries(0, 600))
	o3.NetworkPodsFailing = true
	o3.TrailingFailures = 300
	if got := ClassifyOF(o3, b); got != OFOut {
		t.Fatalf("OF = %s, want Out (network + app dead)", got)
	}
}

func TestClassifyTim(t *testing.T) {
	b := testBaseline()
	o := goldenObs(6, 6, 6, flatSeries(54, 600))
	o.AppPodRestart = true
	if got := ClassifyOF(o, b); got != OFTim {
		t.Fatalf("OF = %s, want Tim (pod restarted)", got)
	}
	o2 := goldenObs(6, 6, 6, flatSeries(54, 600))
	o2.WorstStartupMS = 60000 // z >> 3
	if got := ClassifyOF(o2, b); got != OFTim {
		t.Fatalf("OF = %s, want Tim (startup z)", got)
	}
	o3 := goldenObs(6, 6, 6, flatSeries(54, 600))
	o3.SchedulerRestart = 1
	if got := ClassifyOF(o3, b); got != OFTim {
		t.Fatalf("OF = %s, want Tim (scheduler restart)", got)
	}
}

func TestSeverityOrdering(t *testing.T) {
	// An observation matching several categories must take the most severe.
	b := testBaseline()
	o := goldenObs(4, 2, 600, flatSeries(54, 600)) // LeR + Net + Sta signals
	o.DNSHealthy = false                           // + Out
	if got := ClassifyOF(o, b); got != OFOut {
		t.Fatalf("OF = %s, want Out (most severe wins)", got)
	}
}

func TestClassifyCFSUAndIA(t *testing.T) {
	b := testBaseline()
	o := goldenObs(6, 6, 6, flatSeries(54, 600))
	o.TrailingFailures = 100
	if got := ClassifyCF(o, b); got != CFSU {
		t.Fatalf("CF = %s, want SU", got)
	}
	o2 := goldenObs(6, 6, 6, flatSeries(54, 600))
	o2.ScatteredErrors = 8
	if got := ClassifyCF(o2, b); got != CFIA {
		t.Fatalf("CF = %s, want IA", got)
	}
	// Higher response times: shift the series.
	o3 := goldenObs(6, 6, 6, flatSeries(120, 600))
	if got := ClassifyCF(o3, b); got != CFHRT {
		t.Fatalf("CF = %s, want HRT", got)
	}
}

func TestMAE(t *testing.T) {
	if got := MAE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("identical MAE = %f", got)
	}
	if got := MAE([]float64{2, 4}, []float64{1, 2}); got != 1.5 {
		t.Fatalf("MAE = %f, want 1.5", got)
	}
	// Shorter series are zero-padded.
	if got := MAE([]float64{2}, []float64{2, 4}); got != 2 {
		t.Fatalf("padded MAE = %f, want 2", got)
	}
	if got := MAE(nil, nil); got != 0 {
		t.Fatalf("empty MAE = %f", got)
	}
}

func TestStatsHelpers(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %f", got)
	}
	if got := Std(xs); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Std = %f, want 2", got)
	}
	if got := ZScore(9, 5, 2); got != 2 {
		t.Fatalf("ZScore = %f, want 2", got)
	}
	if got := ZScore(1, 1, 0); got != 0 {
		t.Fatalf("degenerate ZScore = %f, want 0", got)
	}
}

func TestMeanSeries(t *testing.T) {
	got := MeanSeries([][]float64{{2, 4}, {4, 8}})
	if len(got) != 2 || got[0] != 3 || got[1] != 6 {
		t.Fatalf("MeanSeries = %v", got)
	}
	// Ragged series extend with zeros.
	got = MeanSeries([][]float64{{2}, {4, 8}})
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("ragged MeanSeries = %v", got)
	}
}

// Property: MAE is symmetric and non-negative (on bounded latencies, which
// is the domain it is used on: milliseconds).
func TestPropertyMAE(t *testing.T) {
	bound := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = math.Mod(math.Abs(x), 10_000)
			if math.IsNaN(out[i]) {
				out[i] = 0
			}
		}
		return out
	}
	prop := func(a, b []float64) bool {
		x, y := bound(a), bound(b)
		m1, m2 := MAE(x, y), MAE(y, x)
		return m1 >= 0 && math.Abs(m1-m2) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestObservationAccessors(t *testing.T) {
	var empty Observation
	if empty.FinalReady() != 0 || empty.FinalEndpoints() != 0 || !empty.Stable() {
		t.Fatal("empty observation accessors broken")
	}
	o := Observation{Samples: []Sample{
		{ReadyReplicas: 2, Endpoints: 1},
		{ReadyReplicas: 8, Endpoints: 9},
		{ReadyReplicas: 4, Endpoints: 3},
	}}
	if o.MaxReady() != 8 || o.MaxEndpoints() != 9 {
		t.Fatalf("MaxReady/MaxEndpoints = %d/%d", o.MaxReady(), o.MaxEndpoints())
	}
	if o.FinalReady() != 4 || o.FinalEndpoints() != 3 {
		t.Fatal("final accessors broken")
	}
	if o.Stable() {
		t.Fatal("changing tail reported stable")
	}
}
