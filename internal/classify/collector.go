package classify

import (
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/netsim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

// samplePeriod mirrors the paper's 3-second metric scrape.
const samplePeriod = 3 * time.Second

// Collector gathers an Observation over one experiment window, playing the
// role of Prometheus + kube-state-metrics + the kbench statistics.
type Collector struct {
	cl    *cluster.Cluster
	admin *apiserver.Client

	windowStart  time.Duration
	lastSampleAt time.Duration
	obs          Observation

	podCreatedAt map[string]time.Duration // uid → creation observed
	podReadyAt   map[string]bool

	// violationsAtStart anchors the window's PolicyViolations delta: the
	// chain's counter is cumulative (and snapshot-restored on forks), the
	// observation reports only what this window admitted.
	violationsAtStart int

	// sawTopologyFault latches once a scrape observes the network impaired:
	// from then on, impairment-free scrape intervals count toward the
	// recovery tail until the cluster re-converges. Zoneless campaigns never
	// set it, so the (list-backed) convergence probe never runs for them.
	sawTopologyFault bool

	pool *BufferPool

	cancels []func()
	ticker  interface{ Stop() bool }
}

// NewCollector attaches a collector to the cluster; the window starts at
// Start.
func NewCollector(cl *cluster.Cluster) *Collector {
	return &Collector{
		cl:           cl,
		admin:        cl.Client("monitoring"),
		podCreatedAt: make(map[string]time.Duration),
		podReadyAt:   make(map[string]bool),
	}
}

// UsePool makes the collector grow its series buffers out of the given pool
// instead of fresh allocations. The resulting Observation then owns pooled
// memory: release it back via pool.Release once classification is done and
// it provably does not escape. Call before Start.
func (c *Collector) UsePool(p *BufferPool) { c.pool = p }

// Start opens the measurement window.
func (c *Collector) Start() {
	c.windowStart = c.cl.Loop.Now()
	c.lastSampleAt = c.windowStart
	c.violationsAtStart = c.cl.AdmissionViolations()
	c.obs.Samples = c.pool.getSamples()
	c.cancels = append(c.cancels, c.admin.Watch(spec.KindPod, c.onPod))
	c.ticker = c.cl.Loop.Every(samplePeriod, c.sample)
	c.sample()
}

func (c *Collector) onPod(ev apiserver.WatchEvent) {
	pod := ev.Object.(*spec.Pod)
	uid := pod.Metadata.UID
	switch ev.Type {
	case apiserver.Added:
		if _, seen := c.podCreatedAt[uid]; !seen {
			c.podCreatedAt[uid] = c.cl.Loop.Now()
			c.obs.PodsCreated++
			rel := float64(c.cl.Loop.Now()-c.windowStart) / float64(time.Millisecond)
			if rel > c.obs.LastCreationMS {
				c.obs.LastCreationMS = rel
			}
		}
	case apiserver.Modified:
		if pod.Metadata.Namespace != spec.DefaultNamespace {
			return
		}
		if pod.Status.Ready && !c.podReadyAt[uid] {
			c.podReadyAt[uid] = true
			if created, ok := c.podCreatedAt[uid]; ok {
				startup := float64(c.cl.Loop.Now()-created) / float64(time.Millisecond)
				if startup > c.obs.WorstStartupMS {
					c.obs.WorstStartupMS = startup
				}
			}
		}
		if pod.Status.RestartCount > 0 {
			c.obs.AppPodRestart = true
		}
	case apiserver.Deleted:
		c.obs.PodsDeleted++
	}
}

func (c *Collector) sample() {
	// HA windows: charge the interval since the last scrape to the failover
	// gap when the control plane cannot act right now, and to the stale-read
	// window when a live store replica is serving a lagging revision. The
	// scrape granularity mirrors the paper's 3 s Prometheus resolution.
	now := c.cl.Loop.Now()
	if dt := float64(now-c.lastSampleAt) / float64(time.Millisecond); dt > 0 {
		if !c.cl.ControlPlaneResponsive() {
			c.obs.FailoverMillis += dt
		}
		if c.cl.StoreLagMax() > 0 {
			c.obs.StaleReadMillis += dt
		}
		if c.cl.AdmissionDegraded() {
			c.obs.AdmissionOutageMillis += dt
		}
		if c.cl.TopologyDegraded() {
			c.obs.TopologyDisruptedMillis += dt
			c.sawTopologyFault = true
		} else if c.sawTopologyFault && !c.cl.TopologyConverged() {
			c.obs.TopologyRecoveryMillis += dt
		}
	}
	c.lastSampleAt = now

	// View reads: the scrape only tallies status fields.
	s := Sample{At: now - c.windowStart}
	for _, ro := range c.admin.List(spec.KindReplicaSet, spec.DefaultNamespace) {
		s.ReadyReplicas += ro.(*spec.ReplicaSet).Status.ReadyReplicas
	}
	for _, eo := range c.admin.List(spec.KindEndpoints, spec.DefaultNamespace) {
		s.Endpoints += eo.(*spec.Endpoints).Count()
	}
	for _, po := range c.admin.List(spec.KindPod, spec.DefaultNamespace) {
		if po.(*spec.Pod).Active() {
			s.ActivePods++
		}
	}
	c.obs.Samples = append(c.obs.Samples, s)
}

// Finish closes the window, runs the end-of-window health probes, folds in
// the client's data, and returns the Observation.
func (c *Collector) Finish(client *workload.Client) *Observation {
	c.sample()
	c.ticker.Stop()
	for _, cancel := range c.cancels {
		cancel()
	}

	c.obs.ControlPlaneResponsive = c.cl.ControlPlaneResponsive()
	c.obs.StoreQuotaExceeded = !c.cl.ControlPlaneResponsive() && quotaExceeded(c.cl)
	c.obs.NetworkPodsFailing = c.cl.Net.NetworkPodsFailing()
	c.obs.DNSHealthy = c.cl.Net.DNSHealthy()
	c.obs.PrometheusReachable = c.probePrometheus()
	c.obs.SchedulerRestart = c.cl.Scheduler.Restarts()
	c.obs.UserErrors = c.cl.Server.Audit().ErrorsBy(workload.UserIdentity)
	c.obs.PolicyViolations = c.cl.AdmissionViolations() - c.violationsAtStart

	if client != nil {
		c.obs.Series = client.Series()
		c.obs.TrailingFailures = client.TrailingFailures()
		lead, scattered, timeouts, total := analyzeErrors(client.Records)
		c.obs.LeadingFailures = lead
		c.obs.ScatteredErrors = scattered
		c.obs.TimeoutErrors = timeouts
		c.obs.TotalErrors = total
	}
	return &c.obs
}

func (c *Collector) probePrometheus() bool {
	obj, err := c.admin.Get(spec.KindService, spec.SystemNamespace, "prometheus")
	if err != nil {
		return false
	}
	vip := obj.(*spec.Service).Spec.ClusterIP
	for i := 0; i < 3; i++ {
		if !c.cl.Net.Request(c.cl.MonitoringNode(), vip, 9090).Failed() {
			return true
		}
	}
	return false
}

func quotaExceeded(cl *cluster.Cluster) bool {
	type quotaer interface{ QuotaExceeded() bool }
	if q, ok := cl.Backend.(quotaer); ok {
		return q.QuotaExceeded()
	}
	return false
}

// analyzeErrors splits the client's failures into a leading run (service
// not yet deployed — present in golden deploy runs too), a trailing run
// (service unreachable), and scattered non-timeout errors in between
// (intermittent availability).
func analyzeErrors(records []workload.RequestRecord) (leading, scattered, timeouts, total int) {
	n := len(records)
	i := 0
	for i < n && records[i].Err != "" {
		i++
		leading++
	}
	j := n - 1
	for j >= i && records[j].Err != "" {
		j--
	}
	for k := 0; k < n; k++ {
		if records[k].Err == "" {
			continue
		}
		total++
		if records[k].Err == netsim.ErrTimeout {
			timeouts++
		}
		if k >= i && k <= j && records[k].Err != netsim.ErrTimeout {
			scattered++
		}
	}
	return leading, scattered, timeouts, total
}
