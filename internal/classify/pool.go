package classify

import "sync"

// BufferPool recycles the per-experiment series buffers a Collector grows —
// today the Observation's Samples slice (one entry per 3-second scrape). A
// campaign runs thousands of experiments whose observations are classified
// and immediately discarded; without recycling, every experiment grows a
// fresh slice through the append ladder. The pool is owned by whoever owns
// the experiment lifecycle (the campaign Runner keeps one per Runner) so
// recycling is explicit: only observations that provably do not escape are
// released (golden-run observations, which baselines retain, never are).
type BufferPool struct {
	samples sync.Pool
}

// NewBufferPool builds an empty pool.
func NewBufferPool() *BufferPool {
	p := &BufferPool{}
	p.samples.New = func() any {
		s := make([]Sample, 0, 32) // a 45 s window at 3 s period is ~16 samples
		return &s
	}
	return p
}

// getSamples borrows an empty sample buffer.
func (p *BufferPool) getSamples() []Sample {
	if p == nil {
		return nil
	}
	return (*p.samples.Get().(*[]Sample))[:0]
}

// Release returns an observation's recyclable buffers to the pool and clears
// them from the observation. The caller must be the last reader: after
// Release the buffers may be handed to a concurrent experiment.
func (p *BufferPool) Release(o *Observation) {
	if p == nil || o == nil || o.Samples == nil {
		return
	}
	s := o.Samples
	o.Samples = nil
	p.samples.Put(&s)
}
