package classify

// BufferPool recycles the per-experiment series buffers a Collector grows —
// today the Observation's Samples slice (one entry per 3-second scrape). A
// campaign runs thousands of experiments whose observations are classified
// and immediately discarded; without recycling, every experiment grows a
// fresh slice through the append ladder.
//
// The pool is a plain, unsynchronized free list: it is owned by exactly one
// campaign worker (one experiment lifecycle at a time), so there is nothing
// to synchronize. The sync.Pool it replaces was shared across every worker in
// the process and put its per-P free lists — and their cache lines — in the
// middle of the parallel engine's hot path. Only observations that provably
// do not escape are released (golden-run observations, which baselines
// retain, never are). A BufferPool must not be used from two goroutines at
// once.
type BufferPool struct {
	samples [][]Sample
}

// NewBufferPool builds an empty pool.
func NewBufferPool() *BufferPool {
	return &BufferPool{}
}

// getSamples borrows an empty sample buffer.
func (p *BufferPool) getSamples() []Sample {
	if p == nil {
		return nil
	}
	if n := len(p.samples); n > 0 {
		s := p.samples[n-1]
		p.samples = p.samples[:n-1]
		return s[:0]
	}
	return make([]Sample, 0, 32) // a 45 s window at 3 s period is ~16 samples
}

// Release returns an observation's recyclable buffers to the pool and clears
// them from the observation. The caller must be the last reader: after
// Release the buffers may be handed to the owner's next experiment.
func (p *BufferPool) Release(o *Observation) {
	if p == nil || o == nil || o.Samples == nil {
		return
	}
	s := o.Samples
	o.Samples = nil
	p.samples = append(p.samples, s)
}
