package classify

import "testing"

func TestBufferPoolRecyclesSamples(t *testing.T) {
	p := NewBufferPool()
	buf := p.getSamples()
	if len(buf) != 0 {
		t.Fatalf("borrowed buffer not empty: len=%d", len(buf))
	}
	buf = append(buf, Sample{ReadyReplicas: 3})
	obs := &Observation{Samples: buf}
	p.Release(obs)
	if obs.Samples != nil {
		t.Fatal("Release left the observation holding pooled memory")
	}
	// Double release must be a no-op, not a double-put.
	p.Release(obs)

	again := p.getSamples()
	if len(again) != 0 {
		t.Fatal("recycled buffer handed out non-reset")
	}
}

func TestBufferPoolNilSafety(t *testing.T) {
	var p *BufferPool
	if got := p.getSamples(); got != nil {
		t.Fatal("nil pool must fall back to plain allocation (nil slice)")
	}
	p.Release(&Observation{Samples: []Sample{{}}}) // must not panic
}
