package classify

import "math"

// MAE computes the mean absolute error between a series and a baseline
// series of the same nominal length; shorter series are zero-padded.
func MAE(series, baseline []float64) float64 {
	n := len(baseline)
	if len(series) > n {
		n = len(series)
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(series) {
			a = series[i]
		}
		if i < len(baseline) {
			b = baseline[i]
		}
		sum += math.Abs(a - b)
	}
	return sum / float64(n)
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// ZScore standardizes x against a distribution, guarding degenerate
// deviations (golden runs can be nearly identical in virtual time).
func ZScore(x, mean, std float64) float64 {
	if std < 1e-9 {
		std = 1e-9
	}
	return (x - mean) / std
}

// MeanSeries averages a set of equal-length series element-wise ("we
// computed a baseline time series for each workload by averaging the golden
// run time series").
func MeanSeries(series [][]float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	n := 0
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
	}
	out := make([]float64, n)
	for _, s := range series {
		for i, v := range s {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(series))
	}
	return out
}
