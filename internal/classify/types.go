// Package classify implements the paper's two-level failure classification
// (§V-B): orchestrator-level failures (OF) derived from cluster observables
// sampled every 3 seconds, and client-level failures (CF) derived from the
// application client's response-time series via MAE z-scores against a
// golden-run distribution.
package classify

import (
	"fmt"
	"time"
)

// OF is an orchestrator-level failure category (Table I(c), in increasing
// severity order).
type OF int

// Orchestrator-level failure categories.
const (
	OFNone OF = iota + 1 // system recovered, no consequences
	OFTim                // timing failure: creations/restarts much slower
	OFLeR                // fewer resources than desired at steady state
	OFMoR                // more resources than needed (worse: cost+exhaustion)
	OFNet                // right resources, wrong networking
	OFSta                // cluster can't react to changes; running apps fine
	OFOut                // running services compromised cluster-wide
)

// String returns the paper's abbreviation.
func (o OF) String() string {
	switch o {
	case OFNone:
		return "No"
	case OFTim:
		return "Tim"
	case OFLeR:
		return "LeR"
	case OFMoR:
		return "MoR"
	case OFNet:
		return "Net"
	case OFSta:
		return "Sta"
	case OFOut:
		return "Out"
	default:
		return fmt.Sprintf("OF(%d)", int(o))
	}
}

// OFs lists the categories in severity order.
func OFs() []OF { return []OF{OFNone, OFTim, OFLeR, OFMoR, OFNet, OFSta, OFOut} }

// CF is a client-level failure category (Table II).
type CF int

// Client-level failure categories.
const (
	CFNSI CF = iota + 1 // no significant impact
	CFHRT               // higher response times (z > 2)
	CFIA                // intermittent availability (errors not due to timeouts)
	CFSU                // service unreachable from some instant on
)

// String returns the paper's abbreviation.
func (c CF) String() string {
	switch c {
	case CFNSI:
		return "NSI"
	case CFHRT:
		return "HRT"
	case CFIA:
		return "IA"
	case CFSU:
		return "SU"
	default:
		return fmt.Sprintf("CF(%d)", int(c))
	}
}

// CFs lists the categories in severity order.
func CFs() []CF { return []CF{CFNSI, CFHRT, CFIA, CFSU} }

// Sample is one 3-second snapshot of the cluster observables.
type Sample struct {
	At time.Duration
	// ReadyReplicas sums ready replicas across app ReplicaSets.
	ReadyReplicas int64
	// Endpoints sums endpoint addresses across app Services.
	Endpoints int
	// ActivePods counts non-terminated app pods.
	ActivePods int
}

// Observation is everything measured during one experiment window.
type Observation struct {
	Samples []Sample

	// Cumulative counters over the window.
	PodsCreated   int // cluster-wide pod creations
	PodsDeleted   int
	AppPodRestart bool // any service pod restarted

	// kbench-style startup statistics (milliseconds).
	WorstStartupMS   float64
	LastCreationMS   float64
	SchedulerRestart int

	// HA control-plane metrics, accumulated at the scrape period: simulated
	// milliseconds of the window during which the control plane could not
	// react (failover gap: no leading manager or no running scheduler), and
	// during which some live store replica lagged the most advanced one (an
	// apiserver serving stale reads). Both stay zero on single-apiserver
	// clusters in nominal runs.
	FailoverMillis  float64
	StaleReadMillis float64

	// Admission metrics, meaningful only when the cluster runs a webhook
	// chain: simulated milliseconds of the window during which a fail-closed
	// hook was unreachable (writes it selects were being rejected — the
	// write-availability outage), and the number of policy-violating objects
	// admitted past a skipped hook during the window (the enforcement-
	// integrity loss).
	AdmissionOutageMillis float64
	PolicyViolations      int

	// Topology metrics, meaningful only on zoned clusters: simulated
	// milliseconds of the window during which a topology fault held a zone
	// uplink or node link cut (the disruption window), and milliseconds after
	// the links were restored before the cluster re-converged — links up,
	// kubelets heartbeating, every node Ready and untainted (the recovery
	// tail the arXiv:1901.04946-style failover tables report).
	TopologyDisruptedMillis float64
	TopologyRecoveryMillis  float64

	// End-of-window cluster health probes.
	ControlPlaneResponsive bool
	StoreQuotaExceeded     bool
	NetworkPodsFailing     bool
	DNSHealthy             bool
	PrometheusReachable    bool

	// Client data.
	Series           []float64 // latency series, zeros for failures
	TrailingFailures int
	LeadingFailures  int
	ScatteredErrors  int // non-timeout errors outside leading/trailing runs
	TimeoutErrors    int
	TotalErrors      int

	// User-visible API errors (the kbench identity), for Figure 7.
	UserErrors int
}

// FinalReady returns the steady-state ready replica count (last sample).
func (o *Observation) FinalReady() int64 {
	if len(o.Samples) == 0 {
		return 0
	}
	return o.Samples[len(o.Samples)-1].ReadyReplicas
}

// FinalEndpoints returns the steady-state endpoint count.
func (o *Observation) FinalEndpoints() int {
	if len(o.Samples) == 0 {
		return 0
	}
	return o.Samples[len(o.Samples)-1].Endpoints
}

// Stable reports whether the tail of the sampled series settled (the last
// three samples agree) — LeR requires a *stable* lower value.
func (o *Observation) Stable() bool {
	n := len(o.Samples)
	if n < 3 {
		return true
	}
	a, b, c := o.Samples[n-3], o.Samples[n-2], o.Samples[n-1]
	return a.ReadyReplicas == c.ReadyReplicas && b.ReadyReplicas == c.ReadyReplicas
}

// MaxReady returns the highest sampled ready replica count.
func (o *Observation) MaxReady() int64 {
	var max int64
	for _, s := range o.Samples {
		if s.ReadyReplicas > max {
			max = s.ReadyReplicas
		}
	}
	return max
}

// MaxEndpoints returns the highest sampled endpoint count.
func (o *Observation) MaxEndpoints() int {
	max := 0
	for _, s := range o.Samples {
		if s.Endpoints > max {
			max = s.Endpoints
		}
	}
	return max
}
