// Package cluster assembles the full simulated orchestration system: data
// store, API server, controller manager, scheduler, one kubelet per node,
// and the virtual network — in the paper's testbed shape (one control-plane
// node plus four workers, one of which is reserved for the application
// client and monitoring).
//
// # Bootstrapped-cluster snapshots
//
// Booting a cluster to a settled state costs ~20 s of simulated time, which
// dominates an injection experiment whose measurement window is 45 s. The
// snapshot/fork subsystem (snapshot.go) amortizes it: bootstrap once, call
// Cluster.Snapshot at the settled instant, then Snapshot.Fork(seed) per
// experiment. A fork resumes the snapshot's store contents, virtual clock,
// and event-budget accounting, and restarts every component over that state
// — the same re-list/reconcile path components walk after a real restart —
// so only the injection window is simulated.
//
// # Seed-split semantics
//
// A forked experiment draws from two random streams: the bootstrap ran
// under the snapshot's canonical seed (one per workload/topology), and the
// fork's window runs under the per-experiment seed. A full replay instead
// threads the per-experiment seed through bootstrap and window alike, and
// timer phases relative to the window differ slightly between the two
// (forked components restart their periodic timers at the fork instant).
// Forked and replayed runs of the same spec are therefore NOT bit-identical
// — the contract is distributional: golden baselines built from forks and
// injected forks shift together, so for deterministic faults the OF
// classification is preserved per experiment and the CF classification is
// preserved up to threshold-adjacent HRT ties (the client z-score rides the
// 2.0 threshold exactly as it does between two seeds); faults that are
// themselves randomized (proto-byte flips) draw a different corruption per
// regime by construction. The campaign's equivalence test asserts all of
// this plus table-level count stability. Campaigns that need bit-level
// reproducibility against historical results keep the full-replay path
// (campaign.Config.ShareBootstrap = false); forking is deterministic within
// itself — the same snapshot and seed always yield the same experiment.
package cluster

import (
	"fmt"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/controller"
	"github.com/mutiny-sim/mutiny/internal/guard"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/kubelet"
	"github.com/mutiny-sim/mutiny/internal/netsim"
	"github.com/mutiny-sim/mutiny/internal/scheduler"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// Node names of the default topology.
const (
	ControlPlaneNode = "cp-0"
	MonitoringNode   = "worker-3"
)

// ControlPlaneTaint repels application pods from the control-plane node.
const ControlPlaneTaint = "node-role.kubernetes.io/control-plane"

// MonitoringTaint reserves the monitoring node for client/monitoring pods.
const MonitoringTaint = "dedicated"

// Config parameterizes the cluster.
type Config struct {
	// Seed drives all randomness in the simulation.
	Seed int64
	// Workers is the number of worker nodes (default 4; the last one is
	// reserved for monitoring, mirroring §V-A).
	Workers int
	// ControlPlaneReplicas selects the §V-C1 ablation: >1 runs a
	// raft-replicated store.
	ControlPlaneReplicas int
	// StoreOptions tunes the data store.
	StoreOptions *store.Options
	// ServerOptions tunes the API server.
	ServerOptions *apiserver.Options
	// ManagerOptions tunes the controller manager.
	ManagerOptions controller.Options
	// SchedulerOptions tunes the scheduler.
	SchedulerOptions scheduler.Options
	// NodeMilliCPU / NodeMemMB size each node (default 8000 / 4096: the
	// paper's 8-CPU, 4 GB VMs).
	NodeMilliCPU int64
	NodeMemMB    int64
	// EnableFieldGuard installs the §VI-B critical-field guard: changes to
	// dependency/identity/networking fields are journaled, monitored, and
	// rolled back when the cluster degrades.
	EnableFieldGuard bool
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.ControlPlaneReplicas == 0 {
		c.ControlPlaneReplicas = 1
	}
	if c.NodeMilliCPU == 0 {
		c.NodeMilliCPU = 8000
	}
	if c.NodeMemMB == 0 {
		c.NodeMemMB = 4096
	}
	return c
}

// Cluster is one fully wired simulated cluster.
type Cluster struct {
	cfg Config

	Loop      *sim.Loop
	Backend   store.Backend
	Server    *apiserver.Server
	Manager   *controller.Manager
	Scheduler *scheduler.Scheduler
	Net       *netsim.State
	Kubelets  map[string]*kubelet.Kubelet
	guard     *guard.Guard
	// nodeOrder preserves kubelet creation order: Start/Stop must not
	// iterate the Kubelets map, since map order would randomize heartbeat
	// timer scheduling between runs and break bit-reproducibility.
	nodeOrder []string
	// monitoring caches the monitoring node's name: the application client
	// asks for it on every one of its 600 requests per experiment.
	monitoring string

	started bool
}

// Fingerprint returns a canonical string covering every configuration field,
// with the pointer-typed option structs flattened to their values (or their
// defaults when nil). Two configs with equal fingerprints build behaviorally
// identical clusters for the same seed; the campaign's process-wide
// bootstrap-snapshot cache keys on it. New Config fields are picked up
// automatically (the fingerprint prints whole structs), so the cache can
// never conflate two configs that differ in a future knob.
func (c Config) Fingerprint() string {
	c = c.withDefaults()
	var so store.Options
	if c.StoreOptions != nil {
		so = *c.StoreOptions
	}
	var ao apiserver.Options
	if c.ServerOptions != nil {
		ao = *c.ServerOptions
	}
	flat := c
	flat.StoreOptions = nil
	flat.ServerOptions = nil
	return fmt.Sprintf("%+v|store:%+v|server:%+v", flat, so, ao)
}

// Clone deep-copies the config, including the pointer-typed option structs.
// Callers that stamp per-experiment fields (like Seed) onto a shared template
// must clone first: a by-value copy would share the options across clusters,
// and concurrent campaign workers would then race on (or cross-contaminate)
// option state.
func (c Config) Clone() Config {
	out := c
	if c.StoreOptions != nil {
		opts := *c.StoreOptions
		out.StoreOptions = &opts
	}
	if c.ServerOptions != nil {
		opts := *c.ServerOptions
		out.ServerOptions = &opts
	}
	return out
}

// New builds a cluster; call Start to boot it, then drive Loop.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	loop := sim.NewLoop(cfg.Seed)
	return assemble(cfg, loop, newBackend(loop, cfg))
}

// newBackend builds the storage backend the config asks for.
func newBackend(loop *sim.Loop, cfg Config) store.Backend {
	if cfg.ControlPlaneReplicas > 1 {
		return store.NewReplicated(loop, cfg.ControlPlaneReplicas, cfg.StoreOptions)
	}
	return store.New(loop, cfg.StoreOptions)
}

// assemble wires all components over an existing loop and backend; shared by
// New (empty backend) and Snapshot.Fork (restored backend).
func assemble(cfg Config, loop *sim.Loop, backend store.Backend) *Cluster {
	srv := apiserver.New(loop, backend, cfg.ServerOptions)
	c := &Cluster{
		cfg:        cfg,
		Loop:       loop,
		Backend:    backend,
		Server:     srv,
		Manager:    controller.NewManager(loop, srv, cfg.ManagerOptions),
		Scheduler:  scheduler.New(loop, srv, cfg.SchedulerOptions),
		Net:        netsim.New(loop, srv),
		Kubelets:   make(map[string]*kubelet.Kubelet),
		monitoring: fmt.Sprintf("worker-%d", cfg.Workers-1),
	}
	if cfg.EnableFieldGuard {
		c.guard = guard.New(loop, srv, c.guardHealth)
		srv.SetStoreWriteHook(c.guard.Hook(nil))
	}
	c.addKubelet(ControlPlaneNode, 0, map[string]string{spec.LabelNodeRole: "control-plane"})
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("worker-%d", i)
		labels := map[string]string{spec.LabelNodeRole: "worker"}
		if name == c.monitoringNode() {
			labels["role"] = "monitoring"
		}
		c.addKubelet(name, i+1, labels)
	}
	return c
}

func (c *Cluster) addKubelet(name string, cidrIndex int, labels map[string]string) {
	c.nodeOrder = append(c.nodeOrder, name)
	c.Kubelets[name] = kubelet.New(c.Loop, c.Server, kubelet.Config{
		NodeName:         name,
		CapacityMilliCPU: c.cfg.NodeMilliCPU,
		CapacityMemMB:    c.cfg.NodeMemMB,
		PodCIDR:          fmt.Sprintf("10.244.%d.0/24", cidrIndex),
		Labels:           labels,
	})
}

func (c *Cluster) monitoringNode() string {
	// The last worker hosts the application client and monitoring pods.
	return c.monitoring
}

// MonitoringNode returns the node reserved for client/monitoring pods.
func (c *Cluster) MonitoringNode() string { return c.monitoringNode() }

// Client returns an API client with the given identity ("kbench" for the
// cluster user driving the workloads).
func (c *Cluster) Client(identity string) *apiserver.Client {
	return c.Server.ClientFor(identity)
}

// Start boots the cluster: registers nodes, installs the system workloads,
// and starts the control plane. Drive c.Loop afterwards.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	for _, name := range c.nodeOrder {
		c.Kubelets[name].Start()
	}
	c.applyNodeRoles()
	c.installSystemWorkloads()
	c.Manager.Start()
	c.Scheduler.Start()
}

// Stop halts all components.
func (c *Cluster) Stop() {
	c.Manager.Stop()
	c.Scheduler.Stop()
	for _, name := range c.nodeOrder {
		c.Kubelets[name].Stop()
	}
	c.Net.Close()
}

// AwaitSettled drives the loop until the system pods are ready or the
// deadline passes; it reports whether the cluster settled.
func (c *Cluster) AwaitSettled(deadline time.Duration) bool {
	admin := c.Client("bootstrap")
	for c.Loop.Now() < deadline {
		c.Loop.RunUntil(c.Loop.Now() + time.Second)
		if c.systemReady(admin) {
			return true
		}
	}
	return c.systemReady(admin)
}

func (c *Cluster) systemReady(admin *apiserver.Client) bool {
	// Network manager on every node (view reads: the probe only inspects).
	nodes := admin.List(spec.KindNode, "")
	for _, no := range nodes {
		if !c.Net.RoutesUp(no.Meta().Name) {
			return false
		}
	}
	if !c.Net.DNSHealthy() {
		return false
	}
	// Monitoring stack serving.
	obj, err := admin.Get(spec.KindDeployment, spec.SystemNamespace, "prometheus")
	if err != nil {
		return false
	}
	d := obj.(*spec.Deployment)
	return d.Status.ReadyReplicas >= d.Spec.Replicas
}

// ControlPlaneResponsive reports whether the reconciliation machinery is
// able to act: manager leading, scheduler running, store accepting writes.
func (c *Cluster) ControlPlaneResponsive() bool {
	if !c.Manager.IsLeading() || !c.Scheduler.IsRunning() {
		return false
	}
	if st, ok := c.Backend.(*store.Store); ok && st.QuotaExceeded() {
		return false
	}
	if rep, ok := c.Backend.(*store.Replicated); ok && rep.Primary().QuotaExceeded() {
		return false
	}
	return true
}

// Guard returns the critical-field guard, or nil when not enabled.
func (c *Cluster) Guard() *guard.Guard { return c.guard }

// AttachInjector wires an injector into the cluster's channels, preserving
// the guard's observation point (the guard must see the tampered bytes, just
// as it would see the corrupted transaction in a real deployment).
func (c *Cluster) AttachInjector(j *inject.Injector) {
	if c.guard != nil {
		c.Server.SetStoreWriteHook(c.guard.Hook(j.StoreHook()))
		c.Server.SetRequestHook(j.RequestHook())
		c.Server.SetRequestWireGate(j.WantsRequestWire)
		c.Server.SetWatchHook(j.WatchHook())
		c.Server.SetWatchGate(j.WantsWatchChannel)
		c.Server.SetAccessHook(j.AccessHook())
		return
	}
	j.AttachTo(c.Server)
}

func (c *Cluster) guardHealth() guard.Health {
	active := 0
	for _, po := range c.Server.ClientFor("field-guard").List(spec.KindPod, "") {
		if po.(*spec.Pod).Active() {
			active++
		}
	}
	return guard.Health{
		ControlPlaneResponsive: c.ControlPlaneResponsive(),
		NetworkPodsFailing:     c.Net.NetworkPodsFailing(),
		DNSHealthy:             c.Net.DNSHealthy(),
		ActivePods:             active,
	}
}

// CrashNode simulates a node failure (heartbeats stop, pods stop serving).
func (c *Cluster) CrashNode(name string) {
	if k, ok := c.Kubelets[name]; ok {
		k.SetDown(true)
	}
}

// RecoverNode reverses CrashNode.
func (c *Cluster) RecoverNode(name string) {
	if k, ok := c.Kubelets[name]; ok {
		k.SetDown(false)
	}
}
