// Package cluster assembles the full simulated orchestration system: data
// store, API server, controller manager, scheduler, one kubelet per node,
// and the virtual network — in the paper's testbed shape (one control-plane
// node plus four workers, one of which is reserved for the application
// client and monitoring).
//
// # Bootstrapped-cluster snapshots
//
// Booting a cluster to a settled state costs ~20 s of simulated time, which
// dominates an injection experiment whose measurement window is 45 s. The
// snapshot/fork subsystem (snapshot.go) amortizes it: bootstrap once, call
// Cluster.Snapshot at the settled instant, then Snapshot.Fork(seed) per
// experiment. A fork resumes the snapshot's store contents, virtual clock,
// and event-budget accounting, and restarts every component over that state
// — the same re-list/reconcile path components walk after a real restart —
// so only the injection window is simulated.
//
// # Seed-split semantics
//
// A forked experiment draws from two random streams: the bootstrap ran
// under the snapshot's canonical seed (one per workload/topology), and the
// fork's window runs under the per-experiment seed. A full replay instead
// threads the per-experiment seed through bootstrap and window alike, and
// timer phases relative to the window differ slightly between the two
// (forked components restart their periodic timers at the fork instant).
// Forked and replayed runs of the same spec are therefore NOT bit-identical
// — the contract is distributional: golden baselines built from forks and
// injected forks shift together, so for deterministic faults the OF
// classification is preserved per experiment and the CF classification is
// preserved up to threshold-adjacent HRT ties (the client z-score rides the
// 2.0 threshold exactly as it does between two seeds); faults that are
// themselves randomized (proto-byte flips) draw a different corruption per
// regime by construction. The campaign's equivalence test asserts all of
// this plus table-level count stability. Campaigns that need bit-level
// reproducibility against historical results keep the full-replay path
// (campaign.Config.ShareBootstrap = false); forking is deterministic within
// itself — the same snapshot and seed always yield the same experiment.
package cluster

import (
	"fmt"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/controller"
	"github.com/mutiny-sim/mutiny/internal/guard"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/kubelet"
	"github.com/mutiny-sim/mutiny/internal/netsim"
	"github.com/mutiny-sim/mutiny/internal/scheduler"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// Node names of the default topology.
const (
	ControlPlaneNode = "cp-0"
	MonitoringNode   = "worker-3"
)

// ControlPlaneTaint repels application pods from the control-plane node.
const ControlPlaneTaint = "node-role.kubernetes.io/control-plane"

// MonitoringTaint reserves the monitoring node for client/monitoring pods.
const MonitoringTaint = "dedicated"

// Config parameterizes the cluster.
type Config struct {
	// Seed drives all randomness in the simulation.
	Seed int64
	// Workers is the number of worker nodes (default 4; the last one is
	// reserved for monitoring, mirroring §V-A).
	Workers int
	// ControlPlaneReplicas selects the §V-C1 ablation: >1 runs a
	// raft-replicated store.
	ControlPlaneReplicas int
	// StoreOptions tunes the data store.
	StoreOptions *store.Options
	// ServerOptions tunes the API server.
	ServerOptions *apiserver.Options
	// ManagerOptions tunes the controller manager.
	ManagerOptions controller.Options
	// SchedulerOptions tunes the scheduler.
	SchedulerOptions scheduler.Options
	// NodeMilliCPU / NodeMemMB size each node (default 8000 / 4096: the
	// paper's 8-CPU, 4 GB VMs). In a zoned cluster this is the core node
	// class; regional nodes get half, edge nodes a quarter.
	NodeMilliCPU int64
	NodeMemMB    int64
	// Zones spreads the nodes over a cloud-edge topology: zone 0 is the
	// cloud core (control plane, monitoring, and a share of the workers),
	// the last zone is the edge, anything between is regional. 0 or 1 (the
	// default) is the flat single-zone network of the paper's testbed.
	Zones int
	// EdgeNodes is how many workers land in the edge zone; zero with
	// Zones >= 2 defaults to an equal share (workers / Zones).
	EdgeNodes int
	// EnableFieldGuard installs the §VI-B critical-field guard: changes to
	// dependency/identity/networking fields are journaled, monitored, and
	// rolled back when the cluster degrades.
	EnableFieldGuard bool
	// AdmissionHooks installs the first N standard governance webhooks
	// (defaulter, image-policy, limits-policy) as an admission chain shared
	// by every apiserver replica. Zero (the default) means no chain and zero
	// write-path cost.
	AdmissionHooks int
	// FailurePolicy is the configured failure policy of every admission hook:
	// "Fail" (fail-closed) or "Ignore" (fail-open, the platform default when
	// empty). Per-experiment overrides ride on the injection spec instead.
	FailurePolicy string
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.ControlPlaneReplicas == 0 {
		c.ControlPlaneReplicas = 1
	}
	if c.NodeMilliCPU == 0 {
		c.NodeMilliCPU = 8000
	}
	if c.NodeMemMB == 0 {
		c.NodeMemMB = 4096
	}
	return c
}

// Cluster is one fully wired simulated cluster.
//
// With Config.ControlPlaneReplicas > 1 the control plane is highly available:
// Servers holds one apiserver per replica (each bound to its own store
// replica), Endpoints is the failover-aware client factory every component
// uses, and Managers/Scheds hold one controller manager and scheduler per
// replica, each pinned to its own apiserver (the co-located deployment kubeadm
// builds) and leader-elected so exactly one of each is active. Server,
// Manager and Scheduler always alias replica 0 for single-control-plane
// callers.
type Cluster struct {
	cfg Config

	Loop      *sim.Loop
	Backend   store.Backend
	Server    *apiserver.Server
	Manager   *controller.Manager
	Scheduler *scheduler.Scheduler
	Net       *netsim.State
	Kubelets  map[string]*kubelet.Kubelet
	guard     *guard.Guard

	// HA control plane (len 1 with a single replica; Endpoints nil then).
	Servers   []*apiserver.Server
	Managers  []*controller.Manager
	Scheds    []*scheduler.Scheduler
	Endpoints *apiserver.Endpoints
	// admission is the webhook chain shared by every apiserver replica;
	// nil when Config.AdmissionHooks is zero.
	admission *apiserver.AdmissionChain
	// source hands out clients: the Endpoints set when HA, Server otherwise.
	source apiserver.ClientSource
	// nodeOrder preserves kubelet creation order: Start/Stop must not
	// iterate the Kubelets map, since map order would randomize heartbeat
	// timer scheduling between runs and break bit-reproducibility.
	nodeOrder []string
	// monitoring caches the monitoring node's name: the application client
	// asks for it on every one of its 600 requests per experiment.
	monitoring string
	// zoneByNode / zoneNodes index zone membership (creation order preserved
	// per zone); empty maps on flat clusters.
	zoneByNode map[string]string
	zoneNodes  map[string][]string

	started bool
}

// Fingerprint returns a canonical string covering every configuration field,
// with the pointer-typed option structs flattened to their values (or their
// defaults when nil). Two configs with equal fingerprints build behaviorally
// identical clusters for the same seed; the campaign's process-wide
// bootstrap-snapshot cache keys on it. New Config fields are picked up
// automatically (the fingerprint prints whole structs), so the cache can
// never conflate two configs that differ in a future knob.
func (c Config) Fingerprint() string {
	c = c.withDefaults()
	var so store.Options
	if c.StoreOptions != nil {
		so = *c.StoreOptions
	}
	var ao apiserver.Options
	if c.ServerOptions != nil {
		ao = *c.ServerOptions
	}
	flat := c
	flat.StoreOptions = nil
	flat.ServerOptions = nil
	return fmt.Sprintf("%+v|store:%+v|server:%+v", flat, so, ao)
}

// Clone deep-copies the config, including the pointer-typed option structs.
// Callers that stamp per-experiment fields (like Seed) onto a shared template
// must clone first: a by-value copy would share the options across clusters,
// and concurrent campaign workers would then race on (or cross-contaminate)
// option state.
func (c Config) Clone() Config {
	out := c
	if c.StoreOptions != nil {
		opts := *c.StoreOptions
		out.StoreOptions = &opts
	}
	if c.ServerOptions != nil {
		opts := *c.ServerOptions
		out.ServerOptions = &opts
	}
	return out
}

// New builds a cluster; call Start to boot it, then drive Loop.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	loop := sim.NewLoop(cfg.Seed)
	return assemble(cfg, loop, newBackend(loop, cfg))
}

// newBackend builds the storage backend the config asks for.
func newBackend(loop *sim.Loop, cfg Config) store.Backend {
	if cfg.ControlPlaneReplicas > 1 {
		return store.NewReplicated(loop, cfg.ControlPlaneReplicas, cfg.StoreOptions)
	}
	return store.New(loop, cfg.StoreOptions)
}

// assemble wires all components over an existing loop and backend; shared by
// New (empty backend) and Snapshot.Fork (restored backend).
func assemble(cfg Config, loop *sim.Loop, backend store.Backend) *Cluster {
	n := cfg.ControlPlaneReplicas
	servers := make([]*apiserver.Server, n)
	for i := range servers {
		servers[i] = apiserver.NewAt(loop, backend, i, cfg.ServerOptions)
		// Disjoint UID/IP residues per replica: replica i admits i, i+n,
		// i+2n, ... so creates routed through different apiservers after a
		// failover can never collide.
		servers[i].SetAdmissionStride(i, n)
	}
	// One audit trail for the whole control plane, whichever replica served.
	for i := 1; i < n; i++ {
		servers[i].SetAudit(servers[0].Audit())
	}
	var source apiserver.ClientSource = servers[0]
	var eps *apiserver.Endpoints
	if n > 1 {
		eps = apiserver.NewEndpoints(loop, servers...)
		source = eps
	}

	// One manager/scheduler pair per control-plane replica, each pinned to
	// its co-located apiserver; leader election picks the active pair. With
	// election disabled there is deliberately only the replica-0 pair — N
	// unelected active managers would all reconcile at once.
	managers := make([]*controller.Manager, 0, n)
	scheds := make([]*scheduler.Scheduler, 0, n)
	for i := 0; i < n; i++ {
		mopts := cfg.ManagerOptions
		sopts := cfg.SchedulerOptions
		if i > 0 {
			if mopts.DisableLeaderElection || sopts.DisableLeaderElection {
				break
			}
			mopts.Identity = fmt.Sprintf("kcm-%d", i)
			sopts.Identity = fmt.Sprintf("kube-scheduler-%d", i)
		}
		managers = append(managers, controller.NewManager(loop, servers[i], mopts))
		scheds = append(scheds, scheduler.New(loop, servers[i], sopts))
	}

	c := &Cluster{
		cfg:        cfg,
		Loop:       loop,
		Backend:    backend,
		Server:     servers[0],
		Servers:    servers,
		Manager:    managers[0],
		Managers:   managers,
		Scheduler:  scheds[0],
		Scheds:     scheds,
		Endpoints:  eps,
		source:     source,
		Net:        netsim.New(loop, source),
		Kubelets:   make(map[string]*kubelet.Kubelet),
		monitoring: fmt.Sprintf("worker-%d", cfg.Workers-1),
	}
	if rep, ok := backend.(*store.Replicated); ok {
		// The virtual network owns the master links; mirror its cuts into
		// the replicated store's reachability.
		c.Net.OnMasterLinkChange(func(isolated int) { c.applyMasterLinks(rep, isolated) })
	}
	if cfg.AdmissionHooks > 0 {
		// Webhook backends live on the non-monitoring worker nodes (round-
		// robin), so they are reachable through the virtual network and share
		// fate with the data plane. One chain serves every replica: admission
		// configuration is cluster state, like the shared audit trail.
		backends := make([]string, 0, cfg.Workers)
		for i := 0; i < cfg.Workers; i++ {
			if name := fmt.Sprintf("worker-%d", i); name != c.monitoring {
				backends = append(backends, name)
			}
		}
		chain := apiserver.NewAdmissionChain(
			apiserver.StandardAdmissionHooks(cfg.AdmissionHooks, apiserver.FailurePolicy(cfg.FailurePolicy), backends)...)
		chain.SetReachability(c.Net.RoutesUp)
		for _, srv := range servers {
			srv.SetAdmissionChain(chain)
		}
		c.admission = chain
	}
	if cfg.EnableFieldGuard {
		c.guard = guard.New(loop, source, c.guardHealth)
		for _, srv := range servers {
			srv.SetStoreWriteHook(c.guard.Hook(nil))
		}
	}
	c.zoneByNode = make(map[string]string)
	c.zoneNodes = make(map[string][]string)
	c.addKubelet(ControlPlaneNode, 0, map[string]string{spec.LabelNodeRole: "control-plane"}, 0)
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("worker-%d", i)
		labels := map[string]string{spec.LabelNodeRole: "worker"}
		if name == c.monitoringNode() {
			labels["role"] = "monitoring"
		}
		c.addKubelet(name, i+1, labels, cfg.zoneOfWorker(i))
	}
	return c
}

// zoneOfWorker places worker i: the monitoring worker stays in the core with
// the control plane, the last EdgeNodes workers form the edge zone, and the
// rest round-robin over the core and regional zones.
func (c Config) zoneOfWorker(i int) int {
	if c.Zones < 2 || i == c.Workers-1 {
		return 0
	}
	w := c.Workers - 1 // workers outside the monitoring reservation
	edge := c.EdgeNodes
	if edge <= 0 {
		edge = w / c.Zones
	}
	if edge > w {
		edge = w
	}
	if i >= w-edge {
		return c.Zones - 1
	}
	return i % (c.Zones - 1)
}

// nodeClass scales the configured node size by zone: core nodes are the
// paper's full-size VMs, regional nodes half, edge devices a quarter —
// the heterogeneous node classes of cloud-edge deployments.
func (c Config) nodeClass(zone int) (cpu, mem int64) {
	cpu, mem = c.NodeMilliCPU, c.NodeMemMB
	if c.Zones < 2 || zone == 0 {
		return cpu, mem
	}
	if zone == c.Zones-1 {
		return cpu / 4, mem / 4
	}
	return cpu / 2, mem / 2
}

func (c *Cluster) addKubelet(name string, cidrIndex int, labels map[string]string, zone int) {
	cpu, mem := c.cfg.nodeClass(zone)
	if zoneName := netsim.ZoneName(zone, c.cfg.Zones); zoneName != "" {
		labels[netsim.LabelZone] = zoneName
		c.zoneByNode[name] = zoneName
		c.zoneNodes[zoneName] = append(c.zoneNodes[zoneName], name)
	}
	c.nodeOrder = append(c.nodeOrder, name)
	c.Kubelets[name] = kubelet.New(c.Loop, c.source, kubelet.Config{
		NodeName:         name,
		CapacityMilliCPU: cpu,
		CapacityMemMB:    mem,
		// The third octet widens into the second past index 255, so 500+
		// node clusters keep one /24 per node (10.244.x → 10.245.x → …).
		PodCIDR: fmt.Sprintf("10.%d.%d.0/24", 244+cidrIndex/256, cidrIndex%256),
		Labels:  labels,
	})
}

func (c *Cluster) monitoringNode() string {
	// The last worker hosts the application client and monitoring pods.
	return c.monitoring
}

// MonitoringNode returns the node reserved for client/monitoring pods.
func (c *Cluster) MonitoringNode() string { return c.monitoringNode() }

// Client returns an API client with the given identity ("kbench" for the
// cluster user driving the workloads). In an HA control plane the client is
// failover-aware.
func (c *Cluster) Client(identity string) *apiserver.Client {
	return c.source.ClientFor(identity)
}

// Start boots the cluster: registers nodes, installs the system workloads,
// and starts the control plane. Drive c.Loop afterwards.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	for _, name := range c.nodeOrder {
		c.Kubelets[name].Start()
	}
	c.applyNodeRoles()
	c.installSystemWorkloads()
	// Stagger the standby control loops well past raft leader election and
	// the first lease replication (~300 ms): a standby whose first tick runs
	// before the leader's lease create reaches its own store replica would
	// create a second, divergent lease through it — members join one
	// kubeadm-join at a time, they don't race the first one.
	c.startControlLoops(2 * time.Second)
}

// startControlLoops starts the replica-0 manager/scheduler immediately and
// the standby pairs at i*stagger. Forks pass zero: their leases are restored
// on every replica already, so there is nothing to race.
func (c *Cluster) startControlLoops(stagger time.Duration) {
	c.Managers[0].Start()
	c.Scheds[0].Start()
	for i := 1; i < len(c.Managers); i++ {
		m, s := c.Managers[i], c.Scheds[i]
		if stagger == 0 {
			m.Start()
			s.Start()
			continue
		}
		c.Loop.After(time.Duration(i)*stagger, func() {
			m.Start()
			s.Start()
		})
	}
}

// Stop halts all components.
func (c *Cluster) Stop() {
	for _, m := range c.Managers {
		m.Stop()
	}
	for _, s := range c.Scheds {
		s.Stop()
	}
	for _, name := range c.nodeOrder {
		c.Kubelets[name].Stop()
	}
	c.Net.Close()
}

// AwaitSettled drives the loop until the system pods are ready or the
// deadline passes; it reports whether the cluster settled.
func (c *Cluster) AwaitSettled(deadline time.Duration) bool {
	admin := c.Client("bootstrap")
	for c.Loop.Now() < deadline {
		c.Loop.RunUntil(c.Loop.Now() + time.Second)
		if c.systemReady(admin) {
			return true
		}
	}
	return c.systemReady(admin)
}

func (c *Cluster) systemReady(admin *apiserver.Client) bool {
	// Network manager on every node (view reads: the probe only inspects).
	nodes := admin.List(spec.KindNode, "")
	for _, no := range nodes {
		if !c.Net.RoutesUp(no.Meta().Name) {
			return false
		}
	}
	if !c.Net.DNSHealthy() {
		return false
	}
	// Monitoring stack serving.
	obj, err := admin.Get(spec.KindDeployment, spec.SystemNamespace, "prometheus")
	if err != nil {
		return false
	}
	d := obj.(*spec.Deployment)
	return d.Status.ReadyReplicas >= d.Spec.Replicas
}

// ControlPlaneResponsive reports whether the reconciliation machinery is
// able to act: some manager leading, some scheduler running, store accepting
// writes. In an HA control plane any replica's active pair counts — the gap
// between a leader's crash and a standby's takeover is exactly the window
// this reports false for.
func (c *Cluster) ControlPlaneResponsive() bool {
	leading, running := false, false
	for _, m := range c.Managers {
		leading = leading || m.IsLeading()
	}
	for _, s := range c.Scheds {
		running = running || s.IsRunning()
	}
	if !leading || !running {
		return false
	}
	if st, ok := c.Backend.(*store.Store); ok && st.QuotaExceeded() {
		return false
	}
	if rep, ok := c.Backend.(*store.Replicated); ok && rep.QuotaExceeded() {
		return false
	}
	return true
}

// Guard returns the critical-field guard, or nil when not enabled.
func (c *Cluster) Guard() *guard.Guard { return c.guard }

// AttachInjector wires an injector into the cluster's channels, preserving
// the guard's observation point (the guard must see the tampered bytes, just
// as it would see the corrupted transaction in a real deployment). Every
// apiserver replica gets the hooks — a fault must fire no matter which
// replica serves the matching message — and the injector gets the cluster as
// its control-plane handle for the time-triggered fault axes.
func (c *Cluster) AttachInjector(j *inject.Injector) {
	for _, srv := range c.Servers {
		if c.guard != nil {
			srv.SetStoreWriteHook(c.guard.Hook(j.StoreHook()))
			srv.SetRequestHook(j.RequestHook())
			srv.SetRequestWireGate(j.WantsRequestWire)
			srv.SetWatchHook(j.WatchHook())
			srv.SetWatchGate(j.WantsWatchChannel)
			srv.SetAccessHook(j.AccessHook())
			continue
		}
		j.AttachTo(srv)
	}
	j.AttachControlPlane(c)
	if c.admission != nil {
		j.AttachAdmission(c.admission)
	}
	if c.cfg.Zones >= 2 {
		j.AttachTopology(c)
	}
}

// Admission returns the shared admission chain, or nil when no hooks are
// configured.
func (c *Cluster) Admission() *apiserver.AdmissionChain { return c.admission }

// AdmissionDegraded reports whether webhook downtime is currently being
// turned into write rejections (some fail-closed hook unreachable). False
// with no chain configured.
func (c *Cluster) AdmissionDegraded() bool {
	return c.admission != nil && c.admission.Degraded()
}

// AdmissionViolations returns the running count of policy-violating objects
// admitted past a skipped hook (fail-open or broken selector). Zero with no
// chain configured.
func (c *Cluster) AdmissionViolations() int {
	if c.admission == nil {
		return 0
	}
	return int(c.admission.ViolationsAdmitted())
}

func (c *Cluster) guardHealth() guard.Health {
	active := 0
	for _, po := range c.Server.ClientFor("field-guard").List(spec.KindPod, "") {
		if po.(*spec.Pod).Active() {
			active++
		}
	}
	return guard.Health{
		ControlPlaneResponsive: c.ControlPlaneResponsive(),
		NetworkPodsFailing:     c.Net.NetworkPodsFailing(),
		DNSHealthy:             c.Net.DNSHealthy(),
		ActivePods:             active,
	}
}

// CrashNode simulates a node failure (heartbeats stop, pods stop serving).
func (c *Cluster) CrashNode(name string) {
	if k, ok := c.Kubelets[name]; ok {
		k.SetDown(true)
	}
}

// RecoverNode reverses CrashNode.
func (c *Cluster) RecoverNode(name string) {
	if k, ok := c.Kubelets[name]; ok {
		k.SetDown(false)
	}
}

// --- control-plane fault axes -------------------------------------------------
//
// These implement inject.ControlPlane: the time-triggered HA fault axes act
// through them. They are also callable directly from tests and scenarios.

// Replicas returns the number of control-plane replicas.
func (c *Cluster) Replicas() int { return len(c.Servers) }

// CrashAPIServer kills apiserver replica i: it stops serving (requests time
// out, watches fall silent) and every client homed on it fails over — the
// eager sweep models the broken TCP connections a crashed apiserver leaves.
func (c *Cluster) CrashAPIServer(i int) {
	c.Servers[i].SetDown(true)
	if c.Endpoints != nil {
		c.Endpoints.NoteServerDown(i)
	}
}

// RestartAPIServer brings a crashed apiserver replica back: it rebuilds its
// watch cache from its store replica and resumes serving.
func (c *Cluster) RestartAPIServer(i int) {
	c.Servers[i].SetDown(false)
}

// PartitionMasters isolates control-plane replica i from its peers at the
// network level: its store replica loses quorum (writes through apiserver i
// fail, clients fail over), while its apiserver keeps serving progressively
// staler reads — the stale-read window the campaign measures.
func (c *Cluster) PartitionMasters(i int) {
	c.Net.PartitionMasters(i)
}

// HealMasters reconnects the control-plane replicas; the replicated store
// flushes writes queued on the majority side and the isolated replica
// catches up.
func (c *Cluster) HealMasters() {
	c.Net.HealMasters()
}

// applyMasterLinks mirrors the network's master-link state into the
// replicated store's reachability.
func (c *Cluster) applyMasterLinks(rep *store.Replicated, isolated int) {
	if isolated < 0 {
		rep.Heal()
		return
	}
	rest := make([]int, 0, rep.Replicas()-1)
	for i := 0; i < rep.Replicas(); i++ {
		if i != isolated {
			rest = append(rest, i)
		}
	}
	rep.Partition([]int{isolated}, rest)
}

// DropStoreReplica destroys the backing store replica of apiserver i — disk
// loss under one etcd member. The member leaves the raft group; reads and
// writes through apiserver i fail until the replica is restored.
func (c *Cluster) DropStoreReplica(i int) {
	if rep, ok := c.Backend.(*store.Replicated); ok {
		rep.DropReplica(i)
	}
}

// RestoreStoreReplica rebuilds store replica i from a surviving member's
// snapshot and restarts apiserver i over it.
func (c *Cluster) RestoreStoreReplica(i int) {
	if rep, ok := c.Backend.(*store.Replicated); ok {
		rep.RestoreReplica(i)
		c.Servers[i].Restart()
	}
}

// --- topology fault axes ------------------------------------------------------
//
// These implement inject.Topology: the time-triggered cloud-edge fault axes
// (edge-link flap, zone partition, mass node-kill) act through them. The
// virtual network owns the link state; the cluster mirrors a severed zone
// uplink into the zone's kubelets (their heartbeats cross the same link the
// data plane lost), exactly as applyMasterLinks mirrors master cuts into the
// replicated store.

// Zones returns the number of topology zones (1 for flat clusters).
func (c *Cluster) Zones() int {
	if c.cfg.Zones < 2 {
		return 1
	}
	return c.cfg.Zones
}

// ZoneName names zone i of this cluster's topology.
func (c *Cluster) ZoneName(i int) string { return netsim.ZoneName(i, c.cfg.Zones) }

// ZoneNodes returns the nodes of a zone in creation order.
func (c *Cluster) ZoneNodes(zone string) []string { return c.zoneNodes[zone] }

// PartitionZone severs a zone's uplink: cross-zone traffic times out and the
// zone's kubelets lose the control plane (heartbeats stop — the node
// lifecycle controller takes it from there if the cut outlives the grace
// period). Intra-zone traffic keeps flowing.
func (c *Cluster) PartitionZone(zone string) {
	c.Net.SetZoneLink(zone, false)
	c.setZoneKubelets(zone, true)
}

// HealZone restores a partitioned zone's uplink and its kubelets' control-
// plane connectivity.
func (c *Cluster) HealZone(zone string) {
	c.Net.SetZoneLink(zone, true)
	c.setZoneKubelets(zone, false)
}

// SetZoneLink cuts or restores a zone's uplink at the data plane only — the
// edge-link flap axis, whose down phases are far shorter than the heartbeat
// grace period, so the control plane never reacts.
func (c *Cluster) SetZoneLink(zone string, up bool) {
	c.Net.SetZoneLink(zone, up)
}

// KillZoneNodes crashes every node of a zone at once (the mass node-kill
// axis): kubelets stop dead and the nodes' links drop, so even intra-zone
// requests to their pods time out.
func (c *Cluster) KillZoneNodes(zone string) {
	for _, name := range c.zoneNodes[zone] {
		if name == ControlPlaneNode {
			continue
		}
		c.Kubelets[name].SetDown(true)
		c.Net.SetNodeLink(name, false)
	}
}

// RecoverZoneNodes reverses KillZoneNodes.
func (c *Cluster) RecoverZoneNodes(zone string) {
	for _, name := range c.zoneNodes[zone] {
		if name == ControlPlaneNode {
			continue
		}
		c.Kubelets[name].SetDown(false)
		c.Net.SetNodeLink(name, true)
	}
}

// setZoneKubelets mirrors a zone partition into kubelet connectivity: a cut
// core uplink severs every *other* zone from the control plane; any other
// cut severs that zone's own kubelets.
func (c *Cluster) setZoneKubelets(zone string, down bool) {
	core := netsim.ZoneName(0, c.cfg.Zones)
	if zone == core {
		for _, name := range c.nodeOrder {
			if name != ControlPlaneNode && c.zoneByNode[name] != core {
				c.Kubelets[name].SetDown(down)
			}
		}
		return
	}
	for _, name := range c.zoneNodes[zone] {
		if name != ControlPlaneNode {
			c.Kubelets[name].SetDown(down)
		}
	}
}

// TopologyDegraded reports whether a topology fault is currently applied —
// the collector's disruption-window probe.
func (c *Cluster) TopologyDegraded() bool { return c.Net.TopologyImpaired() }

// TopologyConverged reports whether the cluster has re-converged after a
// topology fault: links restored, kubelets heartbeating, routes up on every
// node, and no NoExecute wreckage left on the node objects — the probe the
// recovery window is measured against.
func (c *Cluster) TopologyConverged() bool {
	if c.Net.TopologyImpaired() {
		return false
	}
	for _, name := range c.nodeOrder {
		if c.Kubelets[name].IsDown() || !c.Net.RoutesUp(name) {
			return false
		}
	}
	for _, obj := range c.Client("topology-probe").List(spec.KindNode, "") {
		node := obj.(*spec.Node)
		if !node.Status.Ready {
			return false
		}
		for _, t := range node.Spec.Taints {
			if t.Effect == spec.TaintNoExecute {
				return false
			}
		}
	}
	return true
}

// StoreLagMax returns the largest revision lag of any live store replica
// behind the most advanced one — 0 when converged or with a single store.
// A positive lag means some apiserver is serving a stale view: the
// campaign's stale-read-window probe.
func (c *Cluster) StoreLagMax() int64 {
	rep, ok := c.Backend.(*store.Replicated)
	if !ok {
		return 0
	}
	max := rep.MaxRevision()
	var lag int64
	for i := 0; i < rep.Replicas(); i++ {
		if rep.ReplicaDown(i) {
			continue
		}
		if d := max - rep.RevisionAt(i); d > lag {
			lag = d
		}
	}
	return lag
}
