package cluster

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/spec"
)

func bootCluster(t *testing.T, seed int64) *Cluster {
	t.Helper()
	c := New(Config{Seed: seed})
	c.Start()
	if !c.AwaitSettled(30 * time.Second) {
		t.Fatal("cluster did not settle within 30s of simulated time")
	}
	return c
}

func appDeployment(name string, replicas int64) *spec.Deployment {
	return &spec.Deployment{
		Metadata: spec.ObjectMeta{
			Name: name, Namespace: spec.DefaultNamespace,
			Labels: map[string]string{spec.LabelApp: name},
		},
		Spec: spec.DeploymentSpec{
			Replicas: replicas,
			Selector: spec.LabelSelector{MatchLabels: map[string]string{spec.LabelApp: name}},
			Template: spec.PodTemplate{
				Labels: map[string]string{spec.LabelApp: name},
				Spec: spec.PodSpec{
					Containers: []spec.Container{{
						Name: "web", Image: "registry.local/webapp:1.0",
						Command:          []string{"serve"},
						RequestsMilliCPU: 250, RequestsMemMB: 128,
						LimitsMilliCPU: 500, LimitsMemMB: 256, Port: 8080,
					}},
					VolumeSeed: "seed-v1",
				},
			},
			MaxSurge: 1,
		},
	}
}

func appService(name string) *spec.Service {
	return &spec.Service{
		Metadata: spec.ObjectMeta{
			Name: name, Namespace: spec.DefaultNamespace,
			Labels: map[string]string{spec.LabelApp: name},
		},
		Spec: spec.ServiceSpec{
			Selector: map[string]string{spec.LabelApp: name},
			Ports:    []spec.ServicePort{{Port: 80, TargetPort: 8080, Protocol: "TCP"}},
		},
	}
}

func TestClusterBootstrap(t *testing.T) {
	c := bootCluster(t, 1)
	admin := c.Client("test")

	nodes := admin.List(spec.KindNode, "")
	if len(nodes) != 5 {
		t.Fatalf("%d nodes, want 5", len(nodes))
	}
	for _, no := range nodes {
		node := no.(*spec.Node)
		if !node.Status.Ready {
			t.Fatalf("node %s not ready", node.Metadata.Name)
		}
		if !c.Net.RoutesUp(node.Metadata.Name) {
			t.Fatalf("routes not up on %s", node.Metadata.Name)
		}
	}
	if !c.Net.DNSHealthy() {
		t.Fatal("DNS unhealthy after bootstrap")
	}
	if !c.ControlPlaneResponsive() {
		t.Fatal("control plane not responsive")
	}
	// Flannel daemon pods: one per node.
	dsObj, err := admin.Get(spec.KindDaemonSet, spec.SystemNamespace, "kube-flannel")
	if err != nil {
		t.Fatal(err)
	}
	ds := dsObj.(*spec.DaemonSet)
	if ds.Status.NumberReady != 5 {
		t.Fatalf("flannel ready = %d, want 5", ds.Status.NumberReady)
	}
}

func TestDeploymentBecomesReadyAndServes(t *testing.T) {
	c := bootCluster(t, 2)
	user := c.Client("kbench")
	if err := user.Create(appDeployment("webapp", 2)); err != nil {
		t.Fatal(err)
	}
	if err := user.Create(appService("webapp")); err != nil {
		t.Fatal(err)
	}
	deadline := c.Loop.Now() + 40*time.Second
	var ready int64
	for c.Loop.Now() < deadline {
		c.Loop.RunUntil(c.Loop.Now() + time.Second)
		if obj, err := user.Get(spec.KindDeployment, spec.DefaultNamespace, "webapp"); err == nil {
			ready = obj.(*spec.Deployment).Status.ReadyReplicas
			if ready == 2 {
				break
			}
		}
	}
	if ready != 2 {
		t.Fatalf("readyReplicas = %d, want 2", ready)
	}

	// Pods must not land on the control-plane or monitoring nodes.
	for _, po := range user.List(spec.KindPod, spec.DefaultNamespace) {
		pod := po.(*spec.Pod)
		if pod.Spec.NodeName == ControlPlaneNode || pod.Spec.NodeName == c.MonitoringNode() {
			t.Fatalf("app pod scheduled on reserved node %s", pod.Spec.NodeName)
		}
	}

	// The service answers from the monitoring node.
	svcObj, err := user.Get(spec.KindService, spec.DefaultNamespace, "webapp")
	if err != nil {
		t.Fatal(err)
	}
	vip := svcObj.(*spec.Service).Spec.ClusterIP
	okCount := 0
	for i := 0; i < 20; i++ {
		res := c.Net.Request(c.MonitoringNode(), vip, 80)
		if !res.Failed() {
			okCount++
			if res.Latency <= 0 || res.Latency > time.Second {
				t.Fatalf("implausible latency %v", res.Latency)
			}
		}
		c.Loop.RunUntil(c.Loop.Now() + 50*time.Millisecond)
	}
	if okCount < 18 {
		t.Fatalf("only %d/20 requests succeeded", okCount)
	}
}

func TestScaleUp(t *testing.T) {
	c := bootCluster(t, 3)
	user := c.Client("kbench")
	if err := user.Create(appDeployment("webapp", 2)); err != nil {
		t.Fatal(err)
	}
	c.Loop.RunUntil(c.Loop.Now() + 10*time.Second)
	obj, err := user.Get(spec.KindDeployment, spec.DefaultNamespace, "webapp")
	if err != nil {
		t.Fatal(err)
	}
	d := obj.(*spec.Deployment)
	d.Spec.Replicas = 5
	if err := user.Update(d); err != nil {
		t.Fatal(err)
	}
	deadline := c.Loop.Now() + 30*time.Second
	var ready int64
	for c.Loop.Now() < deadline {
		c.Loop.RunUntil(c.Loop.Now() + time.Second)
		if obj, err := user.Get(spec.KindDeployment, spec.DefaultNamespace, "webapp"); err == nil {
			ready = obj.(*spec.Deployment).Status.ReadyReplicas
			if ready == 5 {
				break
			}
		}
	}
	if ready != 5 {
		t.Fatalf("readyReplicas after scale-up = %d, want 5", ready)
	}
}

func TestFailoverRespawnsPods(t *testing.T) {
	c := bootCluster(t, 4)
	user := c.Client("kbench")
	if err := user.Create(appDeployment("webapp", 2)); err != nil {
		t.Fatal(err)
	}
	c.Loop.RunUntil(c.Loop.Now() + 10*time.Second)

	// Find a node hosting an app pod and taint it NoExecute (the paper's
	// failover workload).
	var victim string
	for _, po := range user.List(spec.KindPod, spec.DefaultNamespace) {
		pod := po.(*spec.Pod)
		if pod.Spec.NodeName != "" {
			victim = pod.Spec.NodeName
			break
		}
	}
	if victim == "" {
		t.Fatal("no scheduled app pod found")
	}
	nodeObj, err := user.Get(spec.KindNode, "", victim)
	if err != nil {
		t.Fatal(err)
	}
	node := nodeObj.(*spec.Node)
	node.Spec.Taints = append(node.Spec.Taints, spec.Taint{Key: "kbench-failover", Effect: spec.TaintNoExecute})
	if err := user.Update(node); err != nil {
		t.Fatal(err)
	}

	deadline := c.Loop.Now() + 60*time.Second
	ok := false
	for c.Loop.Now() < deadline {
		c.Loop.RunUntil(c.Loop.Now() + time.Second)
		obj, err := user.Get(spec.KindDeployment, spec.DefaultNamespace, "webapp")
		if err != nil {
			continue
		}
		if obj.(*spec.Deployment).Status.ReadyReplicas != 2 {
			continue
		}
		// All pods must be off the tainted node.
		onVictim := false
		for _, po := range user.List(spec.KindPod, spec.DefaultNamespace) {
			if po.(*spec.Pod).Spec.NodeName == victim && po.(*spec.Pod).Active() {
				onVictim = true
			}
		}
		if !onVictim {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("failover did not respawn pods off the tainted node")
	}
}

func TestNodeCrashTriggersEviction(t *testing.T) {
	c := bootCluster(t, 5)
	user := c.Client("kbench")
	if err := user.Create(appDeployment("webapp", 2)); err != nil {
		t.Fatal(err)
	}
	c.Loop.RunUntil(c.Loop.Now() + 10*time.Second)
	var victim string
	for _, po := range user.List(spec.KindPod, spec.DefaultNamespace) {
		pod := po.(*spec.Pod)
		if pod.Spec.NodeName != "" {
			victim = pod.Spec.NodeName
			break
		}
	}
	c.CrashNode(victim)
	// Heartbeats stop; after the grace period the node goes NotReady and
	// pods are evicted and respawned elsewhere.
	deadline := c.Loop.Now() + 120*time.Second
	ok := false
	for c.Loop.Now() < deadline {
		c.Loop.RunUntil(c.Loop.Now() + 2*time.Second)
		obj, err := user.Get(spec.KindDeployment, spec.DefaultNamespace, "webapp")
		if err != nil {
			continue
		}
		if obj.(*spec.Deployment).Status.ReadyReplicas != 2 {
			continue
		}
		healthyElsewhere := true
		for _, po := range user.List(spec.KindPod, spec.DefaultNamespace) {
			pod := po.(*spec.Pod)
			if pod.Active() && pod.Status.Ready && pod.Spec.NodeName == victim {
				healthyElsewhere = false
			}
		}
		if healthyElsewhere {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("pods were not rescheduled off the crashed node")
	}
	nodeObj, err := user.Get(spec.KindNode, "", victim)
	if err != nil {
		t.Fatal(err)
	}
	if nodeObj.(*spec.Node).Status.Ready {
		t.Fatal("crashed node still marked Ready")
	}
}
