package cluster

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// bootHA boots a three-replica control plane and lets the standby control
// loops join (they are staggered 2 s apart).
func bootHA(t *testing.T, seed int64) *Cluster {
	t.Helper()
	c := New(Config{Seed: seed, ControlPlaneReplicas: 3})
	c.Start()
	if !c.AwaitSettled(30 * time.Second) {
		t.Fatal("HA cluster did not settle within 30s of simulated time")
	}
	c.Loop.RunUntil(c.Loop.Now() + 6*time.Second)
	return c
}

// awaitDeploymentReady drives the loop until the deployment reports all
// replicas ready, or the deadline passes.
func awaitDeploymentReady(t *testing.T, c *Cluster, name string, deadline time.Duration) {
	t.Helper()
	admin := c.Client("test")
	limit := c.Loop.Now() + deadline
	for c.Loop.Now() < limit {
		c.Loop.RunUntil(c.Loop.Now() + time.Second)
		obj, err := admin.Get(spec.KindDeployment, spec.DefaultNamespace, name)
		if err != nil {
			continue
		}
		if d := obj.(*spec.Deployment); d.Status.ReadyReplicas >= d.Spec.Replicas {
			return
		}
	}
	t.Fatalf("deployment %s not ready within %v", name, deadline)
}

// An apiserver crash must not take the cluster down: clients fail over to the
// surviving replicas, a standby manager/scheduler pair takes over after the
// lease expires, and the workload completes.
func TestHAAPIServerCrashFailover(t *testing.T) {
	c := bootHA(t, 5001)

	c.CrashAPIServer(0)
	// The replica-0 leaders lose their leases; a standby takes over within
	// roughly lease duration + retry interval (~17 s). Give it 25 s.
	limit := c.Loop.Now() + 25*time.Second
	for c.Loop.Now() < limit && !c.ControlPlaneResponsive() {
		c.Loop.RunUntil(c.Loop.Now() + 500*time.Millisecond)
	}
	if !c.ControlPlaneResponsive() {
		t.Fatal("control plane never recovered after apiserver crash")
	}

	// The workload proceeds against the survivors.
	admin := c.Client("kbench")
	if err := admin.Create(appDeployment("crash-ride", 2)); err != nil {
		t.Fatalf("create after crash: %v", err)
	}
	awaitDeploymentReady(t, c, "crash-ride", 40*time.Second)

	// The restarted replica rejoins and serves again.
	c.RestartAPIServer(0)
	c.Loop.RunUntil(c.Loop.Now() + 5*time.Second)
	if c.Servers[0].Down() {
		t.Fatal("restarted apiserver still down")
	}
	c.Stop()
}

// A master partition isolates one replica: its apiserver serves stale reads
// and fails writes, the majority side keeps the cluster alive, and healing
// reconverges the replicas.
func TestHAMasterPartitionHeals(t *testing.T) {
	c := bootHA(t, 5002)
	rep := c.Backend.(*store.Replicated)

	c.PartitionMasters(0)
	// Leadership moves to the majority side (the replica-0 leaders cannot
	// renew through their quorumless apiserver).
	limit := c.Loop.Now() + 40*time.Second
	for c.Loop.Now() < limit {
		c.Loop.RunUntil(c.Loop.Now() + time.Second)
		if c.ControlPlaneResponsive() && !c.Managers[0].IsLeading() {
			break
		}
	}
	if c.Managers[0].IsLeading() {
		t.Fatal("isolated manager still claims leadership after partition")
	}
	if !c.ControlPlaneResponsive() {
		t.Fatal("majority side never took over during partition")
	}

	// Writes land on the majority side; the isolated replica falls behind.
	admin := c.Client("kbench")
	if err := admin.Create(appDeployment("split-ride", 2)); err != nil {
		t.Fatalf("create during partition: %v", err)
	}
	// Observe through a majority-side server: a client homed on the isolated
	// apiserver would read its stale cache — the stale-read window itself —
	// and never see the deployment land.
	probe := c.Servers[1].ClientFor("probe")
	ready := false
	for end := c.Loop.Now() + 40*time.Second; c.Loop.Now() < end && !ready; {
		c.Loop.RunUntil(c.Loop.Now() + time.Second)
		if obj, err := probe.Get(spec.KindDeployment, spec.DefaultNamespace, "split-ride"); err == nil {
			d := obj.(*spec.Deployment)
			ready = d.Status.ReadyReplicas >= d.Spec.Replicas
		}
	}
	if !ready {
		t.Fatal("deployment did not become ready on the majority side")
	}
	// Meanwhile the isolated apiserver still answers — with the old view.
	if _, err := c.Servers[0].ClientFor("stale-probe").Get(spec.KindDeployment, spec.DefaultNamespace, "split-ride"); err == nil {
		t.Fatal("isolated replica already sees the majority-side deployment")
	}
	if lag := c.StoreLagMax(); lag == 0 {
		t.Fatal("isolated replica reports no revision lag during partition")
	}

	c.HealMasters()
	c.Loop.RunUntil(c.Loop.Now() + 10*time.Second)
	if lag := c.StoreLagMax(); lag != 0 {
		t.Fatalf("replicas did not reconverge after heal: lag %d", lag)
	}
	for i := 0; i < rep.Replicas(); i++ {
		if rep.ReplicaDown(i) {
			t.Fatalf("replica %d down after heal", i)
		}
	}
	c.Stop()
}

// Dropping a store replica leaves its apiserver unusable (clients fail over);
// restoring it from a surviving member brings both back.
func TestHAStoreLossAndRestore(t *testing.T) {
	c := bootHA(t, 5003)
	rep := c.Backend.(*store.Replicated)

	c.DropStoreReplica(1)
	if !rep.ReplicaDown(1) {
		t.Fatal("dropped replica not marked down")
	}
	admin := c.Client("kbench")
	if err := admin.Create(appDeployment("loss-ride", 2)); err != nil {
		t.Fatalf("create after store loss: %v", err)
	}
	awaitDeploymentReady(t, c, "loss-ride", 40*time.Second)

	c.RestoreStoreReplica(1)
	c.Loop.RunUntil(c.Loop.Now() + 5*time.Second)
	if rep.ReplicaDown(1) {
		t.Fatal("restored replica still down")
	}
	if lag := c.StoreLagMax(); lag != 0 {
		t.Fatalf("restored replica lags after state transfer: lag %d", lag)
	}
	// The restored replica serves reads again through its apiserver.
	if _, err := c.Servers[1].ClientFor("probe").Get(spec.KindDeployment, spec.DefaultNamespace, "loss-ride"); err != nil {
		t.Fatalf("read through restored replica: %v", err)
	}
	c.Stop()
}

// The same HA fault scenario under the same seed is bit-reproducible.
func TestHACrashScenarioDeterministic(t *testing.T) {
	run := func() (int64, int, int) {
		c := New(Config{Seed: 5004, ControlPlaneReplicas: 3})
		c.Start()
		if !c.AwaitSettled(30 * time.Second) {
			t.Fatal("did not settle")
		}
		c.Loop.RunUntil(c.Loop.Now() + 6*time.Second)
		c.CrashAPIServer(0)
		c.Loop.RunUntil(c.Loop.Now() + 20*time.Second)
		admin := c.Client("kbench")
		_ = admin.Create(appDeployment("det-ha", 2))
		c.Loop.RunUntil(c.Loop.Now() + 30*time.Second)
		c.RestartAPIServer(0)
		c.Loop.RunUntil(c.Loop.Now() + 10*time.Second)
		rev := c.Backend.Revision()
		pods := len(admin.List(spec.KindPod, ""))
		errs := c.Server.Audit().ErrorsBy("kbench")
		c.Stop()
		return rev, pods, errs
	}
	rev1, pods1, errs1 := run()
	rev2, pods2, errs2 := run()
	if rev1 != rev2 || pods1 != pods2 || errs1 != errs2 {
		t.Fatalf("same-seed HA crash runs diverged: rev %d/%d pods %d/%d errs %d/%d",
			rev1, rev2, pods1, pods2, errs1, errs2)
	}
}
