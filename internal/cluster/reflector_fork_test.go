package cluster

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// A reflector subscription established on a forked cluster (the share
// regime) must prime from the restored store state — the same re-list a
// component performs after a real restart — and then track live events on
// the fork's own watch fan-out.
func TestReflectorSubscriptionEstablishedMidFork(t *testing.T) {
	c := bootCluster(t, 4101)
	snap := c.Snapshot()
	c.Stop()

	fork := snap.Fork(777)
	client := fork.Client("reflector-test")
	view := apiserver.NewReflector(fork.Loop, client, 5*time.Second, nil,
		spec.KindNode, spec.KindDeployment)
	view.Start()

	// Prime must see the restored state: every node, and the system
	// deployments captured in the snapshot.
	wantNodes := len(client.List(spec.KindNode, ""))
	if wantNodes == 0 {
		t.Fatal("fork has no nodes")
	}
	if got := view.Len(spec.KindNode); got != wantNodes {
		t.Fatalf("primed node view has %d entries, want %d", got, wantNodes)
	}
	if _, ok := view.Get(spec.KindDeployment, spec.SystemNamespace, "prometheus"); !ok {
		t.Fatal("primed view missing the restored prometheus deployment")
	}

	// Live events on the fork reach the mid-fork subscription.
	if err := client.Create(appDeployment("mid-fork", 1)); err != nil {
		t.Fatal(err)
	}
	fork.Loop.RunUntil(fork.Loop.Now() + time.Second)
	obj, ok := view.Get(spec.KindDeployment, spec.DefaultNamespace, "mid-fork")
	if !ok {
		t.Fatal("mid-fork subscription missed a live event")
	}
	if !obj.Meta().Sealed() {
		t.Fatal("view must hold sealed instances on forks too")
	}
	fork.Stop()
}

// The driver-facing consequence of the informer pipeline on forks: the
// controllers' views (rebuilt at fork start) reconcile the forked cluster
// exactly like a restarted one — a new deployment still rolls out to ready.
func TestForkedControllersReconcileThroughViews(t *testing.T) {
	c := bootCluster(t, 4102)
	snap := c.Snapshot()
	c.Stop()

	fork := snap.Fork(778)
	client := fork.Client("test")
	if err := client.Create(appDeployment("post-fork", 2)); err != nil {
		t.Fatal(err)
	}
	deadline := fork.Loop.Now() + 30*time.Second
	for fork.Loop.Now() < deadline {
		fork.Loop.RunUntil(fork.Loop.Now() + time.Second)
		obj, err := client.Get(spec.KindDeployment, spec.DefaultNamespace, "post-fork")
		if err == nil && obj.(*spec.Deployment).Status.ReadyReplicas == 2 {
			fork.Stop()
			return
		}
	}
	t.Fatal("deployment created on a fork never became ready through the informer pipeline")
}
