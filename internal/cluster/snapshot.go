package cluster

import (
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/kubelet"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// This file implements bootstrapped-cluster snapshots: capture a settled
// cluster once, then fork cheap copies that resume at the settled instant —
// the campaign fast path that removes the ~20 s simulated bootstrap from
// every injection experiment.
//
// A Snapshot holds only immutable data: store contents (every replica of a
// replicated backend), the API server's admission counters and audit trail,
// the controller manager's child-name counter, and each kubelet's runtime
// state (image cache, IP allocator, per-pod pipeline position). Everything
// else — watch registrations, periodic timers, controller caches, the
// scheduler's pending/assumed sets, the data-plane view — is deliberately
// NOT captured: a fork rebuilds it by re-listing the restored store, the
// same recovery path every real component walks after a restart. That keeps
// the snapshot free of closures (simulation events cannot be copied between
// loops) and makes one snapshot safely forkable from many goroutines at
// once.
//
// Seed split: the snapshot's bootstrap runs under one canonical seed; each
// Fork(seed) gets a fresh RNG seeded per experiment while resuming the
// snapshot's virtual clock and event-budget accounting. See the package
// documentation for the equivalence contract this implies.
type Snapshot struct {
	cfg      Config
	now      time.Duration
	executed int64

	store *store.Snapshot
	// servers holds one snapshot per control-plane replica (len 1 without
	// HA): admission counters differ per replica (strided residues), audit
	// copies are identical (shared trail) and restore idempotently.
	servers  []apiserver.Snapshot
	nameSeq  int64
	kubelets map[string]kubelet.Snapshot
}

// settleMargin is simulated after capture-point checks before the state is
// read: it drains in-flight watch deliveries (store and dispatch latencies
// are ~1 ms) so the capture sees a quiescent system, not one with committed-
// but-undelivered events that a fork would silently drop.
const settleMargin = 100 * time.Millisecond

// forkDither is the upper bound of the random phase offset each fork runs
// before it is handed to the caller. Forking restarts every periodic timer
// at the same instant, so without it all forks of one snapshot would share
// exactly the same component phases (scheduler ticks, controller sync and
// resync, heartbeats) relative to the measurement window — a degenerate
// alignment a full replay never exhibits, which would collapse the variance
// of golden-run baselines and inflate every z-score. The dither is drawn
// from the fork's own RNG, so it is deterministic per seed; one second
// covers the short control-loop periods that dominate window-visible
// timing (scheduler 100 ms, controller sync 50 ms).
const forkDither = time.Second

// Snapshot captures the cluster's resumable state. Call it on a started,
// settled cluster (after AwaitSettled and any scenario setup); the capture
// advances the clock by a small settle margin first so no watch delivery is
// in flight. The result is immutable and safe for concurrent Fork calls.
func (c *Cluster) Snapshot() *Snapshot {
	c.Loop.RunUntil(c.Loop.Now() + settleMargin)
	snap := &Snapshot{
		cfg:      c.cfg.Clone(),
		now:      c.Loop.Now(),
		executed: c.Loop.EventsExecuted(),
		store:    store.CaptureSnapshot(c.Backend),
		nameSeq:  c.Manager.NameSeq(),
		kubelets: make(map[string]kubelet.Snapshot, len(c.Kubelets)),
	}
	for _, srv := range c.Servers {
		snap.servers = append(snap.servers, srv.Snapshot())
	}
	for _, name := range c.nodeOrder {
		snap.kubelets[name] = c.Kubelets[name].Snapshot()
	}
	return snap
}

// WorkerView returns a copy of the snapshot that shares no byte arrays or
// map/slice structure with the original: the store snapshot's value bytes
// move into fresh per-replica arenas (store.Snapshot.Clone) and each server
// snapshot gets private maps (apiserver.Snapshot.Clone). Forking from the
// view is byte-equivalent to forking from the original — the content is
// identical — but the fork's restore path reads memory owned by one worker
// instead of the one array set every parallel worker would otherwise hit.
// Sealed decoded objects and kubelet pod records stay shared: both are
// immutable, and only read through pointers.
//
// The campaign engine calls this once per (worker, workload); the cost is
// one pass over the store bytes, amortized over every experiment the worker
// forks from it.
func (s *Snapshot) WorkerView() *Snapshot {
	view := &Snapshot{
		cfg:      s.cfg.Clone(),
		now:      s.now,
		executed: s.executed,
		store:    s.store.Clone(),
		nameSeq:  s.nameSeq,
		kubelets: make(map[string]kubelet.Snapshot, len(s.kubelets)),
	}
	for _, srv := range s.servers {
		view.servers = append(view.servers, srv.Clone())
	}
	for name, ks := range s.kubelets {
		view.kubelets[name] = ks
	}
	return view
}

// Fork builds a started cluster that resumes from the snapshot: same store
// contents, same virtual clock, same settled workloads — but all randomness
// from here on is drawn from a fresh RNG seeded with seed. The fork is
// already running (components started, leases adopted, data plane primed);
// drive its Loop directly, there is no bootstrap to await.
func (s *Snapshot) Fork(seed int64) *Cluster {
	cfg := s.cfg.Clone()
	cfg.Seed = seed
	loop := sim.NewLoop(seed)
	loop.Resume(s.now, s.executed)

	backend := newBackend(loop, cfg)
	store.RestoreSnapshot(backend, s.store)
	c := assemble(cfg, loop, backend)
	// Rebuild each replica's watch cache from the restored store and resume
	// its admission counters before any component starts issuing requests.
	for i, srv := range c.Servers {
		srv.RestoreSnapshot(s.servers[i])
	}
	// Seed-derived UID skew: replayed runs never reach the window with
	// exactly the same UID counter (bootstrap length varies per seed), and
	// per-pod behavior keyed on UIDs must keep that run-to-run variability.
	// Every replica skews by the same amount, preserving the disjoint
	// per-replica residues the admission stride established.
	skew := loop.Rand().Int63n(1000)
	for _, srv := range c.Servers {
		srv.SkewUIDCounter(skew)
	}
	c.Manager.ResumeNameSeq(s.nameSeq)

	// Kubelets adopt their pods before starting, so the pod watch treats
	// them as already-owned state rather than new arrivals.
	for _, name := range c.nodeOrder {
		if ks, ok := s.kubelets[name]; ok {
			c.Kubelets[name].RestoreSnapshot(ks)
		}
	}

	c.started = true
	for _, name := range c.nodeOrder {
		c.Kubelets[name].Start()
	}
	// The data plane re-lists the restored control-plane state (netsim's
	// watches only carry changes), then the control loops start: their
	// electors find their own identities on the restored leases and resume
	// leadership on the first tick, and the controllers and scheduler prime
	// their caches from the store exactly as after a component restart.
	c.Net.Prime()
	c.startControlLoops(0)
	// Run a seed-random phase dither so this fork's component timers
	// de-phase from every other fork's (see forkDither).
	loop.RunUntil(loop.Now() + time.Duration(loop.Rand().Int63n(int64(forkDither))))
	return c
}
