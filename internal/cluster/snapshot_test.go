package cluster

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/spec"
)

// forkHealthy asserts the invariants a settled cluster must keep: routes up
// on every node, DNS answering, control plane leading, monitoring serving.
func forkHealthy(t *testing.T, c *Cluster, label string) {
	t.Helper()
	admin := c.Client("test")
	for _, no := range admin.List(spec.KindNode, "") {
		if !c.Net.RoutesUp(no.Meta().Name) {
			t.Errorf("%s: routes down on %s", label, no.Meta().Name)
		}
	}
	if !c.Net.DNSHealthy() {
		t.Errorf("%s: DNS unhealthy", label)
	}
	if !c.ControlPlaneResponsive() {
		t.Errorf("%s: control plane unresponsive", label)
	}
	obj, err := admin.Get(spec.KindDeployment, spec.SystemNamespace, "prometheus")
	if err != nil {
		t.Fatalf("%s: prometheus deployment missing: %v", label, err)
	}
	if d := obj.(*spec.Deployment); d.Status.ReadyReplicas < d.Spec.Replicas {
		t.Errorf("%s: prometheus not ready (%d/%d)", label, d.Status.ReadyReplicas, d.Spec.Replicas)
	}
}

// A fork must resume settled: every system invariant holds at the fork
// instant and keeps holding while the fork runs on, without the system pods
// being restarted or replaced.
func TestForkResumesSettled(t *testing.T) {
	c := bootCluster(t, 4001)
	snap := c.Snapshot()

	fork := snap.Fork(9001)
	forkHealthy(t, fork, "at fork")

	podsBefore := len(fork.Client("test").List(spec.KindPod, spec.SystemNamespace))
	fork.Loop.RunUntil(fork.Loop.Now() + 30*time.Second)
	forkHealthy(t, fork, "after 30s")
	podsAfter := len(fork.Client("test").List(spec.KindPod, spec.SystemNamespace))
	if podsBefore != podsAfter {
		t.Errorf("system pod set churned across the fork window: %d -> %d", podsBefore, podsAfter)
	}
	fork.Stop()
}

// Forking must not mutate the snapshot: a second fork from the same
// snapshot sees the same state regardless of what the first fork did to its
// own cluster.
func TestForkIsolation(t *testing.T) {
	c := bootCluster(t, 4002)
	snap := c.Snapshot()

	first := snap.Fork(9002)
	admin := first.Client("vandal")
	if err := admin.Create(appDeployment("intruder", 3)); err != nil {
		t.Fatalf("create in first fork: %v", err)
	}
	first.Loop.RunUntil(first.Loop.Now() + 20*time.Second)
	first.Stop()

	second := snap.Fork(9003)
	if _, err := second.Client("test").Get(spec.KindDeployment, spec.DefaultNamespace, "intruder"); err == nil {
		t.Fatal("first fork's writes leaked into the second fork")
	}
	forkHealthy(t, second, "second fork")
	second.Stop()
}

// Two forks with the same seed are bit-identical simulations: same store
// revision, same pod inventory, same audit counters after the same window.
func TestForkDeterminism(t *testing.T) {
	c := bootCluster(t, 4003)
	snap := c.Snapshot()

	run := func(seed int64) (int64, int, int) {
		f := snap.Fork(seed)
		admin := f.Client("kbench")
		_ = admin.Create(appDeployment("det", 2))
		_ = admin.Create(appService("det"))
		f.Loop.RunUntil(f.Loop.Now() + 30*time.Second)
		rev := f.Backend.Revision()
		pods := len(admin.List(spec.KindPod, ""))
		errs := f.Server.Audit().ErrorsBy("kbench")
		f.Stop()
		return rev, pods, errs
	}
	rev1, pods1, errs1 := run(7777)
	rev2, pods2, errs2 := run(7777)
	if rev1 != rev2 || pods1 != pods2 || errs1 != errs2 {
		t.Fatalf("same-seed forks diverged: rev %d/%d pods %d/%d errs %d/%d",
			rev1, rev2, pods1, pods2, errs1, errs2)
	}
	rev3, _, _ := run(7778)
	if rev3 == 0 {
		t.Fatal("fork with fresh seed did nothing")
	}
}

// A replicated-backend snapshot captures every replica; the fork keeps
// serving from the restored primary and re-converges replication for new
// writes once its fresh raft group elects a leader.
func TestForkReplicatedBackend(t *testing.T) {
	c := New(Config{Seed: 4004, ControlPlaneReplicas: 3})
	c.Start()
	if !c.AwaitSettled(30 * time.Second) {
		t.Fatal("replicated cluster did not settle")
	}
	snap := c.Snapshot()

	fork := snap.Fork(9004)
	forkHealthy(t, fork, "replicated fork")
	admin := fork.Client("kbench")
	if err := admin.Create(appDeployment("repl", 2)); err != nil {
		t.Fatalf("create on replicated fork: %v", err)
	}
	fork.Loop.RunUntil(fork.Loop.Now() + 20*time.Second)
	forkHealthy(t, fork, "replicated fork after 20s")
	fork.Stop()
}
