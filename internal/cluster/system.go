package cluster

import (
	"time"

	"github.com/mutiny-sim/mutiny/internal/netsim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// installSystemWorkloads creates the system-plane objects: namespaces, the
// network-manager DaemonSet and its ConfigMap, coreDNS, and the Prometheus
// monitoring deployment — the same inventory as the paper's kubeadm +
// flannel + Prometheus setup (§V-A).
func (c *Cluster) installSystemWorkloads() {
	admin := c.Client("bootstrap")

	for _, ns := range []string{spec.DefaultNamespace, spec.SystemNamespace} {
		_ = admin.Create(&spec.Namespace{
			Metadata: spec.ObjectMeta{Name: ns},
			Phase:    "Active",
		})
	}

	_ = admin.Create(&spec.ConfigMap{
		Metadata: spec.ObjectMeta{Name: netsim.NetConfigMapName, Namespace: spec.SystemNamespace},
		Data:     map[string]string{netsim.NetConfigKey: netsim.NetConfigValue},
	})

	// Network manager: one pod per node, tolerates everything, critical
	// priority — the workload whose label corruption drives the paper's
	// flagship uncontrolled-replication outage.
	_ = admin.Create(&spec.DaemonSet{
		Metadata: spec.ObjectMeta{
			Name: "kube-flannel", Namespace: spec.SystemNamespace,
			Labels: map[string]string{spec.LabelApp: netsim.NetManagerLabel},
		},
		Spec: spec.DaemonSetSpec{
			Selector: spec.LabelSelector{MatchLabels: map[string]string{spec.LabelApp: netsim.NetManagerLabel}},
			Template: spec.PodTemplate{
				Labels: map[string]string{spec.LabelApp: netsim.NetManagerLabel},
				Spec: spec.PodSpec{
					Containers: []spec.Container{{
						Name: "flannel", Image: "registry.local/flannel:1.1.2",
						Command:          []string{"flanneld"},
						RequestsMilliCPU: 100, RequestsMemMB: 64,
						LimitsMilliCPU: 200, LimitsMemMB: 128,
					}},
					Priority:    spec.SystemCriticalPriority,
					Tolerations: []spec.Toleration{{TolerateAll: true}},
				},
			},
		},
	})

	// Cluster DNS: a two-replica deployment plus its service.
	_ = admin.Create(&spec.Deployment{
		Metadata: spec.ObjectMeta{
			Name: "coredns", Namespace: spec.SystemNamespace,
			Labels: map[string]string{spec.LabelApp: netsim.DNSLabel},
		},
		Spec: spec.DeploymentSpec{
			Replicas: 2,
			Selector: spec.LabelSelector{MatchLabels: map[string]string{spec.LabelApp: netsim.DNSLabel}},
			Template: spec.PodTemplate{
				Labels: map[string]string{spec.LabelApp: netsim.DNSLabel},
				Spec: spec.PodSpec{
					Containers: []spec.Container{{
						Name: "coredns", Image: "registry.local/coredns:1.10",
						Command:          []string{"coredns"},
						RequestsMilliCPU: 100, RequestsMemMB: 128,
						LimitsMilliCPU: 200, LimitsMemMB: 256, Port: 53,
					}},
					Priority: spec.SystemCriticalPriority,
					Tolerations: []spec.Toleration{{
						Key: ControlPlaneTaint, Effect: spec.TaintNoSchedule,
					}},
				},
			},
			MaxSurge: 1,
		},
	})
	_ = admin.Create(&spec.Service{
		Metadata: spec.ObjectMeta{
			Name: "kube-dns", Namespace: spec.SystemNamespace,
			Labels: map[string]string{spec.LabelApp: netsim.DNSLabel},
		},
		Spec: spec.ServiceSpec{
			Selector:  map[string]string{spec.LabelApp: netsim.DNSLabel},
			ClusterIP: "10.96.0.10",
			Ports:     []spec.ServicePort{{Port: 53, TargetPort: 53, Protocol: "UDP"}},
		},
	})

	// Monitoring: Prometheus pinned to the monitoring node. Its
	// reachability is one of the classifier's Outage criteria ("all the
	// ReplicaSets are unreachable, including Prometheus").
	_ = admin.Create(&spec.Deployment{
		Metadata: spec.ObjectMeta{
			Name: "prometheus", Namespace: spec.SystemNamespace,
			Labels: map[string]string{spec.LabelApp: "prometheus"},
		},
		Spec: spec.DeploymentSpec{
			Replicas: 1,
			Selector: spec.LabelSelector{MatchLabels: map[string]string{spec.LabelApp: "prometheus"}},
			Template: spec.PodTemplate{
				Labels: map[string]string{spec.LabelApp: "prometheus"},
				Spec: spec.PodSpec{
					Containers: []spec.Container{{
						Name: "prometheus", Image: "registry.local/prometheus:2.45",
						Command:          []string{"serve"},
						RequestsMilliCPU: 250, RequestsMemMB: 256,
						LimitsMilliCPU: 500, LimitsMemMB: 512, Port: 9090,
					}},
					NodeSelector: map[string]string{"role": "monitoring"},
					Tolerations: []spec.Toleration{{
						Key: MonitoringTaint, Effect: spec.TaintNoSchedule,
					}},
				},
			},
			MaxSurge: 1,
		},
	})
	_ = admin.Create(&spec.Service{
		Metadata: spec.ObjectMeta{
			Name: "prometheus", Namespace: spec.SystemNamespace,
			Labels: map[string]string{spec.LabelApp: "prometheus"},
		},
		Spec: spec.ServiceSpec{
			Selector: map[string]string{spec.LabelApp: "prometheus"},
			Ports:    []spec.ServicePort{{Port: 9090, TargetPort: 9090, Protocol: "TCP"}},
		},
	})
}

// applyNodeRoles taints the control-plane and monitoring nodes so that
// application pods land only on the remaining workers. Reads go through the
// watch cache, which is cold at bootstrap, so each taint retries until the
// node object becomes visible.
func (c *Cluster) applyNodeRoles() {
	admin := c.Client("bootstrap")
	var taint func(nodeName string, t spec.Taint, attempts int)
	taint = func(nodeName string, t spec.Taint, attempts int) {
		if attempts <= 0 {
			return
		}
		retry := func() {
			c.Loop.After(100*time.Millisecond, func() { taint(nodeName, t, attempts-1) })
		}
		obj, err := admin.Get(spec.KindNode, "", nodeName)
		if err != nil {
			retry()
			return
		}
		node := obj.(*spec.Node)
		for _, existing := range node.Spec.Taints {
			if existing.Key == t.Key {
				return
			}
		}
		node = spec.CloneForWriteAs(node) // sealed cache reference
		node.Spec.Taints = append(node.Spec.Taints, t)
		if err := admin.Update(node); err != nil {
			retry()
		}
	}
	taint(ControlPlaneNode, spec.Taint{Key: ControlPlaneTaint, Effect: spec.TaintNoSchedule}, 50)
	taint(c.monitoringNode(), spec.Taint{Key: MonitoringTaint, Value: "monitoring", Effect: spec.TaintNoSchedule}, 50)
}
