package codec

import (
	"bytes"
	"testing"
)

// TestArenaMarshalMatchesMarshal pins the arena encode path to the shared
// path byte for byte: an Arena is a contention optimization, never a format
// change.
func TestArenaMarshalMatchesMarshal(t *testing.T) {
	in := sample()
	want, err := Marshal(&in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	a := NewArena()
	for i := 0; i < 10; i++ {
		buf := a.NewBuffer()
		got, err := a.AppendMarshal(buf.B[:0], &in)
		if err != nil {
			t.Fatalf("Arena.AppendMarshal: %v", err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("arena encode diverges from Marshal on iteration %d", i)
		}
		buf.B = got
		buf.Free()
	}
}

// TestArenaBufferRecycling checks that Free returns arena buffers to the
// arena's own free list (not the process pool) and NewBuffer reuses them.
func TestArenaBufferRecycling(t *testing.T) {
	a := NewArena()
	b1 := a.NewBuffer()
	if b1.owner != a {
		t.Fatal("arena buffer not tagged with its owner")
	}
	b1.B = append(b1.B, "hello"...)
	b1.Free()
	if len(a.free) != 1 {
		t.Fatalf("free list len = %d, want 1", len(a.free))
	}
	b2 := a.NewBuffer()
	if b2 != b1 {
		t.Fatal("NewBuffer did not reuse the freed buffer")
	}
	if len(b2.B) != 0 {
		t.Fatal("recycled buffer not reset")
	}
	// Oversized buffers are dropped rather than retained.
	b2.B = make([]byte, maxPooledBuffer+1)
	b2.Free()
	if len(a.free) != 0 {
		t.Fatal("oversized buffer retained on the free list")
	}
}

// TestEncoderScratchReuse checks the depth-indexed scratch stack releases
// every slot (depth returns to zero) across nested encodes.
func TestEncoderScratchReuse(t *testing.T) {
	var e encoder
	in := sample()
	for i := 0; i < 3; i++ {
		if _, err := e.marshal(nil, &in); err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if e.depth != 0 {
			t.Fatalf("scratch depth = %d after marshal, want 0", e.depth)
		}
	}
	// Nested struct + map encode should have populated at least one slot.
	if len(e.scratch) == 0 {
		t.Fatal("no scratch slots allocated for nested message")
	}
}
