// Package codec implements the serialization protocol used on every channel
// of the simulated orchestration system.
//
// The wire format is a faithful subset of the proto3 encoding: varints with a
// continuation bit for integers and booleans, and length-delimited records
// for strings, nested messages, repeated elements, and map entries. Fidelity
// matters because Mutiny's fault models operate at this level (§IV-A of the
// paper): flipping the 1st or 5th bit of a one-byte varint changes the value
// by ±1 or ±16 while the 8th bit is the continuation bit, flipping the least
// significant bit of a string character still yields a valid string, and
// corrupting raw serialization bytes can shift a value from one field to
// another or make the object undecodable altogether.
//
// Messages are plain Go structs annotated with `pb:"N"` or `pb:"N,wirename"`
// tags; encoding and decoding are reflective so the same code serves every
// resource kind, and the Fields/Get/Set helpers enumerate and mutate leaf
// fields generically, which is what the injection campaign builds on.
package codec

import (
	"errors"
	"fmt"
	"reflect"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"unicode/utf8"
)

// Wire types of the proto3 encoding. Only varint and length-delimited records
// are produced by the encoder; the decoder skips the fixed-width types so
// that corrupted tags do not always abort decoding.
const (
	wireVarint = 0
	wire64Bit  = 1
	wireBytes  = 2
	wire32Bit  = 5
)

// ErrCorrupt is wrapped by all decode errors. A resource whose bytes fail to
// decode is "undecryptable" in the paper's terms; the store deletes such
// resources to keep list operations alive (§II-D).
var ErrCorrupt = errors.New("codec: corrupt message")

const (
	mapKeyField   = 1
	mapValueField = 2
)

// Marshal encodes msg (a struct or pointer to struct with pb tags) into the
// wire format. Field numbers are emitted in ascending order and map entries
// in sorted key order, so encoding is deterministic.
func Marshal(msg any) ([]byte, error) {
	return AppendMarshal(nil, msg)
}

// AppendMarshal encodes msg like Marshal but appends the wire bytes to b
// (which may be nil, or a pooled buffer reset with b[:0]) and returns the
// extended slice. It borrows a process-wide encoder for the duration of the
// call; single-owner call sites that encode constantly (the API server's
// request, persist and watch paths) hold an Arena instead and use
// Arena.AppendMarshal, which touches no shared pool at all.
func AppendMarshal(b []byte, msg any) ([]byte, error) {
	e := _encPool.Get().(*encoder)
	out, err := e.marshal(b, msg)
	_encPool.Put(e)
	return out, err
}

// An Arena is a private encode workspace: the nested-message scratch stack,
// the map-key sort buffer, and a free list of wire Buffers, all owned by one
// worker. The campaign engine runs one isolated simulation per worker
// goroutine, and before arenas every encode in every worker met in the same
// process-wide sync.Pools; an arena keeps that state worker-local so the
// encode hot path shares nothing. An Arena must not be used from two
// goroutines at once. The zero value is ready to use.
type Arena struct {
	enc  encoder
	free []*Buffer
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// AppendMarshal is Marshal into b using only this arena's state: no shared
// pool, no lock, no cross-worker cache-line traffic.
func (a *Arena) AppendMarshal(b []byte, msg any) ([]byte, error) {
	return a.enc.marshal(b, msg)
}

// NewBuffer borrows a wire buffer from the arena's free list. Free returns
// it here, not to the process-wide pool.
func (a *Arena) NewBuffer() *Buffer {
	if n := len(a.free); n > 0 {
		b := a.free[n-1]
		a.free = a.free[:n-1]
		return b
	}
	return &Buffer{B: make([]byte, 0, 1024), owner: a}
}

// A Buffer is a pooled encode destination for AppendMarshal call sites that
// would otherwise allocate a fresh wire buffer per message. Borrow one with
// NewBuffer (process-wide pool) or Arena.NewBuffer (worker-local free list),
// encode into B (typically via AppendMarshal(buf.B[:0], msg)), store the
// returned slice back into B, and Free it once the bytes are no longer
// referenced — e.g. after the store has copied them into an item.
type Buffer struct {
	B     []byte
	owner *Arena // nil for process-pool buffers
}

// maxPooledBuffer bounds what Free returns to the pool, so one giant message
// does not pin a giant backing array forever.
const maxPooledBuffer = 1 << 16

var _bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 1024)} }}

// NewBuffer borrows an encode buffer from the process-wide pool.
func NewBuffer() *Buffer { return _bufPool.Get().(*Buffer) }

// Free returns the buffer to its owning arena's free list (or the process
// pool). The caller must not retain b.B.
func (b *Buffer) Free() {
	if cap(b.B) > maxPooledBuffer {
		return
	}
	b.B = b.B[:0]
	if b.owner != nil {
		b.owner.free = append(b.owner.free, b)
		return
	}
	_bufPool.Put(b)
}

// Unmarshal decodes data into msg, which must be a non-nil pointer to a
// struct with pb tags. Unknown fields are skipped; structural damage
// (truncated varints, overlong lengths, invalid UTF-8 in strings, group wire
// types) yields an error wrapping ErrCorrupt.
func Unmarshal(data []byte, msg any) error {
	v := reflect.ValueOf(msg)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		return fmt.Errorf("codec: unmarshal into non-pointer %T", msg)
	}
	elem := v.Elem()
	if elem.Kind() != reflect.Struct {
		return fmt.Errorf("codec: unmarshal into non-struct %T", msg)
	}
	elem.SetZero()
	return decodeStruct(data, elem)
}

// --- encoding -------------------------------------------------------------

type fieldDesc struct {
	index  int
	number int
	name   string
	// kind and elemKind are precompiled so the encode/decode hot loops never
	// re-derive them from reflection per call.
	kind     reflect.Kind
	elemKind reflect.Kind // slice element kind; Invalid otherwise
}

// structPlan is the precompiled wire schema of one struct type: its tagged
// fields in field-number order plus a decode index from wire field number to
// field slot. Building it parses struct tags exactly once per type; the hot
// paths only ever touch the compiled plan.
type structPlan struct {
	fields []fieldDesc
	// dense maps small field numbers (the only kind the resource model uses)
	// to fields indexes, offset by one so zero means "unknown field".
	dense []int16
	// byNum is the fallback decode index for types with large field numbers.
	byNum map[int]int
}

// fieldByNum resolves a decoded field number to a fields index.
func (p *structPlan) fieldByNum(num int) (int, bool) {
	if p.dense != nil {
		if num < len(p.dense) {
			if i := p.dense[num]; i != 0 {
				return int(i) - 1, true
			}
		}
		return 0, false
	}
	i, ok := p.byNum[num]
	return i, ok
}

// maxDenseFieldNumber bounds the dense decode index; beyond it the plan falls
// back to a map (never hit by the resource model, whose numbers are ≤ 10).
const maxDenseFieldNumber = 127

var _schemaCache sync.Map // reflect.Type -> *structPlan

func planFor(t reflect.Type) *structPlan {
	if cached, ok := _schemaCache.Load(t); ok {
		return cached.(*structPlan)
	}
	var fields []fieldDesc
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag, ok := f.Tag.Lookup("pb")
		if !ok || tag == "-" || !f.IsExported() {
			continue
		}
		numStr, wireName, _ := strings.Cut(tag, ",")
		num, err := strconv.Atoi(numStr)
		if err != nil || num <= 0 {
			panic(fmt.Sprintf("codec: bad pb tag %q on %s.%s", tag, t.Name(), f.Name))
		}
		if wireName == "" {
			wireName = lowerCamel(f.Name)
		}
		fd := fieldDesc{index: i, number: num, name: wireName, kind: f.Type.Kind()}
		if fd.kind == reflect.Slice {
			fd.elemKind = f.Type.Elem().Kind()
		}
		fields = append(fields, fd)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].number < fields[j].number })
	plan := &structPlan{fields: fields}
	maxNum := 0
	for _, fd := range fields {
		if fd.number > maxNum {
			maxNum = fd.number
		}
	}
	if maxNum <= maxDenseFieldNumber {
		plan.dense = make([]int16, maxNum+1)
		for i, fd := range fields {
			plan.dense[fd.number] = int16(i + 1)
		}
	} else {
		plan.byNum = make(map[int]int, len(fields))
		for i, fd := range fields {
			plan.byNum[fd.number] = i
		}
	}
	cached, _ := _schemaCache.LoadOrStore(t, plan)
	return cached.(*structPlan)
}

func structFields(t reflect.Type) []fieldDesc {
	return planFor(t).fields
}

// encoder carries the scratch state one Marshal needs: a by-depth stack of
// intermediate buffers for nested messages (a length-delimited format needs
// the inner length before the inner bytes can be placed) and the map-key
// sort buffer. The state is threaded through the encode recursion instead of
// being fetched from process-wide sync.Pools at every nesting level — one
// encoder acquisition per top-level Marshal (and zero for arena owners)
// replaces a pool round-trip per nested struct, slice, and map.
type encoder struct {
	// scratch[d] is the reusable buffer for nesting depth d. Buffers that
	// grew beyond maxPooledBuffer are dropped (slot reset to nil) so one
	// giant message does not pin its backing array.
	scratch [][]byte
	depth   int
	keys    []string
}

var _encPool = sync.Pool{New: func() any { return new(encoder) }}

// grab claims the scratch slot for the current nesting depth and returns its
// index. Pair with put.
func (e *encoder) grab() int {
	if e.depth == len(e.scratch) {
		e.scratch = append(e.scratch, nil)
	}
	slot := e.depth
	e.depth++
	return slot
}

// put releases a slot, retaining b's backing array for reuse at this depth.
func (e *encoder) put(slot int, b []byte) {
	if cap(b) > maxPooledBuffer {
		b = nil
	}
	e.scratch[slot] = b[:0]
	e.depth--
}

func (e *encoder) marshal(b []byte, msg any) ([]byte, error) {
	v := reflect.ValueOf(msg)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return nil, fmt.Errorf("codec: marshal nil %T", msg)
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return nil, fmt.Errorf("codec: marshal non-struct %T", msg)
	}
	return e.appendStruct(b, v)
}

func lowerCamel(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

func (e *encoder) appendStruct(b []byte, v reflect.Value) ([]byte, error) {
	var err error
	plan := planFor(v.Type())
	for i := range plan.fields {
		fd := &plan.fields[i]
		b, err = e.appendField(b, fd, v.Field(fd.index))
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

func (e *encoder) appendField(b []byte, fd *fieldDesc, v reflect.Value) ([]byte, error) {
	num := fd.number
	switch fd.kind {
	case reflect.String:
		if v.Len() == 0 {
			return b, nil
		}
		b = appendTag(b, num, wireBytes)
		b = appendVarint(b, uint64(v.Len()))
		return append(b, v.String()...), nil

	case reflect.Bool:
		if !v.Bool() {
			return b, nil
		}
		b = appendTag(b, num, wireVarint)
		return appendVarint(b, 1), nil

	case reflect.Int, reflect.Int32, reflect.Int64:
		if v.Int() == 0 {
			return b, nil
		}
		b = appendTag(b, num, wireVarint)
		return appendVarint(b, uint64(v.Int())), nil

	case reflect.Struct:
		slot := e.grab()
		inner, err := e.appendStruct(e.scratch[slot][:0], v)
		if err != nil {
			e.put(slot, e.scratch[slot]) // appendStruct returned nil; keep the buffer
			return nil, err
		}
		if len(inner) != 0 {
			b = appendTag(b, num, wireBytes)
			b = appendVarint(b, uint64(len(inner)))
			b = append(b, inner...)
		}
		e.put(slot, inner)
		return b, nil

	case reflect.Slice:
		if fd.elemKind == reflect.Uint8 {
			if v.Len() == 0 {
				return b, nil
			}
			b = appendTag(b, num, wireBytes)
			b = appendVarint(b, uint64(v.Len()))
			return append(b, v.Bytes()...), nil
		}
		return e.appendSlice(b, num, fd.elemKind, v)

	case reflect.Map:
		return e.appendMap(b, num, v)

	default:
		return nil, fmt.Errorf("codec: unsupported field kind %s", fd.kind)
	}
}

func (e *encoder) appendSlice(b []byte, num int, elemKind reflect.Kind, v reflect.Value) ([]byte, error) {
	n := v.Len()
	if n == 0 {
		return b, nil
	}
	switch elemKind {
	case reflect.String:
		// Repeated strings emit every element, including empty ones, so
		// that round trips preserve slice length.
		for i := 0; i < n; i++ {
			el := v.Index(i)
			b = appendTag(b, num, wireBytes)
			b = appendVarint(b, uint64(el.Len()))
			b = append(b, el.String()...)
		}
	case reflect.Int, reflect.Int32, reflect.Int64:
		for i := 0; i < n; i++ {
			b = appendTag(b, num, wireVarint)
			b = appendVarint(b, uint64(v.Index(i).Int()))
		}
	case reflect.Struct:
		slot := e.grab()
		inner := e.scratch[slot][:0]
		for i := 0; i < n; i++ {
			var err error
			inner, err = e.appendStruct(inner[:0], v.Index(i))
			if err != nil {
				e.put(slot, e.scratch[slot]) // appendStruct returned nil; keep the buffer
				return nil, err
			}
			b = appendTag(b, num, wireBytes)
			b = appendVarint(b, uint64(len(inner)))
			b = append(b, inner...)
		}
		e.put(slot, inner)
	default:
		return nil, fmt.Errorf("codec: unsupported slice element kind %s", elemKind)
	}
	return b, nil
}

func (e *encoder) appendMap(b []byte, num int, v reflect.Value) ([]byte, error) {
	if v.Type().Key().Kind() != reflect.String || v.Type().Elem().Kind() != reflect.String {
		return nil, fmt.Errorf("codec: unsupported map type %s", v.Type())
	}
	if v.Len() == 0 {
		return b, nil
	}
	// All supported maps are map[string]string; the direct assertion is
	// allocation-free (map headers are pointer-shaped), unlike the
	// reflect.MapRange Key()/Value() boxing it replaces, which cost two
	// allocations per entry on every labels/selector/annotations encode.
	m, ok := v.Interface().(map[string]string)
	if !ok {
		return nil, fmt.Errorf("codec: unsupported map type %s", v.Type())
	}
	keys := e.keys[:0]
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	slot := e.grab()
	entry := e.scratch[slot][:0]
	for _, k := range keys {
		val := m[k]
		entry = entry[:0]
		entry = appendTag(entry, mapKeyField, wireBytes)
		entry = appendVarint(entry, uint64(len(k)))
		entry = append(entry, k...)
		entry = appendTag(entry, mapValueField, wireBytes)
		entry = appendVarint(entry, uint64(len(val)))
		entry = append(entry, val...)
		b = appendTag(b, num, wireBytes)
		b = appendVarint(b, uint64(len(entry)))
		b = append(b, entry...)
	}
	e.put(slot, entry)
	e.keys = keys[:0]
	return b, nil
}

func appendTag(b []byte, num, wt int) []byte {
	return appendVarint(b, uint64(num)<<3|uint64(wt))
}

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// --- decoding ---------------------------------------------------------------

func decodeStruct(data []byte, v reflect.Value) error {
	plan := planFor(v.Type())
	for len(data) > 0 {
		tag, n, err := readVarint(data)
		if err != nil {
			return err
		}
		data = data[n:]
		num, wt := int(tag>>3), int(tag&7)
		if num <= 0 {
			return fmt.Errorf("%w: field number %d", ErrCorrupt, num)
		}
		var (
			scalar uint64
			body   []byte
		)
		switch wt {
		case wireVarint:
			scalar, n, err = readVarint(data)
			if err != nil {
				return err
			}
			data = data[n:]
		case wireBytes:
			length, n, err := readVarint(data)
			if err != nil {
				return err
			}
			data = data[n:]
			if length > uint64(len(data)) {
				return fmt.Errorf("%w: length %d exceeds %d remaining bytes", ErrCorrupt, length, len(data))
			}
			body = data[:length]
			data = data[length:]
		case wire64Bit:
			if len(data) < 8 {
				return fmt.Errorf("%w: truncated 64-bit field", ErrCorrupt)
			}
			data = data[8:]
			continue // unknown fixed-width field: skip
		case wire32Bit:
			if len(data) < 4 {
				return fmt.Errorf("%w: truncated 32-bit field", ErrCorrupt)
			}
			data = data[4:]
			continue
		default:
			return fmt.Errorf("%w: wire type %d", ErrCorrupt, wt)
		}
		fi, known := plan.fieldByNum(num)
		if !known {
			continue // unknown field: skip
		}
		fd := &plan.fields[fi]
		if err := setDecoded(v.Field(fd.index), fd, wt, scalar, body); err != nil {
			return err
		}
	}
	return nil
}

func setDecoded(f reflect.Value, fd *fieldDesc, wt int, scalar uint64, body []byte) error {
	switch fd.kind {
	case reflect.String:
		if wt != wireBytes {
			return nil // wrong wire type for field: ignore, value lost
		}
		if !utf8.Valid(body) {
			return fmt.Errorf("%w: invalid UTF-8 in string field", ErrCorrupt)
		}
		f.SetString(Intern(body))

	case reflect.Bool:
		if wt != wireVarint {
			return nil
		}
		f.SetBool(scalar != 0)

	case reflect.Int, reflect.Int32, reflect.Int64:
		if wt != wireVarint {
			return nil
		}
		f.SetInt(int64(scalar))

	case reflect.Struct:
		if wt != wireBytes {
			return nil
		}
		return decodeStruct(body, f)

	case reflect.Slice:
		if fd.elemKind == reflect.Uint8 {
			if wt != wireBytes {
				return nil
			}
			f.SetBytes(append([]byte(nil), body...))
			return nil
		}
		return appendDecodedElem(f, fd.elemKind, wt, scalar, body)

	case reflect.Map:
		if wt != wireBytes {
			return nil
		}
		k, v, err := decodeMapEntry(body)
		if err != nil {
			return err
		}
		if f.IsNil() {
			f.Set(reflect.MakeMap(f.Type()))
		}
		f.SetMapIndex(reflect.ValueOf(k), reflect.ValueOf(v))

	default:
		return fmt.Errorf("codec: unsupported field kind %s", fd.kind)
	}
	return nil
}

func appendDecodedElem(f reflect.Value, elemKind reflect.Kind, wt int, scalar uint64, body []byte) error {
	// Wire-type mismatches are checked before growing the slice so a mangled
	// tag does not append a spurious zero element.
	switch elemKind {
	case reflect.String, reflect.Struct:
		if wt != wireBytes {
			return nil
		}
	case reflect.Int, reflect.Int32, reflect.Int64:
		if wt != wireVarint {
			return nil
		}
	default:
		return fmt.Errorf("codec: unsupported slice element kind %s", elemKind)
	}
	// Growing in place via Append(zero) then setting the new slot avoids the
	// reflect.New heap value per element of the old implementation.
	n := f.Len()
	f.Set(reflect.Append(f, reflect.Zero(f.Type().Elem())))
	el := f.Index(n)
	switch elemKind {
	case reflect.String:
		if !utf8.Valid(body) {
			f.Set(f.Slice(0, n))
			return fmt.Errorf("%w: invalid UTF-8 in repeated string", ErrCorrupt)
		}
		el.SetString(Intern(body))
	case reflect.Int, reflect.Int32, reflect.Int64:
		el.SetInt(int64(scalar))
	case reflect.Struct:
		if err := decodeStruct(body, el); err != nil {
			f.Set(f.Slice(0, n))
			return err
		}
	}
	return nil
}

func decodeMapEntry(body []byte) (key, value string, err error) {
	for len(body) > 0 {
		tag, n, err := readVarint(body)
		if err != nil {
			return "", "", err
		}
		body = body[n:]
		if tag&7 != wireBytes {
			return "", "", fmt.Errorf("%w: map entry wire type %d", ErrCorrupt, tag&7)
		}
		length, n, err := readVarint(body)
		if err != nil {
			return "", "", err
		}
		body = body[n:]
		if length > uint64(len(body)) {
			return "", "", fmt.Errorf("%w: map entry length %d", ErrCorrupt, length)
		}
		s := body[:length]
		body = body[length:]
		if !utf8.Valid(s) {
			return "", "", fmt.Errorf("%w: invalid UTF-8 in map entry", ErrCorrupt)
		}
		switch tag >> 3 {
		case mapKeyField:
			key = Intern(s)
		case mapValueField:
			value = Intern(s)
		default:
			// unknown map entry field: skip
		}
	}
	return key, value, nil
}

func readVarint(data []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(data); i++ {
		if i == 10 {
			return 0, 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
		}
		b := data[i]
		v |= uint64(b&0x7f) << (7 * uint(i))
		if b&0x80 == 0 {
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
}
