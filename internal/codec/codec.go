// Package codec implements the serialization protocol used on every channel
// of the simulated orchestration system.
//
// The wire format is a faithful subset of the proto3 encoding: varints with a
// continuation bit for integers and booleans, and length-delimited records
// for strings, nested messages, repeated elements, and map entries. Fidelity
// matters because Mutiny's fault models operate at this level (§IV-A of the
// paper): flipping the 1st or 5th bit of a one-byte varint changes the value
// by ±1 or ±16 while the 8th bit is the continuation bit, flipping the least
// significant bit of a string character still yields a valid string, and
// corrupting raw serialization bytes can shift a value from one field to
// another or make the object undecodable altogether.
//
// Messages are plain Go structs annotated with `pb:"N"` or `pb:"N,wirename"`
// tags; encoding and decoding are reflective so the same code serves every
// resource kind, and the Fields/Get/Set helpers enumerate and mutate leaf
// fields generically, which is what the injection campaign builds on.
package codec

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"unicode/utf8"
)

// Wire types of the proto3 encoding. Only varint and length-delimited records
// are produced by the encoder; the decoder skips the fixed-width types so
// that corrupted tags do not always abort decoding.
const (
	wireVarint = 0
	wire64Bit  = 1
	wireBytes  = 2
	wire32Bit  = 5
)

// ErrCorrupt is wrapped by all decode errors. A resource whose bytes fail to
// decode is "undecryptable" in the paper's terms; the store deletes such
// resources to keep list operations alive (§II-D).
var ErrCorrupt = errors.New("codec: corrupt message")

const (
	mapKeyField   = 1
	mapValueField = 2
)

// Marshal encodes msg (a struct or pointer to struct with pb tags) into the
// wire format. Field numbers are emitted in ascending order and map entries
// in sorted key order, so encoding is deterministic.
func Marshal(msg any) ([]byte, error) {
	v := reflect.ValueOf(msg)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return nil, fmt.Errorf("codec: marshal nil %T", msg)
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return nil, fmt.Errorf("codec: marshal non-struct %T", msg)
	}
	return appendStruct(nil, v)
}

// Unmarshal decodes data into msg, which must be a non-nil pointer to a
// struct with pb tags. Unknown fields are skipped; structural damage
// (truncated varints, overlong lengths, invalid UTF-8 in strings, group wire
// types) yields an error wrapping ErrCorrupt.
func Unmarshal(data []byte, msg any) error {
	v := reflect.ValueOf(msg)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		return fmt.Errorf("codec: unmarshal into non-pointer %T", msg)
	}
	elem := v.Elem()
	if elem.Kind() != reflect.Struct {
		return fmt.Errorf("codec: unmarshal into non-struct %T", msg)
	}
	elem.SetZero()
	return decodeStruct(data, elem)
}

// --- encoding -------------------------------------------------------------

type fieldDesc struct {
	index  int
	number int
	name   string
}

var _schemaCache sync.Map // reflect.Type -> []fieldDesc

func structFields(t reflect.Type) []fieldDesc {
	if cached, ok := _schemaCache.Load(t); ok {
		return cached.([]fieldDesc)
	}
	var fields []fieldDesc
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag, ok := f.Tag.Lookup("pb")
		if !ok || tag == "-" || !f.IsExported() {
			continue
		}
		numStr, wireName, _ := strings.Cut(tag, ",")
		num, err := strconv.Atoi(numStr)
		if err != nil || num <= 0 {
			panic(fmt.Sprintf("codec: bad pb tag %q on %s.%s", tag, t.Name(), f.Name))
		}
		if wireName == "" {
			wireName = lowerCamel(f.Name)
		}
		fields = append(fields, fieldDesc{index: i, number: num, name: wireName})
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].number < fields[j].number })
	_schemaCache.Store(t, fields)
	return fields
}

func lowerCamel(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

func appendStruct(b []byte, v reflect.Value) ([]byte, error) {
	var err error
	for _, fd := range structFields(v.Type()) {
		b, err = appendField(b, fd.number, v.Field(fd.index))
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

func appendField(b []byte, num int, v reflect.Value) ([]byte, error) {
	switch v.Kind() {
	case reflect.String:
		if v.Len() == 0 {
			return b, nil
		}
		b = appendTag(b, num, wireBytes)
		b = appendVarint(b, uint64(v.Len()))
		return append(b, v.String()...), nil

	case reflect.Bool:
		if !v.Bool() {
			return b, nil
		}
		b = appendTag(b, num, wireVarint)
		return appendVarint(b, 1), nil

	case reflect.Int, reflect.Int32, reflect.Int64:
		if v.Int() == 0 {
			return b, nil
		}
		b = appendTag(b, num, wireVarint)
		return appendVarint(b, uint64(v.Int())), nil

	case reflect.Struct:
		inner, err := appendStruct(nil, v)
		if err != nil {
			return nil, err
		}
		if len(inner) == 0 {
			return b, nil
		}
		b = appendTag(b, num, wireBytes)
		b = appendVarint(b, uint64(len(inner)))
		return append(b, inner...), nil

	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			if v.Len() == 0 {
				return b, nil
			}
			b = appendTag(b, num, wireBytes)
			b = appendVarint(b, uint64(v.Len()))
			return append(b, v.Bytes()...), nil
		}
		return appendSlice(b, num, v)

	case reflect.Map:
		return appendMap(b, num, v)

	default:
		return nil, fmt.Errorf("codec: unsupported field kind %s", v.Kind())
	}
}

func appendSlice(b []byte, num int, v reflect.Value) ([]byte, error) {
	var err error
	for i := 0; i < v.Len(); i++ {
		el := v.Index(i)
		switch el.Kind() {
		case reflect.String:
			// Repeated strings emit every element, including empty ones, so
			// that round trips preserve slice length.
			b = appendTag(b, num, wireBytes)
			b = appendVarint(b, uint64(el.Len()))
			b = append(b, el.String()...)
		case reflect.Int, reflect.Int32, reflect.Int64:
			b = appendTag(b, num, wireVarint)
			b = appendVarint(b, uint64(el.Int()))
		case reflect.Struct:
			var inner []byte
			inner, err = appendStruct(nil, el)
			if err != nil {
				return nil, err
			}
			b = appendTag(b, num, wireBytes)
			b = appendVarint(b, uint64(len(inner)))
			b = append(b, inner...)
		default:
			return nil, fmt.Errorf("codec: unsupported slice element kind %s", el.Kind())
		}
	}
	return b, nil
}

func appendMap(b []byte, num int, v reflect.Value) ([]byte, error) {
	if v.Type().Key().Kind() != reflect.String || v.Type().Elem().Kind() != reflect.String {
		return nil, fmt.Errorf("codec: unsupported map type %s", v.Type())
	}
	keys := make([]string, 0, v.Len())
	iter := v.MapRange()
	for iter.Next() {
		keys = append(keys, iter.Key().String())
	}
	sort.Strings(keys)
	for _, k := range keys {
		val := v.MapIndex(reflect.ValueOf(k)).String()
		var entry []byte
		entry = appendTag(entry, mapKeyField, wireBytes)
		entry = appendVarint(entry, uint64(len(k)))
		entry = append(entry, k...)
		entry = appendTag(entry, mapValueField, wireBytes)
		entry = appendVarint(entry, uint64(len(val)))
		entry = append(entry, val...)
		b = appendTag(b, num, wireBytes)
		b = appendVarint(b, uint64(len(entry)))
		b = append(b, entry...)
	}
	return b, nil
}

func appendTag(b []byte, num, wt int) []byte {
	return appendVarint(b, uint64(num)<<3|uint64(wt))
}

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// --- decoding ---------------------------------------------------------------

func decodeStruct(data []byte, v reflect.Value) error {
	fields := structFields(v.Type())
	byNum := make(map[int]fieldDesc, len(fields))
	for _, fd := range fields {
		byNum[fd.number] = fd
	}
	for len(data) > 0 {
		tag, n, err := readVarint(data)
		if err != nil {
			return err
		}
		data = data[n:]
		num, wt := int(tag>>3), int(tag&7)
		if num <= 0 {
			return fmt.Errorf("%w: field number %d", ErrCorrupt, num)
		}
		var (
			scalar uint64
			body   []byte
		)
		switch wt {
		case wireVarint:
			scalar, n, err = readVarint(data)
			if err != nil {
				return err
			}
			data = data[n:]
		case wireBytes:
			length, n, err := readVarint(data)
			if err != nil {
				return err
			}
			data = data[n:]
			if length > uint64(len(data)) {
				return fmt.Errorf("%w: length %d exceeds %d remaining bytes", ErrCorrupt, length, len(data))
			}
			body = data[:length]
			data = data[length:]
		case wire64Bit:
			if len(data) < 8 {
				return fmt.Errorf("%w: truncated 64-bit field", ErrCorrupt)
			}
			data = data[8:]
			continue // unknown fixed-width field: skip
		case wire32Bit:
			if len(data) < 4 {
				return fmt.Errorf("%w: truncated 32-bit field", ErrCorrupt)
			}
			data = data[4:]
			continue
		default:
			return fmt.Errorf("%w: wire type %d", ErrCorrupt, wt)
		}
		fd, known := byNum[num]
		if !known {
			continue // unknown field: skip
		}
		if err := setDecoded(v.Field(fd.index), wt, scalar, body); err != nil {
			return err
		}
	}
	return nil
}

func setDecoded(f reflect.Value, wt int, scalar uint64, body []byte) error {
	switch f.Kind() {
	case reflect.String:
		if wt != wireBytes {
			return nil // wrong wire type for field: ignore, value lost
		}
		if !utf8.Valid(body) {
			return fmt.Errorf("%w: invalid UTF-8 in string field", ErrCorrupt)
		}
		f.SetString(string(body))

	case reflect.Bool:
		if wt != wireVarint {
			return nil
		}
		f.SetBool(scalar != 0)

	case reflect.Int, reflect.Int32, reflect.Int64:
		if wt != wireVarint {
			return nil
		}
		f.SetInt(int64(scalar))

	case reflect.Struct:
		if wt != wireBytes {
			return nil
		}
		return decodeStruct(body, f)

	case reflect.Slice:
		if f.Type().Elem().Kind() == reflect.Uint8 {
			if wt != wireBytes {
				return nil
			}
			f.SetBytes(append([]byte(nil), body...))
			return nil
		}
		return appendDecodedElem(f, wt, scalar, body)

	case reflect.Map:
		if wt != wireBytes {
			return nil
		}
		k, v, err := decodeMapEntry(body)
		if err != nil {
			return err
		}
		if f.IsNil() {
			f.Set(reflect.MakeMap(f.Type()))
		}
		f.SetMapIndex(reflect.ValueOf(k), reflect.ValueOf(v))

	default:
		return fmt.Errorf("codec: unsupported field kind %s", f.Kind())
	}
	return nil
}

func appendDecodedElem(f reflect.Value, wt int, scalar uint64, body []byte) error {
	elemType := f.Type().Elem()
	el := reflect.New(elemType).Elem()
	switch elemType.Kind() {
	case reflect.String:
		if wt != wireBytes {
			return nil
		}
		if !utf8.Valid(body) {
			return fmt.Errorf("%w: invalid UTF-8 in repeated string", ErrCorrupt)
		}
		el.SetString(string(body))
	case reflect.Int, reflect.Int32, reflect.Int64:
		if wt != wireVarint {
			return nil
		}
		el.SetInt(int64(scalar))
	case reflect.Struct:
		if wt != wireBytes {
			return nil
		}
		if err := decodeStruct(body, el); err != nil {
			return err
		}
	default:
		return fmt.Errorf("codec: unsupported slice element kind %s", elemType.Kind())
	}
	f.Set(reflect.Append(f, el))
	return nil
}

func decodeMapEntry(body []byte) (key, value string, err error) {
	for len(body) > 0 {
		tag, n, err := readVarint(body)
		if err != nil {
			return "", "", err
		}
		body = body[n:]
		if tag&7 != wireBytes {
			return "", "", fmt.Errorf("%w: map entry wire type %d", ErrCorrupt, tag&7)
		}
		length, n, err := readVarint(body)
		if err != nil {
			return "", "", err
		}
		body = body[n:]
		if length > uint64(len(body)) {
			return "", "", fmt.Errorf("%w: map entry length %d", ErrCorrupt, length)
		}
		s := body[:length]
		body = body[length:]
		if !utf8.Valid(s) {
			return "", "", fmt.Errorf("%w: invalid UTF-8 in map entry", ErrCorrupt)
		}
		switch tag >> 3 {
		case mapKeyField:
			key = string(s)
		case mapValueField:
			value = string(s)
		default:
			// unknown map entry field: skip
		}
	}
	return key, value, nil
}

func readVarint(data []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(data); i++ {
		if i == 10 {
			return 0, 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
		}
		b := data[i]
		v |= uint64(b&0x7f) << (7 * uint(i))
		if b&0x80 == 0 {
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
}
