package codec

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

type inner struct {
	Name  string `pb:"1"`
	Count int64  `pb:"2"`
	On    bool   `pb:"3"`
}

type outer struct {
	ID      string            `pb:"1"`
	N       int64             `pb:"2"`
	Flag    bool              `pb:"3"`
	Nested  inner             `pb:"4"`
	Items   []inner           `pb:"5"`
	Tags    []string          `pb:"6"`
	Numbers []int64           `pb:"7"`
	Labels  map[string]string `pb:"8"`
}

func sample() outer {
	return outer{
		ID:      "web-0",
		N:       42,
		Flag:    true,
		Nested:  inner{Name: "n", Count: 7, On: true},
		Items:   []inner{{Name: "a", Count: 1}, {Name: "b", Count: 2, On: true}},
		Tags:    []string{"x", "", "z"},
		Numbers: []int64{3, 0, 9},
		Labels:  map[string]string{"app": "web", "tier": "front"},
	}
}

func TestRoundTrip(t *testing.T) {
	in := sample()
	b, err := Marshal(&in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var out outer
	if err := Unmarshal(b, &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	// Numbers contains a zero element which is encoded (repeated fields emit
	// all elements), so full equality should hold.
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	in := sample()
	a, err := Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		b, err := Marshal(&in)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("marshal not deterministic on attempt %d", i)
		}
	}
}

func TestZeroValuesOmitted(t *testing.T) {
	var in outer
	b, err := Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 0 {
		t.Fatalf("zero struct encoded to %d bytes, want 0", len(b))
	}
}

func TestUnknownFieldsSkipped(t *testing.T) {
	in := sample()
	b, err := Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	// Append an unknown varint field (number 60) and an unknown bytes field.
	b = appendTag(b, 60, wireVarint)
	b = appendVarint(b, 12345)
	b = appendTag(b, 61, wireBytes)
	b = appendVarint(b, 3)
	b = append(b, "xyz"...)
	var out outer
	if err := Unmarshal(b, &out); err != nil {
		t.Fatalf("Unmarshal with unknown fields: %v", err)
	}
	if out.ID != in.ID || out.N != in.N {
		t.Fatal("known fields lost while skipping unknown fields")
	}
}

func TestTruncatedVarintIsCorrupt(t *testing.T) {
	var out outer
	err := Unmarshal([]byte{0x80}, &out)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestOverlongLengthIsCorrupt(t *testing.T) {
	b := appendTag(nil, 1, wireBytes)
	b = appendVarint(b, 100) // length 100, but no payload
	var out outer
	if err := Unmarshal(b, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestInvalidUTF8IsCorrupt(t *testing.T) {
	b := appendTag(nil, 1, wireBytes)
	b = appendVarint(b, 2)
	b = append(b, 0xff, 0xfe)
	var out outer
	if err := Unmarshal(b, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestGroupWireTypeIsCorrupt(t *testing.T) {
	b := appendVarint(nil, uint64(1)<<3|3) // field 1, wire type 3 (group start)
	var out outer
	if err := Unmarshal(b, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestFixedWidthFieldsSkipped(t *testing.T) {
	b := appendTag(nil, 50, wire64Bit)
	b = append(b, 1, 2, 3, 4, 5, 6, 7, 8)
	b = appendTag(b, 51, wire32Bit)
	b = append(b, 1, 2, 3, 4)
	b = appendTag(b, 2, wireVarint)
	b = appendVarint(b, 9)
	var out outer
	if err := Unmarshal(b, &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if out.N != 9 {
		t.Fatalf("N = %d, want 9", out.N)
	}
}

func TestVarintContinuationBit(t *testing.T) {
	// Values < 128 must encode to a single byte whose 8th bit is clear: the
	// paper's bit-flip model (flip bits 1 and 5, not 8) depends on this.
	for _, v := range []uint64{0, 1, 16, 42, 127} {
		b := appendVarint(nil, v)
		if len(b) != 1 {
			t.Fatalf("varint(%d) = %d bytes, want 1", v, len(b))
		}
		if b[0]&0x80 != 0 {
			t.Fatalf("varint(%d) has continuation bit set", v)
		}
	}
	b := appendVarint(nil, 128)
	if len(b) != 2 || b[0]&0x80 == 0 {
		t.Fatalf("varint(128) = %x, want 2 bytes with continuation", b)
	}
}

func TestNegativeIntRoundTrip(t *testing.T) {
	in := outer{N: -5}
	b, err := Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out outer
	if err := Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.N != -5 {
		t.Fatalf("N = %d, want -5", out.N)
	}
}

func TestDeepCopyIsolation(t *testing.T) {
	in := sample()
	cp := Clone(&in)
	cp.Labels["app"] = "changed"
	cp.Items[0].Name = "changed"
	if in.Labels["app"] != "web" || in.Items[0].Name != "a" {
		t.Fatal("Clone shares state with the original")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	prop := func(id string, n int64, flag bool, tag string, k, v string) bool {
		in := outer{ID: id, N: n, Flag: flag, Tags: []string{tag}}
		if k != "" {
			in.Labels = map[string]string{k: v}
		}
		b, err := Marshal(&in)
		if err != nil {
			return false
		}
		var out outer
		if err := Unmarshal(b, &out); err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: single-bit corruption of the encoded bytes either fails to decode
// (undecodable, detected) or decodes without panicking (silently wrong) — it
// must never panic or hang. This is the serialization-protocol injection of
// §IV-C, which "usually causes the resource instance to become undecryptable
// ... but in some cases the resource instance remains decryptable and wrong".
func TestPropertyBitFlipNeverPanics(t *testing.T) {
	in := sample()
	enc, err := Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	decodable, corrupt := 0, 0
	for off := 0; off < len(enc); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(enc)
			mut[off] ^= 1 << bit
			var out outer
			if err := Unmarshal(mut, &out); err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("off=%d bit=%d: non-corrupt error %v", off, bit, err)
				}
				corrupt++
			} else {
				decodable++
			}
		}
	}
	if corrupt == 0 {
		t.Fatal("no bit flip produced a corrupt message; decoder is too lax")
	}
	if decodable == 0 {
		t.Fatal("every bit flip produced a corrupt message; decoder is too strict")
	}
	t.Logf("bit flips: %d decodable-but-possibly-wrong, %d detected corrupt", decodable, corrupt)
}
