package codec

import (
	"fmt"
	"reflect"
)

// DeepCopy clones src into dst, which must be pointers to the same struct
// type. The copy is performed by direct reflection over the fields (an
// encode/decode round trip would be semantically equivalent for pb-tagged
// types but several times slower, and cloning is the hottest operation in
// campaign-scale simulations).
func DeepCopy(dst, src any) error {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Kind() != reflect.Pointer || dv.IsNil() || sv.Kind() != reflect.Pointer || sv.IsNil() {
		return fmt.Errorf("codec: deep copy requires non-nil pointers, got %T and %T", dst, src)
	}
	if dv.Type() != sv.Type() {
		return fmt.Errorf("codec: deep copy type mismatch: %T vs %T", dst, src)
	}
	copyValue(dv.Elem(), sv.Elem())
	return nil
}

// Clone returns a deep copy of the given message pointer.
func Clone[T any](src *T) *T {
	dst := new(T)
	copyValue(reflect.ValueOf(dst).Elem(), reflect.ValueOf(src).Elem())
	return dst
}

func copyValue(dst, src reflect.Value) {
	switch src.Kind() {
	case reflect.String, reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		dst.Set(src)
	case reflect.Struct:
		t := src.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			copyValue(dst.Field(i), src.Field(i))
		}
	case reflect.Slice:
		if src.IsNil() {
			dst.SetZero()
			return
		}
		n := src.Len()
		out := reflect.MakeSlice(src.Type(), n, n)
		if src.Type().Elem().Kind() == reflect.Struct {
			for i := 0; i < n; i++ {
				copyValue(out.Index(i), src.Index(i))
			}
		} else {
			reflect.Copy(out, src)
		}
		dst.Set(out)
	case reflect.Map:
		if src.IsNil() {
			dst.SetZero()
			return
		}
		out := reflect.MakeMapWithSize(src.Type(), src.Len())
		iter := src.MapRange()
		for iter.Next() {
			out.SetMapIndex(iter.Key(), iter.Value())
		}
		dst.Set(out)
	case reflect.Pointer:
		if src.IsNil() {
			dst.SetZero()
			return
		}
		out := reflect.New(src.Type().Elem())
		copyValue(out.Elem(), src.Elem())
		dst.Set(out)
	default:
		dst.Set(src)
	}
}
