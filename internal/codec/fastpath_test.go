// Benchmarks and regression tests for the codec hot path. They live in an
// external test package so they can exercise the real resource kinds from
// internal/spec (which itself imports codec): Marshal/Unmarshal run on every
// store transaction of every campaign experiment, so allocs/op here multiply
// by the ~9,000-experiment campaign.
package codec_test

import (
	"bytes"
	"testing"

	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// representativeObjects builds one populated instance of every wire-visible
// resource kind, with the nested messages, maps, and repeated fields the
// campaign actually serializes.
func representativeObjects() []spec.Object {
	labels := map[string]string{spec.LabelApp: "web", spec.LabelPodHash: "5d8f9c"}
	template := spec.PodTemplate{
		Labels: labels,
		Spec: spec.PodSpec{
			Containers: []spec.Container{{
				Name: "app", Image: "registry.local/web:1.4", Command: []string{"/bin/web", "--port=8080"},
				RequestsMilliCPU: 250, RequestsMemMB: 128, LimitsMilliCPU: 500, LimitsMemMB: 256, Port: 8080,
			}},
			RestartPolicy: "Always",
		},
	}
	return []spec.Object{
		&spec.Pod{
			Metadata: spec.ObjectMeta{
				Name: "web-5d8f9c-0", Namespace: spec.DefaultNamespace, UID: spec.FormatUID(41),
				ResourceVersion: 107, Labels: labels,
				OwnerReferences: []spec.OwnerReference{{Kind: "ReplicaSet", Name: "web-5d8f9c", UID: spec.FormatUID(40), Controller: true}},
				CreatedMillis:   1713312000123, Generation: 2,
			},
			Spec: spec.PodSpec{
				NodeName: "node-2", Containers: template.Spec.Containers,
				Tolerations: []spec.Toleration{{Key: "node-role", Value: "edge", Effect: spec.TaintNoSchedule}},
			},
			Status: spec.PodStatus{Phase: spec.PodRunning, PodIP: "10.244.2.17", Ready: true, StartedMillis: 1713312001456},
		},
		&spec.ReplicaSet{
			Metadata: spec.ObjectMeta{Name: "web-5d8f9c", Namespace: spec.DefaultNamespace, UID: spec.FormatUID(40), ResourceVersion: 106, Labels: labels, ManagedBy: "deployment-controller"},
			Spec:     spec.ReplicaSetSpec{Replicas: 3, Selector: spec.LabelSelector{MatchLabels: labels}, Template: template},
			Status:   spec.ReplicaSetStatus{Replicas: 3, ReadyReplicas: 3},
		},
		&spec.Deployment{
			Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace, UID: spec.FormatUID(39), ResourceVersion: 105, Labels: labels},
			Spec:     spec.DeploymentSpec{Replicas: 3, Selector: spec.LabelSelector{MatchLabels: labels}, Template: template, MaxUnavailable: 1, MaxSurge: 1},
			Status:   spec.DeploymentStatus{Replicas: 3, ReadyReplicas: 3, UpdatedReplicas: 3},
		},
		&spec.DaemonSet{
			Metadata: spec.ObjectMeta{Name: "net-manager", Namespace: spec.SystemNamespace, UID: spec.FormatUID(7), ResourceVersion: 31},
			Spec:     spec.DaemonSetSpec{Selector: spec.LabelSelector{MatchLabels: map[string]string{spec.LabelApp: "net-manager"}}, Template: template},
			Status:   spec.DaemonSetStatus{DesiredNumber: 4, CurrentNumber: 4, NumberReady: 4},
		},
		&spec.Service{
			Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace, UID: spec.FormatUID(42), ResourceVersion: 108},
			Spec: spec.ServiceSpec{
				Selector: labels, ClusterIP: "10.96.0.12",
				Ports: []spec.ServicePort{{Port: 80, TargetPort: 8080, Protocol: "TCP"}},
			},
		},
		&spec.Endpoints{
			Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace, UID: spec.FormatUID(43), ResourceVersion: 109},
			Subsets: []spec.EndpointSubset{{
				Addresses: []spec.EndpointAddress{
					{IP: "10.244.2.17", NodeName: "node-2", TargetRef: spec.TargetRef{Kind: "Pod", Name: "web-5d8f9c-0", UID: spec.FormatUID(41)}},
					{IP: "10.244.3.4", NodeName: "node-3", TargetRef: spec.TargetRef{Kind: "Pod", Name: "web-5d8f9c-1", UID: spec.FormatUID(44)}},
				},
				Ports: []int64{8080},
			}},
		},
		&spec.Node{
			Metadata: spec.ObjectMeta{Name: "node-2", Labels: map[string]string{spec.LabelNodeRole: "worker"}, UID: spec.FormatUID(3), ResourceVersion: 12},
			Spec:     spec.NodeSpec{PodCIDR: "10.244.2.0/24", Taints: []spec.Taint{{Key: "edge", Value: "true", Effect: spec.TaintNoSchedule}}},
			Status: spec.NodeStatus{
				CapacityMilliCPU: 4000, CapacityMemMB: 8192, AllocatableMilliCPU: 3800, AllocatableMemMB: 7900,
				Ready: true, LastHeartbeatMillis: 1713312010000, Address: "192.168.1.12",
			},
		},
		&spec.Namespace{
			Metadata: spec.ObjectMeta{Name: spec.DefaultNamespace, UID: spec.FormatUID(1), ResourceVersion: 2},
			Phase:    "Active",
		},
		&spec.ConfigMap{
			Metadata: spec.ObjectMeta{Name: "net-conf", Namespace: spec.SystemNamespace, UID: spec.FormatUID(8), ResourceVersion: 33},
			Data:     map[string]string{"overlay": "vxlan", "cidr": "10.244.0.0/16"},
		},
		&spec.Lease{
			Metadata: spec.ObjectMeta{Name: "scheduler", Namespace: spec.SystemNamespace, UID: spec.FormatUID(9), ResourceVersion: 57},
			Spec:     spec.LeaseSpec{HolderIdentity: "scheduler-0", DurationSecs: 15, RenewMillis: 1713312009000},
		},
	}
}

// TestAppendMarshalRoundTripsEveryKind is the pooled-buffer regression test:
// encoding every kind through one reused buffer must produce exactly the
// bytes Marshal produces, and those bytes must decode back to an object that
// re-encodes identically.
func TestAppendMarshalRoundTripsEveryKind(t *testing.T) {
	buf := codec.NewBuffer()
	defer buf.Free()
	for _, obj := range representativeObjects() {
		want, err := codec.Marshal(obj)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", obj.Kind(), err)
		}
		got, err := codec.AppendMarshal(buf.B[:0], obj)
		if err != nil {
			t.Fatalf("%s: AppendMarshal: %v", obj.Kind(), err)
		}
		buf.B = got
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: AppendMarshal bytes differ from Marshal (%d vs %d bytes)", obj.Kind(), len(got), len(want))
		}
		back := spec.New(obj.Kind())
		if err := codec.Unmarshal(got, back); err != nil {
			t.Fatalf("%s: Unmarshal: %v", obj.Kind(), err)
		}
		again, err := codec.Marshal(back)
		if err != nil {
			t.Fatalf("%s: re-Marshal: %v", obj.Kind(), err)
		}
		if !bytes.Equal(again, want) {
			t.Fatalf("%s: pooled round trip not stable", obj.Kind())
		}
	}
}

// TestAppendMarshalPrefixPreserved checks the append contract: existing bytes
// in the destination buffer are left intact.
func TestAppendMarshalPrefixPreserved(t *testing.T) {
	obj := representativeObjects()[0]
	prefix := []byte{0xde, 0xad, 0xbe, 0xef}
	out, err := codec.AppendMarshal(append([]byte(nil), prefix...), obj)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("AppendMarshal clobbered the destination prefix")
	}
	want, _ := codec.Marshal(obj)
	if !bytes.Equal(out[len(prefix):], want) {
		t.Fatal("AppendMarshal payload differs from Marshal")
	}
}

// BenchmarkCodecMarshal measures encoding across representative kinds; the
// campaign calls this on every request and every store write.
func BenchmarkCodecMarshal(b *testing.B) {
	objs := representativeObjects()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, obj := range objs {
			if _, err := codec.Marshal(obj); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCodecAppendMarshal measures the pooled-buffer encode path used by
// the apiserver: one buffer reused across all kinds.
func BenchmarkCodecAppendMarshal(b *testing.B) {
	objs := representativeObjects()
	buf := codec.NewBuffer()
	defer buf.Free()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, obj := range objs {
			out, err := codec.AppendMarshal(buf.B[:0], obj)
			if err != nil {
				b.Fatal(err)
			}
			buf.B = out
		}
	}
}

// BenchmarkCodecUnmarshal measures decoding, the other half of every store
// transaction and watch-cache refresh.
func BenchmarkCodecUnmarshal(b *testing.B) {
	objs := representativeObjects()
	wires := make([][]byte, len(objs))
	for i, obj := range objs {
		w, err := codec.Marshal(obj)
		if err != nil {
			b.Fatal(err)
		}
		wires[i] = w
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, w := range wires {
			back := spec.New(objs[j].Kind())
			if err := codec.Unmarshal(w, back); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCodecDeepCopy measures cloning, the hottest operation in the watch
// cache (every read and every dispatched event clones).
func BenchmarkCodecDeepCopy(b *testing.B) {
	objs := representativeObjects()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, obj := range objs {
			_ = obj.Clone()
		}
	}
}
