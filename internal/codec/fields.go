package codec

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// FieldKind classifies a leaf field for the purposes of fault-model
// selection: integers get bit flips and zero sets, strings get character
// flips and empty sets, booleans get inversions (§IV-C of the paper).
type FieldKind int

// Leaf field kinds.
const (
	FieldString FieldKind = iota + 1
	FieldInt
	FieldBool
)

func (k FieldKind) String() string {
	switch k {
	case FieldString:
		return "string"
	case FieldInt:
		return "int"
	case FieldBool:
		return "bool"
	default:
		return fmt.Sprintf("FieldKind(%d)", int(k))
	}
}

// Field identifies one injectable leaf of a message by its dotted path, e.g.
// "metadata.labels[app]" or "spec.containers[0].image".
type Field struct {
	Path string
	Kind FieldKind
}

// Fields enumerates every leaf field reachable in msg, including map entries
// and slice elements that are present in the value. The order is
// deterministic (field-number order, sorted map keys, slice order).
func Fields(msg any) []Field {
	v := reflect.ValueOf(msg)
	for v.Kind() == reflect.Pointer && !v.IsNil() {
		v = v.Elem()
	}
	var out []Field
	walkFields(v, "", &out)
	return out
}

func walkFields(v reflect.Value, prefix string, out *[]Field) {
	switch v.Kind() {
	case reflect.Struct:
		for _, fd := range structFields(v.Type()) {
			p := fd.name
			if prefix != "" {
				p = prefix + "." + fd.name
			}
			walkFields(v.Field(fd.index), p, out)
		}
	case reflect.String:
		*out = append(*out, Field{Path: prefix, Kind: FieldString})
	case reflect.Bool:
		*out = append(*out, Field{Path: prefix, Kind: FieldBool})
	case reflect.Int, reflect.Int32, reflect.Int64:
		*out = append(*out, Field{Path: prefix, Kind: FieldInt})
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			return // opaque bytes are not an injectable leaf
		}
		for i := 0; i < v.Len(); i++ {
			walkFields(v.Index(i), fmt.Sprintf("%s[%d]", prefix, i), out)
		}
	case reflect.Map:
		keys := make([]string, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			keys = append(keys, iter.Key().String())
		}
		sort.Strings(keys)
		for _, k := range keys {
			*out = append(*out, Field{Path: prefix + "[" + k + "]", Kind: FieldString})
		}
	}
}

// Get returns the value of the leaf field at path as string, int64 or bool.
func Get(msg any, path string) (any, error) {
	tgt, err := resolve(reflect.ValueOf(msg), path)
	if err != nil {
		return nil, err
	}
	if tgt.isMapEntry() {
		mv := tgt.m.MapIndex(tgt.key)
		if !mv.IsValid() {
			return nil, fmt.Errorf("codec: path %q: key not present", path)
		}
		return mv.String(), nil
	}
	switch tgt.v.Kind() {
	case reflect.String:
		return tgt.v.String(), nil
	case reflect.Bool:
		return tgt.v.Bool(), nil
	case reflect.Int, reflect.Int32, reflect.Int64:
		return tgt.v.Int(), nil
	default:
		return nil, fmt.Errorf("codec: path %q is not a leaf field", path)
	}
}

// Set assigns val (string, int64/int, or bool) to the leaf field at path.
// Setting a map entry that does not exist creates it.
func Set(msg any, path string, val any) error {
	tgt, err := resolve(reflect.ValueOf(msg), path)
	if err != nil {
		return err
	}
	if tgt.isMapEntry() {
		s, ok := val.(string)
		if !ok {
			return fmt.Errorf("codec: set %q: want string, got %T", path, val)
		}
		if tgt.m.IsNil() {
			tgt.m.Set(reflect.MakeMap(tgt.m.Type()))
		}
		tgt.m.SetMapIndex(tgt.key, reflect.ValueOf(s))
		return nil
	}
	switch tgt.v.Kind() {
	case reflect.String:
		s, ok := val.(string)
		if !ok {
			return fmt.Errorf("codec: set %q: want string, got %T", path, val)
		}
		tgt.v.SetString(s)
	case reflect.Bool:
		b, ok := val.(bool)
		if !ok {
			return fmt.Errorf("codec: set %q: want bool, got %T", path, val)
		}
		tgt.v.SetBool(b)
	case reflect.Int, reflect.Int32, reflect.Int64:
		switch n := val.(type) {
		case int64:
			tgt.v.SetInt(n)
		case int:
			tgt.v.SetInt(int64(n))
		default:
			return fmt.Errorf("codec: set %q: want int, got %T", path, val)
		}
	default:
		return fmt.Errorf("codec: path %q is not a settable leaf", path)
	}
	return nil
}

// target is a resolved leaf: either a settable value or a (map, key) pair,
// since reflect map values are not addressable.
type target struct {
	v   reflect.Value
	m   reflect.Value
	key reflect.Value
}

func (t target) isMapEntry() bool { return t.m.IsValid() }

func resolve(v reflect.Value, path string) (target, error) {
	segs, err := splitPath(path)
	if err != nil {
		return target{}, err
	}
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return target{}, fmt.Errorf("codec: nil pointer at %q", path)
		}
		v = v.Elem()
	}
	for si, seg := range segs {
		if v.Kind() != reflect.Struct {
			return target{}, fmt.Errorf("codec: path %q: %q is not a struct", path, seg.name)
		}
		fd, ok := lookupField(v.Type(), seg.name)
		if !ok {
			return target{}, fmt.Errorf("codec: path %q: unknown field %q", path, seg.name)
		}
		v = v.Field(fd.index)
		switch {
		case seg.hasIndex:
			if v.Kind() != reflect.Slice {
				return target{}, fmt.Errorf("codec: path %q: %q is not a slice", path, seg.name)
			}
			if seg.index < 0 || seg.index >= v.Len() {
				return target{}, fmt.Errorf("codec: path %q: index %d out of range (len %d)", path, seg.index, v.Len())
			}
			v = v.Index(seg.index)
		case seg.hasKey:
			if v.Kind() != reflect.Map {
				return target{}, fmt.Errorf("codec: path %q: %q is not a map", path, seg.name)
			}
			if si != len(segs)-1 {
				return target{}, fmt.Errorf("codec: path %q: map access must be the last segment", path)
			}
			return target{m: v, key: reflect.ValueOf(seg.key)}, nil
		}
	}
	return target{v: v}, nil
}

type segment struct {
	name     string
	hasIndex bool
	index    int
	hasKey   bool
	key      string
}

func splitPath(path string) ([]segment, error) {
	if path == "" {
		return nil, fmt.Errorf("codec: empty path")
	}
	var segs []segment
	depth := 0
	start := 0
	flush := func(end int) error {
		raw := path[start:end]
		if raw == "" {
			return fmt.Errorf("codec: path %q: empty segment", path)
		}
		seg, err := parseSegment(raw, path)
		if err != nil {
			return err
		}
		segs = append(segs, seg)
		return nil
	}
	for i := 0; i < len(path); i++ {
		switch path[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("codec: path %q: unbalanced brackets", path)
			}
		case '.':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("codec: path %q: unbalanced brackets", path)
	}
	if err := flush(len(path)); err != nil {
		return nil, err
	}
	return segs, nil
}

func parseSegment(raw, path string) (segment, error) {
	open := strings.IndexByte(raw, '[')
	if open < 0 {
		return segment{name: raw}, nil
	}
	if !strings.HasSuffix(raw, "]") {
		return segment{}, fmt.Errorf("codec: path %q: malformed segment %q", path, raw)
	}
	name, inner := raw[:open], raw[open+1:len(raw)-1]
	if idx, err := strconv.Atoi(inner); err == nil {
		return segment{name: name, hasIndex: true, index: idx}, nil
	}
	return segment{name: name, hasKey: true, key: inner}, nil
}

func lookupField(t reflect.Type, wireName string) (fieldDesc, bool) {
	for _, fd := range structFields(t) {
		if fd.name == wireName {
			return fd, true
		}
	}
	return fieldDesc{}, false
}
