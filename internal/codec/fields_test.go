package codec

import (
	"strings"
	"testing"
)

func TestFieldsEnumeration(t *testing.T) {
	in := sample()
	fields := Fields(&in)
	byPath := make(map[string]FieldKind, len(fields))
	for _, f := range fields {
		byPath[f.Path] = f.Kind
	}
	want := map[string]FieldKind{
		"iD":             FieldString,
		"n":              FieldInt,
		"flag":           FieldBool,
		"nested.name":    FieldString,
		"nested.count":   FieldInt,
		"nested.on":      FieldBool,
		"items[0].name":  FieldString,
		"items[1].count": FieldInt,
		"tags[0]":        FieldString,
		"numbers[2]":     FieldInt,
		"labels[app]":    FieldString,
		"labels[tier]":   FieldString,
	}
	for p, k := range want {
		if byPath[p] != k {
			t.Errorf("Fields missing %s (%s); got kinds %v", p, k, byPath[p])
		}
	}
}

func TestFieldsDeterministicOrder(t *testing.T) {
	in := sample()
	a := Fields(&in)
	b := Fields(&in)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGetSetScalar(t *testing.T) {
	in := sample()
	if err := Set(&in, "n", int64(99)); err != nil {
		t.Fatal(err)
	}
	got, err := Get(&in, "n")
	if err != nil {
		t.Fatal(err)
	}
	if got.(int64) != 99 {
		t.Fatalf("Get(n) = %v, want 99", got)
	}
	if err := Set(&in, "flag", false); err != nil {
		t.Fatal(err)
	}
	if in.Flag {
		t.Fatal("Set(flag,false) had no effect")
	}
}

func TestGetSetNested(t *testing.T) {
	in := sample()
	if err := Set(&in, "nested.name", "renamed"); err != nil {
		t.Fatal(err)
	}
	if in.Nested.Name != "renamed" {
		t.Fatalf("Nested.Name = %q", in.Nested.Name)
	}
	if err := Set(&in, "items[1].count", int64(5)); err != nil {
		t.Fatal(err)
	}
	if in.Items[1].Count != 5 {
		t.Fatalf("Items[1].Count = %d", in.Items[1].Count)
	}
	if err := Set(&in, "tags[0]", "flipped"); err != nil {
		t.Fatal(err)
	}
	if in.Tags[0] != "flipped" {
		t.Fatalf("Tags[0] = %q", in.Tags[0])
	}
}

func TestGetSetMapEntry(t *testing.T) {
	in := sample()
	if err := Set(&in, "labels[app]", "db"); err != nil {
		t.Fatal(err)
	}
	if in.Labels["app"] != "db" {
		t.Fatalf("Labels[app] = %q", in.Labels["app"])
	}
	got, err := Get(&in, "labels[app]")
	if err != nil {
		t.Fatal(err)
	}
	if got.(string) != "db" {
		t.Fatalf("Get(labels[app]) = %v", got)
	}
	// Creating a new key on a nil map.
	var empty outer
	if err := Set(&empty, "labels[new]", "v"); err != nil {
		t.Fatal(err)
	}
	if empty.Labels["new"] != "v" {
		t.Fatal("Set on nil map did not create entry")
	}
}

func TestMapKeyWithDots(t *testing.T) {
	in := outer{Labels: map[string]string{"app.kubernetes.io/name": "web"}}
	fields := Fields(&in)
	var path string
	for _, f := range fields {
		if strings.Contains(f.Path, "kubernetes") {
			path = f.Path
		}
	}
	if path == "" {
		t.Fatal("dotted map key not enumerated")
	}
	got, err := Get(&in, path)
	if err != nil {
		t.Fatalf("Get(%q): %v", path, err)
	}
	if got.(string) != "web" {
		t.Fatalf("Get(%q) = %v", path, got)
	}
	if err := Set(&in, path, "api"); err != nil {
		t.Fatal(err)
	}
	if in.Labels["app.kubernetes.io/name"] != "api" {
		t.Fatal("Set via dotted map key failed")
	}
}

func TestPathErrors(t *testing.T) {
	in := sample()
	cases := []struct {
		path string
		val  any
	}{
		{"nope", "x"},
		{"nested.nope", "x"},
		{"items[9].name", "x"},
		{"items[-1].name", "x"},
		{"n.deeper", "x"},
		{"", "x"},
		{"labels[app", "x"},
	}
	for _, tt := range cases {
		if err := Set(&in, tt.path, tt.val); err == nil {
			t.Errorf("Set(%q) succeeded, want error", tt.path)
		}
		if _, err := Get(&in, tt.path); err == nil {
			t.Errorf("Get(%q) succeeded, want error", tt.path)
		}
	}
}

func TestSetWrongType(t *testing.T) {
	in := sample()
	if err := Set(&in, "n", "not-an-int"); err == nil {
		t.Fatal("Set(int field, string) succeeded")
	}
	if err := Set(&in, "iD", 7); err == nil {
		t.Fatal("Set(string field, int) succeeded")
	}
	if err := Set(&in, "flag", "yes"); err == nil {
		t.Fatal("Set(bool field, string) succeeded")
	}
}

// Every enumerated field must be Get-able and Set-able with a value of its
// own kind: the injection campaign relies on this closure property.
func TestEveryEnumeratedFieldIsAddressable(t *testing.T) {
	in := sample()
	for _, f := range Fields(&in) {
		cur, err := Get(&in, f.Path)
		if err != nil {
			t.Fatalf("Get(%q): %v", f.Path, err)
		}
		switch f.Kind {
		case FieldString:
			if err := Set(&in, f.Path, cur.(string)+"!"); err != nil {
				t.Fatalf("Set(%q): %v", f.Path, err)
			}
		case FieldInt:
			if err := Set(&in, f.Path, cur.(int64)+1); err != nil {
				t.Fatalf("Set(%q): %v", f.Path, err)
			}
		case FieldBool:
			if err := Set(&in, f.Path, !cur.(bool)); err != nil {
				t.Fatalf("Set(%q): %v", f.Path, err)
			}
		}
	}
}
