package codec

import (
	"sync"
	"sync/atomic"
)

// Decode-side string interning.
//
// The wire traffic of a campaign is massively repetitive: every pod carries
// the same kind names, namespaces, node names, label keys and values, image
// strings, and command words, and the watch-cache path re-decodes them on
// every store event. Without interning each decode allocates a fresh copy of
// every string; with it, repeated strings resolve to one canonical instance,
// which both removes the allocation and deduplicates the retained heap
// (decoded objects are long-lived in the watch cache and in snapshots).
//
// The table is process-wide, sharded, and lock-free on the read path:
// campaign workers decode concurrently on independent simulations, and the
// hot vocabulary stabilizes within the first experiment, so the steady state
// is 100% hits. Each shard publishes an immutable map through an atomic
// pointer — a hit is one atomic load plus one map lookup, with no lock to
// bounce between cores (the RWMutex this replaces serialized workers on the
// shard's cache line even when every access was a read). Misses take a
// shard-local mutex, copy the map, insert, and republish; that copy-on-write
// cost is paid once per new string and is bounded by maxShardEntries.
// Strings longer than maxInternLen are passed through uncopied-into-the-
// table (they are unlikely to repeat: serialized payload blobs, corrupted
// values), and a full shard stops accepting new entries rather than
// evicting.

const (
	// maxInternLen bounds interned string length; hot identifiers (names,
	// namespaces, labels, images, IPs) are all far below it.
	maxInternLen = 64
	// internShardCount must be a power of two (the shard index is a hash
	// mask). 64 shards comfortably exceed GOMAXPROCS on any campaign
	// runner, so concurrent inserts rarely meet on one shard.
	internShardCount = 64
	// maxShardEntries bounds one shard's table; beyond it new strings are
	// allocated per decode like before (graceful degradation, no eviction
	// churn). It also bounds the total copy-on-write insert work a shard
	// can ever do.
	maxShardEntries = 4096
)

type internShard struct {
	// table holds the published, immutable map. Readers load it atomically
	// and never lock; writers replace it wholesale under mu.
	table atomic.Pointer[map[string]string]
	mu    sync.Mutex
}

var internTable [internShardCount]internShard

func init() {
	for i := range internTable {
		m := make(map[string]string)
		internTable[i].table.Store(&m)
	}
}

// internHash is FNV-1a over the bytes; only used to pick a shard.
func internHash(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// Intern returns a string equal to b, reusing a canonical instance when the
// same bytes were seen before. The fast path is one atomic load plus a map
// hit with zero allocations and zero locks (the compiler elides the
// []byte→string conversion for map lookups).
func Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > maxInternLen {
		return string(b)
	}
	s := &internTable[internHash(b)&(internShardCount-1)]
	if v, ok := (*s.table.Load())[string(b)]; ok {
		return v
	}
	str := string(b)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check under the lock: a concurrent insert may have published the
	// string while we were waiting.
	cur := *s.table.Load()
	if v, ok := cur[str]; ok {
		return v
	}
	if len(cur) >= maxShardEntries {
		return str // shard full: hand back the private copy, table unchanged
	}
	next := make(map[string]string, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[str] = str
	s.table.Store(&next)
	return str
}

// internedStrings reports the current table population (diagnostics/tests).
func internedStrings() int {
	n := 0
	for i := range internTable {
		n += len(*internTable[i].table.Load())
	}
	return n
}
