package codec

import "sync"

// Decode-side string interning.
//
// The wire traffic of a campaign is massively repetitive: every pod carries
// the same kind names, namespaces, node names, label keys and values, image
// strings, and command words, and the watch-cache path re-decodes them on
// every store event. Without interning each decode allocates a fresh copy of
// every string; with it, repeated strings resolve to one canonical instance,
// which both removes the allocation and deduplicates the retained heap
// (decoded objects are long-lived in the watch cache and in snapshots).
//
// The table is process-wide and sharded: campaign workers decode concurrently
// on independent simulations, so each shard takes a short RWMutex. Strings
// longer than maxInternLen are passed through uncopied-into-the-table (they
// are unlikely to repeat: serialized payload blobs, corrupted values), and a
// full shard stops accepting new entries rather than evicting — the hot
// vocabulary of a campaign is small and stabilizes within the first
// experiment.

const (
	// maxInternLen bounds interned string length; hot identifiers (names,
	// namespaces, labels, images, IPs) are all far below it.
	maxInternLen = 64
	// internShardCount must be a power of two (the shard index is a hash
	// mask).
	internShardCount = 64
	// maxShardEntries bounds one shard's table; beyond it new strings are
	// allocated per decode like before (graceful degradation, no eviction
	// churn).
	maxShardEntries = 4096
)

type internShard struct {
	mu sync.RWMutex
	m  map[string]string
}

var internTable [internShardCount]internShard

func init() {
	for i := range internTable {
		internTable[i].m = make(map[string]string, 64)
	}
}

// internHash is FNV-1a over the bytes; only used to pick a shard.
func internHash(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// Intern returns a string equal to b, reusing a canonical instance when the
// same bytes were seen before. The fast path is a shared-lock map hit with
// zero allocations (the compiler elides the []byte→string conversion for map
// lookups).
func Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > maxInternLen {
		return string(b)
	}
	s := &internTable[internHash(b)&(internShardCount-1)]
	s.mu.RLock()
	v, ok := s.m[string(b)]
	s.mu.RUnlock()
	if ok {
		return v
	}
	str := string(b)
	s.mu.Lock()
	if v, ok = s.m[str]; ok {
		str = v
	} else if len(s.m) < maxShardEntries {
		s.m[str] = str
	}
	s.mu.Unlock()
	return str
}

// internedStrings reports the current table population (diagnostics/tests).
func internedStrings() int {
	n := 0
	for i := range internTable {
		s := &internTable[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
