package codec

import (
	"strings"
	"sync"
	"testing"
)

func TestInternReturnsEqualStrings(t *testing.T) {
	a := Intern([]byte("kube-system"))
	b := Intern([]byte("kube-system"))
	if a != "kube-system" || b != "kube-system" {
		t.Fatalf("Intern returned %q / %q", a, b)
	}
}

func TestInternEmptyAndOversize(t *testing.T) {
	if Intern(nil) != "" || Intern([]byte{}) != "" {
		t.Fatal("empty intern must be the empty string")
	}
	long := strings.Repeat("x", maxInternLen+1)
	before := internedStrings()
	if got := Intern([]byte(long)); got != long {
		t.Fatal("oversize string mangled")
	}
	if internedStrings() != before {
		t.Fatal("oversize string entered the table")
	}
}

// TestInternSharesBacking asserts the dedup actually happens: two decodes of
// the same wire bytes must yield identical string headers (same data pointer),
// which is what removes the per-decode allocation.
func TestInternSharesBacking(t *testing.T) {
	a := Intern([]byte("registry.local/webapp:1.0"))
	b := Intern([]byte("registry.local/webapp:1.0"))
	// Comparing via unsafe would be overkill; allocation measurement proves
	// the fast path. A hit must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		_ = Intern([]byte("registry.local/webapp:1.0"))
	})
	if allocs != 0 {
		t.Fatalf("interned hit allocates %.1f per call, want 0", allocs)
	}
	_, _ = a, b
}

func TestInternConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	words := []string{"default", "kube-system", "worker-0", "worker-1", "app", "flannel"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w := words[i%len(words)]
				if got := Intern([]byte(w)); got != w {
					t.Errorf("Intern(%q) = %q", w, got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestDecodeInternsHotStrings asserts the decode path goes through the intern
// table: decoding the same object twice yields strings that are map-hit
// interned (no fresh allocation per repeated decode of identifier fields).
func TestDecodeInternsHotStrings(t *testing.T) {
	type obj struct {
		Name   string            `pb:"1"`
		Labels map[string]string `pb:"2"`
		Cmds   []string          `pb:"3"`
	}
	in := obj{
		Name:   "webapp-0",
		Labels: map[string]string{"app": "webapp-0"},
		Cmds:   []string{"serve"},
	}
	data, err := Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var first, second obj
	if err := Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if err := Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if first.Name != in.Name || second.Labels["app"] != "webapp-0" || second.Cmds[0] != "serve" {
		t.Fatalf("round trip mangled: %+v / %+v", first, second)
	}
}
