package codec

import (
	"fmt"
	"reflect"
)

// Sectioned access to encoded objects, for the apiserver's write-path encode
// elision. Every top-level object encoding is a sequence of length-delimited
// records in ascending field order — metadata (field 1), spec (field 2),
// status (field 3) — because the encoder walks the compiled plan in field
// number order and omits empty sections. That layout makes two surgical
// operations cheap and exact:
//
//   - RewriteObjectRV patches the resourceVersion varint inside the metadata
//     record, turning the bytes that were just persisted (which carry the
//     writer's RV, like an etcd txn payload) into the canonical encoding of
//     the object at its committed revision — the invariant the cached wire
//     bytes on sealed objects must satisfy.
//   - StatusOffset finds where the status section starts, so a status-only
//     update can splice a freshly encoded status record onto the cached
//     prefix instead of re-marshalling metadata and spec. The encoder is
//     deterministic (sorted map keys, fixed field order), so the splice is
//     byte-identical to a full Marshal of the merged object.
//
// Both return "no" (nil / not-ok) on anything unexpected rather than
// guessing: callers fall back to a full encode, which is always correct.

// objectMetaField is the top-level field number of ObjectMeta on every kind.
const objectMetaField = 1

// ObjectStatusField is the top-level field number of the status section on
// the kinds that carry one (Pod, ReplicaSet, Deployment, DaemonSet, Node).
const ObjectStatusField = 3

// metaRVField is the field number of ResourceVersion within ObjectMeta.
const metaRVField = 4

// StatusOffset returns the byte offset in data where the top-level status
// record (field ObjectStatusField) begins — len(data) when the status section
// is empty or absent — and whether the scan succeeded. Records with larger
// field numbers also stop the scan: the encoder emits fields in ascending
// order, so everything from the first such record on belongs after the
// spec section.
func StatusOffset(data []byte) (int, bool) {
	off := 0
	rest := data
	for len(rest) > 0 {
		tag, n, err := readVarint(rest)
		if err != nil || tag&7 != wireBytes {
			return 0, false
		}
		if int(tag>>3) >= ObjectStatusField {
			return off, true
		}
		rest = rest[n:]
		length, m, err := readVarint(rest)
		if err != nil || length > uint64(len(rest)-m) {
			return 0, false
		}
		skip := n + m + int(length)
		rest = rest[m+int(length):]
		off += skip
	}
	return off, true
}

// RewriteObjectRV returns a fresh slice holding data with the metadata
// record's resourceVersion replaced by rv, or nil when data does not parse as
// an object encoding (metadata must be the first record). The result is
// exactly sized and owned by the caller; data is never modified.
func RewriteObjectRV(data []byte, rv int64) []byte {
	tag, n, err := readVarint(data)
	if err != nil || tag>>3 != objectMetaField || tag&7 != wireBytes {
		return nil
	}
	length, m, err := readVarint(data[n:])
	if err != nil || length > uint64(len(data)-n-m) {
		return nil
	}
	meta := data[n+m : n+m+int(length)]
	rest := data[n+m+int(length):]

	// Locate the RV record inside the metadata body: [i:j) spans the old
	// record (i == j at the insertion point when the field is absent, which
	// is how RV 0 — a create — is encoded).
	i, j, ok := findVarintField(meta, metaRVField)
	if !ok {
		return nil
	}
	var rvRec []byte
	var rvBuf [12]byte
	if rv != 0 {
		rvRec = appendTag(rvBuf[:0], metaRVField, wireVarint)
		rvRec = appendVarint(rvRec, uint64(rv))
	}
	newMetaLen := len(meta) - (j - i) + len(rvRec)
	out := make([]byte, 0, 1+varintSize(uint64(newMetaLen))+newMetaLen+len(rest))
	out = appendTag(out, objectMetaField, wireBytes)
	out = appendVarint(out, uint64(newMetaLen))
	out = append(out, meta[:i]...)
	out = append(out, rvRec...)
	out = append(out, meta[j:]...)
	out = append(out, rest...)
	return out
}

// findVarintField scans a struct body for the varint record with field
// number num, returning its [start, end) span. When the field is absent the
// span is empty and sits where the record would be inserted (fields are
// encoded in ascending order). Reports failure on malformed bytes or a
// wire-type mismatch for num.
func findVarintField(body []byte, num int) (int, int, bool) {
	off := 0
	rest := body
	for len(rest) > 0 {
		tag, n, err := readVarint(rest)
		if err != nil {
			return 0, 0, false
		}
		fieldNum, wt := int(tag>>3), int(tag&7)
		if fieldNum > num {
			return off, off, true
		}
		var size int
		switch wt {
		case wireVarint:
			_, vn, err := readVarint(rest[n:])
			if err != nil {
				return 0, 0, false
			}
			size = n + vn
		case wireBytes:
			length, m, err := readVarint(rest[n:])
			if err != nil || length > uint64(len(rest)-n-m) {
				return 0, 0, false
			}
			size = n + m + int(length)
		default:
			return 0, 0, false
		}
		if fieldNum == num {
			if wt != wireVarint {
				return 0, 0, false
			}
			return off, off + size, true
		}
		rest = rest[size:]
		off += size
	}
	return off, off, true
}

// varintSize returns the encoded size of v.
func varintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendStructField appends msg encoded as one length-delimited record with
// field number num — nothing at all when the encoding is empty, mirroring
// how the full encoder omits empty sections. Combined with a cached prefix
// from StatusOffset this reproduces a full Marshal byte for byte.
func (a *Arena) AppendStructField(b []byte, num int, msg any) ([]byte, error) {
	return a.enc.appendStructField(b, num, msg)
}

func (e *encoder) appendStructField(b []byte, num int, msg any) ([]byte, error) {
	v := reflect.ValueOf(msg)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return nil, fmt.Errorf("codec: marshal nil %T", msg)
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return nil, fmt.Errorf("codec: marshal non-struct %T", msg)
	}
	slot := e.grab()
	inner, err := e.appendStruct(e.scratch[slot][:0], v)
	if err != nil {
		e.put(slot, e.scratch[slot])
		return nil, err
	}
	if len(inner) != 0 {
		b = appendTag(b, num, wireBytes)
		b = appendVarint(b, uint64(len(inner)))
		b = append(b, inner...)
	}
	e.put(slot, inner)
	return b, nil
}
