// Tests and benchmarks for sectioned access to encoded objects — the
// primitives behind the apiserver's write-path encode elision. Exactness is
// everything here: a splice or RV rewrite that differs from a full Marshal
// by one byte would silently diverge the store from the cache.
package codec_test

import (
	"bytes"
	"testing"

	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

func statusPod(rv int64) *spec.Pod {
	return &spec.Pod{
		Metadata: spec.ObjectMeta{
			Name: "web-1", Namespace: spec.DefaultNamespace,
			ResourceVersion: rv, UID: "uid-1",
			Labels: map[string]string{spec.LabelApp: "web"},
		},
		Spec: spec.PodSpec{
			NodeName: "node-1",
			Containers: []spec.Container{{
				Name: "web", Image: "registry.local/web:1.0",
				RequestsMilliCPU: 100, RequestsMemMB: 64, Port: 8080,
			}},
		},
		Status: spec.PodStatus{Phase: spec.PodRunning, Ready: true, PodIP: "10.244.0.5"},
	}
}

// StatusOffset + AppendStructField reproduce a full Marshal: prefix through
// the spec section, spliced status record, byte for byte.
func TestStatusSpliceMatchesFullMarshal(t *testing.T) {
	pod := statusPod(7)
	full, err := codec.Marshal(pod)
	if err != nil {
		t.Fatal(err)
	}
	off, ok := codec.StatusOffset(full)
	if !ok {
		t.Fatal("StatusOffset failed on a valid encoding")
	}
	if off <= 0 || off >= len(full) {
		t.Fatalf("status offset %d out of range for a pod with status (len %d)", off, len(full))
	}

	changed := *pod
	changed.Status = spec.PodStatus{Phase: spec.PodFailed, Reason: "Evicted", RestartCount: 2}
	arena := codec.NewArena()
	spliced, err := arena.AppendStructField(append([]byte(nil), full[:off]...), codec.ObjectStatusField, &changed.Status)
	if err != nil {
		t.Fatal(err)
	}
	want, err := codec.Marshal(&changed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(spliced, want) {
		t.Fatalf("spliced encoding differs from full Marshal:\n  spliced %x\n  want    %x", spliced, want)
	}
}

// An empty status section is omitted by the encoder; the splice must omit it
// identically, and StatusOffset must then point at the end of the data.
func TestStatusSpliceOmitsEmptyStatus(t *testing.T) {
	pod := statusPod(3)
	pod.Status = spec.PodStatus{}
	full, err := codec.Marshal(pod)
	if err != nil {
		t.Fatal(err)
	}
	off, ok := codec.StatusOffset(full)
	if !ok || off != len(full) {
		t.Fatalf("StatusOffset = (%d, %v) on a statusless pod, want (%d, true)", off, ok, len(full))
	}
	arena := codec.NewArena()
	spliced, err := arena.AppendStructField(append([]byte(nil), full[:off]...), codec.ObjectStatusField, &pod.Status)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(spliced, full) {
		t.Fatal("splicing an empty status emitted bytes the full encoder omits")
	}
}

// RewriteObjectRV produces exactly what encoding the object at the new RV
// would — across growing/shrinking varint widths and the absent-field (RV 0)
// encoding in both directions.
func TestRewriteObjectRVMatchesReencode(t *testing.T) {
	for _, from := range []int64{0, 1, 127, 128, 300, 1 << 20} {
		for _, to := range []int64{0, 1, 127, 128, 16384, 1 << 28} {
			pod := statusPod(from)
			data, err := codec.Marshal(pod)
			if err != nil {
				t.Fatal(err)
			}
			got := codec.RewriteObjectRV(data, to)
			if got == nil {
				t.Fatalf("RewriteObjectRV(rv=%d->%d) failed on a valid encoding", from, to)
			}
			pod.Metadata.ResourceVersion = to
			want, err := codec.Marshal(pod)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("rv %d->%d: rewrite differs from re-encode", from, to)
			}
			// The input must be untouched.
			pod.Metadata.ResourceVersion = from
			orig, _ := codec.Marshal(pod)
			if !bytes.Equal(data, orig) {
				t.Fatalf("rv %d->%d: RewriteObjectRV modified its input", from, to)
			}
		}
	}
}

func TestRewriteObjectRVRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		{0xff},
		{0x08, 0x01}, // varint field 1, not a length-delimited metadata record
	} {
		if out := codec.RewriteObjectRV(data, 5); out != nil {
			t.Fatalf("RewriteObjectRV accepted malformed input %x", data)
		}
	}
}

func TestStatusOffsetRejectsGarbage(t *testing.T) {
	if _, ok := codec.StatusOffset([]byte{0xff, 0xff, 0xff}); ok {
		t.Fatal("StatusOffset accepted malformed input")
	}
	if off, ok := codec.StatusOffset(nil); !ok || off != 0 {
		t.Fatalf("StatusOffset(nil) = (%d, %v), want (0, true)", off, ok)
	}
}

// BenchmarkCodecRewriteRV measures the cached-Marshal path: patching the
// committed revision into just-persisted bytes instead of re-encoding.
func BenchmarkCodecRewriteRV(b *testing.B) {
	data, err := codec.Marshal(statusPod(41))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := codec.RewriteObjectRV(data, int64(42+i%64)); out == nil {
			b.Fatal("rewrite failed")
		}
	}
}

// BenchmarkCodecStatusSplice measures a status-only re-encode against the
// full Marshal it elides (BenchmarkCodecMarshal covers the mixed-kind case;
// this is the like-for-like pod comparison).
func BenchmarkCodecStatusSplice(b *testing.B) {
	pod := statusPod(41)
	full, err := codec.Marshal(pod)
	if err != nil {
		b.Fatal(err)
	}
	off, ok := codec.StatusOffset(full)
	if !ok {
		b.Fatal("StatusOffset failed")
	}
	arena := codec.NewArena()
	buf := arena.NewBuffer()
	defer buf.Free()
	b.Run("splice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := arena.AppendStructField(append(buf.B[:0], full[:off]...), codec.ObjectStatusField, &pod.Status)
			if err != nil {
				b.Fatal(err)
			}
			buf.B = out
		}
	})
	b.Run("full-marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := arena.AppendMarshal(buf.B[:0], pod)
			if err != nil {
				b.Fatal(err)
			}
			buf.B = out
		}
	})
}
