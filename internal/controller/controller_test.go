package controller

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// harness runs a manager (without leader election) against a bare apiserver
// with two ready nodes; there are no kubelets, so pods stay Pending unless a
// test sets status explicitly.
type harness struct {
	loop *sim.Loop
	srv  *apiserver.Server
	c    *apiserver.Client
	m    *Manager
}

func newHarness(t *testing.T, opts Options) *harness {
	t.Helper()
	loop := sim.NewLoop(1)
	st := store.New(loop, nil)
	srv := apiserver.New(loop, st, nil)
	opts.DisableLeaderElection = true
	m := NewManager(loop, srv, opts)
	h := &harness{loop: loop, srv: srv, c: srv.ClientFor("test"), m: m}
	for _, name := range []string{"worker-0", "worker-1"} {
		node := &spec.Node{
			Metadata: spec.ObjectMeta{Name: name},
			Status: spec.NodeStatus{Ready: true, AllocatableMilliCPU: 8000,
				AllocatableMemMB: 4096, LastHeartbeatMillis: loop.Time().UnixMilli()},
		}
		if err := h.c.Create(node); err != nil {
			t.Fatal(err)
		}
	}
	m.Start()
	loop.RunUntil(time.Second)
	return h
}

func (h *harness) run(d time.Duration) { h.loop.RunUntil(h.loop.Now() + d) }

func (h *harness) heartbeatNodes() {
	for _, name := range []string{"worker-0", "worker-1"} {
		obj, err := h.c.Get(spec.KindNode, "", name)
		if err != nil {
			continue
		}
		node := obj.(*spec.Node)
		node.Status.Ready = true
		node.Status.LastHeartbeatMillis = h.loop.Time().UnixMilli()
		_ = h.c.UpdateStatus(node)
	}
}

func testRS(name string, replicas int64) *spec.ReplicaSet {
	return &spec.ReplicaSet{
		Metadata: spec.ObjectMeta{
			Name: name, Namespace: spec.DefaultNamespace,
			Labels: map[string]string{"app": name},
		},
		Spec: spec.ReplicaSetSpec{
			Replicas: replicas,
			Selector: spec.LabelSelector{MatchLabels: map[string]string{"app": name}},
			Template: spec.PodTemplate{
				Labels: map[string]string{"app": name},
				Spec: spec.PodSpec{Containers: []spec.Container{{
					Name: "c", Image: "registry.local/web:1", Command: []string{"serve"},
					RequestsMilliCPU: 100, RequestsMemMB: 64,
				}}},
			},
		},
	}
}

func (h *harness) pods(ns string) []*spec.Pod {
	var out []*spec.Pod
	for _, po := range h.c.List(spec.KindPod, ns) {
		out = append(out, po.(*spec.Pod))
	}
	return out
}

func TestReplicaSetCreatesPods(t *testing.T) {
	h := newHarness(t, Options{})
	if err := h.c.Create(testRS("web", 3)); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	pods := h.pods(spec.DefaultNamespace)
	if len(pods) != 3 {
		t.Fatalf("pods = %d, want 3", len(pods))
	}
	for _, pod := range pods {
		ref := pod.Metadata.ControllerOf()
		if ref == nil || ref.Kind != string(spec.KindReplicaSet) || ref.Name != "web" {
			t.Fatalf("pod %s owner = %+v", pod.Metadata.Name, ref)
		}
	}
}

func TestReplicaSetScalesDown(t *testing.T) {
	h := newHarness(t, Options{})
	if err := h.c.Create(testRS("web", 4)); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	obj, _ := h.c.Get(spec.KindReplicaSet, spec.DefaultNamespace, "web")
	rs := obj.(*spec.ReplicaSet)
	rs.Spec.Replicas = 1
	if err := h.c.Update(rs); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	if pods := h.pods(spec.DefaultNamespace); len(pods) != 1 {
		t.Fatalf("pods after scale-down = %d, want 1", len(pods))
	}
}

// A pod whose labels no longer match its owner's selector is released (it
// keeps running, orphaned) and replaced — silent over-provisioning.
func TestReplicaSetReleasesMislabeledPod(t *testing.T) {
	h := newHarness(t, Options{DisableGC: true})
	if err := h.c.Create(testRS("web", 2)); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	pods := h.pods(spec.DefaultNamespace)
	if len(pods) != 2 {
		t.Fatalf("setup pods = %d", len(pods))
	}
	victim := spec.CloneForWriteAs(pods[0])
	victim.Metadata.Labels["app"] = "mislabeled"
	if err := h.c.Update(victim); err != nil {
		t.Fatal(err)
	}
	h.run(6 * time.Second)
	pods = h.pods(spec.DefaultNamespace)
	if len(pods) != 3 {
		t.Fatalf("pods after mislabel = %d, want 3 (orphan + replacement)", len(pods))
	}
	obj, _ := h.c.Get(spec.KindPod, spec.DefaultNamespace, victim.Metadata.Name)
	if obj.(*spec.Pod).Metadata.ControllerOf() != nil {
		t.Fatal("mislabeled pod still owned; it must be released")
	}
}

// Orphan pods matching the selector are adopted instead of duplicated.
func TestReplicaSetAdoptsMatchingOrphan(t *testing.T) {
	h := newHarness(t, Options{DisableGC: true})
	orphan := &spec.Pod{
		Metadata: spec.ObjectMeta{Name: "stray", Namespace: spec.DefaultNamespace,
			Labels: map[string]string{"app": "web"}},
		Spec: spec.PodSpec{Containers: []spec.Container{{
			Name: "c", Image: "registry.local/web:1", Command: []string{"serve"},
		}}},
	}
	if err := h.c.Create(orphan); err != nil {
		t.Fatal(err)
	}
	h.run(time.Second)
	if err := h.c.Create(testRS("web", 2)); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	pods := h.pods(spec.DefaultNamespace)
	if len(pods) != 2 {
		t.Fatalf("pods = %d, want 2 (orphan adopted, one created)", len(pods))
	}
	obj, _ := h.c.Get(spec.KindPod, spec.DefaultNamespace, "stray")
	ref := obj.(*spec.Pod).Metadata.ControllerOf()
	if ref == nil || ref.Name != "web" {
		t.Fatal("orphan not adopted")
	}
}

func TestDeploymentCreatesReplicaSetWithHash(t *testing.T) {
	h := newHarness(t, Options{})
	d := &spec.Deployment{
		Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace,
			Labels: map[string]string{"app": "web"}},
		Spec: spec.DeploymentSpec{
			Replicas: 2,
			Selector: spec.LabelSelector{MatchLabels: map[string]string{"app": "web"}},
			Template: testRS("web", 0).Spec.Template,
			MaxSurge: 1,
		},
	}
	if err := h.c.Create(d); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	rss := h.c.List(spec.KindReplicaSet, spec.DefaultNamespace)
	if len(rss) != 1 {
		t.Fatalf("replicasets = %d, want 1", len(rss))
	}
	rs := rss[0].(*spec.ReplicaSet)
	if rs.Metadata.Labels[spec.LabelPodHash] == "" {
		t.Fatal("replica set missing pod-template-hash")
	}
	if rs.Spec.Replicas != 2 {
		t.Fatalf("rs replicas = %d, want 2", rs.Spec.Replicas)
	}
	if len(h.pods(spec.DefaultNamespace)) != 2 {
		t.Fatal("deployment pods not created")
	}
}

func TestDeploymentRollingUpdateCreatesNewRS(t *testing.T) {
	h := newHarness(t, Options{})
	d := &spec.Deployment{
		Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace},
		Spec: spec.DeploymentSpec{
			Replicas: 2,
			Selector: spec.LabelSelector{MatchLabels: map[string]string{"app": "web"}},
			Template: testRS("web", 0).Spec.Template,
			MaxSurge: 1,
		},
	}
	if err := h.c.Create(d); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	obj, _ := h.c.Get(spec.KindDeployment, spec.DefaultNamespace, "web")
	deploy := obj.(*spec.Deployment)
	deploy.Spec.Template.Spec.Containers[0].Image = "registry.local/web:2"
	if err := h.c.Update(deploy); err != nil {
		t.Fatal(err)
	}
	h.run(5 * time.Second)
	rss := h.c.List(spec.KindReplicaSet, spec.DefaultNamespace)
	if len(rss) != 2 {
		t.Fatalf("replicasets after template change = %d, want 2", len(rss))
	}
}

func TestEndpointsTrackReadyPods(t *testing.T) {
	h := newHarness(t, Options{})
	if err := h.c.Create(testRS("web", 2)); err != nil {
		t.Fatal(err)
	}
	svc := &spec.Service{
		Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace},
		Spec: spec.ServiceSpec{
			Selector: map[string]string{"app": "web"},
			Ports:    []spec.ServicePort{{Port: 80, TargetPort: 8080, Protocol: "TCP"}},
		},
	}
	if err := h.c.Create(svc); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	obj, err := h.c.Get(spec.KindEndpoints, spec.DefaultNamespace, "web")
	if err != nil {
		t.Fatal(err)
	}
	if obj.(*spec.Endpoints).Count() != 0 {
		t.Fatal("endpoints contain non-ready pods")
	}
	// Mark one pod ready (playing kubelet).
	pods := h.pods(spec.DefaultNamespace)
	pods[0].Status.Ready = true
	pods[0].Status.Phase = spec.PodRunning
	pods[0].Status.PodIP = "10.244.1.5"
	if err := h.c.UpdateStatus(pods[0]); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	obj, _ = h.c.Get(spec.KindEndpoints, spec.DefaultNamespace, "web")
	ep := obj.(*spec.Endpoints)
	if ep.Count() != 1 {
		t.Fatalf("endpoints = %d, want 1", ep.Count())
	}
	if ep.Subsets[0].Addresses[0].IP != "10.244.1.5" {
		t.Fatalf("endpoint IP = %q", ep.Subsets[0].Addresses[0].IP)
	}
}

func TestGarbageCollectorRemovesOrphans(t *testing.T) {
	h := newHarness(t, Options{})
	if err := h.c.Create(testRS("web", 2)); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	// Delete the owner; its pods must be collected.
	if err := h.c.Delete(spec.KindReplicaSet, spec.DefaultNamespace, "web"); err != nil {
		t.Fatal(err)
	}
	h.run(2*gcInterval + time.Second)
	if pods := h.pods(spec.DefaultNamespace); len(pods) != 0 {
		t.Fatalf("pods after owner deletion = %d, want 0", len(pods))
	}
}

// A corrupted ownerReference UID makes a healthy pod look orphaned: the GC
// deletes it and the controller respawns a replacement (dependency-field
// failure mode).
func TestGarbageCollectorDeletesOnUIDMismatch(t *testing.T) {
	h := newHarness(t, Options{})
	if err := h.c.Create(testRS("web", 1)); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	pods := h.pods(spec.DefaultNamespace)
	if len(pods) != 1 {
		t.Fatalf("setup pods = %d", len(pods))
	}
	name := pods[0].Metadata.Name
	pods[0].Metadata.OwnerReferences[0].UID = "uid-999999"
	if err := h.c.Update(pods[0]); err != nil {
		t.Fatal(err)
	}
	h.run(2*gcInterval + 2*time.Second)
	if _, err := h.c.Get(spec.KindPod, spec.DefaultNamespace, name); err == nil {
		t.Fatal("pod with corrupted owner UID survived GC")
	}
	// The ReplicaSet replaced it.
	if pods := h.pods(spec.DefaultNamespace); len(pods) != 1 {
		t.Fatalf("pods after GC churn = %d, want 1 replacement", len(pods))
	}
}

func TestPodGCRemovesPodsOnMissingNodes(t *testing.T) {
	h := newHarness(t, Options{})
	pod := &spec.Pod{
		Metadata: spec.ObjectMeta{Name: "stranded", Namespace: spec.DefaultNamespace},
		Spec: spec.PodSpec{
			NodeName: "ghost-node",
			Containers: []spec.Container{{
				Name: "c", Image: "registry.local/web:1", Command: []string{"serve"},
			}},
		},
	}
	if err := h.c.Create(pod); err != nil {
		t.Fatal(err)
	}
	h.run(podGCMinAge + 2*gcInterval + time.Second)
	if _, err := h.c.Get(spec.KindPod, spec.DefaultNamespace, "stranded"); err == nil {
		t.Fatal("pod on missing node survived pod GC")
	}
}

func TestNodeLifecycleMarksSilentNodeNotReady(t *testing.T) {
	h := newHarness(t, Options{})
	// Keep worker-1 heartbeating; let worker-0 go silent.
	stop := h.loop.Every(5*time.Second, func() {
		obj, err := h.c.Get(spec.KindNode, "", "worker-1")
		if err != nil {
			return
		}
		node := obj.(*spec.Node)
		node.Status.Ready = true
		node.Status.LastHeartbeatMillis = h.loop.Time().UnixMilli()
		_ = h.c.UpdateStatus(node)
	})
	defer stop.Stop()
	h.run(nodeGracePeriod + 15*time.Second)
	obj, _ := h.c.Get(spec.KindNode, "", "worker-0")
	node := obj.(*spec.Node)
	if node.Status.Ready {
		t.Fatal("silent node still Ready")
	}
	tainted := false
	for _, taint := range node.Spec.Taints {
		if taint.Key == taintUnreachable && taint.Effect == spec.TaintNoExecute {
			tainted = true
		}
	}
	if !tainted {
		t.Fatal("silent node not tainted NoExecute")
	}
	obj, _ = h.c.Get(spec.KindNode, "", "worker-1")
	if !obj.(*spec.Node).Status.Ready {
		t.Fatal("heartbeating node marked NotReady")
	}
}

// Full disruption mode (§II-D): when every node looks unhealthy, the fault
// is likelier in the heartbeat path — evictions must stop.
func TestFullDisruptionModeStopsEvictions(t *testing.T) {
	h := newHarness(t, Options{})
	if err := h.c.Create(testRS("web", 2)); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	// Bind pods to nodes (no kubelet here).
	for i, pod := range h.pods(spec.DefaultNamespace) {
		pod.Spec.NodeName = []string{"worker-0", "worker-1"}[i%2]
		if err := h.c.Update(pod); err != nil {
			t.Fatal(err)
		}
	}
	// All nodes go silent together.
	h.run(nodeGracePeriod + 20*time.Second)
	if pods := h.pods(spec.DefaultNamespace); len(pods) != 2 {
		t.Fatalf("pods = %d; full disruption mode must suspend evictions", len(pods))
	}
}

func TestEvictionsResumeWithoutFullDisruption(t *testing.T) {
	h := newHarness(t, Options{DisableFullDisruptionMode: true})
	if err := h.c.Create(testRS("web", 2)); err != nil {
		t.Fatal(err)
	}
	h.run(3 * time.Second)
	for _, pod := range h.pods(spec.DefaultNamespace) {
		pod.Spec.NodeName = "worker-0"
		if err := h.c.Update(pod); err != nil {
			t.Fatal(err)
		}
	}
	h.run(nodeGracePeriod + 30*time.Second)
	// With the safeguard disabled, the same scenario deletes (and then the
	// RS recreates) pods: there must have been deletions.
	deleted := 0
	for _, pod := range h.pods(spec.DefaultNamespace) {
		if pod.Spec.NodeName == "" {
			deleted++ // replacement, not yet bound
		}
	}
	if deleted == 0 {
		t.Fatal("no evictions happened with full disruption mode disabled")
	}
}

func TestDaemonSetOnePodPerNode(t *testing.T) {
	h := newHarness(t, Options{})
	ds := &spec.DaemonSet{
		Metadata: spec.ObjectMeta{Name: "agent", Namespace: spec.DefaultNamespace,
			Labels: map[string]string{"app": "agent"}},
		Spec: spec.DaemonSetSpec{
			Selector: spec.LabelSelector{MatchLabels: map[string]string{"app": "agent"}},
			Template: spec.PodTemplate{
				Labels: map[string]string{"app": "agent"},
				Spec: spec.PodSpec{Containers: []spec.Container{{
					Name: "a", Image: "registry.local/agent:1", Command: []string{"serve"},
				}}},
			},
		},
	}
	if err := h.c.Create(ds); err != nil {
		t.Fatal(err)
	}
	h.heartbeatNodes()
	h.run(3 * time.Second)
	perNode := map[string]int{}
	for _, pod := range h.pods(spec.DefaultNamespace) {
		perNode[pod.Spec.NodeName]++
	}
	if perNode["worker-0"] != 1 || perNode["worker-1"] != 1 {
		t.Fatalf("daemon pods per node = %v, want one each", perNode)
	}
}
