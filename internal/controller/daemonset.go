package controller

import (
	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// daemonSetController ensures one pod per eligible node for each DaemonSet.
// DaemonSet pods are bound directly to their node (they do not pass through
// the scheduler) and typically run at system-critical priority — which is
// why corrupting the labels that associate pods with a DaemonSet is the
// paper's flagship failure: the controller can no longer identify its pods,
// spawns replacements forever, and the high-priority replicas evict every
// application pod while the store fills up (§V-C1 example).
type daemonSetController struct {
	m *Manager
	q *queue
	// byNodeScratch / nodeSeenScratch are the per-sync grouping structures,
	// reused across syncs (neither outlives the sync call).
	byNodeScratch   map[string][]*spec.Pod
	nodeSeenScratch []string
	// nodeGen remembers each node's last-seen Generation. Generation only
	// moves on spec updates, and nodeEligible reads nothing outside spec,
	// labels, and taints — so a Modified event at an unchanged generation is
	// a kubelet heartbeat and cannot alter any placement decision. At 500
	// nodes those heartbeats would otherwise re-sync every DaemonSet
	// (a full pod+node scan each) about twenty times a second.
	nodeGen map[string]int64
}

func newDaemonSetController(m *Manager) *daemonSetController {
	c := &daemonSetController{m: m}
	c.q = newQueue(m.loop, syncDelay, c.sync)
	return c
}

func (c *daemonSetController) start() { c.q.start() }
func (c *daemonSetController) stop()  { c.q.stop() }

func (c *daemonSetController) enqueueFor(ev apiserver.WatchEvent) {
	switch ev.Kind {
	case spec.KindDaemonSet:
		c.q.add(objKey(ev.Object))
	case spec.KindNode:
		meta := ev.Object.Meta()
		if ev.Type == apiserver.Deleted {
			delete(c.nodeGen, meta.Name)
			c.resync()
			return
		}
		gen, known := c.nodeGen[meta.Name]
		if c.nodeGen == nil {
			c.nodeGen = make(map[string]int64)
		}
		c.nodeGen[meta.Name] = meta.Generation
		if ev.Type == apiserver.Modified && (!known || gen == meta.Generation) {
			// A heartbeat, or the first sighting after a restart cleared the
			// map: eligibility can't have changed on the former, and the
			// periodic resync bounds staleness on the latter — same
			// poll-bounded repair as a lost watch event.
			return
		}
		c.resync()
	case spec.KindPod:
		meta := ev.Object.Meta()
		if ref := meta.ControllerOf(); ref != nil && ref.Kind == string(spec.KindDaemonSet) {
			c.q.add(meta.Namespace + "/" + ref.Name)
		}
	}
}

func (c *daemonSetController) resync() {
	c.m.views.ForEach(spec.KindDaemonSet, "", func(o spec.Object) bool {
		c.q.add(objKey(o))
		return true
	})
}

func (c *daemonSetController) sync(key string) {
	ns, _ := splitKey(key)
	obj, ok := c.m.views.GetByKey(spec.KindDaemonSet, key)
	if !ok {
		return
	}
	ds := obj.(*spec.DaemonSet)

	// Group this DaemonSet's pods by node. Identification goes through the
	// selector AND the owner reference, like the ReplicaSet controller.
	// Informer-view scan: pods are only grouped and inspected; release
	// mutates a private clone (see releasePod). nodeSeen records first-seen
	// order so the missing-node sweep below is deterministic (map iteration
	// would randomize delete order between runs).
	if c.byNodeScratch == nil {
		c.byNodeScratch = make(map[string][]*spec.Pod)
	} else {
		clear(c.byNodeScratch)
	}
	podsByNode := c.byNodeScratch
	nodeSeen := c.nodeSeenScratch[:0]
	c.m.views.ForEach(spec.KindPod, ns, func(po spec.Object) bool {
		pod := po.(*spec.Pod)
		if !pod.Active() {
			return true
		}
		ref := pod.Metadata.ControllerOf()
		if ref == nil || ref.UID != ds.Metadata.UID {
			return true
		}
		if !ds.Spec.Selector.Matches(pod.Metadata.Labels) {
			// The pod no longer looks like ours: release it. The replacement
			// spawned below starts the uncontrolled-replication loop if the
			// corruption is in the template.
			c.releasePod(pod)
			return true
		}
		if _, seen := podsByNode[pod.Spec.NodeName]; !seen {
			nodeSeen = append(nodeSeen, pod.Spec.NodeName)
		}
		podsByNode[pod.Spec.NodeName] = append(podsByNode[pod.Spec.NodeName], pod)
		return true
	})

	var desired, current, ready int64
	c.m.views.ForEach(spec.KindNode, "", func(no spec.Object) bool {
		node := no.(*spec.Node)
		eligible := c.nodeEligible(ds, node)
		pods := podsByNode[node.Metadata.Name]
		delete(podsByNode, node.Metadata.Name)
		if !eligible {
			for _, pod := range pods {
				_ = c.m.client.Delete(spec.KindPod, ns, pod.Metadata.Name)
			}
			return true
		}
		desired++
		switch {
		case len(pods) == 0:
			c.createPod(ds, node.Metadata.Name)
		case len(pods) > 1:
			for _, pod := range podsToDelete(pods, len(pods)-1) {
				_ = c.m.client.Delete(spec.KindPod, ns, pod.Metadata.Name)
			}
			current++
		default:
			current++
			if pods[0].Status.Ready {
				ready++
			}
		}
		return true
	})
	// Pods on nodes that no longer exist, in first-seen node order.
	for _, name := range nodeSeen {
		for _, pod := range podsByNode[name] {
			_ = c.m.client.Delete(spec.KindPod, ns, pod.Metadata.Name)
		}
	}
	c.nodeSeenScratch = nodeSeen

	c.updateStatus(ds, desired, current, ready)
}

func (c *daemonSetController) nodeEligible(ds *spec.DaemonSet, node *spec.Node) bool {
	if node.Spec.Unschedulable {
		return false
	}
	for k, v := range ds.Spec.Template.Spec.NodeSelector {
		if node.Metadata.Labels[k] != v {
			return false
		}
	}
	// DaemonSet pods tolerate taints per their template tolerations; the
	// probe pod below carries them.
	probe := spec.Pod{Spec: ds.Spec.Template.Spec}
	for _, taint := range node.Spec.Taints {
		if taint.Effect == spec.TaintNoSchedule && !probe.Tolerates(taint) {
			return false
		}
	}
	return true
}

func (c *daemonSetController) createPod(ds *spec.DaemonSet, nodeName string) {
	podSpec := clonePodSpec(&ds.Spec.Template.Spec)
	podSpec.NodeName = nodeName // daemon pods bypass the scheduler
	pod := &spec.Pod{
		Metadata: spec.ObjectMeta{
			Name:      c.m.nextName(ds.Metadata.Name),
			Namespace: ds.Metadata.Namespace,
			Labels:    cloneLabels(ds.Spec.Template.Labels),
			OwnerReferences: []spec.OwnerReference{{
				Kind: string(spec.KindDaemonSet), Name: ds.Metadata.Name,
				UID: ds.Metadata.UID, Controller: true,
			}},
		},
		Spec: *podSpec,
	}
	_ = c.m.client.Create(pod)
}

func (c *daemonSetController) releasePod(pod *spec.Pod) {
	pod = spec.CloneForWriteAs(pod) // the argument may be a sealed cache reference
	var kept []spec.OwnerReference
	for _, ref := range pod.Metadata.OwnerReferences {
		if !ref.Controller {
			kept = append(kept, ref)
		}
	}
	pod.Metadata.OwnerReferences = kept
	_ = c.m.client.Update(pod)
}

func (c *daemonSetController) updateStatus(ds *spec.DaemonSet, desired, current, ready int64) {
	if ds.Status.DesiredNumber == desired && ds.Status.CurrentNumber == current && ds.Status.NumberReady == ready {
		return
	}
	ds = spec.CloneForStatusAs(ds) // the argument is a sealed cache reference
	ds.Status.DesiredNumber = desired
	ds.Status.CurrentNumber = current
	ds.Status.NumberReady = ready
	_ = c.m.client.UpdateStatus(ds)
}
