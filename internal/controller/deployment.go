package controller

import (
	"errors"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// deploymentController materializes each Deployment as a ReplicaSet per
// pod-template hash and performs rolling updates bounded by MaxSurge and
// MaxUnavailable (§II-D's MaxUnavailability strategy).
type deploymentController struct {
	m *Manager
	q *queue
	// hashes memoizes templateHash per sealed Deployment revision. Sealed
	// objects are immutable, so the object pointer is a sound cache key; a
	// new revision is a new decoded object and misses naturally. Without
	// this every sync re-serializes the pod template just to hash it.
	hashes map[*spec.Deployment]string
	// ownedScratch is the owned-ReplicaSet buffer reused across syncs (the
	// collected set never outlives the sync call).
	ownedScratch []*spec.ReplicaSet
}

func newDeploymentController(m *Manager) *deploymentController {
	c := &deploymentController{m: m, hashes: make(map[*spec.Deployment]string)}
	c.q = newQueue(m.loop, syncDelay, c.sync)
	return c
}

// maxHashCacheEntries bounds the memo table; revisions churn, so the table is
// cleared wholesale when it fills (cheaper and simpler than eviction, and the
// working set is a handful of live deployments).
const maxHashCacheEntries = 256

func (c *deploymentController) hashFor(d *spec.Deployment) string {
	if !d.Metadata.Sealed() {
		return templateHash(d.Spec.Template)
	}
	if h, ok := c.hashes[d]; ok {
		return h
	}
	if len(c.hashes) >= maxHashCacheEntries {
		clear(c.hashes)
	}
	h := templateHash(d.Spec.Template)
	c.hashes[d] = h
	return h
}

func (c *deploymentController) start() { c.q.start() }
func (c *deploymentController) stop()  { c.q.stop() }

func (c *deploymentController) enqueueFor(ev apiserver.WatchEvent) {
	switch ev.Kind {
	case spec.KindDeployment:
		c.q.add(objKey(ev.Object))
	case spec.KindReplicaSet:
		meta := ev.Object.Meta()
		if ref := meta.ControllerOf(); ref != nil && ref.Kind == string(spec.KindDeployment) {
			c.q.add(meta.Namespace + "/" + ref.Name)
		}
	}
}

func (c *deploymentController) resync() {
	c.m.views.ForEach(spec.KindDeployment, "", func(o spec.Object) bool {
		c.q.add(objKey(o))
		return true
	})
}

func (c *deploymentController) sync(key string) {
	ns, _ := splitKey(key)
	obj, ok := c.m.views.GetByKey(spec.KindDeployment, key)
	if !ok {
		return
	}
	d := obj.(*spec.Deployment)

	// Collect owned ReplicaSets from the informer view (scaling mutates a
	// private clone, see setReplicas).
	owned := c.ownedScratch[:0]
	c.m.views.ForEach(spec.KindReplicaSet, ns, func(ro spec.Object) bool {
		rs := ro.(*spec.ReplicaSet)
		if ref := rs.Metadata.ControllerOf(); ref != nil && ref.UID == d.Metadata.UID {
			owned = append(owned, rs)
		}
		return true
	})
	c.ownedScratch = owned

	hash := c.hashFor(d)
	var newRS *spec.ReplicaSet
	var oldRSs []*spec.ReplicaSet
	for _, rs := range owned {
		if rs.Metadata.Labels[spec.LabelPodHash] == hash {
			newRS = rs
		} else {
			oldRSs = append(oldRSs, rs)
		}
	}

	if newRS == nil {
		newRS = c.createReplicaSet(d, hash)
		if newRS == nil {
			c.q.addAfter(key, conflictRetryDelay)
			return
		}
	}

	c.scale(d, newRS, oldRSs)
	c.updateStatus(d, newRS, oldRSs)
}

func (c *deploymentController) createReplicaSet(d *spec.Deployment, hash string) *spec.ReplicaSet {
	tpl := spec.PodTemplate{
		Labels: cloneLabels(d.Spec.Template.Labels),
		Spec:   *clonePodSpec(&d.Spec.Template.Spec),
	}
	tpl.Labels[spec.LabelPodHash] = hash
	sel := spec.LabelSelector{MatchLabels: cloneLabels(d.Spec.Selector.MatchLabels)}
	sel.MatchLabels[spec.LabelPodHash] = hash

	rs := &spec.ReplicaSet{
		Metadata: spec.ObjectMeta{
			Name:      d.Metadata.Name + "-" + hash,
			Namespace: d.Metadata.Namespace,
			Labels:    cloneLabels(tpl.Labels),
			OwnerReferences: []spec.OwnerReference{{
				Kind: string(spec.KindDeployment), Name: d.Metadata.Name,
				UID: d.Metadata.UID, Controller: true,
			}},
		},
		Spec: spec.ReplicaSetSpec{
			Replicas: 0, // scaled up by the rolling logic
			Selector: sel,
			Template: tpl,
		},
	}
	if err := c.m.client.Create(rs); err != nil {
		if errors.Is(err, apiserver.ErrAlreadyExists) {
			if obj, getErr := c.m.client.Get(spec.KindReplicaSet, rs.Metadata.Namespace, rs.Metadata.Name); getErr == nil {
				return obj.(*spec.ReplicaSet)
			}
		}
		return nil
	}
	obj, err := c.m.client.Get(spec.KindReplicaSet, rs.Metadata.Namespace, rs.Metadata.Name)
	if err != nil {
		return nil
	}
	return obj.(*spec.ReplicaSet)
}

// scale performs one step of the rolling update. With no old ReplicaSets it
// simply tracks the desired replica count.
func (c *deploymentController) scale(d *spec.Deployment, newRS *spec.ReplicaSet, oldRSs []*spec.ReplicaSet) {
	maxSurge, maxUnavailable := d.Spec.MaxSurge, d.Spec.MaxUnavailable
	if maxSurge == 0 && maxUnavailable == 0 {
		maxSurge = 1 // both zero would deadlock the rollout
	}

	totalSpec := newRS.Spec.Replicas
	var oldReady int64
	for _, rs := range oldRSs {
		totalSpec += rs.Spec.Replicas
		oldReady += rs.Status.ReadyReplicas
	}

	// Scale the new ReplicaSet up within the surge budget.
	if newRS.Spec.Replicas < d.Spec.Replicas {
		allowed := d.Spec.Replicas + maxSurge - totalSpec
		if allowed > 0 {
			target := newRS.Spec.Replicas + allowed
			if target > d.Spec.Replicas {
				target = d.Spec.Replicas
			}
			c.setReplicas(newRS, target)
		}
	} else if newRS.Spec.Replicas > d.Spec.Replicas {
		c.setReplicas(newRS, d.Spec.Replicas)
	}

	// Scale old ReplicaSets down within the availability budget.
	minAvailable := d.Spec.Replicas - maxUnavailable
	totalReady := newRS.Status.ReadyReplicas + oldReady
	budget := totalReady - minAvailable
	for _, rs := range oldRSs {
		if budget <= 0 {
			break
		}
		if rs.Spec.Replicas == 0 {
			continue
		}
		step := rs.Spec.Replicas
		if step > budget {
			step = budget
		}
		c.setReplicas(rs, rs.Spec.Replicas-step)
		budget -= step
	}
}

func (c *deploymentController) setReplicas(rs *spec.ReplicaSet, n int64) {
	if rs.Spec.Replicas == n {
		return
	}
	rs = spec.CloneForWriteAs(rs) // the argument may be a sealed cache reference
	rs.Spec.Replicas = n
	if err := c.m.client.Update(rs); errors.Is(err, apiserver.ErrConflict) {
		// Re-read next sync; the resync loop will retry.
		c.q.addAfter(objKey(rs), conflictRetryDelay)
	}
}

func (c *deploymentController) updateStatus(d *spec.Deployment, newRS *spec.ReplicaSet, oldRSs []*spec.ReplicaSet) {
	replicas, ready := newRS.Status.Replicas, newRS.Status.ReadyReplicas
	for _, rs := range oldRSs {
		replicas += rs.Status.Replicas
		ready += rs.Status.ReadyReplicas
	}
	if d.Status.Replicas == replicas && d.Status.ReadyReplicas == ready &&
		d.Status.UpdatedReplicas == newRS.Status.Replicas {
		return
	}
	d = spec.CloneForStatusAs(d) // the argument is a sealed cache reference
	d.Status.Replicas = replicas
	d.Status.ReadyReplicas = ready
	d.Status.UpdatedReplicas = newRS.Status.Replicas
	_ = c.m.client.UpdateStatus(d)
}
