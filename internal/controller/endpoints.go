package controller

import (
	"errors"
	"sort"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// endpointsController maintains each Service's Endpoints object: the list of
// ready pod addresses behind the service VIP. Corruption of a service
// selector, a pod label, a pod IP, or a port surfaces here as missing,
// stale, or wrong endpoints — the Net failure family (service reachable
// resources exist but are incorrectly networked).
type endpointsController struct {
	m *Manager
	q *queue
	// addrScratch / portScratch back the rebuilt endpoint table, reused
	// across syncs: the desired object is serialized (or deep-copied) by the
	// client write path and never retained, so the backing arrays are free
	// again once sync returns.
	addrScratch []spec.EndpointAddress
	portScratch []int64
	// byApp / podApp index pod keys by namespace and app-label value,
	// maintained from the pod events the controller already receives and
	// rebuilt at every resync (the lost-watch-event safety net). A service
	// whose selector names an app syncs against its own bucket instead of
	// scanning every pod in the namespace, so sync cost tracks the service's
	// backend set — not the 500 daemon pods a zoned cluster parks in
	// kube-system.
	byApp      map[string]map[string]bool // "ns/app" → pod keys
	podApp     map[string]string          // pod key → its current bucket
	keyScratch []string
}

func newEndpointsController(m *Manager) *endpointsController {
	c := &endpointsController{
		m:      m,
		byApp:  make(map[string]map[string]bool),
		podApp: make(map[string]string),
	}
	c.q = newQueue(m.loop, syncDelay, c.sync)
	return c
}

func (c *endpointsController) start() { c.q.start() }
func (c *endpointsController) stop()  { c.q.stop() }

func (c *endpointsController) enqueueFor(ev apiserver.WatchEvent) {
	switch ev.Kind {
	case spec.KindService:
		c.q.add(objKey(ev.Object))
	case spec.KindPod:
		c.trackPod(ev)
		// Only services selecting this pod (or that could have) are affected.
		meta := ev.Object.Meta()
		c.m.views.ForEach(spec.KindService, meta.Namespace, func(so spec.Object) bool {
			svc := so.(*spec.Service)
			sel := spec.LabelSelector{MatchLabels: svc.Spec.Selector}
			if sel.Matches(meta.Labels) || ev.Type == apiserver.Deleted {
				c.q.add(objKey(svc))
			}
			return true
		})
	case spec.KindEndpoints:
		c.q.add(objKey(ev.Object)) // repair manual/corrupted edits
	}
}

func (c *endpointsController) resync() {
	c.rebuildPodIndex()
	c.m.views.ForEach(spec.KindService, "", func(o spec.Object) bool {
		c.q.add(objKey(o))
		return true
	})
}

// appBucket names the index bucket for a pod's namespace and app label, or
// "" when the pod carries no app label (such pods are only reachable through
// the full-scan path).
func appBucket(ns, app string) string { return ns + "/" + app }

// trackPod keeps the app index in step with one pod event.
func (c *endpointsController) trackPod(ev apiserver.WatchEvent) {
	meta := ev.Object.Meta()
	key := meta.NamespacedName()
	bucket := ""
	if ev.Type != apiserver.Deleted {
		if app, ok := meta.Labels[spec.LabelApp]; ok {
			bucket = appBucket(meta.Namespace, app)
		}
	}
	prev, had := c.podApp[key]
	if had && prev == bucket {
		return
	}
	if had {
		if set := c.byApp[prev]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(c.byApp, prev)
			}
		}
		delete(c.podApp, key)
	}
	if bucket == "" {
		return
	}
	c.podApp[key] = bucket
	set := c.byApp[bucket]
	if set == nil {
		set = make(map[string]bool)
		c.byApp[bucket] = set
	}
	set[key] = true
}

// rebuildPodIndex re-converges the app index with the views — the resync
// repair after lost watch events, and the initial build (the first resync
// runs right after the views prime). The steady state is a pure verification
// pass: every indexed pod still matches, so nothing is allocated — at 500
// nodes a from-scratch rebuild every resync was one of the two largest
// allocation sources in the whole experiment window.
func (c *endpointsController) rebuildPodIndex() {
	indexed := 0
	consistent := true
	c.m.views.ForEach(spec.KindPod, "", func(po spec.Object) bool {
		meta := po.Meta()
		app, ok := meta.Labels[spec.LabelApp]
		if !ok {
			return true
		}
		indexed++
		if !bucketMatches(c.podApp[meta.NamespacedName()], meta.Namespace, app) {
			consistent = false
			return false
		}
		return true
	})
	if consistent && indexed == len(c.podApp) {
		return
	}
	c.byApp = make(map[string]map[string]bool)
	c.podApp = make(map[string]string)
	c.m.views.ForEach(spec.KindPod, "", func(po spec.Object) bool {
		meta := po.Meta()
		app, ok := meta.Labels[spec.LabelApp]
		if !ok {
			return true
		}
		key := meta.NamespacedName()
		bucket := appBucket(meta.Namespace, app)
		c.podApp[key] = bucket
		set := c.byApp[bucket]
		if set == nil {
			set = make(map[string]bool)
			c.byApp[bucket] = set
		}
		set[key] = true
		return true
	})
}

// bucketMatches reports whether bucket equals appBucket(ns, app) without
// building the concatenated string.
func bucketMatches(bucket, ns, app string) bool {
	return len(bucket) == len(ns)+1+len(app) &&
		bucket[:len(ns)] == ns && bucket[len(ns)] == '/' && bucket[len(ns)+1:] == app
}

func (c *endpointsController) sync(key string) {
	ns, name := splitKey(key)
	obj, ok := c.m.views.GetByKey(spec.KindService, key)
	if !ok {
		// Service gone: its Endpoints are garbage-collected via owner refs.
		return
	}
	svc := obj.(*spec.Service)

	sel := spec.LabelSelector{MatchLabels: svc.Spec.Selector}
	addrs := c.addrScratch[:0]
	switch app, hasApp := svc.Spec.Selector[spec.LabelApp]; {
	case sel.Empty():
		// Selector-less service: endpoints are managed manually.
	case hasApp:
		// The selector names an app: sync against that bucket of the pod
		// index. Keys are sorted so the address order matches the full scan's
		// key-ordered iteration exactly — the two paths are interchangeable.
		keys := c.keyScratch[:0]
		for k := range c.byApp[appBucket(ns, app)] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		c.keyScratch = keys
		for _, pk := range keys {
			if obj, ok := c.m.views.GetByKey(spec.KindPod, pk); ok {
				addrs = c.appendAddr(addrs, sel, obj.(*spec.Pod))
			}
		}
	default:
		// Informer-view scan: the endpoint table is rebuilt from scratch;
		// pods are never mutated here.
		c.m.views.ForEach(spec.KindPod, ns, func(po spec.Object) bool {
			addrs = c.appendAddr(addrs, sel, po.(*spec.Pod))
			return true
		})
	}
	c.addrScratch = addrs
	ports := c.portScratch[:0]
	for _, p := range svc.Spec.Ports {
		ports = append(ports, p.TargetPort)
	}
	c.portScratch = ports

	// Compare against the current table before building anything: most pod
	// events leave the endpoints unchanged, and the no-op path must not
	// allocate a throwaway desired object per sync.
	curObj, curOK := c.m.views.GetByKey(spec.KindEndpoints, key)
	if curOK && endpointsUpToDate(curObj.(*spec.Endpoints), addrs, ports) {
		return
	}

	desired := &spec.Endpoints{
		Metadata: spec.ObjectMeta{
			Name: name, Namespace: ns,
			Labels: cloneLabels(svc.Metadata.Labels),
			OwnerReferences: []spec.OwnerReference{{
				Kind: string(spec.KindService), Name: name,
				UID: svc.Metadata.UID, Controller: true,
			}},
		},
	}
	if len(addrs) > 0 {
		desired.Subsets = []spec.EndpointSubset{{Addresses: addrs, Ports: ports}}
	}

	if !curOK {
		// A stale view at worst turns this into a failed Create
		// (ErrAlreadyExists), repaired on the next event or resync.
		_ = c.m.client.Create(desired)
		return
	}
	cur := curObj.(*spec.Endpoints)
	desired.Metadata.ResourceVersion = cur.Metadata.ResourceVersion
	desired.Metadata.UID = cur.Metadata.UID
	if err := c.m.client.Update(desired); errors.Is(err, apiserver.ErrConflict) {
		c.q.addAfter(key, conflictRetryDelay)
	}
}

// appendAddr appends the pod's endpoint address iff it is a ready, addressed
// backend matching the selector — the shared predicate of the indexed and
// full-scan sync paths.
func (c *endpointsController) appendAddr(addrs []spec.EndpointAddress, sel spec.LabelSelector, pod *spec.Pod) []spec.EndpointAddress {
	if !pod.Active() || !pod.Status.Ready || pod.Status.PodIP == "" {
		return addrs
	}
	if !sel.Matches(pod.Metadata.Labels) {
		return addrs
	}
	return append(addrs, spec.EndpointAddress{
		IP:       pod.Status.PodIP,
		NodeName: pod.Spec.NodeName,
		TargetRef: spec.TargetRef{
			Kind: string(spec.KindPod), Name: pod.Metadata.Name, UID: pod.Metadata.UID,
		},
	})
}

// endpointsUpToDate reports whether cur already holds exactly the one-subset
// table (addrs, ports) — or the empty table when addrs is empty — without
// materializing the desired object.
func endpointsUpToDate(cur *spec.Endpoints, addrs []spec.EndpointAddress, ports []int64) bool {
	if len(addrs) == 0 {
		return len(cur.Subsets) == 0
	}
	if len(cur.Subsets) != 1 {
		return false
	}
	s := cur.Subsets[0]
	if len(s.Addresses) != len(addrs) || len(s.Ports) != len(ports) {
		return false
	}
	for i := range addrs {
		if s.Addresses[i] != addrs[i] {
			return false
		}
	}
	for i := range ports {
		if s.Ports[i] != ports[i] {
			return false
		}
	}
	return true
}
