package controller

import (
	"errors"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// endpointsController maintains each Service's Endpoints object: the list of
// ready pod addresses behind the service VIP. Corruption of a service
// selector, a pod label, a pod IP, or a port surfaces here as missing,
// stale, or wrong endpoints — the Net failure family (service reachable
// resources exist but are incorrectly networked).
type endpointsController struct {
	m *Manager
	q *queue
	// addrScratch / portScratch back the rebuilt endpoint table, reused
	// across syncs: the desired object is serialized (or deep-copied) by the
	// client write path and never retained, so the backing arrays are free
	// again once sync returns.
	addrScratch []spec.EndpointAddress
	portScratch []int64
}

func newEndpointsController(m *Manager) *endpointsController {
	c := &endpointsController{m: m}
	c.q = newQueue(m.loop, syncDelay, c.sync)
	return c
}

func (c *endpointsController) start() { c.q.start() }
func (c *endpointsController) stop()  { c.q.stop() }

func (c *endpointsController) enqueueFor(ev apiserver.WatchEvent) {
	switch ev.Kind {
	case spec.KindService:
		c.q.add(objKey(ev.Object))
	case spec.KindPod:
		// Only services selecting this pod (or that could have) are affected.
		meta := ev.Object.Meta()
		c.m.views.ForEach(spec.KindService, meta.Namespace, func(so spec.Object) bool {
			svc := so.(*spec.Service)
			sel := spec.LabelSelector{MatchLabels: svc.Spec.Selector}
			if sel.Matches(meta.Labels) || ev.Type == apiserver.Deleted {
				c.q.add(objKey(svc))
			}
			return true
		})
	case spec.KindEndpoints:
		c.q.add(objKey(ev.Object)) // repair manual/corrupted edits
	}
}

func (c *endpointsController) resync() {
	c.m.views.ForEach(spec.KindService, "", func(o spec.Object) bool {
		c.q.add(objKey(o))
		return true
	})
}

func (c *endpointsController) sync(key string) {
	ns, name := splitKey(key)
	obj, ok := c.m.views.GetByKey(spec.KindService, key)
	if !ok {
		// Service gone: its Endpoints are garbage-collected via owner refs.
		return
	}
	svc := obj.(*spec.Service)

	sel := spec.LabelSelector{MatchLabels: svc.Spec.Selector}
	addrs := c.addrScratch[:0]
	if !sel.Empty() {
		// Informer-view scan: the endpoint table is rebuilt from scratch;
		// pods are never mutated here.
		c.m.views.ForEach(spec.KindPod, ns, func(po spec.Object) bool {
			pod := po.(*spec.Pod)
			if !pod.Active() || !pod.Status.Ready || pod.Status.PodIP == "" {
				return true
			}
			if !sel.Matches(pod.Metadata.Labels) {
				return true
			}
			addrs = append(addrs, spec.EndpointAddress{
				IP:       pod.Status.PodIP,
				NodeName: pod.Spec.NodeName,
				TargetRef: spec.TargetRef{
					Kind: string(spec.KindPod), Name: pod.Metadata.Name, UID: pod.Metadata.UID,
				},
			})
			return true
		})
	}
	c.addrScratch = addrs
	ports := c.portScratch[:0]
	for _, p := range svc.Spec.Ports {
		ports = append(ports, p.TargetPort)
	}
	c.portScratch = ports

	// Compare against the current table before building anything: most pod
	// events leave the endpoints unchanged, and the no-op path must not
	// allocate a throwaway desired object per sync.
	curObj, curOK := c.m.views.GetByKey(spec.KindEndpoints, key)
	if curOK && endpointsUpToDate(curObj.(*spec.Endpoints), addrs, ports) {
		return
	}

	desired := &spec.Endpoints{
		Metadata: spec.ObjectMeta{
			Name: name, Namespace: ns,
			Labels: cloneLabels(svc.Metadata.Labels),
			OwnerReferences: []spec.OwnerReference{{
				Kind: string(spec.KindService), Name: name,
				UID: svc.Metadata.UID, Controller: true,
			}},
		},
	}
	if len(addrs) > 0 {
		desired.Subsets = []spec.EndpointSubset{{Addresses: addrs, Ports: ports}}
	}

	if !curOK {
		// A stale view at worst turns this into a failed Create
		// (ErrAlreadyExists), repaired on the next event or resync.
		_ = c.m.client.Create(desired)
		return
	}
	cur := curObj.(*spec.Endpoints)
	desired.Metadata.ResourceVersion = cur.Metadata.ResourceVersion
	desired.Metadata.UID = cur.Metadata.UID
	if err := c.m.client.Update(desired); errors.Is(err, apiserver.ErrConflict) {
		c.q.addAfter(key, conflictRetryDelay)
	}
}

// endpointsUpToDate reports whether cur already holds exactly the one-subset
// table (addrs, ports) — or the empty table when addrs is empty — without
// materializing the desired object.
func endpointsUpToDate(cur *spec.Endpoints, addrs []spec.EndpointAddress, ports []int64) bool {
	if len(addrs) == 0 {
		return len(cur.Subsets) == 0
	}
	if len(cur.Subsets) != 1 {
		return false
	}
	s := cur.Subsets[0]
	if len(s.Addresses) != len(addrs) || len(s.Ports) != len(ports) {
		return false
	}
	for i := range addrs {
		if s.Addresses[i] != addrs[i] {
			return false
		}
	}
	for i := range ports {
		if s.Ports[i] != ports[i] {
			return false
		}
	}
	return true
}
