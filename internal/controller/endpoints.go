package controller

import (
	"errors"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// endpointsController maintains each Service's Endpoints object: the list of
// ready pod addresses behind the service VIP. Corruption of a service
// selector, a pod label, a pod IP, or a port surfaces here as missing,
// stale, or wrong endpoints — the Net failure family (service reachable
// resources exist but are incorrectly networked).
type endpointsController struct {
	m *Manager
	q *queue
}

func newEndpointsController(m *Manager) *endpointsController {
	c := &endpointsController{m: m}
	c.q = newQueue(m.loop, syncDelay, c.sync)
	return c
}

func (c *endpointsController) start() { c.q.start() }
func (c *endpointsController) stop()  { c.q.stop() }

func (c *endpointsController) enqueueFor(ev apiserver.WatchEvent) {
	switch ev.Kind {
	case spec.KindService:
		c.q.add(objKey(ev.Object))
	case spec.KindPod:
		// Only services selecting this pod (or that could have) are affected.
		meta := ev.Object.Meta()
		for _, so := range c.m.client.List(spec.KindService, meta.Namespace) {
			svc := so.(*spec.Service)
			sel := spec.LabelSelector{MatchLabels: svc.Spec.Selector}
			if sel.Matches(meta.Labels) || ev.Type == apiserver.Deleted {
				c.q.add(objKey(svc))
			}
		}
	case spec.KindEndpoints:
		c.q.add(objKey(ev.Object)) // repair manual/corrupted edits
	}
}

func (c *endpointsController) resync() {
	for _, svc := range c.m.client.List(spec.KindService, "") {
		c.q.add(objKey(svc))
	}
}

func (c *endpointsController) sync(key string) {
	ns, name := splitKey(key)
	obj, err := c.m.client.Get(spec.KindService, ns, name)
	if errors.Is(err, apiserver.ErrNotFound) {
		// Service gone: its Endpoints are garbage-collected via owner refs.
		return
	}
	if err != nil {
		c.q.addAfter(key, conflictRetryDelay)
		return
	}
	svc := obj.(*spec.Service)

	sel := spec.LabelSelector{MatchLabels: svc.Spec.Selector}
	var addrs []spec.EndpointAddress
	if !sel.Empty() {
		// View read: the endpoint table is rebuilt from scratch; pods are
		// never mutated here.
		for _, po := range c.m.client.List(spec.KindPod, ns) {
			pod := po.(*spec.Pod)
			if !pod.Active() || !pod.Status.Ready || pod.Status.PodIP == "" {
				continue
			}
			if !sel.Matches(pod.Metadata.Labels) {
				continue
			}
			addrs = append(addrs, spec.EndpointAddress{
				IP:       pod.Status.PodIP,
				NodeName: pod.Spec.NodeName,
				TargetRef: spec.TargetRef{
					Kind: string(spec.KindPod), Name: pod.Metadata.Name, UID: pod.Metadata.UID,
				},
			})
		}
	}
	var ports []int64
	for _, p := range svc.Spec.Ports {
		ports = append(ports, p.TargetPort)
	}

	desired := &spec.Endpoints{
		Metadata: spec.ObjectMeta{
			Name: name, Namespace: ns,
			Labels: cloneLabels(svc.Metadata.Labels),
			OwnerReferences: []spec.OwnerReference{{
				Kind: string(spec.KindService), Name: name,
				UID: svc.Metadata.UID, Controller: true,
			}},
		},
	}
	if len(addrs) > 0 {
		desired.Subsets = []spec.EndpointSubset{{Addresses: addrs, Ports: ports}}
	}

	curObj, err := c.m.client.Get(spec.KindEndpoints, ns, name)
	if errors.Is(err, apiserver.ErrNotFound) {
		_ = c.m.client.Create(desired)
		return
	}
	if err != nil {
		c.q.addAfter(key, conflictRetryDelay)
		return
	}
	cur := curObj.(*spec.Endpoints)
	if endpointsEqual(cur, desired) {
		return
	}
	desired.Metadata.ResourceVersion = cur.Metadata.ResourceVersion
	desired.Metadata.UID = cur.Metadata.UID
	if err := c.m.client.Update(desired); errors.Is(err, apiserver.ErrConflict) {
		c.q.addAfter(key, conflictRetryDelay)
	}
}

func endpointsEqual(a, b *spec.Endpoints) bool {
	if len(a.Subsets) != len(b.Subsets) {
		return false
	}
	for i := range a.Subsets {
		as, bs := a.Subsets[i], b.Subsets[i]
		if len(as.Addresses) != len(bs.Addresses) || len(as.Ports) != len(bs.Ports) {
			return false
		}
		for j := range as.Addresses {
			if as.Addresses[j] != bs.Addresses[j] {
				return false
			}
		}
		for j := range as.Ports {
			if as.Ports[j] != bs.Ports[j] {
				return false
			}
		}
	}
	return true
}
