package controller

import (
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// garbageCollector deletes dependents whose controller owner no longer
// exists — matching by kind, name AND UID, so a corrupted ownerReference UID
// makes a perfectly healthy object look orphaned and get deleted (one of the
// dependency-field failure modes behind finding F2). It also hosts pod
// garbage collection: pods bound to nodes that do not exist are removed
// after a minimum age, which is what cleans up a pod whose nodeName was
// corrupted to a non-existent node (the paper's ~50 s timing-failure
// example).
type garbageCollector struct {
	m      *Manager
	ticker sim.Timer
	// firstMissing records when a pod's node was first seen missing.
	firstMissing map[string]time.Duration
}

func newGarbageCollector(m *Manager) *garbageCollector {
	return &garbageCollector{m: m, firstMissing: make(map[string]time.Duration)}
}

func (c *garbageCollector) start() {
	c.firstMissing = make(map[string]time.Duration)
	c.ticker = c.m.loop.Every(gcInterval, c.collect)
}

func (c *garbageCollector) stop() {
	c.ticker.Stop()
}

func (c *garbageCollector) enqueueFor(apiserver.WatchEvent) {}

func (c *garbageCollector) resync() {}

// ownedKinds are the kinds subject to owner-reference collection.
var ownedKinds = []spec.Kind{spec.KindPod, spec.KindReplicaSet, spec.KindEndpoints}

func (c *garbageCollector) collect() {
	if !c.m.running || c.m.opts.DisableGC {
		return
	}
	c.collectOrphans()
	c.collectPodsOnMissingNodes()
}

func (c *garbageCollector) collectOrphans() {
	for _, kind := range ownedKinds {
		// Informer-view scans: collection only inspects owner refs and
		// deletes by name.
		c.m.views.ForEach(kind, "", func(obj spec.Object) bool {
			meta := obj.Meta()
			ref := meta.ControllerOf()
			if ref == nil {
				return true
			}
			if c.ownerAlive(meta.Namespace, ref) {
				return true
			}
			_ = c.m.client.Delete(kind, meta.Namespace, meta.Name)
			return true
		})
	}
}

func (c *garbageCollector) ownerAlive(namespace string, ref *spec.OwnerReference) bool {
	kind := spec.Kind(ref.Kind)
	if spec.New(kind) == nil {
		return false // unknown owner kind: treat as missing
	}
	ns := namespace
	if kind == spec.KindNode || kind == spec.KindNamespace {
		ns = ""
	}
	var obj spec.Object
	if c.m.views.Tracks(kind) {
		var ok bool
		obj, ok = c.m.views.Get(kind, ns, ref.Name)
		if !ok {
			return false
		}
	} else {
		// Owner kinds outside the informer set (e.g. a corrupted ref naming
		// a Namespace) resolve against the server.
		var err error
		obj, err = c.m.client.Get(kind, ns, ref.Name)
		if err != nil {
			return false
		}
	}
	// UID must match: a same-named successor object does not resurrect
	// ownership (and a corrupted ref UID orphans the dependent).
	return obj.Meta().UID == ref.UID
}

func (c *garbageCollector) collectPodsOnMissingNodes() {
	now := c.m.loop.Now()
	nodeNames := make(map[string]bool)
	c.m.views.ForEach(spec.KindNode, "", func(no spec.Object) bool {
		nodeNames[no.Meta().Name] = true
		return true
	})
	c.m.views.ForEach(spec.KindPod, "", func(po spec.Object) bool {
		pod := po.(*spec.Pod)
		key := pod.Metadata.NamespacedName()
		if pod.Spec.NodeName == "" || nodeNames[pod.Spec.NodeName] {
			delete(c.firstMissing, key)
			return true
		}
		first, seen := c.firstMissing[key]
		if !seen {
			c.firstMissing[key] = now
			return true
		}
		if now-first >= podGCMinAge {
			_ = c.m.client.Delete(spec.KindPod, pod.Metadata.Namespace, pod.Metadata.Name)
			delete(c.firstMissing, key)
		}
		return true
	})
}
