// Package controller implements the kube-controller-manager: the set of
// level-triggered reconciliation loops that continuously drive the observed
// cluster state toward the desired state stored in the data store (§II-C).
//
// Every controller follows the same contract: observe (watch + periodic
// resync), diff desired against observed, and act through the API server.
// None of them keep authoritative state — restarting them is always safe,
// which is the resiliency property the paper's injections probe. The flip
// side, measured by finding F2, is that the relationships between objects
// live entirely in data (labels, selectors, owner references), so one
// corrupted value can send these loops spinning: spawning pods forever,
// deleting healthy objects, or stalling reconciliation.
package controller

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/election"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Tunables, scaled for simulated time. The ratios mirror kubeadm defaults
// (heartbeats every 10 s, 40 s node grace period, 5 s eviction wait — the
// failover workload's NoExecute flow).
const (
	syncDelay          = 50 * time.Millisecond
	resyncInterval     = 5 * time.Second
	burstReplicas      = 4
	nodeMonitorPeriod  = 5 * time.Second
	nodeGracePeriod    = 40 * time.Second
	evictionWait       = 5 * time.Second
	gcInterval         = 10 * time.Second
	podGCMinAge        = 30 * time.Second
	taintUnreachable   = "node.kubernetes.io/unreachable"
	managerIdentity    = "kcm"
	conflictRetryDelay = 200 * time.Millisecond
)

// Options configure the manager.
type Options struct {
	// Identity distinguishes replicas in a redundant control plane.
	Identity string
	// DisableLeaderElection runs the controllers unconditionally.
	DisableLeaderElection bool
	// DisableGC turns off the garbage collector (ablation).
	DisableGC bool
	// DisableFullDisruptionMode turns off the §II-D safeguard that stops
	// evictions when every node looks unhealthy (ablation).
	DisableFullDisruptionMode bool
}

// Manager wires all controllers behind one leader election.
//
// All controllers share one informer view set (an apiserver.Reflector over
// the kinds they reconcile): watch events update the views first and are
// then routed to the controllers' work queues, so a sync handler reads the
// same local state the event announced — the informer architecture — and
// the per-sync server re-lists of earlier revisions are gone. The periodic
// resync both reconciles the views against the server (the safety net for
// lost watch events) and re-enqueues everything level-triggered.
type Manager struct {
	loop    *sim.Loop
	client  *apiserver.Client
	opts    Options
	elector *election.Elector

	deployments *deploymentController
	replicaSets *replicaSetController
	daemonSets  *daemonSetController
	endpoints   *endpointsController
	nodes       *nodeLifecycleController
	gc          *garbageCollector

	// views is the shared informer view set, live while the controllers run.
	views *apiserver.Reflector

	nameSeq int64
	running bool
	cancels []func()
}

// viewKinds are the kinds the manager's informer views mirror — everything
// any controller reconciles or scans.
var viewKinds = []spec.Kind{
	spec.KindPod, spec.KindReplicaSet, spec.KindDeployment, spec.KindDaemonSet,
	spec.KindService, spec.KindEndpoints, spec.KindNode,
}

// NewManager builds a controller manager against the given API server (or,
// in an HA control plane, against a failover-aware endpoint set).
func NewManager(loop *sim.Loop, srv apiserver.ClientSource, opts Options) *Manager {
	if opts.Identity == "" {
		opts.Identity = managerIdentity + "-0"
	}
	m := &Manager{
		loop:   loop,
		client: srv.ClientFor(managerIdentity),
		opts:   opts,
	}
	m.deployments = newDeploymentController(m)
	m.replicaSets = newReplicaSetController(m)
	m.daemonSets = newDaemonSetController(m)
	m.endpoints = newEndpointsController(m)
	m.nodes = newNodeLifecycleController(m)
	m.gc = newGarbageCollector(m)
	if !opts.DisableLeaderElection {
		m.elector = election.New(loop, srv.ClientFor(opts.Identity), election.Config{
			LeaseName:        "kube-controller-manager",
			Identity:         opts.Identity,
			OnStartedLeading: m.startControllers,
			OnStoppedLeading: m.stopControllers,
		})
	}
	return m
}

// Start begins campaigning (or starts controllers directly when leader
// election is disabled).
func (m *Manager) Start() {
	if m.elector != nil {
		m.elector.Start()
		return
	}
	m.startControllers()
}

// Stop halts everything.
func (m *Manager) Stop() {
	if m.elector != nil {
		m.elector.Stop()
	}
	m.stopControllers()
}

// IsLeading reports whether the controllers are active.
func (m *Manager) IsLeading() bool { return m.running }

func (m *Manager) startControllers() {
	if m.running {
		return
	}
	m.running = true
	for _, c := range m.controllers() {
		c.start()
	}
	// The shared views prime from the server's current state (a fork or
	// restart re-list) and route every subsequent event to the controllers.
	// The reflector's own periodic resync is disabled: resyncAll reconciles
	// explicitly so view repair and the level-triggered re-enqueue happen on
	// one schedule.
	m.views = apiserver.NewReflector(m.loop, m.client, 0, m.route, viewKinds...)
	m.views.Start()
	m.cancels = append(m.cancels, m.views.Stop)
	resync := m.loop.Every(resyncInterval, m.resyncAll)
	m.cancels = append(m.cancels, func() { resync.Stop() })
	m.resyncAll()
}

func (m *Manager) stopControllers() {
	if !m.running {
		return
	}
	m.running = false
	for _, cancel := range m.cancels {
		cancel()
	}
	m.cancels = nil
	for _, c := range m.controllers() {
		c.stop()
	}
}

type subController interface {
	start()
	stop()
	// enqueueFor reacts to a watch event.
	enqueueFor(ev apiserver.WatchEvent)
	// resync enqueues everything the controller owns.
	resync()
}

func (m *Manager) controllers() []subController {
	return []subController{m.deployments, m.replicaSets, m.daemonSets, m.endpoints, m.nodes, m.gc}
}

func (m *Manager) route(ev apiserver.WatchEvent) {
	if !m.running {
		return
	}
	for _, c := range m.controllers() {
		c.enqueueFor(ev)
	}
}

func (m *Manager) resyncAll() {
	if !m.running {
		return
	}
	// Reconcile the views first: entries a lost watch event left stale are
	// repaired and re-announced through route, so the queues below always
	// enqueue against repaired state.
	m.views.Resync()
	for _, c := range m.controllers() {
		c.resync()
	}
}

// nextName derives a deterministic unique child name, standing in for the
// random suffixes of real Kubernetes.
func (m *Manager) nextName(base string) string {
	m.nameSeq++
	return fmt.Sprintf("%s-%05d", base, m.nameSeq)
}

// NameSeq exposes the child-name counter for cluster snapshots.
func (m *Manager) NameSeq() int64 { return m.nameSeq }

// ResumeNameSeq restores the child-name counter in a forked cluster. The
// controllers themselves hold no authoritative state (their caches rebuild
// from watches and resyncs), but a fork whose counter restarted at zero
// would mint child names that collide with bootstrap-era objects.
func (m *Manager) ResumeNameSeq(seq int64) { m.nameSeq = seq }

// templateHash mirrors the pod-template-hash mechanism: deployments stamp
// their ReplicaSets and pods with a hash of the pod template, so template
// corruption surfaces as a new hash — triggering a rolling update.
func templateHash(tpl spec.PodTemplate) string {
	b, err := codec.Marshal(&tpl)
	if err != nil {
		b = []byte(fmt.Sprint(tpl))
	}
	h := fnv.New32a()
	_, _ = h.Write(b)
	return fmt.Sprintf("%08x", h.Sum32())
}

func splitKey(key string) (namespace, name string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return key[:i], key[i+1:]
		}
	}
	return "", key
}

func objKey(o spec.Object) string {
	return o.Meta().NamespacedName() // cached on sealed objects
}
