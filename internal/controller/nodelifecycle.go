package controller

import (
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// nodeLifecycleController watches node heartbeats, marks silent nodes
// NotReady, taints them NoExecute, and evicts their pods after a grace
// period — the machinery behind the failover workload and behind the
// paper's Figure 2 outage (heartbeats failing cluster-wide triggering mass
// eviction). Full disruption mode (§II-D) suspends evictions when every
// node looks unhealthy, since the fault is then likelier in the heartbeat
// path than on every node at once.
type nodeLifecycleController struct {
	m      *Manager
	ticker sim.Timer
	// taintedSince records when a NoExecute taint was first observed per
	// node, to honor the eviction wait.
	taintedSince map[string]time.Duration
	// monitorPending coalesces event-driven monitor passes: a burst of node
	// events in one tick (five heartbeats landing together) schedules one
	// monitor, not five. monitorFn is the prebuilt callback so scheduling
	// allocates no closure.
	monitorPending bool
	monitorFn      func()
	// scratch is the reused node slice the monitor pass collects into.
	scratch []*spec.Node
	// nodeGen remembers each node's last-seen Generation, to tell heartbeats
	// (status-only, generation unchanged) from spec changes. Freshness only
	// matters at monitor-poll granularity, so heartbeats ride the periodic
	// ticker; without the distinction a 500-node cluster's heartbeat stream
	// would drive a full monitor pass almost every tick.
	nodeGen map[string]int64
}

func newNodeLifecycleController(m *Manager) *nodeLifecycleController {
	c := &nodeLifecycleController{m: m, taintedSince: make(map[string]time.Duration)}
	c.monitorFn = func() {
		c.monitorPending = false
		c.monitor()
	}
	return c
}

func (c *nodeLifecycleController) start() {
	c.taintedSince = make(map[string]time.Duration)
	c.ticker = c.m.loop.Every(nodeMonitorPeriod, c.monitor)
}

func (c *nodeLifecycleController) stop() {
	c.ticker.Stop()
}

func (c *nodeLifecycleController) enqueueFor(ev apiserver.WatchEvent) {
	// Node state is polled on a fixed monitor period, like the real
	// controller; node add/remove and spec changes (taints, cordons) react
	// immediately though.
	if ev.Kind != spec.KindNode {
		return
	}
	meta := ev.Object.Meta()
	if ev.Type == apiserver.Deleted {
		delete(c.nodeGen, meta.Name)
	} else {
		gen, known := c.nodeGen[meta.Name]
		if c.nodeGen == nil {
			c.nodeGen = make(map[string]int64)
		}
		c.nodeGen[meta.Name] = meta.Generation
		if ev.Type == apiserver.Modified && (!known || gen == meta.Generation) {
			// A heartbeat (or its first sighting after a restart): freshness
			// is re-read by the next periodic monitor anyway.
			return
		}
	}
	if !c.monitorPending {
		c.monitorPending = true
		c.m.loop.After(0, c.monitorFn)
	}
}

func (c *nodeLifecycleController) resync() {}

func (c *nodeLifecycleController) monitor() {
	if !c.m.running {
		return
	}
	now := c.m.loop.Time().UnixMilli()
	nodes := c.scratch[:0]
	c.m.views.ForEach(spec.KindNode, "", func(o spec.Object) bool {
		nodes = append(nodes, o.(*spec.Node))
		return true
	})
	c.scratch = nodes

	unhealthy := 0
	total := 0
	for _, node := range nodes {
		total++
		fresh := now-node.Status.LastHeartbeatMillis <= nodeGracePeriod.Milliseconds()
		switch {
		case !fresh && node.Status.Ready:
			marked := spec.CloneForStatusAs(node) // node is a sealed cache reference
			marked.Status.Ready = false
			if c.m.client.UpdateStatus(marked) == nil {
				c.addUnreachableTaint(node.Metadata.Name)
			}
			unhealthy++
		case !fresh:
			c.addUnreachableTaint(node.Metadata.Name)
			unhealthy++
		case fresh && !node.Status.Ready:
			// The kubelet's own heartbeat sets Ready=true; once it does,
			// clear our taint.
			unhealthy++
		default:
			c.removeUnreachableTaint(node)
		}
	}

	// Full disruption mode: every node unhealthy → the monitoring path
	// itself is suspect; stop evicting.
	if !c.m.opts.DisableFullDisruptionMode && total > 0 && unhealthy == total {
		return
	}
	c.evict(nodes)
}

func (c *nodeLifecycleController) addUnreachableTaint(nodeName string) {
	obj, ok := c.m.views.Get(spec.KindNode, "", nodeName)
	if !ok {
		return
	}
	node := obj.(*spec.Node)
	for _, t := range node.Spec.Taints {
		if t.Key == taintUnreachable {
			return
		}
	}
	node = spec.CloneForWriteAs(node) // sealed cache reference
	node.Spec.Taints = append(node.Spec.Taints, spec.Taint{
		Key: taintUnreachable, Effect: spec.TaintNoExecute,
	})
	_ = c.m.client.Update(node)
}

func (c *nodeLifecycleController) removeUnreachableTaint(node *spec.Node) {
	var kept []spec.Taint
	removed := false
	for _, t := range node.Spec.Taints {
		if t.Key == taintUnreachable {
			removed = true
			continue
		}
		kept = append(kept, t)
	}
	if !removed {
		return
	}
	node = spec.CloneForWriteAs(node) // sealed cache reference
	node.Spec.Taints = kept
	_ = c.m.client.Update(node)
}

// evict deletes pods from nodes carrying NoExecute taints the pod does not
// tolerate, after the eviction wait has elapsed.
func (c *nodeLifecycleController) evict(nodes []*spec.Node) {
	now := c.m.loop.Now()
	tainted := make(map[string][]spec.Taint)
	for _, node := range nodes {
		var noExec []spec.Taint
		for _, t := range node.Spec.Taints {
			if t.Effect == spec.TaintNoExecute {
				noExec = append(noExec, t)
			}
		}
		if len(noExec) > 0 {
			tainted[node.Metadata.Name] = noExec
			if _, seen := c.taintedSince[node.Metadata.Name]; !seen {
				c.taintedSince[node.Metadata.Name] = now
			}
		} else {
			delete(c.taintedSince, node.Metadata.Name)
		}
	}
	if len(tainted) == 0 {
		return
	}
	c.m.views.ForEach(spec.KindPod, "", func(po spec.Object) bool {
		pod := po.(*spec.Pod)
		taints, onTainted := tainted[pod.Spec.NodeName]
		if !onTainted || !pod.Active() {
			return true
		}
		if now-c.taintedSince[pod.Spec.NodeName] < evictionWait {
			return true
		}
		for _, t := range taints {
			if !pod.Tolerates(t) {
				_ = c.m.client.Delete(spec.KindPod, pod.Metadata.Namespace, pod.Metadata.Name)
				return true
			}
		}
		return true
	})
}
