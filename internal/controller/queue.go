package controller

import (
	"sort"
	"time"

	"github.com/mutiny-sim/mutiny/internal/sim"
)

// queue is a deduplicating dirty-key work queue: keys added while a drain is
// pending are coalesced, mirroring the rate-limited work queues of the real
// controller manager.
type queue struct {
	loop    *sim.Loop
	delay   time.Duration
	handler func(key string)

	dirty     map[string]bool
	scheduled bool
	stopped   bool
	// scratch is the reusable key buffer drains sort into; a drain fires every
	// syncDelay under load, and reallocating the map and slice each time was
	// measurable at campaign scale.
	scratch []string
}

func newQueue(loop *sim.Loop, delay time.Duration, handler func(key string)) *queue {
	return &queue{loop: loop, delay: delay, handler: handler, dirty: make(map[string]bool)}
}

// add marks a key dirty and schedules a drain.
func (q *queue) add(key string) {
	if q.stopped {
		return
	}
	q.dirty[key] = true
	if !q.scheduled {
		q.scheduled = true
		q.loop.After(q.delay, q.drain)
	}
}

// addAfter marks a key dirty after an extra delay (retry backoff).
func (q *queue) addAfter(key string, d time.Duration) {
	q.loop.After(d, func() { q.add(key) })
}

func (q *queue) drain() {
	q.scheduled = false
	if q.stopped || len(q.dirty) == 0 {
		return
	}
	keys := q.scratch[:0]
	for k := range q.dirty {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	clear(q.dirty)
	q.scratch = keys
	// Handlers may re-add keys (retries, follow-up syncs); those land in the
	// cleared dirty map and schedule their own drain, never in this pass.
	for _, k := range keys {
		if q.stopped {
			return
		}
		q.handler(k)
	}
}

// stop drops pending work and refuses new keys.
func (q *queue) stop() {
	q.stopped = true
	clear(q.dirty)
}

// start re-enables a stopped queue.
func (q *queue) start() { q.stopped = false }
