package controller

import (
	"errors"
	"sort"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// replicaSetController keeps the number of pods matching each ReplicaSet's
// selector equal to the desired replica count.
//
// Ownership is tracked through two redundant mechanisms that must agree:
// the pod's labels must match the ReplicaSet's selector, and the pod must
// carry a controller owner reference with the ReplicaSet's UID. When
// corruption makes them disagree the controller does what the real one does:
// it releases pods whose labels no longer match (orphaning them — the pod
// keeps running, unaccounted for) and creates replacements. If the
// *template*'s labels are corrupted so that new pods never match the
// selector, every sync creates more pods: the paper's uncontrolled
// replication (§V-C1), bounded only by node and store capacity.
type replicaSetController struct {
	m *Manager
	q *queue
	// ownedScratch is the owned-pod buffer reused across syncs (the
	// collected set never outlives the sync call).
	ownedScratch []*spec.Pod
}

func newReplicaSetController(m *Manager) *replicaSetController {
	c := &replicaSetController{m: m}
	c.q = newQueue(m.loop, syncDelay, c.sync)
	return c
}

func (c *replicaSetController) start() { c.q.start() }
func (c *replicaSetController) stop()  { c.q.stop() }

func (c *replicaSetController) enqueueFor(ev apiserver.WatchEvent) {
	switch ev.Kind {
	case spec.KindReplicaSet:
		c.q.add(objKey(ev.Object))
	case spec.KindPod:
		// Route to the owning ReplicaSet if any; otherwise re-sync all
		// ReplicaSets in the namespace so adoption can happen.
		meta := ev.Object.Meta()
		if ref := meta.ControllerOf(); ref != nil && ref.Kind == string(spec.KindReplicaSet) {
			c.q.add(meta.Namespace + "/" + ref.Name)
			return
		}
		// Orphan pod: only ReplicaSets whose selector matches could adopt it
		// (informer-view scan: only enqueues keys).
		c.m.views.ForEach(spec.KindReplicaSet, meta.Namespace, func(ro spec.Object) bool {
			rs := ro.(*spec.ReplicaSet)
			if rs.Spec.Selector.Matches(meta.Labels) {
				c.q.add(objKey(rs))
			}
			return true
		})
	}
}

func (c *replicaSetController) resync() {
	c.m.views.ForEach(spec.KindReplicaSet, "", func(o spec.Object) bool {
		c.q.add(objKey(o))
		return true
	})
}

func (c *replicaSetController) sync(key string) {
	ns, _ := splitKey(key)
	obj, ok := c.m.views.GetByKey(spec.KindReplicaSet, key)
	if !ok {
		return
	}
	rs := obj.(*spec.ReplicaSet)

	// Informer-view scan: owned pods are only inspected here; adoption and
	// release mutate a private clone (see adoptPod / releasePod).
	owned := c.ownedScratch[:0]
	c.m.views.ForEach(spec.KindPod, ns, func(po spec.Object) bool {
		pod := po.(*spec.Pod)
		if !pod.Active() {
			return true
		}
		ref := pod.Metadata.ControllerOf()
		matches := rs.Spec.Selector.Matches(pod.Metadata.Labels)
		switch {
		case ref != nil && ref.UID == rs.Metadata.UID:
			if matches {
				owned = append(owned, pod)
			} else {
				// Labels diverged from the selector: release the pod. It
				// keeps running as an orphan — silent over-provisioning.
				c.releasePod(pod)
			}
		case ref == nil && matches:
			if c.adoptPod(rs, pod) {
				owned = append(owned, pod)
			}
		}
		return true
	})
	c.ownedScratch = owned

	diff := int(rs.Spec.Replicas) - len(owned)
	switch {
	case diff > 0:
		n := diff
		if n > burstReplicas {
			n = burstReplicas
		}
		for i := 0; i < n; i++ {
			c.createPod(rs)
		}
		if diff > n {
			c.q.addAfter(key, syncDelay)
		}
	case diff < 0:
		victims := podsToDelete(owned, -diff)
		for _, pod := range victims {
			_ = c.m.client.Delete(spec.KindPod, ns, pod.Metadata.Name)
		}
	}

	c.updateStatus(rs, owned)
}

func (c *replicaSetController) createPod(rs *spec.ReplicaSet) {
	pod := &spec.Pod{
		Metadata: spec.ObjectMeta{
			Name:      c.m.nextName(rs.Metadata.Name),
			Namespace: rs.Metadata.Namespace,
			Labels:    cloneLabels(rs.Spec.Template.Labels),
			OwnerReferences: []spec.OwnerReference{{
				Kind: string(spec.KindReplicaSet), Name: rs.Metadata.Name,
				UID: rs.Metadata.UID, Controller: true,
			}},
		},
		Spec: *clonePodSpec(&rs.Spec.Template.Spec),
	}
	_ = c.m.client.Create(pod)
}

func (c *replicaSetController) adoptPod(rs *spec.ReplicaSet, pod *spec.Pod) bool {
	pod = spec.CloneForWriteAs(pod) // the argument may be a sealed cache reference
	pod.Metadata.OwnerReferences = append(pod.Metadata.OwnerReferences, spec.OwnerReference{
		Kind: string(spec.KindReplicaSet), Name: rs.Metadata.Name,
		UID: rs.Metadata.UID, Controller: true,
	})
	return c.m.client.Update(pod) == nil
}

func (c *replicaSetController) releasePod(pod *spec.Pod) {
	pod = spec.CloneForWriteAs(pod) // the argument may be a sealed cache reference
	var kept []spec.OwnerReference
	for _, ref := range pod.Metadata.OwnerReferences {
		if !ref.Controller {
			kept = append(kept, ref)
		}
	}
	pod.Metadata.OwnerReferences = kept
	_ = c.m.client.Update(pod)
}

func (c *replicaSetController) updateStatus(rs *spec.ReplicaSet, owned []*spec.Pod) {
	ready := int64(0)
	for _, pod := range owned {
		if pod.Status.Ready {
			ready++
		}
	}
	if rs.Status.Replicas == int64(len(owned)) && rs.Status.ReadyReplicas == ready {
		return
	}
	rs = spec.CloneForStatusAs(rs) // the argument is a sealed cache reference
	rs.Status.Replicas = int64(len(owned))
	rs.Status.ReadyReplicas = ready
	if err := c.m.client.UpdateStatus(rs); errors.Is(err, apiserver.ErrConflict) {
		c.q.addAfter(objKey(rs), conflictRetryDelay)
	}
}

// podsToDelete prefers not-ready, then unscheduled, then youngest pods —
// the real controller's deletion cost ordering, which keeps scale-downs
// from disturbing serving pods.
func podsToDelete(pods []*spec.Pod, n int) []*spec.Pod {
	ranked := append([]*spec.Pod(nil), pods...)
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if a.Status.Ready != b.Status.Ready {
			return !a.Status.Ready
		}
		if (a.Spec.NodeName == "") != (b.Spec.NodeName == "") {
			return a.Spec.NodeName == ""
		}
		return a.Metadata.CreatedMillis > b.Metadata.CreatedMillis
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	return ranked[:n]
}

func cloneLabels(in map[string]string) map[string]string {
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func clonePodSpec(in *spec.PodSpec) *spec.PodSpec {
	pod := spec.Pod{Spec: *in}
	cloned := pod.Clone().(*spec.Pod)
	return &cloned.Spec
}
