// Package election implements lease-based leader election, used by the
// controller manager and the scheduler so that only one replica is active at
// a time (§II-D).
//
// The lease is an ordinary resource living in the data store, which makes it
// an injection target like any other: corrupting the holder identity or the
// renew timestamp can silently depose a leader, producing the paper's
// "Scheduler or Kcm unable to obtain a leadership role" Stall failures.
package election

import (
	"errors"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Config parameterizes an Elector.
type Config struct {
	// LeaseName identifies the contested lease in kube-system.
	LeaseName string
	// Identity is this candidate's holder identity.
	Identity string
	// LeaseDuration is how long a lease is valid after renewal.
	// Defaults to 15 s (the kube-controller-manager default).
	LeaseDuration time.Duration
	// RenewInterval is how often the leader renews. Defaults to 10 s.
	RenewInterval time.Duration
	// RetryInterval is how often a non-leader retries acquisition.
	// Defaults to 2 s.
	RetryInterval time.Duration
	// OnStartedLeading runs when leadership is acquired.
	OnStartedLeading func()
	// OnStoppedLeading runs when leadership is lost.
	OnStoppedLeading func()
}

func (c Config) withDefaults() Config {
	if c.LeaseDuration == 0 {
		c.LeaseDuration = 15 * time.Second
	}
	if c.RenewInterval == 0 {
		c.RenewInterval = 10 * time.Second
	}
	if c.RetryInterval == 0 {
		c.RetryInterval = 2 * time.Second
	}
	if c.OnStartedLeading == nil {
		c.OnStartedLeading = func() {}
	}
	if c.OnStoppedLeading == nil {
		c.OnStoppedLeading = func() {}
	}
	return c
}

// Elector campaigns for a lease and tracks leadership.
type Elector struct {
	loop    *sim.Loop
	client  *apiserver.Client
	cfg     Config
	leading bool
	ticker  sim.Timer
	stopped bool
	// lastContact is the loop time of the last successful lease read; a
	// leader out of contact longer than LeaseDuration self-demotes.
	lastContact time.Duration
}

// New creates an elector; call Start to begin campaigning.
func New(loop *sim.Loop, client *apiserver.Client, cfg Config) *Elector {
	return &Elector{loop: loop, client: client, cfg: cfg.withDefaults()}
}

// Start begins the campaign loop.
func (e *Elector) Start() {
	e.stopped = false
	e.tick()
	e.ticker = e.loop.Every(e.cfg.RetryInterval, e.tick)
}

// Stop halts campaigning cleanly; a leading elector releases its lease
// (clears the holder identity) so other candidates take over at their next
// retry tick instead of waiting out the full lease duration. A crash is
// modelled by Abandon, which leaves the lease to expire.
func (e *Elector) Stop() {
	wasLeading := e.leading
	e.Abandon()
	if wasLeading {
		e.release(3)
	}
}

func (e *Elector) release(attempts int) {
	obj, err := e.client.Get(spec.KindLease, spec.SystemNamespace, e.cfg.LeaseName)
	if err != nil {
		return // control plane unreachable: the lease expires like a crash
	}
	lease, ok := obj.(*spec.Lease)
	if !ok || lease.Spec.HolderIdentity != e.cfg.Identity {
		return
	}
	lease = spec.CloneForWriteAs(lease) // sealed cache reference
	lease.Spec.HolderIdentity = ""
	if err := e.client.Update(lease); errors.Is(err, apiserver.ErrConflict) && attempts > 1 {
		// The watch cache can trail the store by a watch latency right after
		// a renewal; retry once it catches up.
		e.loop.After(5*time.Millisecond, func() { e.release(attempts - 1) })
	}
}

// Abandon halts campaigning without touching the lease — crash semantics:
// for everyone else the lease only expires after LeaseDuration.
func (e *Elector) Abandon() {
	e.stopped = true
	e.ticker.Stop()
	if e.leading {
		e.leading = false
		e.cfg.OnStoppedLeading()
	}
}

// IsLeader reports whether this elector currently holds the lease.
func (e *Elector) IsLeader() bool { return e.leading }

func (e *Elector) tick() {
	if e.stopped {
		return
	}
	nowMillis := e.loop.Time().UnixMilli()
	obj, err := e.client.Get(spec.KindLease, spec.SystemNamespace, e.cfg.LeaseName)
	switch {
	case errors.Is(err, apiserver.ErrNotFound):
		lease := &spec.Lease{
			Metadata: spec.ObjectMeta{Name: e.cfg.LeaseName, Namespace: spec.SystemNamespace},
			Spec: spec.LeaseSpec{
				HolderIdentity: e.cfg.Identity,
				DurationSecs:   int64(e.cfg.LeaseDuration / time.Second),
				RenewMillis:    nowMillis,
			},
		}
		if err := e.client.Create(lease); err == nil {
			e.becomeLeader()
		}
		return
	case err != nil:
		// The control plane is unavailable: a leader that cannot renew must
		// assume it lost the lease once the lease duration elapses — the
		// client-go contract that keeps two leaders from acting at once when
		// this replica's apiserver is the one that crashed.
		if e.leading && e.loop.Now()-e.lastContact > e.cfg.LeaseDuration {
			e.loseLeadership()
		}
		return
	}
	e.lastContact = e.loop.Now()

	lease, ok := obj.(*spec.Lease)
	if !ok {
		return
	}
	// An empty holder identity is a released lease: immediately contestable.
	expired := lease.Spec.HolderIdentity == "" ||
		nowMillis-lease.Spec.RenewMillis > e.cfg.LeaseDuration.Milliseconds()
	switch {
	case lease.Spec.HolderIdentity == e.cfg.Identity:
		// Renew on the renew interval, not on every retry tick: holding the
		// lease needs no write while the last renewal is fresh (the
		// kube-controller-manager renews every 10 s on a 15 s lease). A
		// corrupted holder identity makes this branch unreachable: the
		// component silently loses leadership.
		if nowMillis-lease.Spec.RenewMillis < e.cfg.RenewInterval.Milliseconds() {
			e.becomeLeader()
			return
		}
		lastRenew := lease.Spec.RenewMillis
		lease = spec.CloneForWriteAs(lease) // sealed cache reference
		lease.Spec.RenewMillis = nowMillis
		if err := e.client.Update(lease); err == nil {
			e.becomeLeader()
		} else if errors.Is(err, apiserver.ErrConflict) {
			// Someone rewrote the lease under us: resolve next tick.
			return
		} else if nowMillis-lastRenew > e.cfg.LeaseDuration.Milliseconds() {
			// Renewals have failed for a full lease duration — e.g. our
			// apiserver's store replica lost quorum, so reads still answer
			// from its cache but writes bounce. For the rest of the cluster
			// the lease has expired; assume we lost it (client-go's renew
			// deadline), so the healthy side's standby is the only leader.
			e.loseLeadership()
		}
	case expired:
		lease = spec.CloneForWriteAs(lease) // sealed cache reference
		lease.Spec.HolderIdentity = e.cfg.Identity
		lease.Spec.RenewMillis = nowMillis
		if err := e.client.Update(lease); err == nil {
			e.becomeLeader()
		}
	default:
		// Someone else holds a fresh lease.
		e.loseLeadership()
	}
}

func (e *Elector) becomeLeader() {
	if !e.leading {
		e.leading = true
		e.cfg.OnStartedLeading()
	}
}

func (e *Elector) loseLeadership() {
	if e.leading {
		e.leading = false
		e.cfg.OnStoppedLeading()
	}
}
