package election

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

func setup(t *testing.T) (*sim.Loop, *apiserver.Server) {
	t.Helper()
	loop := sim.NewLoop(1)
	st := store.New(loop, nil)
	return loop, apiserver.New(loop, st, nil)
}

func TestSingleCandidateAcquires(t *testing.T) {
	loop, srv := setup(t)
	started := 0
	e := New(loop, srv.ClientFor("kcm-0"), Config{
		LeaseName: "kcm", Identity: "kcm-0",
		OnStartedLeading: func() { started++ },
	})
	e.Start()
	loop.RunUntil(5 * time.Second)
	if !e.IsLeader() {
		t.Fatal("sole candidate did not acquire the lease")
	}
	if started != 1 {
		t.Fatalf("OnStartedLeading fired %d times, want 1", started)
	}
}

func TestOnlyOneLeaderAtATime(t *testing.T) {
	loop, srv := setup(t)
	a := New(loop, srv.ClientFor("kcm-0"), Config{LeaseName: "kcm", Identity: "kcm-0"})
	b := New(loop, srv.ClientFor("kcm-1"), Config{LeaseName: "kcm", Identity: "kcm-1"})
	a.Start()
	b.Start()
	for i := 0; i < 20; i++ {
		loop.RunUntil(loop.Now() + time.Second)
		if a.IsLeader() && b.IsLeader() {
			t.Fatal("two leaders at once")
		}
	}
	if !a.IsLeader() && !b.IsLeader() {
		t.Fatal("no leader after 20s")
	}
}

func TestFailoverAfterLeaseExpiry(t *testing.T) {
	loop, srv := setup(t)
	a := New(loop, srv.ClientFor("sched-0"), Config{LeaseName: "sched", Identity: "sched-0"})
	b := New(loop, srv.ClientFor("sched-1"), Config{LeaseName: "sched", Identity: "sched-1"})
	a.Start()
	loop.RunUntil(5 * time.Second)
	if !a.IsLeader() {
		t.Fatal("a did not acquire")
	}
	b.Start()
	loop.RunUntil(10 * time.Second)
	if b.IsLeader() {
		t.Fatal("b grabbed a fresh lease")
	}
	// a crashes (no clean release); b should take over only after the lease
	// duration (~15s).
	a.Abandon()
	takeover := loop.Now()
	for loop.Now() < takeover+40*time.Second && !b.IsLeader() {
		loop.RunUntil(loop.Now() + time.Second)
	}
	if !b.IsLeader() {
		t.Fatal("b never took over after a stopped renewing")
	}
	elapsed := loop.Now() - takeover
	if elapsed < 10*time.Second {
		t.Fatalf("takeover after %v, expected to wait for lease expiry (~15s)", elapsed)
	}
}

// The injection-relevant behaviour: corrupting the lease's holder identity
// silently deposes the leader, which stops reconciling — a Stall precursor.
func TestCorruptedHolderIdentityDeposesLeader(t *testing.T) {
	loop, srv := setup(t)
	var stopped int
	e := New(loop, srv.ClientFor("kcm-0"), Config{
		LeaseName: "kcm", Identity: "kcm-0",
		OnStoppedLeading: func() { stopped++ },
	})
	e.Start()
	loop.RunUntil(5 * time.Second)
	if !e.IsLeader() {
		t.Fatal("did not acquire")
	}
	// Corrupt the holder identity as a store-channel injection would.
	admin := srv.ClientFor("injector")
	obj, err := admin.Get(spec.KindLease, spec.SystemNamespace, "kcm")
	if err != nil {
		t.Fatal(err)
	}
	lease := spec.CloneForWriteAs(obj.(*spec.Lease))
	lease.Spec.HolderIdentity = "kcm-\x31" // flipped character: "kcm-1"
	lease.Spec.RenewMillis = loop.Time().UnixMilli()
	if err := admin.Update(lease); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(10 * time.Second)
	if e.IsLeader() {
		t.Fatal("leader survived holder-identity corruption")
	}
	if stopped != 1 {
		t.Fatalf("OnStoppedLeading fired %d times, want 1", stopped)
	}
	// The ghost holder never renews, so the real candidate eventually takes
	// the lease back — recovery by natural system behaviour.
	loop.RunUntil(40 * time.Second)
	if !e.IsLeader() {
		t.Fatal("candidate never re-acquired after ghost lease expired")
	}
}

// Regression: a clean Stop must release the lease so a standby takes over at
// its next retry tick, not after the full lease duration — before the fix, a
// clean stop had exactly crash latency.
func TestStopReleasesLeaseForFastTakeover(t *testing.T) {
	loop, srv := setup(t)
	a := New(loop, srv.ClientFor("kcm-0"), Config{LeaseName: "kcm", Identity: "kcm-0"})
	b := New(loop, srv.ClientFor("kcm-1"), Config{LeaseName: "kcm", Identity: "kcm-1"})
	a.Start()
	loop.RunUntil(5 * time.Second)
	if !a.IsLeader() {
		t.Fatal("a did not acquire")
	}
	b.Start()
	loop.RunUntil(10 * time.Second)

	a.Stop()
	takeover := loop.Now()
	// The release may retry once the watch cache catches up (a few ms).
	loop.RunUntil(loop.Now() + 50*time.Millisecond)
	obj, err := srv.ClientFor("observer").Get(spec.KindLease, spec.SystemNamespace, "kcm")
	if err != nil {
		t.Fatal(err)
	}
	if holder := obj.(*spec.Lease).Spec.HolderIdentity; holder != "" {
		t.Fatalf("lease holder after clean Stop = %q, want released (empty)", holder)
	}
	for loop.Now() < takeover+10*time.Second && !b.IsLeader() {
		loop.RunUntil(loop.Now() + 500*time.Millisecond)
	}
	if !b.IsLeader() {
		t.Fatal("standby never took over after clean release")
	}
	if elapsed := loop.Now() - takeover; elapsed > 4*time.Second {
		t.Fatalf("takeover after %v, want within a retry tick (2s), not lease expiry", elapsed)
	}
}

func TestStopRelinquishes(t *testing.T) {
	loop, srv := setup(t)
	var stopped bool
	e := New(loop, srv.ClientFor("kcm-0"), Config{
		LeaseName: "kcm", Identity: "kcm-0",
		OnStoppedLeading: func() { stopped = true },
	})
	e.Start()
	loop.RunUntil(5 * time.Second)
	e.Stop()
	if e.IsLeader() {
		t.Fatal("still leader after Stop")
	}
	if !stopped {
		t.Fatal("OnStoppedLeading not called on Stop")
	}
	loop.RunUntil(20 * time.Second)
	if e.IsLeader() {
		t.Fatal("stopped elector re-acquired")
	}
}
