package ffda

// Table VII of the paper compares the error/failure subcategories observed
// in the wild with those Mutiny's injections can trigger: bold entries are
// replicable, plain entries are real-world-only, and italic entries are
// triggered by Mutiny without a real-world counterpart.
//
// The coverage verdicts below follow the paper's §VI-A discussion: Mutiny
// easily triggers errors related to logic, capacity, state retrieval and
// control-plane availability, but "falls short in inducing delays caused by
// DNS resolution, connection errors, arbitrary numbers of unhealthy Nodes,
// and transient and intermittent network failures in general", and cannot
// reach errors local to the worker nodes that stem from kernel or runtime
// problems. Almost all *failure* subcategories remain coverable.

// Coverage classifies one subcategory.
type Coverage int

// Coverage classes (Table VII formatting).
const (
	// RealOnly appears in the wild but Mutiny cannot replicate it.
	RealOnly Coverage = iota + 1
	// Replicable appears in the wild and Mutiny replicates it (bold).
	Replicable
	// MutinyOnly is triggered by Mutiny but absent from the real-world
	// dataset (italics).
	MutinyOnly
)

func (c Coverage) String() string {
	switch c {
	case RealOnly:
		return "real-world only"
	case Replicable:
		return "replicable"
	case MutinyOnly:
		return "Mutiny only"
	default:
		return "unknown"
	}
}

// SubcategoryCoverage is one Table VII row entry.
type SubcategoryCoverage struct {
	Sub      string
	Coverage Coverage
}

// ErrorCoverage maps each error category to its subcategory coverage.
func ErrorCoverage() map[Error][]SubcategoryCoverage {
	return map[Error][]SubcategoryCoverage{
		ErrorStateRetrieval: {
			{"State corrupted", Replicable},
			{"State erased", Replicable},
			{"State stale", Replicable},
			{"State unretrievable", Replicable},
		},
		ErrorMisbehavLogic: {
			{"Wrong label", Replicable},
			{"Wrong replica value", Replicable},
			{"Request rejected", Replicable},
			{"Lost update", Replicable},
			{"Controller loop not executed", Replicable},
			{"Relationship broken", Replicable},
		},
		ErrorCommunication: {
			{"Connection delay", RealOnly},
			{"Wrong IP address", Replicable},
			{"DNS resolution delay", RealOnly},
			{"DNS not resolving", Replicable},
			{"Uneven load balancing", Replicable},
			{"Endpoint delete after Pod kill", MutinyOnly},
			{"Routes dropped", Replicable},
			{"New Nodes routes not configured", Replicable},
			{"Routes not updated", Replicable},
		},
		ErrorResourceExh: {
			{"Overcrowding", Replicable},
			{"Cluster out of resources", Replicable},
			{"Worker nodes cannot join", RealOnly},
			{"Worker nodes unhealthy", Replicable},
		},
		ErrorCPAvailability: {
			{"CP Pods crash loop", Replicable},
			{"CP Pods hang", RealOnly},
			{"CP Pods deleted", MutinyOnly},
			{"CP overload", Replicable},
		},
		ErrorLocalToNodes: {
			{"Kubelet delayed", RealOnly},
			{"Container runtime failure", RealOnly},
			{"Pods not ready", Replicable},
			{"Image Pull Error", Replicable},
			{"Slow/throttling", RealOnly},
		},
	}
}

// FailureCoverage maps each failure category to its subcategory coverage.
func FailureCoverage() map[Failure][]SubcategoryCoverage {
	return map[Failure][]SubcategoryCoverage{
		FailureOut: {
			{"Cluster-wide networking drop", Replicable},
			{"Cluster-wide networking intermittent", RealOnly},
			{"Massive Service Deletion", Replicable},
			{"DNS resolution failure", Replicable},
		},
		FailureSta: {
			{"Control Plane stuck", Replicable},
			{"Control Plane slow", RealOnly},
			{"Control Plane quorum unreachable", RealOnly},
			{"New Services network not configurable", Replicable},
			{"New Nodes network not reconfigurable", Replicable},
		},
		FailureNet: {
			{"Service Networking Drop Permanent", Replicable},
			{"Service Networking Drop Intermittent", Replicable},
			{"Service Networking Delay", RealOnly},
		},
		FailureMoR: {
			{"Pods not deleted", Replicable},
			{"Too many Pods created", Replicable},
			{"More Pods Transient", Replicable},
			{"More Resources Per Pod", Replicable},
		},
		FailureLeR: {
			{"Pods deleted", Replicable},
			{"Pods not created", Replicable},
			{"Pods crashloop", Replicable},
			{"Less Resources Per Pod", Replicable},
		},
		FailureTim: {
			{"Pods Creation Delayed", Replicable},
			{"Pods Restart", Replicable},
		},
	}
}

// CoverageStats summarizes Table VII: how many real-world subcategories
// exist per category and how many of them Mutiny replicates.
func CoverageStats() (realWorld, replicable int) {
	count := func(m []SubcategoryCoverage) {
		for _, sc := range m {
			switch sc.Coverage {
			case Replicable:
				realWorld++
				replicable++
			case RealOnly:
				realWorld++
			}
		}
	}
	for _, subs := range ErrorCoverage() {
		count(subs)
	}
	for _, subs := range FailureCoverage() {
		count(subs)
	}
	return realWorld, replicable
}

// ReplicableIncidents counts the dataset incidents whose error AND failure
// subcategories Mutiny can replicate — the paper states that Etcd
// alterations can recreate a majority (54/81) of the real-world failures.
func ReplicableIncidents() []Incident {
	errCov := make(map[string]Coverage)
	for _, subs := range ErrorCoverage() {
		for _, sc := range subs {
			errCov[sc.Sub] = sc.Coverage
		}
	}
	failCov := make(map[string]Coverage)
	for _, subs := range FailureCoverage() {
		for _, sc := range subs {
			failCov[sc.Sub] = sc.Coverage
		}
	}
	return filter(func(in Incident) bool {
		if in.Failure == FailureNone {
			// Recovered incidents: replicable whenever the error is.
			return errCov[in.ErrorSub] == Replicable
		}
		return errCov[in.ErrorSub] == Replicable && failCov[in.FailureSub] == Replicable
	})
}
