// Package ffda encodes the paper's field failure data analysis (§III): the
// fault → error → failure chain of Table I, a dataset of the 81 real-world
// Kubernetes incidents whose aggregate statistics the paper reports, and the
// Table VII comparison between real-world failure subcategories and what
// Mutiny can replicate.
//
// The public failure reports behind the dataset (k8s.af, vendor post-mortems
// and conference talks) are narrative and partially redacted, so individual
// rows are reconstructions; every aggregate count the paper states is
// reproduced exactly and locked in by tests:
//
//   - 81 incidents in total, 15 of them cluster outages;
//   - 33 misconfiguration-caused failures (19 of Kubernetes itself, 3 of
//     plugins, 11 of external software), 10 involving bad resource sizing;
//   - 13 incidents involving bugs (5 Kubernetes, 4 external, 1 plugin,
//     3 custom code);
//   - 21 capacity-related failures, 11 due to control-plane overload;
//   - 19 incidents with communication errors;
//   - 13 misconfigurations that overloaded the system (finding F3).
package ffda

// Fault is a root-cause category (Table I(a)).
type Fault string

// Fault categories.
const (
	FaultWrongAutoscale Fault = "Wrong Autoscale Trigger"
	FaultRaceCondition  Fault = "Race Condition"
	FaultCertificate    Fault = "Unverifiable Certificate"
	FaultBug            Fault = "Bug"
	FaultHumanMistake   Fault = "Human Mistake"
	FaultUpgrade        Fault = "Unmanaged Upgrade"
	FaultOverload       Fault = "Overload"
	FaultLowLevel       Fault = "Low-Level Issues"
	FaultFailingApp     Fault = "Failing Application"
)

// Faults lists the fault categories in Table I order.
func Faults() []Fault {
	return []Fault{
		FaultWrongAutoscale, FaultRaceCondition, FaultCertificate, FaultBug,
		FaultHumanMistake, FaultUpgrade, FaultOverload, FaultLowLevel, FaultFailingApp,
	}
}

// Error is an intermediate error category (Table I(b)).
type Error string

// Error categories.
const (
	ErrorStateRetrieval Error = "State Retrieval"
	ErrorMisbehavLogic  Error = "Misbehaving Logic"
	ErrorCommunication  Error = "Communication"
	ErrorResourceExh    Error = "Resource Exhaustion"
	ErrorCPAvailability Error = "Control Plane Availability"
	ErrorLocalToNodes   Error = "Local to worker Nodes"
)

// Errors lists the error categories in Table I order.
func Errors() []Error {
	return []Error{
		ErrorStateRetrieval, ErrorMisbehavLogic, ErrorCommunication,
		ErrorResourceExh, ErrorCPAvailability, ErrorLocalToNodes,
	}
}

// Failure is an orchestrator-level failure category (Table I(c)).
type Failure string

// Failure categories, in increasing severity.
const (
	FailureNone Failure = "No"
	FailureTim  Failure = "Tim"
	FailureLeR  Failure = "LeR"
	FailureMoR  Failure = "MoR"
	FailureNet  Failure = "Net"
	FailureSta  Failure = "Sta"
	FailureOut  Failure = "Out"
)

// Failures lists the failure categories in severity order.
func Failures() []Failure {
	return []Failure{FailureNone, FailureTim, FailureLeR, FailureMoR, FailureNet, FailureSta, FailureOut}
}

// MisconfigScope distinguishes what was misconfigured (for Human Mistake
// faults).
type MisconfigScope string

// Misconfiguration scopes.
const (
	MisconfigNone     MisconfigScope = ""
	MisconfigK8s      MisconfigScope = "kubernetes"
	MisconfigPlugin   MisconfigScope = "plugin"
	MisconfigExternal MisconfigScope = "external"
)

// BugScope distinguishes where a bug lived (for Bug faults).
type BugScope string

// Bug scopes.
const (
	BugNone     BugScope = ""
	BugK8s      BugScope = "kubernetes"
	BugExternal BugScope = "external"
	BugPlugin   BugScope = "plugin"
	BugCustom   BugScope = "custom"
)

// Incident is one real-world failure report.
type Incident struct {
	ID    int
	Title string
	// Source tags the public report family the reconstruction is based on.
	Source string

	Fault     Fault
	Misconfig MisconfigScope // set when Fault is Human Mistake
	Bug       BugScope       // set when the chain involved a bug
	// BadResourceSizing marks misconfigurations that were wrong CPU/memory
	// sizing of nodes or services.
	BadResourceSizing bool

	Error Error
	// ErrorSub is the Table VII error subcategory.
	ErrorSub string

	Failure Failure
	// FailureSub is the Table VII failure subcategory.
	FailureSub string

	// Overloaded marks chains where the system was driven into overload
	// (finding F3 counts misconfiguration-caused ones).
	Overloaded bool
}

// Dataset returns the 81-incident dataset.
func Dataset() []Incident { return _incidents }

// --- aggregate queries --------------------------------------------------------

// CountByFault tallies incidents per fault category.
func CountByFault() map[Fault]int {
	out := make(map[Fault]int)
	for _, in := range _incidents {
		out[in.Fault]++
	}
	return out
}

// CountByError tallies incidents per error category.
func CountByError() map[Error]int {
	out := make(map[Error]int)
	for _, in := range _incidents {
		out[in.Error]++
	}
	return out
}

// CountByFailure tallies incidents per failure category.
func CountByFailure() map[Failure]int {
	out := make(map[Failure]int)
	for _, in := range _incidents {
		out[in.Failure]++
	}
	return out
}

// Misconfigurations returns the incidents caused by human mistakes.
func Misconfigurations() []Incident {
	return filter(func(in Incident) bool { return in.Fault == FaultHumanMistake })
}

// BugIncidents returns the incidents whose chain involved a bug.
func BugIncidents() []Incident {
	return filter(func(in Incident) bool { return in.Bug != BugNone })
}

// CapacityIncidents returns the capacity-related incidents (resource
// exhaustion or control-plane availability errors).
func CapacityIncidents() []Incident {
	return filter(func(in Incident) bool {
		return in.Error == ErrorResourceExh || in.Error == ErrorCPAvailability
	})
}

// ControlPlaneOverloads returns capacity incidents that overloaded the
// control plane.
func ControlPlaneOverloads() []Incident {
	return filter(func(in Incident) bool { return in.Error == ErrorCPAvailability })
}

// CommunicationIncidents returns incidents with communication errors.
func CommunicationIncidents() []Incident {
	return filter(func(in Incident) bool { return in.Error == ErrorCommunication })
}

// MisconfigOverloads returns the F3 incidents: misconfigurations that
// overloaded the system.
func MisconfigOverloads() []Incident {
	return filter(func(in Incident) bool { return in.Fault == FaultHumanMistake && in.Overloaded })
}

func filter(keep func(Incident) bool) []Incident {
	var out []Incident
	for _, in := range _incidents {
		if keep(in) {
			out = append(out, in)
		}
	}
	return out
}
