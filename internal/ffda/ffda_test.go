package ffda

import "testing"

// Every aggregate statistic stated in §III of the paper must hold on the
// dataset exactly.
func TestDatasetMatchesPaperAggregates(t *testing.T) {
	if got := len(Dataset()); got != 81 {
		t.Fatalf("dataset size = %d, want 81", got)
	}
	if got := CountByFailure()[FailureOut]; got != 15 {
		t.Fatalf("Out failures = %d, want 15", got)
	}
	mis := Misconfigurations()
	if len(mis) != 33 {
		t.Fatalf("misconfigurations = %d, want 33", len(mis))
	}
	scopes := map[MisconfigScope]int{}
	sizing := 0
	for _, in := range mis {
		scopes[in.Misconfig]++
		if in.BadResourceSizing {
			sizing++
		}
	}
	if scopes[MisconfigK8s] != 19 || scopes[MisconfigPlugin] != 3 || scopes[MisconfigExternal] != 11 {
		t.Fatalf("misconfig scopes = %v, want 19/3/11", scopes)
	}
	if sizing != 10 {
		t.Fatalf("bad resource sizing = %d, want 10", sizing)
	}
	bugs := BugIncidents()
	if len(bugs) != 13 {
		t.Fatalf("bug incidents = %d, want 13", len(bugs))
	}
	bugScopes := map[BugScope]int{}
	for _, in := range bugs {
		bugScopes[in.Bug]++
	}
	if bugScopes[BugK8s] != 5 || bugScopes[BugExternal] != 4 || bugScopes[BugPlugin] != 1 || bugScopes[BugCustom] != 3 {
		t.Fatalf("bug scopes = %v, want 5/4/1/3", bugScopes)
	}
	if got := len(CapacityIncidents()); got != 21 {
		t.Fatalf("capacity incidents = %d, want 21", got)
	}
	if got := len(ControlPlaneOverloads()); got != 11 {
		t.Fatalf("control-plane overloads = %d, want 11", got)
	}
	if got := len(CommunicationIncidents()); got != 19 {
		t.Fatalf("communication incidents = %d, want 19", got)
	}
	if got := len(MisconfigOverloads()); got != 13 {
		t.Fatalf("misconfig overloads (F3) = %d, want 13", got)
	}
}

func TestDatasetInternallyConsistent(t *testing.T) {
	seenIDs := map[int]bool{}
	for _, in := range Dataset() {
		if in.ID <= 0 || seenIDs[in.ID] {
			t.Fatalf("bad or duplicate incident ID %d", in.ID)
		}
		seenIDs[in.ID] = true
		if in.Title == "" || in.Source == "" {
			t.Fatalf("incident %d missing title/source", in.ID)
		}
		if in.Misconfig != MisconfigNone && in.Fault != FaultHumanMistake {
			t.Fatalf("incident %d: misconfig scope on non-human-mistake fault", in.ID)
		}
		if in.ErrorSub == "" || in.FailureSub == "" {
			t.Fatalf("incident %d missing subcategories", in.ID)
		}
	}
	// Category totals must cover all incidents.
	var faultTotal, errTotal, failTotal int
	for _, n := range CountByFault() {
		faultTotal += n
	}
	for _, n := range CountByError() {
		errTotal += n
	}
	for _, n := range CountByFailure() {
		failTotal += n
	}
	if faultTotal != 81 || errTotal != 81 || failTotal != 81 {
		t.Fatalf("marginals = %d/%d/%d, want 81 each", faultTotal, errTotal, failTotal)
	}
}

// Every subcategory used by an incident must appear in the Table VII
// coverage map of its own category.
func TestSubcategoriesBelongToCoverageTable(t *testing.T) {
	errCov := ErrorCoverage()
	failCov := FailureCoverage()
	for _, in := range Dataset() {
		found := false
		for _, sc := range errCov[in.Error] {
			if sc.Sub == in.ErrorSub {
				found = true
			}
		}
		if !found {
			t.Errorf("incident %d: error subcategory %q not in %s coverage", in.ID, in.ErrorSub, in.Error)
		}
		if in.Failure == FailureNone {
			continue
		}
		found = false
		for _, sc := range failCov[in.Failure] {
			if sc.Sub == in.FailureSub {
				found = true
			}
		}
		if !found {
			t.Errorf("incident %d: failure subcategory %q not in %s coverage", in.ID, in.FailureSub, in.Failure)
		}
	}
}

// The paper: "we show that Etcd alterations can recreate a majority (54/81)
// of real-world failures analyzed in §III". The reconstruction must yield a
// comparable majority.
func TestReplicableMajority(t *testing.T) {
	n := len(ReplicableIncidents())
	if n < 50 || n > 60 {
		t.Fatalf("replicable incidents = %d, want a majority near the paper's 54/81", n)
	}
	t.Logf("replicable incidents: %d/81 (paper: 54/81)", n)
}

func TestCoverageStats(t *testing.T) {
	realWorld, replicable := CoverageStats()
	if realWorld == 0 || replicable == 0 {
		t.Fatal("empty coverage stats")
	}
	if replicable >= realWorld {
		t.Fatalf("replicable (%d) must be < real-world subcategories (%d): Mutiny cannot cover node-local errors", replicable, realWorld)
	}
	// §VI-A: "almost all failure subcategories can be covered" — coverage
	// must exceed 70%.
	if float64(replicable)/float64(realWorld) < 0.7 {
		t.Fatalf("coverage %d/%d below the paper's 'almost all subcategories'", replicable, realWorld)
	}
}

func TestTaxonomyListsComplete(t *testing.T) {
	if len(Faults()) != 9 {
		t.Fatalf("faults = %d, want 9 (Table I(a))", len(Faults()))
	}
	if len(Errors()) != 6 {
		t.Fatalf("errors = %d, want 6 (Table I(b))", len(Errors()))
	}
	if len(Failures()) != 7 {
		t.Fatalf("failures = %d, want 7 (Table I(c))", len(Failures()))
	}
}
