// Package guard implements the failure-mitigation strategy the paper
// proposes in §VI-B:
//
//	"updates to critical fields and resources should be logged. [...] Upon a
//	change, system behavior should be monitored to detect any degradation of
//	the system's health, so it is possible to roll back changes to critical
//	fields."
//
// The guard watches every write crossing the apiserver→store channel,
// journals changes to critical fields (the dependency-tracking, identity and
// networking fields of §V-C2), and after each such change observes cluster
// health for a probation window. If the cluster degrades — uncontrolled pod
// creation, a stuck control plane, failing network pods, dying DNS — the
// guard rolls the changed field back to its previous value.
//
// It is deliberately a *mitigation*, not a prevention: the corrupted value
// does reach the store and the failure begins to unfold; the guard bounds
// the blast radius. The mitigation benchmark compares the same injection
// with and without the guard.
package guard

import (
	"fmt"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Defaults for the probation monitor.
const (
	// probation is how long the guard watches cluster health after a
	// critical-field change before declaring it benign.
	probation = 15 * time.Second
	// checkPeriod is the health sampling interval during probation.
	checkPeriod = 2 * time.Second
	// spawnSlack is the pod-creation budget during a probation window;
	// exceeding it counts as uncontrolled replication.
	spawnSlack = 12
)

// Change is one journaled critical-field update.
type Change struct {
	At       time.Duration
	Kind     spec.Kind
	Instance string // namespace/name
	Field    string
	Old, New any
	Source   string
	// RolledBack is set if the guard reverted this change.
	RolledBack bool
	// Reason records why the rollback fired.
	Reason string
}

// Health is the guard's view of cluster health, provided by the embedder
// (the cluster wires its own probes in).
type Health struct {
	ControlPlaneResponsive bool
	NetworkPodsFailing     bool
	DNSHealthy             bool
	ActivePods             int
}

// Guard journals critical-field changes and rolls back the ones that are
// followed by cluster degradation.
type Guard struct {
	loop   *sim.Loop
	client *apiserver.Client
	health func() Health

	Journal []Change

	// watching maps instance keys to their pre-change snapshots during
	// probation.
	pending map[string]*probationWatch

	rollbacks int
	enabled   bool
}

type probationWatch struct {
	change   Change
	snapshot spec.Object // the object before the change
	baseline Health
	timer    sim.Timer
	checks   int
}

// New builds a guard. health supplies the cluster's current vital signs.
func New(loop *sim.Loop, srv apiserver.ClientSource, health func() Health) *Guard {
	return &Guard{
		loop:    loop,
		client:  srv.ClientFor("field-guard"),
		health:  health,
		pending: make(map[string]*probationWatch),
		enabled: true,
	}
}

// Rollbacks reports how many changes the guard reverted.
func (g *Guard) Rollbacks() int { return g.rollbacks }

// SetEnabled toggles the rollback action (journaling continues), for the
// mitigation ablation.
func (g *Guard) SetEnabled(on bool) { g.enabled = on }

// Hook returns the apiserver→store hook. Chain it with an injector's hook if
// both are in use: the guard must observe the channel after the injector so
// it sees exactly what the store will see.
func (g *Guard) Hook(next apiserver.Hook) apiserver.Hook {
	return func(m *apiserver.Message) apiserver.Action {
		if next != nil {
			if next(m) == apiserver.Drop {
				return apiserver.Drop
			}
		}
		g.observe(m)
		return apiserver.Pass
	}
}

// CriticalField reports whether a field path belongs to the §V-C2 critical
// set: dependency-tracking fields, identity fields, and networking fields.
func CriticalField(path string) bool { return spec.CriticalFieldPath(path) }

// observe diffs the incoming write against the currently stored object and
// journals changes to critical fields.
func (g *Guard) observe(m *apiserver.Message) {
	if m.Verb != apiserver.VerbUpdate && m.Verb != apiserver.VerbUpdateStatus {
		return // creations establish fields; only changes are guarded
	}
	if len(m.Data) == 0 {
		return
	}
	cur, err := g.client.Get(m.Kind, m.Namespace, m.Name)
	if err != nil {
		return
	}
	incoming := spec.New(m.Kind)
	if err := codec.Unmarshal(m.Data, incoming); err != nil {
		return
	}
	instance := m.Namespace + "/" + m.Name
	for _, f := range codec.Fields(incoming) {
		if !CriticalField(f.Path) {
			continue
		}
		newVal, err := codec.Get(incoming, f.Path)
		if err != nil {
			continue
		}
		oldVal, err := codec.Get(cur, f.Path)
		if err != nil {
			// The field did not exist before (a new label/map entry):
			// journal it against the type's zero value so additions are
			// guarded too.
			oldVal = zeroLike(newVal)
		}
		if oldVal == newVal {
			continue
		}
		change := Change{
			At: g.loop.Now(), Kind: m.Kind, Instance: instance,
			Field: f.Path, Old: oldVal, New: newVal, Source: m.Source,
		}
		g.Journal = append(g.Journal, change)
		g.startProbation(change, cur)
	}
}

func (g *Guard) startProbation(change Change, snapshot spec.Object) {
	key := string(change.Kind) + "\x00" + change.Instance + "\x00" + change.Field
	if existing, ok := g.pending[key]; ok {
		existing.timer.Stop()
	}
	w := &probationWatch{change: change, snapshot: snapshot, baseline: g.health()}
	g.pending[key] = w
	var tick func()
	tick = func() {
		w.checks++
		if reason, degraded := g.degraded(w); degraded {
			g.rollback(key, w, reason)
			return
		}
		if time.Duration(w.checks)*checkPeriod >= probation {
			delete(g.pending, key) // probation passed: change is benign
			return
		}
		w.timer = g.loop.After(checkPeriod, tick)
	}
	w.timer = g.loop.After(checkPeriod, tick)
}

func (g *Guard) degraded(w *probationWatch) (string, bool) {
	h := g.health()
	switch {
	case !h.ControlPlaneResponsive && w.baseline.ControlPlaneResponsive:
		return "control plane stopped responding", true
	case h.NetworkPodsFailing && !w.baseline.NetworkPodsFailing:
		return "network pods failing", true
	case !h.DNSHealthy && w.baseline.DNSHealthy:
		return "cluster DNS went down", true
	case h.ActivePods > w.baseline.ActivePods+spawnSlack:
		return fmt.Sprintf("uncontrolled pod creation (%d → %d)", w.baseline.ActivePods, h.ActivePods), true
	default:
		return "", false
	}
}

// rollback restores the pre-change value of the guarded field.
func (g *Guard) rollback(key string, w *probationWatch, reason string) {
	delete(g.pending, key)
	for i := range g.Journal {
		j := &g.Journal[i]
		if j.At == w.change.At && j.Field == w.change.Field && j.Instance == w.change.Instance {
			j.RolledBack = true
			j.Reason = reason
		}
	}
	if !g.enabled {
		return
	}
	ns, name := splitInstance(w.change.Instance)
	cur, err := g.client.Get(w.change.Kind, ns, name)
	if err != nil {
		// The object is gone; recreate it from the snapshot (a deleted
		// networking resource is exactly the outage case).
		restored := w.snapshot.Clone()
		restored.Meta().ResourceVersion = 0
		restored.Meta().UID = ""
		if g.client.Create(restored) == nil {
			g.rollbacks++
		}
		return
	}
	cur = spec.CloneForWrite(cur) // sealed cache reference
	if err := codec.Set(cur, w.change.Field, w.change.Old); err != nil {
		return
	}
	if g.client.Update(cur) == nil {
		g.rollbacks++
	}
}

func zeroLike(v any) any {
	switch v.(type) {
	case int64:
		return int64(0)
	case bool:
		return false
	default:
		return ""
	}
}

func splitInstance(instance string) (ns, name string) {
	for i := 0; i < len(instance); i++ {
		if instance[i] == '/' {
			return instance[:i], instance[i+1:]
		}
	}
	return "", instance
}
