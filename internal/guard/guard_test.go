package guard_test

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/cluster"
	"github.com/mutiny-sim/mutiny/internal/guard"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

func guardedCluster(t *testing.T, seed int64) *cluster.Cluster {
	t.Helper()
	cl := cluster.New(cluster.Config{Seed: seed, EnableFieldGuard: true})
	cl.Start()
	if !cl.AwaitSettled(30 * time.Second) {
		t.Fatal("cluster did not settle")
	}
	return cl
}

func TestCriticalFieldClassification(t *testing.T) {
	critical := []string{
		"metadata.labels[app]",
		"spec.selector.matchLabels[app]",
		"spec.template.labels[app]",
		"metadata.ownerReferences[0].uid",
		"metadata.name",
		"spec.nodeName",
		"spec.clusterIP",
		"spec.podCIDR",
		"spec.ports[0].targetPort",
		"status.podIP",
	}
	for _, p := range critical {
		if !guard.CriticalField(p) {
			t.Errorf("CriticalField(%q) = false, want true", p)
		}
	}
	benign := []string{
		"metadata.creationTimestamp",
		"status.phase",
		"spec.replicas",
		"status.restartCount",
		"spec.containers[0].requestsMilliCPU",
	}
	for _, p := range benign {
		if guard.CriticalField(p) {
			t.Errorf("CriticalField(%q) = true, want false", p)
		}
	}
}

// The guard must journal a critical-field change without rolling back when
// the cluster stays healthy (a legitimate label edit).
func TestGuardJournalsBenignChange(t *testing.T) {
	cl := guardedCluster(t, 1)
	user := cl.Client("kbench")
	if err := user.Create(workload.AppDeployment("webapp-0", 2)); err != nil {
		t.Fatal(err)
	}
	cl.Loop.RunUntil(cl.Loop.Now() + 10*time.Second)

	obj, err := user.Get(spec.KindDeployment, spec.DefaultNamespace, "webapp-0")
	if err != nil {
		t.Fatal(err)
	}
	d := spec.CloneForWriteAs(obj.(*spec.Deployment))
	d.Metadata.Labels["team"] = "payments"
	if err := user.Update(d); err != nil {
		t.Fatal(err)
	}
	cl.Loop.RunUntil(cl.Loop.Now() + 30*time.Second)

	g := cl.Guard()
	found := false
	for _, ch := range g.Journal {
		if ch.Field == "metadata.labels[team]" {
			found = true
			if ch.RolledBack {
				t.Fatal("benign label change was rolled back")
			}
		}
	}
	if !found {
		t.Fatalf("label change not journaled; journal: %+v", g.Journal)
	}
	if g.Rollbacks() != 0 {
		t.Fatalf("rollbacks = %d on a healthy cluster", g.Rollbacks())
	}
}

// The §VI-B mitigation at work: the same template-label corruption that
// drives uncontrolled replication is detected by the probation monitor and
// rolled back, bounding the pod spawn.
func TestGuardRollsBackUncontrolledReplication(t *testing.T) {
	cl := guardedCluster(t, 2)
	injector := inject.New(cl.Loop)
	cl.AttachInjector(injector)

	driver := workload.NewDriver(cl, workload.Deploy)
	driver.Setup()
	injector.Arm(inject.Injection{
		Channel: inject.ChannelStore, Kind: spec.KindReplicaSet,
		FieldPath: "spec.template.labels[app]",
		Type:      inject.SetValue, Value: "mislabeled",
		Occurrence: 2,
	})
	driver.Run()
	cl.Loop.RunUntil(cl.Loop.Now() + 60*time.Second)

	g := cl.Guard()
	if g.Rollbacks() == 0 {
		t.Fatalf("guard never rolled back; journal: %+v", g.Journal)
	}
	// After the rollback the spawn loop must be broken: pods stop growing.
	count := func() int {
		n := 0
		for _, po := range cl.Client("probe").List(spec.KindPod, "") {
			if po.(*spec.Pod).Active() {
				n++
			}
		}
		return n
	}
	before := count()
	cl.Loop.RunUntil(cl.Loop.Now() + 20*time.Second)
	after := count()
	if after > before+4 {
		t.Fatalf("pods still growing after rollback: %d → %d", before, after)
	}
	// The cluster must still be operational.
	if !cl.ControlPlaneResponsive() {
		t.Fatal("control plane not responsive after mitigation")
	}
}

func TestGuardDisabledOnlyJournals(t *testing.T) {
	cl := guardedCluster(t, 3)
	cl.Guard().SetEnabled(false)
	injector := inject.New(cl.Loop)
	cl.AttachInjector(injector)

	driver := workload.NewDriver(cl, workload.Deploy)
	driver.Setup()
	injector.Arm(inject.Injection{
		Channel: inject.ChannelStore, Kind: spec.KindReplicaSet,
		FieldPath: "spec.template.labels[app]",
		Type:      inject.SetValue, Value: "mislabeled",
		Occurrence: 2,
	})
	driver.Run()
	cl.Loop.RunUntil(cl.Loop.Now() + 40*time.Second)

	g := cl.Guard()
	if g.Rollbacks() != 0 {
		t.Fatal("disabled guard still rolled back")
	}
	flagged := false
	for _, ch := range g.Journal {
		if ch.RolledBack {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("disabled guard did not even flag the degradation")
	}
}
