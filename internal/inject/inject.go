// Package inject implements Mutiny, the fault/error injector at the heart of
// the paper: it tampers with the serialized messages exchanged between
// components and the data store, altering the current or desired cluster
// state (§IV-A).
//
// Every injection is characterized by three attributes:
//
//   - where: a communication channel (apiserver→store, or component→
//     apiserver), a resource kind, and either a field path or the
//     serialization bytes of the message;
//   - what: a fault model — bit-flip, data-type set, or message drop;
//   - when: the occurrence index of messages related to the same resource
//     instance, counted from injector arming.
//
// Exactly one fault is injected per experiment. The injector also measures
// activation: an injection counts as activated when the injected resource
// instance is requested (read, listed, or watched) after the injection.
package inject

import (
	"fmt"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Channel selects which communication path the injection targets.
type Channel int

// Channels.
const (
	// ChannelStore is the apiserver→store path: tampering here bypasses all
	// validation and becomes the agreed cluster state (the main campaign).
	ChannelStore Channel = iota + 1
	// ChannelRequest is the component→apiserver path: tampering here faces
	// authentication, validation and admission (the §V-C4 propagation
	// experiments).
	ChannelRequest
	// ChannelWatch is the apiserver→component watch stream feeding the
	// informer-style readiness pipeline (workload driver, controllers,
	// scheduler, data plane). Tampering here never touches the agreed
	// cluster state: a dropped event starves the subscribers and a
	// corrupted event shows them a state the store never held — the
	// watch-channel staleness fault family. How long the staleness lasts
	// depends on the subscriber: Reflector-backed consumers (driver,
	// application client, controllers, scheduler) repair at their next
	// resync re-list, while raw watchers with no re-list (the netsim data
	// plane, the kubelets) stay stale for the rest of the experiment —
	// exactly the asymmetry that makes the channel an interesting target.
	ChannelWatch
)

func (c Channel) String() string {
	switch c {
	case ChannelStore:
		return "apiserver→etcd"
	case ChannelRequest:
		return "component→apiserver"
	case ChannelWatch:
		return "apiserver→watch"
	default:
		return fmt.Sprintf("Channel(%d)", int(c))
	}
}

// FaultType is the fault model (what).
type FaultType int

// Fault models.
const (
	// BitFlip flips one bit of a field value: for integers bit Bit, for
	// strings the least-significant bit of the character at CharIndex, for
	// booleans an inversion.
	BitFlip FaultType = iota + 1
	// SetValue replaces the field value with Value (data-type set: extreme,
	// invalid, or semantically chosen wrong values).
	SetValue
	// DropMessage discards the whole message; the sender observes success.
	DropMessage
	// FlipProtoByte flips a random bit of the serialized message, exercising
	// the serialization protocol (undecodable or field-shifted objects).
	FlipProtoByte

	// The control-plane fault axes are time-triggered rather than
	// message-triggered: they fire at Injection.After on the simulation clock
	// and act on the control plane itself instead of a message in flight.

	// FaultAPIServerCrash kills apiserver replica Replica; with a Heal window
	// the replica restarts after it. Surviving replicas keep serving and
	// clients fail over to them.
	FaultAPIServerCrash
	// FaultMasterPartition splits the control-plane nodes: replica Replica is
	// isolated from the rest (its store replica loses quorum, its apiserver
	// serves stale reads and fails writes). Heal rejoins it.
	FaultMasterPartition
	// FaultStoreLoss drops the backing store replica of apiserver Replica —
	// disk loss under one etcd member. With a Heal window the member is
	// restored from a snapshot of a surviving replica; without one the loss
	// is permanent and quorum reads decide visibility.
	FaultStoreLoss

	// The admission fault axes are time-triggered like the control-plane
	// faults, but act on the admission webhook chain: Replica indexes the
	// target hook, and Policy (when set) fixes the chain-wide failure policy
	// for the experiment — the fail-open vs fail-closed contrast the
	// admission campaign measures.

	// FaultWebhookDown crashes the backend process of admission hook Replica;
	// with a Heal window it restarts after it. Fail-closed hooks turn the
	// downtime into write rejections, fail-open hooks into skipped (and
	// shadow-counted) policy evaluation.
	FaultWebhookDown
	// FaultWebhookLatency slows admission hook Replica past its call timeout,
	// so every call becomes a transient failure — the slow-webhook outage,
	// behaviorally like FaultWebhookDown but reached through the latency/
	// timeout/retry machinery.
	FaultWebhookLatency
	// FaultWebhookSelector misconfigures admission hook Replica's selector so
	// it matches nothing (the wrong-selector configuration defect): the
	// policy silently stops applying under either failure policy.
	FaultWebhookSelector
	// FaultWebhookPolicy drops admission hook Replica's failurePolicy stanza
	// (the missing-default configuration defect) and takes its backend down:
	// the platform default — Ignore, fail-open — silently replaces what the
	// operator believed was a fail-closed hook.
	FaultWebhookPolicy

	// The topology fault axes are time-triggered like the control-plane
	// faults, but act on the zoned cloud-edge network (cluster.Config.Zones
	// >= 2): Injection.Replica indexes the target zone.

	// FaultEdgeLinkFlap flaps the target zone's uplink — down, up, down —
	// on a short period until Heal: the lossy last-mile link of an edge
	// site. The flap phases are far shorter than the heartbeat grace period,
	// so the disruption stays a pure data-plane phenomenon.
	FaultEdgeLinkFlap
	// FaultZonePartition severs the target zone's uplink outright: cross-
	// zone traffic times out and the zone's kubelets lose the control plane
	// until Heal, while the zone keeps serving its own clients.
	FaultZonePartition
	// FaultNodeKill crashes every node of the target zone at once — the
	// mass node-kill (correlated infrastructure failure) axis. Heal brings
	// the nodes back.
	FaultNodeKill
)

func (t FaultType) String() string {
	switch t {
	case BitFlip:
		return "bit-flip"
	case SetValue:
		return "value-set"
	case DropMessage:
		return "drop"
	case FlipProtoByte:
		return "proto-byte"
	case FaultAPIServerCrash:
		return "apiserver-crash"
	case FaultMasterPartition:
		return "master-partition"
	case FaultStoreLoss:
		return "store-loss"
	case FaultWebhookDown:
		return "webhook-down"
	case FaultWebhookLatency:
		return "webhook-latency"
	case FaultWebhookSelector:
		return "webhook-selector"
	case FaultWebhookPolicy:
		return "webhook-policy"
	case FaultEdgeLinkFlap:
		return "edge-link-flap"
	case FaultZonePartition:
		return "zone-partition"
	case FaultNodeKill:
		return "node-kill"
	default:
		return fmt.Sprintf("FaultType(%d)", int(t))
	}
}

// Injection is one armed fault: where, what, and when.
type Injection struct {
	// Where.
	Channel Channel
	Kind    spec.Kind
	// SourcePrefix restricts ChannelRequest injections to messages sent by
	// components whose identity starts with this prefix (e.g. "kcm",
	// "scheduler", "kubelet-").
	SourcePrefix string
	// FieldPath selects the field for BitFlip/SetValue.
	FieldPath string

	// What.
	Type FaultType
	// Bit is the zero-based bit index for integer bit flips (the paper
	// flips the 1st and 5th bits: indices 0 and 4).
	Bit int
	// CharIndex is the character position for string bit flips.
	CharIndex int
	// Value is the replacement for SetValue ("", int64(0), false, or a
	// semantic wrong value).
	Value any

	// When: the occurrence index (1-based) of messages related to the same
	// resource instance.
	Occurrence int

	// Control-plane faults (FaultAPIServerCrash, FaultMasterPartition,
	// FaultStoreLoss) are located and timed by the fields below instead of
	// kind/field/occurrence.

	// Replica is the control-plane replica index the fault targets. Admission
	// faults reuse it as the index of the target webhook hook.
	Replica int
	// Policy, for admission faults, overrides the chain-wide failure policy
	// ("Fail" or "Ignore") for the experiment, so one bootstrapped cluster
	// serves both sides of the fail-open vs fail-closed contrast. Empty keeps
	// the configured per-hook policies.
	Policy string
	// After is the simulation time (from arming) at which the fault fires.
	After time.Duration
	// Heal, when positive, is the simulation time (from arming) at which the
	// fault is undone: the crashed apiserver restarts, the partition heals,
	// the lost store replica is restored. Zero means the fault persists for
	// the rest of the experiment.
	Heal time.Duration
}

// Label renders a compact human-readable description.
func (in Injection) Label() string {
	switch in.Type {
	case BitFlip:
		return fmt.Sprintf("%s %s %s bit-flip(bit=%d,char=%d) occ=%d", in.Channel, in.Kind, in.FieldPath, in.Bit, in.CharIndex, in.Occurrence)
	case SetValue:
		return fmt.Sprintf("%s %s %s set(%v) occ=%d", in.Channel, in.Kind, in.FieldPath, in.Value, in.Occurrence)
	case DropMessage:
		return fmt.Sprintf("%s %s drop occ=%d", in.Channel, in.Kind, in.Occurrence)
	case FlipProtoByte:
		return fmt.Sprintf("%s %s proto-byte occ=%d", in.Channel, in.Kind, in.Occurrence)
	case FaultAPIServerCrash, FaultMasterPartition, FaultStoreLoss:
		if in.Heal > 0 {
			return fmt.Sprintf("control-plane %s replica=%d after=%v heal=%v", in.Type, in.Replica, in.After, in.Heal)
		}
		return fmt.Sprintf("control-plane %s replica=%d after=%v", in.Type, in.Replica, in.After)
	case FaultWebhookDown, FaultWebhookLatency, FaultWebhookSelector, FaultWebhookPolicy:
		policy := in.Policy
		if policy == "" {
			policy = "configured"
		}
		if in.Heal > 0 {
			return fmt.Sprintf("admission %s hook=%d policy=%s after=%v heal=%v", in.Type, in.Replica, policy, in.After, in.Heal)
		}
		return fmt.Sprintf("admission %s hook=%d policy=%s after=%v", in.Type, in.Replica, policy, in.After)
	case FaultEdgeLinkFlap, FaultZonePartition, FaultNodeKill:
		if in.Heal > 0 {
			return fmt.Sprintf("topology %s zone=%v after=%v heal=%v", in.Type, in.Value, in.After, in.Heal)
		}
		return fmt.Sprintf("topology %s zone=%v after=%v", in.Type, in.Value, in.After)
	default:
		return fmt.Sprintf("%s %s ? occ=%d", in.Channel, in.Kind, in.Occurrence)
	}
}

// IsControlPlane reports whether t is a time-triggered control-plane fault
// rather than a message-channel fault.
func (t FaultType) IsControlPlane() bool {
	switch t {
	case FaultAPIServerCrash, FaultMasterPartition, FaultStoreLoss:
		return true
	}
	return false
}

// IsAdmission reports whether t is a time-triggered admission-chain fault.
func (t FaultType) IsAdmission() bool {
	switch t {
	case FaultWebhookDown, FaultWebhookLatency, FaultWebhookSelector, FaultWebhookPolicy:
		return true
	}
	return false
}

// IsTopology reports whether t is a time-triggered cloud-edge topology fault.
func (t FaultType) IsTopology() bool {
	switch t {
	case FaultEdgeLinkFlap, FaultZonePartition, FaultNodeKill:
		return true
	}
	return false
}

// Report describes what the injector actually did.
type Report struct {
	Fired     bool
	FiredAt   time.Duration
	Instance  string // namespace/name of the injected instance
	StoreKey  string
	Activated bool
	// OldValue and NewValue hold the field values around a field fault.
	OldValue any
	NewValue any
	// Healed and HealedAt record the undoing of a control-plane fault.
	Healed   bool
	HealedAt time.Duration
}

// ControlPlane is what a control-plane fault needs from the cluster: crash and
// restart one apiserver replica, partition one master from the rest and heal
// the split, drop and restore one backing store replica. Implemented by
// *cluster.Cluster (the injector cannot import it — the cluster imports the
// injector).
type ControlPlane interface {
	CrashAPIServer(replica int)
	RestartAPIServer(replica int)
	PartitionMasters(isolated int)
	HealMasters()
	DropStoreReplica(replica int)
	RestoreStoreReplica(replica int)
	Replicas() int
}

// Topology is what a topology fault needs from the cluster: enumerate the
// zones, cut and restore zone uplinks (data-plane only for the flap, with the
// zone's kubelets for the partition), and crash and recover a whole zone's
// nodes. Implemented by *cluster.Cluster for the same import-direction reason
// as ControlPlane.
type Topology interface {
	Zones() int
	ZoneName(i int) string
	PartitionZone(zone string)
	HealZone(zone string)
	SetZoneLink(zone string, up bool)
	KillZoneNodes(zone string)
	RecoverZoneNodes(zone string)
}

// Injector arms one injection and implements the API server hooks.
type Injector struct {
	loop *sim.Loop

	armed  *Injection
	counts map[string]int
	report Report

	cp          ControlPlane
	adm         *apiserver.AdmissionChain
	topo        Topology
	faultTimers []sim.Timer
}

// New creates an idle injector.
func New(loop *sim.Loop) *Injector {
	return &Injector{loop: loop, counts: make(map[string]int)}
}

// AttachTo installs the injector's hooks on the API server. It must be
// called once per server; arming happens separately.
func (j *Injector) AttachTo(srv *apiserver.Server) {
	srv.SetStoreWriteHook(j.StoreHook())
	srv.SetRequestHook(j.RequestHook())
	srv.SetRequestWireGate(j.WantsRequestWire)
	srv.SetWatchHook(j.WatchHook())
	srv.SetWatchGate(j.WantsWatchChannel)
	srv.SetAccessHook(j.AccessHook())
}

// WantsRequestWire reports whether the currently armed injection targets the
// component→apiserver channel and therefore needs the serialized request
// bytes. The API server consults it (as its request-wire gate) to skip the
// per-request encode/decode round-trip for store-channel campaigns, where the
// request hook would pass every message through untouched.
func (j *Injector) WantsRequestWire() bool {
	return j.armed != nil && j.armed.Channel == ChannelRequest
}

// WantsWatchChannel reports whether the currently armed injection targets the
// apiserver→component watch stream. The API server consults it (as its watch
// gate) so the batched fan-out stays hook- and encode-free whenever the
// campaign is armed on another channel — the watch path is on every
// experiment's hot path, the fault on it is not.
func (j *Injector) WantsWatchChannel() bool {
	return j.armed != nil && j.armed.Channel == ChannelWatch
}

// StoreHook returns the apiserver→store channel hook, for callers that need
// to chain it with other hooks (e.g. the critical-field guard).
func (j *Injector) StoreHook() apiserver.Hook {
	return func(m *apiserver.Message) apiserver.Action {
		return j.intercept(ChannelStore, m)
	}
}

// RequestHook returns the component→apiserver channel hook.
func (j *Injector) RequestHook() apiserver.Hook {
	return func(m *apiserver.Message) apiserver.Action {
		return j.intercept(ChannelRequest, m)
	}
}

// WatchHook returns the apiserver→component watch-channel hook. Occurrence
// counting follows the same per-instance rule as the other channels, counting
// watch events for the instance from arming; Drop loses the notification,
// field and proto-byte faults corrupt what the subscribers decode.
func (j *Injector) WatchHook() apiserver.Hook {
	return func(m *apiserver.Message) apiserver.Action {
		return j.intercept(ChannelWatch, m)
	}
}

// AccessHook returns the activation-tracking hook.
func (j *Injector) AccessHook() func(key string) {
	return func(key string) {
		if j.report.Fired && key == j.report.StoreKey {
			j.report.Activated = true
		}
	}
}

// AttachControlPlane gives the injector the handle the control-plane fault
// axes act on. Message-channel campaigns never need it.
func (j *Injector) AttachControlPlane(cp ControlPlane) { j.cp = cp }

// AttachAdmission gives the injector the admission chain the webhook fault
// axes act on. Campaigns without admission hooks never call it.
func (j *Injector) AttachAdmission(chain *apiserver.AdmissionChain) { j.adm = chain }

// AttachTopology gives the injector the handle the topology fault axes act
// on. Flat clusters never call it.
func (j *Injector) AttachTopology(t Topology) { j.topo = t }

// Arm programs the injection; the next matching message occurrence fires it.
// Mirrors the campaign manager "configuring the injection trigger by sending
// the triplet (where, when, what) ... to the injected component".
// Control-plane faults are timed, not message-matched: Arm schedules them on
// the simulation clock at After (and their heal at Heal).
func (j *Injector) Arm(in Injection) {
	cp := in
	if cp.Occurrence <= 0 {
		cp.Occurrence = 1
	}
	j.armed = &cp
	j.counts = make(map[string]int)
	j.report = Report{}
	if cp.Type.IsControlPlane() {
		j.armControlPlane(&cp)
	}
	if cp.Type.IsAdmission() {
		j.armAdmission(&cp)
	}
	if cp.Type.IsTopology() {
		j.armTopology(&cp)
	}
}

// Disarm cancels any pending injection (the report is preserved).
func (j *Injector) Disarm() {
	j.armed = nil
	for _, t := range j.faultTimers {
		t.Stop()
	}
	j.faultTimers = nil
}

func (j *Injector) armControlPlane(in *Injection) {
	if j.cp == nil {
		return // no control plane attached (single-server assembly)
	}
	j.faultTimers = append(j.faultTimers, j.loop.After(in.After, func() {
		if j.armed != in {
			return
		}
		j.fireControlPlane(in)
	}))
	if in.Heal > 0 {
		j.faultTimers = append(j.faultTimers, j.loop.After(in.Heal, func() {
			if j.armed != in || !j.report.Fired {
				return
			}
			j.healControlPlane(in)
		}))
	}
}

func (j *Injector) fireControlPlane(in *Injection) {
	replica := in.Replica % j.cp.Replicas()
	switch in.Type {
	case FaultAPIServerCrash:
		j.cp.CrashAPIServer(replica)
		j.report.Instance = fmt.Sprintf("control-plane/apiserver-%d", replica)
	case FaultMasterPartition:
		j.cp.PartitionMasters(replica)
		j.report.Instance = fmt.Sprintf("control-plane/master-%d", replica)
	case FaultStoreLoss:
		j.cp.DropStoreReplica(replica)
		j.report.Instance = fmt.Sprintf("control-plane/store-%d", replica)
	default:
		return
	}
	j.report.Fired = true
	j.report.FiredAt = j.loop.Now()
	// The fault acts on the control plane itself, not one resource instance:
	// it is activated by construction the moment it fires.
	j.report.Activated = true
}

func (j *Injector) healControlPlane(in *Injection) {
	replica := in.Replica % j.cp.Replicas()
	switch in.Type {
	case FaultAPIServerCrash:
		j.cp.RestartAPIServer(replica)
	case FaultMasterPartition:
		j.cp.HealMasters()
	case FaultStoreLoss:
		j.cp.RestoreStoreReplica(replica)
	default:
		return
	}
	j.report.Healed = true
	j.report.HealedAt = j.loop.Now()
}

// webhookFaultDelay is the extra latency FaultWebhookLatency adds to the
// target hook's backend — far past the 1s hook call timeout, so every call
// times out for as long as the fault is live.
const webhookFaultDelay = 5 * time.Second

func (j *Injector) armAdmission(in *Injection) {
	if j.adm == nil {
		return // no admission chain configured
	}
	// The policy override is part of the experiment's configuration, not of
	// the fault: it applies from arming, so the chain is already in the
	// experiment's regime when the fault fires (and stays inert while every
	// hook is healthy).
	j.adm.SetFailurePolicy(apiserver.FailurePolicy(in.Policy))
	j.faultTimers = append(j.faultTimers, j.loop.After(in.After, func() {
		if j.armed != in {
			return
		}
		j.fireAdmission(in)
	}))
	if in.Heal > 0 {
		j.faultTimers = append(j.faultTimers, j.loop.After(in.Heal, func() {
			if j.armed != in || !j.report.Fired {
				return
			}
			j.healAdmission(in)
		}))
	}
}

func (j *Injector) fireAdmission(in *Injection) {
	hook := j.adm.Idx(in.Replica)
	switch in.Type {
	case FaultWebhookDown:
		j.adm.CrashWebhook(hook)
	case FaultWebhookLatency:
		j.adm.DelayWebhook(hook, webhookFaultDelay)
	case FaultWebhookSelector:
		j.adm.BreakSelector(hook)
	case FaultWebhookPolicy:
		j.adm.DropPolicy(hook)
	default:
		return
	}
	j.report.Instance = "admission/" + j.adm.HookName(hook)
	j.report.Fired = true
	j.report.FiredAt = j.loop.Now()
	// Like the control-plane faults, the target is the platform itself:
	// activated by construction when it fires.
	j.report.Activated = true
}

func (j *Injector) healAdmission(in *Injection) {
	hook := j.adm.Idx(in.Replica)
	switch in.Type {
	case FaultWebhookDown:
		j.adm.RestoreWebhook(hook)
	case FaultWebhookLatency:
		j.adm.ClearWebhookDelay(hook)
	case FaultWebhookSelector:
		j.adm.RestoreSelector(hook)
	case FaultWebhookPolicy:
		j.adm.RestorePolicy(hook)
	default:
		return
	}
	j.report.Healed = true
	j.report.HealedAt = j.loop.Now()
}

// edgeFlapPeriod is the half-period of the edge-link flap: the uplink toggles
// down, up, down every period until Heal. Far below the node-lifecycle grace
// period, so the flap never escalates to taints or eviction — the disruption
// stays a pure data-plane phenomenon.
const edgeFlapPeriod = 2 * time.Second

func (j *Injector) armTopology(in *Injection) {
	if j.topo == nil {
		return // flat cluster: no topology attached
	}
	j.faultTimers = append(j.faultTimers, j.loop.After(in.After, func() {
		if j.armed != in {
			return
		}
		j.fireTopology(in)
	}))
	if in.Heal > 0 {
		j.faultTimers = append(j.faultTimers, j.loop.After(in.Heal, func() {
			if j.armed != in || !j.report.Fired {
				return
			}
			j.healTopology(in)
		}))
	}
}

func (j *Injector) fireTopology(in *Injection) {
	zone := j.topo.ZoneName(in.Replica % j.topo.Zones())
	switch in.Type {
	case FaultEdgeLinkFlap:
		j.topo.SetZoneLink(zone, false)
		j.flapZoneLink(in, zone, true)
	case FaultZonePartition:
		j.topo.PartitionZone(zone)
	case FaultNodeKill:
		j.topo.KillZoneNodes(zone)
	default:
		return
	}
	j.report.Instance = "topology/" + zone
	j.report.Fired = true
	j.report.FiredAt = j.loop.Now()
	// The fault acts on the platform's network, not one resource instance:
	// activated by construction the moment it fires.
	j.report.Activated = true
}

// flapZoneLink schedules the next phase of the edge-link flap: the uplink
// toggles every edgeFlapPeriod until the fault is healed or disarmed.
func (j *Injector) flapZoneLink(in *Injection, zone string, up bool) {
	j.faultTimers = append(j.faultTimers, j.loop.After(edgeFlapPeriod, func() {
		if j.armed != in || j.report.Healed {
			return
		}
		j.topo.SetZoneLink(zone, up)
		j.flapZoneLink(in, zone, !up)
	}))
}

func (j *Injector) healTopology(in *Injection) {
	zone := j.topo.ZoneName(in.Replica % j.topo.Zones())
	switch in.Type {
	case FaultEdgeLinkFlap:
		j.topo.SetZoneLink(zone, true)
	case FaultZonePartition:
		j.topo.HealZone(zone)
	case FaultNodeKill:
		j.topo.RecoverZoneNodes(zone)
	default:
		return
	}
	j.report.Healed = true
	j.report.HealedAt = j.loop.Now()
}

// Report returns what happened.
func (j *Injector) Report() Report { return j.report }

func (j *Injector) intercept(ch Channel, m *apiserver.Message) apiserver.Action {
	in := j.armed
	if in == nil || in.Type.IsControlPlane() || in.Type.IsAdmission() || in.Type.IsTopology() || j.report.Fired || in.Channel != ch || in.Kind != m.Kind {
		return apiserver.Pass
	}
	if ch == ChannelRequest && in.SourcePrefix != "" && !hasPrefix(m.Source, in.SourcePrefix) {
		return apiserver.Pass
	}
	instance := m.Namespace + "/" + m.Name
	j.counts[instance]++
	if j.counts[instance] != in.Occurrence {
		return apiserver.Pass
	}

	switch in.Type {
	case DropMessage:
		j.fire(m, instance)
		return apiserver.Drop
	case FlipProtoByte:
		if len(m.Data) == 0 {
			return apiserver.Pass
		}
		off := j.loop.Rand().Intn(len(m.Data))
		bit := j.loop.Rand().Intn(8)
		m.Data[off] ^= 1 << bit
		m.Tampered = true
		j.fire(m, instance)
		return apiserver.Pass
	case BitFlip, SetValue:
		if j.tamperField(in, m) {
			j.fire(m, instance)
		}
		return apiserver.Pass
	default:
		return apiserver.Pass
	}
}

// tamperField decodes the message, mutates the target field, and re-encodes
// — exactly the paper's implementation ("Mutiny de-serializes the message,
// modifies the content, and re-serializes it, replacing the original").
func (j *Injector) tamperField(in *Injection, m *apiserver.Message) bool {
	obj := spec.New(m.Kind)
	if obj == nil || len(m.Data) == 0 {
		return false
	}
	if err := codec.Unmarshal(m.Data, obj); err != nil {
		return false
	}
	old, err := codec.Get(obj, in.FieldPath)
	if err != nil {
		// This instance does not carry the field (e.g. a different shape);
		// don't consume the occurrence — future instances may match.
		j.counts[m.Namespace+"/"+m.Name]--
		return false
	}
	var newVal any
	switch in.Type {
	case BitFlip:
		newVal = flipValue(old, in.Bit, in.CharIndex)
	case SetValue:
		newVal = in.Value
	}
	if newVal == nil {
		return false
	}
	if err := codec.Set(obj, in.FieldPath, newVal); err != nil {
		return false
	}
	data, err := codec.Marshal(obj)
	if err != nil {
		return false
	}
	m.Data = data
	m.Tampered = true
	j.report.OldValue = old
	j.report.NewValue = newVal
	return true
}

func (j *Injector) fire(m *apiserver.Message, instance string) {
	j.report.Fired = true
	j.report.FiredAt = j.loop.Now()
	j.report.Instance = instance
	j.report.StoreKey = spec.Key(m.Kind, m.Namespace, m.Name)
}

// flipValue applies the paper's bit-flip models per field type: integers
// get bit flips at the given index; strings get the least-significant bit of
// the chosen character flipped (still a character, hence usually still a
// valid string); booleans are inverted.
func flipValue(old any, bit, charIndex int) any {
	switch v := old.(type) {
	case int64:
		return v ^ (1 << uint(bit))
	case string:
		if charIndex >= len(v) {
			if len(v) == 0 {
				// Flipping a bit of an empty string yields a one-character
				// string, like flipping the terminating byte would.
				return string(rune(1))
			}
			charIndex = len(v) - 1
		}
		b := []byte(v)
		b[charIndex] ^= 1
		return string(b)
	case bool:
		return !v
	default:
		return nil
	}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
