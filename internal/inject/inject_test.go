package inject

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

func setup(t *testing.T) (*sim.Loop, *apiserver.Server, *Injector) {
	t.Helper()
	loop := sim.NewLoop(1)
	st := store.New(loop, nil)
	srv := apiserver.New(loop, st, nil)
	j := New(loop)
	j.AttachTo(srv)
	return loop, srv, j
}

func pod(name string) *spec.Pod {
	return &spec.Pod{
		Metadata: spec.ObjectMeta{
			Name: name, Namespace: spec.DefaultNamespace,
			Labels: map[string]string{"app": "web"},
		},
		Spec: spec.PodSpec{
			Containers: []spec.Container{{
				Name: "c", Image: "registry.local/web:1", Command: []string{"serve"},
				RequestsMilliCPU: 100, RequestsMemMB: 64, Port: 8080,
			}},
			Priority: 16,
		},
	}
}

func TestBitFlipIntField(t *testing.T) {
	loop, srv, j := setup(t)
	c := srv.ClientFor("kcm")
	j.Arm(Injection{
		Channel: ChannelStore, Kind: spec.KindPod,
		FieldPath: "spec.priority", Type: BitFlip, Bit: 4, Occurrence: 1,
	})
	if err := c.Create(pod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	rep := j.Report()
	if !rep.Fired {
		t.Fatal("injection did not fire")
	}
	if rep.OldValue.(int64) != 16 || rep.NewValue.(int64) != 0 {
		t.Fatalf("flip 16^(1<<4): old=%v new=%v", rep.OldValue, rep.NewValue)
	}
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.(*spec.Pod).Spec.Priority; got != 0 {
		t.Fatalf("stored priority = %d, want 0 (corrupted)", got)
	}
}

func TestBitFlipStringField(t *testing.T) {
	loop, srv, j := setup(t)
	c := srv.ClientFor("kcm")
	j.Arm(Injection{
		Channel: ChannelStore, Kind: spec.KindPod,
		FieldPath: "metadata.labels[app]", Type: BitFlip, CharIndex: 0, Occurrence: 1,
	})
	if err := c.Create(pod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	got := obj.(*spec.Pod).Metadata.Labels["app"]
	if got != "`eb" && got == "web" {
		t.Fatalf("label not corrupted: %q", got)
	}
	// 'w' (0x77) with LSB flipped is 'v' (0x76).
	if got != "veb" {
		t.Fatalf("label = %q, want %q", got, "veb")
	}
}

func TestBoolInversionAndSetValue(t *testing.T) {
	loop, srv, j := setup(t)
	c := srv.ClientFor("kcm")
	if err := c.Create(pod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)

	j.Arm(Injection{
		Channel: ChannelStore, Kind: spec.KindPod,
		FieldPath: "status.ready", Type: BitFlip, Occurrence: 1,
	})
	obj, _ := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	p := spec.CloneForWriteAs(obj.(*spec.Pod))
	p.Status.Ready = true
	if err := c.UpdateStatus(p); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(2 * time.Second)
	obj, _ = c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if obj.(*spec.Pod).Status.Ready {
		t.Fatal("bool inversion did not invert ready=true to false")
	}

	j.Arm(Injection{
		Channel: ChannelStore, Kind: spec.KindPod,
		FieldPath: "spec.containers[0].image", Type: SetValue, Value: "", Occurrence: 1,
	})
	obj, _ = c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	p = spec.CloneForWriteAs(obj.(*spec.Pod))
	p.Metadata.Labels["touch"] = "1"
	if err := c.Update(p); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(3 * time.Second)
	obj, _ = c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if obj.(*spec.Pod).Spec.Containers[0].Image != "" {
		t.Fatal("value-set did not empty the image")
	}
}

func TestOccurrenceIndexCounting(t *testing.T) {
	loop, srv, j := setup(t)
	c := srv.ClientFor("kcm")
	j.Arm(Injection{
		Channel: ChannelStore, Kind: spec.KindPod,
		FieldPath: "metadata.labels[app]", Type: SetValue, Value: "corrupted", Occurrence: 3,
	})
	if err := c.Create(pod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	for i := 0; i < 2; i++ {
		obj, _ := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
		p := spec.CloneForWriteAs(obj.(*spec.Pod))
		p.Metadata.Annotations = map[string]string{"rev": string(rune('a' + i))}
		if err := c.Update(p); err != nil {
			t.Fatal(err)
		}
		loop.RunUntil(loop.Now() + time.Second)
	}
	rep := j.Report()
	if !rep.Fired {
		t.Fatal("occurrence-3 injection did not fire on the 3rd message")
	}
	obj, _ := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if obj.(*spec.Pod).Metadata.Labels["app"] != "corrupted" {
		t.Fatal("3rd-occurrence injection not visible in state")
	}
}

func TestOccurrenceCountsPerInstance(t *testing.T) {
	loop, srv, j := setup(t)
	c := srv.ClientFor("kcm")
	j.Arm(Injection{
		Channel: ChannelStore, Kind: spec.KindPod,
		FieldPath: "metadata.labels[app]", Type: SetValue, Value: "x", Occurrence: 2,
	})
	// Two different instances, one message each: occurrence 2 never reached.
	if err := c.Create(pod("web-1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Create(pod("web-2")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	if j.Report().Fired {
		t.Fatal("occurrence counter leaked across instances")
	}
}

func TestDropMessage(t *testing.T) {
	loop, srv, j := setup(t)
	c := srv.ClientFor("kcm")
	j.Arm(Injection{Channel: ChannelStore, Kind: spec.KindPod, Type: DropMessage, Occurrence: 1})
	if err := c.Create(pod("web-1")); err != nil {
		t.Fatalf("dropped create returned error %v (must look successful)", err)
	}
	loop.RunUntil(time.Second)
	if !j.Report().Fired {
		t.Fatal("drop did not fire")
	}
	if _, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); err == nil {
		t.Fatal("dropped write reached the store")
	}
}

func TestProtoByteFlip(t *testing.T) {
	// Across seeds, byte flips must either corrupt the stored object
	// (undecodable → deleted) or leave it decodable-but-possibly-wrong;
	// never an injector error.
	decodable, deleted := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		loop := sim.NewLoop(seed)
		st := store.New(loop, nil)
		srv := apiserver.New(loop, st, nil)
		j := New(loop)
		j.AttachTo(srv)
		c := srv.ClientFor("kcm")
		j.Arm(Injection{Channel: ChannelStore, Kind: spec.KindPod, Type: FlipProtoByte, Occurrence: 1})
		if err := c.Create(pod("web-1")); err != nil {
			t.Fatal(err)
		}
		loop.RunUntil(2 * time.Second)
		if !j.Report().Fired {
			t.Fatal("proto-byte injection did not fire")
		}
		if _, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); err == nil {
			decodable++
		} else {
			deleted++
		}
	}
	if decodable == 0 || deleted == 0 {
		t.Fatalf("proto flips: decodable=%d deleted=%d; want both behaviours", decodable, deleted)
	}
}

func TestRequestChannelWithSourceFilter(t *testing.T) {
	loop, srv, j := setup(t)
	kcm := srv.ClientFor("kcm")
	kubelet := srv.ClientFor("kubelet-worker-0")
	j.Arm(Injection{
		Channel: ChannelRequest, Kind: spec.KindPod, SourcePrefix: "kubelet-",
		FieldPath: "metadata.labels[app]", Type: SetValue, Value: "evil", Occurrence: 1,
	})
	// kcm's message must pass untouched.
	if err := kcm.Create(pod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	if j.Report().Fired {
		t.Fatal("injection fired for non-matching source")
	}
	if err := kubelet.Create(pod("web-2")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(2 * time.Second)
	if !j.Report().Fired {
		t.Fatal("injection did not fire for matching source")
	}
	obj, _ := kcm.Get(spec.KindPod, spec.DefaultNamespace, "web-2")
	if obj.(*spec.Pod).Metadata.Labels["app"] != "evil" {
		t.Fatal("request-channel tampering did not propagate (valid value must pass validation)")
	}
}

func TestSingleInjectionPerArm(t *testing.T) {
	loop, srv, j := setup(t)
	c := srv.ClientFor("kcm")
	j.Arm(Injection{
		Channel: ChannelStore, Kind: spec.KindPod,
		FieldPath: "metadata.labels[app]", Type: SetValue, Value: "bad", Occurrence: 1,
	})
	if err := c.Create(pod("web-1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Create(pod("web-2")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	obj, _ := c.Get(spec.KindPod, spec.DefaultNamespace, "web-2")
	if obj.(*spec.Pod).Metadata.Labels["app"] != "web" {
		t.Fatal("second instance was also injected; exactly one fault per experiment")
	}
}

func TestActivationTracking(t *testing.T) {
	loop, srv, j := setup(t)
	c := srv.ClientFor("kcm")
	j.Arm(Injection{
		Channel: ChannelStore, Kind: spec.KindPod,
		FieldPath: "metadata.labels[app]", Type: SetValue, Value: "bad", Occurrence: 1,
	})
	if err := c.Create(pod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	// The watch dispatch of the write itself already touches the key, so
	// the injection should be activated by now.
	if !j.Report().Activated {
		if _, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); err != nil {
			t.Fatal(err)
		}
		if !j.Report().Activated {
			t.Fatal("activation not detected after read")
		}
	}
}

func TestFieldPathMissingDoesNotConsumeOccurrence(t *testing.T) {
	loop, srv, j := setup(t)
	c := srv.ClientFor("kcm")
	j.Arm(Injection{
		Channel: ChannelStore, Kind: spec.KindPod,
		FieldPath: "spec.containers[3].image", // index out of range for these pods
		Type:      BitFlip, Occurrence: 1,
	})
	if err := c.Create(pod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)
	if j.Report().Fired {
		t.Fatal("fired on a message without the target field")
	}
}

func TestRecorderInventoriesFields(t *testing.T) {
	loop, srv, _ := setup(t)
	rec := NewRecorder()
	srv.SetStoreWriteHook(rec.Hook())
	c := srv.ClientFor("kcm")
	if err := c.Create(pod("web-1")); err != nil {
		t.Fatal(err)
	}
	svc := &spec.Service{
		Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace},
		Spec: spec.ServiceSpec{
			Selector: map[string]string{"app": "web"},
			Ports:    []spec.ServicePort{{Port: 80, TargetPort: 8080}},
		},
	}
	if err := c.Create(svc); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(time.Second)

	fields := rec.Fields()
	want := map[string]bool{
		"Pod\x00metadata.name":                false,
		"Pod\x00metadata.labels[app]":         false,
		"Pod\x00spec.containers[0].image":     false,
		"Service\x00spec.selector[app]":       false,
		"Service\x00spec.ports[0].targetPort": false,
		"Service\x00spec.clusterIP":           false,
	}
	for _, f := range fields {
		key := string(f.Kind) + "\x00" + f.Path
		if _, ok := want[key]; ok {
			want[key] = true
		}
		if f.MaxOccurrence < 1 {
			t.Fatalf("field %s has MaxOccurrence %d", f.Path, f.MaxOccurrence)
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("recorder missed field %q", key)
		}
	}
	if rec.MessageCount(spec.KindPod) != 1 || rec.MessageCount(spec.KindService) != 1 {
		t.Fatalf("message counts: pod=%d svc=%d", rec.MessageCount(spec.KindPod), rec.MessageCount(spec.KindService))
	}
}
