package inject

import (
	"sort"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/codec"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// RecordedField is one injectable leaf observed on the wire during a nominal
// (golden) run: the campaign generator derives experiments from these
// ("first, we record the fields of the resource instances sent to Etcd
// during the execution of a nominal orchestration workload").
type RecordedField struct {
	Kind      spec.Kind
	Path      string
	FieldKind codec.FieldKind
	// MaxOccurrence is the highest per-instance occurrence index at which
	// the field was observed; triggers beyond it would never fire.
	MaxOccurrence int
}

// Recorder observes the apiserver→store channel and inventories every field
// of every resource kind that crosses it.
type Recorder struct {
	fields map[string]*RecordedField // kind+"\x00"+path
	counts map[string]int            // kind+"\x00"+instance → occurrence
	kinds  map[spec.Kind]int         // messages observed per kind
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		fields: make(map[string]*RecordedField),
		counts: make(map[string]int),
		kinds:  make(map[spec.Kind]int),
	}
}

// Hook returns the apiserver hook that performs the recording.
func (r *Recorder) Hook() apiserver.Hook {
	return func(m *apiserver.Message) apiserver.Action {
		r.observe(m)
		return apiserver.Pass
	}
}

func (r *Recorder) observe(m *apiserver.Message) {
	r.kinds[m.Kind]++
	if len(m.Data) == 0 {
		return
	}
	obj := spec.New(m.Kind)
	if obj == nil {
		return
	}
	if err := codec.Unmarshal(m.Data, obj); err != nil {
		return
	}
	instKey := string(m.Kind) + "\x00" + m.Namespace + "/" + m.Name
	r.counts[instKey]++
	occ := r.counts[instKey]
	for _, f := range codec.Fields(obj) {
		key := string(m.Kind) + "\x00" + f.Path
		rec, ok := r.fields[key]
		if !ok {
			rec = &RecordedField{Kind: m.Kind, Path: f.Path, FieldKind: f.Kind}
			r.fields[key] = rec
		}
		if occ > rec.MaxOccurrence {
			rec.MaxOccurrence = occ
		}
	}
}

// Fields returns the recorded fields in deterministic order.
func (r *Recorder) Fields() []RecordedField {
	out := make([]RecordedField, 0, len(r.fields))
	for _, f := range r.fields {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// Kinds returns the kinds observed on the channel, in deterministic order.
func (r *Recorder) Kinds() []spec.Kind {
	out := make([]spec.Kind, 0, len(r.kinds))
	for k := range r.kinds {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MessageCount returns how many messages of a kind were observed.
func (r *Recorder) MessageCount(kind spec.Kind) int { return r.kinds[kind] }
