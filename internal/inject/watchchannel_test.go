package inject

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// The watch channel is the third injectable surface: dropping a notification
// starves subscribers without touching the agreed cluster state, and an
// informer-style view recovers through its resync re-list.
func TestWatchChannelDropAndReflectorRecovery(t *testing.T) {
	loop, srv, j := setup(t)
	c := srv.ClientFor("kcm")
	view := apiserver.NewReflector(loop, c, 2*time.Second, nil, spec.KindPod)
	view.Start()

	j.Arm(Injection{
		Channel: ChannelWatch, Kind: spec.KindPod,
		Type: DropMessage, Occurrence: 1,
	})
	if !j.WantsWatchChannel() {
		t.Fatal("armed watch injection must report WantsWatchChannel")
	}
	if j.WantsRequestWire() {
		t.Fatal("watch injection must not request the request wire")
	}

	if err := c.Create(pod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + time.Second)

	rep := j.Report()
	if !rep.Fired {
		t.Fatal("watch-channel drop did not fire")
	}
	if rep.Instance != spec.DefaultNamespace+"/web-1" {
		t.Fatalf("fired on %q", rep.Instance)
	}
	// The store and cache keep the pod; only the notification was lost.
	if _, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); err != nil {
		t.Fatalf("server lost the object: %v", err)
	}
	if _, ok := view.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); ok {
		t.Fatal("subscriber received the dropped notification")
	}

	// The resync re-list recovers the view — drop degrades to bounded delay.
	loop.RunUntil(loop.Now() + 3*time.Second)
	if _, ok := view.Get(spec.KindPod, spec.DefaultNamespace, "web-1"); !ok {
		t.Fatal("view did not recover via resync")
	}
	// The recovery re-list touches the injected key: activation accounting
	// holds on the watch channel too.
	if !j.Report().Activated {
		t.Fatal("recovery re-list did not activate the injection")
	}
}

// Field corruption on the watch channel must reach subscribers only: the
// store-persisted object stays clean, so per-experiment state (and every
// later re-list) observes the truth.
func TestWatchChannelFieldCorruptionIsSubscriberLocal(t *testing.T) {
	loop, srv, j := setup(t)
	c := srv.ClientFor("kcm")
	var seen []*spec.Pod
	view := apiserver.NewReflector(loop, c, 0, func(ev apiserver.WatchEvent) {
		seen = append(seen, ev.Object.(*spec.Pod))
	}, spec.KindPod)
	view.Start()

	j.Arm(Injection{
		Channel: ChannelWatch, Kind: spec.KindPod,
		FieldPath: "spec.nodeName", Type: SetValue, Value: "ghost", Occurrence: 1,
	})
	if err := c.Create(pod("web-1")); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + time.Second)

	rep := j.Report()
	if !rep.Fired {
		t.Fatal("watch-channel field fault did not fire")
	}
	if len(seen) == 0 || seen[0].Spec.NodeName != "ghost" {
		t.Fatalf("subscriber saw %+v, want tampered nodeName", seen)
	}
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil || obj.(*spec.Pod).Spec.NodeName != "" {
		t.Fatal("watch-channel tampering reached the server state")
	}
}

// While the armed injection targets another channel, the watch gate must
// keep the fan-out hook-free (no per-event encode).
func TestWatchGateIdleOnOtherChannels(t *testing.T) {
	_, _, j := setup(t)
	j.Arm(Injection{
		Channel: ChannelStore, Kind: spec.KindPod,
		FieldPath: "spec.priority", Type: BitFlip, Bit: 0, Occurrence: 1,
	})
	if j.WantsWatchChannel() {
		t.Fatal("store-channel injection must not arm the watch gate")
	}
	j.Disarm()
	if j.WantsWatchChannel() {
		t.Fatal("disarmed injector must not arm the watch gate")
	}
}
