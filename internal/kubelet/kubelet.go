// Package kubelet implements the per-node agent: heartbeats, pod admission,
// container lifecycle with crash-loop back-off (the §II-D circuit breaker),
// pod IP allocation from the node CIDR, and node-pressure eviction.
//
// The kubelet is also a recovery path the paper observes: it periodically
// rewrites pod status (including PodIP) from its own runtime view, so
// corruption of status fields in the store is overwritten by correct values
// — one of the reasons ~70% of injections have no effect.
package kubelet

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

const (
	heartbeatInterval = 10 * time.Second
	imagePullRetry    = 20 * time.Second
	statusSyncPeriod  = 10 * time.Second
	backoffInitial    = 10 * time.Second
	backoffMax        = 5 * time.Minute
	volumeReadDelay   = 500 * time.Millisecond
	defaultStartupMS  = 1000
	pullDelayMin      = 500 * time.Millisecond
	pullDelaySpread   = 1500 * time.Millisecond
)

// runnableCommands is the set of entrypoints the simulated runtime knows how
// to execute; anything else fails the container (RunContainerError), which
// after corruption of a command field yields a crash loop.
var runnableCommands = map[string]bool{
	"serve": true, "flanneld": true, "coredns": true, "pause": true, "sleep": true,
}

// imageRegistry is the registry prefix that image pulls succeed from.
const imageRegistry = "registry.local/"

// Config parameterizes a kubelet.
type Config struct {
	NodeName string
	// CapacityMilliCPU and CapacityMemMB describe the node size (the paper's
	// worker VMs are 8 CPU / 4 GB).
	CapacityMilliCPU int64
	CapacityMemMB    int64
	PodCIDR          string
	Labels           map[string]string
}

// Kubelet manages the pods bound to one node.
type Kubelet struct {
	loop   *sim.Loop
	client *apiserver.Client
	cfg    Config

	pods map[string]*podRuntime // by pod UID
	// podOrder mirrors pods in ascending-UID order, maintained on track/
	// untrack, so the write paths (status sync, eviction choice) never
	// iterate the map — map order is randomized per run and would break
	// bit-reproducibility.
	podOrder []*podRuntime
	pulled   map[string]bool // images already present on this node
	ipSeq    int64
	hbTimer  sim.Timer
	stTimer  sim.Timer
	cancelW  func()
	stopped  bool
	// Down simulates a node crash: no heartbeats, no pod management.
	down bool
	// node is the kubelet's private status-write base for its Node object,
	// kept current by the committed-revision feedback on UpdateStatus. It
	// spares the heartbeat a read + clone per period — at 500 nodes those
	// were the single largest per-experiment cost — and is dropped on any
	// write failure, falling back to a fresh read (a taint or cordon bumps
	// the revision and surfaces here as one conflict).
	node *spec.Node
}

type podState int

const (
	stateWaiting podState = iota + 1
	statePulling
	stateCreating
	stateStarting
	stateRunning
	stateCrashLoop
	stateFailed
)

type podRuntime struct {
	pod          *spec.Pod
	state        podState
	ip           string
	restartCount int64
	backoff      time.Duration
	timer        sim.Timer
	startedAt    time.Duration
}

// New builds a kubelet and registers (or refreshes) its Node object.
func New(loop *sim.Loop, srv apiserver.ClientSource, cfg Config) *Kubelet {
	k := &Kubelet{
		loop:   loop,
		client: srv.ClientFor("kubelet-" + cfg.NodeName),
		cfg:    cfg,
		pods:   make(map[string]*podRuntime),
		pulled: make(map[string]bool),
	}
	return k
}

// Start registers the node and begins heartbeating and managing pods. No
// immediate heartbeat is issued: registration itself carries a fresh status,
// and on a restart (forked snapshot) the existing Node's heartbeat is at most
// one heartbeatInterval old — the periodic timer refreshes it well inside the
// lifecycle controller's grace period either way. At 500 nodes the redundant
// boot-time status write was one of the two largest per-fork costs.
func (k *Kubelet) Start() {
	k.stopped = false
	k.registerNode()
	k.cancelW = k.client.Watch(spec.KindPod, k.onPodEvent)
	k.hbTimer = k.loop.Every(heartbeatInterval, k.heartbeat)
	k.stTimer = k.loop.Every(statusSyncPeriod, k.syncAllStatuses)
}

// Stop halts the kubelet (normal shutdown; pods are left as-is).
func (k *Kubelet) Stop() {
	k.stopped = true
	k.hbTimer.Stop()
	k.stTimer.Stop()
	if k.cancelW != nil {
		k.cancelW()
	}
	for _, rt := range k.pods {
		rt.timer.Stop()
	}
}

// SetDown simulates a node crash or recovery: while down the kubelet stops
// heartbeating (the node lifecycle controller will mark the node NotReady
// and evict) and all its pods stop serving.
func (k *Kubelet) SetDown(down bool) { k.down = down }

// IsDown reports whether the node is crashed.
func (k *Kubelet) IsDown() bool { return k.down }

// PodIP returns the runtime-assigned IP of a pod UID, if running here.
func (k *Kubelet) PodIP(uid string) (string, bool) {
	rt, ok := k.pods[uid]
	if !ok || rt.state != stateRunning {
		return "", false
	}
	return rt.ip, true
}

func (k *Kubelet) registerNode() {
	// On a restart (forked snapshot) the Node object already exists with its
	// bootstrap Address, capacities, and a near-fresh heartbeat; probing with
	// a read instead of a doomed Create skips building, encoding, and
	// rejecting 500 Node objects per fork.
	if _, err := k.client.Get(spec.KindNode, "", k.cfg.NodeName); err == nil {
		return
	}
	node := &spec.Node{
		Metadata: spec.ObjectMeta{Name: k.cfg.NodeName, Labels: k.cfg.Labels},
		Spec:     spec.NodeSpec{PodCIDR: k.cfg.PodCIDR},
		Status: spec.NodeStatus{
			CapacityMilliCPU:    k.cfg.CapacityMilliCPU,
			CapacityMemMB:       k.cfg.CapacityMemMB,
			AllocatableMilliCPU: k.cfg.CapacityMilliCPU * 9 / 10,
			AllocatableMemMB:    k.cfg.CapacityMemMB * 9 / 10,
			Ready:               true,
			LastHeartbeatMillis: k.loop.Time().UnixMilli(),
			Address:             fmt.Sprintf("192.168.0.%d", 1+len(k.cfg.NodeName)%250),
		},
	}
	_ = k.client.Create(node)
}

// heartbeat refreshes node status. An overloaded node (actual usage above
// capacity) stops heartbeating: overload manifests as an unhealthy node,
// the F3 path from misconfiguration to resource exhaustion.
func (k *Kubelet) heartbeat() {
	if k.stopped || k.down {
		return
	}
	if k.overloaded() {
		return // too starved to report in time
	}
	// Two attempts: the cached base, then — after a conflict or a dropped
	// cache — a fresh read. More than one conflict in a single simulated
	// instant cannot happen (writes are serialized through the loop).
	for attempt := 0; attempt < 2; attempt++ {
		if k.node == nil {
			obj, err := k.client.Get(spec.KindNode, "", k.cfg.NodeName)
			if err != nil {
				return
			}
			k.node = spec.CloneForStatusAs(obj.(*spec.Node))
		}
		node := k.node
		node.Status.Ready = true
		node.Status.LastHeartbeatMillis = k.loop.Time().UnixMilli()
		node.Status.CapacityMilliCPU = k.cfg.CapacityMilliCPU
		node.Status.CapacityMemMB = k.cfg.CapacityMemMB
		node.Status.AllocatableMilliCPU = k.cfg.CapacityMilliCPU * 9 / 10
		node.Status.AllocatableMemMB = k.cfg.CapacityMemMB * 9 / 10
		if err := k.client.UpdateStatus(node); err == nil {
			return
		}
		k.node = nil
	}
}

// overloaded reports whether admitted pods' requests exceed raw capacity —
// possible only through direct binding (daemon pods) or corrupted requests,
// since the scheduler respects allocatable.
func (k *Kubelet) overloaded() bool {
	var cpu int64
	for _, rt := range k.pods {
		if rt.state != stateFailed {
			cpu += rt.pod.RequestsMilliCPU()
		}
	}
	return cpu > k.cfg.CapacityMilliCPU
}

func (k *Kubelet) onPodEvent(ev apiserver.WatchEvent) {
	if k.stopped || k.down {
		return
	}
	pod := ev.Object.(*spec.Pod)
	uid := pod.Metadata.UID
	switch ev.Type {
	case apiserver.Deleted:
		if rt, ok := k.pods[uid]; ok {
			rt.timer.Stop()
			k.untrackPod(uid)
		}
	case apiserver.Added, apiserver.Modified:
		if pod.Spec.NodeName != k.cfg.NodeName {
			// Pod moved away (corrupted nodeName): the local runtime keeps
			// no claim on it.
			if rt, ok := k.pods[uid]; ok {
				rt.timer.Stop()
				k.untrackPod(uid)
			}
			return
		}
		if !pod.Active() {
			return
		}
		if rt, ok := k.pods[uid]; ok {
			rt.pod = pod // refresh spec view
			return
		}
		k.admit(pod)
	}
}

// admit runs kubelet admission: resource fit against raw capacity, with
// critical-pod eviction. High-priority pods (daemon pods) evict
// lower-priority pods to fit — the escalation that turns uncontrolled
// daemon replication into a cluster outage.
func (k *Kubelet) admit(pod *spec.Pod) {
	needCPU, needMem := pod.RequestsMilliCPU(), pod.RequestsMemMB()
	freeCPU := k.cfg.CapacityMilliCPU
	freeMem := k.cfg.CapacityMemMB
	var running []*podRuntime
	for _, rt := range k.orderedPods() {
		if rt.state == stateFailed {
			continue
		}
		freeCPU -= rt.pod.RequestsMilliCPU()
		freeMem -= rt.pod.RequestsMemMB()
		running = append(running, rt)
	}
	if needCPU > freeCPU || needMem > freeMem {
		// Try critical-pod admission: evict strictly lower-priority pods.
		if !k.evictForCritical(pod, running, needCPU-freeCPU, needMem-freeMem) {
			k.rejectPod(pod, "OutOfcpu")
			return
		}
	}
	rt := &podRuntime{pod: pod, state: stateWaiting}
	k.trackPod(rt)
	k.startPod(rt)
}

func (k *Kubelet) evictForCritical(pod *spec.Pod, running []*podRuntime, needCPU, needMem int64) bool {
	if pod.Spec.Priority < spec.SystemCriticalPriority {
		return false
	}
	// Sort victims by ascending priority, preferring later-started pods.
	victims := make([]*podRuntime, 0, len(running))
	for _, rt := range running {
		if rt.pod.Spec.Priority < pod.Spec.Priority {
			victims = append(victims, rt)
		}
	}
	sortVictims(victims)
	var chosen []*podRuntime
	for _, rt := range victims {
		if needCPU <= 0 && needMem <= 0 {
			break
		}
		needCPU -= rt.pod.RequestsMilliCPU()
		needMem -= rt.pod.RequestsMemMB()
		chosen = append(chosen, rt)
	}
	if needCPU > 0 || needMem > 0 {
		return false
	}
	for _, rt := range chosen {
		_ = k.client.Delete(spec.KindPod, rt.pod.Metadata.Namespace, rt.pod.Metadata.Name)
		rt.timer.Stop()
		k.untrackPod(rt.pod.Metadata.UID)
	}
	return true
}

func (k *Kubelet) rejectPod(pod *spec.Pod, reason string) {
	pod = spec.CloneForStatusAs(pod) // the argument may be a sealed watch-event object
	pod.Status.Phase = spec.PodFailed
	pod.Status.Reason = reason
	pod.Status.Ready = false
	_ = k.client.UpdateStatus(pod)
}

// startPod walks the container startup pipeline: image pull → network/IP →
// command start → readiness.
func (k *Kubelet) startPod(rt *podRuntime) {
	if k.stopped || k.down {
		return
	}
	pod := rt.pod
	// Image pull: unknown registries fail forever; the first pull of a
	// valid image on a node is slow and variable (it dominates real-world
	// pod startup variance), later pulls hit the node cache.
	for i := range pod.Spec.Containers {
		image := pod.Spec.Containers[i].Image
		if !strings.HasPrefix(image, imageRegistry) {
			rt.state = statePulling
			k.setStatus(rt, spec.PodPending, "ImagePullBackOff", false, "")
			rt.timer = k.loop.After(imagePullRetry, func() { k.startPod(rt) })
			return
		}
		if !k.pulled[image] {
			k.pulled[image] = true
			rt.state = statePulling
			pull := pullDelayMin + time.Duration(k.loop.Rand().Int63n(int64(pullDelaySpread)))
			rt.timer = k.loop.After(pull, func() { k.startPod(rt) })
			return
		}
	}
	// Pod network: allocate an IP from the node CIDR.
	if rt.ip == "" {
		ip, err := k.allocateIP()
		if err != nil {
			rt.state = stateCreating
			k.setStatus(rt, spec.PodPending, "FailedCreatePodSandBox", false, "")
			rt.timer = k.loop.After(imagePullRetry, func() { k.startPod(rt) })
			return
		}
		rt.ip = ip
	}
	// Command start.
	for i := range pod.Spec.Containers {
		cmd := pod.Spec.Containers[i].Command
		if len(cmd) == 0 || !runnableCommands[cmd[0]] {
			k.containerCrash(rt, "RunContainerError")
			return
		}
		// Memory over limit at startup: OOM kill.
		c := &pod.Spec.Containers[i]
		if c.LimitsMemMB > 0 && c.RequestsMemMB > c.LimitsMemMB {
			k.containerCrash(rt, "OOMKilled")
			return
		}
	}
	// Startup delay: volume seed read plus application boot, with realistic
	// run-to-run variance (container start times are noisy in practice;
	// without this the golden-run distributions would be degenerate and
	// every z-score infinite).
	rt.state = stateStarting
	delay := time.Duration(defaultStartupMS)*time.Millisecond +
		time.Duration(k.loop.Rand().Int63n(int64(400*time.Millisecond)))
	if pod.Spec.VolumeSeed != "" {
		delay += volumeReadDelay + time.Duration(k.loop.Rand().Int63n(int64(200*time.Millisecond)))
	}
	rt.timer = k.loop.After(delay, func() {
		if k.stopped || k.down {
			return
		}
		if _, alive := k.pods[rt.pod.Metadata.UID]; !alive {
			return
		}
		rt.state = stateRunning
		rt.startedAt = k.loop.Now()
		k.setStatus(rt, spec.PodRunning, "", true, rt.ip)
	})
}

// containerCrash applies the crash-loop circuit breaker: exponentially
// backed-off restarts (§II-D: "when a Pod fails several consecutive times,
// it is restarted with increasing back-off delays").
func (k *Kubelet) containerCrash(rt *podRuntime, reason string) {
	rt.state = stateCrashLoop
	rt.restartCount++
	if rt.backoff == 0 {
		rt.backoff = backoffInitial
	} else {
		rt.backoff *= 2
		if rt.backoff > backoffMax {
			rt.backoff = backoffMax
		}
	}
	k.setStatus(rt, spec.PodPending, reason, false, rt.ip)
	rt.timer = k.loop.After(rt.backoff, func() { k.startPod(rt) })
}

func (k *Kubelet) setStatus(rt *podRuntime, phase, reason string, ready bool, ip string) {
	obj, err := k.client.Get(spec.KindPod, rt.pod.Metadata.Namespace, rt.pod.Metadata.Name)
	if err != nil {
		return
	}
	pod := spec.CloneForStatusAs(obj.(*spec.Pod))
	pod.Status.Phase = phase
	pod.Status.Reason = reason
	pod.Status.Ready = ready
	pod.Status.PodIP = ip
	pod.Status.RestartCount = rt.restartCount
	if ready && pod.Status.StartedMillis == 0 {
		pod.Status.StartedMillis = k.loop.Time().UnixMilli()
	}
	_ = k.client.UpdateStatus(pod)
	rt.pod = pod
}

// syncAllStatuses rewrites the status of every running pod from the local
// runtime view, overwriting any corrupted status fields in the store — a
// natural recovery path ("the PodIP ... is overwritten by the correct value
// sent by kubelets").
func (k *Kubelet) syncAllStatuses() {
	if k.stopped || k.down {
		return
	}
	for _, rt := range k.orderedPods() {
		if rt.state != stateRunning {
			continue
		}
		obj, err := k.client.Get(spec.KindPod, rt.pod.Metadata.Namespace, rt.pod.Metadata.Name)
		if err != nil {
			continue
		}
		pod := obj.(*spec.Pod)
		if pod.Status.PodIP != rt.ip || !pod.Status.Ready || pod.Status.Phase != spec.PodRunning {
			pod = spec.CloneForStatusAs(pod)
			pod.Status.PodIP = rt.ip
			pod.Status.Ready = true
			pod.Status.Phase = spec.PodRunning
			pod.Status.RestartCount = rt.restartCount
			_ = k.client.UpdateStatus(pod)
			rt.pod = pod
		}
	}
}

func (k *Kubelet) allocateIP() (string, error) {
	_, ipNet, err := net.ParseCIDR(k.cfg.PodCIDR)
	if err != nil {
		// Fall back to the Node object's CIDR, which may have been edited
		// (or corrupted) after registration.
		obj, getErr := k.client.Get(spec.KindNode, "", k.cfg.NodeName)
		if getErr != nil {
			return "", err
		}
		_, ipNet, err = net.ParseCIDR(obj.(*spec.Node).Spec.PodCIDR)
		if err != nil {
			return "", err
		}
	}
	k.ipSeq++
	ip := ipNet.IP.To4()
	if ip == nil {
		return "", fmt.Errorf("kubelet: non-IPv4 pod CIDR %q", k.cfg.PodCIDR)
	}
	out := net.IPv4(ip[0], ip[1], ip[2], byte(2+k.ipSeq%250))
	return out.String(), nil
}

// trackPod registers a runtime in the pods map and the UID-ordered list.
func (k *Kubelet) trackPod(rt *podRuntime) {
	uid := rt.pod.Metadata.UID
	k.pods[uid] = rt
	i := sort.Search(len(k.podOrder), func(j int) bool {
		return k.podOrder[j].pod.Metadata.UID >= uid
	})
	k.podOrder = append(k.podOrder, nil)
	copy(k.podOrder[i+1:], k.podOrder[i:])
	k.podOrder[i] = rt
}

// untrackPod removes a runtime from the pods map and the ordered list.
func (k *Kubelet) untrackPod(uid string) {
	delete(k.pods, uid)
	i := sort.Search(len(k.podOrder), func(j int) bool {
		return k.podOrder[j].pod.Metadata.UID >= uid
	})
	if i < len(k.podOrder) && k.podOrder[i].pod.Metadata.UID == uid {
		k.podOrder = append(k.podOrder[:i], k.podOrder[i+1:]...)
	}
}

// orderedPods returns the pod runtimes in ascending-UID order. The pods map
// must never be iterated directly on a path with side effects (status
// writes, eviction choices): map order is randomized per run, and campaign
// experiments must stay bit-reproducible.
func (k *Kubelet) orderedPods() []*podRuntime { return k.podOrder }

func sortVictims(victims []*podRuntime) {
	for i := 1; i < len(victims); i++ {
		for j := i; j > 0 && less(victims[j], victims[j-1]); j-- {
			victims[j], victims[j-1] = victims[j-1], victims[j]
		}
	}
}

func less(a, b *podRuntime) bool {
	if a.pod.Spec.Priority != b.pod.Spec.Priority {
		return a.pod.Spec.Priority < b.pod.Spec.Priority
	}
	return a.startedAt > b.startedAt
}
