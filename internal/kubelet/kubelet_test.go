package kubelet

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

func newNode(t *testing.T) (*sim.Loop, *apiserver.Server, *Kubelet) {
	t.Helper()
	loop := sim.NewLoop(1)
	st := store.New(loop, nil)
	srv := apiserver.New(loop, st, nil)
	k := New(loop, srv, Config{
		NodeName: "worker-0", CapacityMilliCPU: 8000, CapacityMemMB: 4096,
		PodCIDR: "10.244.1.0/24",
	})
	k.Start()
	loop.RunUntil(time.Second)
	return loop, srv, k
}

func boundPod(name string, cpu int64) *spec.Pod {
	return &spec.Pod{
		Metadata: spec.ObjectMeta{Name: name, Namespace: spec.DefaultNamespace},
		Spec: spec.PodSpec{
			NodeName: "worker-0",
			Containers: []spec.Container{{
				Name: "c", Image: "registry.local/web:1", Command: []string{"serve"},
				RequestsMilliCPU: cpu, RequestsMemMB: 64, Port: 8080,
			}},
		},
	}
}

func getPod(t *testing.T, c *apiserver.Client, name string) *spec.Pod {
	t.Helper()
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, name)
	if err != nil {
		t.Fatalf("Get(%s): %v", name, err)
	}
	return obj.(*spec.Pod)
}

func TestNodeRegistrationAndHeartbeat(t *testing.T) {
	loop, srv, _ := newNode(t)
	c := srv.ClientFor("test")
	obj, err := c.Get(spec.KindNode, "", "worker-0")
	if err != nil {
		t.Fatal(err)
	}
	node := obj.(*spec.Node)
	if !node.Status.Ready || node.Status.CapacityMilliCPU != 8000 {
		t.Fatalf("node status %+v", node.Status)
	}
	hb1 := node.Status.LastHeartbeatMillis
	loop.RunUntil(loop.Now() + 30*time.Second)
	obj, _ = c.Get(spec.KindNode, "", "worker-0")
	if obj.(*spec.Node).Status.LastHeartbeatMillis <= hb1 {
		t.Fatal("heartbeat not refreshed")
	}
}

func TestPodStartsAndBecomesReady(t *testing.T) {
	loop, srv, _ := newNode(t)
	c := srv.ClientFor("test")
	if err := c.Create(boundPod("web-1", 250)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 10*time.Second)
	pod := getPod(t, c, "web-1")
	if !pod.Status.Ready || pod.Status.Phase != spec.PodRunning {
		t.Fatalf("pod status %+v", pod.Status)
	}
	if pod.Status.PodIP == "" || pod.Status.PodIP[:7] != "10.244." {
		t.Fatalf("pod IP %q not from the node CIDR", pod.Status.PodIP)
	}
}

func TestInvalidImageNeverStarts(t *testing.T) {
	loop, srv, _ := newNode(t)
	c := srv.ClientFor("test")
	p := boundPod("bad-image", 100)
	p.Spec.Containers[0].Image = "docker.io/unknown:1" // wrong registry
	if err := c.Create(p); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 60*time.Second)
	pod := getPod(t, c, "bad-image")
	if pod.Status.Ready {
		t.Fatal("pod with unpullable image became ready")
	}
	if pod.Status.Reason != "ImagePullBackOff" {
		t.Fatalf("reason = %q, want ImagePullBackOff", pod.Status.Reason)
	}
}

func TestBadCommandCrashLoopsWithBackoff(t *testing.T) {
	loop, srv, _ := newNode(t)
	c := srv.ClientFor("test")
	p := boundPod("crasher", 100)
	p.Spec.Containers[0].Command = []string{"segfault"}
	if err := c.Create(p); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 90*time.Second)
	pod := getPod(t, c, "crasher")
	if pod.Status.Ready {
		t.Fatal("crashing pod reported ready")
	}
	if pod.Status.RestartCount < 2 {
		t.Fatalf("restart count = %d, want crash-loop restarts", pod.Status.RestartCount)
	}
	// The back-off must be exponential: restarts grow slower than linear.
	if pod.Status.RestartCount > 8 {
		t.Fatalf("restart count = %d within 90s: back-off not applied", pod.Status.RestartCount)
	}
}

func TestKubeletOverwritesCorruptedStatus(t *testing.T) {
	// The recovery path the paper observes: "the PodIP ... is overwritten by
	// the correct value sent by kubelets".
	loop, srv, _ := newNode(t)
	c := srv.ClientFor("test")
	if err := c.Create(boundPod("web-1", 100)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 10*time.Second)
	pod := spec.CloneForWriteAs(getPod(t, c, "web-1"))
	goodIP := pod.Status.PodIP
	pod.Status.PodIP = "10.99.99.99" // corrupted
	pod.Status.Ready = false
	if err := c.UpdateStatus(pod); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 15*time.Second)
	pod = getPod(t, c, "web-1")
	if pod.Status.PodIP != goodIP || !pod.Status.Ready {
		t.Fatalf("status not repaired: %+v", pod.Status)
	}
}

func TestCriticalPodEvictsLowerPriority(t *testing.T) {
	loop, srv, _ := newNode(t)
	c := srv.ClientFor("test")
	// Fill the node with a large app pod.
	if err := c.Create(boundPod("hog", 7000)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 10*time.Second)
	// A system-critical pod that does not fit must evict it.
	critical := boundPod("critical", 2000)
	critical.Spec.Priority = spec.SystemCriticalPriority
	if err := c.Create(critical); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 10*time.Second)
	if _, err := c.Get(spec.KindPod, spec.DefaultNamespace, "hog"); err == nil {
		t.Fatal("low-priority pod survived critical-pod admission")
	}
	pod := getPod(t, c, "critical")
	if !pod.Status.Ready {
		t.Fatalf("critical pod not running: %+v", pod.Status)
	}
}

func TestOverCapacityPodRejected(t *testing.T) {
	loop, srv, _ := newNode(t)
	c := srv.ClientFor("test")
	if err := c.Create(boundPod("hog", 7000)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 5*time.Second)
	// Same-priority pod that does not fit is rejected (OutOfcpu), like a
	// kubelet admission failure when scheduler and kubelet views diverge.
	if err := c.Create(boundPod("second", 2000)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 5*time.Second)
	pod := getPod(t, c, "second")
	if pod.Status.Phase != spec.PodFailed || pod.Status.Reason != "OutOfcpu" {
		t.Fatalf("status = %+v, want Failed/OutOfcpu", pod.Status)
	}
}

func TestDownNodeStopsHeartbeating(t *testing.T) {
	loop, srv, k := newNode(t)
	c := srv.ClientFor("test")
	obj, _ := c.Get(spec.KindNode, "", "worker-0")
	hb := obj.(*spec.Node).Status.LastHeartbeatMillis
	k.SetDown(true)
	loop.RunUntil(loop.Now() + 60*time.Second)
	obj, _ = c.Get(spec.KindNode, "", "worker-0")
	if obj.(*spec.Node).Status.LastHeartbeatMillis != hb {
		t.Fatal("crashed node kept heartbeating")
	}
	k.SetDown(false)
	loop.RunUntil(loop.Now() + 30*time.Second)
	obj, _ = c.Get(spec.KindNode, "", "worker-0")
	if obj.(*spec.Node).Status.LastHeartbeatMillis <= hb {
		t.Fatal("recovered node did not resume heartbeats")
	}
}

func TestOverloadedNodeSkipsHeartbeats(t *testing.T) {
	// F3's overload path: admission keeps the sum of requests within
	// capacity, so overload only arises when a running pod's requests are
	// corrupted upward after admission — which is exactly what a store
	// injection produces. The starved kubelet then misses heartbeats.
	loop, srv, _ := newNode(t)
	c := srv.ClientFor("test")
	if err := c.Create(boundPod("web-1", 2000)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 10*time.Second)
	pod := getPod(t, c, "web-1")
	pod.Spec.Containers[0].RequestsMilliCPU = 9000 // corrupted high bit
	if err := c.Update(pod); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 5*time.Second)
	obj, _ := c.Get(spec.KindNode, "", "worker-0")
	hb := obj.(*spec.Node).Status.LastHeartbeatMillis
	loop.RunUntil(loop.Now() + 60*time.Second)
	obj, _ = c.Get(spec.KindNode, "", "worker-0")
	if obj.(*spec.Node).Status.LastHeartbeatMillis > hb {
		t.Fatal("overloaded node still heartbeating")
	}
}

func TestPodMovedAwayIsReleased(t *testing.T) {
	loop, srv, k := newNode(t)
	c := srv.ClientFor("test")
	if err := c.Create(boundPod("web-1", 100)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 10*time.Second)
	pod := getPod(t, c, "web-1")
	uid := pod.Metadata.UID
	if _, ok := k.PodIP(uid); !ok {
		t.Fatal("kubelet does not track the running pod")
	}
	// Corrupted nodeName moves the pod away in the store (the validation
	// layer cannot be crossed by a client, so write it as the store would
	// see it: via a fresh object bound elsewhere after delete).
	if err := c.Delete(spec.KindPod, spec.DefaultNamespace, "web-1"); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 5*time.Second)
	if _, ok := k.PodIP(uid); ok {
		t.Fatal("kubelet kept a deleted pod's runtime")
	}
}
