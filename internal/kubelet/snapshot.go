package kubelet

import (
	"sort"
	"time"

	"github.com/mutiny-sim/mutiny/internal/spec"
)

// This file implements kubelet snapshot/restore for the bootstrapped-cluster
// fork path. The kubelet is the one component whose runtime state is not
// recoverable from the store alone: which images are in the node cache,
// which pod IPs were handed out, and where each pod is in the startup
// pipeline live only in process memory. A fork restores them so adopted
// pods keep running seamlessly — without this, every forked kubelet would
// re-pull images and re-walk container startup, knocking the settled system
// pods out of readiness at the start of the injection window.

// Snapshot captures one kubelet's runtime state as immutable data.
type Snapshot struct {
	pulled []string
	ipSeq  int64
	pods   []podSnapshot
}

type podSnapshot struct {
	namespace    string
	name         string
	uid          string
	state        podState
	ip           string
	restartCount int64
	backoff      time.Duration
	startedAt    time.Duration
}

// Snapshot captures the kubelet's runtime state. Pods are recorded in UID
// order (podOrder), so two captures of the same state are identical.
func (k *Kubelet) Snapshot() Snapshot {
	snap := Snapshot{ipSeq: k.ipSeq, pulled: make([]string, 0, len(k.pulled))}
	for image := range k.pulled {
		snap.pulled = append(snap.pulled, image)
	}
	sort.Strings(snap.pulled)
	for _, rt := range k.podOrder {
		snap.pods = append(snap.pods, podSnapshot{
			namespace:    rt.pod.Metadata.Namespace,
			name:         rt.pod.Metadata.Name,
			uid:          rt.pod.Metadata.UID,
			state:        rt.state,
			ip:           rt.ip,
			restartCount: rt.restartCount,
			backoff:      rt.backoff,
			startedAt:    rt.startedAt,
		})
	}
	return snap
}

// RestoreSnapshot adopts the snapshot's pods into a freshly built kubelet.
// It must run after the API server's cache has been restored (pod specs are
// re-read through the client, like a kubelet reconciling against the control
// plane after a restart) and before Start, so the pod watch never sees the
// adopted pods as new arrivals. Running pods resume in place; pods that were
// mid-pipeline re-enter the startup pipeline, drawing fresh (per-fork) delays.
func (k *Kubelet) RestoreSnapshot(snap Snapshot) {
	k.ipSeq = snap.ipSeq
	for _, image := range snap.pulled {
		k.pulled[image] = true
	}
	for _, ps := range snap.pods {
		obj, err := k.client.Get(spec.KindPod, ps.namespace, ps.name)
		if err != nil {
			continue // deleted between capture and restore: nothing to adopt
		}
		pod := obj.(*spec.Pod)
		if pod.Metadata.UID != ps.uid {
			continue
		}
		rt := &podRuntime{
			pod:          pod,
			state:        ps.state,
			ip:           ps.ip,
			restartCount: ps.restartCount,
			backoff:      ps.backoff,
			startedAt:    ps.startedAt,
		}
		k.trackPod(rt)
		switch ps.state {
		case stateRunning, stateFailed:
			// Nothing pending: the pod keeps serving (or stays failed).
		default:
			// Mid-pipeline (pulling, creating, starting, crash-looping):
			// resume the pipeline from the top; restart count and back-off
			// carry over, so a crash loop keeps escalating.
			rt.state = stateWaiting
			k.startPod(rt)
		}
	}
}
