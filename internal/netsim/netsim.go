// Package netsim models the cluster's virtual network: the per-node overlay
// routes programmed by the network-manager DaemonSet (flannel in the
// paper's testbed), the kube-proxy service tables mapping cluster IPs to
// endpoint addresses, and cluster DNS health.
//
// It is the stage where networking corruption becomes client-visible: a
// failed or deleted network-manager pod takes a node's routes down
// (cluster-wide when all of them fail — the Reddit outage pattern), a
// corrupted service selector empties the endpoint table ("connection
// refused"), and a stale or corrupted endpoint IP no longer corresponds to
// any running pod ("connection reset" → intermittent availability).
package netsim

import (
	"strings"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

// Labels and names of the system networking workloads.
const (
	NetManagerLabel  = "flannel"
	DNSLabel         = "coredns"
	NetConfigMapName = "flannel-cfg"
	NetConfigKey     = "net-conf"
	NetConfigValue   = "overlay:10.244.0.0/16"
)

// Error kinds observed by clients.
const (
	ErrNone    = ""
	ErrRefused = "refused" // no endpoints / port closed
	ErrTimeout = "timeout" // routes down, node gone
	ErrReset   = "reset"   // endpoint points at a dead pod
)

// RequestResult is the outcome of one client request.
type RequestResult struct {
	Latency time.Duration
	Err     string
}

// Failed reports whether the request failed.
func (r RequestResult) Failed() bool { return r.Err != ErrNone }

const (
	routeDecay      = 10 * time.Second
	baseServiceTime = 30 * time.Millisecond
	proxyLatency    = 2 * time.Millisecond
	podCapacityRPS  = 25.0
	loadWindow      = time.Second
)

// State tracks the simulated data plane. It observes the control plane
// through ordinary watches (it is the kube-proxy + CNI view of the world).
type State struct {
	loop   *sim.Loop
	client *apiserver.Client

	services  map[string]*spec.Service   // by clusterIP
	endpoints map[string]*spec.Endpoints // by namespace/name
	pods      map[string]*spec.Pod       // by namespace/name
	nodes     map[string]*spec.Node      // by name
	netConfig string

	// flannelLastReady records when a node's network-manager pod was last
	// observed ready; routes survive routeDecay past that.
	flannelLastReady map[string]time.Duration

	// Derived indexes, maintained incrementally on pod events so the
	// request path (20 req/s × every experiment) and the health probes never
	// scan the pods map: ready network-manager pods per node, ready DNS pods
	// per node, and pods by IP.
	flannelReady map[string]int       // node → ready flannel pod count
	dnsReady     map[string]int       // node → ready DNS pod count
	podsByIP     map[string]*spec.Pod // PodIP → active pod

	rr       map[string]int // round-robin counter per clusterIP
	reqTimes map[string][]time.Duration

	// Topology fault state (topology.go): zones with their uplink cut and
	// nodes with their link cut. Both empty on a healthy network; fault state
	// is never snapshotted, so forks always start clean.
	zoneDown map[string]bool
	nodeDown map[string]bool

	// masterIsolated is the control-plane replica currently cut off from its
	// peers by a master partition, or -1 when the links are intact. The
	// network owns the link state; the cluster mirrors it into the replicated
	// store via the change callback.
	masterIsolated int
	onMasterLink   func(isolated int)

	cancels []func()
}

// New builds the network state and subscribes to the control plane.
func New(loop *sim.Loop, srv apiserver.ClientSource) *State {
	s := &State{
		loop:             loop,
		client:           srv.ClientFor("netsim"),
		services:         make(map[string]*spec.Service),
		endpoints:        make(map[string]*spec.Endpoints),
		pods:             make(map[string]*spec.Pod),
		nodes:            make(map[string]*spec.Node),
		flannelLastReady: make(map[string]time.Duration),
		flannelReady:     make(map[string]int),
		dnsReady:         make(map[string]int),
		podsByIP:         make(map[string]*spec.Pod),
		rr:               make(map[string]int),
		reqTimes:         make(map[string][]time.Duration),
		zoneDown:         make(map[string]bool),
		nodeDown:         make(map[string]bool),
		masterIsolated:   -1,
	}
	s.cancels = append(s.cancels,
		s.client.Watch(spec.KindService, s.onService),
		s.client.Watch(spec.KindEndpoints, s.onEndpoints),
		s.client.Watch(spec.KindPod, s.onPod),
		s.client.Watch(spec.KindNode, s.onNode),
		s.client.Watch(spec.KindConfigMap, s.onConfigMap),
	)
	return s
}

// Close detaches all watches.
func (s *State) Close() {
	for _, cancel := range s.cancels {
		cancel()
	}
}

// --- control-plane (master) link state ---------------------------------------
//
// The virtual network also owns the links between control-plane replicas: a
// master partition is a network event, so the fault axis cuts links here and
// the cluster mirrors the state into the replicated store's reachability.

// OnMasterLinkChange registers the callback fired whenever the master link
// state changes; isolated is the cut-off replica index, or -1 on heal.
func (s *State) OnMasterLinkChange(fn func(isolated int)) { s.onMasterLink = fn }

// PartitionMasters cuts control-plane replica isolated off from its peers.
func (s *State) PartitionMasters(isolated int) {
	if s.masterIsolated == isolated {
		return
	}
	s.masterIsolated = isolated
	if s.onMasterLink != nil {
		s.onMasterLink(isolated)
	}
}

// HealMasters restores all master links.
func (s *State) HealMasters() {
	if s.masterIsolated < 0 {
		return
	}
	s.masterIsolated = -1
	if s.onMasterLink != nil {
		s.onMasterLink(-1)
	}
}

// MasterLinkUp reports whether control-plane replicas a and b can talk.
func (s *State) MasterLinkUp(a, b int) bool {
	return a == b || s.masterIsolated < 0 || (a != s.masterIsolated && b != s.masterIsolated)
}

// MasterIsolated returns the currently isolated replica, or -1.
func (s *State) MasterIsolated() int { return s.masterIsolated }

// Prime rebuilds the data-plane view from the control plane's current state,
// for forked clusters: the watches registered by New only observe changes,
// so a State attached to an already-populated control plane must list the
// existing objects once — the kube-proxy/CNI equivalent of a re-list after
// reconnecting. Nodes whose network-manager pod is ready are treated as
// freshly confirmed (their route-decay clock starts at the prime instant,
// exactly as if the ready status had just been observed).
func (s *State) Prime() {
	for _, o := range s.client.List(spec.KindService, "") {
		s.onService(apiserver.WatchEvent{Type: apiserver.Added, Kind: spec.KindService, Object: o})
	}
	for _, o := range s.client.List(spec.KindEndpoints, "") {
		s.onEndpoints(apiserver.WatchEvent{Type: apiserver.Added, Kind: spec.KindEndpoints, Object: o})
	}
	for _, o := range s.client.List(spec.KindPod, "") {
		s.onPod(apiserver.WatchEvent{Type: apiserver.Added, Kind: spec.KindPod, Object: o})
	}
	for _, o := range s.client.List(spec.KindNode, "") {
		s.onNode(apiserver.WatchEvent{Type: apiserver.Added, Kind: spec.KindNode, Object: o})
	}
	for _, o := range s.client.List(spec.KindConfigMap, "") {
		s.onConfigMap(apiserver.WatchEvent{Type: apiserver.Added, Kind: spec.KindConfigMap, Object: o})
	}
}

func (s *State) onService(ev apiserver.WatchEvent) {
	svc := ev.Object.(*spec.Service)
	if ev.Type == apiserver.Deleted {
		delete(s.services, svc.Spec.ClusterIP)
		return
	}
	if svc.Spec.ClusterIP != "" {
		s.services[svc.Spec.ClusterIP] = svc
	}
}

func (s *State) onEndpoints(ev apiserver.WatchEvent) {
	ep := ev.Object.(*spec.Endpoints)
	key := ep.Metadata.NamespacedName()
	if ev.Type == apiserver.Deleted {
		delete(s.endpoints, key)
		return
	}
	s.endpoints[key] = ep
}

func (s *State) onPod(ev apiserver.WatchEvent) {
	pod := ev.Object.(*spec.Pod)
	key := pod.Metadata.NamespacedName()
	old := s.pods[key]
	next := pod
	if ev.Type == apiserver.Deleted {
		next = nil
		delete(s.pods, key)
	} else {
		s.pods[key] = pod
	}
	s.updateSystemIndex(old, next)
	s.updateIPIndex(old, next)
	if next != nil && isSystemApp(next, NetManagerLabel) && next.Status.Ready && next.Spec.NodeName != "" {
		s.flannelLastReady[next.Spec.NodeName] = s.loop.Now()
	}
}

func isSystemApp(pod *spec.Pod, label string) bool {
	return pod.Metadata.Namespace == spec.SystemNamespace &&
		pod.Metadata.Labels[spec.LabelApp] == label
}

// updateSystemIndex maintains the per-node ready counts of the two system
// networking workloads across one pod transition (old → next; nil on either
// side for add/delete).
func (s *State) updateSystemIndex(old, next *spec.Pod) {
	bump := func(p *spec.Pod, delta int) {
		if p == nil || !p.Status.Ready || p.Spec.NodeName == "" {
			return
		}
		switch {
		case isSystemApp(p, NetManagerLabel):
			s.flannelReady[p.Spec.NodeName] += delta
		case isSystemApp(p, DNSLabel):
			s.dnsReady[p.Spec.NodeName] += delta
		}
	}
	bump(old, -1)
	bump(next, +1)
}

// ipOf returns the indexable IP of a pod: active pods with a status IP.
func ipOf(p *spec.Pod) string {
	if p == nil || !p.Active() {
		return ""
	}
	return p.Status.PodIP
}

// podKeyLess orders pods by namespace/name — the deterministic tie-break for
// duplicate IPs (possible only under corruption), replacing the old
// scan-in-map-order pick.
func podKeyLess(a, b *spec.Pod) bool {
	if a.Metadata.Namespace != b.Metadata.Namespace {
		return a.Metadata.Namespace < b.Metadata.Namespace
	}
	return a.Metadata.Name < b.Metadata.Name
}

// updateIPIndex maintains podsByIP across one pod transition. The common case
// (status refresh, same IP) is a pointer swap; a released IP triggers a
// deterministic rescan only when the departing pod was the mapped one.
func (s *State) updateIPIndex(old, next *spec.Pod) {
	oldIP, newIP := ipOf(old), ipOf(next)
	if oldIP == newIP {
		if oldIP == "" {
			return
		}
		if s.podsByIP[oldIP] == old {
			s.podsByIP[oldIP] = next
		} else {
			s.claimIP(newIP, next)
		}
		return
	}
	if oldIP != "" && s.podsByIP[oldIP] == old {
		delete(s.podsByIP, oldIP)
		s.rescanIP(oldIP)
	}
	if newIP != "" {
		s.claimIP(newIP, next)
	}
}

func (s *State) claimIP(ip string, p *spec.Pod) {
	if cur, ok := s.podsByIP[ip]; !ok || podKeyLess(p, cur) {
		s.podsByIP[ip] = p
	}
}

// rescanIP re-elects the mapped pod for an IP after the previous holder left
// it; duplicates exist only under corrupted PodIPs, so this scan is cold.
func (s *State) rescanIP(ip string) {
	var best *spec.Pod
	for _, p := range s.pods {
		if ipOf(p) == ip && (best == nil || podKeyLess(p, best)) {
			best = p
		}
	}
	if best != nil {
		s.podsByIP[ip] = best
	}
}

func (s *State) onNode(ev apiserver.WatchEvent) {
	node := ev.Object.(*spec.Node)
	if ev.Type == apiserver.Deleted {
		delete(s.nodes, node.Metadata.Name)
		return
	}
	s.nodes[node.Metadata.Name] = node
}

func (s *State) onConfigMap(ev apiserver.WatchEvent) {
	cm := ev.Object.(*spec.ConfigMap)
	if cm.Metadata.Namespace != spec.SystemNamespace || cm.Metadata.Name != NetConfigMapName {
		return
	}
	if ev.Type == apiserver.Deleted {
		s.netConfig = ""
		return
	}
	s.netConfig = cm.Data[NetConfigKey]
}

// RoutesUp reports whether a node's overlay routes are operational: the
// network configuration must be sane and the node's network-manager pod
// must be (recently) ready.
func (s *State) RoutesUp(node string) bool {
	if !s.configValid() {
		return false
	}
	last, ok := s.flannelLastReady[node]
	if !ok {
		return false
	}
	// Routes persist briefly after the manager pod stops being ready, then
	// decay (restart loops and reconfigurations flush them).
	if pod := s.readyFlannelPod(node); pod {
		return true
	}
	return s.loop.Now()-last < routeDecay
}

func (s *State) readyFlannelPod(node string) bool {
	return s.flannelReady[node] > 0
}

func (s *State) configValid() bool {
	return strings.Contains(s.netConfig, "overlay")
}

// DNSHealthy reports whether cluster DNS can answer: at least one ready DNS
// pod on a routable node. (The node count is tiny and the answer is a single
// bool, so iterating the index map cannot introduce order dependence.)
func (s *State) DNSHealthy() bool {
	for node, n := range s.dnsReady {
		if n > 0 && s.RoutesUp(node) {
			return true
		}
	}
	return false
}

// NetworkPodsFailing reports whether any expected network-manager pod is
// missing or not ready (a Stall/Outage signal for the classifier).
func (s *State) NetworkPodsFailing() bool {
	for name := range s.nodes {
		if !s.readyFlannelPod(name) {
			return true
		}
	}
	return len(s.nodes) == 0
}

// Request performs one client request from fromNode to a service VIP.
func (s *State) Request(fromNode, clusterIP string, port int64) RequestResult {
	svc, ok := s.services[clusterIP]
	if !ok {
		return RequestResult{Err: ErrRefused}
	}
	// Service port → target port.
	var targetPort int64 = -1
	for _, p := range svc.Spec.Ports {
		if p.Port == port {
			targetPort = p.TargetPort
			break
		}
	}
	if targetPort < 0 {
		return RequestResult{Err: ErrRefused}
	}
	ep, ok := s.endpoints[svc.Metadata.NamespacedName()]
	if !ok || ep.Count() == 0 {
		return RequestResult{Err: ErrRefused}
	}
	// kube-proxy round-robin across all subset addresses. The endpoints
	// controller emits a single subset, so the common case aliases its
	// (sealed, immutable) address slice instead of flattening per request.
	var addrs []spec.EndpointAddress
	if len(ep.Subsets) == 1 {
		addrs = ep.Subsets[0].Addresses
	} else {
		for i := range ep.Subsets {
			addrs = append(addrs, ep.Subsets[i].Addresses...)
		}
	}
	addr := s.pickEndpoint(clusterIP, fromNode, addrs)

	// Overlay path between client node and endpoint node: per-node routes,
	// node links, and the zone links between them must all be up.
	if !s.RouteBetween(fromNode, addr.NodeName) {
		return RequestResult{Err: ErrTimeout}
	}
	// The link class between the caller's and the endpoint's zones sets the
	// request's network envelope: latency, loss, and bandwidth. On flat
	// clusters every path is LinkLocal and this is the old fixed proxy hop.
	prof := linkProfiles[LinkClassBetween(s.ZoneOf(fromNode), s.ZoneOf(addr.NodeName))]
	if prof.Loss > 0 && s.loop.Rand().Float64() < prof.Loss {
		return RequestResult{Err: ErrTimeout}
	}
	// The endpoint must correspond to a live, ready pod at that IP.
	pod := s.findPodByIP(addr.IP)
	if pod == nil || !pod.Status.Ready || pod.Spec.NodeName != addr.NodeName {
		return RequestResult{Err: ErrReset}
	}
	// The pod must actually listen on the target port.
	if !podListensOn(pod, targetPort) {
		return RequestResult{Err: ErrRefused}
	}
	return RequestResult{Latency: prof.Latency + s.serviceLatency(pod, prof.Bandwidth)}
}

// pickEndpoint applies kube-proxy's topology-aware round-robin: when the
// caller's zone has ready endpoints, traffic stays in-zone; otherwise it
// spills over all endpoints. Unzoned callers (flat clusters) round-robin
// over everything, exactly the pre-topology behavior.
func (s *State) pickEndpoint(clusterIP, fromNode string, addrs []spec.EndpointAddress) spec.EndpointAddress {
	n := s.rr[clusterIP]
	s.rr[clusterIP]++
	if fromZone := s.ZoneOf(fromNode); fromZone != "" {
		same := 0
		for i := range addrs {
			if s.ZoneOf(addrs[i].NodeName) == fromZone {
				same++
			}
		}
		if same > 0 && same < len(addrs) {
			k := n % same
			for i := range addrs {
				if s.ZoneOf(addrs[i].NodeName) == fromZone {
					if k == 0 {
						return addrs[i]
					}
					k--
				}
			}
		}
	}
	return addrs[n%len(addrs)]
}

func (s *State) findPodByIP(ip string) *spec.Pod {
	if ip == "" {
		return nil
	}
	return s.podsByIP[ip]
}

func podListensOn(pod *spec.Pod, port int64) bool {
	for i := range pod.Spec.Containers {
		if pod.Spec.Containers[i].Port == port {
			return true
		}
	}
	return false
}

// serviceLatency models an M/M/1-ish response time: the base service time
// is inflated as the pod's recent request rate approaches its capacity, so
// under-provisioned services (fewer pods than intended) answer slower —
// the LeR → HRT propagation of Table III. bandwidth scales the base for
// responses crossing a thin cross-zone link (1.0 in-zone).
func (s *State) serviceLatency(pod *spec.Pod, bandwidth float64) time.Duration {
	key := pod.Metadata.NamespacedName() // cached on sealed pods

	now := s.loop.Now()
	times := s.reqTimes[key]
	keep := times[:0]
	for _, t := range times {
		if now-t < loadWindow {
			keep = append(keep, t)
		}
	}
	keep = append(keep, now)
	s.reqTimes[key] = keep

	rate := float64(len(keep)) / loadWindow.Seconds()
	rho := rate / podCapacityRPS
	if rho >= 0.95 {
		rho = 0.95
	}
	base := time.Duration(float64(baseServiceTime+podSpeedOffset(pod.Metadata.UID)) * bandwidth)
	lat := time.Duration(float64(base) / (1 - rho))
	// Per-request jitter keeps golden-run variance non-zero so z-scores are
	// well-defined.
	jitter := time.Duration(s.loop.Rand().Int63n(int64(8 * time.Millisecond)))
	return lat + jitter
}

// podSpeedOffset derives a stable per-pod service-time offset (pods differ:
// node placement, cache warmth), in [0, 6ms).
func podSpeedOffset(uid string) time.Duration {
	var h uint32 = 2166136261
	for i := 0; i < len(uid); i++ {
		h ^= uint32(uid[i])
		h *= 16777619
	}
	return time.Duration(h%6) * time.Millisecond
}
