package netsim

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// harness wires a netsim state to a bare apiserver and populates a minimal
// two-node data plane: flannel pods on both nodes, a config map, a service
// with one ready backend pod.
type harness struct {
	loop  *sim.Loop
	state *State
	api   *apiserver.Client
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	loop := sim.NewLoop(1)
	st := store.New(loop, nil)
	srv := apiserver.New(loop, st, nil)
	h := &harness{loop: loop, state: New(loop, srv), api: srv.ClientFor("test")}

	for _, ns := range []string{spec.DefaultNamespace, spec.SystemNamespace} {
		h.mustCreate(&spec.Namespace{Metadata: spec.ObjectMeta{Name: ns}, Phase: "Active"})
	}
	h.mustCreate(&spec.ConfigMap{
		Metadata: spec.ObjectMeta{Name: NetConfigMapName, Namespace: spec.SystemNamespace},
		Data:     map[string]string{NetConfigKey: NetConfigValue},
	})
	for i, node := range []string{"node-a", "node-b"} {
		h.mustCreate(&spec.Node{
			Metadata: spec.ObjectMeta{Name: node},
			Status:   spec.NodeStatus{Ready: true},
		})
		h.mustCreate(h.flannelPod(node, i))
	}
	h.mustCreate(&spec.Service{
		Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace},
		Spec: spec.ServiceSpec{
			Selector:  map[string]string{"app": "web"},
			ClusterIP: "10.96.0.1",
			Ports:     []spec.ServicePort{{Port: 80, TargetPort: 8080, Protocol: "TCP"}},
		},
	})
	h.mustCreate(h.webPod("web-1", "node-b", "10.244.2.2"))
	h.mustCreate(&spec.Endpoints{
		Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace},
		Subsets: []spec.EndpointSubset{{
			Addresses: []spec.EndpointAddress{{IP: "10.244.2.2", NodeName: "node-b",
				TargetRef: spec.TargetRef{Kind: "Pod", Name: "web-1"}}},
			Ports: []int64{8080},
		}},
	})
	loop.RunUntil(time.Second)
	return h
}

func (h *harness) mustCreate(obj spec.Object) {
	if err := h.api.Create(obj); err != nil {
		panic(err)
	}
}

func (h *harness) flannelPod(node string, i int) *spec.Pod {
	return &spec.Pod{
		Metadata: spec.ObjectMeta{
			Name: "flannel-" + node, Namespace: spec.SystemNamespace,
			Labels: map[string]string{spec.LabelApp: NetManagerLabel},
		},
		Spec: spec.PodSpec{NodeName: node, Containers: []spec.Container{{
			Name: "f", Image: "registry.local/flannel:1", Command: []string{"flanneld"},
		}}},
		Status: spec.PodStatus{Phase: spec.PodRunning, Ready: true, PodIP: "10.244.0." + string(rune('2'+i))},
	}
}

func (h *harness) webPod(name, node, ip string) *spec.Pod {
	return &spec.Pod{
		Metadata: spec.ObjectMeta{
			Name: name, Namespace: spec.DefaultNamespace,
			Labels: map[string]string{"app": "web"},
		},
		Spec: spec.PodSpec{NodeName: node, Containers: []spec.Container{{
			Name: "web", Image: "registry.local/web:1", Command: []string{"serve"}, Port: 8080,
		}}},
		Status: spec.PodStatus{Phase: spec.PodRunning, Ready: true, PodIP: ip},
	}
}

func TestRequestSucceedsOnHealthyPath(t *testing.T) {
	h := newHarness(t)
	res := h.state.Request("node-a", "10.96.0.1", 80)
	if res.Failed() {
		t.Fatalf("request failed: %s", res.Err)
	}
	if res.Latency <= 0 {
		t.Fatal("no latency modeled")
	}
}

func TestUnknownVIPRefused(t *testing.T) {
	h := newHarness(t)
	if res := h.state.Request("node-a", "10.96.9.9", 80); res.Err != ErrRefused {
		t.Fatalf("err = %q, want refused", res.Err)
	}
}

func TestWrongPortRefused(t *testing.T) {
	h := newHarness(t)
	if res := h.state.Request("node-a", "10.96.0.1", 443); res.Err != ErrRefused {
		t.Fatalf("err = %q, want refused (no such service port)", res.Err)
	}
}

func TestEmptyEndpointsRefused(t *testing.T) {
	h := newHarness(t)
	obj, err := h.api.Get(spec.KindEndpoints, spec.DefaultNamespace, "web")
	if err != nil {
		t.Fatal(err)
	}
	ep := obj.(*spec.Endpoints)
	ep.Subsets = nil
	if err := h.api.Update(ep); err != nil {
		t.Fatal(err)
	}
	h.loop.RunUntil(h.loop.Now() + time.Second)
	if res := h.state.Request("node-a", "10.96.0.1", 80); res.Err != ErrRefused {
		t.Fatalf("err = %q, want refused (no endpoints)", res.Err)
	}
}

func TestStaleEndpointReset(t *testing.T) {
	h := newHarness(t)
	// Kill the backing pod but leave the endpoints stale.
	if err := h.api.Delete(spec.KindPod, spec.DefaultNamespace, "web-1"); err != nil {
		t.Fatal(err)
	}
	h.loop.RunUntil(h.loop.Now() + time.Second)
	if res := h.state.Request("node-a", "10.96.0.1", 80); res.Err != ErrReset {
		t.Fatalf("err = %q, want reset (stale endpoint)", res.Err)
	}
}

func TestRoutesDecayAfterFlannelPodDies(t *testing.T) {
	h := newHarness(t)
	if !h.state.RoutesUp("node-b") {
		t.Fatal("routes should be up initially")
	}
	if err := h.api.Delete(spec.KindPod, spec.SystemNamespace, "flannel-node-b"); err != nil {
		t.Fatal(err)
	}
	h.loop.RunUntil(h.loop.Now() + time.Second)
	// Routes persist briefly...
	if !h.state.RoutesUp("node-b") {
		t.Fatal("routes dropped immediately; they should decay")
	}
	// ...then decay.
	h.loop.RunUntil(h.loop.Now() + routeDecay + time.Second)
	if h.state.RoutesUp("node-b") {
		t.Fatal("routes still up after decay window")
	}
	if res := h.state.Request("node-a", "10.96.0.1", 80); res.Err != ErrTimeout {
		t.Fatalf("err = %q, want timeout (routes down)", res.Err)
	}
	if !h.state.NetworkPodsFailing() {
		t.Fatal("NetworkPodsFailing = false with a dead flannel pod")
	}
}

func TestCorruptedNetConfigDropsAllRoutes(t *testing.T) {
	// The paper's "misconfigured networking daemons that caused a global
	// network outage": corrupting the overlay ConfigMap takes every node's
	// routes down (the Reddit-style cluster-wide failure).
	h := newHarness(t)
	obj, err := h.api.Get(spec.KindConfigMap, spec.SystemNamespace, NetConfigMapName)
	if err != nil {
		t.Fatal(err)
	}
	cm := spec.CloneForWriteAs(obj.(*spec.ConfigMap))
	cm.Data[NetConfigKey] = "ovurlay:garbage" // single corrupted value
	if err := h.api.Update(cm); err != nil {
		t.Fatal(err)
	}
	h.loop.RunUntil(h.loop.Now() + time.Second)
	if h.state.RoutesUp("node-a") || h.state.RoutesUp("node-b") {
		t.Fatal("routes survived config corruption")
	}
	if res := h.state.Request("node-a", "10.96.0.1", 80); res.Err != ErrTimeout {
		t.Fatalf("err = %q, want timeout (global outage)", res.Err)
	}
}

func TestDNSHealth(t *testing.T) {
	h := newHarness(t)
	if h.state.DNSHealthy() {
		t.Fatal("DNS healthy without DNS pods")
	}
	dns := h.webPod("coredns-1", "node-a", "10.244.0.9")
	dns.Metadata.Namespace = spec.SystemNamespace
	dns.Metadata.Labels = map[string]string{spec.LabelApp: DNSLabel}
	h.mustCreate(dns)
	h.loop.RunUntil(h.loop.Now() + time.Second)
	if !h.state.DNSHealthy() {
		t.Fatal("DNS unhealthy with a ready DNS pod")
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	h := newHarness(t)
	h.mustCreate(h.webPod("web-2", "node-a", "10.244.1.3"))
	obj, _ := h.api.Get(spec.KindEndpoints, spec.DefaultNamespace, "web")
	ep := obj.(*spec.Endpoints)
	ep.Subsets[0].Addresses = append(ep.Subsets[0].Addresses, spec.EndpointAddress{
		IP: "10.244.1.3", NodeName: "node-a", TargetRef: spec.TargetRef{Kind: "Pod", Name: "web-2"},
	})
	if err := h.api.Update(ep); err != nil {
		t.Fatal(err)
	}
	h.loop.RunUntil(h.loop.Now() + time.Second)
	// With two backends, latency under sustained load must stay below the
	// single-backend saturation latency.
	var single, double time.Duration
	for i := 0; i < 40; i++ {
		res := h.state.Request("node-a", "10.96.0.1", 80)
		if res.Failed() {
			t.Fatalf("request %d failed: %s", i, res.Err)
		}
		double += res.Latency
	}
	_ = single
	avg := double / 40
	if avg > 120*time.Millisecond {
		t.Fatalf("average latency %v implausible with two backends", avg)
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	h := newHarness(t)
	first := h.state.Request("node-a", "10.96.0.1", 80).Latency
	var last time.Duration
	for i := 0; i < 30; i++ {
		last = h.state.Request("node-a", "10.96.0.1", 80).Latency
	}
	if last <= first {
		t.Fatalf("latency did not grow under burst load: first %v, last %v", first, last)
	}
}
