package netsim

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

// harness wires a netsim state to a bare apiserver and populates a minimal
// two-node data plane: flannel pods on both nodes, a config map, a service
// with one ready backend pod.
type harness struct {
	loop  *sim.Loop
	state *State
	api   *apiserver.Client
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	loop := sim.NewLoop(1)
	st := store.New(loop, nil)
	srv := apiserver.New(loop, st, nil)
	h := &harness{loop: loop, state: New(loop, srv), api: srv.ClientFor("test")}

	for _, ns := range []string{spec.DefaultNamespace, spec.SystemNamespace} {
		h.mustCreate(&spec.Namespace{Metadata: spec.ObjectMeta{Name: ns}, Phase: "Active"})
	}
	h.mustCreate(&spec.ConfigMap{
		Metadata: spec.ObjectMeta{Name: NetConfigMapName, Namespace: spec.SystemNamespace},
		Data:     map[string]string{NetConfigKey: NetConfigValue},
	})
	for i, node := range []string{"node-a", "node-b"} {
		h.mustCreate(&spec.Node{
			Metadata: spec.ObjectMeta{Name: node},
			Status:   spec.NodeStatus{Ready: true},
		})
		h.mustCreate(h.flannelPod(node, i))
	}
	h.mustCreate(&spec.Service{
		Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace},
		Spec: spec.ServiceSpec{
			Selector:  map[string]string{"app": "web"},
			ClusterIP: "10.96.0.1",
			Ports:     []spec.ServicePort{{Port: 80, TargetPort: 8080, Protocol: "TCP"}},
		},
	})
	h.mustCreate(h.webPod("web-1", "node-b", "10.244.2.2"))
	h.mustCreate(&spec.Endpoints{
		Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace},
		Subsets: []spec.EndpointSubset{{
			Addresses: []spec.EndpointAddress{{IP: "10.244.2.2", NodeName: "node-b",
				TargetRef: spec.TargetRef{Kind: "Pod", Name: "web-1"}}},
			Ports: []int64{8080},
		}},
	})
	loop.RunUntil(time.Second)
	return h
}

func (h *harness) mustCreate(obj spec.Object) {
	if err := h.api.Create(obj); err != nil {
		panic(err)
	}
}

func (h *harness) flannelPod(node string, i int) *spec.Pod {
	return &spec.Pod{
		Metadata: spec.ObjectMeta{
			Name: "flannel-" + node, Namespace: spec.SystemNamespace,
			Labels: map[string]string{spec.LabelApp: NetManagerLabel},
		},
		Spec: spec.PodSpec{NodeName: node, Containers: []spec.Container{{
			Name: "f", Image: "registry.local/flannel:1", Command: []string{"flanneld"},
		}}},
		Status: spec.PodStatus{Phase: spec.PodRunning, Ready: true, PodIP: "10.244.0." + string(rune('2'+i))},
	}
}

func (h *harness) webPod(name, node, ip string) *spec.Pod {
	return &spec.Pod{
		Metadata: spec.ObjectMeta{
			Name: name, Namespace: spec.DefaultNamespace,
			Labels: map[string]string{"app": "web"},
		},
		Spec: spec.PodSpec{NodeName: node, Containers: []spec.Container{{
			Name: "web", Image: "registry.local/web:1", Command: []string{"serve"}, Port: 8080,
		}}},
		Status: spec.PodStatus{Phase: spec.PodRunning, Ready: true, PodIP: ip},
	}
}

func TestRequestSucceedsOnHealthyPath(t *testing.T) {
	h := newHarness(t)
	res := h.state.Request("node-a", "10.96.0.1", 80)
	if res.Failed() {
		t.Fatalf("request failed: %s", res.Err)
	}
	if res.Latency <= 0 {
		t.Fatal("no latency modeled")
	}
}

func TestUnknownVIPRefused(t *testing.T) {
	h := newHarness(t)
	if res := h.state.Request("node-a", "10.96.9.9", 80); res.Err != ErrRefused {
		t.Fatalf("err = %q, want refused", res.Err)
	}
}

func TestWrongPortRefused(t *testing.T) {
	h := newHarness(t)
	if res := h.state.Request("node-a", "10.96.0.1", 443); res.Err != ErrRefused {
		t.Fatalf("err = %q, want refused (no such service port)", res.Err)
	}
}

func TestEmptyEndpointsRefused(t *testing.T) {
	h := newHarness(t)
	obj, err := h.api.Get(spec.KindEndpoints, spec.DefaultNamespace, "web")
	if err != nil {
		t.Fatal(err)
	}
	ep := obj.(*spec.Endpoints)
	ep.Subsets = nil
	if err := h.api.Update(ep); err != nil {
		t.Fatal(err)
	}
	h.loop.RunUntil(h.loop.Now() + time.Second)
	if res := h.state.Request("node-a", "10.96.0.1", 80); res.Err != ErrRefused {
		t.Fatalf("err = %q, want refused (no endpoints)", res.Err)
	}
}

func TestStaleEndpointReset(t *testing.T) {
	h := newHarness(t)
	// Kill the backing pod but leave the endpoints stale.
	if err := h.api.Delete(spec.KindPod, spec.DefaultNamespace, "web-1"); err != nil {
		t.Fatal(err)
	}
	h.loop.RunUntil(h.loop.Now() + time.Second)
	if res := h.state.Request("node-a", "10.96.0.1", 80); res.Err != ErrReset {
		t.Fatalf("err = %q, want reset (stale endpoint)", res.Err)
	}
}

func TestRoutesDecayAfterFlannelPodDies(t *testing.T) {
	h := newHarness(t)
	if !h.state.RoutesUp("node-b") {
		t.Fatal("routes should be up initially")
	}
	if err := h.api.Delete(spec.KindPod, spec.SystemNamespace, "flannel-node-b"); err != nil {
		t.Fatal(err)
	}
	h.loop.RunUntil(h.loop.Now() + time.Second)
	// Routes persist briefly...
	if !h.state.RoutesUp("node-b") {
		t.Fatal("routes dropped immediately; they should decay")
	}
	// ...then decay.
	h.loop.RunUntil(h.loop.Now() + routeDecay + time.Second)
	if h.state.RoutesUp("node-b") {
		t.Fatal("routes still up after decay window")
	}
	if res := h.state.Request("node-a", "10.96.0.1", 80); res.Err != ErrTimeout {
		t.Fatalf("err = %q, want timeout (routes down)", res.Err)
	}
	if !h.state.NetworkPodsFailing() {
		t.Fatal("NetworkPodsFailing = false with a dead flannel pod")
	}
}

func TestCorruptedNetConfigDropsAllRoutes(t *testing.T) {
	// The paper's "misconfigured networking daemons that caused a global
	// network outage": corrupting the overlay ConfigMap takes every node's
	// routes down (the Reddit-style cluster-wide failure).
	h := newHarness(t)
	obj, err := h.api.Get(spec.KindConfigMap, spec.SystemNamespace, NetConfigMapName)
	if err != nil {
		t.Fatal(err)
	}
	cm := spec.CloneForWriteAs(obj.(*spec.ConfigMap))
	cm.Data[NetConfigKey] = "ovurlay:garbage" // single corrupted value
	if err := h.api.Update(cm); err != nil {
		t.Fatal(err)
	}
	h.loop.RunUntil(h.loop.Now() + time.Second)
	if h.state.RoutesUp("node-a") || h.state.RoutesUp("node-b") {
		t.Fatal("routes survived config corruption")
	}
	if res := h.state.Request("node-a", "10.96.0.1", 80); res.Err != ErrTimeout {
		t.Fatalf("err = %q, want timeout (global outage)", res.Err)
	}
}

func TestDNSHealth(t *testing.T) {
	h := newHarness(t)
	if h.state.DNSHealthy() {
		t.Fatal("DNS healthy without DNS pods")
	}
	dns := h.webPod("coredns-1", "node-a", "10.244.0.9")
	dns.Metadata.Namespace = spec.SystemNamespace
	dns.Metadata.Labels = map[string]string{spec.LabelApp: DNSLabel}
	h.mustCreate(dns)
	h.loop.RunUntil(h.loop.Now() + time.Second)
	if !h.state.DNSHealthy() {
		t.Fatal("DNS unhealthy with a ready DNS pod")
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	h := newHarness(t)
	h.mustCreate(h.webPod("web-2", "node-a", "10.244.1.3"))
	obj, _ := h.api.Get(spec.KindEndpoints, spec.DefaultNamespace, "web")
	ep := obj.(*spec.Endpoints)
	ep.Subsets[0].Addresses = append(ep.Subsets[0].Addresses, spec.EndpointAddress{
		IP: "10.244.1.3", NodeName: "node-a", TargetRef: spec.TargetRef{Kind: "Pod", Name: "web-2"},
	})
	if err := h.api.Update(ep); err != nil {
		t.Fatal(err)
	}
	h.loop.RunUntil(h.loop.Now() + time.Second)
	// With two backends, latency under sustained load must stay below the
	// single-backend saturation latency.
	var single, double time.Duration
	for i := 0; i < 40; i++ {
		res := h.state.Request("node-a", "10.96.0.1", 80)
		if res.Failed() {
			t.Fatalf("request %d failed: %s", i, res.Err)
		}
		double += res.Latency
	}
	_ = single
	avg := double / 40
	if avg > 120*time.Millisecond {
		t.Fatalf("average latency %v implausible with two backends", avg)
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	h := newHarness(t)
	first := h.state.Request("node-a", "10.96.0.1", 80).Latency
	var last time.Duration
	for i := 0; i < 30; i++ {
		last = h.state.Request("node-a", "10.96.0.1", 80).Latency
	}
	if last <= first {
		t.Fatalf("latency did not grow under burst load: first %v, last %v", first, last)
	}
}

// zonedHarness builds a three-zone cloud-edge data plane: one node per zone
// (core, regional-1, edge-2), flannel on each, and a web service backed by a
// single pod in the core zone.
func newZonedHarness(t *testing.T) *harness {
	t.Helper()
	loop := sim.NewLoop(1)
	st := store.New(loop, nil)
	srv := apiserver.New(loop, st, nil)
	h := &harness{loop: loop, state: New(loop, srv), api: srv.ClientFor("test")}

	for _, ns := range []string{spec.DefaultNamespace, spec.SystemNamespace} {
		h.mustCreate(&spec.Namespace{Metadata: spec.ObjectMeta{Name: ns}, Phase: "Active"})
	}
	h.mustCreate(&spec.ConfigMap{
		Metadata: spec.ObjectMeta{Name: NetConfigMapName, Namespace: spec.SystemNamespace},
		Data:     map[string]string{NetConfigKey: NetConfigValue},
	})
	for i, node := range []string{"node-core", "node-reg", "node-edge"} {
		h.mustCreate(&spec.Node{
			Metadata: spec.ObjectMeta{
				Name:   node,
				Labels: map[string]string{LabelZone: ZoneName(i, 3)},
			},
			Status: spec.NodeStatus{Ready: true},
		})
		h.mustCreate(h.flannelPod(node, i))
	}
	h.mustCreate(&spec.Service{
		Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace},
		Spec: spec.ServiceSpec{
			Selector:  map[string]string{"app": "web"},
			ClusterIP: "10.96.0.1",
			Ports:     []spec.ServicePort{{Port: 80, TargetPort: 8080, Protocol: "TCP"}},
		},
	})
	h.mustCreate(h.webPod("web-core", "node-core", "10.244.10.2"))
	h.mustCreate(&spec.Endpoints{
		Metadata: spec.ObjectMeta{Name: "web", Namespace: spec.DefaultNamespace},
		Subsets: []spec.EndpointSubset{{
			Addresses: []spec.EndpointAddress{{IP: "10.244.10.2", NodeName: "node-core",
				TargetRef: spec.TargetRef{Kind: "Pod", Name: "web-core"}}},
			Ports: []int64{8080},
		}},
	})
	loop.RunUntil(time.Second)
	return h
}

// addEdgeBackend grows the web service with a second pod in the edge zone.
func (h *harness) addEdgeBackend(t *testing.T) {
	t.Helper()
	h.mustCreate(h.webPod("web-edge", "node-edge", "10.244.11.2"))
	obj, err := h.api.Get(spec.KindEndpoints, spec.DefaultNamespace, "web")
	if err != nil {
		t.Fatal(err)
	}
	ep := spec.CloneForWriteAs(obj.(*spec.Endpoints))
	ep.Subsets[0].Addresses = append(ep.Subsets[0].Addresses, spec.EndpointAddress{
		IP: "10.244.11.2", NodeName: "node-edge",
		TargetRef: spec.TargetRef{Kind: "Pod", Name: "web-edge"},
	})
	if err := h.api.Update(ep); err != nil {
		t.Fatal(err)
	}
	h.loop.RunUntil(h.loop.Now() + time.Second)
}

// request retries through link loss: edge links drop a small fraction of
// requests, so tests that care about latency take the first success.
func (h *harness) request(t *testing.T, from string) RequestResult {
	t.Helper()
	for i := 0; i < 20; i++ {
		res := h.state.Request(from, "10.96.0.1", 80)
		if !res.Failed() {
			return res
		}
		if res.Err != ErrTimeout {
			t.Fatalf("request from %s: err = %q, want success or loss timeout", from, res.Err)
		}
	}
	t.Fatalf("request from %s: 20 consecutive losses", from)
	return RequestResult{}
}

func TestLinkClassBetween(t *testing.T) {
	cases := []struct {
		a, b string
		want LinkClass
	}{
		{"", "", LinkLocal},
		{"core", "core", LinkLocal},
		{"edge-2", "edge-2", LinkLocal},
		{"core", "regional-1", LinkRegional},
		{"regional-1", "core", LinkRegional},
		{"core", "edge-2", LinkEdge},
		{"edge-2", "regional-1", LinkEdge},
	}
	for _, c := range cases {
		if got := LinkClassBetween(c.a, c.b); got != c.want {
			t.Errorf("LinkClassBetween(%q, %q) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestZoneNames(t *testing.T) {
	if z := ZoneName(0, 3); z != "core" {
		t.Fatalf("zone 0 = %q, want core", z)
	}
	if z := ZoneName(1, 3); z != "regional-1" {
		t.Fatalf("zone 1 = %q, want regional-1", z)
	}
	if z := ZoneName(2, 3); z != "edge-2" || !ZoneIsEdge(z) {
		t.Fatalf("zone 2 = %q, want an edge zone", z)
	}
	if z := ZoneName(0, 1); z != "" {
		t.Fatalf("flat cluster zone = %q, want empty", z)
	}
}

func TestCrossZoneLatencyPerHop(t *testing.T) {
	h := newZonedHarness(t)
	if z := h.state.ZoneOf("node-edge"); z != "edge-2" {
		t.Fatalf("ZoneOf(node-edge) = %q, want edge-2", z)
	}
	// Core → core backend: local link, no cross-zone hop.
	local := h.request(t, "node-core").Latency
	if local >= ProfileFor(LinkEdge).Latency {
		t.Fatalf("intra-zone latency %v at or above the edge-link floor", local)
	}
	// Edge → core backend: the edge link adds its latency floor and halves
	// effective bandwidth, so the request is strictly slower.
	cross := h.request(t, "node-edge").Latency
	if cross < ProfileFor(LinkEdge).Latency {
		t.Fatalf("cross-edge latency %v below the %v link floor", cross, ProfileFor(LinkEdge).Latency)
	}
	if cross <= local {
		t.Fatalf("cross-edge latency %v not above intra-zone %v", cross, local)
	}
}

func TestEdgeLinkLoss(t *testing.T) {
	h := newZonedHarness(t)
	losses := 0
	for i := 0; i < 500; i++ {
		if res := h.state.Request("node-edge", "10.96.0.1", 80); res.Err == ErrTimeout {
			losses++
		}
	}
	if losses == 0 {
		t.Fatal("no losses over 500 requests across a 2%-loss edge link")
	}
	if losses > 50 {
		t.Fatalf("%d/500 losses implausible for a 2%%-loss link", losses)
	}
}

func TestSameZonePreferenceAvoidsEdgeLink(t *testing.T) {
	h := newZonedHarness(t)
	h.addEdgeBackend(t)
	// With a ready same-zone backend, kube-proxy keeps edge traffic local:
	// no request is lost, and none pays the cross-edge floor (40ms link +
	// bandwidth-doubled service time ≥ 100ms total).
	for i := 0; i < 5; i++ {
		res := h.state.Request("node-edge", "10.96.0.1", 80)
		if res.Failed() {
			t.Fatalf("request %d failed (%s): same-zone path has no loss", i, res.Err)
		}
		if res.Latency >= 90*time.Millisecond {
			t.Fatalf("request %d latency %v crossed the edge link despite a local backend", i, res.Latency)
		}
	}
	// The regional node has no local backend and must spill cross-zone.
	if res := h.request(t, "node-reg"); res.Latency < ProfileFor(LinkRegional).Latency {
		t.Fatalf("regional spill-over latency %v below the regional link floor", res.Latency)
	}
}

func TestZonePartitionReachabilityMatrix(t *testing.T) {
	h := newZonedHarness(t)
	h.state.SetZoneLink("edge-2", false)

	if !h.state.ZoneLinkCut("edge-2") || !h.state.TopologyImpaired() {
		t.Fatal("partition not reflected in zone state")
	}
	want := map[[2]string]bool{
		{"node-core", "node-reg"}:  true,  // core ↔ regional unaffected
		{"node-core", "node-edge"}: false, // uplink cut
		{"node-reg", "node-edge"}:  false,
		{"node-edge", "node-edge"}: true, // intra-zone traffic survives
		{"node-core", "node-core"}: true,
	}
	for pair, reachable := range want {
		if got := h.state.RouteBetween(pair[0], pair[1]); got != reachable {
			t.Errorf("RouteBetween(%s, %s) = %v, want %v", pair[0], pair[1], got, reachable)
		}
	}
	if res := h.state.Request("node-edge", "10.96.0.1", 80); res.Err != ErrTimeout {
		t.Fatalf("partitioned edge request err = %q, want timeout", res.Err)
	}
	// Core clients never left the core zone.
	if res := h.request(t, "node-core"); res.Failed() {
		t.Fatalf("core request failed during edge partition: %s", res.Err)
	}

	h.state.SetZoneLink("edge-2", true)
	if h.state.TopologyImpaired() {
		t.Fatal("still impaired after heal")
	}
	if !h.state.RouteBetween("node-core", "node-edge") {
		t.Fatal("edge unreachable after heal")
	}
	if res := h.request(t, "node-edge"); res.Failed() {
		t.Fatalf("edge request failed after heal: %s", res.Err)
	}
}

func TestEdgeFlapRecovery(t *testing.T) {
	h := newZonedHarness(t)
	// Flap the edge uplink several times; each down half-cycle times out,
	// each up half-cycle serves again — no sticky state is left behind.
	for cycle := 0; cycle < 3; cycle++ {
		h.state.SetZoneLink("edge-2", false)
		if res := h.state.Request("node-edge", "10.96.0.1", 80); res.Err != ErrTimeout {
			t.Fatalf("cycle %d down: err = %q, want timeout", cycle, res.Err)
		}
		h.state.SetZoneLink("edge-2", true)
		if res := h.request(t, "node-edge"); res.Failed() {
			t.Fatalf("cycle %d up: request failed: %s", cycle, res.Err)
		}
	}
	if h.state.TopologyImpaired() {
		t.Fatal("impaired after final heal")
	}
}

func TestNodeLinkCutAndDNSReachability(t *testing.T) {
	h := newZonedHarness(t)
	dns := h.webPod("coredns-1", "node-core", "10.244.0.9")
	dns.Metadata.Namespace = spec.SystemNamespace
	dns.Metadata.Labels = map[string]string{spec.LabelApp: DNSLabel}
	h.mustCreate(dns)
	h.loop.RunUntil(h.loop.Now() + time.Second)

	if !h.state.DNSHealthyFrom("node-edge") {
		t.Fatal("DNS unreachable from edge on a healthy topology")
	}
	// Cut the edge node's own link: it can reach nothing, and nothing
	// reaches it — but other nodes are untouched.
	h.state.SetNodeLink("node-edge", false)
	if h.state.RouteBetween("node-edge", "node-core") || h.state.RouteBetween("node-core", "node-edge") {
		t.Fatal("cut node still routable")
	}
	if h.state.DNSHealthyFrom("node-edge") {
		t.Fatal("DNS reachable from a cut node")
	}
	if !h.state.DNSHealthyFrom("node-reg") {
		t.Fatal("node-level cut leaked into another zone")
	}
	h.state.SetNodeLink("node-edge", true)
	if !h.state.DNSHealthyFrom("node-edge") || h.state.TopologyImpaired() {
		t.Fatal("node link heal did not restore reachability")
	}
	// A zone partition severs DNS for the isolated zone only.
	h.state.SetZoneLink("edge-2", false)
	if h.state.DNSHealthyFrom("node-edge") {
		t.Fatal("DNS reachable across a cut zone uplink")
	}
	if !h.state.DNSHealthyFrom("node-reg") {
		t.Fatal("edge partition severed regional DNS")
	}
}
