// Topology: named zones and per-link classes over the virtual network.
//
// A zoned cluster (cluster.Config.Zones >= 2) spreads its nodes over a cloud
// core zone, optional regional zones, and an edge zone. Zone membership is
// ordinary cluster state — a label on the Node object — so the data plane
// learns it through the same node watch that feeds the route table, and a
// forked cluster rebuilds the zone view with the normal Prime re-list.
//
// Links between zones carry a class (local, regional, edge) with a latency,
// loss and bandwidth profile; Request resolves the class from the caller's
// and the serving pod's zones, so cross-zone requests are measurably slower
// and lossier than intra-zone ones, and kube-proxy prefers same-zone
// endpoints when any are ready (topology-aware routing). The fault axes cut
// whole zone uplinks (partition, flap) or individual node links (mass
// node-kill); both manifest as timeouts on the affected paths only.
package netsim

import (
	"strings"
	"time"

	"github.com/mutiny-sim/mutiny/internal/spec"
)

// LabelZone is the node label carrying zone membership (the upstream
// topology.kubernetes.io/zone convention).
const LabelZone = spec.LabelZone

// ZoneName names zone i of a zones-sized topology: zone 0 is the cloud core,
// the last zone is the edge, anything between is regional. Flat clusters
// (zones < 2) have no zone names.
func ZoneName(i, zones int) string {
	if zones < 2 || i < 0 || i >= zones {
		return ""
	}
	switch {
	case i == 0:
		return "core"
	case i == zones-1:
		return "edge-" + itoa(i)
	default:
		return "regional-" + itoa(i)
	}
}

// itoa avoids strconv for the tiny zone indexes.
func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

// ZoneIsEdge reports whether a zone name denotes an edge zone.
func ZoneIsEdge(zone string) bool { return strings.HasPrefix(zone, "edge") }

// LinkClass classifies the network path between two zones.
type LinkClass int

const (
	// LinkLocal is the intra-zone (or flat-cluster) path: datacenter wiring.
	LinkLocal LinkClass = iota
	// LinkRegional connects the core to a regional zone (or two regional
	// zones): metro fiber, moderate latency, near-zero loss.
	LinkRegional
	// LinkEdge reaches an edge zone: high-latency, lossy, bandwidth-starved
	// last-mile links.
	LinkEdge
)

// String names the link class for tables and tests.
func (c LinkClass) String() string {
	switch c {
	case LinkRegional:
		return "regional"
	case LinkEdge:
		return "edge"
	default:
		return "local"
	}
}

// LinkProfile is the performance envelope of one link class.
type LinkProfile struct {
	// Latency is the per-request network latency across the link (the
	// kube-proxy hop for local traffic).
	Latency time.Duration
	// Loss is the probability one request is dropped on the link.
	Loss float64
	// Bandwidth inflates the service time of responses crossing the link
	// (payload transfer over a thinner pipe).
	Bandwidth float64
}

// linkProfiles maps each class to its envelope. LinkLocal reproduces the
// flat network exactly: proxyLatency, no loss, full bandwidth — zoned and
// flat clusters share one request path.
var linkProfiles = [...]LinkProfile{
	LinkLocal:    {Latency: proxyLatency, Loss: 0, Bandwidth: 1},
	LinkRegional: {Latency: 12 * time.Millisecond, Loss: 0.005, Bandwidth: 1.25},
	LinkEdge:     {Latency: 40 * time.Millisecond, Loss: 0.02, Bandwidth: 2},
}

// LinkClassBetween resolves the class of the path between two zones (either
// may be empty for flat clusters).
func LinkClassBetween(a, b string) LinkClass {
	if a == b {
		return LinkLocal
	}
	if ZoneIsEdge(a) || ZoneIsEdge(b) {
		return LinkEdge
	}
	return LinkRegional
}

// ProfileFor returns the envelope of a link class.
func ProfileFor(c LinkClass) LinkProfile { return linkProfiles[c] }

// ZoneOf returns the zone a node belongs to, or "" for unzoned nodes.
func (s *State) ZoneOf(node string) string {
	if n, ok := s.nodes[node]; ok {
		return n.Metadata.Labels[LabelZone]
	}
	return ""
}

// SetZoneLink cuts (up=false) or restores (up=true) a zone's uplink to every
// other zone. Intra-zone traffic is unaffected: an isolated edge site keeps
// serving its own clients.
func (s *State) SetZoneLink(zone string, up bool) {
	if up {
		delete(s.zoneDown, zone)
		return
	}
	s.zoneDown[zone] = true
}

// ZoneLinkCut reports whether a zone's uplink is currently cut.
func (s *State) ZoneLinkCut(zone string) bool { return s.zoneDown[zone] }

// SetNodeLink cuts or restores one node's network link (mass node-kill cuts
// a whole zone's nodes one by one).
func (s *State) SetNodeLink(node string, up bool) {
	if up {
		delete(s.nodeDown, node)
		return
	}
	s.nodeDown[node] = true
}

// ZonesConnected reports whether traffic can flow between two zones.
func (s *State) ZonesConnected(a, b string) bool {
	if a == b {
		return true
	}
	return !s.zoneDown[a] && !s.zoneDown[b]
}

// RouteBetween reports whether a request can travel from one node to
// another: both overlays up, both node links up, and the zone path intact.
func (s *State) RouteBetween(from, to string) bool {
	if s.nodeDown[from] || s.nodeDown[to] {
		return false
	}
	if !s.RoutesUp(from) || !s.RoutesUp(to) {
		return false
	}
	return s.ZonesConnected(s.ZoneOf(from), s.ZoneOf(to))
}

// TopologyImpaired reports whether any topology fault is currently applied
// (a zone uplink or node link cut) — the disruption-window probe.
func (s *State) TopologyImpaired() bool {
	return len(s.zoneDown)+len(s.nodeDown) > 0
}

// DNSHealthyFrom reports whether cluster DNS can answer a query from the
// given node: some ready DNS pod must be routable across the current zone
// links. On flat clusters this reduces to DNSHealthy.
func (s *State) DNSHealthyFrom(node string) bool {
	if s.nodeDown[node] {
		return false
	}
	for dnsNode, n := range s.dnsReady {
		if n > 0 && s.RouteBetween(node, dnsNode) {
			return true
		}
	}
	return false
}
