// Package raft implements a compact Raft consensus protocol (leader
// election, log replication, majority commit) over the simulation loop.
//
// It backs the replicated-control-plane ablation of §V-C1: the paper repeats
// the critical-field injections against a three-node control plane and finds
// no difference, because Mutiny corrupts transactions *before* the consensus
// algorithm runs — all replicas faithfully agree on the faulty value. The
// replicated store built on this package reproduces exactly that behaviour,
// while quorum reads mask single-replica at-rest corruption.
package raft

import (
	"errors"
	"fmt"
	"time"

	"github.com/mutiny-sim/mutiny/internal/sim"
)

// ErrNotLeader is returned by Propose when the node is not the leader.
var ErrNotLeader = errors.New("raft: not leader")

// State is a node's role.
type State int

// Node states.
const (
	Follower State = iota + 1
	Candidate
	Leader
)

func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Entry is one replicated log record.
type Entry struct {
	Term  int64
	Index int64
	Data  []byte
}

// Timing parameters, scaled for the simulated cluster.
const (
	heartbeatInterval  = 50 * time.Millisecond
	electionTimeoutMin = 150 * time.Millisecond
	electionTimeoutMax = 300 * time.Millisecond
	messageLatency     = 2 * time.Millisecond
)

type msgType int

const (
	msgVoteRequest msgType = iota + 1
	msgVoteResponse
	msgAppend
	msgAppendResponse
)

type message struct {
	typ  msgType
	from int
	term int64

	// vote request
	lastLogIndex int64
	lastLogTerm  int64
	// vote response
	granted bool
	// append
	prevLogIndex int64
	prevLogTerm  int64
	entries      []Entry
	leaderCommit int64
	// append response
	success    bool
	matchIndex int64
}

// Cluster is a set of raft nodes sharing a simulated transport.
type Cluster struct {
	loop  *sim.Loop
	nodes []*node
	// applyFn is invoked once per node per committed entry, in log order.
	applyFn func(nodeID int, e Entry)
	// cut[i][j] reports whether messages i→j are dropped (network partition).
	cut map[int]map[int]bool
}

type node struct {
	c  *Cluster
	id int

	state       State
	term        int64
	votedFor    int // -1 when unset
	log         []Entry
	commitIndex int64
	lastApplied int64

	votes      map[int]bool
	nextIndex  []int64
	matchIndex []int64

	electionTimer  sim.Timer
	heartbeatTimer sim.Timer
	stopped        bool
}

// NewCluster starts n raft nodes on the loop. applyFn receives committed
// entries per node; it may be nil.
func NewCluster(loop *sim.Loop, n int, applyFn func(nodeID int, e Entry)) *Cluster {
	if applyFn == nil {
		applyFn = func(int, Entry) {}
	}
	c := &Cluster{loop: loop, applyFn: applyFn, cut: make(map[int]map[int]bool)}
	for i := 0; i < n; i++ {
		nd := &node{c: c, id: i, state: Follower, votedFor: -1, votes: make(map[int]bool)}
		c.nodes = append(c.nodes, nd)
	}
	for _, nd := range c.nodes {
		nd.resetElectionTimer()
	}
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Leader returns the current leader's id, or -1 if none is established.
// Under a partition a deposed leader on the minority side still believes it
// leads (it cannot learn of the higher term), so the highest-term claimant
// wins the scan.
func (c *Cluster) Leader() int {
	best, bestTerm := -1, int64(-1)
	for _, nd := range c.nodes {
		if nd.state == Leader && !nd.stopped && nd.term > bestTerm {
			best, bestTerm = nd.id, nd.term
		}
	}
	return best
}

// LeaderFor returns the id of the highest-term leader reachable from origin
// (links intact in both directions), or -1 if none. Clients co-located with a
// partitioned store replica can only reach claimants on their own side.
func (c *Cluster) LeaderFor(origin int) int {
	best, bestTerm := -1, int64(-1)
	for _, nd := range c.nodes {
		if nd.state != Leader || nd.stopped || nd.term <= bestTerm {
			continue
		}
		if nd.id != origin && (c.cut[origin][nd.id] || c.cut[nd.id][origin]) {
			continue
		}
		best, bestTerm = nd.id, nd.term
	}
	return best
}

// ProposeTo appends data via a specific node, which must currently lead.
func (c *Cluster) ProposeTo(id int, data []byte) (int64, error) {
	return c.nodes[id].propose(data)
}

// Stopped reports whether a node is crashed.
func (c *Cluster) Stopped(id int) bool { return c.nodes[id].stopped }

// Term returns the highest term seen by any node (diagnostics).
func (c *Cluster) Term() int64 {
	var t int64
	for _, nd := range c.nodes {
		if nd.term > t {
			t = nd.term
		}
	}
	return t
}

// Propose appends data to the replicated log via the current leader. It
// returns the entry's log index, or ErrNotLeader if no leader is known.
func (c *Cluster) Propose(data []byte) (int64, error) {
	id := c.Leader()
	if id < 0 {
		return 0, ErrNotLeader
	}
	return c.nodes[id].propose(data)
}

// StopNode crashes a node: it stops participating until RestartNode.
func (c *Cluster) StopNode(id int) {
	nd := c.nodes[id]
	nd.stopped = true
	nd.stopTimers()
}

// RestartNode revives a crashed node as a follower with its log intact.
func (c *Cluster) RestartNode(id int) {
	nd := c.nodes[id]
	nd.stopped = false
	nd.state = Follower
	nd.votedFor = -1
	nd.resetElectionTimer()
}

// InstallSnapshot fast-forwards node id to node from's log and commit state,
// marking everything up to the commit index as applied. It models an etcd
// snapshot transfer: the receiving store is assumed to have been resynced
// from the donor out of band, so the skipped entries must not be re-applied.
func (c *Cluster) InstallSnapshot(id, from int) {
	dst, src := c.nodes[id], c.nodes[from]
	dst.log = append([]Entry(nil), src.log...)
	dst.commitIndex = src.commitIndex
	dst.lastApplied = src.commitIndex
	if src.term > dst.term {
		dst.term = src.term
		dst.votedFor = -1
	}
}

// Partition drops all traffic between the two groups of nodes until Heal.
func (c *Cluster) Partition(groupA, groupB []int) {
	for _, a := range groupA {
		for _, b := range groupB {
			c.cutLink(a, b)
			c.cutLink(b, a)
		}
	}
}

// Heal removes all partitions.
func (c *Cluster) Heal() { c.cut = make(map[int]map[int]bool) }

// CommittedIndex returns a node's commit index (diagnostics/tests).
func (c *Cluster) CommittedIndex(id int) int64 { return c.nodes[id].commitIndex }

// LogOf returns a copy of a node's log (tests).
func (c *Cluster) LogOf(id int) []Entry {
	return append([]Entry(nil), c.nodes[id].log...)
}

// StateOf returns a node's current state.
func (c *Cluster) StateOf(id int) State { return c.nodes[id].state }

func (c *Cluster) cutLink(from, to int) {
	if c.cut[from] == nil {
		c.cut[from] = make(map[int]bool)
	}
	c.cut[from][to] = true
}

func (c *Cluster) send(from, to int, m message) {
	if c.cut[from][to] {
		return
	}
	m.from = from
	c.loop.After(messageLatency, func() {
		dst := c.nodes[to]
		if !dst.stopped {
			dst.receive(m)
		}
	})
}

func (c *Cluster) broadcast(from int, m message) {
	for _, nd := range c.nodes {
		if nd.id != from {
			c.send(from, nd.id, m)
		}
	}
}

// --- node behaviour -----------------------------------------------------------

func (n *node) resetElectionTimer() {
	n.electionTimer.Stop()
	span := int64(electionTimeoutMax - electionTimeoutMin)
	d := electionTimeoutMin + time.Duration(n.c.loop.Rand().Int63n(span))
	n.electionTimer = n.c.loop.After(d, n.startElection)
}

func (n *node) stopTimers() {
	n.electionTimer.Stop()
	n.heartbeatTimer.Stop()
}

func (n *node) lastLogIndex() int64 {
	return int64(len(n.log))
}

func (n *node) lastLogTerm() int64 {
	if len(n.log) == 0 {
		return 0
	}
	return n.log[len(n.log)-1].Term
}

func (n *node) entryAt(index int64) (Entry, bool) {
	if index < 1 || index > int64(len(n.log)) {
		return Entry{}, false
	}
	return n.log[index-1], true
}

func (n *node) startElection() {
	if n.stopped {
		return
	}
	n.state = Candidate
	n.term++
	n.votedFor = n.id
	n.votes = map[int]bool{n.id: true}
	n.resetElectionTimer()
	n.c.broadcast(n.id, message{
		typ:          msgVoteRequest,
		term:         n.term,
		lastLogIndex: n.lastLogIndex(),
		lastLogTerm:  n.lastLogTerm(),
	})
	n.maybeWinElection()
}

func (n *node) maybeWinElection() {
	if n.state != Candidate || len(n.votes) <= len(n.c.nodes)/2 {
		return
	}
	n.state = Leader
	n.nextIndex = make([]int64, len(n.c.nodes))
	n.matchIndex = make([]int64, len(n.c.nodes))
	for i := range n.nextIndex {
		n.nextIndex[i] = n.lastLogIndex() + 1
	}
	n.heartbeatTimer.Stop()
	n.heartbeatTimer = n.c.loop.Every(heartbeatInterval, n.sendHeartbeats)
	n.sendHeartbeats()
}

func (n *node) sendHeartbeats() {
	if n.stopped || n.state != Leader {
		return
	}
	for _, peer := range n.c.nodes {
		if peer.id == n.id {
			continue
		}
		n.replicateTo(peer.id)
	}
}

func (n *node) replicateTo(peer int) {
	prevIndex := n.nextIndex[peer] - 1
	var prevTerm int64
	if e, ok := n.entryAt(prevIndex); ok {
		prevTerm = e.Term
	}
	var entries []Entry
	if n.lastLogIndex() >= n.nextIndex[peer] {
		entries = append(entries, n.log[n.nextIndex[peer]-1:]...)
	}
	n.c.send(n.id, peer, message{
		typ:          msgAppend,
		term:         n.term,
		prevLogIndex: prevIndex,
		prevLogTerm:  prevTerm,
		entries:      entries,
		leaderCommit: n.commitIndex,
	})
}

func (n *node) propose(data []byte) (int64, error) {
	if n.state != Leader || n.stopped {
		return 0, ErrNotLeader
	}
	e := Entry{Term: n.term, Index: n.lastLogIndex() + 1, Data: data}
	n.log = append(n.log, e)
	n.matchIndex[n.id] = e.Index
	n.sendHeartbeats()
	// A single-node cluster commits immediately.
	n.advanceCommit()
	return e.Index, nil
}

func (n *node) receive(m message) {
	if m.term > n.term {
		n.term = m.term
		n.stepDown()
	}
	switch m.typ {
	case msgVoteRequest:
		n.onVoteRequest(m)
	case msgVoteResponse:
		n.onVoteResponse(m)
	case msgAppend:
		n.onAppend(m)
	case msgAppendResponse:
		n.onAppendResponse(m)
	}
}

func (n *node) stepDown() {
	if n.state == Leader {
		n.heartbeatTimer.Stop()
	}
	n.state = Follower
	n.votedFor = -1
	n.resetElectionTimer()
}

func (n *node) onVoteRequest(m message) {
	granted := false
	if m.term >= n.term && (n.votedFor == -1 || n.votedFor == m.from) {
		// Election restriction: candidate's log must be at least as
		// up-to-date as ours (Raft §5.4.1).
		upToDate := m.lastLogTerm > n.lastLogTerm() ||
			(m.lastLogTerm == n.lastLogTerm() && m.lastLogIndex >= n.lastLogIndex())
		if upToDate {
			granted = true
			n.votedFor = m.from
			n.resetElectionTimer()
		}
	}
	n.c.send(n.id, m.from, message{typ: msgVoteResponse, term: n.term, granted: granted})
}

func (n *node) onVoteResponse(m message) {
	if n.state != Candidate || m.term != n.term || !m.granted {
		return
	}
	n.votes[m.from] = true
	n.maybeWinElection()
}

func (n *node) onAppend(m message) {
	if m.term < n.term {
		n.c.send(n.id, m.from, message{typ: msgAppendResponse, term: n.term, success: false})
		return
	}
	if n.state != Follower {
		n.stepDown()
	}
	n.resetElectionTimer()

	// Consistency check on the previous entry.
	if m.prevLogIndex > 0 {
		e, ok := n.entryAt(m.prevLogIndex)
		if !ok || e.Term != m.prevLogTerm {
			n.c.send(n.id, m.from, message{typ: msgAppendResponse, term: n.term, success: false})
			return
		}
	}
	// Append entries, truncating conflicts.
	for _, e := range m.entries {
		if existing, ok := n.entryAt(e.Index); ok {
			if existing.Term != e.Term {
				n.log = n.log[:e.Index-1]
				n.log = append(n.log, e)
			}
		} else {
			n.log = append(n.log, e)
		}
	}
	if m.leaderCommit > n.commitIndex {
		n.commitIndex = min64(m.leaderCommit, n.lastLogIndex())
		n.applyCommitted()
	}
	n.c.send(n.id, m.from, message{
		typ: msgAppendResponse, term: n.term, success: true, matchIndex: n.lastLogIndex(),
	})
}

func (n *node) onAppendResponse(m message) {
	if n.state != Leader || m.term != n.term {
		return
	}
	if m.success {
		if m.matchIndex > n.matchIndex[m.from] {
			n.matchIndex[m.from] = m.matchIndex
			n.nextIndex[m.from] = m.matchIndex + 1
			n.advanceCommit()
		}
		return
	}
	if n.nextIndex[m.from] > 1 {
		n.nextIndex[m.from]--
		n.replicateTo(m.from)
	}
}

func (n *node) advanceCommit() {
	for idx := n.commitIndex + 1; idx <= n.lastLogIndex(); idx++ {
		e, _ := n.entryAt(idx)
		if e.Term != n.term {
			continue // only commit entries from the current term (Raft §5.4.2)
		}
		count := 0
		for _, match := range n.matchIndex {
			if match >= idx {
				count++
			}
		}
		if count > len(n.c.nodes)/2 {
			n.commitIndex = idx
		}
	}
	n.applyCommitted()
}

func (n *node) applyCommitted() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		e, _ := n.entryAt(n.lastApplied)
		n.c.applyFn(n.id, e)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
