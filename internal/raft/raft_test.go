package raft

import (
	"fmt"
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/sim"
)

func settle(loop *sim.Loop, d time.Duration) {
	loop.RunUntil(loop.Now() + d)
}

func TestLeaderElection(t *testing.T) {
	loop := sim.NewLoop(1)
	c := NewCluster(loop, 3, nil)
	settle(loop, 2*time.Second)
	if c.Leader() < 0 {
		t.Fatal("no leader elected after 2s")
	}
	leaders := 0
	for i := 0; i < c.Size(); i++ {
		if c.StateOf(i) == Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", leaders)
	}
}

func TestReplicationReachesAllNodes(t *testing.T) {
	loop := sim.NewLoop(2)
	applied := make(map[int][]string)
	c := NewCluster(loop, 3, func(id int, e Entry) {
		applied[id] = append(applied[id], string(e.Data))
	})
	settle(loop, 2*time.Second)
	for i := 0; i < 5; i++ {
		if _, err := c.Propose([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatalf("Propose %d: %v", i, err)
		}
		settle(loop, 200*time.Millisecond)
	}
	settle(loop, time.Second)
	for id := 0; id < 3; id++ {
		if len(applied[id]) != 5 {
			t.Fatalf("node %d applied %d entries, want 5: %v", id, len(applied[id]), applied[id])
		}
		for i, op := range applied[id] {
			if want := fmt.Sprintf("op-%d", i); op != want {
				t.Fatalf("node %d applied %q at %d, want %q", id, op, i, want)
			}
		}
	}
}

func TestProposeWithoutLeader(t *testing.T) {
	loop := sim.NewLoop(3)
	c := NewCluster(loop, 3, nil)
	// No time has passed: no leader yet.
	if _, err := c.Propose([]byte("x")); err == nil {
		t.Fatal("Propose before election succeeded")
	}
}

func TestLeaderFailover(t *testing.T) {
	loop := sim.NewLoop(4)
	c := NewCluster(loop, 3, nil)
	settle(loop, 2*time.Second)
	old := c.Leader()
	if old < 0 {
		t.Fatal("no initial leader")
	}
	if _, err := c.Propose([]byte("before")); err != nil {
		t.Fatal(err)
	}
	settle(loop, 500*time.Millisecond)
	c.StopNode(old)
	settle(loop, 2*time.Second)
	cur := c.Leader()
	if cur < 0 {
		t.Fatal("no leader elected after failover")
	}
	if cur == old {
		t.Fatal("stopped node still leader")
	}
	if _, err := c.Propose([]byte("after")); err != nil {
		t.Fatalf("Propose after failover: %v", err)
	}
	settle(loop, time.Second)
	if c.CommittedIndex(cur) != 2 {
		t.Fatalf("commit index = %d, want 2", c.CommittedIndex(cur))
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	loop := sim.NewLoop(5)
	c := NewCluster(loop, 3, nil)
	settle(loop, 2*time.Second)
	leader := c.Leader()
	// Isolate the leader from both followers.
	var others []int
	for i := 0; i < 3; i++ {
		if i != leader {
			others = append(others, i)
		}
	}
	c.Partition([]int{leader}, others)
	settle(loop, 2*time.Second)
	// The majority side elects a new leader; the old leader cannot commit.
	newLeader := -1
	for _, id := range others {
		if c.StateOf(id) == Leader {
			newLeader = id
		}
	}
	if newLeader < 0 {
		t.Fatal("majority partition did not elect a leader")
	}
	before := c.CommittedIndex(leader)
	// Propose through the stale leader directly: must never commit.
	if c.StateOf(leader) == Leader {
		if _, err := c.nodes[leader].propose([]byte("lost")); err != nil {
			t.Fatal(err)
		}
	}
	settle(loop, time.Second)
	if c.CommittedIndex(leader) != before {
		t.Fatal("isolated leader committed an entry without quorum")
	}
	// Heal: the cluster converges and stale entries are discarded.
	c.Heal()
	settle(loop, 2*time.Second)
	if _, err := c.Propose([]byte("healed")); err != nil {
		t.Fatal(err)
	}
	settle(loop, time.Second)
	cur := c.Leader()
	if c.CommittedIndex(cur) < 1 {
		t.Fatal("no commits after heal")
	}
}

// Safety property: logs on any two nodes never disagree at a committed index.
func TestLogMatchingUnderChurn(t *testing.T) {
	loop := sim.NewLoop(6)
	var c *Cluster
	c = NewCluster(loop, 5, nil)
	settle(loop, 2*time.Second)
	for round := 0; round < 10; round++ {
		if l := c.Leader(); l >= 0 {
			_, _ = c.Propose([]byte(fmt.Sprintf("r%d", round)))
		}
		settle(loop, 300*time.Millisecond)
		if round%3 == 0 {
			if l := c.Leader(); l >= 0 {
				c.StopNode(l)
				settle(loop, time.Second)
				c.RestartNode(l)
			}
		}
		settle(loop, 500*time.Millisecond)
	}
	settle(loop, 2*time.Second)
	// Compare all logs up to the minimum commit index.
	minCommit := int64(1 << 62)
	for i := 0; i < 5; i++ {
		if ci := c.CommittedIndex(i); ci < minCommit {
			minCommit = ci
		}
	}
	ref := c.LogOf(0)
	for i := 1; i < 5; i++ {
		log := c.LogOf(i)
		for idx := int64(0); idx < minCommit; idx++ {
			if string(ref[idx].Data) != string(log[idx].Data) || ref[idx].Term != log[idx].Term {
				t.Fatalf("log mismatch at committed index %d between node 0 and %d", idx+1, i)
			}
		}
	}
}

func TestSingleNodeClusterCommitsImmediately(t *testing.T) {
	loop := sim.NewLoop(7)
	var got []string
	c := NewCluster(loop, 1, func(_ int, e Entry) { got = append(got, string(e.Data)) })
	settle(loop, time.Second)
	if c.Leader() != 0 {
		t.Fatal("single node did not become leader")
	}
	if _, err := c.Propose([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	settle(loop, 100*time.Millisecond)
	if len(got) != 1 || got[0] != "solo" {
		t.Fatalf("applied = %v, want [solo]", got)
	}
}

func TestTermsMonotone(t *testing.T) {
	loop := sim.NewLoop(8)
	c := NewCluster(loop, 3, nil)
	var last int64
	for i := 0; i < 10; i++ {
		settle(loop, 500*time.Millisecond)
		cur := c.Term()
		if cur < last {
			t.Fatalf("term went backwards: %d after %d", cur, last)
		}
		last = cur
	}
}
