// Package report renders the campaign results and the FFDA dataset into the
// plain-text equivalents of the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"github.com/mutiny-sim/mutiny/internal/campaign"
	"github.com/mutiny-sim/mutiny/internal/classify"
	"github.com/mutiny-sim/mutiny/internal/ffda"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

func pct(n, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

// Table1 renders the fault→error→failure chain of Table I with the dataset's
// marginal counts.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table I — Fault-Error-Failure chain of 81 real-world Kubernetes incidents")
	tw := newTab(w)
	fmt.Fprintln(tw, "Fault\tIncidents")
	byFault := ffda.CountByFault()
	for _, f := range ffda.Faults() {
		fmt.Fprintf(tw, "%s\t%d\n", f, byFault[f])
	}
	fmt.Fprintln(tw, "\t")
	fmt.Fprintln(tw, "Error\tIncidents")
	byError := ffda.CountByError()
	for _, e := range ffda.Errors() {
		fmt.Fprintf(tw, "%s\t%d\n", e, byError[e])
	}
	fmt.Fprintln(tw, "\t")
	fmt.Fprintln(tw, "Failure\tIncidents")
	byFailure := ffda.CountByFailure()
	for _, f := range ffda.Failures() {
		fmt.Fprintf(tw, "%s\t%d\n", f, byFailure[f])
	}
	tw.Flush()
}

// Table3 renders the OF→CF propagation matrix per workload (Table III).
func Table3(w io.Writer, agg *campaign.Aggregate) {
	fmt.Fprintln(w, "Table III — Mapping between orchestrator failures (OF) and client failures (CF)")
	tw := newTab(w)
	fmt.Fprint(tw, "\t")
	for _, wl := range workload.Kinds() {
		for _, cf := range classify.CFs() {
			fmt.Fprintf(tw, "%s/%s\t", wl, cf)
		}
	}
	fmt.Fprintln(tw)
	for _, of := range classify.OFs() {
		fmt.Fprintf(tw, "%s\t", of)
		for _, wl := range workload.Kinds() {
			total := workloadTotal(agg, wl)
			for _, cf := range classify.CFs() {
				n := agg.OFToCF[wl][of][cf]
				if n == 0 {
					fmt.Fprint(tw, "0\t")
				} else {
					fmt.Fprintf(tw, "%d (%s)\t", n, pct(n, total))
				}
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Table4 renders orchestrator-level failure statistics (Table IV).
func Table4(w io.Writer, agg *campaign.Aggregate) {
	fmt.Fprintln(w, "Table IV — Orchestrator-level failures (OF) by workload and injection type")
	tw := newTab(w)
	fmt.Fprintln(tw, "WL\tInjection\tPerf.\tNo\tTim\tLeR\tMoR\tNet\tSta\tOut")
	colTotals := make(map[classify.OF]int)
	grand := 0
	for _, wl := range workload.Kinds() {
		for _, group := range campaign.InjGroups() {
			counts := agg.OFCounts[wl][group]
			perf := 0
			for _, n := range counts {
				perf += n
			}
			if perf == 0 {
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%d", wl, group, perf)
			for _, of := range classify.OFs() {
				fmt.Fprintf(tw, "\t%d", counts[of])
				colTotals[of] += counts[of]
			}
			fmt.Fprintln(tw)
			grand += perf
		}
	}
	fmt.Fprintf(tw, "Sum\t\t%d", grand)
	for _, of := range classify.OFs() {
		fmt.Fprintf(tw, "\t%d", colTotals[of])
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "%\t\t100%")
	for _, of := range classify.OFs() {
		fmt.Fprintf(tw, "\t%s", pct(colTotals[of], grand))
	}
	fmt.Fprintln(tw)
	tw.Flush()
}

// Table5 renders client-level failure statistics (Table V).
func Table5(w io.Writer, agg *campaign.Aggregate) {
	fmt.Fprintln(w, "Table V — Client-level failures (CF) by workload and injection type")
	tw := newTab(w)
	fmt.Fprintln(tw, "WL\tInjection\tPerf.\tNSI\tHRT\tIA\tSU")
	colTotals := make(map[classify.CF]int)
	grand := 0
	for _, wl := range workload.Kinds() {
		for _, group := range campaign.InjGroups() {
			counts := agg.CFCounts[wl][group]
			perf := 0
			for _, n := range counts {
				perf += n
			}
			if perf == 0 {
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%d", wl, group, perf)
			for _, cf := range classify.CFs() {
				fmt.Fprintf(tw, "\t%d", counts[cf])
				colTotals[cf] += counts[cf]
			}
			fmt.Fprintln(tw)
			grand += perf
		}
	}
	fmt.Fprintf(tw, "Sum\t\t%d", grand)
	for _, cf := range classify.CFs() {
		fmt.Fprintf(tw, "\t%d", colTotals[cf])
	}
	fmt.Fprintln(tw)
	fmt.Fprint(tw, "%\t\t100%")
	for _, cf := range classify.CFs() {
		fmt.Fprintf(tw, "\t%s", pct(colTotals[cf], grand))
	}
	fmt.Fprintln(tw)
	tw.Flush()
}

// Table6 renders the propagation experiments (Table VI).
func Table6(w io.Writer, rows []campaign.PropagationCell) {
	fmt.Fprintln(w, "Table VI — Propagation of component→apiserver channel injections")
	tw := newTab(w)
	fmt.Fprintln(tw, "WL\tComponent\tInj.\tProp\tErr.")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\n", r.Workload, componentLabel(r.Component), r.Injected, r.Propagated, r.Errored)
	}
	tw.Flush()
}

func componentLabel(prefix string) string {
	switch prefix {
	case "kcm":
		return "Kcm"
	case "scheduler":
		return "Scheduler"
	case "kubelet-":
		return "Kubelet"
	default:
		return prefix
	}
}

// HATable renders the HA control-plane fault-axis statistics: per fault
// axis, the distribution of the failover window (control plane unable to
// act) and of the stale-read window (some live store replica serving a
// lagging revision), in simulated milliseconds per experiment. Empty (a
// single explanatory line) when the campaign ran without control-plane
// replication.
func HATable(w io.Writer, agg *campaign.Aggregate) {
	fmt.Fprintln(w, "HA control plane — failover and stale-read windows by fault axis (ms, simulated)")
	total := 0
	for _, t := range campaign.ControlPlaneFaults() {
		total += len(agg.FailoverByFault[t])
	}
	if total == 0 {
		fmt.Fprintln(w, "(no control-plane fault experiments; run with ControlPlaneReplicas >= 2)")
		return
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "Fault axis\tn\tfailover med\tfailover p95\tstale med\tstale p95")
	for _, t := range campaign.ControlPlaneFaults() {
		fo := append([]float64(nil), agg.FailoverByFault[t]...)
		st := append([]float64(nil), agg.StaleByFault[t]...)
		if len(fo) == 0 {
			continue
		}
		sort.Float64s(fo)
		sort.Float64s(st)
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\n", t, len(fo),
			quantile(fo, 0.5), quantile(fo, 0.95), quantile(st, 0.5), quantile(st, 0.95))
	}
	tw.Flush()
}

// AdmissionTable renders the admission fault-axis trade-off: per webhook
// fault under each failure-policy regime, the write-availability outage
// window (simulated ms a fail-closed hook was unreachable, med+p95) against
// the enforcement-integrity loss (policy-violating objects admitted, total
// over the axis's experiments). Empty (a single explanatory line) when the
// campaign ran without admission hooks.
func AdmissionTable(w io.Writer, agg *campaign.Aggregate) {
	fmt.Fprintln(w, "Admission webhooks — availability outage vs enforcement integrity by fault axis and failure policy")
	total := 0
	for _, outages := range agg.OutageByAdmission {
		total += len(outages)
	}
	if total == 0 {
		fmt.Fprintln(w, "(no admission fault experiments; run with AdmissionHooks >= 1)")
		return
	}
	tw := newTab(w)
	fmt.Fprintln(tw, "Fault axis\tpolicy\tn\toutage med\toutage p95\tviolations")
	for _, t := range campaign.AdmissionFaults() {
		for _, policy := range campaign.AdmissionPolicies {
			key := campaign.AdmissionKey{Fault: t, Policy: policy}
			out := append([]float64(nil), agg.OutageByAdmission[key]...)
			if len(out) == 0 {
				continue
			}
			sort.Float64s(out)
			violations := 0
			for _, v := range agg.ViolationsByAdmission[key] {
				violations += v
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.0f\t%d\n", t, policy, len(out),
				quantile(out, 0.5), quantile(out, 0.95), violations)
		}
	}
	tw.Flush()
}

// TopologyTable renders the cloud-edge topology fault-axis statistics in the
// failover-timing style of arXiv:1901.04946: per fault axis against each
// zone, the distribution of the disruption window (some zone or node link
// cut) and of the recovery tail (links restored but the cluster not yet
// re-converged), in simulated milliseconds per experiment. Empty (a single
// explanatory line) when the campaign ran on a flat network.
func TopologyTable(w io.Writer, agg *campaign.Aggregate) {
	fmt.Fprintln(w, "Cloud-edge topology — disruption and recovery windows by fault axis and zone (ms, simulated)")
	total := 0
	for _, d := range agg.DisruptionByTopology {
		total += len(d)
	}
	if total == 0 {
		fmt.Fprintln(w, "(no topology fault experiments; run with Zones >= 2)")
		return
	}
	// Zone names come from the aggregate's keys: sorted for a stable table,
	// which puts edge-* after core/regional-* — the paper-style ordering.
	zoneSet := make(map[string]bool)
	for key := range agg.DisruptionByTopology {
		zoneSet[key.Zone] = true
	}
	zones := make([]string, 0, len(zoneSet))
	for z := range zoneSet {
		zones = append(zones, z)
	}
	sort.Strings(zones)
	tw := newTab(w)
	fmt.Fprintln(tw, "Fault axis\tzone\tn\tdisruption med\tdisruption p95\trecovery med\trecovery p95")
	for _, t := range campaign.TopologyFaults() {
		for _, zone := range zones {
			key := campaign.TopologyKey{Fault: t, Zone: zone}
			dis := append([]float64(nil), agg.DisruptionByTopology[key]...)
			if len(dis) == 0 {
				continue
			}
			rec := append([]float64(nil), agg.RecoveryByTopology[key]...)
			sort.Float64s(dis)
			sort.Float64s(rec)
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\n", t, zone, len(dis),
				quantile(dis, 0.5), quantile(dis, 0.95), quantile(rec, 0.5), quantile(rec, 0.95))
		}
	}
	tw.Flush()
}

// Table7 renders the real-world vs Mutiny coverage comparison (Table VII).
func Table7(w io.Writer) {
	fmt.Fprintln(w, "Table VII — Real-world subcategories vs what Mutiny can replicate")
	fmt.Fprintln(w, "(* = replicable by Mutiny, ~ = triggered by Mutiny only, plain = real-world only)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Error\tSubcategories")
	errCov := ffda.ErrorCoverage()
	for _, cat := range ffda.Errors() {
		fmt.Fprintf(tw, "%s\t%s\n", cat, renderSubs(errCov[cat]))
	}
	fmt.Fprintln(tw, "\t")
	fmt.Fprintln(tw, "Failure\tSubcategories")
	failCov := ffda.FailureCoverage()
	for _, cat := range []ffda.Failure{ffda.FailureOut, ffda.FailureSta, ffda.FailureNet, ffda.FailureMoR, ffda.FailureLeR, ffda.FailureTim} {
		fmt.Fprintf(tw, "%s\t%s\n", cat, renderSubs(failCov[cat]))
	}
	tw.Flush()
	realWorld, replicable := ffda.CoverageStats()
	fmt.Fprintf(w, "Coverage: %d/%d real-world subcategories replicable; %d/81 incidents replicable (paper: 54/81)\n",
		replicable, realWorld, len(ffda.ReplicableIncidents()))
}

func renderSubs(subs []ffda.SubcategoryCoverage) string {
	out := ""
	for i, sc := range subs {
		if i > 0 {
			out += ", "
		}
		switch sc.Coverage {
		case ffda.Replicable:
			out += "*" + sc.Sub
		case ffda.MutinyOnly:
			out += "~" + sc.Sub
		default:
			out += sc.Sub
		}
	}
	return out
}

// Figure5 renders a golden and an injected client latency time series side
// by side with their z-scores, like the paper's example (z ≈ −0.2 vs 11.0).
func Figure5(w io.Writer, golden, injected []float64, goldenZ, injectedZ float64) {
	fmt.Fprintln(w, "Figure 5 — Client latency time series (golden vs injection)")
	fmt.Fprintf(w, "golden run   z = %+.1f: %s\n", goldenZ, sparkline(golden))
	fmt.Fprintf(w, "injected run z = %+.1f: %s\n", injectedZ, sparkline(injected))
}

// sparkline renders a latency series as a coarse ASCII strip, bucketing the
// series into 60 columns ('_' = failure/zero).
func sparkline(series []float64) string {
	const cols = 60
	if len(series) == 0 {
		return ""
	}
	levels := []byte("_.:-=+*#%@")
	max := 0.0
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	out := make([]byte, 0, cols)
	step := len(series) / cols
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(series); i += step {
		end := i + step
		if end > len(series) {
			end = len(series)
		}
		avg := 0.0
		for _, v := range series[i:end] {
			avg += v
		}
		avg /= float64(end - i)
		idx := int(avg / max * float64(len(levels)-1))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		out = append(out, levels[idx])
	}
	return string(out)
}

// Figure6 summarizes client z-scores per OF category and workload (the
// paper's box plots), printing five-number summaries.
func Figure6(w io.Writer, agg *campaign.Aggregate) {
	fmt.Fprintln(w, "Figure 6 — Client impact (z-scores of response-time MAE) by OF and workload")
	tw := newTab(w)
	fmt.Fprintln(tw, "WL\tOF\tn\tmin\tq1\tmedian\tq3\tmax")
	for _, wl := range workload.Kinds() {
		for _, of := range classify.OFs() {
			zs := append([]float64(nil), agg.ZByOF[wl][of]...)
			if len(zs) == 0 {
				continue
			}
			sort.Float64s(zs)
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				wl, of, len(zs),
				zs[0], quantile(zs, 0.25), quantile(zs, 0.5), quantile(zs, 0.75), zs[len(zs)-1])
		}
	}
	tw.Flush()
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := q * float64(len(sorted)-1)
	lo := int(idx)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Figure7 renders the user-error analysis: experiments in which the cluster
// user received an API error, against totals per OF category.
func Figure7(w io.Writer, agg *campaign.Aggregate) {
	fmt.Fprintln(w, "Figure 7 — Experiments where the user received an error vs total, by OF")
	tw := newTab(w)
	fmt.Fprintln(tw, "WL\tOF\tTotal\tError\tUser-visible")
	for _, wl := range workload.Kinds() {
		for _, of := range classify.OFs() {
			total := 0
			for _, group := range campaign.InjGroups() {
				total += agg.OFCounts[wl][group][of]
			}
			if total == 0 {
				continue
			}
			errs := agg.UserErrByOF[wl][of]
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\n", wl, of, total, errs, pct(errs, total))
		}
	}
	tw.Flush()
}

// CriticalFields renders the §V-C2 critical-field analysis (finding F2).
func CriticalFields(w io.Writer, agg *campaign.Aggregate) {
	fmt.Fprintln(w, "Critical-field analysis (F2) — field categories behind Sta/Out/SU failures")
	byCat, total := agg.CriticalFieldShare()
	tw := newTab(w)
	fmt.Fprintln(tw, "Category\tCritical-failure injections\tShare")
	for _, cat := range campaign.Categories() {
		if byCat[cat] == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\n", cat, byCat[cat], pct(byCat[cat], total))
	}
	fmt.Fprintf(tw, "total\t%d\t100%%\n", total)
	tw.Flush()
	fields := agg.CriticalFields()
	fmt.Fprintf(w, "Distinct critical fields: %d (paper: 34)\n", len(fields))
}

// Findings prints the headline findings F1–F4 computed from the aggregate.
func Findings(w io.Writer, agg *campaign.Aggregate) {
	total := agg.Total()
	if total == 0 {
		return
	}
	sta, out := agg.TotalOF(classify.OFSta), agg.TotalOF(classify.OFOut)
	ler, mor := agg.TotalOF(classify.OFLeR), agg.TotalOF(classify.OFMoR)
	net := agg.TotalOF(classify.OFNet)
	no := agg.TotalOF(classify.OFNone)
	fmt.Fprintf(w, "F1: %s of injections caused system-wide failures (Sta %s + Out %s); ",
		pct(sta+out, total), pct(sta, total), pct(out, total))
	fmt.Fprintf(w, "%s under/over-provisioning (LeR %s + MoR %s); %s service networking; %s no effect.\n",
		pct(ler+mor, total), pct(ler, total), pct(mor, total), pct(net, total), pct(no, total))
	byCat, critTotal := agg.CriticalFieldShare()
	dep := byCat[campaign.CategoryDependency]
	fmt.Fprintf(w, "F2: dependency-tracking fields caused %s of critical failures (%d/%d).\n",
		pct(dep, critTotal), dep, critTotal)
	errored := 0
	for _, res := range agg.Results {
		if res.UserErrors > 0 {
			errored++
		}
	}
	fmt.Fprintf(w, "F4: the user received an API error in only %s of experiments (%d/%d).\n",
		pct(errored, total), errored, total)
	fmt.Fprintf(w, "Activation rate: %.0f%% (paper: 82%%).\n", 100*agg.ActivationRate())
}

func workloadTotal(agg *campaign.Aggregate, wl workload.Kind) int {
	total := 0
	for _, group := range campaign.InjGroups() {
		for _, n := range agg.OFCounts[wl][group] {
			total += n
		}
	}
	return total
}
