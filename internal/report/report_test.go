package report

import (
	"bytes"
	"strings"
	"testing"

	"github.com/mutiny-sim/mutiny/internal/campaign"
	"github.com/mutiny-sim/mutiny/internal/classify"
	"github.com/mutiny-sim/mutiny/internal/inject"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/workload"
)

func sampleAggregate() *campaign.Aggregate {
	agg := campaign.NewAggregate()
	mk := func(wl workload.Kind, typ inject.FaultType, path string, of classify.OF, cf classify.CF, z float64, userErrs int) *campaign.Result {
		return &campaign.Result{
			Spec: campaign.Spec{
				Workload:  wl,
				Injection: &inject.Injection{Kind: spec.KindPod, Type: typ, FieldPath: path},
			},
			OF: of, CF: cf, Z: z, UserErrors: userErrs,
		}
	}
	agg.Add(mk(workload.Deploy, inject.BitFlip, "metadata.labels[app]", classify.OFSta, classify.CFSU, 11, 0))
	agg.Add(mk(workload.Deploy, inject.BitFlip, "status.address", classify.OFNone, classify.CFNSI, 0.1, 0))
	agg.Add(mk(workload.Deploy, inject.SetValue, "spec.replicas", classify.OFMoR, classify.CFHRT, 4, 1))
	agg.Add(mk(workload.ScaleUp, inject.DropMessage, "", classify.OFLeR, classify.CFSU, 30, 0))
	agg.Add(mk(workload.Failover, inject.FlipProtoByte, "", classify.OFNone, classify.CFNSI, -0.3, 0))
	return agg
}

func TestTablesRenderAllSections(t *testing.T) {
	agg := sampleAggregate()
	var buf bytes.Buffer

	Table1(&buf)
	Table3(&buf, agg)
	Table4(&buf, agg)
	Table5(&buf, agg)
	Table6(&buf, []campaign.PropagationCell{
		{Workload: workload.Deploy, Component: "kcm", Injected: 10, Propagated: 4, Errored: 1},
		{Workload: workload.Deploy, Component: "scheduler", Injected: 2, Propagated: 1, Errored: 0},
	})
	Table7(&buf)
	Figure6(&buf, agg)
	Figure7(&buf, agg)
	CriticalFields(&buf, agg)
	Findings(&buf, agg)

	out := buf.String()
	for _, want := range []string{
		"Table I ", "Table III", "Table IV", "Table V ", "Table VI", "Table VII",
		"Figure 6", "Figure 7",
		"Kcm", "Scheduler", // component labels
		"Bit-flip", "Value set", "Drop",
		"F1:", "F2:", "F4:",
		"dependency",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestTable4Percentages(t *testing.T) {
	agg := sampleAggregate()
	var buf bytes.Buffer
	Table4(&buf, agg)
	out := buf.String()
	// 5 experiments total: 2 No = 40%.
	if !strings.Contains(out, "40.0%") {
		t.Fatalf("Table IV missing expected percentage:\n%s", out)
	}
}

func TestFigure5Sparkline(t *testing.T) {
	var buf bytes.Buffer
	golden := make([]float64, 600)
	injected := make([]float64, 600)
	for i := range golden {
		golden[i] = 50
		if i > 300 {
			injected[i] = 150 // degraded second half
		} else {
			injected[i] = 50
		}
	}
	Figure5(&buf, golden, injected, -0.2, 11.0)
	out := buf.String()
	if !strings.Contains(out, "z = -0.2") || !strings.Contains(out, "z = +11.0") {
		t.Fatalf("Figure 5 missing z-scores:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("Figure 5 rendered %d lines, want 3", len(lines))
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if s := sparkline(nil); s != "" {
		t.Fatalf("empty sparkline = %q", s)
	}
	if s := sparkline([]float64{0, 0, 0}); !strings.Contains(s, "_") {
		t.Fatalf("all-zero sparkline = %q", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %f", q)
	}
	if q := quantile(xs, 0); q != 1 {
		t.Fatalf("min = %f", q)
	}
	if q := quantile(xs, 1); q != 5 {
		t.Fatalf("max = %f", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %f", q)
	}
}
