// Package scheduler implements the kube-scheduler: it assigns pending pods
// to nodes based on resource requests, availability and constraints, runs
// behind leader election, and maintains a local cache of node allocations.
//
// The cache is the scheduler's Achilles' heel probed by the paper (§V-C):
// when the state observed from the store contradicts the cache — e.g. a
// pod's nodeName silently changed to a node the scheduler never chose — the
// scheduler assumes its own cache is corrupt and restarts, leaving pods
// pending until a new leader takes over (~20 s in the default
// configuration).
package scheduler

import (
	"fmt"
	"sort"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/election"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
)

const (
	schedulePeriod = 100 * time.Millisecond
	// restartDelay plus the lease expiry (~15 s) reproduce the paper's
	// "after a new leader Scheduler is elected (after 20 seconds, in the
	// standard configuration)".
	restartDelay = 5 * time.Second
	// viewResync is the low-frequency safety net of the scheduler's informer
	// views: a pod event lost on the watch channel surfaces at the next
	// reconcile instead of leaving the pod pending forever.
	viewResync = 5 * time.Second
)

// Options configure the scheduler.
type Options struct {
	// Identity distinguishes replicas.
	Identity string
	// DisableLeaderElection runs the scheduler unconditionally.
	DisableLeaderElection bool
	// DisableCacheSelfCheck turns off the restart-on-cache-mismatch
	// behaviour (ablation).
	DisableCacheSelfCheck bool
}

// Scheduler assigns pods to nodes.
type Scheduler struct {
	loop    *sim.Loop
	srv     apiserver.ClientSource
	client  *apiserver.Client
	opts    Options
	elector *election.Elector

	running bool
	pending map[string]bool   // pod keys awaiting scheduling
	assumed map[string]string // pod UID → node the scheduler bound it to
	// podAlloc/nodeUsed form the incremental allocation index: the per-node
	// resource charge of every assigned active pod, maintained from the same
	// view events that drive the pending set. Each scheduling pass reads node
	// free resources from it instead of re-scanning the whole pod set, so the
	// per-cycle cost is O(nodes), not O(nodes + pods) — the term that matters
	// once 500-node zoned clusters carry a daemon pod per node.
	podAlloc map[string]allocEntry
	nodeUsed map[string]*allocUsage
	// lastPreempt backs off preemption attempts per pod (the real
	// scheduler's preemption is similarly rate-limited).
	lastPreempt map[string]time.Duration
	ticker      sim.Timer
	// views is the scheduler's informer view of pods and nodes: pod events
	// drive the pending/assumed bookkeeping (including the cache-self-check
	// restart), and every scheduling pass reads nodes and pods from the view
	// instead of re-listing the server.
	views    *apiserver.Reflector
	restarts int
	epoch    int
}

// New builds a scheduler against the API server (or, in an HA control plane,
// against a failover-aware endpoint set).
func New(loop *sim.Loop, srv apiserver.ClientSource, opts Options) *Scheduler {
	if opts.Identity == "" {
		opts.Identity = "kube-scheduler-0"
	}
	s := &Scheduler{
		loop:        loop,
		srv:         srv,
		client:      srv.ClientFor("scheduler"),
		opts:        opts,
		pending:     make(map[string]bool),
		assumed:     make(map[string]string),
		lastPreempt: make(map[string]time.Duration),
	}
	if !opts.DisableLeaderElection {
		s.newElector(opts.Identity)
	}
	return s
}

func (s *Scheduler) newElector(identity string) {
	s.elector = election.New(s.loop, s.srv.ClientFor(identity), election.Config{
		LeaseName:        "kube-scheduler",
		Identity:         identity,
		OnStartedLeading: s.run,
		OnStoppedLeading: s.halt,
	})
}

// Start begins campaigning (or scheduling directly without election).
func (s *Scheduler) Start() {
	if s.elector != nil {
		s.elector.Start()
		return
	}
	s.run()
}

// Stop halts the scheduler.
func (s *Scheduler) Stop() {
	if s.elector != nil {
		s.elector.Stop()
	}
	s.halt()
}

// Restarts reports how many cache-mismatch restarts occurred (a timing-
// failure signal for the classifier).
func (s *Scheduler) Restarts() int { return s.restarts }

// IsRunning reports whether the scheduler is actively scheduling.
func (s *Scheduler) IsRunning() bool { return s.running }

func (s *Scheduler) run() {
	if s.running {
		return
	}
	s.running = true
	s.pending = make(map[string]bool)
	s.assumed = make(map[string]string)
	s.podAlloc = make(map[string]allocEntry)
	s.nodeUsed = make(map[string]*allocUsage)
	s.lastPreempt = make(map[string]time.Duration)
	s.views = apiserver.NewReflector(s.loop, s.client, viewResync, s.onViewEvent,
		spec.KindPod, spec.KindNode)
	s.views.Start()
	s.ticker = s.loop.Every(schedulePeriod, s.scheduleAll)
	// Prime from the view's initial state (the re-list a restarted scheduler
	// performs).
	s.views.ForEach(spec.KindPod, "", func(po spec.Object) bool {
		pod := po.(*spec.Pod)
		if pod.Spec.NodeName == "" && pod.Active() {
			s.pending[podKey(pod)] = true
		} else if pod.Spec.NodeName != "" {
			s.assumed[pod.Metadata.UID] = pod.Spec.NodeName
		}
		s.chargePod(pod)
		return true
	})
}

func (s *Scheduler) halt() {
	if !s.running {
		return
	}
	s.running = false
	s.ticker.Stop()
	if s.views != nil {
		s.views.Stop()
	}
}

// onViewEvent reacts to the informer view's events — live watch deliveries
// and resync repairs alike, so a pod whose binding the scheduler missed on
// the watch channel still trips the cache self-check at the next reconcile.
func (s *Scheduler) onViewEvent(ev apiserver.WatchEvent) {
	if !s.running || ev.Kind != spec.KindPod {
		return
	}
	s.trackAlloc(ev)
	pod := ev.Object.(*spec.Pod)
	key := podKey(pod)
	switch ev.Type {
	case apiserver.Deleted:
		delete(s.pending, key)
		delete(s.assumed, pod.Metadata.UID)
		return
	case apiserver.Added, apiserver.Modified:
		if pod.Spec.NodeName == "" {
			if pod.Active() {
				s.pending[key] = true
			}
			return
		}
		delete(s.pending, key)
		if prev, ok := s.assumed[pod.Metadata.UID]; ok && prev != pod.Spec.NodeName {
			// The store says this pod runs somewhere the scheduler never
			// put it. Assume local cache corruption and restart (§V-C).
			if !s.opts.DisableCacheSelfCheck {
				s.restart()
				return
			}
		}
		s.assumed[pod.Metadata.UID] = pod.Spec.NodeName
	}
}

// restart models a full scheduler restart: state dropped, leadership
// relinquished, and a re-campaign under a fresh identity so the stale lease
// must expire first.
func (s *Scheduler) restart() {
	s.restarts++
	s.halt()
	if s.elector == nil {
		// No election configured: come back after the restart delay alone.
		s.loop.After(restartDelay, s.run)
		return
	}
	// Abandon, not Stop: a crashed scheduler cannot release its lease, so the
	// stale lease must expire before the fresh identity can campaign — the
	// ~20 s restart gap the paper measures.
	s.elector.Abandon()
	s.epoch++
	identity := fmt.Sprintf("%s-r%d", s.opts.Identity, s.epoch)
	s.loop.After(restartDelay, func() {
		s.newElector(identity)
		s.elector.Start()
	})
}

func (s *Scheduler) scheduleAll() {
	if !s.running || len(s.pending) == 0 {
		return
	}
	keys := make([]string, 0, len(s.pending))
	for k := range s.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	nodes, zones := s.snapshotNodes()
	// One pod snapshot per cycle serves all preemption decisions: listing
	// per candidate node degrades quadratically once an uncontrolled-
	// replication injection floods the cluster with pending pods.
	var podSnapshot []*spec.Pod
	for _, key := range keys {
		obj, ok := s.views.GetByKey(spec.KindPod, key)
		if !ok {
			delete(s.pending, key)
			continue
		}
		pod := obj.(*spec.Pod)
		if pod.Spec.NodeName != "" || !pod.Active() {
			delete(s.pending, key)
			continue
		}
		if pod.Spec.Priority > 0 && podSnapshot == nil {
			// Informer-view scan: preemption picks victims by name; they are
			// deleted, never mutated.
			s.views.ForEach(spec.KindPod, "", func(po spec.Object) bool {
				podSnapshot = append(podSnapshot, po.(*spec.Pod))
				return true
			})
		}
		// A zone-pinned pod only ever lands in its zone: score (and preempt)
		// against that zone's bucket alone.
		cand := nodes
		if zone := pod.Spec.NodeSelector[spec.LabelZone]; zone != "" {
			cand = zones[zone]
		}
		if s.scheduleOne(pod, cand, podSnapshot) {
			delete(s.pending, key)
		}
	}
}

type nodeInfo struct {
	node    *spec.Node
	freeCPU int64
	freeMem int64
}

// allocEntry is one pod's charge against a node in the allocation index.
type allocEntry struct {
	node string
	cpu  int64
	mem  int64
}

// allocUsage is a node's total charged allocation.
type allocUsage struct {
	cpu int64
	mem int64
}

// trackAlloc keeps the allocation index in step with one pod event: any
// previous charge for the pod is released, and the pod is re-charged iff it
// is assigned and active — exactly the predicate the old full-scan snapshot
// applied, so index and scan agree at every instant.
func (s *Scheduler) trackAlloc(ev apiserver.WatchEvent) {
	pod := ev.Object.(*spec.Pod)
	uid := pod.Metadata.UID
	if prev, ok := s.podAlloc[uid]; ok {
		if u := s.nodeUsed[prev.node]; u != nil {
			u.cpu -= prev.cpu
			u.mem -= prev.mem
		}
		delete(s.podAlloc, uid)
	}
	if ev.Type == apiserver.Deleted {
		return
	}
	s.chargePod(pod)
}

// chargePod adds an assigned active pod to the allocation index.
func (s *Scheduler) chargePod(pod *spec.Pod) {
	if pod.Spec.NodeName == "" || !pod.Active() {
		return
	}
	e := allocEntry{node: pod.Spec.NodeName, cpu: pod.RequestsMilliCPU(), mem: pod.RequestsMemMB()}
	s.podAlloc[pod.Metadata.UID] = e
	u := s.nodeUsed[e.node]
	if u == nil {
		u = &allocUsage{}
		s.nodeUsed[e.node] = u
	}
	u.cpu += e.cpu
	u.mem += e.mem
}

// snapshotNodes computes per-node free resources from the allocation index —
// one sorted node scan, no pod scan. Alongside the full list it returns
// per-zone buckets (sharing the same nodeInfo pointers, so in-cycle bind
// charges propagate to both views): a zone-pinned pod is scored against its
// zone's nodes only, which keeps the scheduling cost of zone-local work
// proportional to the touched zone rather than the whole cluster.
func (s *Scheduler) snapshotNodes() ([]*nodeInfo, map[string][]*nodeInfo) {
	var infos []*nodeInfo
	var zones map[string][]*nodeInfo
	s.views.ForEach(spec.KindNode, "", func(no spec.Object) bool {
		node := no.(*spec.Node)
		info := &nodeInfo{
			node:    node,
			freeCPU: node.Status.AllocatableMilliCPU,
			freeMem: node.Status.AllocatableMemMB,
		}
		if u := s.nodeUsed[node.Metadata.Name]; u != nil {
			info.freeCPU -= u.cpu
			info.freeMem -= u.mem
		}
		infos = append(infos, info)
		if zone := node.Metadata.Labels[spec.LabelZone]; zone != "" {
			if zones == nil {
				zones = make(map[string][]*nodeInfo)
			}
			zones[zone] = append(zones[zone], info)
		}
		return true
	})
	return infos, zones
}

// scheduleOne filters and scores nodes, then binds. Reports whether the pod
// left the pending set.
func (s *Scheduler) scheduleOne(pod *spec.Pod, nodes []*nodeInfo, podSnapshot []*spec.Pod) bool {
	var best *nodeInfo
	var bestScore int64 = -1
	for _, info := range nodes {
		if !s.feasible(pod, info) {
			continue
		}
		// Least-allocated scoring keeps load spread, deterministically
		// tie-broken by name via the sorted iteration order.
		score := info.freeCPU + info.freeMem
		if score > bestScore {
			best, bestScore = info, score
		}
	}
	if best == nil {
		if pod.Spec.Priority > 0 && s.loop.Now()-s.lastPreempt[pod.Metadata.UID] >= time.Second {
			s.lastPreempt[pod.Metadata.UID] = s.loop.Now()
			s.preempt(pod, nodes, podSnapshot)
		}
		return false // stays pending
	}
	// Bind on a private copy: the pod is a sealed cache reference.
	bound := spec.CloneForWriteAs(pod)
	bound.Spec.NodeName = best.node.Metadata.Name
	if err := s.client.Update(bound); err != nil {
		return false
	}
	best.freeCPU -= pod.RequestsMilliCPU()
	best.freeMem -= pod.RequestsMemMB()
	s.assumed[pod.Metadata.UID] = best.node.Metadata.Name
	return true
}

func (s *Scheduler) feasible(pod *spec.Pod, info *nodeInfo) bool {
	node := info.node
	if !node.Status.Ready || node.Spec.Unschedulable {
		return false
	}
	for k, v := range pod.Spec.NodeSelector {
		if node.Metadata.Labels[k] != v {
			return false
		}
	}
	for _, taint := range node.Spec.Taints {
		if (taint.Effect == spec.TaintNoSchedule || taint.Effect == spec.TaintNoExecute) && !pod.Tolerates(taint) {
			return false
		}
	}
	return pod.RequestsMilliCPU() <= info.freeCPU && pod.RequestsMemMB() <= info.freeMem
}

// preempt evicts lower-priority pods to make room for a high-priority pod,
// mirroring priority preemption ("preemptive Pods evict all the
// lower-priority Pods, leading to an Out failure").
func (s *Scheduler) preempt(pod *spec.Pod, nodes []*nodeInfo, podSnapshot []*spec.Pod) {
	needCPU, needMem := pod.RequestsMilliCPU(), pod.RequestsMemMB()
	for _, info := range nodes {
		if !info.node.Status.Ready || info.node.Spec.Unschedulable {
			continue
		}
		var victims []*spec.Pod
		freeCPU, freeMem := info.freeCPU, info.freeMem
		for _, vic := range podSnapshot {
			if vic.Spec.NodeName != info.node.Metadata.Name || !vic.Active() {
				continue
			}
			if vic.Spec.Priority < pod.Spec.Priority {
				victims = append(victims, vic)
			}
		}
		sort.Slice(victims, func(i, j int) bool {
			return victims[i].Spec.Priority < victims[j].Spec.Priority
		})
		var chosen []*spec.Pod
		for _, vic := range victims {
			if freeCPU >= needCPU && freeMem >= needMem {
				break
			}
			freeCPU += vic.RequestsMilliCPU()
			freeMem += vic.RequestsMemMB()
			chosen = append(chosen, vic)
		}
		if freeCPU >= needCPU && freeMem >= needMem && len(chosen) > 0 {
			for _, vic := range chosen {
				_ = s.client.Delete(spec.KindPod, vic.Metadata.Namespace, vic.Metadata.Name)
			}
			return
		}
	}
}

func podKey(p *spec.Pod) string { return p.Metadata.NamespacedName() } // cached on sealed pods
