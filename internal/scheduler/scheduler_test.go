package scheduler

import (
	"testing"
	"time"

	"github.com/mutiny-sim/mutiny/internal/apiserver"
	"github.com/mutiny-sim/mutiny/internal/sim"
	"github.com/mutiny-sim/mutiny/internal/spec"
	"github.com/mutiny-sim/mutiny/internal/store"
)

func newScheduler(t *testing.T) (*sim.Loop, *apiserver.Client, *Scheduler) {
	t.Helper()
	loop := sim.NewLoop(1)
	st := store.New(loop, nil)
	srv := apiserver.New(loop, st, nil)
	s := New(loop, srv, Options{})
	c := srv.ClientFor("test")
	for i, name := range []string{"worker-0", "worker-1"} {
		node := &spec.Node{
			Metadata: spec.ObjectMeta{Name: name, Labels: map[string]string{"zone": []string{"a", "b"}[i]}},
			Status: spec.NodeStatus{
				Ready: true, AllocatableMilliCPU: 4000, AllocatableMemMB: 2048,
				LastHeartbeatMillis: loop.Time().UnixMilli(),
			},
		}
		if err := c.Create(node); err != nil {
			t.Fatal(err)
		}
	}
	s.Start()
	loop.RunUntil(5 * time.Second)
	return loop, c, s
}

func pendingPod(name string, cpu int64) *spec.Pod {
	return &spec.Pod{
		Metadata: spec.ObjectMeta{Name: name, Namespace: spec.DefaultNamespace},
		Spec: spec.PodSpec{Containers: []spec.Container{{
			Name: "c", Image: "registry.local/web:1", Command: []string{"serve"},
			RequestsMilliCPU: cpu, RequestsMemMB: 128,
		}}},
	}
}

func nodeOf(t *testing.T, c *apiserver.Client, name string) string {
	t.Helper()
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, name)
	if err != nil {
		t.Fatal(err)
	}
	return obj.(*spec.Pod).Spec.NodeName
}

func TestBindsPendingPod(t *testing.T) {
	loop, c, _ := newScheduler(t)
	if err := c.Create(pendingPod("web-1", 500)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 2*time.Second)
	if n := nodeOf(t, c, "web-1"); n == "" {
		t.Fatal("pod not scheduled")
	}
}

func TestSpreadsByLeastAllocated(t *testing.T) {
	loop, c, _ := newScheduler(t)
	for _, name := range []string{"a", "b", "c", "d"} {
		if err := c.Create(pendingPod(name, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	loop.RunUntil(loop.Now() + 3*time.Second)
	counts := map[string]int{}
	for _, name := range []string{"a", "b", "c", "d"} {
		counts[nodeOf(t, c, name)]++
	}
	if counts["worker-0"] != 2 || counts["worker-1"] != 2 {
		t.Fatalf("placement %v, want an even spread", counts)
	}
}

func TestRespectsNodeSelector(t *testing.T) {
	loop, c, _ := newScheduler(t)
	p := pendingPod("picky", 100)
	p.Spec.NodeSelector = map[string]string{"zone": "b"}
	if err := c.Create(p); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 2*time.Second)
	if n := nodeOf(t, c, "picky"); n != "worker-1" {
		t.Fatalf("scheduled on %q, want worker-1 (zone=b)", n)
	}
}

func TestRespectsTaints(t *testing.T) {
	loop, c, _ := newScheduler(t)
	obj, _ := c.Get(spec.KindNode, "", "worker-0")
	node := spec.CloneForWriteAs(obj.(*spec.Node))
	node.Spec.Taints = []spec.Taint{{Key: "dedicated", Effect: spec.TaintNoSchedule}}
	if err := c.Update(node); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + time.Second)
	for _, name := range []string{"a", "b", "c"} {
		if err := c.Create(pendingPod(name, 100)); err != nil {
			t.Fatal(err)
		}
	}
	loop.RunUntil(loop.Now() + 2*time.Second)
	for _, name := range []string{"a", "b", "c"} {
		if n := nodeOf(t, c, name); n != "worker-1" {
			t.Fatalf("pod %s on tainted node %q", name, n)
		}
	}
}

func TestUnschedulableStaysPending(t *testing.T) {
	loop, c, _ := newScheduler(t)
	if err := c.Create(pendingPod("huge", 9000)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 5*time.Second)
	if n := nodeOf(t, c, "huge"); n != "" {
		t.Fatalf("infeasible pod bound to %q", n)
	}
}

func TestPreemptionEvictsLowerPriority(t *testing.T) {
	loop, c, _ := newScheduler(t)
	// Fill both nodes.
	for _, name := range []string{"a", "b"} {
		if err := c.Create(pendingPod(name, 3500)); err != nil {
			t.Fatal(err)
		}
	}
	loop.RunUntil(loop.Now() + 3*time.Second)
	// A high-priority pod arrives with nowhere to fit.
	p := pendingPod("vip", 3000)
	p.Spec.Priority = 1000
	if err := c.Create(p); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 5*time.Second)
	if n := nodeOf(t, c, "vip"); n == "" {
		t.Fatal("high-priority pod not scheduled after preemption")
	}
	// One victim must be gone.
	survivors := 0
	for _, name := range []string{"a", "b"} {
		if _, err := c.Get(spec.KindPod, spec.DefaultNamespace, name); err == nil {
			survivors++
		}
	}
	if survivors != 1 {
		t.Fatalf("%d low-priority pods survived, want 1", survivors)
	}
}

// Pods bound by someone else (daemon pods, external binders) must be
// absorbed into the cache without triggering the corruption self-check.
func TestExternallyBoundPodDoesNotRestart(t *testing.T) {
	loop, c, s := newScheduler(t)
	bound := pendingPod("daemon-1", 100)
	bound.Spec.NodeName = "worker-0"
	if err := c.Create(bound); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 2*time.Second)
	if s.Restarts() != 0 {
		t.Fatalf("restarts = %d for an externally bound pod, want 0", s.Restarts())
	}
	if !s.IsRunning() {
		t.Fatal("scheduler stopped")
	}
}

func TestRestartAfterStoreMovesPod(t *testing.T) {
	// Rebuild the harness with validation disabled so the nodeName change
	// lands in the store like an apiserver→etcd injection.
	loop := sim.NewLoop(2)
	st := store.New(loop, nil)
	srv := apiserver.New(loop, st, &apiserver.Options{DisableValidation: true})
	s := New(loop, srv, Options{})
	c := srv.ClientFor("test")
	for _, name := range []string{"worker-0", "worker-1"} {
		node := &spec.Node{
			Metadata: spec.ObjectMeta{Name: name},
			Status: spec.NodeStatus{Ready: true, AllocatableMilliCPU: 4000,
				AllocatableMemMB: 2048, LastHeartbeatMillis: loop.Time().UnixMilli()},
		}
		if err := c.Create(node); err != nil {
			t.Fatal(err)
		}
	}
	s.Start()
	loop.RunUntil(5 * time.Second)
	if err := c.Create(pendingPod("web-1", 500)); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 2*time.Second)
	obj, err := c.Get(spec.KindPod, spec.DefaultNamespace, "web-1")
	if err != nil {
		t.Fatal(err)
	}
	pod := spec.CloneForWriteAs(obj.(*spec.Pod))
	if pod.Spec.NodeName == "" {
		t.Fatal("setup: not scheduled")
	}
	pod.Spec.NodeName = "ghost-node"
	if err := c.Update(pod); err != nil {
		t.Fatal(err)
	}
	loop.RunUntil(loop.Now() + 2*time.Second)
	if s.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1 after cache mismatch", s.Restarts())
	}
	if s.IsRunning() {
		t.Fatal("scheduler still running immediately after restart")
	}
	// A new leader takes over after the stale lease expires (~20s).
	loop.RunUntil(loop.Now() + 40*time.Second)
	if !s.IsRunning() {
		t.Fatal("scheduler did not recover after restart")
	}
}
