// Package sim provides a deterministic discrete-event scheduler used as the
// execution substrate for the whole simulated cluster.
//
// Every component of the orchestration system (store, apiserver, controllers,
// scheduler, kubelets, network) runs as callbacks on a single event loop with
// a virtual clock. An experiment that spans a minute of simulated time
// executes in well under a millisecond of wall time, and two runs with the
// same seed produce bit-identical event orders, which is what makes a
// ~9,000-experiment injection campaign tractable and reproducible.
//
// The scheduler is allocation-frugal: event structs are recycled on a
// per-loop free list (a campaign schedules hundreds of thousands of events
// per experiment), periodic timers rearm their own event instead of
// scheduling a fresh closure every tick, and cancelled events are compacted
// out of the heap lazily once they outnumber the live ones.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Epoch is the virtual wall-clock instant corresponding to virtual time zero.
// Timestamps stored in resource objects are derived from it.
var Epoch = time.Date(2024, time.April, 17, 0, 0, 0, 0, time.UTC)

// Loop is a deterministic discrete-event scheduler. The zero value is not
// usable; construct with NewLoop.
//
// Loop is not safe for concurrent use: all callbacks run on the goroutine
// that calls Run/RunUntil/Step, and may schedule further events.
type Loop struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool

	executed int64
	budget   int64 // 0 = unlimited

	// free recycles event structs: an event is returned here after it fires
	// (or is compacted away as a tombstone) and reused by the next At call.
	// Each recycle bumps the event's generation, so stale Timer handles can
	// never cancel an unrelated reuse of the same struct.
	free []*event
	// cancelled counts tombstones currently sitting in the heap. Once they
	// outnumber the live events, compact sweeps them out in one pass instead
	// of letting each wait for its deadline to pop it.
	cancelled int
}

// Timer is a handle to a scheduled callback. Stop cancels it. Timer is a
// small value (copyable, comparable to its zero value by Pending); the zero
// Timer is valid and behaves like an already-fired one.
type Timer struct {
	ev  *event
	gen uint32
}

// event is one heap entry. Events are pooled: gen distinguishes successive
// uses of the same struct, period > 0 marks a periodic (Every) event that
// rearms itself after each firing, and index is the heap position (-1 while
// popped or free).
type event struct {
	loop      *Loop
	at        time.Duration
	seq       uint64
	fn        func()
	period    time.Duration
	gen       uint32
	cancelled bool
	fired     bool
	index     int
}

// valid reports whether t still refers to the scheduling it was created for
// (the underlying struct may have been recycled for a newer event).
func (t Timer) valid() bool {
	return t.ev != nil && t.ev.gen == t.gen
}

// Stop cancels the timer. It is safe to call on an already-fired or
// already-stopped timer (and on the zero Timer), and reports whether the
// call prevented the callback from firing again. Stopping a periodic timer
// from inside its own callback prevents the rearm.
func (t Timer) Stop() bool {
	if !t.valid() || t.ev.cancelled {
		return false
	}
	ev := t.ev
	if ev.period == 0 && ev.fired {
		return false
	}
	ev.cancelled = true
	if ev.index >= 0 {
		// Tombstone in the heap: count it and compact when the dead outweigh
		// the living (a stopped Every timer used to linger until its next
		// deadline popped it).
		l := ev.loop
		l.cancelled++
		if l.cancelled*2 >= len(l.events) {
			l.compact()
		}
	}
	return true
}

// Pending reports whether the timer is still scheduled to fire (again, for
// periodic timers). The zero Timer is not pending.
func (t Timer) Pending() bool {
	if !t.valid() || t.ev.cancelled {
		return false
	}
	if t.ev.period > 0 {
		return true
	}
	return !t.ev.fired
}

// NewLoop returns a loop whose random source is seeded with seed.
func NewLoop(seed int64) *Loop {
	return &Loop{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time as an offset from the epoch.
func (l *Loop) Now() time.Duration { return l.now }

// Time returns the current virtual wall-clock time.
func (l *Loop) Time() time.Time { return Epoch.Add(l.now) }

// Rand returns the loop's deterministic random source.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// SetEventBudget bounds the total number of events the loop will execute;
// once exhausted, Run/RunUntil stop executing callbacks and only advance the
// clock. A budget turns pathological feedback loops (e.g. uncontrolled
// replication churning at event speed) into a frozen — and classifiable —
// cluster instead of an unbounded computation, the simulation counterpart of
// the paper's fixed experiment duration. Zero means unlimited.
func (l *Loop) SetEventBudget(n int64) { l.budget = n }

// EventsExecuted reports how many events have run.
func (l *Loop) EventsExecuted() int64 { return l.executed }

// Resume positions a fresh loop at a snapshot instant: the clock jumps to
// now and the executed-event counter resumes from executed, so an event
// budget set afterwards leaves exactly the same headroom as a loop that
// actually replayed those events. Resume supports forking a bootstrapped
// cluster: the fork's loop continues the virtual timeline of the snapshot
// while drawing randomness from its own (per-experiment) seed. It must be
// called before any event is scheduled or executed on the loop.
func (l *Loop) Resume(now time.Duration, executed int64) {
	if l.executed != 0 || len(l.events) != 0 || l.seq != 0 {
		panic("sim: Resume called on a loop that already ran or has pending events")
	}
	l.now = now
	l.executed = executed
}

// BudgetExhausted reports whether the event budget was consumed.
func (l *Loop) BudgetExhausted() bool { return l.budget > 0 && l.executed >= l.budget }

// alloc takes an event off the free list (or news one) and stamps it with
// the next sequence number.
func (l *Loop) alloc(at time.Duration, fn func()) *event {
	var ev *event
	if n := len(l.free); n > 0 {
		ev = l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
	} else {
		ev = &event{loop: l}
	}
	ev.at = at
	ev.seq = l.seq
	ev.fn = fn
	l.seq++
	return ev
}

// recycle returns a popped (or compacted) event to the free list. The
// generation bump invalidates every Timer handle still pointing at it.
func (l *Loop) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.period = 0
	ev.cancelled = false
	ev.fired = false
	ev.index = -1
	l.free = append(l.free, ev)
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (l *Loop) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now+d, fn)
}

// At schedules fn at the absolute virtual time t (clamped to now).
func (l *Loop) At(t time.Duration, fn func()) Timer {
	if t < l.now {
		t = l.now
	}
	ev := l.alloc(t, fn)
	heap.Push(&l.events, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// Every schedules fn to run every interval, starting one interval from now,
// until the returned Timer is stopped. The interval must be positive.
// Periodic events rearm themselves after each firing — no per-tick closure
// or event allocation — drawing a fresh sequence number after the callback
// returns, exactly as if the callback had rescheduled itself.
func (l *Loop) Every(interval time.Duration, fn func()) Timer {
	if interval <= 0 {
		interval = time.Nanosecond
	}
	t := l.After(interval, fn)
	t.ev.period = interval
	return t
}

// Step executes the next pending event, advancing the clock to its deadline.
// It reports whether an event was executed.
func (l *Loop) Step() bool {
	if l.BudgetExhausted() {
		return false
	}
	for l.events.Len() > 0 {
		ev := heap.Pop(&l.events).(*event)
		if ev.cancelled {
			l.cancelled--
			l.recycle(ev)
			continue
		}
		l.now = ev.at
		ev.fired = true
		l.executed++
		ev.fn()
		if ev.period > 0 && !ev.cancelled {
			// Rearm in place: same struct, same generation (the Timer handle
			// stays live), next interval, fresh sequence number.
			ev.at = l.now + ev.period
			ev.seq = l.seq
			l.seq++
			ev.fired = false
			heap.Push(&l.events, ev)
		} else {
			l.recycle(ev)
		}
		return true
	}
	return false
}

// RunUntil executes all events scheduled at or before deadline, then advances
// the clock to deadline. Events scheduled by callbacks are executed too if
// they fall within the deadline.
func (l *Loop) RunUntil(deadline time.Duration) {
	l.stopped = false
	for !l.stopped && !l.BudgetExhausted() && l.events.Len() > 0 {
		ev := l.events[0]
		if ev.cancelled {
			heap.Pop(&l.events)
			l.cancelled--
			l.recycle(ev)
			continue
		}
		if ev.at > deadline {
			break
		}
		l.Step()
	}
	if l.now < deadline {
		l.now = deadline
	}
}

// RunUntilStopped executes events scheduled at or before deadline, like
// RunUntil, but returns the moment Stop is called — without advancing the
// clock to the deadline. It reports whether it was stopped early.
//
// This is the wakeup primitive of the watch-driven readiness pipeline: a
// subscriber calls Stop from an event callback when its condition is met,
// and the caller resumes at the exact instant of that event instead of the
// next poll boundary. When the deadline passes (or the queue drains, or the
// event budget runs out) the clock lands on deadline, exactly as RunUntil.
func (l *Loop) RunUntilStopped(deadline time.Duration) bool {
	l.stopped = false
	for !l.BudgetExhausted() && l.events.Len() > 0 {
		ev := l.events[0]
		if ev.cancelled {
			heap.Pop(&l.events)
			l.cancelled--
			l.recycle(ev)
			continue
		}
		if ev.at > deadline {
			break
		}
		l.Step()
		if l.stopped {
			return true
		}
	}
	if l.now < deadline {
		l.now = deadline
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (l *Loop) Run() {
	l.stopped = false
	for !l.stopped && l.Step() {
	}
}

// Stop makes the innermost Run/RunUntil return after the current callback.
func (l *Loop) Stop() { l.stopped = true }

// Pending reports the number of scheduled, uncancelled events.
func (l *Loop) Pending() int { return len(l.events) - l.cancelled }

// compact sweeps cancelled events out of the heap in one pass and restores
// the heap invariant. Ordering is untouched: heap order is fully determined
// by (at, seq), so re-heapifying the survivors yields the same pop order.
func (l *Loop) compact() {
	live := l.events[:0]
	for _, ev := range l.events {
		if ev.cancelled {
			l.recycle(ev)
		} else {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(l.events); i++ {
		l.events[i] = nil
	}
	l.events = live
	l.cancelled = 0
	heap.Init(&l.events)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
