// Package sim provides a deterministic discrete-event scheduler used as the
// execution substrate for the whole simulated cluster.
//
// Every component of the orchestration system (store, apiserver, controllers,
// scheduler, kubelets, network) runs as callbacks on a single event loop with
// a virtual clock. An experiment that spans a minute of simulated time
// executes in well under a millisecond of wall time, and two runs with the
// same seed produce bit-identical event orders, which is what makes a
// ~9,000-experiment injection campaign tractable and reproducible.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Epoch is the virtual wall-clock instant corresponding to virtual time zero.
// Timestamps stored in resource objects are derived from it.
var Epoch = time.Date(2024, time.April, 17, 0, 0, 0, 0, time.UTC)

// Loop is a deterministic discrete-event scheduler. The zero value is not
// usable; construct with NewLoop.
//
// Loop is not safe for concurrent use: all callbacks run on the goroutine
// that calls Run/RunUntil/Step, and may schedule further events.
type Loop struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool

	executed int64
	budget   int64 // 0 = unlimited
}

// Timer is a handle to a scheduled callback. Stop cancels it.
type Timer struct {
	ev       *event
	periodic *bool // set for Every timers; true once stopped
}

// Stop cancels the timer. It is safe to call on an already-fired or
// already-stopped timer, and reports whether the call prevented the callback
// from firing again.
func (t *Timer) Stop() bool {
	if t == nil {
		return false
	}
	if t.periodic != nil {
		if *t.periodic {
			return false
		}
		*t.periodic = true
		if t.ev != nil {
			t.ev.cancelled = true
		}
		return true
	}
	if t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	index     int
}

// NewLoop returns a loop whose random source is seeded with seed.
func NewLoop(seed int64) *Loop {
	return &Loop{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time as an offset from the epoch.
func (l *Loop) Now() time.Duration { return l.now }

// Time returns the current virtual wall-clock time.
func (l *Loop) Time() time.Time { return Epoch.Add(l.now) }

// Rand returns the loop's deterministic random source.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// SetEventBudget bounds the total number of events the loop will execute;
// once exhausted, Run/RunUntil stop executing callbacks and only advance the
// clock. A budget turns pathological feedback loops (e.g. uncontrolled
// replication churning at event speed) into a frozen — and classifiable —
// cluster instead of an unbounded computation, the simulation counterpart of
// the paper's fixed experiment duration. Zero means unlimited.
func (l *Loop) SetEventBudget(n int64) { l.budget = n }

// EventsExecuted reports how many events have run.
func (l *Loop) EventsExecuted() int64 { return l.executed }

// Resume positions a fresh loop at a snapshot instant: the clock jumps to
// now and the executed-event counter resumes from executed, so an event
// budget set afterwards leaves exactly the same headroom as a loop that
// actually replayed those events. Resume supports forking a bootstrapped
// cluster: the fork's loop continues the virtual timeline of the snapshot
// while drawing randomness from its own (per-experiment) seed. It must be
// called before any event is scheduled or executed on the loop.
func (l *Loop) Resume(now time.Duration, executed int64) {
	if l.executed != 0 || len(l.events) != 0 || l.seq != 0 {
		panic("sim: Resume called on a loop that already ran or has pending events")
	}
	l.now = now
	l.executed = executed
}

// BudgetExhausted reports whether the event budget was consumed.
func (l *Loop) BudgetExhausted() bool { return l.budget > 0 && l.executed >= l.budget }

// After schedules fn to run d from now. Negative d is treated as zero.
func (l *Loop) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now+d, fn)
}

// At schedules fn at the absolute virtual time t (clamped to now).
func (l *Loop) At(t time.Duration, fn func()) *Timer {
	if t < l.now {
		t = l.now
	}
	ev := &event{at: t, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.events, ev)
	return &Timer{ev: ev}
}

// Every schedules fn to run every interval, starting one interval from now,
// until the returned Timer is stopped. The interval must be positive.
func (l *Loop) Every(interval time.Duration, fn func()) *Timer {
	if interval <= 0 {
		interval = time.Nanosecond
	}
	stopped := false
	t := &Timer{periodic: &stopped}
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			t.ev = l.After(interval, tick).ev
		}
	}
	t.ev = l.After(interval, tick).ev
	return t
}

// Step executes the next pending event, advancing the clock to its deadline.
// It reports whether an event was executed.
func (l *Loop) Step() bool {
	if l.BudgetExhausted() {
		return false
	}
	for l.events.Len() > 0 {
		ev := heap.Pop(&l.events).(*event)
		if ev.cancelled {
			continue
		}
		l.now = ev.at
		ev.fired = true
		l.executed++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes all events scheduled at or before deadline, then advances
// the clock to deadline. Events scheduled by callbacks are executed too if
// they fall within the deadline.
func (l *Loop) RunUntil(deadline time.Duration) {
	l.stopped = false
	for !l.stopped && !l.BudgetExhausted() && l.events.Len() > 0 {
		ev := l.events[0]
		if ev.cancelled {
			heap.Pop(&l.events)
			continue
		}
		if ev.at > deadline {
			break
		}
		l.Step()
	}
	if l.now < deadline {
		l.now = deadline
	}
}

// Run executes events until the queue drains or Stop is called.
func (l *Loop) Run() {
	l.stopped = false
	for !l.stopped && l.Step() {
	}
}

// Stop makes the innermost Run/RunUntil return after the current callback.
func (l *Loop) Stop() { l.stopped = true }

// Pending reports the number of scheduled, uncancelled events.
func (l *Loop) Pending() int {
	n := 0
	for _, ev := range l.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
