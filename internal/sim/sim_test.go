package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLoopOrdering(t *testing.T) {
	l := NewLoop(1)
	var got []int
	l.After(3*time.Second, func() { got = append(got, 3) })
	l.After(1*time.Second, func() { got = append(got, 1) })
	l.After(2*time.Second, func() { got = append(got, 2) })
	l.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if l.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", l.Now())
	}
}

func TestLoopFIFOAtSameInstant(t *testing.T) {
	l := NewLoop(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.After(time.Second, func() { got = append(got, i) })
	}
	l.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestLoopNestedScheduling(t *testing.T) {
	l := NewLoop(1)
	var fired int
	l.After(time.Second, func() {
		l.After(time.Second, func() { fired++ })
	})
	l.Run()
	if fired != 1 {
		t.Fatalf("nested event fired %d times, want 1", fired)
	}
	if l.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", l.Now())
	}
}

func TestTimerStop(t *testing.T) {
	l := NewLoop(1)
	fired := false
	tm := l.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	l.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	l := NewLoop(1)
	var fired, late bool
	l.After(time.Second, func() { fired = true })
	l.After(time.Minute, func() { late = true })
	l.RunUntil(10 * time.Second)
	if !fired {
		t.Fatal("event within deadline did not fire")
	}
	if late {
		t.Fatal("event past deadline fired")
	}
	if l.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want 10s", l.Now())
	}
	if l.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", l.Pending())
	}
}

func TestEvery(t *testing.T) {
	l := NewLoop(1)
	var n int
	var tick Timer
	tick = l.Every(time.Second, func() {
		n++
		if n == 5 {
			tick.Stop()
		}
	})
	l.RunUntil(time.Minute)
	if n != 5 {
		t.Fatalf("periodic fired %d times, want 5", n)
	}
}

func TestEveryStopBeforeFirstTick(t *testing.T) {
	l := NewLoop(1)
	var n int
	tick := l.Every(time.Second, func() { n++ })
	tick.Stop()
	l.RunUntil(10 * time.Second)
	if n != 0 {
		t.Fatalf("stopped periodic fired %d times, want 0", n)
	}
}

func TestAtClampsToNow(t *testing.T) {
	l := NewLoop(1)
	l.After(5*time.Second, func() {
		l.At(time.Second, func() {
			if l.Now() != 5*time.Second {
				t.Fatalf("past-scheduled event ran at %v, want clamped to 5s", l.Now())
			}
		})
	})
	l.Run()
}

func TestStopHaltsRun(t *testing.T) {
	l := NewLoop(1)
	var count int
	for i := 0; i < 10; i++ {
		l.After(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				l.Stop()
			}
		})
	}
	l.Run()
	if count != 3 {
		t.Fatalf("Run executed %d events after Stop, want 3", count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		l := NewLoop(seed)
		var trace []int64
		for i := 0; i < 100; i++ {
			d := time.Duration(l.Rand().Intn(1000)) * time.Millisecond
			l.After(d, func() { trace = append(trace, int64(l.Now())) })
		}
		l.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any batch of non-negative delays, events fire in
// non-decreasing time order and the clock ends at the max delay.
func TestPropertyMonotoneClock(t *testing.T) {
	prop := func(delays []uint16) bool {
		l := NewLoop(7)
		var last time.Duration
		ok := true
		var max time.Duration
		for _, d := range delays {
			dd := time.Duration(d) * time.Millisecond
			if dd > max {
				max = dd
			}
			l.After(dd, func() {
				if l.Now() < last {
					ok = false
				}
				last = l.Now()
			})
		}
		l.Run()
		return ok && (len(delays) == 0 || l.Now() == max)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeEpoch(t *testing.T) {
	l := NewLoop(1)
	l.RunUntil(90 * time.Second)
	want := Epoch.Add(90 * time.Second)
	if !l.Time().Equal(want) {
		t.Fatalf("Time() = %v, want %v", l.Time(), want)
	}
}

// Regression: a stopped Every timer used to leave its cancelled event in the
// heap until the deadline popped it. Now tombstones are compacted as soon as
// they outnumber live events, so stopping periodic timers shrinks the heap
// without the loop ever running.
func TestStoppedPeriodicTimersAreCompacted(t *testing.T) {
	l := NewLoop(1)
	l.After(time.Hour, func() {}) // one live long-deadline event
	var timers []Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, l.Every(time.Minute, func() {}))
	}
	for _, tm := range timers {
		if !tm.Stop() {
			t.Fatal("Stop() = false on a running periodic timer")
		}
	}
	if got := len(l.events); got != 1 {
		t.Fatalf("heap holds %d events after stopping all periodics, want 1 (tombstones not compacted)", got)
	}
	if got := l.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
}

// A periodic timer's event is rearmed in place: no allocation per tick once
// the loop is warm.
func TestEveryRearmDoesNotAllocate(t *testing.T) {
	l := NewLoop(1)
	n := 0
	l.Every(time.Second, func() { n++ })
	l.RunUntil(time.Second) // warm: event struct allocated, first tick fired
	allocs := testing.AllocsPerRun(100, func() {
		l.RunUntil(l.Now() + time.Second)
	})
	if allocs > 0 {
		t.Fatalf("periodic rearm allocates %.1f objects/tick, want 0", allocs)
	}
	if n < 100 {
		t.Fatalf("ticked %d times, want >= 100", n)
	}
}

// Recycled events must not be cancellable through stale Timer handles: a
// handle from a fired one-shot keeps returning false even after its struct
// is reused for a new event.
func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	l := NewLoop(1)
	first := l.After(time.Second, func() {})
	l.RunUntil(2 * time.Second) // fires and recycles the event struct
	if first.Stop() {
		t.Fatal("Stop() = true on a fired timer")
	}
	fired := false
	l.After(time.Second, func() { fired = true }) // reuses the recycled struct
	if first.Stop() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if first.Pending() {
		t.Fatal("stale handle reports Pending")
	}
	l.RunUntil(l.Now() + 2*time.Second)
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// Stopping a periodic timer from inside its own callback prevents the rearm.
func TestEveryStopFromOwnCallback(t *testing.T) {
	l := NewLoop(1)
	n := 0
	var tick Timer
	tick = l.Every(time.Second, func() {
		n++
		if !tick.Stop() {
			t.Error("Stop() = false from inside the periodic callback")
		}
	})
	l.RunUntil(time.Minute)
	if n != 1 {
		t.Fatalf("periodic fired %d times after self-stop, want 1", n)
	}
	if l.Pending() != 0 {
		t.Fatalf("Pending() = %d after self-stop, want 0", l.Pending())
	}
}

// Determinism must survive pooling: interleaved one-shot and periodic
// scheduling with stops produces the identical trace run-to-run.
func TestDeterminismWithPoolingAndPeriodics(t *testing.T) {
	run := func() []int64 {
		l := NewLoop(99)
		var trace []int64
		var tickers []Timer
		for i := 0; i < 20; i++ {
			i := i
			tickers = append(tickers, l.Every(time.Duration(50+i)*time.Millisecond, func() {
				trace = append(trace, int64(i)<<32|int64(l.Now()/time.Millisecond))
			}))
		}
		for i := 0; i < 200; i++ {
			d := time.Duration(l.Rand().Intn(2000)) * time.Millisecond
			l.After(d, func() { trace = append(trace, int64(l.Now())) })
		}
		l.After(time.Second, func() {
			for _, tm := range tickers[:10] {
				tm.Stop()
			}
		})
		l.RunUntil(3 * time.Second)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

// RunUntilStopped is the watch-driven wakeup primitive: Stop from a callback
// returns control at the exact event instant, without warping the clock to
// the deadline; an undisturbed run behaves exactly like RunUntil.
func TestRunUntilStopped(t *testing.T) {
	l := NewLoop(1)
	fired := time.Duration(-1)
	l.After(300*time.Millisecond, func() {
		fired = l.Now()
		l.Stop()
	})
	l.After(700*time.Millisecond, func() {
		t.Fatal("event past the stop point must not run in this pass")
	})
	if !l.RunUntilStopped(10 * time.Second) {
		t.Fatal("RunUntilStopped did not report the stop")
	}
	if fired != 300*time.Millisecond {
		t.Fatalf("callback at %v, want 300ms", fired)
	}
	if l.Now() != 300*time.Millisecond {
		t.Fatalf("clock advanced to %v on stop, want the event instant", l.Now())
	}

	// Without a Stop the deadline semantics match RunUntil: remaining events
	// execute and the clock lands on the deadline.
	l2 := NewLoop(1)
	ran := 0
	l2.After(time.Second, func() { ran++ })
	if l2.RunUntilStopped(5 * time.Second) {
		t.Fatal("nothing called Stop")
	}
	if ran != 1 || l2.Now() != 5*time.Second {
		t.Fatalf("ran=%d now=%v, want 1 event and clock at deadline", ran, l2.Now())
	}
}
