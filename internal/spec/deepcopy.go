package spec

// Hand-written deep copies. Cloning is the hottest operation at campaign
// scale (every read and every watch dispatch copies objects), and the
// reflective generic copy showed up as >50% of campaign CPU time; these
// methods keep the simulation fast enough to run ~9,000 experiments.

func cloneStringMap(in map[string]string) map[string]string {
	if in == nil {
		return nil
	}
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func cloneStrings(in []string) []string {
	if in == nil {
		return nil
	}
	return append([]string(nil), in...)
}

func cloneInts(in []int64) []int64 {
	if in == nil {
		return nil
	}
	return append([]int64(nil), in...)
}

func (m ObjectMeta) clone() ObjectMeta {
	out := m
	out.sealed = false // clones are private until sealed themselves
	out.nsName = ""    // a clone may be renamed before it is written back
	out.wire = nil     // a mutated clone invalidates the cached encoding
	out.wireStatusOff = 0
	out.Labels = cloneStringMap(m.Labels)
	out.Annotations = cloneStringMap(m.Annotations)
	if m.OwnerReferences != nil {
		out.OwnerReferences = append([]OwnerReference(nil), m.OwnerReferences...)
	}
	return out
}

func (c Container) clone() Container {
	out := c
	out.Command = cloneStrings(c.Command)
	return out
}

func (s PodSpec) clone() PodSpec {
	out := s
	if s.Containers != nil {
		out.Containers = make([]Container, len(s.Containers))
		for i := range s.Containers {
			out.Containers[i] = s.Containers[i].clone()
		}
	}
	if s.Tolerations != nil {
		out.Tolerations = append([]Toleration(nil), s.Tolerations...)
	}
	out.NodeSelector = cloneStringMap(s.NodeSelector)
	return out
}

func (s LabelSelector) clone() LabelSelector {
	return LabelSelector{MatchLabels: cloneStringMap(s.MatchLabels)}
}

func (t PodTemplate) clone() PodTemplate {
	return PodTemplate{Labels: cloneStringMap(t.Labels), Spec: t.Spec.clone()}
}

// ClonePod returns a deep copy.
func ClonePod(p *Pod) *Pod {
	return &Pod{Metadata: p.Metadata.clone(), Spec: p.Spec.clone(), Status: p.Status}
}

// CloneReplicaSet returns a deep copy.
func CloneReplicaSet(r *ReplicaSet) *ReplicaSet {
	return &ReplicaSet{
		Metadata: r.Metadata.clone(),
		Spec: ReplicaSetSpec{
			Replicas: r.Spec.Replicas,
			Selector: r.Spec.Selector.clone(),
			Template: r.Spec.Template.clone(),
		},
		Status: r.Status,
	}
}

// CloneDeployment returns a deep copy.
func CloneDeployment(d *Deployment) *Deployment {
	return &Deployment{
		Metadata: d.Metadata.clone(),
		Spec: DeploymentSpec{
			Replicas:       d.Spec.Replicas,
			Selector:       d.Spec.Selector.clone(),
			Template:       d.Spec.Template.clone(),
			MaxUnavailable: d.Spec.MaxUnavailable,
			MaxSurge:       d.Spec.MaxSurge,
		},
		Status: d.Status,
	}
}

// CloneDaemonSet returns a deep copy.
func CloneDaemonSet(d *DaemonSet) *DaemonSet {
	return &DaemonSet{
		Metadata: d.Metadata.clone(),
		Spec: DaemonSetSpec{
			Selector: d.Spec.Selector.clone(),
			Template: d.Spec.Template.clone(),
		},
		Status: d.Status,
	}
}

// CloneService returns a deep copy.
func CloneService(s *Service) *Service {
	out := &Service{Metadata: s.Metadata.clone()}
	out.Spec.Selector = cloneStringMap(s.Spec.Selector)
	out.Spec.ClusterIP = s.Spec.ClusterIP
	if s.Spec.Ports != nil {
		out.Spec.Ports = append([]ServicePort(nil), s.Spec.Ports...)
	}
	return out
}

// CloneEndpoints returns a deep copy.
func CloneEndpoints(e *Endpoints) *Endpoints {
	out := &Endpoints{Metadata: e.Metadata.clone()}
	if e.Subsets != nil {
		out.Subsets = make([]EndpointSubset, len(e.Subsets))
		for i := range e.Subsets {
			sub := EndpointSubset{Ports: cloneInts(e.Subsets[i].Ports)}
			if e.Subsets[i].Addresses != nil {
				sub.Addresses = append([]EndpointAddress(nil), e.Subsets[i].Addresses...)
			}
			out.Subsets[i] = sub
		}
	}
	return out
}

// CloneNode returns a deep copy.
func CloneNode(n *Node) *Node {
	out := &Node{Metadata: n.Metadata.clone(), Status: n.Status}
	out.Spec.PodCIDR = n.Spec.PodCIDR
	out.Spec.Unschedulable = n.Spec.Unschedulable
	if n.Spec.Taints != nil {
		out.Spec.Taints = append([]Taint(nil), n.Spec.Taints...)
	}
	return out
}

// CloneNamespace returns a deep copy.
func CloneNamespace(n *Namespace) *Namespace {
	return &Namespace{Metadata: n.Metadata.clone(), Phase: n.Phase}
}

// CloneConfigMap returns a deep copy.
func CloneConfigMap(c *ConfigMap) *ConfigMap {
	return &ConfigMap{Metadata: c.Metadata.clone(), Data: cloneStringMap(c.Data)}
}

// CloneLease returns a deep copy.
func CloneLease(l *Lease) *Lease {
	return &Lease{Metadata: l.Metadata.clone(), Spec: l.Spec}
}
