package spec

import (
	"sync"
	"sync/atomic"
)

// Storage-key interning.
//
// Key is on the floor of every request the apiserver serves: get and apply
// build the "/registry/<kind>/<ns>/<name>" key for each read and each write,
// and before interning every call allocated a fresh concatenation — the
// single largest remaining allocation site on the campaign hot path. The
// key space is tiny and endlessly recurring (a campaign names a few hundred
// objects, then touches them millions of times), so the table resolves a
// (kind, namespace, name) triple to one canonical string.
//
// The design mirrors the label-map intern table: process-wide, sharded,
// lock-free reads over an atomically published immutable map, copy-on-write
// inserts under a shard mutex, and a hard passthrough once a shard fills
// (an unexpected explosion of distinct keys degrades to the old allocate-
// per-call behavior, never to unbounded memory). The lookup hashes the
// parts directly and verifies candidates segment by segment, so a hit
// allocates nothing.

const (
	keyInternShardCount = 64
	keyInternShardMask  = keyInternShardCount - 1
	// maxKeyShardEntries bounds retained keys at 64×1024; a campaign uses a
	// few hundred distinct keys.
	maxKeyShardEntries = 1024
)

type keyInternShard struct {
	table atomic.Pointer[map[uint64][]string]
	mu    sync.Mutex
}

var keyInternShards [keyInternShardCount]keyInternShard

const keyPrefix = "/registry/"

// keyHash is FNV-1a over the exact bytes of the assembled key, computed
// without assembling it.
func keyHash(kind Kind, namespace, name string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(keyPrefix); i++ {
		h = (h ^ uint64(keyPrefix[i])) * prime64
	}
	for i := 0; i < len(kind); i++ {
		h = (h ^ uint64(kind[i])) * prime64
	}
	h = (h ^ uint64('/')) * prime64
	for i := 0; i < len(namespace); i++ {
		h = (h ^ uint64(namespace[i])) * prime64
	}
	h = (h ^ uint64('/')) * prime64
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime64
	}
	return h
}

// keyMatches reports whether k is exactly the key the triple assembles to,
// comparing in place.
func keyMatches(k string, kind Kind, namespace, name string) bool {
	if len(k) != len(keyPrefix)+len(kind)+1+len(namespace)+1+len(name) {
		return false
	}
	if k[:len(keyPrefix)] != keyPrefix {
		return false
	}
	i := len(keyPrefix)
	if k[i:i+len(kind)] != string(kind) {
		return false
	}
	i += len(kind)
	if k[i] != '/' {
		return false
	}
	i++
	if k[i:i+len(namespace)] != namespace {
		return false
	}
	i += len(namespace)
	if k[i] != '/' {
		return false
	}
	return k[i+1:] == name
}

// internKey resolves the triple to its canonical key string, allocating only
// on the first sighting (or when the shard is full).
func internKey(kind Kind, namespace, name string) string {
	h := keyHash(kind, namespace, name)
	s := &keyInternShards[h&keyInternShardMask]
	if t := s.table.Load(); t != nil {
		for _, k := range (*t)[h] {
			if keyMatches(k, kind, namespace, name) {
				return k
			}
		}
	}
	built := keyPrefix + string(kind) + "/" + namespace + "/" + name
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.table.Load()
	var cur map[uint64][]string
	if old != nil {
		cur = *old
		// Re-check under the lock: a racing insert may have won.
		for _, k := range cur[h] {
			if keyMatches(k, kind, namespace, name) {
				return k
			}
		}
		if len(cur) >= maxKeyShardEntries {
			return built
		}
	}
	next := make(map[uint64][]string, len(cur)+1)
	for hh, ks := range cur {
		next[hh] = ks
	}
	next[h] = append(append([]string(nil), cur[h]...), built)
	s.table.Store(&next)
	return built
}

// internedKeys reports the number of canonical keys currently retained
// (diagnostics and tests).
func internedKeys() int {
	n := 0
	for i := range keyInternShards {
		if t := keyInternShards[i].table.Load(); t != nil {
			for _, ks := range *t {
				n += len(ks)
			}
		}
	}
	return n
}
