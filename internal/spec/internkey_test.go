package spec

import (
	"fmt"
	"testing"
	"unsafe"
)

func strData(s string) uintptr {
	return uintptr(unsafe.Pointer(unsafe.StringData(s)))
}

func TestKeyInterning(t *testing.T) {
	k1 := Key(KindPod, DefaultNamespace, "intern-key-web-1")
	if want := "/registry/Pod/default/intern-key-web-1"; k1 != want {
		t.Fatalf("Key = %q, want %q", k1, want)
	}
	k2 := Key(KindPod, DefaultNamespace, "intern-key-web-1")
	if strData(k1) != strData(k2) {
		t.Fatal("repeated Key calls returned distinct string instances")
	}
	// Distinct identities never conflate, including separator-ambiguous
	// ones ("a/b"+"c" vs "a"+"b/c" style).
	if Key(KindPod, "ns-a", "b-c") == Key(KindPod, "ns-a-b", "c") {
		t.Fatal("distinct identities interned to one key")
	}
	for i := 0; i < 300; i++ {
		name := fmt.Sprintf("intern-key-%d", i)
		if got := Key(KindNode, "", name); got != "/registry/Node//"+name {
			t.Fatalf("Key conflated distinct names at %d: %q", i, got)
		}
	}
	if internedKeys() == 0 {
		t.Fatal("intern table retained nothing")
	}
}

func BenchmarkKeyInterned(b *testing.B) {
	Key(KindPod, DefaultNamespace, "bench-key-web-1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Key(KindPod, DefaultNamespace, "bench-key-web-1")
	}
}
