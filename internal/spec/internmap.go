package spec

import (
	"reflect"
	"sync"
	"sync/atomic"
)

// Label-map interning.
//
// Nearly every object in a campaign carries one of a handful of tiny label
// sets: {app: web}, {app: web, pod-template-hash: h}, {node-role: worker},
// the DaemonSet selectors, and so on. Before interning, every decode and
// every deep clone allocated a private copy of these maps, and the retained
// heap (watch caches, decode caches, snapshots across all workers) held
// thousands of identical two-entry maps. Interning resolves an equal map to
// one canonical instance at Seal time — the moment the object becomes
// immutable, so sharing the map is exactly as safe as sharing the object.
//
// The table follows the codec string-intern design: process-wide, sharded,
// and lock-free on the read path. Each shard publishes an immutable map
// through an atomic pointer; a hit is one atomic load plus one map lookup.
// Misses copy-on-write under a shard-local mutex, bounded by
// maxMapShardEntries. A second sharded set indexes the canonical maps by
// identity (their map header pointer), so re-sealing an object that already
// carries canonical maps — the status-update hot path re-seals a shallow
// clone per write — is a pointer lookup, not a re-serialization.
//
// Only sealed objects ever alias a canonical map. CloneForWrite hands out
// deep copies (cloneStringMap), so the mutable-clone contract is unchanged:
// writers own their maps and may mutate them freely.

const (
	// maxInternMapEntries bounds interned map size; the label/selector sets
	// the resource model uses have 1–3 entries.
	maxInternMapEntries = 4
	// maxInternMapKVLen bounds interned key/value length (mirrors the codec
	// table's maxInternLen; longer values — e.g. ConfigMap payloads — are
	// unlikely to repeat).
	maxInternMapKVLen = 64
	// mapInternShardCount must be a power of two (the shard index is a hash
	// mask).
	mapInternShardCount = 64
	// maxMapShardEntries bounds one shard's table; beyond it maps pass
	// through uninterned (graceful degradation, no eviction churn).
	maxMapShardEntries = 1024
)

type mapInternShard struct {
	// table maps the serialized sorted entries of a map to its canonical
	// instance. Readers load the published map atomically and never lock.
	table atomic.Pointer[map[string]map[string]string]
	// canon is the identity set of canonical instances owned by this shard's
	// table, keyed by map header pointer. Entries are never removed, and the
	// table holds a strong reference to every member, so a pointer can never
	// be reused by a different live map.
	canon atomic.Pointer[map[mapHeader]struct{}]
	mu    sync.Mutex
}

// mapHeader is the identity of a map value (its header pointer as reported
// by reflect.Value.Pointer). Two map[string]string values are the same map
// iff their headers are equal; headers in the identity set can never be
// reused by a different live map because the table strongly references every
// member.
type mapHeader = uintptr

var mapInternTable [mapInternShardCount]mapInternShard

func init() {
	for i := range mapInternTable {
		t := make(map[string]map[string]string)
		c := make(map[mapHeader]struct{})
		mapInternTable[i].table.Store(&t)
		mapInternTable[i].canon.Store(&c)
	}
}

// mapIdentity returns the header pointer of m for identity comparisons. Maps
// are pointer-shaped, so the reflect.Value boxing does not allocate.
func mapIdentity(m map[string]string) mapHeader {
	return reflect.ValueOf(m).Pointer()
}

// InternStringMap returns a map equal to m, reusing a canonical instance when
// an equal map was interned before. The caller must treat the result as
// immutable — it is only safe to install on objects that are about to be
// sealed. Maps that are too large, carry long entries, or land in a full
// shard are returned unchanged (uninterned maps are merely unshared, never
// wrong).
func InternStringMap(m map[string]string) map[string]string {
	n := len(m)
	if n == 0 || n > maxInternMapEntries {
		return m
	}
	// Serialize the sorted entries into a stack buffer. Length prefixes keep
	// the serialization injective (no separator-collision ambiguity), and the
	// fixed buffer bounds guarantee it fits: 2*maxInternMapEntries strings of
	// ≤ maxInternMapKVLen bytes, each with a one-byte length.
	var keys [maxInternMapEntries]string
	i := 0
	for k, v := range m {
		if len(k) > maxInternMapKVLen || len(v) > maxInternMapKVLen {
			return m
		}
		keys[i] = k
		i++
	}
	sortSmall(keys[:n])
	var buf [2 * maxInternMapEntries * (maxInternMapKVLen + 1)]byte
	b := buf[:0]
	for _, k := range keys[:n] {
		v := m[k]
		b = append(b, byte(len(k)))
		b = append(b, k...)
		b = append(b, byte(len(v)))
		b = append(b, v...)
	}
	s := &mapInternTable[internMapHash(b)&(mapInternShardCount-1)]
	// Identity fast path: the map is already a canonical instance (re-sealing
	// a status clone that aliases sealed metadata).
	if _, ok := (*s.canon.Load())[mapIdentity(m)]; ok {
		return m
	}
	if v, ok := (*s.table.Load())[string(b)]; ok {
		return v
	}
	key := string(b)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.table.Load()
	if v, ok := cur[key]; ok {
		return v
	}
	if len(cur) >= maxMapShardEntries {
		return m // shard full: hand back the private map, table unchanged
	}
	next := make(map[string]map[string]string, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = m
	curCanon := *s.canon.Load()
	nextCanon := make(map[mapHeader]struct{}, len(curCanon)+1)
	for k := range curCanon {
		nextCanon[k] = struct{}{}
	}
	nextCanon[mapIdentity(m)] = struct{}{}
	s.table.Store(&next)
	s.canon.Store(&nextCanon)
	return m
}

// internMapHash is FNV-1a over the serialized entries; only used to pick a
// shard. The identity set must live in the same shard as the table entry, so
// the shard choice keys on content, not identity — an aliased canonical map
// re-derives the same shard from its (unchanged) content.
func internMapHash(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// sortSmall insertion-sorts a tiny string slice (≤ maxInternMapEntries) with
// no allocation.
func sortSmall(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// internObjectMaps canonicalizes every string map of o. Called by Seal while
// the object is still private: after this the maps may be shared with other
// sealed objects, which is safe because sealed objects are immutable.
func internObjectMaps(o Object) {
	m := o.Meta()
	m.Labels = InternStringMap(m.Labels)
	m.Annotations = InternStringMap(m.Annotations)
	switch t := o.(type) {
	case *Pod:
		t.Spec.NodeSelector = InternStringMap(t.Spec.NodeSelector)
	case *ReplicaSet:
		t.Spec.Selector.MatchLabels = InternStringMap(t.Spec.Selector.MatchLabels)
		t.Spec.Template.Labels = InternStringMap(t.Spec.Template.Labels)
	case *Deployment:
		t.Spec.Selector.MatchLabels = InternStringMap(t.Spec.Selector.MatchLabels)
		t.Spec.Template.Labels = InternStringMap(t.Spec.Template.Labels)
	case *DaemonSet:
		t.Spec.Selector.MatchLabels = InternStringMap(t.Spec.Selector.MatchLabels)
		t.Spec.Template.Labels = InternStringMap(t.Spec.Template.Labels)
	case *Service:
		t.Spec.Selector = InternStringMap(t.Spec.Selector)
	case *ConfigMap:
		t.Data = InternStringMap(t.Data)
	}
}

// internedMaps reports the current table population (diagnostics/tests).
func internedMaps() int {
	n := 0
	for i := range mapInternTable {
		n += len(*mapInternTable[i].table.Load())
	}
	return n
}
