package spec

import (
	"fmt"
	"strings"
	"testing"
)

func TestInternStringMapCanonicalizes(t *testing.T) {
	a := map[string]string{"app": "web", "tier": "frontend"}
	b := map[string]string{"tier": "frontend", "app": "web"}
	ia := InternStringMap(a)
	ib := InternStringMap(b)
	if mapIdentity(ia) != mapIdentity(ib) {
		t.Fatal("equal maps interned to different instances")
	}
	if len(ia) != 2 || ia["app"] != "web" || ia["tier"] != "frontend" {
		t.Fatalf("interned map lost content: %v", ia)
	}
	// The canonical instance is identity-stable: re-interning it is a hit.
	if mapIdentity(InternStringMap(ia)) != mapIdentity(ia) {
		t.Fatal("re-interning the canonical map returned a different instance")
	}
}

func TestInternStringMapPassthroughs(t *testing.T) {
	if got := InternStringMap(nil); got != nil {
		t.Fatal("nil map not passed through")
	}
	empty := map[string]string{}
	if got := InternStringMap(empty); mapIdentity(got) != mapIdentity(empty) {
		t.Fatal("empty map not passed through unchanged")
	}
	big := map[string]string{"a": "1", "b": "2", "c": "3", "d": "4", "e": "5"}
	if got := InternStringMap(big); mapIdentity(got) != mapIdentity(big) {
		t.Fatal("over-limit map should pass through uninterned")
	}
	long := map[string]string{"k": strings.Repeat("v", maxInternMapKVLen+1)}
	if got := InternStringMap(long); mapIdentity(got) != mapIdentity(long) {
		t.Fatal("long-value map should pass through uninterned")
	}
}

// Distinct contents must never collapse onto one instance, even when they
// hash to the same shard.
func TestInternStringMapDistinguishesContent(t *testing.T) {
	for i := 0; i < 200; i++ {
		m := InternStringMap(map[string]string{"app": fmt.Sprintf("web-%d", i)})
		if m["app"] != fmt.Sprintf("web-%d", i) {
			t.Fatalf("interning conflated distinct maps at %d: %v", i, m)
		}
	}
}

// Sealing interns an object's maps, and sealing two objects with equal
// labels makes them share one canonical instance.
func TestSealInternsObjectMaps(t *testing.T) {
	mk := func() *Pod {
		return &Pod{
			Metadata: ObjectMeta{
				Name: "p", Namespace: DefaultNamespace,
				Labels: map[string]string{"app": "intern-seal-test"},
			},
			Spec: PodSpec{NodeSelector: map[string]string{"zone": "intern-seal-a"}},
		}
	}
	p1, p2 := mk(), mk()
	Seal(p1)
	Seal(p2)
	if mapIdentity(p1.Metadata.Labels) != mapIdentity(p2.Metadata.Labels) {
		t.Fatal("sealed equal label maps are not shared")
	}
	if mapIdentity(p1.Spec.NodeSelector) != mapIdentity(p2.Spec.NodeSelector) {
		t.Fatal("sealed equal node selectors are not shared")
	}
	// Clones deep-copy back out of the canonical instance: mutating a clone
	// must not touch the shared map.
	c := CloneForWriteAs(p1)
	c.Metadata.Labels["app"] = "mutated"
	if p2.Metadata.Labels["app"] != "intern-seal-test" {
		t.Fatal("mutating a clone's labels reached the shared canonical map")
	}
}
