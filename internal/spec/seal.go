package spec

// Copy-on-write object discipline.
//
// The campaign's hot loop moves the same decoded objects through the watch
// cache, watch dispatch (~13 watchers per cluster), component list scans, and
// bootstrap-snapshot forks. Deep-copying at every hand-off was ~30% of an
// experiment's CPU (runtime.mallocgc); instead, objects become *immutable by
// revision*: the API server seals an object when it enters the watch cache,
// and from then on every reader shares the same instance. Writers call
// CloneForWrite, which copies only when the object is sealed — a private,
// never-shared object passes through untouched.
//
// The contract, layer by layer:
//
//   - apiserver: seals decoded objects before caching/dispatching them;
//     Get/List/watch hand out sealed references with zero per-call copies.
//   - components: may read and retain sealed objects freely (immutability
//     makes retention safe); before mutating, they CloneForWrite and operate
//     on the clone. Clones are unsealed — sealing is per revision, and a
//     mutated clone is a new revision in the making.
//   - tests: RegisterSealHook observes every Seal call, so a guard test can
//     checksum sealed objects and prove nothing mutates them in place (run
//     under -race to cover cross-goroutine access too).

// sealHook, when non-nil, observes every sealed object (test instrumentation;
// see RegisterSealHook).
var sealHook func(Object)

// RegisterSealHook installs fn to be called with every object passed to Seal,
// or removes the hook when fn is nil. It exists for the seal-contract guard
// tests; the hook itself must be safe for use from multiple goroutines when
// experiments run in parallel. Not for production use.
func RegisterSealHook(fn func(Object)) { sealHook = fn }

// Seal marks o immutable and returns it. After sealing, the object must never
// be mutated — all writers go through CloneForWrite. Sealing an already
// sealed object is a no-op.
func Seal(o Object) Object {
	m := o.Meta()
	if !m.sealed {
		// Canonicalize the label/selector maps while the object is still
		// private: from here on the maps may be shared with every other
		// sealed object carrying an equal set (see internmap.go).
		internObjectMaps(o)
		m.sealed = true
		// Cache the namespaced name while the fields are known-final; every
		// consumer that keys state by object identity reads it back through
		// NamespacedName with zero allocations. Status clones arrive with the
		// cache intact (a status write cannot rename), so re-sealing them
		// skips the concatenation.
		if m.nsName == "" {
			m.nsName = m.Namespace + "/" + m.Name
		}
		if sealHook != nil {
			sealHook(o)
		}
	}
	return o
}

// Sealed reports whether the object carrying this metadata is immutable.
func (m *ObjectMeta) Sealed() bool { return m.sealed }

// CloneForWrite returns o itself when it is private (unsealed), or a deep,
// unsealed copy when o is sealed and therefore shared. It is the single
// mutation gate of the copy-on-write discipline: cheap for objects the caller
// already owns, safe for cache views, watch-event objects, and snapshots.
func CloneForWrite(o Object) Object {
	if o.Meta().sealed {
		return o.Clone()
	}
	return o
}

// CloneForWriteAs is CloneForWrite preserving the concrete type, so call
// sites skip the interface re-assertion.
func CloneForWriteAs[T Object](o T) T {
	return CloneForWrite(o).(T)
}
