package spec

import "testing"

func sealTestPod() *Pod {
	return &Pod{
		Metadata: ObjectMeta{
			Name: "web-1", Namespace: DefaultNamespace,
			Labels: map[string]string{"app": "web"},
		},
		Spec: PodSpec{
			NodeName:   "worker-0",
			Containers: []Container{{Name: "web", Image: "registry.local/web:1.0"}},
		},
	}
}

func TestSealMarksAndCloneForWriteCopies(t *testing.T) {
	p := sealTestPod()
	if p.Meta().Sealed() {
		t.Fatal("fresh object reports sealed")
	}
	if got := CloneForWrite(p); got != Object(p) {
		t.Fatal("CloneForWrite copied a private object")
	}
	Seal(p)
	if !p.Meta().Sealed() {
		t.Fatal("Seal did not mark the object")
	}
	w := CloneForWrite(p)
	if w == Object(p) {
		t.Fatal("CloneForWrite returned the sealed object itself")
	}
	if w.Meta().Sealed() {
		t.Fatal("clone of a sealed object must start unsealed")
	}
	// Mutating the clone must not touch the sealed original.
	w.(*Pod).Metadata.Labels["app"] = "changed"
	w.(*Pod).Spec.NodeName = "worker-1"
	if p.Metadata.Labels["app"] != "web" || p.Spec.NodeName != "worker-0" {
		t.Fatal("mutating the clone leaked into the sealed object")
	}
}

func TestCloneClearsSealed(t *testing.T) {
	for _, kind := range Kinds() {
		o := New(kind)
		Seal(o)
		if c := o.Clone(); c.Meta().Sealed() {
			t.Fatalf("%s: Clone kept the sealed bit", kind)
		}
	}
}

func TestCloneForWriteAsKeepsType(t *testing.T) {
	p := sealTestPod()
	Seal(p)
	w := CloneForWriteAs(p)
	if w == p {
		t.Fatal("CloneForWriteAs returned the sealed object")
	}
	w.Spec.NodeName = "elsewhere" // compiles: concrete *Pod, no assertion
}

func TestSealHookObservesSeals(t *testing.T) {
	var seen []Object
	RegisterSealHook(func(o Object) { seen = append(seen, o) })
	defer RegisterSealHook(nil)
	p := sealTestPod()
	Seal(p)
	Seal(p) // idempotent: hook must fire once per object, not per call
	if len(seen) != 1 || seen[0] != Object(p) {
		t.Fatalf("seal hook saw %d objects, want exactly 1", len(seen))
	}
}
