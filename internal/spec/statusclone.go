package spec

// Status-subresource clones.
//
// Status updates are the hottest write class of a campaign (kubelet pod and
// node statuses, controller observed-state writes), and they mutate nothing
// but the Status struct — which is a pointer-free value on every kind that
// has one. A full CloneForWrite deep-copies metadata maps, owner references
// and the spec just to overwrite a handful of status integers; CloneForStatus
// instead copies the struct shallowly, aliasing the sealed source's metadata
// and spec (immutable, so sharing is safe) and clearing only the seal state.
// The clone's Status is a value copy, private by construction.
//
// The contract: callers may mutate ONLY the Status field of the result (and
// must not touch Metadata or Spec, whose maps and slices are shared with the
// sealed source). The apiserver's status-merge path and the kubelet's and
// controllers' status writers all satisfy this by inspection — they assign
// status fields and hand the object to UpdateStatus.

// statusMeta shallow-copies sealed metadata for a status clone: the maps and
// owner references stay aliased (immutable on the sealed source), the seal
// state and cached encoding are cleared, and nsName is kept — a status write
// cannot rename, so the cached identity stays valid for the re-seal.
func statusMeta(m ObjectMeta) ObjectMeta {
	m.sealed = false
	m.wire = nil
	m.wireStatusOff = 0
	return m
}

// CloneForStatus returns a private copy of o for a status-only write: cheap
// shallow copies for the kinds that carry a status subresource, a full
// CloneForWrite otherwise. Unsealed objects pass through unchanged, exactly
// like CloneForWrite.
func CloneForStatus(o Object) Object {
	if !o.Meta().sealed {
		return o
	}
	switch t := o.(type) {
	case *Pod:
		out := *t
		out.Metadata = statusMeta(t.Metadata)
		return &out
	case *ReplicaSet:
		out := *t
		out.Metadata = statusMeta(t.Metadata)
		return &out
	case *Deployment:
		out := *t
		out.Metadata = statusMeta(t.Metadata)
		return &out
	case *DaemonSet:
		out := *t
		out.Metadata = statusMeta(t.Metadata)
		return &out
	case *Node:
		out := *t
		out.Metadata = statusMeta(t.Metadata)
		return &out
	default:
		return o.Clone()
	}
}

// CloneForStatusAs is CloneForStatus preserving the concrete type, so call
// sites skip the interface re-assertion.
func CloneForStatusAs[T Object](o T) T {
	return CloneForStatus(o).(T)
}
