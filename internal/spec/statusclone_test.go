package spec

import "testing"

func sealedPod() *Pod {
	p := &Pod{
		Metadata: ObjectMeta{
			Name: "web-1", Namespace: DefaultNamespace,
			ResourceVersion: 4,
			Labels:          map[string]string{"app": "web"},
		},
		Spec:   PodSpec{NodeName: "node-1"},
		Status: PodStatus{Phase: PodPending},
	}
	Seal(p)
	return p
}

func TestCloneForStatusSharesMetadataAndSpec(t *testing.T) {
	p := sealedPod()
	c := CloneForStatusAs(p)
	if c == p {
		t.Fatal("status clone of a sealed object is the same instance")
	}
	if c.Meta().Sealed() {
		t.Fatal("status clone is sealed")
	}
	if w, _ := c.Meta().WireBytes(); w != nil {
		t.Fatal("status clone inherited the source's wire bytes")
	}
	if mapIdentity(c.Metadata.Labels) != mapIdentity(p.Metadata.Labels) {
		t.Fatal("status clone deep-copied the label map it should share")
	}
	// Mutating status must not touch the sealed source.
	c.Status.Phase = PodRunning
	c.Status.Ready = true
	if p.Status.Phase != PodPending || p.Status.Ready {
		t.Fatal("status mutation on the clone reached the sealed source")
	}
	// The nsName cache survives — a status write cannot rename.
	if c.Meta().NamespacedName() != p.Meta().NamespacedName() {
		t.Fatal("status clone lost the namespaced-name cache")
	}
}

func TestCloneForStatusPassesThroughUnsealed(t *testing.T) {
	p := &Pod{Metadata: ObjectMeta{Name: "w", Namespace: DefaultNamespace}}
	if CloneForStatusAs(p) != p {
		t.Fatal("unsealed object should pass through CloneForStatus unchanged")
	}
}

// Kinds without a shallow fast path fall back to a full clone, which is
// always safe to mutate.
func TestCloneForStatusFallsBackToDeepClone(t *testing.T) {
	svc := &Service{
		Metadata: ObjectMeta{Name: "web", Namespace: DefaultNamespace},
		Spec:     ServiceSpec{Selector: map[string]string{"app": "web"}},
	}
	Seal(svc)
	c := CloneForStatus(svc).(*Service)
	if c == svc {
		t.Fatal("sealed fallback kind not cloned")
	}
	c.Spec.Selector["app"] = "mutated"
	if svc.Spec.Selector["app"] != "web" {
		t.Fatal("fallback clone shares mutable state with the sealed source")
	}
}

func TestStatusCloneResealsWithOwnWire(t *testing.T) {
	p := sealedPod()
	c := CloneForStatusAs(p)
	c.Status.Phase = PodRunning
	c.Metadata.ResourceVersion = 5
	c.Meta().SetWireBytes([]byte{1, 2, 3}, 2)
	Seal(c)
	if w, off := c.Meta().WireBytes(); w == nil || off != 2 {
		t.Fatal("re-sealed status clone lost its wire bytes")
	}
	if w, _ := p.Meta().WireBytes(); len(w) == 3 && w[0] == 1 {
		t.Fatal("source object picked up the clone's wire bytes")
	}
	// SetWireBytes after sealing is a no-op.
	c.Meta().SetWireBytes([]byte{9}, 0)
	if w, _ := c.Meta().WireBytes(); len(w) != 3 {
		t.Fatal("SetWireBytes mutated a sealed object")
	}
}
