// Package spec defines the resource model of the simulated orchestration
// system: the object kinds, their metadata, and the relationship mechanisms
// (labels, selectors, owner references) whose corruption the paper identifies
// as the dominant cause of critical failures (finding F2).
//
// The field inventory deliberately mirrors Kubernetes: identity fields (name,
// namespace, uid), dependency-tracking fields (labels, label selectors,
// ownerReferences, targetRef), replica counts, networking fields (IPs,
// ports, protocols), and image/command specifications — the 34-field critical
// set of §V-C2 all exist here under the same names.
package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind names a resource type.
type Kind string

// All resource kinds handled by the API server.
const (
	KindPod        Kind = "Pod"
	KindReplicaSet Kind = "ReplicaSet"
	KindDeployment Kind = "Deployment"
	KindDaemonSet  Kind = "DaemonSet"
	KindService    Kind = "Service"
	KindEndpoints  Kind = "Endpoints"
	KindNode       Kind = "Node"
	KindNamespace  Kind = "Namespace"
	KindConfigMap  Kind = "ConfigMap"
	KindLease      Kind = "Lease"
)

// Kinds lists every kind in deterministic order.
func Kinds() []Kind {
	return []Kind{
		KindPod, KindReplicaSet, KindDeployment, KindDaemonSet, KindService,
		KindEndpoints, KindNode, KindNamespace, KindConfigMap, KindLease,
	}
}

// Object is implemented by every resource type.
type Object interface {
	// Meta returns the object's metadata for in-place mutation.
	Meta() *ObjectMeta
	// Kind returns the object's resource kind.
	Kind() Kind
	// Clone returns a deep copy.
	Clone() Object
}

// New returns a zero value of the given kind, or nil for unknown kinds.
func New(kind Kind) Object {
	switch kind {
	case KindPod:
		return &Pod{}
	case KindReplicaSet:
		return &ReplicaSet{}
	case KindDeployment:
		return &Deployment{}
	case KindDaemonSet:
		return &DaemonSet{}
	case KindService:
		return &Service{}
	case KindEndpoints:
		return &Endpoints{}
	case KindNode:
		return &Node{}
	case KindNamespace:
		return &Namespace{}
	case KindConfigMap:
		return &ConfigMap{}
	case KindLease:
		return &Lease{}
	default:
		return nil
	}
}

// ObjectMeta carries identity and relationship metadata. Labels and
// ownerReferences are the flexible dependency mechanisms whose corruption
// drives the paper's uncontrolled-replication failures.
type ObjectMeta struct {
	Name            string            `pb:"1"`
	Namespace       string            `pb:"2"`
	UID             string            `pb:"3,uid"`
	ResourceVersion int64             `pb:"4"`
	Labels          map[string]string `pb:"5"`
	Annotations     map[string]string `pb:"6"`
	OwnerReferences []OwnerReference  `pb:"7"`
	CreatedMillis   int64             `pb:"8,creationTimestamp"`
	Generation      int64             `pb:"9"`
	ManagedBy       string            `pb:"10,managedBy"`

	// sealed is the copy-on-write bit (see seal.go): set once the object
	// enters a shared read path (watch cache, dispatch, snapshots). It is
	// not part of the wire format and never survives Clone or decode.
	sealed bool
	// nsName caches Namespace+"/"+Name, computed once at Seal time. Sealed
	// objects are immutable, so the cache can never go stale; consumers that
	// key maps by object identity (controller work queues, the scheduler's
	// pending set, netsim's per-pod accounting) would otherwise re-concatenate
	// the same two strings millions of times per campaign. Like sealed, it is
	// not part of the wire format and never survives Clone or decode.
	nsName string
	// wire, when non-nil, caches the canonical encoding of the object carrying
	// this metadata: byte-for-byte what codec.Marshal would produce for the
	// sealed object. The apiserver write path populates it immediately before
	// Seal (never after — sealed objects are shared across campaign workers),
	// and status-only updates splice their re-encoded status section onto
	// wire[:wireStatusOff] instead of re-marshalling the whole object. Like
	// sealed and nsName, it is not part of the wire format and never survives
	// Clone or decode.
	wire []byte
	// wireStatusOff is the offset in wire where the top-level status record
	// begins; equal to len(wire) when the status section is empty. Meaningless
	// while wire is nil.
	wireStatusOff int
}

// WireBytes returns the cached canonical encoding of the object carrying this
// metadata (nil when none is cached) and the offset where its status section
// starts. The returned slice is immutable — it is shared exactly like the
// sealed object itself.
func (m *ObjectMeta) WireBytes() ([]byte, int) { return m.wire, m.wireStatusOff }

// SetWireBytes installs the cached canonical encoding. Callers must guarantee
// b equals a fresh codec.Marshal of the object and must never mutate b
// afterwards. Setting wire bytes on an already-sealed object is refused:
// sealed objects are shared across goroutines, and a late write would race
// every reader.
func (m *ObjectMeta) SetWireBytes(b []byte, statusOff int) {
	if m.sealed {
		return
	}
	m.wire = b
	m.wireStatusOff = statusOff
}

// OwnerReference links a dependent object to its owner; the garbage
// collector deletes dependents whose owner (matched by UID) is gone.
type OwnerReference struct {
	Kind       string `pb:"1"`
	Name       string `pb:"2"`
	UID        string `pb:"3,uid"`
	Controller bool   `pb:"4"`
}

// ControllerOf returns the controlling owner reference, if any.
func (m *ObjectMeta) ControllerOf() *OwnerReference {
	for i := range m.OwnerReferences {
		if m.OwnerReferences[i].Controller {
			return &m.OwnerReferences[i]
		}
	}
	return nil
}

// NamespacedName returns "namespace/name". For sealed objects the string is
// computed once (at Seal time) and served from a cache thereafter.
func (m *ObjectMeta) NamespacedName() string {
	if m.nsName != "" {
		return m.nsName
	}
	return m.Namespace + "/" + m.Name
}

// --- Pod --------------------------------------------------------------------

// Pod is a set of containers scheduled onto one node.
type Pod struct {
	Metadata ObjectMeta `pb:"1,metadata"`
	Spec     PodSpec    `pb:"2"`
	Status   PodStatus  `pb:"3"`
}

// PodSpec is the desired state of a pod.
type PodSpec struct {
	NodeName      string            `pb:"1"`
	Containers    []Container       `pb:"2"`
	Priority      int64             `pb:"3"`
	Tolerations   []Toleration      `pb:"4"`
	NodeSelector  map[string]string `pb:"5"`
	RestartPolicy string            `pb:"6"`
	VolumeSeed    string            `pb:"7"`
}

// Container describes one container: image, command and resource envelope.
type Container struct {
	Name             string   `pb:"1"`
	Image            string   `pb:"2"`
	Command          []string `pb:"3"`
	RequestsMilliCPU int64    `pb:"4"`
	RequestsMemMB    int64    `pb:"5"`
	LimitsMilliCPU   int64    `pb:"6"`
	LimitsMemMB      int64    `pb:"7"`
	Port             int64    `pb:"8"`
}

// Toleration lets a pod remain on (or be scheduled to) tainted nodes.
type Toleration struct {
	Key            string `pb:"1"`
	Value          string `pb:"2"`
	Effect         string `pb:"3"`
	TolerateAll    bool   `pb:"4"`
	TolerationSecs int64  `pb:"5"`
}

// PodStatus is the observed state of a pod, written by the kubelet.
type PodStatus struct {
	Phase         string `pb:"1"`
	PodIP         string `pb:"2,podIP"`
	Ready         bool   `pb:"3"`
	RestartCount  int64  `pb:"4"`
	Reason        string `pb:"5"`
	StartedMillis int64  `pb:"6"`
}

// Pod phases.
const (
	PodPending   = "Pending"
	PodRunning   = "Running"
	PodSucceeded = "Succeeded"
	PodFailed    = "Failed"
)

// Meta implements Object.
func (p *Pod) Meta() *ObjectMeta { return &p.Metadata }

// Kind implements Object.
func (p *Pod) Kind() Kind { return KindPod }

// Clone implements Object.
func (p *Pod) Clone() Object { return ClonePod(p) }

// RequestsMilliCPU sums CPU requests across containers.
func (p *Pod) RequestsMilliCPU() int64 {
	var total int64
	for i := range p.Spec.Containers {
		total += p.Spec.Containers[i].RequestsMilliCPU
	}
	return total
}

// RequestsMemMB sums memory requests across containers.
func (p *Pod) RequestsMemMB() int64 {
	var total int64
	for i := range p.Spec.Containers {
		total += p.Spec.Containers[i].RequestsMemMB
	}
	return total
}

// Active reports whether the pod still holds (or will hold) node resources.
func (p *Pod) Active() bool {
	return p.Status.Phase != PodSucceeded && p.Status.Phase != PodFailed
}

// Tolerates reports whether the pod tolerates the given taint.
func (p *Pod) Tolerates(t Taint) bool {
	for _, tol := range p.Spec.Tolerations {
		if tol.TolerateAll {
			return true
		}
		if tol.Key == t.Key && (tol.Effect == "" || tol.Effect == t.Effect) &&
			(tol.Value == "" || tol.Value == t.Value) {
			return true
		}
	}
	return false
}

// --- workload controllers -----------------------------------------------------

// PodTemplate is the pod blueprint embedded in workload resources. Labels
// must match the owning controller's selector — when corruption breaks that
// invariant past validation, every pod the controller creates fails to match
// its selector and reconciliation spawns pods forever.
type PodTemplate struct {
	Labels map[string]string `pb:"1"`
	Spec   PodSpec           `pb:"2"`
}

// LabelSelector selects objects whose labels include all of MatchLabels.
type LabelSelector struct {
	MatchLabels map[string]string `pb:"1"`
}

// Matches reports whether the selector selects the given label set. An empty
// selector matches nothing (mirroring controller semantics, where an empty
// selector would otherwise select every pod in the namespace).
func (s LabelSelector) Matches(labels map[string]string) bool {
	if len(s.MatchLabels) == 0 {
		return false
	}
	for k, v := range s.MatchLabels {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// Empty reports whether the selector has no terms.
func (s LabelSelector) Empty() bool { return len(s.MatchLabels) == 0 }

// ReplicaSet maintains a stable set of pod replicas.
type ReplicaSet struct {
	Metadata ObjectMeta       `pb:"1,metadata"`
	Spec     ReplicaSetSpec   `pb:"2"`
	Status   ReplicaSetStatus `pb:"3"`
}

// ReplicaSetSpec is the desired state of a ReplicaSet.
type ReplicaSetSpec struct {
	Replicas int64         `pb:"1"`
	Selector LabelSelector `pb:"2"`
	Template PodTemplate   `pb:"3"`
}

// ReplicaSetStatus is the observed state of a ReplicaSet.
type ReplicaSetStatus struct {
	Replicas      int64 `pb:"1"`
	ReadyReplicas int64 `pb:"2"`
}

// Meta implements Object.
func (r *ReplicaSet) Meta() *ObjectMeta { return &r.Metadata }

// Kind implements Object.
func (r *ReplicaSet) Kind() Kind { return KindReplicaSet }

// Clone implements Object.
func (r *ReplicaSet) Clone() Object { return CloneReplicaSet(r) }

// Deployment manages ReplicaSets and rolling updates.
type Deployment struct {
	Metadata ObjectMeta       `pb:"1,metadata"`
	Spec     DeploymentSpec   `pb:"2"`
	Status   DeploymentStatus `pb:"3"`
}

// DeploymentSpec is the desired state of a Deployment.
type DeploymentSpec struct {
	Replicas       int64         `pb:"1"`
	Selector       LabelSelector `pb:"2"`
	Template       PodTemplate   `pb:"3"`
	MaxUnavailable int64         `pb:"4"`
	MaxSurge       int64         `pb:"5"`
}

// DeploymentStatus is the observed state of a Deployment.
type DeploymentStatus struct {
	Replicas        int64 `pb:"1"`
	ReadyReplicas   int64 `pb:"2"`
	UpdatedReplicas int64 `pb:"3"`
}

// Meta implements Object.
func (d *Deployment) Meta() *ObjectMeta { return &d.Metadata }

// Kind implements Object.
func (d *Deployment) Kind() Kind { return KindDeployment }

// Clone implements Object.
func (d *Deployment) Clone() Object { return CloneDeployment(d) }

// DaemonSet runs one pod per matching node (network manager, DNS are
// deployed this way; their pods carry system-critical priority).
type DaemonSet struct {
	Metadata ObjectMeta      `pb:"1,metadata"`
	Spec     DaemonSetSpec   `pb:"2"`
	Status   DaemonSetStatus `pb:"3"`
}

// DaemonSetSpec is the desired state of a DaemonSet.
type DaemonSetSpec struct {
	Selector LabelSelector `pb:"1"`
	Template PodTemplate   `pb:"2"`
}

// DaemonSetStatus is the observed state of a DaemonSet.
type DaemonSetStatus struct {
	DesiredNumber int64 `pb:"1"`
	CurrentNumber int64 `pb:"2"`
	NumberReady   int64 `pb:"3"`
}

// Meta implements Object.
func (d *DaemonSet) Meta() *ObjectMeta { return &d.Metadata }

// Kind implements Object.
func (d *DaemonSet) Kind() Kind { return KindDaemonSet }

// Clone implements Object.
func (d *DaemonSet) Clone() Object { return CloneDaemonSet(d) }

// --- networking ---------------------------------------------------------------

// Service exposes a set of pods (chosen by label selector) behind one
// virtual IP.
type Service struct {
	Metadata ObjectMeta  `pb:"1,metadata"`
	Spec     ServiceSpec `pb:"2"`
}

// ServiceSpec is the desired state of a Service.
type ServiceSpec struct {
	Selector  map[string]string `pb:"1"`
	ClusterIP string            `pb:"2,clusterIP"`
	Ports     []ServicePort     `pb:"3"`
}

// ServicePort maps a service port to a target container port.
type ServicePort struct {
	Port       int64  `pb:"1"`
	TargetPort int64  `pb:"2"`
	Protocol   string `pb:"3"`
}

// Meta implements Object.
func (s *Service) Meta() *ObjectMeta { return &s.Metadata }

// Kind implements Object.
func (s *Service) Kind() Kind { return KindService }

// Clone implements Object.
func (s *Service) Clone() Object { return CloneService(s) }

// Endpoints lists the ready backends of a Service.
type Endpoints struct {
	Metadata ObjectMeta       `pb:"1,metadata"`
	Subsets  []EndpointSubset `pb:"2"`
}

// EndpointSubset groups addresses sharing a port list.
type EndpointSubset struct {
	Addresses []EndpointAddress `pb:"1"`
	Ports     []int64           `pb:"2"`
}

// EndpointAddress is one backend address with a reference to its pod.
type EndpointAddress struct {
	IP        string    `pb:"1,ip"`
	NodeName  string    `pb:"2"`
	TargetRef TargetRef `pb:"3"`
}

// TargetRef points an endpoint address back at the pod providing it.
type TargetRef struct {
	Kind string `pb:"1"`
	Name string `pb:"2"`
	UID  string `pb:"3,uid"`
}

// Meta implements Object.
func (e *Endpoints) Meta() *ObjectMeta { return &e.Metadata }

// Kind implements Object.
func (e *Endpoints) Kind() Kind { return KindEndpoints }

// Clone implements Object.
func (e *Endpoints) Clone() Object { return CloneEndpoints(e) }

// Count returns the number of endpoint addresses.
func (e *Endpoints) Count() int {
	n := 0
	for i := range e.Subsets {
		n += len(e.Subsets[i].Addresses)
	}
	return n
}

// --- cluster ------------------------------------------------------------------

// Node is a member of the cluster.
type Node struct {
	Metadata ObjectMeta `pb:"1,metadata"`
	Spec     NodeSpec   `pb:"2"`
	Status   NodeStatus `pb:"3"`
}

// NodeSpec is the desired state of a Node.
type NodeSpec struct {
	PodCIDR       string  `pb:"1,podCIDR"`
	Taints        []Taint `pb:"2"`
	Unschedulable bool    `pb:"3"`
}

// Taint repels pods that do not tolerate it.
type Taint struct {
	Key    string `pb:"1"`
	Value  string `pb:"2"`
	Effect string `pb:"3"`
}

// Taint effects.
const (
	TaintNoSchedule = "NoSchedule"
	TaintNoExecute  = "NoExecute"
)

// NodeStatus is the observed state of a Node, refreshed by its kubelet's
// heartbeats.
type NodeStatus struct {
	CapacityMilliCPU    int64  `pb:"1"`
	CapacityMemMB       int64  `pb:"2"`
	AllocatableMilliCPU int64  `pb:"3"`
	AllocatableMemMB    int64  `pb:"4"`
	Ready               bool   `pb:"5"`
	LastHeartbeatMillis int64  `pb:"6"`
	Address             string `pb:"7"`
}

// Meta implements Object.
func (n *Node) Meta() *ObjectMeta { return &n.Metadata }

// Kind implements Object.
func (n *Node) Kind() Kind { return KindNode }

// Clone implements Object.
func (n *Node) Clone() Object { return CloneNode(n) }

// Namespace partitions resources.
type Namespace struct {
	Metadata ObjectMeta `pb:"1,metadata"`
	Phase    string     `pb:"2"`
}

// Meta implements Object.
func (n *Namespace) Meta() *ObjectMeta { return &n.Metadata }

// Kind implements Object.
func (n *Namespace) Kind() Kind { return KindNamespace }

// Clone implements Object.
func (n *Namespace) Clone() Object { return CloneNamespace(n) }

// ConfigMap holds configuration data (the network manager reads its overlay
// configuration from one, mirroring flannel).
type ConfigMap struct {
	Metadata ObjectMeta        `pb:"1,metadata"`
	Data     map[string]string `pb:"2"`
}

// Meta implements Object.
func (c *ConfigMap) Meta() *ObjectMeta { return &c.Metadata }

// Kind implements Object.
func (c *ConfigMap) Kind() Kind { return KindConfigMap }

// Clone implements Object.
func (c *ConfigMap) Clone() Object { return CloneConfigMap(c) }

// Lease implements leader election and component heartbeats.
type Lease struct {
	Metadata ObjectMeta `pb:"1,metadata"`
	Spec     LeaseSpec  `pb:"2"`
}

// LeaseSpec carries the holder identity and renewal state.
type LeaseSpec struct {
	HolderIdentity string `pb:"1"`
	DurationSecs   int64  `pb:"2"`
	RenewMillis    int64  `pb:"3"`
}

// Meta implements Object.
func (l *Lease) Meta() *ObjectMeta { return &l.Metadata }

// Kind implements Object.
func (l *Lease) Kind() Kind { return KindLease }

// Clone implements Object.
func (l *Lease) Clone() Object { return CloneLease(l) }

// --- helpers ------------------------------------------------------------------

// Key returns the canonical storage key for an object of the given identity,
// mirroring etcd's /registry layout. Keys are interned (internkey.go): the
// same identity returns the same string instance, alloc-free after first
// sighting.
func Key(kind Kind, namespace, name string) string {
	return internKey(kind, namespace, name)
}

// KeyOf returns the storage key of an object.
func KeyOf(o Object) string {
	m := o.Meta()
	return Key(o.Kind(), m.Namespace, m.Name)
}

// FormatUID builds a deterministic UID from a counter; real clusters use
// UUIDs, but deterministic IDs keep experiments bit-reproducible.
func FormatUID(n int64) string {
	return "uid-" + strconv.FormatInt(n, 10)
}

// SystemNamespace hosts the control-plane and networking pods.
const SystemNamespace = "kube-system"

// DefaultNamespace hosts application workloads.
const DefaultNamespace = "default"

// Well-known label keys.
const (
	LabelApp      = "app"
	LabelPodHash  = "pod-template-hash"
	LabelNodeRole = "node-role"
	// LabelZone carries a node's topology zone in zoned (cloud-edge)
	// clusters, following the upstream topology.kubernetes.io convention.
	LabelZone = "topology.kubernetes.io/zone"
)

// System-critical pod priority (mirrors system-node-critical): these pods
// preempt application pods when resources run out, which is how a corrupted
// DaemonSet label escalates a Stall into a cluster Outage in the paper.
const SystemCriticalPriority = 2_000_000_000

// Validate-time bounds.
const (
	MinPort = 1
	MaxPort = 65535
)

func (t Taint) String() string {
	return fmt.Sprintf("%s=%s:%s", t.Key, t.Value, t.Effect)
}

// CriticalFieldPath reports whether a field path belongs to the critical set
// identified by the paper's §V-C2 analysis: the fields managing dependency
// relationships (labels, selectors, owner references, targetRef, managedBy),
// the identity fields appearing in resource URLs (name, namespace, uid, plus
// nodeName bindings), and the networking fields (addresses, ports, CIDRs).
// These are the fields whose corruption caused Sta/Out/SU failures, and the
// ones the paper proposes to guard with logging, rollback, and redundancy
// codes (§VI-B) — "the critical fields are < 10% of total".
func CriticalFieldPath(path string) bool {
	lower := strings.ToLower(path)
	switch {
	case strings.Contains(lower, "label"),
		strings.Contains(lower, "selector"),
		strings.Contains(lower, "ownerreferences"),
		strings.Contains(lower, "targetref"),
		strings.Contains(lower, "managedby"):
		return true
	case strings.HasSuffix(lower, ".name"),
		strings.HasSuffix(lower, ".namespace"),
		strings.HasSuffix(lower, ".uid"),
		strings.Contains(lower, "nodename"):
		return true
	case strings.Contains(lower, "clusterip"),
		strings.Contains(lower, "podcidr"),
		strings.Contains(lower, "podip"),
		strings.Contains(lower, "port"),
		strings.HasSuffix(lower, ".ip"):
		return true
	default:
		return false
	}
}
