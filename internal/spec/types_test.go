package spec

import (
	"testing"
	"testing/quick"

	"github.com/mutiny-sim/mutiny/internal/codec"
)

func TestNewCoversAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		o := New(k)
		if o == nil {
			t.Fatalf("New(%s) = nil", k)
		}
		if o.Kind() != k {
			t.Fatalf("New(%s).Kind() = %s", k, o.Kind())
		}
		if o.Meta() == nil {
			t.Fatalf("New(%s).Meta() = nil", k)
		}
	}
	if New(Kind("Bogus")) != nil {
		t.Fatal("New(Bogus) != nil")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Pod{
		Metadata: ObjectMeta{
			Name: "web-1", Namespace: "default", UID: "uid-1",
			Labels:          map[string]string{"app": "web"},
			OwnerReferences: []OwnerReference{{Kind: "ReplicaSet", Name: "web-rs", UID: "uid-0", Controller: true}},
		},
		Spec: PodSpec{
			NodeName:   "node-1",
			Containers: []Container{{Name: "c", Image: "web:1", RequestsMilliCPU: 100}},
		},
	}
	c := p.Clone().(*Pod)
	c.Metadata.Labels["app"] = "db"
	c.Spec.Containers[0].Image = "db:1"
	c.Metadata.OwnerReferences[0].UID = "changed"
	if p.Metadata.Labels["app"] != "web" || p.Spec.Containers[0].Image != "web:1" ||
		p.Metadata.OwnerReferences[0].UID != "uid-0" {
		t.Fatal("Clone shares state with original")
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	objects := []Object{
		&Pod{Metadata: ObjectMeta{Name: "p"}, Spec: PodSpec{NodeName: "n", Priority: 5}},
		&ReplicaSet{Metadata: ObjectMeta{Name: "rs"}, Spec: ReplicaSetSpec{Replicas: 3,
			Selector: LabelSelector{MatchLabels: map[string]string{"a": "b"}}}},
		&Deployment{Metadata: ObjectMeta{Name: "d"}, Spec: DeploymentSpec{Replicas: 2, MaxSurge: 1}},
		&DaemonSet{Metadata: ObjectMeta{Name: "ds"}},
		&Service{Metadata: ObjectMeta{Name: "s"}, Spec: ServiceSpec{ClusterIP: "10.96.0.1",
			Ports: []ServicePort{{Port: 80, TargetPort: 8080, Protocol: "TCP"}}}},
		&Endpoints{Metadata: ObjectMeta{Name: "e"}, Subsets: []EndpointSubset{{
			Addresses: []EndpointAddress{{IP: "10.244.1.2", TargetRef: TargetRef{Kind: "Pod", Name: "p"}}},
			Ports:     []int64{8080}}}},
		&Node{Metadata: ObjectMeta{Name: "n"}, Status: NodeStatus{Ready: true, CapacityMilliCPU: 8000}},
		&Namespace{Metadata: ObjectMeta{Name: "ns"}, Phase: "Active"},
		&ConfigMap{Metadata: ObjectMeta{Name: "cm"}, Data: map[string]string{"net": "overlay"}},
		&Lease{Metadata: ObjectMeta{Name: "l"}, Spec: LeaseSpec{HolderIdentity: "kcm-1", DurationSecs: 15}},
	}
	for _, o := range objects {
		b, err := codec.Marshal(o)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", o.Kind(), err)
		}
		back := New(o.Kind())
		if err := codec.Unmarshal(b, back); err != nil {
			t.Fatalf("%s: Unmarshal: %v", o.Kind(), err)
		}
		b2, err := codec.Marshal(back)
		if err != nil {
			t.Fatalf("%s: re-Marshal: %v", o.Kind(), err)
		}
		if string(b) != string(b2) {
			t.Fatalf("%s: round trip not stable", o.Kind())
		}
	}
}

func TestSelectorMatches(t *testing.T) {
	tests := []struct {
		name   string
		sel    map[string]string
		labels map[string]string
		want   bool
	}{
		{"exact", map[string]string{"app": "web"}, map[string]string{"app": "web"}, true},
		{"subset", map[string]string{"app": "web"}, map[string]string{"app": "web", "x": "y"}, true},
		{"mismatch", map[string]string{"app": "web"}, map[string]string{"app": "db"}, false},
		{"missing", map[string]string{"app": "web"}, map[string]string{}, false},
		{"empty selector matches nothing", nil, map[string]string{"app": "web"}, false},
		{"two terms", map[string]string{"app": "web", "tier": "fe"}, map[string]string{"app": "web", "tier": "fe"}, true},
		{"partial", map[string]string{"app": "web", "tier": "fe"}, map[string]string{"app": "web"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := LabelSelector{MatchLabels: tt.sel}
			if got := s.Matches(tt.labels); got != tt.want {
				t.Fatalf("Matches(%v) = %v, want %v", tt.labels, got, tt.want)
			}
		})
	}
}

func TestTolerates(t *testing.T) {
	taint := Taint{Key: "node.kubernetes.io/unreachable", Effect: TaintNoExecute}
	tests := []struct {
		name string
		tols []Toleration
		want bool
	}{
		{"none", nil, false},
		{"exact key+effect", []Toleration{{Key: taint.Key, Effect: TaintNoExecute}}, true},
		{"key any effect", []Toleration{{Key: taint.Key}}, true},
		{"wrong key", []Toleration{{Key: "other", Effect: TaintNoExecute}}, false},
		{"wrong effect", []Toleration{{Key: taint.Key, Effect: TaintNoSchedule}}, false},
		{"tolerate all", []Toleration{{TolerateAll: true}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := Pod{Spec: PodSpec{Tolerations: tt.tols}}
			if got := p.Tolerates(taint); got != tt.want {
				t.Fatalf("Tolerates = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPodResourceSums(t *testing.T) {
	p := Pod{Spec: PodSpec{Containers: []Container{
		{RequestsMilliCPU: 100, RequestsMemMB: 64},
		{RequestsMilliCPU: 250, RequestsMemMB: 128},
	}}}
	if got := p.RequestsMilliCPU(); got != 350 {
		t.Fatalf("RequestsMilliCPU = %d, want 350", got)
	}
	if got := p.RequestsMemMB(); got != 192 {
		t.Fatalf("RequestsMemMB = %d, want 192", got)
	}
}

func TestControllerOf(t *testing.T) {
	m := ObjectMeta{OwnerReferences: []OwnerReference{
		{Kind: "Foo", Name: "a", UID: "1"},
		{Kind: "ReplicaSet", Name: "b", UID: "2", Controller: true},
	}}
	ref := m.ControllerOf()
	if ref == nil || ref.UID != "2" {
		t.Fatalf("ControllerOf = %+v, want UID 2", ref)
	}
	var none ObjectMeta
	if none.ControllerOf() != nil {
		t.Fatal("ControllerOf on empty meta != nil")
	}
}

func TestKeys(t *testing.T) {
	p := &Pod{Metadata: ObjectMeta{Name: "web-1", Namespace: "default"}}
	if got := KeyOf(p); got != "/registry/Pod/default/web-1" {
		t.Fatalf("KeyOf = %q", got)
	}
	if got := Key(KindNode, "", "node-1"); got != "/registry/Node//node-1" {
		t.Fatalf("Key = %q", got)
	}
}

func TestActivePhases(t *testing.T) {
	for phase, want := range map[string]bool{
		PodPending: true, PodRunning: true, PodSucceeded: false, PodFailed: false, "": true,
	} {
		p := Pod{Status: PodStatus{Phase: phase}}
		if p.Active() != want {
			t.Fatalf("Active(%q) = %v, want %v", phase, p.Active(), want)
		}
	}
}

// Property: selector matching is monotone — adding labels to an object never
// makes a previously matching selector stop matching.
func TestPropertySelectorMonotone(t *testing.T) {
	prop := func(k1, v1, k2, v2 string) bool {
		sel := LabelSelector{MatchLabels: map[string]string{k1: v1}}
		base := map[string]string{k1: v1}
		if !sel.Matches(base) {
			return false
		}
		extended := map[string]string{k1: v1, k2: v2}
		if k2 == k1 && v2 != v1 {
			return true // overwrote the matched label: exempt
		}
		return sel.Matches(extended)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldInventoryIncludesCriticalFields(t *testing.T) {
	// The paper's critical-field set (§V-C2): dependency fields (labels,
	// selectors, ownerReferences, targetRef, managedBy), identity fields
	// (name, namespace, uid), networking fields, replicas, image, command.
	rs := &ReplicaSet{
		Metadata: ObjectMeta{
			Name: "rs", Namespace: "default", UID: "u1",
			Labels:          map[string]string{"app": "web"},
			OwnerReferences: []OwnerReference{{Kind: "Deployment", Name: "d", UID: "u0", Controller: true}},
		},
		Spec: ReplicaSetSpec{
			Replicas: 2,
			Selector: LabelSelector{MatchLabels: map[string]string{"app": "web"}},
			Template: PodTemplate{
				Labels: map[string]string{"app": "web"},
				Spec: PodSpec{Containers: []Container{{
					Name: "c", Image: "web:1", Command: []string{"serve"}, Port: 8080,
				}}},
			},
		},
	}
	paths := make(map[string]bool)
	for _, f := range codec.Fields(rs) {
		paths[f.Path] = true
	}
	for _, want := range []string{
		"metadata.name",
		"metadata.namespace",
		"metadata.uid",
		"metadata.labels[app]",
		"metadata.ownerReferences[0].uid",
		"spec.replicas",
		"spec.selector.matchLabels[app]",
		"spec.template.labels[app]",
		"spec.template.spec.containers[0].image",
		"spec.template.spec.containers[0].command[0]",
		"spec.template.spec.containers[0].port",
	} {
		if !paths[want] {
			t.Errorf("field inventory missing %q; have %d fields", want, len(paths))
		}
	}
}

// The hand-written clones must agree with a wire round trip for every kind:
// any divergence would mean a field the codec knows about is not deep-copied.
func TestHandClonesMatchWireRoundTrip(t *testing.T) {
	objects := []Object{
		&Pod{
			Metadata: ObjectMeta{Name: "p", Namespace: "default", UID: "u1",
				Labels:          map[string]string{"a": "b"},
				Annotations:     map[string]string{"x": "y"},
				OwnerReferences: []OwnerReference{{Kind: "ReplicaSet", Name: "r", UID: "u0", Controller: true}},
				CreatedMillis:   5, Generation: 2, ManagedBy: "kcm"},
			Spec: PodSpec{NodeName: "n", Priority: 3,
				Containers:   []Container{{Name: "c", Image: "i", Command: []string{"serve", "-x"}, RequestsMilliCPU: 1, Port: 80}},
				Tolerations:  []Toleration{{Key: "k", Effect: "NoExecute", TolerationSecs: 4}},
				NodeSelector: map[string]string{"role": "w"}, RestartPolicy: "Always", VolumeSeed: "s"},
			Status: PodStatus{Phase: "Running", PodIP: "10.0.0.1", Ready: true, RestartCount: 1, StartedMillis: 9},
		},
		&ReplicaSet{Metadata: ObjectMeta{Name: "rs"}, Spec: ReplicaSetSpec{Replicas: 3,
			Selector: LabelSelector{MatchLabels: map[string]string{"a": "b"}},
			Template: PodTemplate{Labels: map[string]string{"a": "b"},
				Spec: PodSpec{Containers: []Container{{Name: "c", Image: "i", Command: []string{"serve"}}}}}},
			Status: ReplicaSetStatus{Replicas: 2, ReadyReplicas: 1}},
		&Deployment{Metadata: ObjectMeta{Name: "d"}, Spec: DeploymentSpec{Replicas: 2, MaxSurge: 1, MaxUnavailable: 1,
			Selector: LabelSelector{MatchLabels: map[string]string{"a": "b"}},
			Template: PodTemplate{Labels: map[string]string{"a": "b"}}},
			Status: DeploymentStatus{Replicas: 2, ReadyReplicas: 2, UpdatedReplicas: 2}},
		&DaemonSet{Metadata: ObjectMeta{Name: "ds"}, Spec: DaemonSetSpec{
			Selector: LabelSelector{MatchLabels: map[string]string{"a": "b"}},
			Template: PodTemplate{Labels: map[string]string{"a": "b"}}},
			Status: DaemonSetStatus{DesiredNumber: 5, CurrentNumber: 4, NumberReady: 3}},
		&Service{Metadata: ObjectMeta{Name: "s"}, Spec: ServiceSpec{
			Selector: map[string]string{"a": "b"}, ClusterIP: "10.96.0.2",
			Ports: []ServicePort{{Port: 80, TargetPort: 8080, Protocol: "TCP"}}}},
		&Endpoints{Metadata: ObjectMeta{Name: "e"}, Subsets: []EndpointSubset{{
			Addresses: []EndpointAddress{{IP: "10.1.1.1", NodeName: "n",
				TargetRef: TargetRef{Kind: "Pod", Name: "p", UID: "u"}}},
			Ports: []int64{8080, 9090}}}},
		&Node{Metadata: ObjectMeta{Name: "n", Labels: map[string]string{"r": "w"}},
			Spec:   NodeSpec{PodCIDR: "10.244.1.0/24", Taints: []Taint{{Key: "k", Value: "v", Effect: "NoSchedule"}}, Unschedulable: true},
			Status: NodeStatus{CapacityMilliCPU: 8000, Ready: true, LastHeartbeatMillis: 77, Address: "1.2.3.4"}},
		&Namespace{Metadata: ObjectMeta{Name: "ns"}, Phase: "Active"},
		&ConfigMap{Metadata: ObjectMeta{Name: "cm"}, Data: map[string]string{"k": "v"}},
		&Lease{Metadata: ObjectMeta{Name: "l"}, Spec: LeaseSpec{HolderIdentity: "h", DurationSecs: 15, RenewMillis: 42}},
	}
	for _, o := range objects {
		hand := o.Clone()
		wire, err := codec.Marshal(o)
		if err != nil {
			t.Fatalf("%s: %v", o.Kind(), err)
		}
		handWire, err := codec.Marshal(hand)
		if err != nil {
			t.Fatalf("%s: %v", o.Kind(), err)
		}
		if string(wire) != string(handWire) {
			t.Fatalf("%s: hand clone diverges from original on the wire", o.Kind())
		}
	}
}
